"""Unit tests for MX++ (repro.core.mxpp): decoupled NBM scale."""

import numpy as np
import pytest

from repro.core.mx import MXFP4
from repro.core.mxplus import MXFP4Plus
from repro.core.mxpp import MXFP4PlusPlus, MXFP6PlusPlus, MXFP8PlusPlus
from repro.core.scale import ZERO_BLOCK_SENTINEL

FIG4_UPPER_BF16 = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])


class TestPaperExample:
    """Section 4.3's worked example on the Figure 4 upper block."""

    def test_nbm_exponent_offset_rule(self):
        # Second-largest exponent: 0.99 -> -1. e = -1 - 2 + 1 = -2.
        enc = MXFP4PlusPlus().encode(FIG4_UPPER_BF16)
        assert enc.shared_exp.ravel()[0] == 1
        assert enc.nbm_shared_exp.ravel()[0] == -2
        assert enc.reserved.ravel()[0] == 3  # delta = 1 - (-2)

    def test_039_becomes_minus_0375(self):
        # The paper: with shared_exp_new = -2, -0.39 scales to -1.56 and
        # maps to -1.5 (so dequantizes to -0.375) whereas MXFP4 zeroed it.
        q = MXFP4PlusPlus()(FIG4_UPPER_BF16)
        assert q[5] == pytest.approx(-0.375)
        q4 = MXFP4()(FIG4_UPPER_BF16)
        assert q4[5] == 0.0

    def test_099_not_saturated(self):
        # Without the +1 offset, 0.99 would scale to 7.92 and saturate at
        # 6.0 (-> 0.75 dequantized). With it, 0.99 -> 3.96 -> 4.0 -> 1.0.
        q = MXFP4PlusPlus()(FIG4_UPPER_BF16)
        assert q[2] == pytest.approx(1.0)

    def test_bm_same_as_mxplus(self):
        qpp = MXFP4PlusPlus()(FIG4_UPPER_BF16)
        qp = MXFP4Plus()(FIG4_UPPER_BF16)
        assert qpp[4] == qp[4] == pytest.approx(-10.0)


class TestMXPPInvariants:
    @pytest.mark.parametrize(
        "factory", [MXFP4PlusPlus, MXFP6PlusPlus, MXFP8PlusPlus], ids=["4", "6", "8"]
    )
    def test_delta_fits_reserved_bits(self, factory):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 32)) * np.exp(rng.uniform(-6, 6, (64, 1)))
        x[rng.random((64, 32)) < 0.05] *= 1000  # extreme outliers
        enc = factory().encode(x)
        assert np.all(enc.reserved >= 0)
        assert np.all(enc.reserved <= 7)

    def test_mse_never_worse_than_mxplus(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((128, 32))
        x[rng.random((128, 32)) < 0.03] *= 50
        epp = np.mean((x - MXFP4PlusPlus()(x)) ** 2)
        ep = np.mean((x - MXFP4Plus()(x)) ** 2)
        assert epp <= ep + 1e-15

    def test_identical_exponents_keep_delta_zero(self):
        # BM and largest NBM in the same binade: the CLIP upper bound
        # forces shared_exp_new == shared_exp (delta 0).
        x = np.zeros(32)
        x[0] = 5.0
        x[1] = 4.2
        enc = MXFP4PlusPlus().encode(x)
        assert enc.reserved.ravel()[0] == 0

    def test_delta_capped_at_7(self):
        # A huge BM with tiny NBMs: delta clips at 7 (3 reserved bits).
        x = np.full(32, 2.0**-20)
        x[0] = 1024.0
        enc = MXFP4PlusPlus().encode(x)
        assert enc.reserved.ravel()[0] == 7

    def test_largest_nbm_never_saturates_when_rescaled(self):
        # The +1 offset guarantees the largest NBM stays strictly inside
        # the representable range after rescaling — for blocks that
        # actually rescale (delta >= 1). Blocks clipped to delta == 0
        # behave exactly like MX+ (where a near-BM NBM may saturate to
        # max_normal, which is correct behaviour).
        rng = np.random.default_rng(2)
        fmt = MXFP4PlusPlus()
        x = rng.standard_normal((256, 32)) * np.exp(rng.uniform(-3, 3, (256, 1)))
        x[:, 0] *= 50.0  # outlier BM so that delta >= 1 actually occurs
        enc = fmt.encode(x)
        k = x.shape[-1]
        is_bm = np.arange(k) == enc.bm_index[..., None]
        scaled = np.abs(enc.elem_values)
        nbm_max = np.max(np.where(is_bm, 0.0, scaled), axis=-1)
        rescaled = enc.reserved >= 1
        assert np.any(rescaled)  # the scenario actually occurs
        assert np.all(nbm_max[rescaled] < fmt.elem.max_normal)

    def test_all_zero_nbms(self):
        x = np.zeros(32)
        x[3] = 2.5
        fmt = MXFP4PlusPlus()
        enc = fmt.encode(x)
        assert enc.reserved.ravel()[0] == 0
        q = fmt(x)
        assert q[3] == pytest.approx(2.5)
        assert np.all(np.delete(q, 3) == 0)

    def test_flush_block(self):
        x = np.full((1, 32), 2.0**-130)
        fmt = MXFP4PlusPlus()
        enc = fmt.encode(x)
        assert enc.shared_exp.ravel()[0] == ZERO_BLOCK_SENTINEL
        np.testing.assert_array_equal(fmt(x), 0.0)

    def test_same_storage_as_mxplus(self):
        # MX++ reuses the reserved bits: no extra storage over MX+.
        assert MXFP4PlusPlus().bits_per_element() == MXFP4Plus().bits_per_element()
