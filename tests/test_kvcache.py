"""Tests for the paged KV cache: block accounting, byte sizing, shared
prefixes, eviction, and the flat-budget shim equivalence."""

import pytest

from repro.models.zoo import ARCHS
from repro.serve import (
    PagedKVCache,
    QuantRecipe,
    Request,
    ServingEngine,
    format_kv_bits,
    get_recipe,
    kv_token_bytes,
)

ARCH = ARCHS["llama-2-13b"]


class TestByteAccounting:
    def test_format_bits_calibrated_table(self):
        assert format_kv_bits("bf16") == 16.0
        assert format_kv_bits("mxfp4") == 4.25
        assert format_kv_bits("mxfp4+") == 4.5

    def test_format_bits_fallback_to_encoder(self):
        # mxint8 is not in FORMAT_BITS; falls back to bits_per_element().
        assert format_kv_bits("mxint8") == pytest.approx(8.25)

    def test_kv_token_bytes_formula(self):
        # 2 (K,V) * n_layers * kv_dim * bits/8
        expected = 2 * ARCH.n_layers * ARCH.n_kv_heads * ARCH.head_dim * 2.0
        assert kv_token_bytes(ARCH, "bf16") == expected

    def test_kv_token_bytes_resolves_recipe_kv_format(self):
        recipe = get_recipe("mxfp4+")
        assert recipe.kv_format == "mxfp4+"
        assert kv_token_bytes(ARCH, recipe) == kv_token_bytes(ARCH, "mxfp4+")
        mixed = QuantRecipe.from_name("a:mxfp8,w:mxfp4,kv:mxfp4")
        assert kv_token_bytes(ARCH, mixed) == kv_token_bytes(ARCH, "mxfp4")

    def test_byte_budget_capacity_ordering(self):
        budget = 4 << 30
        caps = {
            fmt: PagedKVCache.from_byte_budget(budget, ARCH, fmt).capacity_tokens
            for fmt in ("bf16", "mxfp8", "mxfp4+", "mxfp4")
        }
        assert caps["mxfp4"] > caps["mxfp4+"] > caps["mxfp8"] > caps["bf16"]
        # MX+ KV holds >3x the BF16 tokens at the same budget.
        assert caps["mxfp4+"] > 3 * caps["bf16"]

    def test_bytes_properties(self):
        kv = PagedKVCache.from_byte_budget(1 << 30, ARCH, "bf16", block_tokens=16)
        assert kv.token_bytes == kv_token_bytes(ARCH, "bf16")
        assert kv.capacity_bytes <= 1 << 30
        assert kv.used_bytes == 0.0
        assert PagedKVCache(4).capacity_bytes is None


class TestAllocation:
    def test_private_block_rounding(self):
        kv = PagedKVCache(num_blocks=4, block_tokens=16)
        assert kv.try_allocate("a", tokens=17) == 0
        assert kv.used_blocks == 2  # ceil(17/16)
        kv.free("a")
        assert kv.used_blocks == 0

    def test_rejects_when_full(self):
        kv = PagedKVCache(num_blocks=2, block_tokens=16)
        assert kv.try_allocate("a", tokens=32) == 0
        assert not kv.can_allocate(1)
        assert kv.try_allocate("b", tokens=1) is None
        assert kv.stats()["failed_allocations"] == 1

    def test_can_allocate_is_pure(self):
        kv = PagedKVCache(num_blocks=2, block_tokens=16)
        kv.try_allocate("a", tokens=32)
        for _ in range(10):
            assert not kv.can_allocate(16)
        assert kv.stats()["failed_allocations"] == 0

    def test_queued_head_does_not_inflate_failure_counter(self):
        # _admit polls the blocked head every decode step; only genuine
        # try_allocate attempts may count as failures.
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=2048)
        requests = [
            Request(f"r{i}", prompt_len=1000, max_new_tokens=200)
            for i in range(4)
        ]
        result = engine.run(requests)
        assert all(r.output_len == 200 for r in result.responses)
        assert result.kv["failed_allocations"] == 0

    def test_duplicate_and_bad_args(self):
        kv = PagedKVCache(num_blocks=4, block_tokens=4)
        kv.try_allocate("a", tokens=4)
        with pytest.raises(ValueError, match="already allocated"):
            kv.try_allocate("a", tokens=4)
        with pytest.raises(ValueError, match="tokens"):
            kv.try_allocate("b", tokens=0)
        with pytest.raises(ValueError, match="prefix_len"):
            kv.try_allocate("b", tokens=4, prefix_id="p", prefix_len=8)

    def test_append_token_page_boundary(self):
        kv = PagedKVCache(num_blocks=3, block_tokens=4)
        kv.try_allocate("a", tokens=4)  # exactly one full page
        assert kv.append_blocks_needed(["a"]) == 1
        kv.append_token("a")
        assert kv.used_blocks == 2
        for _ in range(3):  # fill page 2: no new page needed
            assert kv.append_blocks_needed(["a"]) == 0
            kv.append_token("a")
        assert kv.used_blocks == 2
        assert kv.seq_tokens("a") == 8

    def test_append_overflow_raises(self):
        kv = PagedKVCache(num_blocks=1, block_tokens=4)
        kv.try_allocate("a", tokens=4)
        with pytest.raises(RuntimeError, match="overflow"):
            kv.append_token("a")

    def test_token_budget_never_exceeds_budget(self):
        # Rounds down to whole pages; sub-page budgets are an error.
        assert PagedKVCache.from_token_budget(1000, block_tokens=16).capacity_tokens == 992
        with pytest.raises(ValueError, match="smaller than one"):
            PagedKVCache.from_token_budget(10, block_tokens=16)

    def test_failed_run_does_not_leak_allocations(self):
        # Exceptions mid-run must free this run's sequences: the cache
        # persists across runs, so leaked pages would be lost forever.
        import numpy as np

        class Boom:
            config = type("C", (), {"max_seq": 64})()

            def __call__(self, *a, **k):
                raise RuntimeError("forward exploded")

        recipe = get_recipe("mxfp4")
        engine = ServingEngine(ARCH, recipe, kv_token_budget=4096, model=Boom())
        req = Request("r0", prompt_tokens=np.arange(8), max_new_tokens=4)
        with pytest.raises(RuntimeError, match="forward exploded"):
            engine.run([req])
        assert engine.kv_cache.stats()["resident_seqs"] == 0
        # The engine stays usable: the same request id re-admits cleanly.
        timing_only = ServingEngine(ARCH, recipe, kv_cache=engine.kv_cache)
        result = timing_only.run([Request("r0", prompt_len=8, max_new_tokens=4)])
        assert result.responses[0].output_len == 4


class TestPrefixSharing:
    def test_hit_accounting(self):
        kv = PagedKVCache(num_blocks=32, block_tokens=8)
        assert kv.try_allocate("a", tokens=40, prefix_id="sys", prefix_len=24) == 0
        assert kv.try_allocate("b", tokens=40, prefix_id="sys", prefix_len=24) == 24
        stats = kv.stats()
        assert stats["prefix_hits"] == 1
        assert stats["prefix_misses"] == 1
        assert stats["prefix_tokens_reused"] == 24
        # prefix pages counted once: 3 shared + 2x2 private
        assert kv.used_blocks == 3 + 2 * 2

    def test_only_full_blocks_shared(self):
        kv = PagedKVCache(num_blocks=32, block_tokens=8)
        kv.try_allocate("a", tokens=16, prefix_id="sys", prefix_len=13)
        # 13 // 8 = 1 full block (8 tokens) shared; 8 private tokens -> 1 page
        assert kv.try_allocate("b", tokens=16, prefix_id="sys", prefix_len=13) == 8
        assert kv.cached_prefix_tokens("sys", 13) == 8

    def test_sub_block_prefix_never_shared(self):
        kv = PagedKVCache(num_blocks=8, block_tokens=16)
        assert kv.try_allocate("a", tokens=32, prefix_id="sys", prefix_len=8) == 0
        assert kv.try_allocate("b", tokens=32, prefix_id="sys", prefix_len=8) == 0
        assert kv.stats()["prefix_misses"] == 0

    def test_prefix_survives_free_then_hits(self):
        kv = PagedKVCache(num_blocks=16, block_tokens=8)
        kv.try_allocate("a", tokens=32, prefix_id="sys", prefix_len=16)
        kv.free("a")
        assert kv.reclaimable_blocks == 2
        assert kv.try_allocate("b", tokens=32, prefix_id="sys", prefix_len=16) == 16
        assert kv.reclaimable_blocks == 0

    def test_idle_prefix_evicted_under_pressure(self):
        kv = PagedKVCache(num_blocks=4, block_tokens=8)
        kv.try_allocate("a", tokens=16, prefix_id="sys", prefix_len=16)
        kv.free("a")  # 2 idle prefix pages cached
        assert kv.try_allocate("b", tokens=32) == 0  # needs all 4 pages
        assert kv.stats()["prefix_evictions"] == 1
        assert kv.cached_prefix_tokens("sys", 16) == 0

    def test_hit_prefix_protected_from_own_eviction(self):
        kv = PagedKVCache(num_blocks=4, block_tokens=8)
        kv.try_allocate("a", tokens=16, prefix_id="sys", prefix_len=16)
        kv.free("a")  # sys idle: 2 pages
        # Needs 2 private pages + hits sys: must NOT evict sys to fit.
        assert kv.try_allocate("b", tokens=32, prefix_id="sys", prefix_len=16) == 16
        assert kv.stats()["prefix_evictions"] == 0

    def test_failed_alloc_keeps_warm_prefixes(self):
        kv = PagedKVCache(num_blocks=4, block_tokens=8)
        kv.try_allocate("a", tokens=16, prefix_id="sys", prefix_len=16)
        kv.free("a")
        # 40 tokens needs 5 pages > 4 total: fails without evicting sys.
        assert kv.try_allocate("b", tokens=40) is None
        assert kv.cached_prefix_tokens("sys", 16) == 16
        assert kv.stats()["prefix_evictions"] == 0

    def test_drop_idle_prefixes(self):
        kv = PagedKVCache(num_blocks=16, block_tokens=8)
        kv.try_allocate("a", tokens=16, prefix_id="s1", prefix_len=16)
        kv.try_allocate("b", tokens=16, prefix_id="s2", prefix_len=16)
        kv.free("a")
        assert kv.drop_idle_prefixes() == 2  # s1 only; s2 still referenced
        assert kv.stats()["cached_prefixes"] == 1


class TestFlatBudgetShim:
    """block_tokens=1 + no prefixes must equal the PR-1 flat counter."""

    def test_engine_default_is_flat(self):
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=1234)
        assert engine.kv_cache.block_tokens == 1
        assert engine.kv_cache.capacity_tokens == 1234
        assert engine.kv_token_budget == 1234

    def test_flat_vs_paged_same_results_when_roomy(self):
        requests = [
            Request(f"r{i}", prompt_len=128 + 32 * i, max_new_tokens=16)
            for i in range(6)
        ]
        flat = ServingEngine(ARCH, "mxfp4", kv_token_budget=65_536).run(requests)
        paged = ServingEngine(
            ARCH, "mxfp4",
            kv_cache=PagedKVCache.from_token_budget(65_536, block_tokens=16),
        ).run(requests)
        assert flat.makespan_s == paged.makespan_s
        assert [r.ttft_s for r in flat.responses] == [r.ttft_s for r in paged.responses]

    def test_tight_budget_preempts_same_as_pr1(self):
        # Mirrors tests/test_serve.py::test_tight_budget_preempts_and_completes
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=500)
        requests = [Request(f"r{i}", prompt_len=160, max_new_tokens=60) for i in range(4)]
        result = engine.run(requests)
        assert all(r.output_len == 60 for r in result.responses)
        assert result.preemptions > 0
        assert result.kv["resident_seqs"] == 0  # all freed at completion


class TestEnginePrefixServing:
    def test_prefix_hits_lower_ttft(self):
        chat = [
            Request(f"c{i}", prompt_len=640, max_new_tokens=8,
                    arrival_s=0.05 * i, prefix_id="sys", prefix_len=512)
            for i in range(6)
        ]
        plain = [
            Request(r.request_id, prompt_len=r.prompt_len,
                    max_new_tokens=r.max_new_tokens, arrival_s=r.arrival_s)
            for r in chat
        ]
        kv = PagedKVCache.from_token_budget(65_536, block_tokens=16)
        shared = ServingEngine(ARCH, "mxfp4+", kv_cache=kv).run(chat)
        base = ServingEngine(ARCH, "mxfp4+", kv_token_budget=65_536).run(plain)
        assert shared.kv["prefix_hits"] == 5
        assert shared.mean_ttft_s < base.mean_ttft_s
        # First request (miss) pays the full prefill either way.
        assert shared.responses[0].ttft_s == pytest.approx(
            base.responses[0].ttft_s, rel=1e-6
        )

    def test_warm_cache_across_runs(self):
        kv = PagedKVCache.from_token_budget(65_536, block_tokens=16)
        engine = ServingEngine(ARCH, "mxfp4+", kv_cache=kv)
        req = [Request("a", prompt_len=544, max_new_tokens=4,
                       prefix_id="sys", prefix_len=512)]
        engine.run(req)
        second = engine.run(
            [Request("b", prompt_len=544, max_new_tokens=4,
                     prefix_id="sys", prefix_len=512)]
        )
        assert second.kv["prefix_hits"] == 1  # warm from the first run

    def test_request_prefix_validation(self):
        with pytest.raises(ValueError, match="prefix_len without prefix_id"):
            Request("bad", prompt_len=64, prefix_len=32)
        with pytest.raises(ValueError, match="exceeds prompt_len"):
            Request("bad", prompt_len=64, prefix_id="sys", prefix_len=128)
        with pytest.raises(ValueError, match="negative prefix_len"):
            Request("bad", prompt_len=64, prefix_id="sys", prefix_len=-1)
