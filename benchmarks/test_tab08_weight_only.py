"""Table 8: weight-only quantization — AWQ with INT4/MXFP4/MXFP4+ weights
under BF16 activations, and MXFP8 activations with MXFP4(+) weights."""

from _util import print_table, run_once, save_result

from repro.eval import perplexity
from repro.nn.quantize import QuantContext
from repro.quant import scheme_context

MODELS = ["llama-3.1-8b-sim", "mistral-7b-sim"]


def test_tab08(benchmark, zoo, wiki2):
    def run():
        out = {}
        for m in MODELS:
            model = zoo[m]
            out[m] = {
                "awq-int4": perplexity(model, wiki2, scheme_context("awq-int4")),
                "awq-mxfp4": perplexity(model, wiki2, scheme_context("awq-mxfp4")),
                "awq-mxfp4+": perplexity(model, wiki2, scheme_context("awq-mxfp4+")),
                "a8-w-mxfp4": perplexity(
                    model, wiki2, QuantContext.named("a:mxfp8,w:mxfp4")
                ),
                "a8-w-mxfp4+": perplexity(
                    model, wiki2, QuantContext.named("a:mxfp8,w:mxfp4+")
                ),
            }
        return out

    table = run_once(benchmark, run)
    save_result("tab08_weight_only", table)
    for m in MODELS:
        print_table(f"Table 8 ({m})", table[m])

    for m in MODELS:
        row = table[m]
        # AWQ + MXFP4+ recovers the AWQ+MXFP4 degradation (the synergy:
        # scaled-up salient weights become BMs and gain precision).
        assert row["awq-mxfp4+"] <= row["awq-mxfp4"]
        # With MXFP8 activations, MXFP4+ weights beat MXFP4 weights.
        assert row["a8-w-mxfp4+"] <= row["a8-w-mxfp4"]
