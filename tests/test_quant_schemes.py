"""Tests for the baseline quantization schemes (repro.quant)."""

import numpy as np
import pytest

from repro.core.intquant import quantize_int_tensor
from repro.quant import (
    ANTContext,
    AtomContext,
    AWQContext,
    LLMFP4Context,
    OliVeContext,
    QuaRotContext,
    SCHEME_MATRIX,
    SmoothQuantContext,
    TenderContext,
    random_hadamard,
    scheme_context,
)
from repro.quant.ant import quantize_adaptive
from repro.quant.olive import quantize_olive
from repro.quant.tender import quantize_tender


def outlier_pair(seed=0, dim=128):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((64, dim))
    x[:, 7] *= 40
    w = rng.standard_normal((dim, 32)) / np.sqrt(dim)
    return x, w


def err(x, q):
    return float(np.mean((x - q) ** 2))


class TestSmoothQuant:
    def test_migration_reduces_matmul_error(self):
        # The pair is returned in migrated coordinates, so compare matmul
        # outputs: migration beats naive per-tensor INT4 on both operands.
        x, w = outlier_pair()
        ref = x @ w
        smq = SmoothQuantContext(bf16_base=False)
        xq, wq = smq.quantize_matmul_pair(x, w)
        naive = quantize_int_tensor(x, 4) @ quantize_int_tensor(w, 4)
        assert np.mean((xq @ wq - ref) ** 2) < np.mean((naive - ref) ** 2)

    def test_matmul_error_bounded(self):
        x, w = outlier_pair()
        smq = SmoothQuantContext(bf16_base=False)
        xq, wq = smq.quantize_matmul_pair(x, w)
        ref = x @ w
        assert np.mean((xq @ wq - ref) ** 2) < np.mean(ref**2)

    def test_mx_variant(self):
        x, w = outlier_pair()
        from repro.core import get_format

        smq = SmoothQuantContext(mx_format=get_format("mxfp4"), bf16_base=False)
        xq, wq = smq.quantize_matmul_pair(x, w)
        assert xq.shape == x.shape and wq.shape == w.shape


class TestQuaRot:
    def test_hadamard_orthogonal(self):
        q = random_hadamard(128, seed=1)
        np.testing.assert_allclose(q @ q.T, np.eye(128), atol=1e-10)

    def test_non_pow2_fallback_orthogonal(self):
        q = random_hadamard(96, seed=2)
        np.testing.assert_allclose(q @ q.T, np.eye(96), atol=1e-10)

    def test_rotation_spreads_outliers(self):
        x, _ = outlier_pair()
        q = random_hadamard(x.shape[1], seed=0)
        assert np.max(np.abs(x @ q)) < np.max(np.abs(x)) * 0.6

    def test_exact_without_quantization(self):
        # rotation alone preserves the matmul
        x, w = outlier_pair()
        q = random_hadamard(x.shape[1], seed=0)
        np.testing.assert_allclose((x @ q) @ (q.T @ w), x @ w, atol=1e-9)

    def test_beats_naive_int4(self):
        x, w = outlier_pair()
        ctx = QuaRotContext(bf16_base=False)
        xq, wq = ctx.quantize_matmul_pair(x, w)
        ref = x @ w
        naive = quantize_int_tensor(x, 4) @ quantize_int_tensor(w, 4)
        assert np.mean((xq @ wq - ref) ** 2) < np.mean((naive - ref) ** 2)


class TestAtom:
    def test_outlier_channels_in_int8(self):
        x, w = outlier_pair()
        ctx = AtomContext(bf16_base=False, n_outlier=8)
        xq, wq = ctx.quantize_matmul_pair(x, w)
        # outlier channel error small relative to its magnitude (INT8)
        rel = np.abs(x[:, 7] - xq[:, 7]) / np.abs(x[:, 7])
        assert np.median(rel) < 0.02

    def test_shapes_restored(self):
        x, w = outlier_pair()
        ctx = AtomContext(bf16_base=False)
        xq, wq = ctx.quantize_matmul_pair(x, w)
        assert xq.shape == x.shape and wq.shape == w.shape


class TestAWQ:
    def test_weight_only(self):
        x, w = outlier_pair()
        ctx = AWQContext(bf16_base=False)
        xq, wq = ctx.quantize_matmul_pair(x, w)
        # activations only rescaled, not quantized to a coarse grid
        np.testing.assert_allclose(sorted(np.unique(np.round(xq[:, 0], 6))).__len__() > 16, True)

    def test_matmul_preserved_better_than_plain_int4(self):
        x, w = outlier_pair()
        ref = x @ w
        ctx = AWQContext(bf16_base=False)
        xq, wq = ctx.quantize_matmul_pair(x, w)
        from repro.core.intquant import quantize_int_groupwise

        plain = x @ quantize_int_groupwise(w, 4, group=32, axis=0)
        assert np.mean((xq @ wq - ref) ** 2) <= np.mean((plain - ref) ** 2) * 1.2


class TestANT:
    def test_adaptive_beats_single_grid(self):
        rng = np.random.default_rng(3)
        # mixture: some groups gaussian (int-friendly), some spiky (float)
        x = np.concatenate(
            [rng.standard_normal((32, 64)), rng.standard_normal((32, 64)) ** 3], axis=0
        )
        adaptive = quantize_adaptive(x, group=32)
        from repro.quant.ant import CANDIDATE_GRIDS, _snap
        from repro.core.blocks import from_blocks, to_blocks

        blocked = to_blocks(x, 32)
        amax = np.max(np.abs(blocked.data), axis=-1, keepdims=True)
        safe = np.where(amax == 0, 1, amax)
        int_only = from_blocks(blocked, _snap(blocked.data / safe, CANDIDATE_GRIDS["int4"]) * safe)
        assert err(x, adaptive) <= err(x, int_only)

    def test_group32_beats_per_tensor(self):
        x, w = outlier_pair()
        per_tensor = ANTContext(bf16_base=False)
        grouped = ANTContext(group=32, bf16_base=False)
        xq_t, _ = per_tensor.quantize_matmul_pair(x, w)
        xq_g, _ = grouped.quantize_matmul_pair(x, w)
        assert err(x, xq_g) <= err(x, xq_t)


class TestOliVe:
    def test_outliers_kept_victims_zeroed(self):
        x = np.zeros((1, 32))
        x[0, 10] = 100.0  # outlier
        x[0, 11] = 0.5  # its victim
        x[0, :8] = 0.3
        q = quantize_olive(x, group=32)
        assert abs(q[0, 10] - 100.0) < 10.0  # outlier represented
        assert q[0, 11] == 0.0  # victim pruned

    def test_group_variant_not_worse(self):
        x, w = outlier_pair()
        a = OliVeContext(bf16_base=False)
        b = OliVeContext(group=32, bf16_base=False)
        xa, _ = a.quantize_matmul_pair(x, w)
        xb, _ = b.quantize_matmul_pair(x, w)
        assert err(x, xb) <= err(x, xa) * 1.5


class TestTender:
    def test_pow2_ladder_scales(self):
        x, _ = outlier_pair()
        q = quantize_tender(x, bits=4)
        assert q.shape == x.shape
        # The per-channel pow2 ladder keeps far more small-channel values
        # alive than a single per-tensor INT4 scale would.
        naive = quantize_int_tensor(x, 4)
        assert np.count_nonzero(q[:, 8:]) > 3 * np.count_nonzero(naive[:, 8:])

    def test_row_grouping(self):
        x, _ = outlier_pair()
        q0 = quantize_tender(x, bits=4, row_group=0)
        q2 = quantize_tender(x, bits=4, row_group=2)
        assert err(x, q2) <= err(x, q0) * 1.05


class TestLLMFP4:
    def test_bias_search_not_worse_than_fixed(self):
        x, w = outlier_pair()
        from repro.quant.llmfp4 import quantize_fp4_bias_search

        searched = quantize_fp4_bias_search(x, axis=-1, n_bias=4)
        fixed = quantize_fp4_bias_search(x, axis=-1, n_bias=1)
        assert err(x, searched) <= err(x, fixed)


class TestRegistryAndMatrix:
    @pytest.mark.parametrize(
        "name",
        ["smq-int4", "smq-mxfp4", "quarot-int4", "atom", "ant", "mx-ant",
         "olive", "mx-olive", "tender", "mx-tender", "llm-fp4",
         "awq-int4", "awq-mxfp4+", "mxfp4+"],
    )
    def test_scheme_context_builds(self, name):
        ctx = scheme_context(name)
        x, w = outlier_pair(dim=64)
        xq, wq = ctx.quantize_matmul_pair(x, w)
        assert xq.shape == x.shape and wq.shape == w.shape
        assert np.all(np.isfinite(xq)) and np.all(np.isfinite(wq))

    def test_table13_only_mxplus_has_all(self):
        full = [c.name for c in SCHEME_MATRIX if c.compute_efficiency and c.standard_general and c.high_accuracy]
        assert full == ["MX+"]

    def test_schemes_skip_lm_head_and_attention(self):
        ctx = scheme_context("atom")
        assert ctx.quantize_lm_head is False
        assert ctx.quantize_attention is False
