"""Tests for metrics, the Figure 5 MSE decomposition, top-k promotion
(Figure 14), and channel reordering (Section 8.3 / Table 12)."""

import numpy as np
import pytest

from repro.core.metrics import (
    block_outlier_counts,
    mse,
    mse_decomposition,
    outlier_mask_3sigma,
    sqnr_db,
)
from repro.core.mx import MXFP4
from repro.core.mxplus import MXFP4Plus
from repro.core.reorder import (
    apply_reorder,
    channel_outlier_counts,
    multi_outlier_block_rate,
    reorder_permutation,
)
from repro.core.topk import TopKPromoteFormat, promoted_fraction


def outlier_activations(rows=128, cols=256, channels=(7, 40, 41), scale=30, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols))
    for c in channels:
        x[:, c] *= scale
    return x


class TestMetrics:
    def test_mse_zero_for_identical(self):
        x = np.ones((4, 4))
        assert mse(x, x) == 0.0

    def test_sqnr_infinite_for_exact(self):
        x = np.ones((4, 4))
        assert sqnr_db(x, x) == float("inf")

    def test_sqnr_increases_with_precision(self):
        # MXFP6 and MXFP8 share 3 mantissa bits (and E4M3's NaN reservation
        # can even favour MXFP6 on outlier-free data — see test_mx.py), so
        # we only assert both clear MXFP4 by a wide margin.
        from repro.core.mx import MXFP6, MXFP8

        rng = np.random.default_rng(1)
        x = rng.standard_normal((16, 64))
        s4 = sqnr_db(x, MXFP4()(x))
        assert sqnr_db(x, MXFP6()(x)) > s4 + 6
        assert sqnr_db(x, MXFP8()(x)) > s4 + 6


class TestFig5Decomposition:
    def test_bm_dominates_mse_with_outliers(self):
        # Figure 5: with outlier-bearing activations, the BM elements
        # contribute the majority of quantization MSE under MXFP4.
        x = outlier_activations()
        q = MXFP4()(x)
        d = mse_decomposition(x, q)
        assert d.bm_share > 0.5
        assert d.largest_error_share >= d.bm_share  # largest-error is an upper bound

    def test_bm_usually_is_largest_error(self):
        x = outlier_activations()
        q = MXFP4()(x)
        d = mse_decomposition(x, q)
        assert d.bm_is_largest_error_rate > 0.5

    def test_mxplus_kills_bm_share(self):
        # After MX+, the BM error collapses, so its share drops sharply.
        x = outlier_activations()
        d4 = mse_decomposition(x, MXFP4()(x))
        dp = mse_decomposition(x, MXFP4Plus()(x))
        assert dp.bm_share < d4.bm_share / 2

    def test_exact_quantization(self):
        x = np.zeros((1, 32))
        d = mse_decomposition(x, x)
        assert d.total_mse == 0.0


class TestOutlierDetection:
    def test_3sigma_flags_planted_outliers(self):
        # The planted channels inflate sigma themselves, so the asymptotic
        # hit rate is P(|z| > ~0.33) ~= 0.74 regardless of outlier scale;
        # clean channels stay almost never flagged.
        x = outlier_activations()
        mask = outlier_mask_3sigma(x)
        assert mask[:, 7].mean() > 0.6
        assert mask[:, 100].mean() < 0.05

    def test_no_outliers_in_constant(self):
        assert not outlier_mask_3sigma(np.ones((4, 32))).any()

    def test_block_outlier_counts(self):
        x = outlier_activations(channels=(40, 41))
        counts = block_outlier_counts(x)
        # channels 40 and 41 land in block 1 of each row
        assert counts[:, 1].mean() > 1.5
        assert counts[:, 3].mean() < 0.2


class TestTopKPromotion:
    def test_error_decreases_with_k(self):
        x = outlier_activations(channels=(4, 9), scale=40)
        errs = [mse(x, TopKPromoteFormat(k)(x)) for k in (1, 2, 3, 4)]
        assert errs[0] >= errs[1] >= errs[2] >= errs[3]

    def test_diminishing_returns(self):
        # Figure 14: the jump from top-1 to top-2 exceeds top-2 to top-4.
        x = outlier_activations(channels=(4, 9), scale=40)
        errs = {k: mse(x, TopKPromoteFormat(k)(x)) for k in (1, 2, 4)}
        assert errs[1] - errs[2] > errs[2] - errs[4]

    def test_promoted_fraction_increases(self):
        x = outlier_activations(channels=(4, 9, 37), scale=40)
        fracs = [promoted_fraction(x, k) for k in (1, 2, 3)]
        assert fracs[0] <= fracs[1] <= fracs[2]
        assert fracs[2] > 0.9

    def test_emax_mismatch_rejected(self):
        from repro.core.elem import E2M1, E3M2

        with pytest.raises(ValueError):
            TopKPromoteFormat(1, base=E2M1, promoted=E3M2)


class TestChannelReordering:
    def test_permutation_is_valid(self):
        counts = np.arange(256)[::-1]
        perm = reorder_permutation(counts)
        assert sorted(perm.tolist()) == list(range(256))

    def test_top_channels_one_per_block(self):
        # The heaviest channels must land at positions 0, 32, 64, ...
        counts = np.zeros(128, dtype=int)
        counts[[3, 50, 90, 127]] = [10, 9, 8, 7]
        perm = reorder_permutation(counts, block_size=32)
        anchors = perm[np.arange(4) * 32]
        assert set(anchors.tolist()) == {3, 50, 90, 127}

    def test_matmul_invariance(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 64))
        w = rng.standard_normal((64, 16))
        perm = reorder_permutation(channel_outlier_counts(x), block_size=32)
        xp, wp = apply_reorder(x, w, perm)
        np.testing.assert_allclose(xp @ wp, x @ w, atol=1e-12)

    def test_reordering_reduces_multi_outlier_blocks(self):
        # Section 8.3: reordering scatters co-located outlier channels.
        x = outlier_activations(channels=(40, 41, 42), scale=40)
        before = multi_outlier_block_rate(x)
        perm = reorder_permutation(channel_outlier_counts(x))
        after = multi_outlier_block_rate(x[:, perm])
        assert after < before

    def test_reordering_reduces_mxplus_error(self):
        # Heterogeneous outlier magnitudes co-located in one block: the
        # smaller outliers are crushed by the largest one's shared scale
        # until reordering gives each of them its own block (and BM slot).
        rng = np.random.default_rng(9)
        x = rng.standard_normal((128, 256))
        for c, s in [(40, 100.0), (41, 30.0), (42, 10.0)]:
            x[:, c] *= s
        fmt = MXFP4Plus()
        perm = reorder_permutation(channel_outlier_counts(x))
        xp = x[:, perm]
        assert mse(xp, fmt(xp)) < mse(x, fmt(x))

    def test_reordering_reduces_outlier_element_error(self):
        # "The improvement stems from more precise outlier representations"
        # (Section 8.3): measure error on the outlier elements themselves.
        rng = np.random.default_rng(10)
        x = rng.standard_normal((128, 256))
        for c, s in [(40, 100.0), (41, 30.0), (42, 10.0)]:
            x[:, c] *= s
        fmt = MXFP4Plus()
        omask = outlier_mask_3sigma(x)
        perm = reorder_permutation(channel_outlier_counts(x))
        xp, omp = x[:, perm], omask[:, perm]
        e_before = np.mean((x[omask] - fmt(x)[omask]) ** 2)
        e_after = np.mean((xp[omp] - fmt(xp)[omp]) ** 2)
        assert e_after < e_before
