"""GPU performance substrate: timing, serving simulation, hardware model."""

from .area import MXPLUS_COMPONENTS, scale_to_node, tensor_core_overhead
from .convert import ConversionCosts, converted_matmul_time, table4_row
from .hardware import DPECycleModel, dpe_block_dot, lane_view, tensor_core_matmul
from .inference import CONFIGS, ServingConfig, StageTimes, end_to_end_speedup, simulate_inference
from .kernels import GemmShape, gemm_time, matmul_breakdown
from .quanttime import measure_quantization_time, quantization_time_table
from .spec import FORMAT_BITS, GPUSpec, RTX5090, RTXA6000
from .systolic import SystolicArray, SystolicResult

__all__ = [
    "GPUSpec",
    "RTX5090",
    "RTXA6000",
    "FORMAT_BITS",
    "GemmShape",
    "gemm_time",
    "matmul_breakdown",
    "ServingConfig",
    "CONFIGS",
    "StageTimes",
    "simulate_inference",
    "end_to_end_speedup",
    "dpe_block_dot",
    "lane_view",
    "DPECycleModel",
    "tensor_core_matmul",
    "ConversionCosts",
    "converted_matmul_time",
    "table4_row",
    "tensor_core_overhead",
    "scale_to_node",
    "MXPLUS_COMPONENTS",
    "measure_quantization_time",
    "quantization_time_table",
    "SystolicArray",
    "SystolicResult",
]
