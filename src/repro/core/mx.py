"""OCP Microscaling (MX) quantization: MXFP4/MXFP6/MXFP8 and MXINT8.

Implements Eq. (1) of the paper:

    shared_exp = max(floor(log2(|x|))) - e_max,     X = 2**shared_exp

with the shared exponent clamped to the E8M0 range ``[-127, 127]`` and
elements converted with saturation, per the OCP MX specification v1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import E2M1, E2M3, E3M2, E4M3, E5M2, INT8_MX, FloatCodec, IntCodec, floor_log2
from .scale import E8M0_MAX, E8M0_MIN

__all__ = [
    "MXEncoded",
    "MXFormat",
    "MXFP4",
    "MXFP4K64",
    "MXFP6",
    "MXFP6_E3M2",
    "MXFP8",
    "MXFP8_E5M2",
    "MXINT8",
]


@dataclass
class MXEncoded:
    """Structured MX encoding: per-block shared exponents + element values.

    ``elem_values`` are the *scaled* element values (already divided by the
    shared scale), exactly representable in the element data type.
    """

    shared_exp: np.ndarray  # (..., nblocks) int32
    elem_values: np.ndarray  # (..., nblocks, k) float64, scaled domain
    blocked: object  # Blocked bookkeeping for decode


class MXFormat(BlockFormat):
    """An MX-compliant format: one element codec + E8M0 shared scale."""

    def __init__(self, elem: FloatCodec | IntCodec, block_size: int = 32, name: str | None = None):
        self.elem = elem
        self.block_size = block_size
        self.name = name or f"mx-{elem.name}"

    # ------------------------------------------------------------------
    def _shared_exp(self, blocks: np.ndarray) -> np.ndarray:
        """Per-block shared exponent per Eq. (1), clamped to E8M0 range."""
        amax = np.max(np.abs(blocks), axis=-1)
        exp = floor_log2(amax) - self.elem.emax
        # All-zero blocks get the minimum exponent; their elements quantize
        # to zero regardless of scale.
        exp = np.where(amax == 0, E8M0_MIN, exp)
        return np.clip(exp, E8M0_MIN, E8M0_MAX).astype(np.int32)

    def encode(self, x: np.ndarray, axis: int = -1) -> MXEncoded:
        blocked = to_blocks(x, self.block_size, axis)
        shared_exp = self._shared_exp(blocked.data)
        scale = np.exp2(shared_exp.astype(np.float64))[..., None]
        elem_values = self.elem.quantize(blocked.data / scale)
        return MXEncoded(shared_exp=shared_exp, elem_values=elem_values, blocked=blocked)

    def decode(self, enc: MXEncoded) -> np.ndarray:
        scale = np.exp2(enc.shared_exp.astype(np.float64))[..., None]
        return from_blocks(enc.blocked, enc.elem_values * scale)

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.decode(self.encode(x, axis))

    def bits_per_element(self) -> float:
        return self.elem.bits + 8.0 / self.block_size


def MXFP4() -> MXFormat:
    """MXFP4: E2M1 elements, block 32, E8M0 scale (avg 4.25 bits/elem)."""
    return MXFormat(E2M1, name="mxfp4")


def MXFP4K64() -> MXFormat:
    """MXFP4 over 64-element blocks: halves the shared-scale sideband to
    4.125 avg bits/elem at a quality cost — the cheapest point on the
    tuner's format ladder (and a lean KV-cache storage format)."""
    return MXFormat(E2M1, block_size=64, name="mxfp4-k64")


def MXFP6() -> MXFormat:
    """MXFP6 (E2M3) — the higher-mantissa 6-bit variant the paper uses."""
    return MXFormat(E2M3, name="mxfp6")


def MXFP6_E3M2() -> MXFormat:
    return MXFormat(E3M2, name="mxfp6-e3m2")


def MXFP8() -> MXFormat:
    """MXFP8 (E4M3) — the higher-mantissa 8-bit variant the paper uses."""
    return MXFormat(E4M3, name="mxfp8")


def MXFP8_E5M2() -> MXFormat:
    return MXFormat(E5M2, name="mxfp8-e5m2")


def MXINT8() -> MXFormat:
    return MXFormat(INT8_MX, name="mxint8")
