"""Outlier analysis: why low-bit MX fails and how MX+ fixes it
(the Figure 4/5 analysis plus channel reordering from Section 8.3).

Run:  python examples/outlier_analysis.py
"""

import numpy as np

from repro.core import MXFP4, MXFP4Plus, mse, mse_decomposition
from repro.core.reorder import (
    channel_outlier_counts,
    multi_outlier_block_rate,
    reorder_permutation,
)
from repro.eval.reorder_calib import attention_inputs
from repro.models.zoo import get_corpus, load_model

model = load_model("llama-3.1-8b-sim", verbose=True)
corpus = get_corpus("wiki2-sim", 240_000)

acts = attention_inputs(model, corpus.val[:257])[0]
flat = acts.reshape(-1, acts.shape[-1])

# Figure 4a: channel-concentrated outliers.
mags = np.abs(flat).mean(axis=0)
top = np.argsort(-mags)[:6]
print("channel magnitude heatmap (mean |x| per channel):")
print("  top channels:", [(int(c), round(float(mags[c]), 2)) for c in top])
print(f"  median channel magnitude: {np.median(mags):.3f}")

# Figure 5: who contributes the quantization error?
q4 = MXFP4()(flat)
d = mse_decomposition(flat, q4)
print(f"\nMXFP4 on these activations: MSE {mse(flat, q4):.5f}")
print(f"  share from block-max elements:      {d.bm_share:.1%}")
print(f"  share from largest-error elements:  {d.largest_error_share:.1%}")
print(f"  BM is the largest-error element in  {d.bm_is_largest_error_rate:.1%} of blocks")

qp = MXFP4Plus()(flat)
dp = mse_decomposition(flat, qp)
print(f"MXFP4+ on the same activations: MSE {mse(flat, qp):.5f} "
      f"(BM share collapses to {dp.bm_share:.1%})")

# Section 8.3: scatter co-located outliers with channel reordering.
counts = channel_outlier_counts(flat)
perm = reorder_permutation(counts)
print(f"\nmulti-outlier block rate before reordering: {multi_outlier_block_rate(flat):.1%}")
print(f"multi-outlier block rate after reordering:  {multi_outlier_block_rate(flat[:, perm]):.1%}")
print(f"MXFP4+ MSE before reordering: {mse(flat, MXFP4Plus()(flat)):.5f}")
xp = flat[:, perm]
print(f"MXFP4+ MSE after reordering:  {mse(xp, MXFP4Plus()(xp)):.5f}")
