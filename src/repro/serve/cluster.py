"""Cluster layer: N serving replicas behind one time-coherent event loop.

:class:`ServingCluster` scales the single-replica
:class:`repro.serve.ServingEngine` out to a fleet — and, unlike a
shard-then-simulate batch harness, it is a *discrete-event simulation*:
one global loop advances replicas in virtual-time order through the
engine's ``submit()/peek_next_event()/step()`` API, and every request is
routed **at its arrival instant** against the live state of the fleet at
that moment (per-replica queue depth, free KV pages, clocks). Fleet
metrics are therefore time-coherent: a replica's events interleave with
arrivals exactly as they would on one shared timeline.

Routers are deterministic and pluggable (``ROUTERS`` registry):

* ``"round-robin"`` — i-th request (in arrival order) to the i-th live
  replica, cycling;
* ``"least-kv-load"`` — to the replica with the fewest *committed* KV
  tokens (prompt + output budget of everything assigned so far), ties
  broken by lowest replica index — a static policy that never observes
  completions;
* ``"prefix-affinity"`` — requests sharing a ``prefix_id`` stick to the
  replica that first saw that prefix (so its KV pages are reused);
  prefix-less requests fall back to least-KV-load;
* ``"queue-depth"`` — to the replica with the fewest unfinished
  requests (waiting + running) *at the arrival instant*;
* ``"free-kv-at-arrival"`` — to the replica whose paged KV cache has
  the most free tokens *at the arrival instant*. Where least-kv-load
  keeps charging long-finished requests, this router sees the live
  allocator state, so the two diverge as soon as load shifts mid-trace.

An optional :class:`AutoscalePolicy` hook scales the fleet between
events: when every live replica's queue is deep, a fresh replica is
added (up to ``max_replicas``); idle replicas beyond ``min_replicas``
are retired once drained. Retired replicas keep their results.

Passing ``n_prefill``/``n_decode`` switches the cluster to
**disaggregated prefill/decode serving**: arrivals are routed over a
pool of prefill-role replicas, each request's first token is produced
there (TTFT never sees the interconnect), and its KV pages then migrate
over a :class:`~repro.serve.kvcache.KVTransfer` link — serialized, at
the recipe's exact bytes/token — to a decode-role replica picked by
``decode_router``. The autoscaler applies to each pool independently.
See :meth:`ServingCluster._run_disaggregated` and
``docs/SERVING_GUIDE.md``.

With one replica and no shared prefixes the cluster reproduces the
single-engine result *exactly* — the reconciliation anchor that lets
fleet numbers be trusted (asserted in ``benchmarks/test_serving_cluster``).

>>> from repro.models.zoo import ARCHS
>>> from .engine import Request
>>> cluster = ServingCluster(ARCHS["llama-2-13b"], "mxfp4+", n_replicas=2,
...                          kv_token_budget=8192)
>>> reqs = [Request(f"r{i}", prompt_len=256, max_new_tokens=4) for i in range(4)]
>>> fleet = cluster.run(reqs)
>>> [fleet.assignments[f"r{i}"] for i in range(4)]
[0, 1, 0, 1]
>>> len(fleet.responses) == 4 and fleet.makespan_s > 0
True
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from ..gpu.inference import step_time_cache_info
from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from .engine import (
    Request,
    Response,
    ServingEngine,
    ServingResult,
    arrival_order,
)
from .kvcache import KVTransfer, PagedKVCache, get_interconnect, kv_token_bytes
from .recipe import QuantRecipe

__all__ = [
    "ReplicaSnapshot",
    "Router",
    "RoundRobinRouter",
    "LeastKVLoadRouter",
    "PrefixAffinityRouter",
    "QueueDepthRouter",
    "FreeKVAtArrivalRouter",
    "ROUTERS",
    "available_routers",
    "get_router",
    "AutoscalePolicy",
    "FleetResult",
    "ServingCluster",
]


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Live state of one replica, as a router observes it at an arrival.

    Replica state changes only at step boundaries, so the snapshot
    reflects the last step completed at or before the routing instant
    (or, when a step spans the arrival, the state the replica will
    expose at its next scheduling boundary — the earliest moment it
    could act on the new request anyway).
    """

    index: int  # replica index (stable across the run)
    clock: float  # the replica's virtual clock
    n_running: int
    n_waiting: int
    free_kv_tokens: int
    capacity_kv_tokens: int

    @property
    def queue_depth(self) -> int:
        """Unfinished requests on the replica (waiting + running)."""
        return self.n_running + self.n_waiting


class Router:
    """Base class: assign each request (in arrival order) to a replica.

    Routers see requests one at a time, sorted by arrival, and must be
    deterministic — equal inputs yield equal assignments, and all
    tie-breaks resolve to the lowest replica index. ``route`` receives
    the live :class:`ReplicaSnapshot` list for the routable replicas at
    the arrival instant; routers that predate the event loop (or direct
    calls in tests) may be invoked without snapshots and fall back to
    their static behavior over ``range(n_replicas)``.
    """

    name = "base"

    def __init__(self, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_replicas = n_replicas
        self.reset()

    def reset(self) -> None:
        """Return to the initial state; called before every cluster run
        so router instances behave like freshly-built ones."""

    def resize(self, n_replicas: int) -> None:
        """Adapt to a fleet of ``n_replicas`` (autoscaling)."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_replicas = n_replicas

    def _indices(self, replicas: list[ReplicaSnapshot] | None) -> list[int]:
        if replicas is not None:
            return [s.index for s in replicas]
        return list(range(self.n_replicas))

    def route(
        self, request: Request, replicas: list[ReplicaSnapshot] | None = None
    ) -> int:  # pragma: no cover - interface
        """Pick the replica index for ``request`` (see class docstring)."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the live replicas in arrival order."""

    name = "round-robin"

    def reset(self) -> None:
        self._pos = 0

    def route(self, request, replicas=None) -> int:
        """The next replica in rotation over the live indices."""
        indices = self._indices(replicas)
        replica = indices[self._pos % len(indices)]
        self._pos += 1
        return replica


class LeastKVLoadRouter(Router):
    """Send to the replica with the fewest *committed* KV tokens.

    Load is the sum of ``prompt_len + max_new_tokens`` over assigned
    requests — the KV tokens a request will eventually pin. The counter
    is never decremented (the router does not observe completions), so
    this is the static baseline that ``free-kv-at-arrival`` improves on.
    Ties break to the lowest replica index, so assignment is
    deterministic.
    """

    name = "least-kv-load"

    def reset(self) -> None:
        self.loads: dict[int, int] = {}

    def _least_loaded(self, indices: list[int]) -> int:
        return min(indices, key=lambda i: (self.loads.get(i, 0), i))

    def route(self, request, replicas=None) -> int:
        """The replica with the least committed KV load; charges it."""
        replica = self._least_loaded(self._indices(replicas))
        self._charge(replica, request)
        return replica

    def _charge(self, replica: int, request: Request) -> None:
        self.loads[replica] = (
            self.loads.get(replica, 0) + request.prompt_len + request.max_new_tokens
        )


class PrefixAffinityRouter(LeastKVLoadRouter):
    """Pin each shared prefix to one replica so its KV pages get reused.

    The first request carrying a given ``prefix_id`` is placed on the
    least-loaded replica; every later request with that prefix follows
    it (a prefix scattered across replicas would be stored N times and
    hit only 1/N of the time). Prefix-less requests use least-KV-load.
    If the pinned replica was retired by autoscaling, the prefix is
    re-homed to the least-loaded live replica.
    """

    name = "prefix-affinity"

    def reset(self) -> None:
        super().reset()
        self._homes: dict[str, int] = {}

    def route(self, request, replicas=None) -> int:
        """The prefix's pinned home, or least-KV-load for prefix-less."""
        if request.prefix_id is None:
            return super().route(request, replicas)
        indices = self._indices(replicas)
        replica = self._homes.get(request.prefix_id)
        if replica is None or replica not in indices:
            replica = self._homes[request.prefix_id] = self._least_loaded(indices)
        self._charge(replica, request)
        return replica


class QueueDepthRouter(Router):
    """Send to the replica with the shallowest queue at the arrival
    instant (waiting + running, live), ties to the lowest index.

    Without snapshots (direct calls outside the event loop) it falls
    back to counting its own assignments — join-shortest-queue degrades
    to least-assigned when completions cannot be observed.
    """

    name = "queue-depth"

    def reset(self) -> None:
        self._assigned: dict[int, int] = {}

    def route(self, request, replicas=None) -> int:
        """The shallowest live queue (fallback: fewest own assignments)."""
        if replicas is not None:
            replica = min(replicas, key=lambda s: (s.queue_depth, s.index)).index
        else:
            replica = min(
                range(self.n_replicas), key=lambda i: (self._assigned.get(i, 0), i)
            )
        self._assigned[replica] = self._assigned.get(replica, 0) + 1
        return replica


class FreeKVAtArrivalRouter(Router):
    """Send to the replica whose KV cache has the most free tokens at
    the arrival instant, ties to the lowest index.

    The live counterpart of ``least-kv-load``: it sees pages already
    released by finished requests and pages pinned by cached prefixes,
    so it diverges from the static router whenever load shifts over the
    trace. Without snapshots it falls back to the static committed-load
    heuristic.
    """

    name = "free-kv-at-arrival"

    def reset(self) -> None:
        self._loads: dict[int, int] = {}

    def route(self, request, replicas=None) -> int:
        """The most free live KV tokens (fallback: least committed load)."""
        if replicas is not None:
            replica = min(replicas, key=lambda s: (-s.free_kv_tokens, s.index)).index
        else:
            replica = min(
                range(self.n_replicas), key=lambda i: (self._loads.get(i, 0), i)
            )
        self._loads[replica] = (
            self._loads.get(replica, 0) + request.prompt_len + request.max_new_tokens
        )
        return replica


ROUTERS: dict[str, type[Router]] = {
    cls.name: cls
    for cls in (
        RoundRobinRouter,
        LeastKVLoadRouter,
        PrefixAffinityRouter,
        QueueDepthRouter,
        FreeKVAtArrivalRouter,
    )
}


def available_routers() -> list[str]:
    """Sorted names of the registered routing policies.

    >>> available_routers()
    ['free-kv-at-arrival', 'least-kv-load', 'prefix-affinity', 'queue-depth', 'round-robin']
    """
    return sorted(ROUTERS)


def get_router(name_or_router, n_replicas: int) -> Router:
    """Instantiate a router by name (or pass a :class:`Router` through)."""
    if isinstance(name_or_router, Router):
        return name_or_router
    key = str(name_or_router).lower()
    if key not in ROUTERS:
        raise KeyError(
            f"unknown router {name_or_router!r} "
            f"(available: {', '.join(available_routers())})"
        )
    return ROUTERS[key](n_replicas)


@dataclass(frozen=True)
class AutoscalePolicy:
    """Scale the fleet on live queue depth, consulted between events.

    At every arrival instant the cluster asks :meth:`target` for the
    desired live-replica count given the fleet snapshots. The default
    rule: when *every* live replica's queue depth is at least
    ``scale_up_queue_depth``, grow by one (new replicas start with a
    cold KV cache); when more than one replica is completely idle and
    the fleet exceeds ``min_replicas``, retire one drained replica.
    Retired replicas keep their results, and their indices are never
    reused. Subclass and override :meth:`target` for custom rules.
    """

    max_replicas: int = 8
    min_replicas: int = 1
    scale_up_queue_depth: int = 4
    scale_down: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.scale_up_queue_depth < 1:
            raise ValueError("scale_up_queue_depth must be >= 1")

    def target(self, snapshots: list[ReplicaSnapshot]) -> int:
        """Desired live replica count for the given fleet state."""
        n = len(snapshots)
        if n < self.max_replicas and n and min(
            s.queue_depth for s in snapshots
        ) >= self.scale_up_queue_depth:
            return n + 1
        if (
            self.scale_down
            and n > self.min_replicas
            and sum(1 for s in snapshots if s.queue_depth == 0) > 1
        ):
            return n - 1
        return n


@dataclass
class FleetResult:
    """Fleet outcome: per-replica results + cluster-level accounting.

    For a disaggregated run, ``assignments`` maps each request to its
    *prefill* replica, ``decode_assignments`` to the decode replica its
    KV migrated to, ``roles`` records each replica's pool, and
    ``transfers`` holds one record per KV migration (request id, source,
    destination, tokens/bytes moved, export/start/arrive instants).
    Unified runs leave all four empty.
    """

    responses: list[Response]  # input order, across all replicas
    replica_results: list[ServingResult]
    assignments: dict[str, int]  # request_id -> replica index
    router: str = ""
    scheduler: str = ""
    autoscale_events: list = field(default_factory=list)  # (time, action, index)
    decode_assignments: dict[str, int] = field(default_factory=dict)
    decode_router: str = ""
    roles: list = field(default_factory=list)  # per-replica pool membership
    transfers: list = field(default_factory=list)  # KV migration records

    @property
    def n_replicas(self) -> int:
        """Replicas that served this run (autoscaled ones included)."""
        return len(self.replica_results)

    @property
    def makespan_s(self) -> float:
        """Fleet makespan: the slowest replica's virtual finish time."""
        return max((r.makespan_s for r in self.replica_results), default=0.0)

    # -- cached metric views (mirrors ServingResult) -------------------
    # Summary helpers must not rebuild million-entry Python lists (or
    # re-sort them) per property access. Arrays are memoized on first
    # use; `responses` is treated as frozen once any metric is read.
    # Means use the unsorted array (same accumulation order, same
    # float); percentiles use the sorted view (order statistics are
    # permutation-invariant). `sorts_performed` lets tests pin the
    # no-re-sort contract.

    def _values(self, metric: str) -> np.ndarray:
        cache = self.__dict__.setdefault("_metric_values", {})
        arr = cache.get(metric)
        if arr is None:
            arr = np.asarray(
                [getattr(r, metric) for r in self.responses], dtype=float
            )
            cache[metric] = arr
        return arr

    def _sorted_values(self, metric: str) -> np.ndarray:
        cache = self.__dict__.setdefault("_metric_sorted", {})
        arr = cache.get(metric)
        if arr is None:
            arr = np.sort(self._values(metric))
            cache[metric] = arr
            self.__dict__["_sorts"] = self.__dict__.get("_sorts", 0) + 1
        return arr

    @property
    def sorts_performed(self) -> int:
        """How many metric sorts this result has ever run (cache probe)."""
        return self.__dict__.get("_sorts", 0)

    @property
    def total_tokens(self) -> int:
        """Output tokens generated across the whole fleet."""
        total = self.__dict__.get("_total_tokens")
        if total is None:
            total = sum(r.output_len for r in self.responses)
            self.__dict__["_total_tokens"] = total
        return total

    @property
    def throughput_tok_s(self) -> float:
        """Fleet-level output tokens per second of virtual wall-clock."""
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def requests_per_s(self) -> float:
        """Completed requests per second of virtual wall-clock.

        The fleet-level service rate `repro.bench` sweep cells record
        alongside token throughput — request-shaped SLOs (and prices)
        care about completions, not just tokens.
        """
        return len(self.responses) / self.makespan_s if self.makespan_s else 0.0

    @property
    def mean_ttft_s(self) -> float:
        """Mean time-to-first-token over all responses (seconds)."""
        if not self.responses:
            return 0.0
        return float(np.mean(self._values("ttft_s")))

    @property
    def mean_tpot_s(self) -> float:
        """Mean time-per-output-token over all responses (seconds)."""
        if not self.responses:
            return 0.0
        return float(np.mean(self._values("tpot_s")))

    @property
    def preemptions(self) -> int:
        """Preemption (evict-and-recompute) events across the fleet."""
        return sum(r.preemptions for r in self.replica_results)

    @property
    def n_transfers(self) -> int:
        """KV migrations performed (disaggregated runs only)."""
        return len(self.transfers)

    @property
    def transfer_bytes_total(self) -> float:
        """Total bytes moved over the prefill→decode interconnect."""
        return float(sum(t["bytes"] for t in self.transfers))

    @property
    def transfer_bytes_per_request(self) -> float:
        """Mean migrated bytes per transferred request (0.0 if none)."""
        if not self.transfers:
            return 0.0
        return self.transfer_bytes_total / len(self.transfers)

    @property
    def transfer_stall_s_total(self) -> float:
        """Seconds requests spent in flight on the interconnect in total
        (arrival at the decode pool minus export from the prefill pool)."""
        return float(sum(t["arrive_s"] - t["export_s"] for t in self.transfers))

    @property
    def peak_running(self) -> int:
        """Max concurrently decoding requests summed across replicas."""
        return sum(r.peak_running for r in self.replica_results)

    def p99_ttft_s(self, q: float = 99.0) -> float:
        """The ``q``-th percentile TTFT — the tail latency SLOs watch."""
        if not self.responses:
            return 0.0
        return float(np.percentile(self._sorted_values("ttft_s"), q))

    @staticmethod
    def _meets_slo(
        r: Response, ttft_slo_s: float | None, tpot_slo_s: float | None
    ) -> bool:
        return (ttft_slo_s is None or r.ttft_s <= ttft_slo_s) and (
            tpot_slo_s is None or r.tpot_s <= tpot_slo_s
        )

    def slo_attainment(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> float:
        """Fraction of requests meeting every given SLO (1.0 if none set)."""
        if not self.responses:
            return 1.0
        ok = sum(self._meets_slo(r, ttft_slo_s, tpot_slo_s) for r in self.responses)
        return ok / len(self.responses)

    def goodput_tok_s(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> float:
        """Throughput counting only tokens from SLO-meeting requests.

        The serving metric the paper's efficiency story cashes out in: a
        fleet that admits more requests but blows its latency targets
        earns no goodput for them.
        """
        if not self.makespan_s:
            return 0.0
        good = sum(
            r.output_len
            for r in self.responses
            if self._meets_slo(r, ttft_slo_s, tpot_slo_s)
        )
        return good / self.makespan_s

    def summary(
        self,
        ttft_slo_s: float | None = None,
        tpot_slo_s: float | None = None,
        include_probes: bool = False,
    ) -> dict:
        """Fleet metrics plus per-replica summaries (JSON-friendly).

        ``include_probes=True`` appends a ``"probes"`` block with the
        process-wide :func:`~repro.gpu.inference.step_time_cache_info`
        hit/miss counters and this result's ``sorts_performed`` — cache
        introspection for profiling. Default off: probes are machine-
        and history-dependent, and committed artifacts must stay
        byte-identical.
        """
        out = {
            "router": self.router,
            "n_replicas": self.n_replicas,
            "requests": len(self.responses),
            "total_tokens": self.total_tokens,
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tok_s,
            "mean_ttft_s": self.mean_ttft_s,
            "p99_ttft_s": self.p99_ttft_s(),
            "mean_tpot_s": self.mean_tpot_s,
            "preemptions": self.preemptions,
            "peak_running": self.peak_running,
            "slo_attainment": self.slo_attainment(ttft_slo_s, tpot_slo_s),
            "goodput_tok_s": self.goodput_tok_s(ttft_slo_s, tpot_slo_s),
            "replicas": [r.summary() for r in self.replica_results],
        }
        if self.decode_router:  # disaggregated run: migration accounting
            out.update(
                {
                    "decode_router": self.decode_router,
                    "roles": list(self.roles),
                    "n_transfers": self.n_transfers,
                    "transfer_bytes_per_request": self.transfer_bytes_per_request,
                    "transfer_bytes_total": self.transfer_bytes_total,
                    "transfer_stall_s_total": self.transfer_stall_s_total,
                }
            )
        if include_probes:
            out["probes"] = {
                "sorts_performed": self.sorts_performed,
                "step_time_cache": step_time_cache_info(),
            }
        return out


class _EventState:
    """Per-run next-event heap + router-snapshot delta cache.

    The global event loop needs, at every iteration, the replica with
    the earliest next event — and, at every arrival, a fresh
    :class:`ReplicaSnapshot` list for the router. Scanning every replica
    per event is O(replicas) twice over; at fleet scale both reads are
    served from incrementally-maintained state instead:

    * **next-event heap** — entries ``(time, index, version)``, one live
      entry per replica with work. A replica's schedule only changes
      when the loop mutates it (``submit``/``step``/``import_kv``), at
      which point :meth:`touch` bumps its version and pushes a fresh
      entry; stale entries are skipped lazily at :meth:`peek`. Heap
      order ``(t, idx)`` reproduces the linear scan's tie-break exactly
      (earliest time, then lowest replica index).
    * **snapshot cache** — routers read the cached
      :class:`ReplicaSnapshot` per replica; only replicas dirtied since
      the last read (stepped, submitted to, imported into, or mutated by
      a KV export) are rebuilt. Between consecutive arrivals usually one
      replica stepped, so a fleet-of-N routing decision costs O(1)
      snapshot rebuilds instead of O(N).
    """

    def __init__(self, replicas: list[ServingEngine]) -> None:
        self.replicas = replicas
        self.versions = [0] * len(replicas)
        self.heap: list[tuple] = []
        self.snaps: dict[int, ReplicaSnapshot] = {}
        self.dirty: set[int] = set(range(len(replicas)))
        for idx in range(len(replicas)):
            self.push(idx)

    def track_new(self) -> None:
        """Start tracking a replica just appended to ``replicas``."""
        idx = len(self.versions)
        self.versions.append(0)
        self.dirty.add(idx)
        self.push(idx)

    def push(self, idx: int) -> None:
        """(Re-)publish ``idx``'s next event time into the heap."""
        t = self.replicas[idx].peek_next_event()
        if t is not None:
            heapq.heappush(self.heap, (t, idx, self.versions[idx]))

    def touch(self, idx: int) -> None:
        """Record a mutation of replica ``idx``: its published next-event
        entry is invalidated and re-pushed, its snapshot marked stale."""
        self.versions[idx] += 1
        self.dirty.add(idx)
        self.push(idx)

    def peek(self) -> tuple:
        """``(time, index)`` of the earliest live event, or ``(None, None)``
        when every replica is drained. Prunes stale entries as it goes."""
        heap = self.heap
        versions = self.versions
        while heap:
            t, idx, ver = heap[0]
            if versions[idx] == ver:
                return t, idx
            heapq.heappop(heap)
        return None, None

    def pop_head(self) -> None:
        """Consume the (already-peeked) valid head entry."""
        heapq.heappop(self.heap)

    def snapshots(self, live: list[int]) -> list[ReplicaSnapshot]:
        """Router-facing snapshots for ``live``, rebuilt only where dirty."""
        snaps = self.snaps
        dirty = self.dirty
        replicas = self.replicas
        out = []
        for j in live:
            s = snaps.get(j)
            if s is None or j in dirty:
                engine = replicas[j]
                s = snaps[j] = ReplicaSnapshot(
                    index=j,
                    clock=engine.clock,
                    n_running=engine.n_running,
                    n_waiting=engine.n_waiting,
                    free_kv_tokens=engine.free_kv_tokens,
                    capacity_kv_tokens=engine.kv_cache.capacity_tokens,
                )
                dirty.discard(j)
            out.append(s)
        return out


def _validated_stream(requests):
    """Validate a streamed (non-list) request iterable lazily.

    Streamed traces must already be in arrival order — the loop consumes
    them one event at a time and cannot sort what it has not seen.
    Duplicate ids raise exactly as :func:`validate_batch` would.
    """
    seen: set[str] = set()
    last = 0.0
    for request in requests:
        if request.request_id in seen:
            raise ValueError(
                f"duplicate request_id {request.request_id!r} in batch"
            )
        seen.add(request.request_id)
        if request.arrival_s < last:
            raise ValueError(
                "streamed requests must be sorted by arrival_s "
                f"(got {request.arrival_s} after {last}); materialize to a "
                "list to let the cluster sort them"
            )
        last = request.arrival_s
        yield request


class ServingCluster:
    """N identical serving replicas behind one global event loop.

    Parameters
    ----------
    arch, recipe, spec:
        As for :class:`ServingEngine`; all replicas share them.
    n_replicas:
        Initial fleet size (autoscaling may grow it per run).
    router:
        Router name (see :func:`available_routers`) or instance.
    kv_token_budget:
        Per-replica flat KV budget (1-token pages) when no byte budget is
        given — the exact single-engine semantics.
    page_budget_bytes / block_tokens:
        Alternative per-replica sizing: each replica gets
        ``PagedKVCache.from_byte_budget(page_budget_bytes, arch, recipe,
        block_tokens)``, so the recipe's KV format sets how many requests
        fit — the MX+ capacity win.
    max_batch, model:
        Forwarded to every replica engine.
    scheduler:
        Batch-composition policy for every replica (name or
        :class:`~repro.serve.sched.Scheduler` instance); see
        :func:`repro.serve.sched.available_schedulers`.
    autoscale:
        Optional :class:`AutoscalePolicy` consulted at every arrival;
        replicas added per run start cold and are discarded afterwards.
        In a disaggregated cluster the policy is applied to each pool
        *independently* on that pool's own queue depths (prefill pool at
        arrivals, decode pool at handoff instants).
    n_prefill / n_decode:
        Setting both (each >= 1) switches the cluster to **disaggregated
        prefill/decode serving**: the fleet becomes a prefill pool
        (replica indices ``0..n_prefill-1``) and a decode pool. Arrivals
        are routed over the prefill pool by ``router``; when a request's
        first token completes there, its KV pages migrate over
        ``kv_transfer`` to a decode replica chosen by ``decode_router``,
        and decoding resumes after the transfer latency — see
        :meth:`run`. ``n_replicas`` is ignored in this mode.
    decode_router:
        Router for handoff placement over the decode pool (default
        ``"free-kv-at-arrival"``: the replica with the most free KV
        pages at the export instant).
    kv_transfer:
        Interconnect model pricing each migration — a
        :class:`~repro.serve.kvcache.KVTransfer`, a preset name from
        :data:`repro.serve.kvcache.INTERCONNECTS`, or ``None`` for the
        PCIe 5-class default.
    tracer:
        Optional :class:`repro.obs.Tracer` shared by the whole fleet:
        every replica engine emits lifecycle/step events into it (tagged
        with its replica index), and the cluster adds routing, autoscale,
        and KV-transfer events on the ``-1`` cluster lane. Off-path is a
        single ``if`` per site — results are bit-identical untraced.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`. The event loop
        samples fleet gauges (queue depth, running/waiting, free KV
        tokens, preemptions, replica count, step-time-cache hit rate,
        and — disaggregated — transfers in flight / link busy time) at
        arrival instants, throttled by the registry's ``interval_s``,
        plus one closing sample at the fleet makespan. Note
        ``step_cache_hit_rate`` reads the process-global
        :func:`~repro.gpu.inference.step_time_cache_info` counters, so
        for byte-identical metrics across two runs in one process call
        :func:`~repro.gpu.inference.clear_step_time_cache` before each.
    """

    def __init__(
        self,
        arch: ArchSpec,
        recipe,
        n_replicas: int = 1,
        router="round-robin",
        spec: GPUSpec = RTX5090,
        kv_token_budget: int = 262_144,
        max_batch: int = 256,
        page_budget_bytes: float | None = None,
        block_tokens: int = 16,
        model=None,
        scheduler="prefill-first",
        autoscale: AutoscalePolicy | None = None,
        n_prefill: int = 0,
        n_decode: int = 0,
        decode_router="free-kv-at-arrival",
        kv_transfer: KVTransfer | str | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if n_prefill < 0 or n_decode < 0:
            raise ValueError("n_prefill and n_decode must be >= 0")
        if (n_prefill > 0) != (n_decode > 0):
            raise ValueError(
                "disaggregation needs both n_prefill and n_decode >= 1 "
                f"(got n_prefill={n_prefill}, n_decode={n_decode})"
            )
        self.disaggregated = n_prefill > 0
        if self.disaggregated:
            n_replicas = n_prefill + n_decode
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if isinstance(recipe, str):
            recipe = QuantRecipe.from_name(recipe)
        self.arch = arch
        self.recipe = recipe
        self.spec = spec
        self.n_replicas = n_replicas
        self.n_prefill = n_prefill
        self.n_decode = n_decode
        self._router_spec = router
        self._decode_router_spec = decode_router
        self._scheduler_spec = scheduler
        self._kv_token_budget = kv_token_budget
        self._page_budget_bytes = page_budget_bytes
        self._block_tokens = block_tokens
        self._max_batch = max_batch
        self._model = model
        self.autoscale = autoscale
        self.kv_transfer = (
            get_interconnect(kv_transfer) if kv_transfer is not None else KVTransfer()
        )
        self.roles = (
            ["prefill"] * n_prefill + ["decode"] * n_decode
            if self.disaggregated
            else ["unified"] * n_replicas
        )
        self.tracer = tracer
        self.metrics = metrics
        self.engines = [self._make_engine(role) for role in self.roles]
        if tracer is not None:
            for i, engine in enumerate(self.engines):
                engine.tracer = tracer
                engine.trace_replica = i

    def _make_engine(self, role: str = "unified") -> ServingEngine:
        """One replica: fresh paged cache, shared arch/recipe/GPU."""
        if self._page_budget_bytes is not None:
            cache = PagedKVCache.from_byte_budget(
                self._page_budget_bytes,
                self.arch,
                self.recipe,
                block_tokens=self._block_tokens,
            )
        else:
            cache = PagedKVCache.from_token_budget(self._kv_token_budget)
        from copy import deepcopy

        from .sched import get_scheduler

        scheduler = self._scheduler_spec
        if not isinstance(scheduler, str):
            # Engine steps interleave in the global event loop, so replicas
            # must not share one (potentially stateful) scheduler instance —
            # each replica gets a deep copy, configuration included.
            scheduler = deepcopy(get_scheduler(scheduler))
        return ServingEngine(
            self.arch,
            self.recipe,
            spec=self.spec,
            max_batch=self._max_batch,
            model=self._model,
            kv_cache=cache,
            scheduler=scheduler,
            role=role,
        )

    @property
    def capacity_tokens_per_replica(self) -> int:
        """KV tokens one replica can hold (page count x page size)."""
        return self.engines[0].kv_cache.capacity_tokens

    def _apply_autoscale(
        self,
        replicas: list[ServingEngine],
        live: list[int],
        router: Router,
        t_arr: float,
        events: list,
        state: _EventState,
        role: str = "unified",
        roles: list | None = None,
        protect: frozenset = frozenset(),
    ) -> None:
        """Grow/retire live replicas toward the policy's target count.

        In a disaggregated cluster this runs once per *pool* (``live`` is
        that pool's replica indices and ``role`` the pool membership new
        replicas get); ``protect`` shields replicas that look idle but
        have a KV migration in flight toward them from retirement.
        """
        snaps = state.snapshots(live)
        target = self.autoscale.target(snaps)
        while len(live) < target:
            replicas.append(self._make_engine(role))
            if roles is not None:
                roles.append(role)
            live.append(len(replicas) - 1)
            if self.tracer is not None:
                replicas[-1].tracer = self.tracer
                replicas[-1].trace_replica = len(replicas) - 1
                self.tracer.emit(
                    t_arr, -1, "autoscale", "", ("scale-up", len(replicas) - 1)
                )
            router.resize(len(replicas))
            state.track_new()
            events.append((t_arr, "scale-up", len(replicas) - 1))
        if len(live) > target:
            # Retire drained replicas only (highest index first): requests
            # in flight are never migrated.
            for j in sorted(live, reverse=True):
                if len(live) <= target:
                    break
                if not replicas[j].has_work() and j not in protect:
                    live.remove(j)
                    events.append((t_arr, "scale-down", j))
                    if self.tracer is not None:
                        self.tracer.emit(
                            t_arr, -1, "autoscale", "", ("scale-down", j)
                        )

    def _route_and_submit(
        self,
        router: Router,
        replicas: list[ServingEngine],
        live: list[int],
        request: Request,
        assignments: dict[str, int],
        state: _EventState,
    ) -> None:
        """Route one arrival against live snapshots and submit it.

        The shared arrival path of both event loops: snapshot the
        routable replicas, ask the router, reject out-of-pool answers
        loudly, record the assignment, enqueue on the chosen engine.
        """
        snaps = state.snapshots(live)
        replica = router.route(request, snaps)
        if replica not in live:
            raise ValueError(
                f"router {router.name!r} returned invalid replica "
                f"{replica} (live: {live})"
            )
        assignments[request.request_id] = replica
        if self.tracer is not None:
            self.tracer.emit(
                request.arrival_s, -1, "route",
                request.request_id, (replica,),
            )
        replicas[replica].submit(request)
        state.touch(replica)

    def _sample_fleet_metrics(
        self,
        metrics,
        t: float,
        replicas: list[ServingEngine],
        live: list[int],
        transfers: list | None = None,
    ) -> None:
        """Record one fleet-wide gauge sample at virtual time ``t``.

        Preemptions are counted over *all* replicas (retired ones keep
        their history); occupancy gauges read the live set only.
        """
        n_running = sum(replicas[j].n_running for j in live)
        n_waiting = sum(replicas[j].n_waiting for j in live)
        metrics.gauge("n_running").set(t, n_running)
        metrics.gauge("n_waiting").set(t, n_waiting)
        metrics.gauge("queue_depth").set(t, n_running + n_waiting)
        metrics.gauge("free_kv_tokens").set(
            t, sum(replicas[j].free_kv_tokens for j in live)
        )
        metrics.gauge("n_replicas").set(t, len(live))
        metrics.gauge("preemptions").set(
            t, sum(e._preemptions for e in replicas)
        )
        info = step_time_cache_info()
        lookups = info["hits"] + info["misses"]
        metrics.gauge("step_cache_hit_rate").set(
            t, info["hits"] / lookups if lookups else 0.0
        )
        if transfers is not None:
            metrics.gauge("transfers_in_flight").set(t, len(transfers))
            metrics.gauge("link_busy_s").set(
                t, max(0.0, self._link_busy_until - t)
            )

    @staticmethod
    def _fleet_responses(
        input_ids: list[str], results: list[ServingResult]
    ) -> list[Response]:
        """Responses in original input order, joined across replicas."""
        by_id = {
            resp.request_id: resp for res in results for resp in res.responses
        }
        return [by_id[rid] for rid in input_ids]

    def run(self, requests) -> FleetResult:
        """Serve ``requests`` through the global virtual-time event loop.

        The loop repeatedly takes the earliest event: the next request
        arrival (routed immediately against live replica snapshots, ties
        to the lowest replica index) or the earliest replica step. A
        replica whose step begins before an arrival executes first — the
        scheduling decision at that instant cannot see the future — so
        the whole fleet shares one coherent timeline. Event selection is
        served from a next-event heap and routing snapshots from a delta
        cache (see :class:`_EventState`), so each event costs O(log
        replicas) instead of a linear fleet scan.

        ``requests`` may be a list (sorted and validated up front, and
        responses come back in input order) or any other iterable — a
        generator such as :func:`~repro.serve.workload.iter_workload` or
        :func:`~repro.serve.workload.stream_trace` is consumed lazily,
        one arrival at a time, so million-request traces never
        materialize; streamed input must already be in arrival order and
        responses come back in stream order.

        A disaggregated cluster (``n_prefill``/``n_decode`` set) adds a
        third event type — KV-transfer completions — and is dispatched
        to the pool-aware loop; see the class docstring.
        """
        if self.disaggregated:
            return self._run_disaggregated(requests)
        router = get_router(self._router_spec, self.n_replicas)
        if router.n_replicas != self.n_replicas:
            raise ValueError(
                f"router built for {router.n_replicas} replicas, "
                f"cluster has {self.n_replicas}"
            )
        router.reset()  # instances passed in must behave like fresh ones
        materialized = isinstance(requests, (list, tuple))
        if materialized:
            input_ids = [r.request_id for r in requests]
            pending = iter(arrival_order(requests))  # validates dup ids too
        else:
            input_ids = []  # filled in stream order as arrivals are drawn
            pending = _validated_stream(requests)
        replicas = list(self.engines)  # autoscaling appends; base fleet stays
        live = list(range(len(replicas)))
        for engine in replicas:
            engine.begin_run()
        assignments: dict[str, int] = {}
        autoscale_events: list = []
        state = _EventState(replicas)
        nxt = next(pending, None)
        try:
            while True:
                t_eng, idx = state.peek()
                if nxt is not None and (t_eng is None or nxt.arrival_s <= t_eng):
                    # Arrival event: consult the autoscaler, then route
                    # against the live fleet at this instant.
                    request = nxt
                    nxt = next(pending, None)
                    if not materialized:
                        input_ids.append(request.request_id)
                    if self.autoscale is not None:
                        self._apply_autoscale(
                            replicas,
                            live,
                            router,
                            request.arrival_s,
                            autoscale_events,
                            state,
                        )
                    if self.metrics is not None and self.metrics.due(
                        request.arrival_s
                    ):
                        self._sample_fleet_metrics(
                            self.metrics, request.arrival_s, replicas, live
                        )
                    self._route_and_submit(
                        router, replicas, live, request, assignments, state
                    )
                elif t_eng is not None:
                    # Step event: advance the replica with the earliest
                    # next event (ties to the lowest index).
                    state.pop_head()
                    replicas[idx].step()
                    state.touch(idx)
                else:
                    break  # no arrivals left, every replica drained
        finally:
            for engine in replicas:
                engine.abort()
            router.resize(self.n_replicas)  # reusable instance: undo growth
        # Each replica reports its shard in original input order, exactly
        # as a standalone engine would (reconciliation at n_replicas=1).
        shard_ids: list[list[str]] = [[] for _ in range(len(replicas))]
        for rid in input_ids:
            shard_ids[assignments[rid]].append(rid)
        results = [
            engine.collect_ids(ids) for engine, ids in zip(replicas, shard_ids)
        ]
        if self.metrics is not None:
            t_end = max((e.clock for e in replicas), default=0.0)
            self._sample_fleet_metrics(self.metrics, t_end, replicas, live)
            self.metrics.sample_final(t_end)
        return FleetResult(
            responses=self._fleet_responses(input_ids, results),
            replica_results=results,
            assignments=assignments,
            router=router.name,
            scheduler=replicas[0].scheduler.name,
            autoscale_events=autoscale_events,
        )

    # -- disaggregated prefill/decode serving ---------------------------
    def _run_disaggregated(self, requests: list[Request]) -> FleetResult:
        """The pool-aware event loop: arrivals, steps, and KV transfers.

        Three event types share one virtual timeline, processed earliest
        first (ties: arrival, then transfer completion, then step — the
        same decide-without-seeing-the-future rule as the unified loop):

        * **arrival** — routed over the live *prefill* pool snapshots;
        * **transfer completion** — a migrated request reaches its decode
          replica (``import_kv``) and becomes schedulable there;
        * **step** — the earliest replica advances one scheduler
          iteration. A prefill-role step whose ``handoff_ready`` is
          non-empty triggers exports immediately: pages are released on
          the source (shared prefixes survive via refcounts), a decode
          replica is chosen by ``decode_router`` at that instant, and the
          migration is priced by ``kv_transfer`` — transfers *serialize*
          on the link (one shared interconnect), so concurrent handoffs
          queue behind each other's byte time, while the propagation
          latency pipelines.

        TTFT is decided entirely in the prefill pool (the first token is
        produced there before export), so interconnect bandwidth moves
        TPOT and end-to-end latency, never TTFT — the disaggregation
        property the benchmark asserts.
        """
        prefill_router = get_router(self._router_spec, self.n_prefill)
        decode_router = get_router(self._decode_router_spec, self.n_decode)
        prefill_router.reset()
        decode_router.reset()
        materialized = isinstance(requests, (list, tuple))
        if materialized:
            input_ids = [r.request_id for r in requests]
            pending = iter(arrival_order(requests))  # validates dup ids too
        else:
            input_ids = []
            pending = _validated_stream(requests)
        replicas = list(self.engines)
        roles = list(self.roles)
        live_p = [j for j, role in enumerate(roles) if role == "prefill"]
        live_d = [j for j, role in enumerate(roles) if role == "decode"]
        for engine in replicas:
            engine.begin_run()
        assignments: dict[str, int] = {}
        decode_assignments: dict[str, int] = {}
        autoscale_events: list = []
        transfer_records: list[dict] = []
        transfers: list[tuple] = []  # heap: (t_arrive, seq, dest, handoff, tokens)
        self._transfer_seq = 0
        self._link_busy_until = 0.0
        token_bytes = kv_token_bytes(self.arch, self.recipe)
        state = _EventState(replicas)
        nxt = next(pending, None)
        try:
            while True:
                t_eng, idx = state.peek()
                t_tr = transfers[0][0] if transfers else None
                if (
                    nxt is not None
                    and (t_eng is None or nxt.arrival_s <= t_eng)
                    and (t_tr is None or nxt.arrival_s <= t_tr)
                ):
                    request = nxt
                    nxt = next(pending, None)
                    if not materialized:
                        input_ids.append(request.request_id)
                    if self.autoscale is not None:
                        self._apply_autoscale(
                            replicas,
                            live_p,
                            prefill_router,
                            request.arrival_s,
                            autoscale_events,
                            state,
                            role="prefill",
                            roles=roles,
                        )
                    if self.metrics is not None and self.metrics.due(
                        request.arrival_s
                    ):
                        self._sample_fleet_metrics(
                            self.metrics,
                            request.arrival_s,
                            replicas,
                            live_p + live_d,
                            transfers=transfers,
                        )
                    self._route_and_submit(
                        prefill_router,
                        replicas,
                        live_p,
                        request,
                        assignments,
                        state,
                    )
                elif t_tr is not None and (t_eng is None or t_tr <= t_eng):
                    # Transfer completion: the migrated KV reaches its
                    # decode replica and the request queues there.
                    t_arrive, _, dest, handoff, n_tokens = heapq.heappop(
                        transfers
                    )
                    replicas[dest].import_kv(
                        handoff, t_arrive, transferred_tokens=n_tokens
                    )
                    state.touch(dest)
                elif t_eng is not None:
                    state.pop_head()
                    event = replicas[idx].step()
                    state.touch(idx)
                    if event is not None and event.handoff_ready:
                        for rid in event.handoff_ready:
                            self._start_transfer(
                                rid,
                                idx,
                                replicas,
                                roles,
                                live_d,
                                decode_router,
                                token_bytes,
                                transfers,
                                transfer_records,
                                decode_assignments,
                                autoscale_events,
                                state,
                            )
                else:
                    break  # arrivals and transfers drained, replicas idle
        finally:
            for engine in replicas:
                engine.abort()
            prefill_router.resize(self.n_prefill)
            decode_router.resize(self.n_decode)
        # A request finishes on exactly one replica: its decode replica,
        # or its prefill replica when max_new_tokens == 1 (nothing left
        # to generate after the first token — no transfer at all).
        results = [
            engine.collect_ids(
                [rid for rid in input_ids if rid in engine.finished]
            )
            for engine in replicas
        ]
        if self.metrics is not None:
            t_end = max((e.clock for e in replicas), default=0.0)
            self._sample_fleet_metrics(
                self.metrics, t_end, replicas, live_p + live_d,
                transfers=transfers,
            )
            self.metrics.sample_final(t_end)
        return FleetResult(
            responses=self._fleet_responses(input_ids, results),
            replica_results=results,
            assignments=assignments,
            router=prefill_router.name,
            scheduler=replicas[0].scheduler.name,
            autoscale_events=autoscale_events,
            decode_assignments=decode_assignments,
            decode_router=decode_router.name,
            roles=roles,
            transfers=transfer_records,
        )

    def _start_transfer(
        self,
        rid: str,
        src: int,
        replicas: list[ServingEngine],
        roles: list,
        live_d: list[int],
        decode_router: Router,
        token_bytes: float,
        transfers: list,
        records: list[dict],
        decode_assignments: dict[str, int],
        autoscale_events: list,
        state: _EventState,
    ) -> None:
        """Export ``rid`` from ``src`` and schedule its arrival event.

        The destination is chosen *now* (bytes have to go somewhere), so
        the decode router sees pool state at the export instant. Bytes
        are the migrated context at the recipe's exact per-token KV
        footprint, minus any full prefix blocks the destination already
        holds cached — a shared system prompt resident on the decode
        replica does not cross the wire again.
        """
        handoff = replicas[src].export_kv(rid)
        state.touch(src)  # export released pages: src snapshot is stale
        if self.autoscale is not None:
            inflight = frozenset(dest for _, _, dest, _, _ in transfers)
            self._apply_autoscale(
                replicas,
                live_d,
                decode_router,
                handoff.export_s,
                autoscale_events,
                state,
                role="decode",
                roles=roles,
                protect=inflight,
            )
        snaps = state.snapshots(live_d)
        dest = decode_router.route(handoff.request, snaps)
        if dest not in live_d:
            raise ValueError(
                f"router {decode_router.name!r} returned invalid decode "
                f"replica {dest} (live: {live_d})"
            )
        cached = replicas[dest].kv_cache.cached_prefix_tokens(
            handoff.request.prefix_id, handoff.request.prefix_len
        )
        n_tokens = max(0, handoff.tokens - cached)
        n_bytes = n_tokens * token_bytes
        occupancy = self.kv_transfer.occupancy_s(n_bytes)
        if math.isinf(occupancy):
            raise RuntimeError(
                f"zero-bandwidth interconnect: migrating {n_bytes:.0f} bytes "
                f"for request {rid!r} would never complete"
            )
        start = max(handoff.export_s, self._link_busy_until)
        self._link_busy_until = start + occupancy
        t_arrive = start + self.kv_transfer.latency_s + occupancy
        decode_assignments[rid] = dest
        heapq.heappush(
            transfers, (t_arrive, self._transfer_seq, dest, handoff, n_tokens)
        )
        self._transfer_seq += 1
        records.append(
            {
                "request_id": rid,
                "src": src,
                "dest": dest,
                "tokens": n_tokens,
                "bytes": n_bytes,
                "export_s": handoff.export_s,
                "start_s": start,
                "arrive_s": t_arrive,
            }
        )
        if self.tracer is not None:
            self.tracer.emit(
                handoff.export_s, -1, "transfer", rid,
                (src, dest, n_tokens, n_bytes, start, t_arrive),
            )

    def run_sharded(
        self,
        requests: list[Request],
        n_workers: int | None = None,
        allow_approximate: bool = False,
    ) -> FleetResult:
        """Serve ``requests`` with the fleet partitioned across processes.

        Convenience wrapper over :func:`repro.serve.shard.run_sharded`:
        routes every request at plan time, runs each replica's shard in
        its own worker process, and merges deterministically. For
        shardable routers (``round-robin``, ``least-kv-load``,
        ``prefix-affinity``) the merged :class:`FleetResult` is
        bit-identical to :meth:`run`; load-feedback routers require
        ``allow_approximate=True``. See :mod:`repro.serve.shard` for the
        full determinism contract.
        """
        from .shard import run_sharded

        return run_sharded(
            self,
            requests,
            n_workers=n_workers,
            allow_approximate=allow_approximate,
        )
