"""Synthetic image classification dataset (Table 9's ImageNet stand-in).

Procedurally generated 12x12 grayscale images of parametric patterns
(stripes at several orientations, checkers, blobs, rings) with noise —
enough visual structure that a tiny ViT or CNN reaches high accuracy and
quantization measurably dents it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImageDataset", "make_images"]

N_CLASSES = 8
IMAGE_SIZE = 12


def _pattern(cls: int, rng: np.random.Generator, noise: float = 0.45) -> np.ndarray:
    size = IMAGE_SIZE
    yy, xx = np.mgrid[0:size, 0:size] / size
    phase = rng.uniform(0, 2 * np.pi)
    freq = rng.uniform(2.5, 4.0)
    if cls == 0:  # horizontal stripes
        img = np.sin(2 * np.pi * freq * yy + phase)
    elif cls == 1:  # vertical stripes
        img = np.sin(2 * np.pi * freq * xx + phase)
    elif cls == 2:  # diagonal stripes
        img = np.sin(2 * np.pi * freq * (xx + yy) / np.sqrt(2) + phase)
    elif cls == 3:  # checkerboard
        img = np.sign(np.sin(2 * np.pi * freq * xx + phase)) * np.sign(
            np.sin(2 * np.pi * freq * yy + phase)
        )
    elif cls == 4:  # centered ring
        r = np.hypot(yy - 0.5, xx - 0.5)
        img = np.cos(2 * np.pi * freq * r + phase)
    elif cls == 5:  # gaussian blob
        cy, cx = rng.uniform(0.3, 0.7, 2)
        img = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / 0.02)) * 2 - 1
    elif cls == 6:  # gradient
        angle = rng.uniform(0, 2 * np.pi)
        img = 2 * (np.cos(angle) * xx + np.sin(angle) * yy) - 1
    else:  # cross
        w = 0.12
        img = np.where(
            (np.abs(yy - 0.5) < w) | (np.abs(xx - 0.5) < w), 1.0, -1.0
        )
    return img + rng.normal(0, noise, (size, size))


@dataclass
class ImageDataset:
    train_x: np.ndarray  # (N, size, size)
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    n_classes: int = N_CLASSES


def make_images(n_train: int = 1024, n_test: int = 256, seed: int = 0, noise: float = 0.45) -> ImageDataset:
    rng = np.random.default_rng(seed)

    def batch(n):
        ys = rng.integers(0, N_CLASSES, size=n)
        xs = np.stack([_pattern(int(c), rng, noise) for c in ys])
        return xs, ys

    train_x, train_y = batch(n_train)
    test_x, test_y = batch(n_test)
    return ImageDataset(train_x, train_y, test_x, test_y)
