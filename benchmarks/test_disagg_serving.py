"""Disaggregated prefill/decode serving benchmark: the KV-migration gap,
MX+ vs BF16, across interconnect bandwidths at equal page budget.

Disaggregation dedicates one replica pool to prefill and one to decode,
migrating each request's KV pages across an interconnect between its
first token (produced in the prefill pool) and the rest of its decode.
The trade it buys: **TTFT is decided entirely in the prefill pool** —
the benchmark asserts it is bit-identical across all interconnects and
far below the unified fleet's tail at equal GPU count — and the price it
pays is the migration itself, whose bytes are the recipe's exact
`kv_token_bytes` x context. That is where MX+ cashes in a second time:
a 4.5-bit KV moves ~3.6x fewer bytes per request than BF16, so the same
link sustains ~3.6x the admission rate into the decode pool.

One measured nuance worth keeping: with a *contended* decode pool (the
1 GiB budget here), a slower link also acts as an admission throttle —
fewer concurrent decodes, fewer preemptions — so per-request TPOT is not
monotone in bandwidth; the direct interconnect cost (total in-flight
stall seconds) strictly is, and that is what the benchmark asserts.

The infinite-bandwidth limit is the correctness anchor: on
non-overlapping traffic a 1-prefill + 1-decode cluster with zero-time
transfers reproduces the unified single replica *exactly* (same step
sequence, same virtual instants, split across two engines).
"""

from _util import print_table, run_once, save_result

from repro.models.zoo import ARCHS
from repro.serve import (
    Request,
    ServingCluster,
    kv_token_bytes,
    long_prompt_workload,
)

ARCH = ARCHS["llama-2-13b"]
GIB = 1 << 30
PAGE_BUDGET = 1 * GIB  # per-replica: concurrency is the contended resource
BLOCK_TOKENS = 16
N_REQUESTS = 40
RECIPES = ("bf16", "mxfp4+")
INTERCONNECT_SWEEP = ("100gbe", "pcie5", "nvlink4", "infinite")
TTFT_SLO_S, TPOT_SLO_S = 0.5, 0.05


def _serve_disagg(recipe: str, link: str):
    fleet = ServingCluster(
        ARCH,
        recipe,
        n_prefill=1,
        n_decode=1,
        page_budget_bytes=PAGE_BUDGET,
        block_tokens=BLOCK_TOKENS,
        kv_transfer=link,
    ).run(long_prompt_workload(N_REQUESTS))
    return {
        "p99_ttft_ms": fleet.p99_ttft_s() * 1e3,
        "mean_ttft_ms": fleet.mean_ttft_s * 1e3,
        "mean_tpot_ms": fleet.mean_tpot_s * 1e3,
        "throughput_tok_s": fleet.throughput_tok_s,
        "goodput_tok_s": fleet.goodput_tok_s(TTFT_SLO_S, TPOT_SLO_S),
        "transfer_bytes_per_request": fleet.transfer_bytes_per_request,
        "transfer_stall_ms_total": fleet.transfer_stall_s_total * 1e3,
        "n_transfers": fleet.n_transfers,
        "preemptions": fleet.preemptions,
    }


def _serve_unified(recipe: str):
    """Same GPU count (2 replicas), colocated prefill+decode."""
    fleet = ServingCluster(
        ARCH,
        recipe,
        n_replicas=2,
        router="queue-depth",
        page_budget_bytes=PAGE_BUDGET,
        block_tokens=BLOCK_TOKENS,
    ).run(long_prompt_workload(N_REQUESTS))
    return {
        "p99_ttft_ms": fleet.p99_ttft_s() * 1e3,
        "mean_ttft_ms": fleet.mean_ttft_s * 1e3,
        "mean_tpot_ms": fleet.mean_tpot_s * 1e3,
        "throughput_tok_s": fleet.throughput_tok_s,
        "goodput_tok_s": fleet.goodput_tok_s(TTFT_SLO_S, TPOT_SLO_S),
    }


def _reconciliation():
    """Infinite bandwidth + non-overlapping traffic == unified, exactly."""
    reqs = [
        Request(f"u{i}", prompt_len=512, max_new_tokens=16, arrival_s=i * 5.0)
        for i in range(6)
    ]
    disagg = ServingCluster(
        ARCH, "mxfp4+", n_prefill=1, n_decode=1,
        page_budget_bytes=PAGE_BUDGET, block_tokens=BLOCK_TOKENS,
        kv_transfer="infinite",
    ).run(reqs)
    unified = ServingCluster(
        ARCH, "mxfp4+", n_replicas=1,
        page_budget_bytes=PAGE_BUDGET, block_tokens=BLOCK_TOKENS,
    ).run(reqs)
    err = max(
        abs(a.ttft_s - b.ttft_s) + abs(a.finish_s - b.finish_s)
        for a, b in zip(disagg.responses, unified.responses)
    )
    return {
        "disagg_makespan_s": disagg.makespan_s,
        "unified_makespan_s": unified.makespan_s,
        "max_abs_err_s": err,
    }


def test_disagg_serving(benchmark):
    def run():
        return {
            "page_budget_gib": PAGE_BUDGET // GIB,
            "block_tokens": BLOCK_TOKENS,
            "n_requests": N_REQUESTS,
            "pools": {"prefill": 1, "decode": 1},
            "ttft_slo_s": TTFT_SLO_S,
            "tpot_slo_s": TPOT_SLO_S,
            "kv_bytes_per_token": {
                recipe: kv_token_bytes(ARCH, recipe) for recipe in RECIPES
            },
            "disagg": {
                recipe: {link: _serve_disagg(recipe, link) for link in INTERCONNECT_SWEEP}
                for recipe in RECIPES
            },
            "unified_2_replicas": {recipe: _serve_unified(recipe) for recipe in RECIPES},
            "reconciliation": _reconciliation(),
        }

    table = run_once(benchmark, run)
    for recipe in RECIPES:
        print_table(
            f"Disaggregated serving ({recipe}, {table['page_budget_gib']} GiB "
            "pages, 1 prefill + 1 decode)",
            table["disagg"][recipe],
        )
    print_table("Unified baseline (2 replicas, queue-depth)", table["unified_2_replicas"])
    print_table("Infinite-bandwidth reconciliation", table["reconciliation"])

    # Assertions come before save_result so a failing run can never
    # overwrite the committed artifact.
    bf, mx = table["disagg"]["bf16"], table["disagg"]["mxfp4+"]
    for link in INTERCONNECT_SWEEP:
        # The headline gap: MX+ migrates strictly fewer KV bytes per
        # request than BF16 at equal page budget (4.5 vs 16 bits/elem
        # -> >3x fewer bytes over the same interconnect).
        assert (
            mx[link]["transfer_bytes_per_request"]
            < bf[link]["transfer_bytes_per_request"] / 3
        )
        # ... and turns them into serving quality: goodput under the SLO.
        assert mx[link]["goodput_tok_s"] > bf[link]["goodput_tok_s"]
        assert mx[link]["throughput_tok_s"] > bf[link]["throughput_tok_s"]

    for recipe in RECIPES:
        rows = table["disagg"][recipe]
        # TTFT is decided in the prefill pool before any migration: it
        # must be bit-identical across every interconnect.
        for link in INTERCONNECT_SWEEP[1:]:
            assert rows[link]["p99_ttft_ms"] == rows["100gbe"]["p99_ttft_ms"]
            assert rows[link]["mean_ttft_ms"] == rows["100gbe"]["mean_ttft_ms"]
        # The direct interconnect cost strictly shrinks with bandwidth.
        stalls = [rows[link]["transfer_stall_ms_total"] for link in INTERCONNECT_SWEEP]
        assert stalls[0] > stalls[1] > stalls[2] > stalls[3] == 0.0
        # Disaggregation protects the TTFT tail vs colocated serving at
        # equal GPU count (the DistServe/Splitwise argument).
        assert (
            rows["pcie5"]["p99_ttft_ms"]
            < table["unified_2_replicas"][recipe]["p99_ttft_ms"]
        )

    # The unified-equivalence anchor: zero-time transfers reconcile
    # exactly with the single-replica cluster on non-overlapping traffic.
    assert table["reconciliation"]["max_abs_err_s"] == 0.0

    save_result("disagg_serving", table)
