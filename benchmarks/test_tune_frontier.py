"""Recipe autotuner benchmark: the searched quality/cost Pareto frontier.

Closes the tune -> register -> serve loop end to end and commits the
frontier as ``results/tune_frontier.json``:

* the full pipeline (sensitivity profile on the real numeric model,
  greedy bit-descent + seeded evolutionary search, cost model over
  ``step_time``/``kv_token_bytes``) runs with a fixed seed and must be
  deterministic — the artifact reproduces byte-identically;
* the frontier must contain a *searched mixed MX+/MXFP recipe* that
  Pareto-dominates uniform MXFP4 (strictly lower perplexity AND strictly
  higher simulated serving tokens/s) — the subsystem's reason to exist:
  per-layer format assignment beats every uniform cast;
* the winning recipe round-trips ``register_recipe -> get_recipe ->
  ServingCluster`` and serves a bursty workload at fleet throughput no
  worse than uniform MXFP4's.
"""

import json
from pathlib import Path

from _util import print_table, run_once, save_result

COMMITTED = Path(__file__).parent / "results" / "tune_frontier.json"

from repro.models.zoo import ARCHS
from repro.serve import ServingCluster, get_recipe, make_workload
from repro.tune import autotune

ARCH = ARCHS["llama-2-13b"]
GIB = 1 << 30

#: fixed tuning budget: keep in sync with docs/EXPERIMENTS.md regeneration.
TUNE_KWARGS = dict(model="test-tiny", seed=0, generations=4, population=12)


def _mixes_mxplus_and_mxfp(recipe) -> bool:
    """True when the per-layer assignment mixes MX+ and plain MXFP formats."""
    fmts = {fmt for _, fmt in recipe.layer_overrides} | {recipe.act, recipe.weight}
    fmts.discard("bf16")
    return any("+" in f for f in fmts) and any("+" not in f for f in fmts)


def test_tune_frontier(benchmark):
    def run():
        result = autotune(**TUNE_KWARGS)
        result.frontier.register(overwrite=True)
        return result

    committed = (
        json.loads(COMMITTED.read_text()) if COMMITTED.exists() else None
    )
    result = run_once(benchmark, run)
    payload = result.summary()
    save_result("tune_frontier", payload)

    # The regenerated frontier must agree with the committed artifact it
    # just replaced (recipe set + winner; float jitter across machines is
    # tolerated — same-machine reruns are asserted byte-identical below).
    # A mismatch means the tuner's output changed: commit the regenerated
    # JSON and docs/EXPERIMENTS.md together.
    if committed is not None:
        names = lambda pl: [p["recipe"]["name"] for p in pl["frontier"]["points"]]
        assert names(payload) == names(committed), (
            "tune_frontier.json changed — regenerate docs and commit it"
        )
        assert (payload["winner"] or {}).get("recipe") == (
            committed["winner"] or {}
        ).get("recipe")
    print_table(
        "Tuned recipe frontier (ppl / simulated tok/s)",
        {
            p.recipe.name: {
                "ppl": p.perplexity,
                "tok_s": p.tokens_per_s,
                "kvB_tok": p.kv_bytes_per_token,
            }
            for p in result.frontier
        },
    )

    # The pipeline is deterministic: rerunning with the same seed yields a
    # byte-identical artifact (the committed JSON's reproducibility claim).
    rerun = autotune(**TUNE_KWARGS)
    assert json.dumps(rerun.summary(), sort_keys=True) == json.dumps(
        payload, sort_keys=True
    )

    frontier = result.frontier
    assert len(frontier) >= 5
    # Internal consistency: no frontier point dominates another.
    for p in frontier:
        assert not frontier.dominating(p)

    # The headline claim: a *searched, mixed* MX+/MXFP recipe strictly
    # dominates uniform MXFP4 on (perplexity, tokens/s).
    base = result.uniform["mxfp4"]
    searched = [p for p in frontier if p.origin != "uniform"]
    assert searched, "search contributed nothing beyond the uniform menu"
    dominating = [p for p in searched if p.dominates(base)]
    assert dominating, "no searched recipe dominates uniform MXFP4"
    assert any(_mixes_mxplus_and_mxfp(p.recipe) for p in dominating)
    assert result.winner is not None
    assert result.winner.perplexity < base.perplexity
    assert result.winner.tokens_per_s > base.tokens_per_s

    # tune -> register -> serve: the winner resolves by name and drives a
    # ServingCluster on the full-size architecture.
    name = result.winner.recipe.name
    assert get_recipe(name) == result.winner.recipe
    reqs = make_workload(24, seed=7, arrival="bursty", rate_rps=200.0, burst_size=8)
    fleet_tuned = ServingCluster(
        ARCH, get_recipe(name), n_replicas=2, page_budget_bytes=2 * GIB,
        block_tokens=16,
    ).run(reqs)
    fleet_mxfp4 = ServingCluster(
        ARCH, "mxfp4", n_replicas=2, page_budget_bytes=2 * GIB, block_tokens=16,
    ).run(reqs)
    assert len(fleet_tuned.responses) == len(reqs)
    assert fleet_tuned.throughput_tok_s >= fleet_mxfp4.throughput_tok_s
