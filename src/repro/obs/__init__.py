"""``repro.obs`` — virtual-time observability for the serving stack.

Tracing, metrics, and export for :mod:`repro.serve`: per-request
lifecycle spans and per-replica step spans recorded on the simulation's
own deterministic clock (:mod:`repro.obs.trace`), a counter / gauge /
histogram registry with virtual-time series (:mod:`repro.obs.metrics`),
Perfetto-loadable Chrome trace JSON plus JSONL logs and timeline
reports (:mod:`repro.obs.export`), and a size-capped flight recorder so
million-request runs trace their tail at fixed memory
(:mod:`repro.obs.record`).

Everything hangs off two nullable handles — ``tracer=`` and
``metrics=`` on the engine/cluster — whose off-path is a single ``if``:
an uninstrumented run is bit-identical to the seed, and a traced run's
:class:`~repro.serve.cluster.FleetResult` fingerprint matches the
untraced one exactly.

>>> from repro.obs import Tracer, chrome_trace, validate_chrome_trace
>>> t = Tracer()
>>> t.emit(0.0, 0, "arrive", "r0", (8, 2))
>>> validate_chrome_trace(chrome_trace(t.events()))["n_events"]
3
"""

from .export import (
    Span,
    chrome_trace,
    lifecycle_spans,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
    write_metrics_csv,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .record import FlightRecorder
from .trace import KIND_ORDER, TraceEvent, Tracer, event_key, merge_events

__all__ = [
    "Tracer",
    "TraceEvent",
    "KIND_ORDER",
    "event_key",
    "merge_events",
    "FlightRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "lifecycle_spans",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_event_log",
    "timeline_report",
    "write_metrics_csv",
]
