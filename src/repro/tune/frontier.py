"""Pareto-frontier bookkeeping for searched serving recipes.

The tuner's output is not one recipe but a *frontier*: the set of
(perplexity, tokens/s) points no other candidate dominates. This module
owns the dominance arithmetic, the JSON serialization the committed
``benchmarks/results/tune_frontier.json`` artifact uses, and the bridge
back into the serving stack — :meth:`ParetoFrontier.register` pushes every
frontier recipe through :func:`repro.serve.recipe.register_recipe`, so a
tuned recipe is immediately addressable by name in ``ServingEngine`` /
``ServingCluster``.

>>> from repro.serve import QuantRecipe
>>> a = FrontierPoint(QuantRecipe.from_name("mxfp4"), perplexity=46.7,
...                   tokens_per_s=3905.0, kv_bytes_per_token=217600.0)
>>> b = FrontierPoint(QuantRecipe.from_name("mxfp8"), perplexity=45.0,
...                   tokens_per_s=2000.0, kv_bytes_per_token=422400.0)
>>> f = ParetoFrontier()
>>> f.add(a) and f.add(b)  # neither dominates the other
True
>>> worse = FrontierPoint(QuantRecipe.from_name("mxfp6"), perplexity=47.0,
...                       tokens_per_s=2600.0, kv_bytes_per_token=320000.0)
>>> f.add(worse)  # dominated by `a` on both axes
False
>>> [p.recipe.name for p in f]
['mxfp8', 'mxfp4']
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..serve.recipe import QuantRecipe, register_recipe

__all__ = ["FrontierPoint", "ParetoFrontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One evaluated candidate: a recipe and its quality/cost coordinates.

    ``perplexity`` is *measured* on the real numeric path (lower is
    better); ``tokens_per_s`` is the cost model's simulated serving
    throughput (higher is better). ``predicted_ppl`` keeps the sensitivity
    model's additive estimate for diagnostics, and ``origin`` records which
    search stage produced the point.
    """

    recipe: QuantRecipe
    perplexity: float
    tokens_per_s: float
    kv_bytes_per_token: float
    predicted_ppl: float | None = None
    origin: str = "search"

    def dominates(self, other: "FrontierPoint") -> bool:
        """Pareto dominance: no worse on both axes, strictly better on one."""
        no_worse = (
            self.perplexity <= other.perplexity
            and self.tokens_per_s >= other.tokens_per_s
        )
        strict = (
            self.perplexity < other.perplexity
            or self.tokens_per_s > other.tokens_per_s
        )
        return no_worse and strict

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON view of the point (recipe serialized via ``to_dict``)."""
        out = {
            "recipe": self.recipe.to_dict(),
            "perplexity": self.perplexity,
            "tokens_per_s": self.tokens_per_s,
            "kv_bytes_per_token": self.kv_bytes_per_token,
            "origin": self.origin,
        }
        if self.predicted_ppl is not None:
            out["predicted_ppl"] = self.predicted_ppl
        return out

    @staticmethod
    def from_dict(payload: dict) -> "FrontierPoint":
        """Rebuild a point from its :meth:`to_dict` payload."""
        return FrontierPoint(
            recipe=QuantRecipe.from_dict(payload["recipe"]),
            perplexity=float(payload["perplexity"]),
            tokens_per_s=float(payload["tokens_per_s"]),
            kv_bytes_per_token=float(payload["kv_bytes_per_token"]),
            predicted_ppl=payload.get("predicted_ppl"),
            origin=payload.get("origin", "search"),
        )


@dataclass
class ParetoFrontier:
    """The non-dominated set, kept sorted by ascending perplexity."""

    points: list[FrontierPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    # ------------------------------------------------------------------
    def add(self, point: FrontierPoint) -> bool:
        """Insert ``point`` unless dominated; evict points it dominates.

        Returns True when the point joined the frontier. A point whose
        coordinates duplicate an existing entry is dropped (the first
        recipe to reach a coordinate keeps it, so re-runs are stable).
        """
        for existing in self.points:
            if existing.dominates(point):
                return False
            if (
                existing.perplexity == point.perplexity
                and existing.tokens_per_s == point.tokens_per_s
            ):
                return False
        self.points = [p for p in self.points if not point.dominates(p)]
        self.points.append(point)
        self.points.sort(key=lambda p: (p.perplexity, -p.tokens_per_s))
        return True

    def dominating(self, other: FrontierPoint) -> list[FrontierPoint]:
        """Frontier points that Pareto-dominate ``other``."""
        return [p for p in self.points if p.dominates(other)]

    def best_under(self, max_perplexity: float) -> FrontierPoint | None:
        """Highest-throughput point whose perplexity meets the budget."""
        ok = [p for p in self.points if p.perplexity <= max_perplexity]
        return max(ok, key=lambda p: p.tokens_per_s) if ok else None

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON view of the whole frontier (ascending perplexity)."""
        return {"points": [p.to_dict() for p in self.points]}

    @staticmethod
    def from_payload(payload: dict) -> "ParetoFrontier":
        """Rebuild a frontier from :meth:`to_payload` (re-checks dominance)."""
        frontier = ParetoFrontier()
        for entry in payload.get("points", []):
            frontier.add(FrontierPoint.from_dict(entry))
        return frontier

    def save(self, path) -> None:
        """Write the frontier as deterministic JSON (stable key order)."""
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )

    @staticmethod
    def load(path) -> "ParetoFrontier":
        """Read a frontier back from :meth:`save` JSON."""
        return ParetoFrontier.from_payload(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def register(self, overwrite: bool = True) -> list[QuantRecipe]:
        """Register every frontier recipe in the serving recipe registry.

        This is the tune -> serve handoff: afterwards each winner resolves
        via ``repro.serve.get_recipe(name)`` and can be handed straight to
        ``ServingEngine`` / ``ServingCluster``.
        """
        return [register_recipe(p.recipe, overwrite=overwrite) for p in self.points]
