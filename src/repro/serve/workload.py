"""Workload layer: seeded synthetic request generators + JSONL traces.

The serving claims of the paper (and of any microscaling deployment) only
mean something under realistic traffic — bursty arrivals, heavy-tailed
prompt/output lengths, shared system prompts. This module produces
:class:`repro.serve.Request` streams three ways:

* **Synthetic generators** (:func:`make_workload`): Poisson or bursty
  arrival processes crossed with configurable per-request length
  distributions (:class:`LengthDist`), all driven by one seed so every
  run of a given spec is bit-identical.
* **Scenario presets** (:func:`chat_workload`): the shared-prefix chat
  scenario — every request starts with one of ``n_prefixes`` common
  system prompts, declared via ``Request.prefix_id`` so a paged KV cache
  can store each system prompt once.
* **Trace replay** (:func:`save_trace` / :func:`load_trace`): a one-
  request-per-line JSONL format that round-trips exactly, so captured or
  generated workloads can be replayed byte-for-byte across machines.

>>> reqs = make_workload(4, seed=7, arrival="poisson", rate_rps=50.0,
...                      prompt=LengthDist.uniform(64, 256),
...                      output=LengthDist.fixed(16))
>>> len(reqs), reqs[0].request_id, reqs[0].max_new_tokens
(4, 'w0000', 16)
>>> all(a.arrival_s <= b.arrival_s for a, b in zip(reqs, reqs[1:]))
True
>>> chat = chat_workload(6, n_prefixes=2, prefix_len=128, seed=0)
>>> sorted({r.prefix_id for r in chat})
['sys-0', 'sys-1']
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .engine import Request

__all__ = [
    "LengthDist",
    "poisson_arrivals",
    "bursty_arrivals",
    "make_workload",
    "iter_workload",
    "chat_workload",
    "long_prompt_workload",
    "save_trace",
    "load_trace",
    "stream_trace",
]


@dataclass(frozen=True)
class LengthDist:
    """A distribution over token counts, sampled with a shared RNG.

    Construct via the classmethods; ``sample`` always returns ints >= 1.

    >>> LengthDist.fixed(512).sample(np.random.default_rng(0), 3).tolist()
    [512, 512, 512]
    >>> d = LengthDist.lognormal(median=256, sigma=0.8, low=16, high=4096)
    >>> s = d.sample(np.random.default_rng(1), 1000)
    >>> bool(s.min() >= 16) and bool(s.max() <= 4096)
    True
    """

    kind: str  # "fixed" | "uniform" | "lognormal"
    low: int = 1
    high: int = 1
    median: float = 1.0
    sigma: float = 0.0

    @classmethod
    def fixed(cls, value: int) -> "LengthDist":
        """Every request gets exactly ``value`` tokens."""
        if value < 1:
            raise ValueError("length must be >= 1")
        return cls("fixed", low=value, high=value)

    @classmethod
    def uniform(cls, low: int, high: int) -> "LengthDist":
        """Integer-uniform on ``[low, high]`` inclusive."""
        if not 1 <= low <= high:
            raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
        return cls("uniform", low=low, high=high)

    @classmethod
    def lognormal(
        cls, median: float, sigma: float, low: int = 1, high: int = 1 << 20
    ) -> "LengthDist":
        """Log-normal with given median/shape, clipped to ``[low, high]``.

        The heavy right tail matches observed production prompt-length
        distributions (most prompts short, a few very long).
        """
        if median < 1 or sigma < 0 or not 1 <= low <= high:
            raise ValueError("invalid lognormal parameters")
        return cls("lognormal", low=low, high=high, median=median, sigma=sigma)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer token counts (>= 1) using ``rng``."""
        if self.kind == "fixed":
            return np.full(n, self.low, dtype=int)
        if self.kind == "uniform":
            return rng.integers(self.low, self.high + 1, size=n)
        if self.kind == "lognormal":
            raw = np.exp(rng.normal(np.log(self.median), self.sigma, size=n))
            return np.clip(np.rint(raw), self.low, self.high).astype(int)
        raise ValueError(f"unknown LengthDist kind {self.kind!r}")


def poisson_arrivals(
    n: int, rate_rps: float, rng: np.random.Generator, start_s: float = 0.0
) -> np.ndarray:
    """``n`` arrival times from a Poisson process of ``rate_rps`` req/s."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    gaps = rng.exponential(1.0 / rate_rps, size=n)
    return start_s + np.cumsum(gaps)


def bursty_arrivals(
    n: int,
    rate_rps: float,
    rng: np.random.Generator,
    burst_size: int = 8,
    jitter_s: float = 1e-3,
    start_s: float = 0.0,
) -> np.ndarray:
    """On/off arrivals: bursts of ``burst_size`` near-simultaneous requests.

    Bursts are spaced so the *long-run average* rate is still
    ``rate_rps``; within a burst, requests land within ``jitter_s`` of
    the burst head. This is the stress case for admission control: the
    instantaneous rate far exceeds the mean.
    """
    if rate_rps <= 0 or burst_size < 1:
        raise ValueError("rate_rps must be > 0 and burst_size >= 1")
    n_bursts = -(-n // burst_size)
    heads = start_s + np.cumsum(rng.exponential(burst_size / rate_rps, size=n_bursts))
    times = np.repeat(heads, burst_size)[:n]
    times = times + rng.uniform(0.0, jitter_s, size=n)
    return np.sort(times)


def make_workload(
    n: int,
    seed: int = 0,
    arrival: str = "poisson",
    rate_rps: float = 10.0,
    prompt: LengthDist | None = None,
    output: LengthDist | None = None,
    burst_size: int = 8,
    id_prefix: str = "w",
) -> list[Request]:
    """Generate ``n`` requests with seeded arrivals and lengths.

    ``arrival`` is ``"poisson"`` or ``"bursty"``; lengths default to a
    heavy-tailed lognormal prompt (median 256) and uniform 16-128 output.
    The same ``(n, seed, ...)`` spec always yields the identical list.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    prompt = prompt or LengthDist.lognormal(median=256, sigma=0.7, low=16, high=4096)
    output = output or LengthDist.uniform(16, 128)
    rng = np.random.default_rng(seed)
    if arrival == "poisson":
        times = poisson_arrivals(n, rate_rps, rng)
    elif arrival == "bursty":
        times = bursty_arrivals(n, rate_rps, rng, burst_size=burst_size)
    else:
        raise ValueError(f"unknown arrival process {arrival!r}")
    prompts = prompt.sample(rng, n)
    outputs = output.sample(rng, n)
    width = max(4, len(str(n - 1)))
    return [
        Request(
            request_id=f"{id_prefix}{i:0{width}d}",
            prompt_len=int(prompts[i]),
            max_new_tokens=int(outputs[i]),
            arrival_s=float(times[i]),
        )
        for i in range(n)
    ]


def iter_workload(
    n: int,
    seed: int = 0,
    arrival: str = "poisson",
    rate_rps: float = 10.0,
    prompt: LengthDist | None = None,
    output: LengthDist | None = None,
    burst_size: int = 8,
    id_prefix: str = "w",
    chunk_size: int = 65536,
) -> "Iterator[Request]":
    """Lazily generate ``n`` requests — :func:`make_workload` for traces
    too large to materialize.

    Requests are drawn in chunks of ``chunk_size`` from one seeded RNG,
    so peak memory is O(chunk) however large ``n`` is: a million-request
    trace streams straight into :meth:`ServingCluster.run
    <repro.serve.ServingCluster.run>` without ever existing as a list.
    The stream is deterministic — the same ``(n, seed, ...)`` spec always
    yields the identical sequence, in non-decreasing arrival order — and
    with ``chunk_size >= n`` it reproduces :func:`make_workload`
    *bit-identically* (one chunk performs exactly the same three RNG
    passes). Smaller chunks interleave the arrival/length draws per
    chunk, which is its own (equally deterministic) spec, not a prefix
    of the materialized one.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    prompt = prompt or LengthDist.lognormal(median=256, sigma=0.7, low=16, high=4096)
    output = output or LengthDist.uniform(16, 128)
    if arrival not in ("poisson", "bursty"):
        raise ValueError(f"unknown arrival process {arrival!r}")
    rng = np.random.default_rng(seed)
    width = max(4, len(str(n - 1)))
    start = 0.0
    for lo in range(0, n, chunk_size):
        m = min(chunk_size, n - lo)
        if arrival == "poisson":
            times = poisson_arrivals(m, rate_rps, rng, start_s=start)
        else:
            times = bursty_arrivals(
                m, rate_rps, rng, burst_size=burst_size, start_s=start
            )
        start = float(times[-1])  # next chunk arrives strictly after
        prompts = prompt.sample(rng, m)
        outputs = output.sample(rng, m)
        for i in range(m):
            yield Request(
                request_id=f"{id_prefix}{lo + i:0{width}d}",
                prompt_len=int(prompts[i]),
                max_new_tokens=int(outputs[i]),
                arrival_s=float(times[i]),
            )


def chat_workload(
    n: int,
    n_prefixes: int = 4,
    prefix_len: int = 512,
    seed: int = 0,
    arrival: str = "poisson",
    rate_rps: float = 10.0,
    turn: LengthDist | None = None,
    output: LengthDist | None = None,
) -> list[Request]:
    """The shared-prefix chat scenario.

    Each request is a user turn appended to one of ``n_prefixes`` common
    system prompts of ``prefix_len`` tokens; ``prompt_len`` is the full
    context (prefix + turn) and ``prefix_id``/``prefix_len`` mark the
    sharable part. With a block-granular KV cache each system prompt is
    stored once per replica, and prefix hits skip most of the prefill.
    """
    if n_prefixes < 1 or prefix_len < 1:
        raise ValueError("n_prefixes and prefix_len must be >= 1")
    base = make_workload(
        n,
        seed=seed,
        arrival=arrival,
        rate_rps=rate_rps,
        prompt=turn or LengthDist.lognormal(median=96, sigma=0.6, low=8, high=1024),
        output=output or LengthDist.uniform(16, 96),
        id_prefix="c",
    )
    rng = np.random.default_rng(seed + 1)
    groups = rng.integers(0, n_prefixes, size=n)
    return [
        Request(
            request_id=r.request_id,
            prompt_len=prefix_len + r.prompt_len,
            max_new_tokens=r.max_new_tokens,
            arrival_s=r.arrival_s,
            prefix_id=f"sys-{groups[i]}",
            prefix_len=prefix_len,
        )
        for i, r in enumerate(base)
    ]


def long_prompt_workload(
    n: int,
    seed: int = 11,
    rate_rps: float = 40.0,
    burst_size: int = 8,
    max_prompt: int = 1024,
) -> list[Request]:
    """The bursty long-prompt scenario: the scheduler stress case.

    Bursts of requests with prompts drawn from a heavy long-prompt
    distribution (median ``max_prompt // 2``) and real decode budgets —
    the workload where a prefill-first scheduler head-of-line-blocks
    decodes behind each burst's prompt processing, and where chunked
    prefill earns its tail-TTFT win (benchmarks/test_scheduler_policies).
    ``max_prompt`` caps the prompt length so the trace stays admissible
    at tight page budgets.
    """
    return make_workload(
        n,
        seed=seed,
        arrival="bursty",
        rate_rps=rate_rps,
        burst_size=burst_size,
        prompt=LengthDist.lognormal(
            median=max_prompt // 2, sigma=0.5, low=128, high=max_prompt
        ),
        output=LengthDist.uniform(32, 96),
        id_prefix="lp",
    )


# ----------------------------------------------------------------------
# JSONL trace format
# ----------------------------------------------------------------------
_TRACE_FIELDS = ("request_id", "prompt_len", "max_new_tokens", "arrival_s",
                 "prefix_id", "prefix_len")


def save_trace(path, requests: Iterable[Request]) -> None:
    """Write requests as one JSON object per line (replayable trace).

    ``requests`` may be any iterable — a generator such as
    :func:`iter_workload` streams straight to disk one line at a time,
    so saving a million-request trace never materializes it. The bytes
    written are identical either way. Numeric-mode token payloads
    (``prompt_tokens``) are included as plain lists when present, so
    numeric traces replay exactly too.
    """
    with Path(path).open("w") as f:
        for r in requests:
            row = {k: getattr(r, k) for k in _TRACE_FIELDS}
            if r.prompt_tokens is not None:
                row["prompt_tokens"] = np.asarray(r.prompt_tokens).tolist()
            f.write(json.dumps(row))
            f.write("\n")


def stream_trace(path) -> Iterator[Request]:
    """Lazily read a JSONL trace, one :class:`Request` per line.

    The generator holds one line in memory at a time, so a
    million-request trace feeds :meth:`ServingCluster.run
    <repro.serve.ServingCluster.run>` without ever being a list.
    :func:`load_trace` is exactly ``list(stream_trace(path))``.
    """
    with Path(path).open() as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            unknown = set(row) - set(_TRACE_FIELDS) - {"prompt_tokens"}
            if unknown:
                raise ValueError(
                    f"{path}:{lineno}: unknown trace fields {sorted(unknown)}"
                )
            tokens = row.pop("prompt_tokens", None)
            if tokens is not None:
                row["prompt_tokens"] = np.asarray(tokens, dtype=int)
                row.pop("prompt_len", None)  # derived from the payload
            yield Request(**row)


def load_trace(path) -> list[Request]:
    """Read a JSONL trace back into :class:`Request` objects.

    Round-trips :func:`save_trace` exactly::

        save_trace(p, reqs); assert load_trace(p) == reqs
    """
    return list(stream_trace(path))
