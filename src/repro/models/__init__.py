"""Model zoo: scaled-down LLM stand-ins + full-size arch descriptors."""

from .outliers import inject_outliers, inject_qk_outliers, verify_equivalence
from .zoo import ARCHS, PROFILES, ArchSpec, ModelProfile, get_corpus, load_model

__all__ = [
    "load_model",
    "get_corpus",
    "PROFILES",
    "ModelProfile",
    "ARCHS",
    "ArchSpec",
    "inject_outliers",
    "inject_qk_outliers",
    "verify_equivalence",
]
