"""GPU serving simulation through the unified `repro.serve` API: the
stage-level Figure 11/13 numbers plus a request-level continuous-batching
run with per-request TTFT/TPOT accounting over a paged KV cache.

For the multi-replica cluster, workload generators, and shared-prefix
caching, continue with examples/cluster_serving.py.

Run:  python examples/serving_simulation.py
"""

from repro.gpu.inference import end_to_end_speedup, simulate_inference
from repro.models.zoo import ARCHS
from repro.serve import PagedKVCache, QuantRecipe, Request, ServingEngine, get_recipe

arch = ARCHS["llama-2-13b"]
print(f"Serving {arch.name} (dim={arch.dim}, layers={arch.n_layers}) — "
      "4 requests x 1024 prompt tokens, RTX 5090-class GPU\n")

print(f"{'recipe':>10s} {'prefill ms':>11s} {'decode ms (64 tok)':>19s} "
      f"{'speedup vs BF16':>16s}")
for name in ["bf16", "mxfp8", "a8w4", "mxfp4", "a-mxfp4+", "mxfp4+", "mxfp4++"]:
    recipe = get_recipe(name)
    st = simulate_inference(arch, recipe, batch=4, prompt_len=1024, output_len=64)
    speedup = end_to_end_speedup(arch, recipe, 4, 1024, 64)
    print(f"{name:>10s} {st.prefill_s * 1e3:11.2f} {st.decode_s * 1e3:19.2f} "
          f"{speedup:16.2f}x")

print("""
Reading the table:
 * decode dominates at 64 output tokens and is memory-bound, so 4-bit
   weights/KV-cache buy most of the speedup;
 * A-MXFP4+ (software integration, one extra sparse MMA) costs ~1.5x in
   prefill but almost nothing in decode;
 * MXFP4+/MXFP4++ with the Tensor-Core BCU (hardware integration) track
   MXFP4 within a fraction of a percent.""")

print("Hardware-integration check (Figure 12): prefill-only slowdown")
for name in ["llama-2-7b", "llama-2-13b", "llama-3.1-8b"]:
    a = ARCHS[name]
    hw = simulate_inference(a, "mxfp4+", 1, 2048, 0).prefill_s
    base = simulate_inference(a, "mxfp4", 1, 2048, 0).prefill_s
    print(f"  {name:>14s}: {hw / base:.4f}x")

# ----------------------------------------------------------------------
# Request-level serving: a mixed batch under continuous batching.
# KV memory goes through a paged allocator — here 16-token pages sized
# to a 16k-token budget; with requests declaring `prefix_id`, common
# system prompts would be stored once (see examples/cluster_serving.py).
# ----------------------------------------------------------------------
print("\nContinuous batching (MXFP4+ recipe): 8 mixed requests")
engine = ServingEngine(
    arch, QuantRecipe.from_name("mxfp4+"),
    kv_cache=PagedKVCache.from_token_budget(16_384, block_tokens=16),
)
requests = [
    Request(f"req-{i}", prompt_len=256 * (1 + i % 4),
            max_new_tokens=16 + 8 * (i % 3), arrival_s=0.02 * i)
    for i in range(8)
]
result = engine.run(requests)
print(f"{'request':>8s} {'prompt':>7s} {'out':>4s} {'TTFT ms':>8s} "
      f"{'TPOT ms':>8s} {'e2e ms':>8s}")
for resp in result.responses:
    print(f"{resp.request_id:>8s} {resp.prompt_len:7d} {resp.output_len:4d} "
          f"{resp.ttft_s * 1e3:8.1f} {resp.tpot_s * 1e3:8.2f} "
          f"{resp.e2e_latency_s * 1e3:8.1f}")
summary = result.summary()
print(f"\n  throughput: {summary['throughput_tok_s']:.0f} tok/s, "
      f"mean TTFT {summary['mean_ttft_s'] * 1e3:.1f} ms, "
      f"mean TPOT {summary['mean_tpot_s'] * 1e3:.2f} ms "
      f"({result.n_prefill_steps} prefill / {result.n_decode_steps} decode steps, "
      f"{summary['preemptions']} preemptions, "
      f"peak concurrency {summary['peak_running']}, "
      f"{result.kv['used_blocks']}/{result.kv['num_blocks']} pages in use at end)")
