"""Tests for the vision substrate (repro.nn.vision): conv-as-im2col,
classifier training, quantized inference, and QA fine-tuning."""

import numpy as np
import pytest

from repro.data.images import IMAGE_SIZE, make_images
from repro.nn.quantize import QuantContext
from repro.nn.tensor import Tensor
from repro.nn.vision import (
    Conv2d,
    TinyCNN,
    TinyViT,
    _im2col_indices,
    classifier_accuracy,
    qa_finetune,
    train_classifier,
)


@pytest.fixture(scope="module")
def data():
    return make_images(256, 96, noise=0.6)


class TestIm2Col:
    def test_output_size(self):
        idx, out = _im2col_indices(12, 3, 1)
        assert out == 10
        assert idx.shape == (100, 9)

    def test_indices_cover_kernel_window(self):
        idx, _ = _im2col_indices(5, 3, 1)
        # first patch: rows 0-2 x cols 0-2 of a 5-wide image
        assert idx[0].tolist() == [0, 1, 2, 5, 6, 7, 10, 11, 12]

    def test_conv_matches_manual(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(rng, in_ch=1, out_ch=2, kernel=3, size=6)
        x = rng.standard_normal((1, 1, 36))
        out = conv(Tensor(x)).data
        # manual correlation for output position (0, 0), channel 0
        img = x[0, 0].reshape(6, 6)
        w = conv.proj.weight.data[:, 0].reshape(3, 3)
        expect = float(np.sum(img[:3, :3] * w))
        assert out[0, 0, 0] == pytest.approx(expect)

    def test_conv_gradients_flow(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(rng, 1, 2, kernel=3, size=6)
        x = Tensor(rng.standard_normal((2, 1, 36)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert conv.proj.weight.grad is not None


class TestModels:
    def test_cnn_forward_shape(self, data):
        model = TinyCNN(seed=0)
        logits = model(data.test_x[:4])
        assert logits.shape == (4, 8)

    def test_vit_forward_shape(self, data):
        model = TinyViT(seed=0)
        logits = model(data.test_x[:4])
        assert logits.shape == (4, 8)

    def test_vit_has_outlier_channels(self, data):
        model = TinyViT(seed=0)
        fs = model.norm1.fixed_scale.data
        assert fs.max() > 4 * np.median(fs)

    def test_untrained_near_chance(self, data):
        model = TinyCNN(seed=0)
        acc = classifier_accuracy(model, data)
        assert acc < 40.0  # 8 classes -> chance 12.5%

    @pytest.mark.parametrize("factory", [TinyCNN, TinyViT], ids=["cnn", "vit"])
    def test_training_beats_chance(self, factory, data):
        model = train_classifier(factory(seed=0), data, steps=40)
        acc = classifier_accuracy(model, data)
        assert acc > 40.0

    def test_quantized_accuracy_defined(self, data):
        model = train_classifier(TinyCNN(seed=1), data, steps=30)
        acc = classifier_accuracy(model, data, QuantContext.named("mxfp4"))
        assert 0.0 <= acc <= 100.0

    def test_qa_finetune_improves_quantized(self, data):
        model = train_classifier(TinyCNN(seed=2), data, steps=60)
        qc = QuantContext.named("mxfp4")
        before = classifier_accuracy(model, data, qc)
        qa_finetune(model, data, qc, steps=40)
        after = classifier_accuracy(model, data, qc)
        assert after >= before - 2.0  # never materially worse

    def test_mxfp8_close_to_fp(self, data):
        model = train_classifier(TinyCNN(seed=3), data, steps=50)
        fp = classifier_accuracy(model, data)
        q8 = classifier_accuracy(model, data, QuantContext.named("mxfp8"))
        assert abs(fp - q8) < 5.0
