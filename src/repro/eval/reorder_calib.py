"""Calibration for Section 8.3 channel reordering.

The paper predetermines the channel ordering of the query/key matrices by
averaging per-channel outlier counts over a sample split. Here we run the
model on calibration tokens, collect each layer's attention-input
activations (the operands of the Wq/Wk matmuls), count 3-sigma outliers
per channel, and build the scatter permutation. Applying the same
permutation to both the activations and the weight rows keeps the matmul
exact (see ``Linear.__call__``).
"""

from __future__ import annotations

import numpy as np

from ..core.reorder import channel_outlier_counts, reorder_permutation
from ..nn.quantize import QuantContext
from ..nn.tensor import no_grad
from ..nn.transformer import TransformerLM

__all__ = ["attention_inputs", "calibrate_qk_permutations"]


def attention_inputs(model: TransformerLM, tokens: np.ndarray) -> list[np.ndarray]:
    """Per-layer post-norm attention inputs on ``tokens`` (no quantization)."""
    tokens = np.asarray(tokens)
    if tokens.ndim == 1:
        tokens = tokens[None, :]
    acts: list[np.ndarray] = []
    with no_grad():
        x = model.embed(tokens)
        x = x + model._positional(tokens.shape[1])
        for block in model.blocks:
            acts.append(block.attn_norm(x).data)
            x = block(x)
    return acts


def calibrate_qk_permutations(
    model: TransformerLM, tokens: np.ndarray, block_size: int = 32
) -> dict[int, np.ndarray]:
    """Per-layer scatter permutation from calibration outlier counts."""
    perms: dict[int, np.ndarray] = {}
    for layer, acts in enumerate(attention_inputs(model, tokens)):
        counts = channel_outlier_counts(acts)
        perms[layer] = reorder_permutation(counts, block_size)
    return perms


def reorder_context(
    model: TransformerLM, tokens: np.ndarray, base: QuantContext
) -> QuantContext:
    """A copy of ``base`` with calibrated reordering enabled."""
    return base.with_(qk_permutations=calibrate_qk_permutations(model, tokens))
