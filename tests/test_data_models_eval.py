"""Tests for the data substrates, model zoo, and evaluation harness."""

import dataclasses

import numpy as np
import pytest

from repro.data.corpus import DATASETS, CorpusSpec, make_corpus
from repro.data.images import make_images
from repro.data.tasks import TASKS, make_task
from repro.eval import perplexity, score_continuations, task_accuracy
from repro.eval.reorder_calib import attention_inputs, calibrate_qk_permutations, reorder_context
from repro.models.outliers import inject_outliers, inject_qk_outliers, verify_equivalence
from repro.models.zoo import ARCHS, PROFILES, get_corpus, load_model
from repro.nn.quantize import QuantContext
from repro.nn.transformer import TransformerLM


@pytest.fixture(scope="module")
def tiny():
    return load_model("test-tiny")


@pytest.fixture(scope="module")
def corpus():
    return get_corpus("wiki2-sim", 60_000)


class TestCorpus:
    def test_deterministic(self):
        spec = dataclasses.replace(DATASETS["wiki2-sim"], train_tokens=2000, val_tokens=500)
        a, b = make_corpus(spec), make_corpus(spec)
        np.testing.assert_array_equal(a.train, b.train)

    def test_row_stochastic(self):
        c = make_corpus(dataclasses.replace(DATASETS["wiki2-sim"], train_tokens=1000))
        np.testing.assert_allclose(c.transitions.sum(axis=1), 1.0)

    def test_entropy_floor_positive(self):
        c = make_corpus(dataclasses.replace(DATASETS["wiki2-sim"], train_tokens=1000))
        assert 0 < c.entropy_rate() < np.log(c.spec.vocab_size)

    def test_val_batch_shape(self):
        c = make_corpus(dataclasses.replace(DATASETS["wiki2-sim"], train_tokens=1000))
        batch = c.val_batch(4, 32)
        assert batch.shape == (4, 33)

    def test_datasets_differ(self):
        w = make_corpus(dataclasses.replace(DATASETS["wiki2-sim"], train_tokens=1000))
        c = make_corpus(dataclasses.replace(DATASETS["c4-sim"], train_tokens=1000))
        assert not np.array_equal(w.train[:500], c.train[:500])

    def test_zipfian_marginals(self):
        c = make_corpus(dataclasses.replace(DATASETS["wiki2-sim"], train_tokens=20000))
        counts = np.bincount(c.train, minlength=c.spec.vocab_size)
        assert counts[:16].sum() > counts[64:].sum()


class TestTasks:
    def test_task_shapes(self, corpus):
        task = make_task(corpus, TASKS["arc_easy-sim"])
        n = task.spec.n_questions
        assert task.prompts.shape == (n, task.spec.prompt_len)
        assert task.choices.shape == (n, task.spec.n_choices, task.spec.cont_len)

    def test_answers_in_range(self, corpus):
        task = make_task(corpus, TASKS["lambada-sim"])
        assert np.all(task.answers >= 0)
        assert np.all(task.answers < task.spec.n_choices)

    def test_deterministic(self, corpus):
        t1 = make_task(corpus, TASKS["arc_easy-sim"])
        t2 = make_task(corpus, TASKS["arc_easy-sim"])
        np.testing.assert_array_equal(t1.choices, t2.choices)


class TestImages:
    def test_shapes_and_classes(self):
        data = make_images(64, 32)
        assert data.train_x.shape == (64, 12, 12)
        assert set(np.unique(data.train_y)) <= set(range(8))

    def test_noise_controls_difficulty(self):
        clean = make_images(32, 8, noise=0.01)
        noisy = make_images(32, 8, noise=2.0)
        assert np.std(noisy.train_x) > np.std(clean.train_x)


class TestZoo:
    def test_profiles_cover_paper_models(self):
        for name in ["opt-66b-sim", "llama-3.1-8b-sim", "mistral-7b-sim", "phi-4-14b-sim"]:
            assert name in PROFILES

    def test_archs_have_real_dims(self):
        assert ARCHS["llama-2-13b"].dim == 5120
        assert ARCHS["llama-3.1-70b"].n_kv_heads == 8  # GQA

    def test_load_model_cached(self, tiny):
        again = load_model("test-tiny")
        assert again is tiny

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            load_model("gpt-5-sim")


class TestOutlierInjection:
    def test_gain_injection_exact(self, corpus):
        cfg = dataclasses.replace(PROFILES["test-tiny"].config, name="inj-test")
        original = TransformerLM(cfg)
        transformed = TransformerLM(cfg)
        transformed.load_state_dict(original.state_dict())
        inject_outliers(transformed, channels=[3, 17], scale=64.0)
        tokens = corpus.val[:33][None, :]
        diff = verify_equivalence(original, transformed, tokens, atol=1e-6)
        assert diff < 1e-6

    def test_qk_injection_exact(self, corpus):
        cfg = dataclasses.replace(PROFILES["test-tiny"].config, name="inj-test2")
        original = TransformerLM(cfg)
        transformed = TransformerLM(cfg)
        transformed.load_state_dict(original.state_dict())
        inject_qk_outliers(transformed, channels=[2], scale=16.0)
        tokens = corpus.val[:33][None, :]
        assert verify_equivalence(original, transformed, tokens, atol=1e-6) < 1e-6

    def test_injection_changes_quantized(self, tiny, corpus):
        # A *trained* model: the exact transform leaves BF16 behaviour
        # intact but adds quantization damage.
        model = TransformerLM(tiny.config)
        model.load_state_dict(tiny.state_dict())
        tokens = corpus.val[:129][None, :]
        base_before = model.perplexity(tokens, QuantContext())
        q_before = model.perplexity(tokens, QuantContext.named("mxfp4"))
        inject_outliers(model, channels=[2, 33], scale=128.0)
        base_after = model.perplexity(tokens, QuantContext())
        q_after = model.perplexity(tokens, QuantContext.named("mxfp4"))
        assert base_after == pytest.approx(base_before, rel=1e-3)
        assert q_after > q_before


class TestEvalHarness:
    def test_perplexity_ordering(self, tiny, corpus):
        base = perplexity(tiny, corpus, QuantContext(), batch=4, seq_len=64)
        q4 = perplexity(tiny, corpus, QuantContext.named("mxfp4"), batch=4, seq_len=64)
        q8 = perplexity(tiny, corpus, QuantContext.named("mxfp8"), batch=4, seq_len=64)
        assert q4 > base
        assert q8 < q4

    def test_trained_model_beats_chance(self, tiny, corpus):
        base = perplexity(tiny, corpus, QuantContext(), batch=4, seq_len=64)
        assert base < corpus.spec.vocab_size / 2  # far better than uniform

    def test_score_continuations_batched_consistent(self, tiny, corpus):
        task = make_task(corpus, dataclasses.replace(TASKS["arc_easy-sim"], n_questions=8))
        prompts = np.repeat(task.prompts, 4, axis=0)
        conts = task.choices.reshape(-1, task.choices.shape[-1])
        s_big = score_continuations(tiny, prompts, conts, batch_size=64)
        s_small = score_continuations(tiny, prompts, conts, batch_size=3)
        np.testing.assert_allclose(s_big, s_small, rtol=1e-10)

    def test_task_accuracy_beats_chance(self, tiny, corpus):
        task = make_task(corpus, dataclasses.replace(TASKS["arc_easy-sim"], n_questions=32))
        acc = task_accuracy(tiny, task, QuantContext())
        assert acc > 100.0 * task.chance_accuracy() + 10


class TestReorderCalibration:
    def test_attention_inputs_shape(self, tiny, corpus):
        acts = attention_inputs(tiny, corpus.val[:65])
        assert len(acts) == len(tiny.blocks)
        assert acts[0].shape[-1] == tiny.config.dim

    def test_permutations_valid(self, tiny, corpus):
        perms = calibrate_qk_permutations(tiny, corpus.val[:65])
        for perm in perms.values():
            assert sorted(perm.tolist()) == list(range(tiny.config.dim))

    def test_reorder_context_exact_at_full_precision(self, tiny, corpus):
        tokens = corpus.val[:65][None, :]
        base = QuantContext(bf16_base=False)
        ctx = reorder_context(tiny, corpus.val[:65], base)
        a = tiny(tokens, base).data
        b = tiny(tokens, ctx).data
        np.testing.assert_allclose(a, b, atol=1e-9)
