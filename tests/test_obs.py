"""Observability contract tests: tracing never perturbs, exports pin bytes.

Four families, hypothesis-driven where the contract quantifies over
seeds / routers / schedulers:

* **non-perturbation** — a cluster run with a :class:`~repro.obs.Tracer`
  and :class:`~repro.obs.MetricsRegistry` attached must produce a
  :class:`~repro.serve.FleetResult` *bit-identical* to the untraced run
  (the nullable-tracer off-path is a single ``if``; the on-path only
  observes).
* **shard-merge determinism** — for routers in
  :data:`~repro.serve.SHARDABLE_ROUTERS`, the canonical merge of
  per-worker trace streams equals the single-process trace
  event-for-event (``(t, replica, kind, req, data)`` is a total order
  over event multisets, so emission interleaving cannot leak through).
* **export byte-identity** — the Chrome-trace JSON is a pure function
  of the event multiset + metrics snapshot: two runs of the same
  workload serialise to the same bytes (the process-global step-time
  cache is cleared per run — its hit-rate series is the one
  history-dependent input).
* **primitives** — flight-recorder ring accounting, gauge sampling and
  registry throttling, histogram bucketing, span reconstruction, and
  the validator's rejection of malformed payloads.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.inference import clear_step_time_cache
from repro.models.zoo import ARCHS
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Span,
    TraceEvent,
    Tracer,
    chrome_trace,
    event_key,
    lifecycle_spans,
    merge_events,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
    write_metrics_csv,
)
from repro.serve import (
    SHARDABLE_ROUTERS,
    ServingCluster,
    available_schedulers,
    make_workload,
    run_sharded,
)

from test_event_loop_determinism import PROPERTY_SETTINGS, _fingerprint

ARCH = ARCHS["llama-2-7b"]


def _cluster(router="round-robin", scheduler="prefill-first", n_replicas=2,
             traced=False, **kw):
    tracer = Tracer() if traced else None
    metrics = MetricsRegistry() if traced else None
    return ServingCluster(
        ARCH,
        "mxfp4+",
        n_replicas=n_replicas,
        router=router,
        scheduler=scheduler,
        kv_token_budget=32_768,
        tracer=tracer,
        metrics=metrics,
        **kw,
    )


class TestNonPerturbation:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 1_000_000),
        router=st.sampled_from(
            ["round-robin", "least-kv-load", "queue-depth",
             "free-kv-at-arrival", "prefix-affinity"]
        ),
        scheduler=st.sampled_from(available_schedulers()),
    )
    def test_traced_fleet_bitidentical(self, seed, router, scheduler):
        reqs = make_workload(16, seed=seed, rate_rps=100.0)
        plain = _cluster(router, scheduler).run(reqs)
        traced = _cluster(router, scheduler, traced=True).run(reqs)
        assert _fingerprint(plain) == _fingerprint(traced)

    def test_traced_disagg_bitidentical(self):
        reqs = make_workload(12, seed=3, rate_rps=60.0)

        def cluster(traced):
            return ServingCluster(
                ARCH, "mxfp4+", n_prefill=1, n_decode=1,
                kv_token_budget=32_768, kv_transfer="pcie5",
                tracer=Tracer() if traced else None,
                metrics=MetricsRegistry() if traced else None,
            )

        assert _fingerprint(cluster(False).run(reqs)) == _fingerprint(
            cluster(True).run(reqs)
        )

    def test_summary_probes_flag(self):
        fleet = _cluster().run(make_workload(6, seed=0, rate_rps=50.0))
        assert "probes" not in fleet.summary()
        probes = fleet.summary(include_probes=True)["probes"]
        assert probes["sorts_performed"] >= 1
        assert {"hits", "misses"} <= set(probes["step_time_cache"])


class TestShardMergeDeterminism:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 1_000_000),
        router=st.sampled_from(sorted(SHARDABLE_ROUTERS)),
        n_replicas=st.integers(1, 3),
    )
    def test_merged_trace_equals_single_process(self, seed, router, n_replicas):
        reqs = make_workload(14, seed=seed, rate_rps=90.0)
        single = _cluster(router, n_replicas=n_replicas, traced=True)
        single.run(reqs)
        sharded = _cluster(router, n_replicas=n_replicas, traced=True)
        run_sharded(sharded, reqs, n_workers=2)
        assert sharded.tracer.events() == single.tracer.events()

    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 1_000_000), n_chunks=st.integers(1, 5))
    def test_merge_is_partition_invariant(self, seed, n_chunks):
        # merge_events over ANY partition of a stream equals the sorted
        # whole — the property the per-worker merge rests on.
        cluster = _cluster(traced=True)
        cluster.run(make_workload(10, seed=seed, rate_rps=80.0))
        events = cluster.tracer.raw_events()
        chunks = [events[i::n_chunks] for i in range(n_chunks)]
        assert merge_events(chunks) == sorted(events, key=event_key)


class TestExportByteIdentity:
    def test_chrome_trace_bytes_repeat(self, tmp_path):
        reqs = make_workload(20, seed=5, rate_rps=100.0)
        paths = []
        for name in ("a.json", "b.json"):
            # The step-time memo is process-global; its hit-rate series
            # is the only history-dependent metric, so byte identity
            # requires starting each run from cold counters.
            clear_step_time_cache()
            cluster = _cluster(traced=True)
            cluster.run(reqs)
            path = tmp_path / name
            write_chrome_trace(path, cluster.tracer.events(), cluster.metrics)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_export_validates_and_logs(self, tmp_path):
        cluster = _cluster(traced=True)
        cluster.run(make_workload(12, seed=1, rate_rps=70.0))
        events = cluster.tracer.events()
        payload = chrome_trace(events, cluster.metrics)
        stats = validate_chrome_trace(payload)
        assert stats["complete_pairs"] > 0 and stats["instants"] > 0
        assert stats["counters"] > 0
        log = tmp_path / "events.jsonl"
        assert write_event_log(log, events) == len(events)
        first = json.loads(log.read_text().splitlines()[0])
        assert set(first) == {"t", "replica", "kind", "req", "data"}
        report = timeline_report(events, max_requests=3)
        assert "| request |" in report and "- finish: 12" in report
        csv = tmp_path / "metrics.csv"
        rows = write_metrics_csv(csv, cluster.metrics)
        assert rows > 0
        assert csv.read_text().startswith("series,t,value\n")


class TestValidator:
    def _ok(self, ph="i", **kw):
        ev = {"name": "x", "ph": ph, "ts": 1.0, "pid": 0, "tid": 0}
        ev.update(kw)
        return ev

    def test_rejects_backwards_ts(self):
        payload = {"traceEvents": [self._ok(ts=2.0), self._ok(ts=1.0)]}
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace(payload)

    def test_rejects_unmatched_pairs(self):
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace({"traceEvents": [self._ok(ph="B")]})
        with pytest.raises(ValueError, match="E without B"):
            validate_chrome_trace({"traceEvents": [self._ok(ph="E")]})
        with pytest.raises(ValueError, match="mismatched"):
            validate_chrome_trace({"traceEvents": [
                self._ok(ph="B", name="a"), self._ok(ph="E", name="b"),
            ]})

    def test_rejects_unknown_phase_and_shape(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace({"traceEvents": [self._ok(ph="Z")]})


class TestPrimitives:
    def test_flight_recorder_ring(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.append(i)
        assert list(rec) == [7, 8, 9]
        assert rec.appended == 10 and rec.dropped == 7

    @given(st.lists(st.integers(), max_size=50))
    def test_flight_recorder_unbounded_is_a_list(self, items):
        rec = FlightRecorder()
        for item in items:
            rec.append(item)
        assert list(rec) == items and rec.dropped == 0

    def test_capped_tracer_keeps_newest_events(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.emit(float(i), 0, "arrive", f"r{i}")
        assert [e.req for e in t.events()] == ["r3", "r4"]
        assert t.dropped == 3

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("preemptions")
        c.inc()
        assert c.value == 1
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_throttle_and_final_sample(self):
        reg = MetricsRegistry(interval_s=1.0)
        g = reg.gauge("queue_depth")  # inherits the registry's interval
        for t, v in [(0.0, 1), (0.5, 2), (1.0, 3), (1.2, 4)]:
            g.set(t, v)
        assert g.series == [(0.0, 1), (1.0, 3)]
        assert g.value == 4  # live value tracks every set
        reg.sample_final(2.0)
        assert g.series[-1] == (2.0, 4)

    def test_registry_due_throttles(self):
        reg = MetricsRegistry(interval_s=1.0)
        fired = [t for t in (0.0, 0.3, 0.9, 1.0, 1.5, 2.1) if reg.due(t)]
        assert fired == [0.0, 1.0, 2.1]

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("ttft_s", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 1]
        assert snap["total"] == 4 and snap["sum"] == pytest.approx(6.05)

    def test_lifecycle_spans_preempt_reopens_queue(self):
        events = [
            TraceEvent(0.0, 0, "arrive", "r0", (8, 4)),
            TraceEvent(0.1, 0, "admit", "r0", (0, 8)),
            TraceEvent(0.1, 0, "prefill_chunk", "r0", (8, 0.2)),
            TraceEvent(0.6, 0, "preempt", "r0"),
            TraceEvent(0.9, 0, "admit", "r0", (8, 0)),
            TraceEvent(1.4, 0, "finish", "r0", (4,)),
        ]
        spans = [(s.name, s.t0, s.t1) for s in lifecycle_spans(events)]
        assert spans == [
            ("queue", 0.0, 0.1),
            ("prefill", 0.1, 0.2),
            ("decode", 0.2, 0.6),
            ("queue", 0.6, 0.9),
            ("decode", 0.9, 1.4),
        ]

    def test_lifecycle_spans_tolerate_truncated_stream(self):
        # A ring that evicted the arrive/admit prefix must not crash or
        # invent spans with no opening event.
        events = [
            TraceEvent(2.0, 0, "prefill_chunk", "r0", (4, 2.1)),
            TraceEvent(3.0, 0, "finish", "r0", (1,)),
        ]
        spans = lifecycle_spans(events)
        assert [(s.name, s.t0, s.t1) for s in spans] == [
            ("prefill", 2.0, 2.1), ("decode", 2.1, 3.0),
        ]
        assert lifecycle_spans([]) == []

    def test_span_fields(self):
        s = Span("r0", "transfer", 1.0, 2.0, -1)
        assert s.replica == -1 and s.t1 - s.t0 == 1.0
