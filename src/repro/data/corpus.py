"""Synthetic language corpora standing in for WikiText-2 and C4.

A corpus is a first-order Markov chain over a small vocabulary with
Zipfian state popularity and sparse per-state successor sets — enough
structure for a small transformer to learn real next-token statistics, so
that perplexity (and its degradation under quantization) is meaningful.

Two named profiles mirror the paper's two datasets: ``wiki2-sim`` and
``c4-sim`` differ in seed, vocabulary mixing, and branching factor, so they
give correlated-but-distinct perplexities, like WikiText-2 vs C4 do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CorpusSpec", "Corpus", "make_corpus", "DATASETS"]


@dataclass(frozen=True)
class CorpusSpec:
    name: str
    vocab_size: int = 128
    branching: int = 8  # likely successors per state
    concentration: float = 0.4  # Dirichlet concentration over successors
    zipf_a: float = 1.2  # popularity skew of successor states
    seed: int = 1234
    train_tokens: int = 60_000
    val_tokens: int = 12_000
    # Blend this chain's transitions with another named dataset's:
    # (name, weight-of-other). Used to make c4-sim a *related* distribution
    # to wiki2-sim, the way C4 and WikiText-2 share English — models
    # trained on one transfer to the other with moderately higher
    # perplexity instead of collapsing.
    blend: tuple | None = None


@dataclass
class Corpus:
    spec: CorpusSpec
    transitions: np.ndarray  # (V, V) row-stochastic
    train: np.ndarray  # (train_tokens,) int64
    val: np.ndarray  # (val_tokens,) int64

    def entropy_rate(self) -> float:
        """Per-token entropy of the generating chain (nats): the perplexity
        floor any model can reach is exp(entropy_rate)."""
        pi = _stationary(self.transitions)
        p = self.transitions
        with np.errstate(divide="ignore", invalid="ignore"):
            h_rows = -np.nansum(np.where(p > 0, p * np.log(p), 0.0), axis=1)
        return float(pi @ h_rows)

    def val_batch(self, batch: int, seq_len: int, offset: int = 0) -> np.ndarray:
        """Deterministic evaluation batch of shape (batch, seq_len + 1)."""
        need = batch * (seq_len + 1)
        start = offset % max(1, len(self.val) - need)
        chunk = self.val[start : start + need]
        return chunk.reshape(batch, seq_len + 1)


def _stationary(p: np.ndarray) -> np.ndarray:
    """Stationary distribution via power iteration."""
    v = np.full(p.shape[0], 1.0 / p.shape[0])
    for _ in range(200):
        v = v @ p
        v /= v.sum()
    return v


def _build_transitions(spec: CorpusSpec, rng: np.random.Generator) -> np.ndarray:
    vocab = spec.vocab_size
    # Zipfian popularity: low token ids are globally more likely successors.
    popularity = 1.0 / np.arange(1, vocab + 1) ** spec.zipf_a
    popularity /= popularity.sum()
    p = np.zeros((vocab, vocab))
    for state in range(vocab):
        succ = rng.choice(vocab, size=spec.branching, replace=False, p=popularity)
        weights = rng.dirichlet(np.full(spec.branching, spec.concentration))
        p[state, succ] += weights
    # Small smoothing so every transition has nonzero probability (keeps
    # cross-entropy finite for any model output).
    p = 0.98 * p + 0.02 / vocab
    return p / p.sum(axis=1, keepdims=True)


def _generate(p: np.ndarray, n: int, rng: np.random.Generator, start: int = 0) -> np.ndarray:
    cdf = np.cumsum(p, axis=1)
    u = rng.random(n)
    out = np.empty(n, dtype=np.int64)
    state = start
    for i in range(n):
        state = int(np.searchsorted(cdf[state], u[i]))
        out[i] = state
    return out


def make_corpus(spec: CorpusSpec) -> Corpus:
    rng = np.random.default_rng(spec.seed)
    p = _build_transitions(spec, rng)
    if spec.blend is not None:
        other_name, weight = spec.blend
        other = _build_transitions(DATASETS[other_name], np.random.default_rng(DATASETS[other_name].seed))
        p = (1.0 - weight) * other + weight * p
        p = p / p.sum(axis=1, keepdims=True)
    train = _generate(p, spec.train_tokens, rng)
    val = _generate(p, spec.val_tokens, rng, start=int(train[-1]))
    return Corpus(spec=spec, transitions=p, train=train, val=val)


#: Named dataset profiles standing in for the paper's two corpora.
DATASETS: dict[str, CorpusSpec] = {
    "wiki2-sim": CorpusSpec(name="wiki2-sim", seed=1234, branching=8, zipf_a=1.2),
    "c4-sim": CorpusSpec(
        name="c4-sim", seed=987, branching=12, zipf_a=1.05, concentration=0.6,
        blend=("wiki2-sim", 0.25),
    ),
}
