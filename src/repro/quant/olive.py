"""OliVe (Guo et al., ISCA'23) — outlier-victim pair quantization.

Outliers (3-sigma rule) are stored with a wide "abfloat" encoding by
sacrificing ("pruning to zero") their adjacent *victim* element, keeping
the memory layout aligned. Non-outliers use INT4. The original operates
per tensor; MX-OliVe (the paper's variant) uses groups of 32 with
floating-point scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocks import from_blocks, to_blocks
from ..core.elem import E4M3, round_half_even
from .base import SchemeContext

__all__ = ["OliVeContext", "quantize_olive"]


def quantize_olive(x: np.ndarray, group: int, axis: int = -1) -> np.ndarray:
    """Outlier-victim pair fake quantization over groups along ``axis``."""
    blocked = to_blocks(x, group, axis)
    data = blocked.data

    mu = np.mean(data)
    sigma = np.std(data)
    outlier = np.abs(data - mu) > 3.0 * sigma

    # Victims: the pair neighbour of each outlier (even/odd pairing) is
    # zeroed; if both elements of a pair are outliers, the smaller one
    # becomes the victim.
    shape = data.shape
    pairs = data.reshape(shape[:-1] + (shape[-1] // 2, 2))
    po = outlier.reshape(pairs.shape)
    both = po[..., 0] & po[..., 1]
    keep_first = np.abs(pairs[..., 0]) >= np.abs(pairs[..., 1])
    victim0 = (po[..., 1] & ~po[..., 0]) | (both & ~keep_first)
    victim1 = (po[..., 0] & ~po[..., 1]) | (both & keep_first)
    victim = np.stack([victim0, victim1], axis=-1).reshape(shape)
    is_outlier = outlier & ~victim

    # Non-outliers: INT4 against the non-outlier group max.
    normal = np.where(is_outlier | victim, 0.0, data)
    amax = np.max(np.abs(normal), axis=-1, keepdims=True)
    safe = np.where(amax == 0, 1.0, amax)
    step = safe / 7.0
    q_normal = np.clip(round_half_even(normal / step), -7, 7) * step

    # Outliers: wide-range float encoding (abfloat ~ E4M3-like grid).
    q_outlier = E4M3.quantize(data / (safe * 64.0)) * (safe * 64.0)

    out = np.where(is_outlier, q_outlier, np.where(victim, 0.0, q_normal))
    out = np.where(amax == 0, np.where(is_outlier, q_outlier, 0.0), out)
    return from_blocks(blocked, out)


@dataclass
class OliVeContext(SchemeContext):
    group: int = -1  # per-tensor (original); 32 for MX-OliVe
    name: str = "olive"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        gx = x.shape[-1] if self.group == -1 else self.group
        gw = w.shape[0] if self.group == -1 else self.group
        return quantize_olive(x, gx, axis=-1), quantize_olive(w, gw, axis=0)
