"""Tests for the unified serving API: QuantRecipe, the recipe/format
registries, and the continuous-batching ServingEngine."""

import numpy as np
import pytest

from repro.core.registry import available_formats, get_format, register_format
from repro.gpu.inference import CONFIGS, ServingConfig, as_serving_config, simulate_inference, step_time
from repro.gpu.spec import RTX5090
from repro.models.zoo import ARCHS, load_model
from repro.nn.quantize import QuantContext, as_context
from repro.serve import (
    QuantRecipe,
    Request,
    ServingEngine,
    available_recipes,
    get_recipe,
    register_recipe,
)

ARCH = ARCHS["llama-2-7b"]


class TestRecipeParsing:
    def test_plain_format(self):
        r = QuantRecipe.from_name("mxfp4")
        assert r.act == r.weight == "mxfp4"
        assert r.integration == "none"

    def test_plus_format_implies_hardware(self):
        r = QuantRecipe.from_name("mxfp4+")
        assert r.integration == "hardware"

    def test_activation_only_software(self):
        r = QuantRecipe.from_name("a-mxfp4+")
        assert r.act == "mxfp4+" and r.weight == "mxfp4"
        assert r.integration == "software"

    def test_baseline_aliases(self):
        assert QuantRecipe.from_name("baseline") == QuantRecipe.from_name("bf16")

    def test_case_insensitive(self):
        assert QuantRecipe.from_name("A-MXFP4+") == QuantRecipe.from_name("a-mxfp4+")
        assert QuantRecipe.from_name("  MXFP8 ") == QuantRecipe.from_name("mxfp8")

    def test_role_spec(self):
        r = QuantRecipe.from_name("a:mxfp8,w:mxfp4,kv:mxfp8")
        assert (r.act, r.weight, r.kv) == ("mxfp8", "mxfp4", "mxfp8")

    def test_role_spec_bf16(self):
        r = QuantRecipe.from_name("a:bf16,w:mxfp4")
        assert r.act == "bf16" and r.weight == "mxfp4"

    def test_unknown_role_raises(self):
        with pytest.raises(KeyError, match="unknown role"):
            QuantRecipe.from_name("a:mxfp4,z:mxfp4")

    def test_unknown_name_suggests_near_misses(self):
        with pytest.raises(KeyError) as err:
            QuantRecipe.from_name("mxfp4x")
        assert "did you mean" in str(err.value)
        assert "mxfp4" in str(err.value)

    def test_round_trip_every_registered_recipe(self):
        for name in available_recipes():
            recipe = get_recipe(name)
            assert QuantRecipe.from_name(recipe.name) == recipe


class TestRecipeValidation:
    def test_unknown_act_format(self):
        with pytest.raises(KeyError, match="unknown act format"):
            QuantRecipe("bad", act="mxfp5")

    def test_bad_integration(self):
        with pytest.raises(ValueError, match="integration"):
            QuantRecipe("bad", act="mxfp4", weight="mxfp4", integration="cuda")

    def test_integration_requires_mx_plus(self):
        with pytest.raises(ValueError, match="MX\\+ family"):
            QuantRecipe("bad", act="mxfp4", weight="mxfp4", integration="hardware")

    def test_kv_bf16_rejected(self):
        with pytest.raises(ValueError, match="attention='bf16'"):
            QuantRecipe("bad", act="mxfp4", weight="mxfp4", kv="bf16")

    def test_min_tile_m(self):
        with pytest.raises(ValueError, match="min_tile_m"):
            QuantRecipe("bad", min_tile_m=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            QuantRecipe.from_name("mxfp4").act = "mxfp8"


class TestRecipeAdapters:
    def test_to_context_formats(self):
        qc = get_recipe("a-mxfp4+").to_context()
        assert qc.act.name == "mxfp4+" and qc.weight.name == "mxfp4"
        assert qc.quantize_lm_head and qc.quantize_attention

    def test_to_context_bf16_roles(self):
        qc = get_recipe("bf16").to_context()
        assert qc.act is None and qc.weight is None

    def test_linear_only_scope(self):
        qc = QuantRecipe("t7", act="mxfp4", weight="mxfp4", scope="linear-only").to_context()
        assert not qc.quantize_lm_head and not qc.quantize_attention

    def test_lm_head_bf16(self):
        qc = QuantRecipe("wo-head", act="mxfp4", weight="mxfp4", lm_head="bf16").to_context()
        assert not qc.quantize_lm_head

    def test_lm_head_override(self):
        qc = QuantRecipe("hi-head", act="mxfp4", weight="mxfp4", lm_head="mxfp8").to_context()
        assert qc.lm_head.name == "mxfp8"
        assert qc.head_context().weight.name == "mxfp8"

    def test_attention_bf16(self):
        qc = QuantRecipe("no-attn", act="mxfp4", weight="mxfp4", attention="bf16").to_context()
        assert not qc.quantize_attention

    def test_kv_override(self):
        qc = QuantRecipe("kv8", act="mxfp4", weight="mxfp4", kv="mxfp8").to_context()
        assert qc.kv.name == "mxfp8"

    def test_to_serving_config(self):
        cfg = get_recipe("a-mxfp4+").to_serving_config()
        assert isinstance(cfg, ServingConfig)
        assert cfg.mxplus_software and not cfg.mxplus_hardware
        cfg = get_recipe("a8w4").to_serving_config()
        assert cfg.min_tile_m == 128

    def test_as_serving_config_accepts_all_surfaces(self):
        recipe = get_recipe("mxfp4+")
        direct = as_serving_config(recipe)
        assert direct == as_serving_config("mxfp4+") == as_serving_config(direct)
        with pytest.raises(TypeError):
            as_serving_config(42)

    def test_as_context_accepts_all_surfaces(self):
        recipe = get_recipe("mxfp4")
        assert as_context(None) is None
        assert as_context(recipe).act.name == "mxfp4"
        assert as_context("mxfp4").act.name == "mxfp4"
        qc = QuantContext()
        assert as_context(qc) is qc
        with pytest.raises(TypeError):
            as_context(3.14)

    def test_named_delegates_to_recipes(self):
        qc = QuantContext.named("a8w4")
        assert qc.act.name == "mxfp8" and qc.weight.name == "mxfp4"


class TestRecipeRegistry:
    def test_configs_shim_matches_registry(self):
        for name, cfg in CONFIGS.items():
            assert cfg == get_recipe(name).to_serving_config()

    def test_configs_shim_is_live(self):
        from repro.serve.recipe import _RECIPES

        original = get_recipe("mxfp4")
        try:
            register_recipe(original.with_(min_tile_m=64), overwrite=True)
            assert CONFIGS["mxfp4"].min_tile_m == 64
        finally:
            _RECIPES["mxfp4"] = original
        assert CONFIGS["mxfp4"].min_tile_m == 1

    def test_configs_shim_rejects_non_legacy_names(self):
        with pytest.raises(KeyError, match="get_recipe"):
            CONFIGS["mxfp6"]  # registered recipe, but not a legacy entry

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_recipe(QuantRecipe("mxfp4", act="mxfp4", weight="mxfp4"))

    def test_register_overwrite_and_custom(self):
        recipe = QuantRecipe("test-custom-recipe", act="mxfp8", weight="mxfp4")
        try:
            register_recipe(recipe)
            assert get_recipe("test-custom-recipe") == recipe
            replacement = recipe.with_(kv="mxfp8")
            register_recipe(replacement, overwrite=True)
            assert get_recipe("test-custom-recipe") == replacement
            assert QuantRecipe.from_name("test-custom-recipe") == replacement
        finally:
            from repro.serve.recipe import _RECIPES

            _RECIPES.pop("test-custom-recipe", None)

    def test_get_recipe_unknown_suggests(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_recipe("mxfp4plus")

    def test_available_recipes_sorted(self):
        names = available_recipes()
        assert names == sorted(names)


class TestFormatRegistry:
    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_format("mxfp4", lambda: get_format("mxfp4"))

    def test_register_overwrite_allowed(self):
        factory = lambda: get_format("mxfp4")
        try:
            register_format("test-custom-fmt", factory)
            register_format("test-custom-fmt", factory, overwrite=True)
            assert "test-custom-fmt" in available_formats()
        finally:
            from repro.core.registry import _REGISTRY

            _REGISTRY.pop("test-custom-fmt", None)

    def test_available_formats_sorted(self):
        names = available_formats()
        assert names == sorted(names)

    def test_get_format_suggests(self):
        with pytest.raises(KeyError, match="did you mean"):
            get_format("mxfp44")


class TestStepTime:
    def test_single_group_matches_forward(self):
        cfg = get_recipe("mxfp4")
        st = simulate_inference(ARCH, cfg, batch=2, prompt_len=128, output_len=0)
        assert step_time(RTX5090, ARCH, cfg, [(2 * 128, 128)]) == st.prefill_s

    def test_groups_merge_by_ctx(self):
        cfg = get_recipe("mxfp4")
        merged = step_time(RTX5090, ARCH, cfg, [(4, 64), (4, 64)])
        assert merged == step_time(RTX5090, ARCH, cfg, [(8, 64)])

    def test_distinct_ctx_costs_more_than_merged(self):
        cfg = get_recipe("mxfp4")
        split = step_time(RTX5090, ARCH, cfg, [(4, 64), (4, 96)])
        merged = step_time(RTX5090, ARCH, cfg, [(8, 96)])
        assert split == pytest.approx(merged, rel=0.25)

    def test_empty_step_is_free(self):
        assert step_time(RTX5090, ARCH, get_recipe("mxfp4"), []) == 0.0


class TestServingEngine:
    def test_uniform_batch_reconciles_with_simulator(self):
        recipe = get_recipe("mxfp4+")
        engine = ServingEngine(ARCH, recipe)
        result = engine.run(
            [Request(f"r{i}", prompt_len=512, max_new_tokens=32) for i in range(8)]
        )
        sim = simulate_inference(ARCH, recipe, batch=8, prompt_len=512, output_len=32)
        assert result.makespan_s == pytest.approx(sim.total_s, rel=1e-2)
        assert result.stages.prefill_s == pytest.approx(sim.prefill_s, rel=1e-9)
        assert result.stages.decode_s == pytest.approx(sim.decode_s, rel=1e-9)
        # TTFT = prefill + first decode step for every request.
        first_decode = step_time(RTX5090, ARCH, recipe, [(8, 512)])
        for resp in result.responses:
            assert resp.ttft_s == pytest.approx(sim.prefill_s + first_decode, rel=1e-9)
            assert resp.output_len == 32

    def test_mixed_batch_continuous_batching(self):
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=16_384)
        requests = [
            Request(
                f"r{i}",
                prompt_len=128 * (1 + i % 4),
                max_new_tokens=8 + 4 * (i % 3),
                arrival_s=0.005 * i,
            )
            for i in range(10)
        ]
        result = engine.run(requests)
        assert [r.request_id for r in result.responses] == [r.request_id for r in requests]
        assert all(r.output_len == q.max_new_tokens for r, q in zip(result.responses, requests))
        assert all(r.first_token_s > r.arrival_s for r in result.responses)
        assert all(r.finish_s >= r.first_token_s for r in result.responses)
        # Late arrivals join mid-flight: more than one prefill step ran.
        assert result.n_prefill_steps > 1
        assert result.makespan_s == max(r.finish_s for r in result.responses)
        assert result.throughput_tok_s > 0

    def test_tight_budget_preempts_and_completes(self):
        # Three prompts fit the budget (3 x 160 = 480), but decode growth
        # (+3 tokens/step) overflows it, forcing mid-flight eviction.
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=500)
        requests = [
            Request(f"r{i}", prompt_len=160, max_new_tokens=60) for i in range(4)
        ]
        result = engine.run(requests)
        assert all(r.output_len == 60 for r in result.responses)
        assert result.preemptions > 0
        relaxed = ServingEngine(ARCH, "mxfp4").run(requests)
        assert relaxed.preemptions == 0
        assert relaxed.makespan_s < result.makespan_s

    def test_staggered_arrivals_idle_gap(self):
        engine = ServingEngine(ARCH, "mxfp4")
        result = engine.run(
            [
                Request("early", prompt_len=64, max_new_tokens=2),
                Request("late", prompt_len=64, max_new_tokens=2, arrival_s=100.0),
            ]
        )
        early, late = result.responses
        assert early.finish_s < 100.0
        assert late.first_token_s > 100.0
        assert late.ttft_s < early.finish_s  # no queueing: engine was idle

    def test_request_validation(self):
        with pytest.raises(ValueError, match="empty prompt"):
            Request("bad", prompt_len=0)
        with pytest.raises(ValueError, match="max_new_tokens"):
            Request("bad", prompt_len=8, max_new_tokens=0)
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=128)
        with pytest.raises(ValueError, match="cannot hold"):
            engine.run([Request("big", prompt_len=256, max_new_tokens=8)])
        with pytest.raises(ValueError, match="duplicate"):
            ServingEngine(ARCH, "mxfp4").run(
                [Request("x", prompt_len=8), Request("x", prompt_len=8)]
            )

    def test_empty_run(self):
        result = ServingEngine(ARCH, "mxfp4").run([])
        assert result.responses == [] and result.makespan_s == 0.0
        assert result.mean_ttft_s == result.mean_tpot_s == 0.0

    def test_requests_with_tokens_compare_and_hash(self):
        a = Request("a", prompt_tokens=np.arange(4), max_new_tokens=2)
        b = Request("a", prompt_tokens=np.arange(4), max_new_tokens=2)
        assert a == b  # token payload excluded from value semantics
        assert len({a, b}) == 1


class TestNumericMode:
    @pytest.fixture(scope="class")
    def tiny(self):
        return load_model("test-tiny")

    def test_numeric_mode_rejects_timing_only_config(self, tiny):
        cfg = ServingConfig("mxfp4", "mxfp4", "mxfp4")
        with pytest.raises(ValueError, match="requires a QuantRecipe"):
            ServingEngine(ARCHS["llama-2-7b"], cfg, model=tiny)

    def test_tokens_match_generate(self, tiny):
        recipe = get_recipe("mxfp4+")
        engine = ServingEngine(ARCHS["llama-2-7b"], recipe, model=tiny)
        rng = np.random.default_rng(0)
        prompts = [rng.integers(0, tiny.config.vocab_size, 12) for _ in range(3)]
        result = engine.run(
            [
                Request(f"r{i}", prompt_tokens=p, max_new_tokens=6)
                for i, p in enumerate(prompts)
            ]
        )
        qc = recipe.to_context()
        for prompt, resp in zip(prompts, result.responses):
            expected = tiny.generate(prompt, 6, qc)
            np.testing.assert_array_equal(resp.tokens, expected)
            assert resp.ttft_s > 0 and resp.tpot_s > 0
