"""Unit tests for the element codecs (repro.core.elem)."""

import numpy as np
import pytest

from repro.core.elem import (
    E2M1,
    E2M3,
    E3M2,
    E4M3,
    E5M2,
    INT4_MX,
    INT8_MX,
    FloatCodec,
    floor_log2,
    round_half_even,
)

ALL_FLOAT = [E2M1, E2M3, E3M2, E4M3, E5M2]


class TestFormatParameters:
    def test_e2m1_spec(self):
        assert E2M1.emax == 2
        assert E2M1.max_normal == 6.0
        assert E2M1.min_normal == 1.0
        assert E2M1.min_subnormal == 0.5
        assert E2M1.bits == 4

    def test_e2m3_spec(self):
        assert E2M3.emax == 2
        assert E2M3.max_normal == 7.5
        assert E2M3.bits == 6

    def test_e3m2_spec(self):
        assert E3M2.emax == 4
        assert E3M2.max_normal == 28.0
        assert E3M2.bits == 6

    def test_e4m3_spec(self):
        # OCP FP8 E4M3: NaN steals the top mantissa code, max 448.
        assert E4M3.emax == 8
        assert E4M3.max_normal == 448.0
        assert E4M3.bits == 8

    def test_e5m2_spec(self):
        # IEEE-style: top exponent reserved for Inf/NaN, max 57344.
        assert E5M2.emax == 15
        assert E5M2.max_normal == 57344.0

    def test_int8_mx_spec(self):
        assert INT8_MX.emax == 0
        assert INT8_MX.max_normal == pytest.approx(127 / 64)

    def test_int4_mx_spec(self):
        assert INT4_MX.max_normal == pytest.approx(7 / 4)


class TestE2M1Grid:
    """E2M1's full positive grid is {0, .5, 1, 1.5, 2, 3, 4, 6}."""

    def test_grid_enumeration(self):
        expect = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]
        assert E2M1.representable_values().tolist() == expect

    @pytest.mark.parametrize(
        "x,expected",
        [
            (0.0, 0.0),
            (0.2, 0.0),  # below half of min subnormal
            (0.3, 0.5),
            (0.74, 0.5),
            (0.76, 1.0),
            (1.25, 1.0),  # tie -> even mantissa (1.0)
            (1.3, 1.5),
            (1.75, 2.0),  # tie -> even (2.0)
            (2.5, 2.0),  # tie -> even (2.0)
            (3.5, 4.0),  # tie -> even (4.0)
            (4.92, 4.0),  # the paper's -9.84/2 example rounds toward 4
            (5.0, 4.0),  # tie between 4 and 6 -> even (4)
            (5.1, 6.0),
            (100.0, 6.0),  # saturation
        ],
    )
    def test_rounding(self, x, expected):
        assert E2M1.quantize(np.array([x]))[0] == expected
        assert E2M1.quantize(np.array([-x]))[0] == -expected


class TestQuantizeInvariants:
    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_idempotent(self, codec):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(512) * 10
        q = codec.quantize(x)
        np.testing.assert_array_equal(codec.quantize(q), q)

    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_representable_fixed_points(self, codec):
        vals = codec.representable_values()
        np.testing.assert_array_equal(codec.quantize(vals), vals)
        np.testing.assert_array_equal(codec.quantize(-vals), -vals)

    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_monotone(self, codec):
        x = np.linspace(-2 * codec.max_normal, 2 * codec.max_normal, 4001)
        q = codec.quantize(x)
        assert np.all(np.diff(q) >= 0)

    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_odd_symmetry(self, codec):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(512) * 5
        np.testing.assert_array_equal(codec.quantize(-x), -codec.quantize(x))

    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_saturation(self, codec):
        big = np.array([codec.max_normal * 1.01, codec.max_normal * 100])
        np.testing.assert_array_equal(codec.quantize(big), codec.max_normal)

    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_error_bounded_by_half_ulp_in_normal_range(self, codec):
        rng = np.random.default_rng(3)
        x = rng.uniform(codec.min_normal, codec.max_normal, 2048)
        q = codec.quantize(x)
        ulp = np.exp2(np.floor(np.log2(np.abs(x))) - codec.mbits)
        assert np.all(np.abs(x - q) <= ulp / 2 + 1e-12)

    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_nearest_value_on_grid(self, codec):
        rng = np.random.default_rng(4)
        grid = codec.representable_values()
        full = np.concatenate([-grid[::-1], grid])
        x = rng.uniform(-codec.max_normal, codec.max_normal, 256)
        q = codec.quantize(x)
        nearest = np.min(np.abs(full[None, :] - x[:, None]), axis=1)
        np.testing.assert_allclose(np.abs(q - x), nearest, atol=1e-12)


class TestBitCodecs:
    @pytest.mark.parametrize("codec", ALL_FLOAT, ids=lambda c: c.name)
    def test_roundtrip_all_values(self, codec):
        vals = codec.representable_values()
        full = np.concatenate([-vals[vals > 0], vals])
        bits = codec.encode_bits(full)
        assert np.all(bits < (1 << codec.bits))
        np.testing.assert_allclose(codec.decode_bits(bits), full)

    def test_e2m1_known_patterns(self):
        # S EE M: 0 00 0 = +0, 0 01 0 = 1.0, 0 11 1 = 6.0, 1 11 1 = -6.0
        assert E2M1.encode_bits(np.array([0.0]))[0] == 0b0000
        assert E2M1.encode_bits(np.array([1.0]))[0] == 0b0010
        assert E2M1.encode_bits(np.array([6.0]))[0] == 0b0111
        assert E2M1.encode_bits(np.array([-6.0]))[0] == 0b1111
        assert E2M1.encode_bits(np.array([0.5]))[0] == 0b0001  # subnormal

    def test_off_grid_raises(self):
        with pytest.raises(ValueError):
            E2M1.encode_bits(np.array([1.3]))

    def test_int8_roundtrip(self):
        q = INT8_MX.quantize(np.linspace(-2, 2, 301))
        bits = INT8_MX.encode_bits(q)
        np.testing.assert_allclose(INT8_MX.decode_bits(bits), q)


class TestHelpers:
    def test_floor_log2_powers_of_two(self):
        x = np.exp2(np.arange(-60, 61, dtype=np.float64))
        np.testing.assert_array_equal(floor_log2(x), np.arange(-60, 61))

    def test_floor_log2_general(self):
        assert floor_log2(np.array([9.84]))[0] == 3
        assert floor_log2(np.array([0.99]))[0] == -1
        assert floor_log2(np.array([1.0]))[0] == 0

    def test_floor_log2_zero_is_sentinel(self):
        assert floor_log2(np.array([0.0]))[0] < -(10**8)

    def test_round_half_even(self):
        x = np.array([0.5, 1.5, 2.5, 3.5, -0.5, -1.5])
        np.testing.assert_array_equal(round_half_even(x), [0, 2, 2, 4, -0, -2])


class TestCustomCodec:
    def test_e1m2(self):
        c = FloatCodec("e1m2", ebits=1, mbits=2, bias=0)
        assert c.emax == 1
        assert c.max_normal == 2.0 * 1.75
        q = c.quantize(np.array([0.3, 5.0]))
        assert q[1] == c.max_normal
