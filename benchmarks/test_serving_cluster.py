"""Cluster serving benchmark: format-vs-capacity curves, prefix caching,
and router comparison on the paged multi-replica simulator.

The serving-level cash-out of the MX+ formats: at an equal per-replica
page budget (GPU bytes reserved for KV), a 4.5-bit MX+ KV cache holds
~3.6x the tokens of BF16, which shows up directly as more concurrently
admitted requests, fewer preemptions, and higher throughput under a
saturating burst. Also asserts the reconciliation anchor (a 1-replica
cluster with no shared prefixes equals the single engine exactly) and
the shared-prefix TTFT win.
"""

from _util import print_table, run_once, save_result

from repro.models.zoo import ARCHS
from repro.serve import (
    PagedKVCache,
    Request,
    ServingCluster,
    ServingEngine,
    chat_workload,
    get_recipe,
    kv_token_bytes,
    make_workload,
)

ARCH = ARCHS["llama-2-13b"]
RECIPES = ["bf16", "mxfp8", "a-mxfp4+", "mxfp4+", "mxfp4"]
GIB = 1 << 30
PAGE_BUDGET = 4 * GIB  # per-replica KV byte budget
BLOCK_TOKENS = 16


def _burst(n=32, prompt=512, out=32):
    """A saturating burst: everyone arrives at t=0 with identical shape."""
    return [Request(f"b{i}", prompt_len=prompt, max_new_tokens=out) for i in range(n)]


def _capacity_table():
    out = {}
    for name in RECIPES:
        recipe = get_recipe(name)
        cache = PagedKVCache.from_byte_budget(
            PAGE_BUDGET, ARCH, recipe, block_tokens=BLOCK_TOKENS
        )
        result = ServingEngine(ARCH, recipe, kv_cache=cache).run(_burst())
        out[name] = {
            "kv_bytes_per_token": kv_token_bytes(ARCH, recipe),
            "capacity_tokens": cache.capacity_tokens,
            "peak_running": result.peak_running,
            "preemptions": result.preemptions,
            "throughput_tok_s": result.throughput_tok_s,
            "mean_ttft_ms": result.mean_ttft_s * 1e3,
            "makespan_ms": result.makespan_s * 1e3,
        }
    return out


def _capacity_curve():
    return {
        name: {
            f"{gib}GiB": PagedKVCache.from_byte_budget(
                gib * GIB, ARCH, get_recipe(name), block_tokens=BLOCK_TOKENS
            ).capacity_tokens
            for gib in (1, 2, 4, 8)
        }
        for name in RECIPES
    }


def _prefix_caching():
    chat = chat_workload(32, n_prefixes=2, prefix_len=512, seed=0, rate_rps=40.0)
    stripped = [
        Request(r.request_id, prompt_len=r.prompt_len,
                max_new_tokens=r.max_new_tokens, arrival_s=r.arrival_s)
        for r in chat
    ]
    out = {}
    for label, reqs in (("shared-prefix", chat), ("no-sharing", stripped)):
        cache = PagedKVCache.from_byte_budget(
            PAGE_BUDGET, ARCH, get_recipe("mxfp4+"), block_tokens=BLOCK_TOKENS
        )
        result = ServingEngine(ARCH, "mxfp4+", kv_cache=cache).run(reqs)
        out[label] = {
            "mean_ttft_ms": result.mean_ttft_s * 1e3,
            "prefill_ms": result.stages.prefill_s * 1e3,
            "prefix_hits": result.kv["prefix_hits"],
            "prefix_tokens_reused": result.kv["prefix_tokens_reused"],
        }
    return out


def _routers():
    reqs = chat_workload(48, n_prefixes=4, prefix_len=512, seed=3, rate_rps=60.0)
    out = {}
    for router in ("round-robin", "least-kv-load", "prefix-affinity"):
        fleet = ServingCluster(
            ARCH, "mxfp4+", n_replicas=4, router=router,
            page_budget_bytes=PAGE_BUDGET, block_tokens=BLOCK_TOKENS,
        ).run(reqs)
        out[router] = {
            "prefix_hits": sum(r.kv["prefix_hits"] for r in fleet.replica_results),
            "prefix_misses": sum(r.kv["prefix_misses"] for r in fleet.replica_results),
            "mean_ttft_ms": fleet.mean_ttft_s * 1e3,
            "throughput_tok_s": fleet.throughput_tok_s,
        }
    return out


def _scaling():
    reqs = make_workload(48, seed=1, arrival="bursty", rate_rps=400.0, burst_size=12)
    out = {}
    for n in (1, 2, 4):
        fleet = ServingCluster(
            ARCH, "mxfp4+", n_replicas=n, router="least-kv-load",
            page_budget_bytes=PAGE_BUDGET, block_tokens=BLOCK_TOKENS,
        ).run(reqs)
        out[f"{n}-replica"] = {
            "throughput_tok_s": fleet.throughput_tok_s,
            "makespan_ms": fleet.makespan_s * 1e3,
            "mean_ttft_ms": fleet.mean_ttft_s * 1e3,
            "goodput_tok_s_slo": fleet.goodput_tok_s(ttft_slo_s=0.5, tpot_slo_s=0.05),
        }
    return out


def _reconciliation():
    reqs = make_workload(16, seed=5, rate_rps=30.0)
    budget = 32_768
    fleet = ServingCluster(
        ARCH, "mxfp4+", n_replicas=1, router="round-robin", kv_token_budget=budget
    ).run(reqs)
    single = ServingEngine(ARCH, "mxfp4+", kv_token_budget=budget).run(reqs)
    err = max(
        abs(a.finish_s - b.finish_s) + abs(a.ttft_s - b.ttft_s)
        for a, b in zip(fleet.responses, single.responses)
    )
    return {
        "fleet_makespan_s": fleet.makespan_s,
        "engine_makespan_s": single.makespan_s,
        "max_abs_err_s": err,
    }


def test_serving_cluster(benchmark):
    def run():
        return {
            "page_budget_gib": PAGE_BUDGET // GIB,
            "block_tokens": BLOCK_TOKENS,
            "capacity": _capacity_table(),
            "capacity_curve": _capacity_curve(),
            "prefix_caching": _prefix_caching(),
            "routers": _routers(),
            "scaling": _scaling(),
            "reconciliation": _reconciliation(),
        }

    table = run_once(benchmark, run)
    save_result("serving_cluster", table)
    print_table("Cluster: capacity at equal page budget", table["capacity"])
    print_table("Cluster: prefix caching (MXFP4+)", table["prefix_caching"])
    print_table("Cluster: routers on 4 replicas", table["routers"])
    print_table("Cluster: replica scaling", table["scaling"])

    cap = table["capacity"]
    # MX+ KV pages admit strictly more concurrent requests than FP16/BF16
    # at the same byte budget — the paper's memory win as serving capacity.
    for mx in ("mxfp4", "mxfp4+", "a-mxfp4+"):
        assert cap[mx]["capacity_tokens"] > 3 * cap["bf16"]["capacity_tokens"]
        assert cap[mx]["peak_running"] > cap["bf16"]["peak_running"]
    assert (
        cap["mxfp4"]["capacity_tokens"]
        > cap["mxfp4+"]["capacity_tokens"]
        > cap["mxfp8"]["capacity_tokens"]
        > cap["bf16"]["capacity_tokens"]
    )

    # Shared-prefix caching measurably improves TTFT and prefill time.
    pc = table["prefix_caching"]
    assert pc["shared-prefix"]["prefix_hits"] > 0
    assert pc["shared-prefix"]["mean_ttft_ms"] < 0.9 * pc["no-sharing"]["mean_ttft_ms"]
    assert pc["shared-prefix"]["prefill_ms"] < pc["no-sharing"]["prefill_ms"]

    # Prefix-affinity keeps each system prompt on one replica.
    routers = table["routers"]
    assert routers["prefix-affinity"]["prefix_misses"] == 4
    assert routers["prefix-affinity"]["prefix_hits"] > routers["round-robin"]["prefix_hits"]

    # More replicas, more throughput (the workload saturates one replica).
    scaling = table["scaling"]
    assert (
        scaling["4-replica"]["throughput_tok_s"]
        > scaling["2-replica"]["throughput_tok_s"]
        > scaling["1-replica"]["throughput_tok_s"]
    )

    # Reconciliation: the cluster is the engine when fleet size is 1.
    assert table["reconciliation"]["max_abs_err_s"] == 0.0
