"""Figure 7: MX+ data layout — storage accounting for all three widths."""

import numpy as np
from _util import print_table, run_once, save_result

from repro.core import MXFP4Plus, MXFP6Plus, MXFP8Plus, get_format
from repro.core.layout import pack_mxplus


def test_fig07(benchmark):
    def run():
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 32 * 8))
        out = {}
        for base, factory in [
            ("mxfp4", MXFP4Plus),
            ("mxfp6", MXFP6Plus),
            ("mxfp8", MXFP8Plus),
        ]:
            fmt = factory()
            packed = pack_mxplus(fmt, fmt.encode(x))
            bits = packed.total_bytes() * 8 / x.size
            out[fmt.name] = {
                "measured_bits_per_elem": bits,
                "declared_bits_per_elem": fmt.bits_per_element(),
                "base_bits_per_elem": get_format(base).bits_per_element(),
                "bm_effective_mantissa_bits": fmt.bm_mbits,
            }
        return out

    table = run_once(benchmark, run)
    save_result("fig07_layout", table)
    print_table("Figure 7: MX+ layout", table)

    for name, row in table.items():
        assert row["measured_bits_per_elem"] == row["declared_bits_per_elem"]
        # +0.25 bits over the base format (one sideband byte per block).
        assert row["measured_bits_per_elem"] - row["base_bits_per_elem"] == 0.25
    assert table["mxfp4+"]["bm_effective_mantissa_bits"] == 3
    assert table["mxfp6+"]["bm_effective_mantissa_bits"] == 5
    assert table["mxfp8+"]["bm_effective_mantissa_bits"] == 7
