"""Hypothesis property-based tests for the core format library."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.core.elem import E2M1, E2M3, E3M2, E4M3, E5M2
from repro.core.intquant import quantize_int_groupwise
from repro.core.layout import pack_mxplus, unpack_mxplus
from repro.core.mx import MXFP4, MXFP6, MXFP8
from repro.core.mxplus import MXFP4Plus, MXFP6Plus, MXFP8Plus
from repro.core.mxpp import MXFP4PlusPlus

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=96),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
    ),
)

codecs = st.sampled_from([E2M1, E2M3, E3M2, E4M3, E5M2])


@given(finite_arrays, codecs)
@settings(max_examples=60, deadline=None)
def test_codec_idempotent(x, codec):
    q = codec.quantize(x)
    np.testing.assert_array_equal(codec.quantize(q), q)


@given(finite_arrays, codecs)
@settings(max_examples=60, deadline=None)
def test_codec_bounded_by_max_normal(x, codec):
    q = codec.quantize(x)
    assert np.all(np.abs(q) <= codec.max_normal)


@given(finite_arrays, codecs)
@settings(max_examples=60, deadline=None)
def test_codec_sign_preserved(x, codec):
    q = codec.quantize(x)
    assert np.all((q == 0) | (np.sign(q) == np.sign(x)))


@given(finite_arrays)
@settings(max_examples=40, deadline=None)
def test_mx_error_bounded_by_relative_ulp(x):
    """MXFP4 error is bounded per element by half the block's coarsest ulp."""
    fmt = MXFP4()
    q = fmt(x)
    err = np.abs(x - q)
    # Bound: the element grid step at the top of the block is
    # scale * 2^(emax - mbits); saturation cannot occur because the BM
    # defines the scale.
    from repro.core.blocks import to_blocks

    bx = to_blocks(x, 32).data
    amax = np.max(np.abs(bx), axis=-1, keepdims=True)
    bound = np.maximum(amax, 2.0**-100) * 1.0  # coarse envelope: err < amax
    berr = to_blocks(err, 32).data
    assert np.all(berr <= bound + 1e-12)


@given(finite_arrays)
@settings(max_examples=40, deadline=None)
def test_mxplus_never_worse_than_mx(x):
    """Per-tensor MSE: MXFP4+ <= MXFP4 (NBMs identical, BM refined)."""
    e_plus = np.mean((x - MXFP4Plus()(x)) ** 2)
    e_base = np.mean((x - MXFP4()(x)) ** 2)
    assert e_plus <= e_base + 1e-18 + 1e-9 * e_base


@given(
    finite_arrays,
    st.sampled_from([E2M1, E2M3, E4M3]),
    st.sampled_from([16, 32, 64]),
)
@settings(max_examples=60, deadline=None)
def test_mxplus_never_worse_than_mx_any_codec_block(x, codec, block):
    """MX+ <= MX quantize-dequantize error for *every* codec and block size.

    The MX+ BM grid at the top binade is a superset of the element grid
    (extended mantissa, same anchor) and NBMs are untouched, so the
    per-tensor error can never exceed plain MX's for the same codec/block
    — including block-64 variants like mxfp4-k64 vs mxfp4+-k64.
    """
    from repro.core.mx import MXFormat
    from repro.core.mxplus import MXPlusFormat

    e_plus = np.mean((x - MXPlusFormat(codec, block_size=block)(x)) ** 2)
    e_base = np.mean((x - MXFormat(codec, block_size=block)(x)) ** 2)
    assert e_plus <= e_base + 1e-18 + 1e-9 * e_base


@given(finite_arrays, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_error_monotone_in_outlier_budget(x, k):
    """Quantization error is non-increasing in the outlier budget.

    Promoting the top-(k+1) magnitudes to the wider codec relaxes the
    top-k scheme: the extra promoted element moves to a superset grid
    under the same shared scale and every other element is unchanged.
    """
    from repro.core.topk import TopKPromoteFormat

    e_k = np.mean((x - TopKPromoteFormat(k)(x)) ** 2)
    e_k1 = np.mean((x - TopKPromoteFormat(k + 1)(x)) ** 2)
    assert e_k1 <= e_k + 1e-18 + 1e-9 * e_k


@given(finite_arrays, st.sampled_from([MXFP4Plus, MXFP6Plus, MXFP8Plus]))
@settings(max_examples=40, deadline=None)
def test_mxplus_batched_encode_matches_reference(x, factory):
    """The vectorized encoder equals the per-block reference field by field."""
    fmt = factory()
    fast, slow = fmt.encode(x), fmt.encode_reference(x)
    np.testing.assert_array_equal(fast.shared_exp, slow.shared_exp)
    np.testing.assert_array_equal(fast.bm_index, slow.bm_index)
    np.testing.assert_array_equal(fast.elem_values, slow.elem_values)
    np.testing.assert_array_equal(fmt.decode(fast), fmt.decode(slow))


@given(finite_arrays)
@settings(max_examples=40, deadline=None)
def test_mxpp_never_worse_than_mxplus(x):
    """Per-tensor MSE: MXFP4++ <= MXFP4+ (NBM grid refined, no saturation)."""
    e_pp = np.mean((x - MXFP4PlusPlus()(x)) ** 2)
    e_p = np.mean((x - MXFP4Plus()(x)) ** 2)
    assert e_pp <= e_p + 1e-18 + 1e-9 * e_p


@given(finite_arrays, st.sampled_from([MXFP4, MXFP6, MXFP8]))
@settings(max_examples=40, deadline=None)
def test_mx_pow2_equivariance(x, factory):
    """Scaling by a power of two only shifts the shared exponent.

    Holds only while the shifted exponent stays inside the E8M0 clamp
    range [-127, 127]; at the boundary the spec-mandated clamp breaks
    equivariance (e.g. float32-subnormal inputs under MXFP8). Flush
    sub-2^-100 magnitudes to zero to keep every block's shared exponent
    (max |x| exponent minus emax <= 8, plus 3 for the x8) well in range —
    zeros quantize to zero under any scale, so they stay equivariant.
    """
    x = np.where(np.abs(x) < 2.0**-100, 0.0, x)
    fmt = factory()
    np.testing.assert_allclose(fmt(x * 8.0), fmt(x) * 8.0, rtol=1e-12)


@given(finite_arrays, st.sampled_from([MXFP4Plus, MXFP6Plus, MXFP8Plus]))
@settings(max_examples=40, deadline=None)
def test_mxplus_pack_roundtrip(x, factory):
    fmt = factory()
    enc = fmt.encode(x)
    restored = unpack_mxplus(fmt, pack_mxplus(fmt, enc))
    np.testing.assert_allclose(fmt.decode(restored), fmt.decode(enc), rtol=1e-12)


@given(finite_arrays, st.sampled_from([MXFP4Plus, MXFP6Plus, MXFP8Plus]))
@settings(max_examples=40, deadline=None)
def test_mxplus_bm_top_binade_or_flush(x, factory):
    """Non-flushed blocks keep the scaled BM inside [2^emax, 2^(emax+1))."""
    from repro.core.scale import ZERO_BLOCK_SENTINEL

    fmt = factory()
    enc = fmt.encode(x)
    bm_vals = np.take_along_axis(
        enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
    )[..., 0]
    live = enc.shared_exp != ZERO_BLOCK_SENTINEL
    emax = fmt.elem.emax
    assert np.all((np.abs(bm_vals[live]) >= 2.0**emax) | ~np.isfinite(bm_vals[live]))
    assert np.all(np.abs(bm_vals[live]) < 2.0 ** (emax + 1))


@given(finite_arrays, st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_int_groupwise_bounded(x, bits):
    q = quantize_int_groupwise(x, bits, group=32)
    # error is at most half a quantization step of the group max
    from repro.core.blocks import to_blocks

    bx = to_blocks(x, 32).data
    bq = to_blocks(q, 32).data
    amax = np.max(np.abs(bx), axis=-1, keepdims=True)
    step = amax / ((1 << (bits - 1)) - 1)
    assert np.all(np.abs(bx - bq) <= step / 2 + 1e-12)


@given(finite_arrays)
@settings(max_examples=30, deadline=None)
def test_quantized_never_exceeds_block_envelope(x):
    """No quantized magnitude exceeds max_normal * scale of its block."""
    from repro.core.blocks import to_blocks

    fmt = MXFP4Plus()
    q = fmt(x)
    bx = to_blocks(x, 32).data
    bq = to_blocks(q, 32).data
    amax = np.max(np.abs(bx), axis=-1, keepdims=True)
    # scale <= 2 * amax / 2^emax; extended BM < 2^(emax+1) * scale
    assert np.all(np.abs(bq) <= 4 * np.maximum(amax, 0) + 1e-30)
