"""Scale-out serving walkthrough: paged KV, workloads, and a cluster.

Shows the three layers added on top of `ServingEngine`:
 1. `PagedKVCache.from_byte_budget` — the recipe's KV format sets how
    many tokens (and hence requests) fit one replica's page budget;
 2. `workload` generators — seeded bursty traffic and the shared-prefix
    chat scenario, plus JSONL trace replay;
 3. `ServingCluster` — N replicas behind a router, with fleet metrics
    including goodput under a latency SLO.

Run:  python examples/cluster_serving.py
"""

import tempfile
from pathlib import Path

from repro.models.zoo import ARCHS
from repro.serve import (
    PagedKVCache,
    Request,
    ServingCluster,
    ServingEngine,
    chat_workload,
    get_recipe,
    kv_token_bytes,
    load_trace,
    make_workload,
    save_trace,
)

arch = ARCHS["llama-2-13b"]
GIB = 1 << 30
BUDGET = 4 * GIB

# ----------------------------------------------------------------------
# 1. Format -> capacity: equal page budget, different KV formats.
# ----------------------------------------------------------------------
print(f"Paged KV capacity at {BUDGET // GIB} GiB/replica ({arch.name}, 16-token pages)\n")
print(f"{'recipe':>10s} {'KB/token':>9s} {'capacity tok':>13s} {'peak running':>13s} "
      f"{'preempt':>8s} {'tok/s':>8s}")
burst = [Request(f"b{i}", prompt_len=512, max_new_tokens=32) for i in range(32)]
for name in ["bf16", "mxfp8", "a-mxfp4+", "mxfp4+", "mxfp4"]:
    recipe = get_recipe(name)
    cache = PagedKVCache.from_byte_budget(BUDGET, arch, recipe, block_tokens=16)
    result = ServingEngine(arch, recipe, kv_cache=cache).run(burst)
    print(f"{name:>10s} {kv_token_bytes(arch, recipe) / 1024:9.0f} "
          f"{cache.capacity_tokens:13d} {result.peak_running:13d} "
          f"{result.preemptions:8d} {result.throughput_tok_s:8.0f}")

print("""
The MX+ memory win as serving capacity: a 4.5-bit KV cache holds ~3.6x
the BF16 tokens, so the same GPU admits the whole 32-request burst where
BF16 thrashes (preemptions) at a third of the concurrency.""")

# ----------------------------------------------------------------------
# 2. Shared-prefix chat: system prompts stored once, prefill skipped.
# ----------------------------------------------------------------------
chat = chat_workload(32, n_prefixes=2, prefix_len=512, seed=0, rate_rps=40.0)
stripped = [Request(r.request_id, prompt_len=r.prompt_len,
                    max_new_tokens=r.max_new_tokens, arrival_s=r.arrival_s)
            for r in chat]
print("Shared-prefix chat (MXFP4+, 2 system prompts x 512 tokens):")
for label, reqs in (("with prefix cache", chat), ("without", stripped)):
    cache = PagedKVCache.from_byte_budget(BUDGET, arch, "mxfp4+", block_tokens=16)
    r = ServingEngine(arch, "mxfp4+", kv_cache=cache).run(reqs)
    print(f"  {label:>18s}: mean TTFT {r.mean_ttft_s * 1e3:6.1f} ms, "
          f"prefill {r.stages.prefill_s * 1e3:6.1f} ms, "
          f"{r.kv['prefix_hits']} hits / {r.kv['prefix_tokens_reused']} tokens reused")

# ----------------------------------------------------------------------
# 3. Traces round-trip as JSONL.
# ----------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    trace = Path(tmp) / "chat.jsonl"
    save_trace(trace, chat)
    assert load_trace(trace) == chat
    print(f"\nTrace replay: {len(chat)} requests -> {trace.name} "
          f"({trace.stat().st_size} bytes) -> identical requests back")

# ----------------------------------------------------------------------
# 4. Fleet: replicas x routers, goodput under SLO.
# ----------------------------------------------------------------------
reqs = make_workload(48, seed=1, arrival="bursty", rate_rps=400.0, burst_size=12)
print("\nFleet scaling (MXFP4+, least-kv-load, bursty x48):")
for n in (1, 2, 4):
    fleet = ServingCluster(arch, "mxfp4+", n_replicas=n, router="least-kv-load",
                           page_budget_bytes=BUDGET, block_tokens=16).run(reqs)
    print(f"  {n} replica(s): {fleet.throughput_tok_s:6.0f} tok/s, "
          f"mean TTFT {fleet.mean_ttft_s * 1e3:6.1f} ms, "
          f"goodput@(TTFT<500ms) {fleet.goodput_tok_s(ttft_slo_s=0.5):6.0f} tok/s")

print("\nRouters on the chat workload (4 replicas, 4 system prompts):")
chat4 = chat_workload(48, n_prefixes=4, prefix_len=512, seed=3, rate_rps=60.0)
for router in ("round-robin", "least-kv-load", "prefix-affinity"):
    fleet = ServingCluster(arch, "mxfp4+", n_replicas=4, router=router,
                           page_budget_bytes=BUDGET, block_tokens=16).run(chat4)
    hits = sum(r.kv["prefix_hits"] for r in fleet.replica_results)
    misses = sum(r.kv["prefix_misses"] for r in fleet.replica_results)
    print(f"  {router:>15s}: {hits:2d} prefix hits / {misses:2d} misses, "
          f"mean TTFT {fleet.mean_ttft_s * 1e3:5.1f} ms")

print("""
prefix-affinity pins each system prompt to one replica, so the fleet
stores it once and every follow-up turn hits the cached pages.""")
