"""Virtual-time tracing for the serving stack: events, spans, tracers.

The :class:`Tracer` is the single object the serving layers talk to:
:class:`repro.serve.ServingEngine` emits request-lifecycle and step
events, :class:`repro.serve.ServingCluster` adds routing / autoscale /
KV-transfer events, and :mod:`repro.serve.shard` merges per-worker
tracers back into one. Every timestamp is **virtual time** — the same
deterministic clock the simulation itself runs on — so a trace is a
pure function of the run's inputs: two runs of the same seed produce
byte-identical traces, and a sharded run's merged trace reconciles with
the single-process one (see :func:`merge_events`).

Events are flat, compact tuples (:class:`TraceEvent`), not span
objects: the hot emit path is one attribute load and one ring-buffer
append. Span *structure* (queue / prefill-chunk / decode / transfer
intervals) is derived at export time by
:func:`repro.obs.export.lifecycle_spans`, so tracing's steady-state
cost stays a single ``if tracer is not None`` plus a tuple append.

The event taxonomy (``KIND_ORDER`` gives the deterministic same-instant
ordering)::

    arrive   request submitted to a replica        (t = client arrival)
    route    cluster routing decision              (replica = -1)
    autoscale  fleet grew/retired a replica        (replica = -1)
    import   migrated KV reached a decode replica  (t = transfer arrival)
    admit    KV pages committed, joins the batch   (t = admission clock)
    preempt  evicted to the queue head             (t = step start)
    step     one scheduler iteration               (data: end, kind, rows, notes)
    prefill_chunk  prompt rows computed this step  (data: rows, end)
    first_token    first output token completed    (t = step end)
    finish   last token generated                  (t = step end)
    export   KV packaged for migration             (prefill replica)
    transfer KV migration over the interconnect    (replica = -1)

>>> tracer = Tracer()
>>> tracer.emit(0.0, 0, "arrive", "r0", (128, 4))
>>> tracer.emit(0.5, 0, "admit", "r0", (0, 128))
>>> [e.kind for e in tracer.events()]
['arrive', 'admit']
>>> len(tracer), tracer.dropped
(2, 0)
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from .record import FlightRecorder

__all__ = [
    "TraceEvent",
    "Tracer",
    "KIND_ORDER",
    "event_key",
    "merge_events",
]

#: Deterministic ordering of event kinds at the same ``(t, replica)``
#: instant. The ranks encode causality inside one virtual instant: a
#: request arrives before it is routed, routing precedes admission,
#: admission precedes the step that computes it, and a step's derived
#: events (chunks, first tokens, finishes, exports) follow the step
#: record itself. Sorting by :func:`event_key` therefore reproduces one
#: canonical order regardless of emission interleaving — the property
#: the sharded-trace merge rests on.
KIND_ORDER: dict[str, int] = {
    "arrive": 0,
    "route": 1,
    "autoscale": 2,
    "import": 3,
    "admit": 4,
    "preempt": 5,
    "step": 6,
    "prefill_chunk": 7,
    "first_token": 8,
    "finish": 9,
    "export": 10,
    "transfer": 11,
}


class TraceEvent(NamedTuple):
    """One virtual-time event: ``(t, replica, kind, req, data)``.

    ``replica`` is the emitting replica's index (``-1`` for
    cluster-level events: routing, autoscale, transfers). ``req`` is the
    request id (``""`` for step/autoscale events). ``data`` is a small
    tuple whose schema is fixed per ``kind`` — fixed schemas keep events
    totally ordered by :func:`event_key` without type surprises.

    >>> TraceEvent(1.5, 0, "finish", "r3", (8,)).kind
    'finish'
    """

    t: float
    replica: int
    kind: str
    req: str
    data: tuple = ()


def event_key(event: TraceEvent) -> tuple:
    """The canonical sort key: ``(t, replica, kind rank, req, data)``.

    A *total* order over any event multiset the serving stack emits
    (same kind ⇒ same data schema ⇒ comparable tails), independent of
    emission order — what makes merged shard traces bit-reproducible.

    >>> a = TraceEvent(0.0, 0, "arrive", "r0", (8, 1))
    >>> b = TraceEvent(0.0, 0, "admit", "r0", (0, 8))
    >>> sorted([b, a], key=event_key) == [a, b]
    True
    """
    return (
        event.t,
        event.replica,
        KIND_ORDER.get(event.kind, len(KIND_ORDER)),
        event.req,
        event.data,
    )


def merge_events(event_lists: Iterable[Iterable[TraceEvent]]) -> list[TraceEvent]:
    """Merge per-shard event streams into one canonically-ordered list.

    Concatenates and sorts by :func:`event_key`; because the key is a
    total order over the events themselves, the result depends only on
    the event *multiset* — never on which worker emitted what first.

    >>> a = [TraceEvent(1.0, 1, "step", "", (2.0, "decode", 0, 3, ()))]
    >>> b = [TraceEvent(0.5, 0, "arrive", "r0", (4, 1))]
    >>> [e.t for e in merge_events([a, b])]
    [0.5, 1.0]
    """
    merged: list[TraceEvent] = []
    for events in event_lists:
        merged.extend(events)
    merged.sort(key=event_key)
    return merged


class Tracer:
    """Collects :class:`TraceEvent` records from the serving stack.

    Pass one to :class:`repro.serve.ServingEngine`,
    :class:`repro.serve.ServingCluster`, or
    :func:`repro.serve.run_sharded` — all instrumentation sites check
    ``tracer is None`` and skip in one branch, so an untraced run pays a
    single pointer test per site and produces bit-identical results.

    ``capacity`` bounds memory through a
    :class:`repro.obs.record.FlightRecorder` ring: a million-request run
    traced at ``capacity=100_000`` keeps the newest hundred thousand
    events (the tail) and counts the rest as ``dropped``. Leave it
    ``None`` for exact, unbounded traces (required when comparing traces
    across runs — ring eviction depends on emission order).

    >>> t = Tracer(capacity=3)
    >>> for i in range(5):
    ...     t.emit(float(i), 0, "arrive", f"r{i}", (1, 1))
    >>> len(t), t.dropped
    (3, 2)
    >>> [e.req for e in t.events()]
    ['r2', 'r3', 'r4']
    """

    __slots__ = ("_recorder",)

    def __init__(self, capacity: int | None = None) -> None:
        self._recorder = FlightRecorder(capacity)

    # -- hot path ------------------------------------------------------
    def emit(
        self, t: float, replica: int, kind: str, req: str, data: tuple = ()
    ) -> None:
        """Record one event (the only call on the serving hot path)."""
        self._recorder.append(TraceEvent(t, replica, kind, req, data))

    # -- ingestion / introspection -------------------------------------
    def ingest(self, events: Iterable[TraceEvent]) -> None:
        """Append pre-built events (sharded-run merge, replays)."""
        self._recorder.extend(
            e if isinstance(e, TraceEvent) else TraceEvent(*e) for e in events
        )

    def raw_events(self) -> list[TraceEvent]:
        """Events in emission order (ring survivors only)."""
        return list(self._recorder)

    def events(self) -> list[TraceEvent]:
        """Events in canonical :func:`event_key` order — the export
        order, identical for any emission interleaving of the same
        event multiset."""
        return sorted(self._recorder, key=event_key)

    @property
    def capacity(self) -> int | None:
        """The ring capacity (``None`` when unbounded)."""
        return self._recorder.capacity

    @property
    def dropped(self) -> int:
        """Events evicted by the flight-recorder ring so far."""
        return self._recorder.dropped

    @property
    def appended(self) -> int:
        """Total events ever emitted into this tracer."""
        return self._recorder.appended

    def request_ids(self) -> list[str]:
        """Distinct request ids with surviving events, sorted."""
        return sorted({e.req for e in self._recorder if e.req})

    def clear(self) -> None:
        """Drop all events and counters (reuse across runs)."""
        self._recorder.clear()

    def __len__(self) -> int:
        return len(self._recorder)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer({len(self)} events, {self.dropped} dropped)"
