"""Figure 3: perplexity when only activations or only weights are MXFP4.

The paper's asymmetry: W-MXFP4 is nearly free; A-MXFP4 is what collapses.
"""

from _util import print_table, run_once, save_result

from repro.eval import perplexity_table

MODELS = ["opt-66b-sim", "llama-3.1-8b-sim", "llama-3.1-70b-sim", "mistral-7b-sim"]
CONFIGS = ["baseline", "a:bf16,w:mxfp4", "a:mxfp4,w:bf16", "mxfp4"]


def test_fig03(benchmark, zoo, wiki2):
    def run():
        return {m: perplexity_table(zoo[m], wiki2, CONFIGS) for m in MODELS}

    table = run_once(benchmark, run)
    save_result("fig03_aw_mix", table)
    print_table("Figure 3: A/W MXFP4 mix", table)

    for m in MODELS:
        row = table[m]
        w_only = row["a:bf16,w:mxfp4"]
        a_only = row["a:mxfp4,w:bf16"]
        # Weight-only quantization is a negligible hit...
        assert w_only < row["baseline"] * 1.25
        # ...activation quantization is the real damage, and the full
        # MXFP4 tracks the activation-only case.
        assert a_only > w_only
        assert row["mxfp4"] >= a_only * 0.9
