"""LLM serving simulator: prefill/decode execution time (Figures 11-13).

Follows the paper's definition: *execution time* is the aggregated matrix
multiplication time during inference for a given number of concurrent
requests. Per layer we time the QKV/O projections, the gated MLP, and the
attention score/value products (whose K/V operands stream from the KV
cache); the LM head runs once per forward.

Prefill processes ``batch * prompt_len`` rows at once (compute-bound);
decode processes ``batch`` rows per generated token while the KV cache
grows (memory-bound). The MX+ software path inflates compute only, so it
costs ~1.5x in prefill but vanishes in decode — reproducing Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.zoo import ArchSpec
from .kernels import GemmShape, gemm_time
from .spec import FORMAT_BITS, GPUSpec, RTX5090

__all__ = ["ServingConfig", "StageTimes", "simulate_inference", "end_to_end_speedup"]


@dataclass(frozen=True)
class ServingConfig:
    """One paper configuration, e.g. A-MXFP4+ under software integration."""

    name: str
    act_fmt: str = "bf16"
    weight_fmt: str = "bf16"
    mxplus_software: bool = False  # Algorithm 1 extra sparse MMA on A
    mxplus_hardware: bool = False  # Section 6 Tensor-Core integration
    min_tile_m: int = 1  # kernel tile granularity on M (A8W4: 128)


#: The serving configurations evaluated in Figures 11 and 13.
CONFIGS: dict[str, ServingConfig] = {
    "bf16": ServingConfig("bf16"),
    "mxfp4": ServingConfig("mxfp4", "mxfp4", "mxfp4"),
    "a-mxfp4+": ServingConfig(
        "a-mxfp4+", "mxfp4+", "mxfp4", mxplus_software=True
    ),
    "mxfp8": ServingConfig("mxfp8", "mxfp8", "mxfp8"),
    "mxfp4+": ServingConfig("mxfp4+", "mxfp4+", "mxfp4+", mxplus_hardware=True),
    "mxfp4++": ServingConfig("mxfp4++", "mxfp4++", "mxfp4++", mxplus_hardware=True),
    # CUTLASS ships a single M=128 tile shape for A8W4 (Section 7.4), so
    # decode (M = batch) pays heavy tile padding.
    "a8w4": ServingConfig("a8w4", "mxfp8", "mxfp4", min_tile_m=128),
}


@dataclass
class StageTimes:
    prefill_s: float
    decode_s: float

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s


def _layer_gemms(arch: ArchSpec, m: int, ctx: int) -> list[tuple[GemmShape, str]]:
    """(shape, kind) for one transformer layer at batch-rows ``m``.

    kind is "linear" (weight operand) or "attention" (both operands are
    activations / KV cache).
    """
    kv_dim = arch.n_kv_heads * arch.head_dim
    shapes = [
        (GemmShape(m, arch.dim, arch.dim), "linear"),  # Q proj
        (GemmShape(m, kv_dim, arch.dim), "linear"),  # K proj
        (GemmShape(m, kv_dim, arch.dim), "linear"),  # V proj
        (GemmShape(m, arch.dim, arch.dim), "linear"),  # O proj
        (GemmShape(m, arch.hidden, arch.dim), "linear"),  # gate
        (GemmShape(m, arch.hidden, arch.dim), "linear"),  # up
        (GemmShape(m, arch.dim, arch.hidden), "linear"),  # down
        # attention: scores (M x ctx x head_dim) and values, per token rows
        (GemmShape(m, ctx, arch.dim), "attention"),
        (GemmShape(m, arch.dim, ctx), "attention"),
    ]
    return shapes


def _forward_time(
    spec: GPUSpec, arch: ArchSpec, cfg: ServingConfig, m: int, ctx: int
) -> float:
    total = 0.0
    for shape, kind in _layer_gemms(arch, m, ctx):
        b_fmt = cfg.weight_fmt if kind == "linear" else cfg.act_fmt
        total += gemm_time(
            spec,
            shape,
            a_fmt=cfg.act_fmt,
            b_fmt=b_fmt,  # attention: KV cache in the activation format
            mxplus_software=cfg.mxplus_software,
            mxplus_hardware=cfg.mxplus_hardware,
            min_tile_m=cfg.min_tile_m,
        )
    total *= arch.n_layers
    total += gemm_time(
        spec,
        GemmShape(m, arch.vocab, arch.dim),
        a_fmt=cfg.act_fmt,
        b_fmt=cfg.weight_fmt,
        mxplus_software=cfg.mxplus_software,
        mxplus_hardware=cfg.mxplus_hardware,
        min_tile_m=cfg.min_tile_m,
    )
    return total


def simulate_inference(
    arch: ArchSpec,
    cfg: ServingConfig,
    batch: int = 4,
    prompt_len: int = 1024,
    output_len: int = 64,
    spec: GPUSpec = RTX5090,
) -> StageTimes:
    """Aggregate matmul time for prefill and decode stages (seconds)."""
    prefill = _forward_time(spec, arch, cfg, m=batch * prompt_len, ctx=prompt_len)
    decode = 0.0
    for t in range(output_len):
        ctx = prompt_len + t
        decode += _forward_time(spec, arch, cfg, m=batch, ctx=ctx)
    return StageTimes(prefill_s=prefill, decode_s=decode)


def end_to_end_speedup(
    arch: ArchSpec,
    cfg: ServingConfig,
    batch: int = 4,
    prompt_len: int = 1024,
    output_len: int = 64,
    spec: GPUSpec = RTX5090,
) -> float:
    """Speedup of ``cfg`` over the BF16 baseline (Figure 13)."""
    base = simulate_inference(arch, CONFIGS["bf16"], batch, prompt_len, output_len, spec)
    ours = simulate_inference(arch, cfg, batch, prompt_len, output_len, spec)
    return base.total_s / ours.total_s
