"""Figure 5: contribution to MSE from block-max elements vs the per-block
largest-error elements, on sampled attention inputs."""

import numpy as np
from _util import print_table, run_once, save_result

from repro.core import MXFP4, mse_decomposition
from repro.nn.tensor import no_grad


def _attention_input(model, corpus):
    batch = corpus.val_batch(8, 64)
    with no_grad():
        x = model.embed(batch[:, :-1])
        x = x + model._positional(batch.shape[1] - 1)
        return model.blocks[-1].attn_norm(x).data  # deepest layer ~ layer 16


def test_fig05(benchmark, zoo, wiki2):
    def run():
        out = {}
        for name in ["opt-66b-sim", "llama-3.1-8b-sim"]:
            acts = _attention_input(zoo[name], wiki2)
            d = mse_decomposition(acts, MXFP4()(acts))
            out[name] = {
                "bm_share": d.bm_share,
                "largest_error_share": d.largest_error_share,
                "bm_is_largest_error_rate": d.bm_is_largest_error_rate,
            }
        return out

    table = run_once(benchmark, run)
    save_result("fig05_mse", table)
    print_table("Figure 5: MSE decomposition", table)

    for name, row in table.items():
        # BM elements dominate the quantization MSE (paper: ~75-95%).
        assert row["bm_share"] > 0.5
        assert row["largest_error_share"] >= row["bm_share"]
        # ...because the BM usually *is* the largest-error element.
        assert row["bm_is_largest_error_rate"] > 0.5
