"""The scaled-down model zoo standing in for the paper's LLMs.

Each profile names one of the paper's models and fixes a scaled-down
transformer with a per-family *outlier profile*: positional-phase channels
(the block-max-sensitive mechanism) and heavy-tail channel gains. The
profiles are ordered the way the paper's models respond to MXFP4 —
OPT-66B-sim collapses hardest, Phi-4-sim degrades least — by varying the
outlier scale.

``load_model(name)`` trains on first use and caches weights under
``.model_cache`` (override with ``REPRO_CACHE_DIR``), so benchmarks and
examples pay the training cost once per machine.

The zoo also carries *full-size architecture descriptors* (``ARCHS``) used
by the GPU performance substrate: the timing model needs the paper models'
real dimensions (e.g. Llama-2-13B's 5120 width), not the tiny trained
stand-ins.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..data.corpus import DATASETS, Corpus, CorpusSpec, make_corpus
from ..nn.train import train_lm
from ..nn.transformer import TransformerConfig, TransformerLM

__all__ = ["ModelProfile", "PROFILES", "ArchSpec", "ARCHS", "load_model", "get_corpus", "cache_dir"]


# Standard phase-channel layout: two frequency pairs in blocks 0 and 2.
_PE4 = ((8, 5.0, "sin"), (9, 5.0, "cos"), (72, 11.0, "sin"), (73, 11.0, "cos"))


@dataclass(frozen=True)
class ModelProfile:
    name: str
    config: TransformerConfig
    corpus: str = "wiki2-sim"
    train_steps: int = 450
    batch_size: int = 24
    seq_len: int = 64
    lr: float = 3e-3
    train_tokens: int = 240_000


def _cfg(name: str, pe_scale: float, seed: int, gain_sigma: float = 0.8, **kw) -> TransformerConfig:
    base = dict(
        vocab_size=128,
        dim=128,
        n_layers=2,
        n_heads=4,
        hidden=256,
        pe_channels=_PE4,
        pe_scale=pe_scale,
        channel_gain_sigma=gain_sigma,
        channel_gain_cap=6.0,
        seed=seed,
        name=name,
    )
    base.update(kw)
    return TransformerConfig(**base)


#: Scaled-down stand-ins. pe_scale orders the MXFP4 damage the way the
#: paper's models order it (OPT worst, Phi-4 most robust).
PROFILES: dict[str, ModelProfile] = {
    "opt-66b-sim": ModelProfile(
        "opt-66b-sim", _cfg("opt-66b-sim", pe_scale=13.0, seed=11, gain_sigma=1.0)
    ),
    "llama-3.1-8b-sim": ModelProfile(
        "llama-3.1-8b-sim", _cfg("llama-3.1-8b-sim", pe_scale=12.0, seed=3)
    ),
    "llama-3.1-70b-sim": ModelProfile(
        "llama-3.1-70b-sim",
        _cfg("llama-3.1-70b-sim", pe_scale=10.0, seed=7, n_layers=3),
        train_steps=500,
    ),
    "mistral-7b-sim": ModelProfile(
        "mistral-7b-sim", _cfg("mistral-7b-sim", pe_scale=8.0, seed=5)
    ),
    "phi-4-14b-sim": ModelProfile(
        "phi-4-14b-sim", _cfg("phi-4-14b-sim", pe_scale=5.0, seed=9)
    ),
    "qwen-2.5-14b-sim": ModelProfile(
        "qwen-2.5-14b-sim", _cfg("qwen-2.5-14b-sim", pe_scale=10.0, seed=13)
    ),
    "llama-2-7b-sim": ModelProfile(
        "llama-2-7b-sim", _cfg("llama-2-7b-sim", pe_scale=12.0, seed=17)
    ),
    "llama-2-13b-sim": ModelProfile(
        "llama-2-13b-sim", _cfg("llama-2-13b-sim", pe_scale=11.0, seed=19)
    ),
    # Small, fast-training model for tests.
    "test-tiny": ModelProfile(
        "test-tiny",
        _cfg("test-tiny", pe_scale=12.0, seed=1, dim=64, hidden=128,
             pe_channels=((4, 5.0, "sin"), (5, 5.0, "cos"), (40, 11.0, "sin"), (41, 11.0, "cos"))),
        train_steps=60,
        batch_size=16,
        train_tokens=60_000,
    ),
}


@dataclass(frozen=True)
class ArchSpec:
    """Full-size architecture descriptor for the GPU timing model."""

    name: str
    dim: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    hidden: int
    vocab: int

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads


ARCHS: dict[str, ArchSpec] = {
    "llama-2-7b": ArchSpec("llama-2-7b", 4096, 32, 32, 32, 11008, 32000),
    "llama-2-13b": ArchSpec("llama-2-13b", 5120, 40, 40, 40, 13824, 32000),
    "llama-2-70b": ArchSpec("llama-2-70b", 8192, 80, 64, 8, 28672, 32000),
    "llama-3.1-8b": ArchSpec("llama-3.1-8b", 4096, 32, 32, 8, 14336, 128256),
    "llama-3.1-70b": ArchSpec("llama-3.1-70b", 8192, 80, 64, 8, 28672, 128256),
    "opt-66b": ArchSpec("opt-66b", 9216, 64, 72, 72, 36864, 50272),
    "mistral-7b": ArchSpec("mistral-7b", 4096, 32, 32, 8, 14336, 32768),
}


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR", "")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".model_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _profile_key(profile: ModelProfile) -> str:
    payload = json.dumps(dataclasses.asdict(profile), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


_CORPUS_CACHE: dict[tuple, Corpus] = {}


def get_corpus(name: str = "wiki2-sim", train_tokens: int | None = None) -> Corpus:
    """Memoized corpus construction (same spec -> same object)."""
    spec = DATASETS[name]
    if train_tokens is not None:
        spec = dataclasses.replace(spec, train_tokens=train_tokens)
    key = (spec.name, spec.train_tokens)
    if key not in _CORPUS_CACHE:
        _CORPUS_CACHE[key] = make_corpus(spec)
    return _CORPUS_CACHE[key]


_MODEL_CACHE: dict[str, TransformerLM] = {}


def load_model(name: str, retrain: bool = False, verbose: bool = False) -> TransformerLM:
    """Load (training + caching on first use) a zoo model by name."""
    if name not in PROFILES:
        raise KeyError(f"unknown model {name!r}; available: {sorted(PROFILES)}")
    if name in _MODEL_CACHE and not retrain:
        return _MODEL_CACHE[name]

    profile = PROFILES[name]
    model = TransformerLM(profile.config)
    path = cache_dir() / f"{name}-{_profile_key(profile)}.npz"
    if path.exists() and not retrain:
        state = dict(np.load(path))
        model.load_state_dict(state)
    else:
        corpus = get_corpus(profile.corpus, profile.train_tokens)
        if verbose:  # pragma: no cover
            print(f"[zoo] training {name} ({profile.train_steps} steps)...")
        train_lm(
            model,
            corpus.train,
            steps=profile.train_steps,
            batch_size=profile.batch_size,
            seq_len=profile.seq_len,
            lr=profile.lr,
            seed=profile.config.seed,
        )
        np.savez(path, **model.state_dict())
    _MODEL_CACHE[name] = model
    return model
