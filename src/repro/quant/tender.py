"""Tender (Lee et al., ISCA'24) — range-grouped channels with pow2 rescaling.

Channels are partitioned by dynamic range into groups whose scale factors
are powers of two apart, so accumulated partial sums can be *requantized*
with shifts instead of multiplies. We implement the accuracy-relevant
core: per-channel scales snapped to a power-of-two ladder relative to the
tensor scale, then INT4 quantization. MX-Tender (the paper's variant)
recomputes the ladder per two-row runtime group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.elem import floor_log2, round_half_even
from .base import SchemeContext

__all__ = ["TenderContext", "quantize_tender"]


def quantize_tender(x: np.ndarray, bits: int = 4, row_group: int = 0) -> np.ndarray:
    """Channel-grouped INT quantization with pow2 ladder scales.

    ``row_group > 0`` recomputes channel statistics per that many rows
    (MX-Tender's runtime grouping); 0 = whole tensor.
    """
    x = np.asarray(x, dtype=np.float64)
    flat = x.reshape(-1, x.shape[-1])
    if row_group and row_group < flat.shape[0]:
        parts = [
            quantize_tender(flat[i : i + row_group], bits, 0)
            for i in range(0, flat.shape[0], row_group)
        ]
        return np.concatenate(parts, axis=0).reshape(x.shape)

    qmax = (1 << (bits - 1)) - 1
    cmax = np.max(np.abs(flat), axis=0)
    live = cmax > 0
    if not np.any(live):
        return np.zeros_like(x)
    # Ladder: each channel's scale is the tensor scale >> k, k >= 0 chosen
    # from the channel's own max exponent (clamped to 2^3 below the top).
    top = int(np.max(floor_log2(cmax[live])))
    ch_exp = np.where(live, np.clip(floor_log2(np.maximum(cmax, 1e-300)), top - 3, top), top)
    scale = np.exp2(ch_exp.astype(np.float64)) * 2.0 / qmax  # per-channel
    q = np.clip(round_half_even(flat / scale), -qmax, qmax) * scale
    q = np.where(live[None, :], q, 0.0)
    return q.reshape(x.shape)


@dataclass
class TenderContext(SchemeContext):
    bits: int = 4
    row_group: int = 0  # 0 = per tensor (original); 2 = MX-Tender
    name: str = "tender"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        xq = quantize_tender(x, self.bits, self.row_group)
        wq = quantize_tender(w.T, self.bits, 0).T  # weights: per input channel
        return xq, wq
