"""Core format library: MX, MX+, MX++, and the industry BFP baselines."""

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import E2M1, E2M3, E3M2, E4M3, E5M2, INT8_MX, FloatCodec, IntCodec
from .intquant import IntQuantizer, quantize_int_groupwise, quantize_int_tensor
from .metrics import mse, mse_decomposition, outlier_mask_3sigma, sqnr_db
from .msfp import MSFP12, MSFP14, MSFP16, MSFPFormat
from .mx import MXFP4, MXFP6, MXFP8, MXINT8, MXEncoded, MXFormat
from .mxint_plus import MXINT4, MXINT4Plus, MXINT8PlusFormat, MXIntFormat, MXIntPlusFormat
from .mxplus import MXFP4Plus, MXFP6Plus, MXFP8Plus, MXPlusEncoded, MXPlusFormat, decompose_bm
from .mxpp import MXFP4PlusPlus, MXPPFormat
from .nvfp4 import NVFP4, NVFP4Format, NVFP4Plus, NVFP4PlusFormat
from .registry import available_formats, get_format, register_format
from .reorder import apply_reorder, channel_outlier_counts, reorder_permutation
from .smx import SMX4, SMX6, SMX9, SMXFormat
from .topk import TopKPromoteFormat, promoted_fraction

__all__ = [
    "BlockFormat",
    "to_blocks",
    "from_blocks",
    "FloatCodec",
    "IntCodec",
    "E2M1",
    "E2M3",
    "E3M2",
    "E4M3",
    "E5M2",
    "INT8_MX",
    "MXFormat",
    "MXEncoded",
    "MXFP4",
    "MXFP6",
    "MXFP8",
    "MXINT8",
    "MXPlusFormat",
    "MXPlusEncoded",
    "MXFP4Plus",
    "MXFP6Plus",
    "MXFP8Plus",
    "decompose_bm",
    "MXPPFormat",
    "MXFP4PlusPlus",
    "MXIntFormat",
    "MXIntPlusFormat",
    "MXINT4",
    "MXINT4Plus",
    "MXINT8PlusFormat",
    "NVFP4",
    "NVFP4Plus",
    "NVFP4Format",
    "NVFP4PlusFormat",
    "MSFPFormat",
    "MSFP12",
    "MSFP14",
    "MSFP16",
    "SMXFormat",
    "SMX4",
    "SMX6",
    "SMX9",
    "IntQuantizer",
    "quantize_int_tensor",
    "quantize_int_groupwise",
    "TopKPromoteFormat",
    "promoted_fraction",
    "mse",
    "sqnr_db",
    "mse_decomposition",
    "outlier_mask_3sigma",
    "get_format",
    "available_formats",
    "register_format",
    "apply_reorder",
    "channel_outlier_counts",
    "reorder_permutation",
]
