"""MX+ encoder micro-benchmark: batched numpy vs the per-block reference.

The recipe autotuner (:mod:`repro.tune`) hammers ``quantize_dequantize``
— every sensitivity cell and every measured candidate runs the full model
with per-matmul encodes — so the encode path must stay whole-tensor
vectorized. This benchmark times a 4096x4096 MXFP4+ encode through the
batched :meth:`~repro.core.mxplus.MXPlusFormat.encode` against the
per-block :meth:`~repro.core.mxplus.MXPlusFormat.encode_reference`
specification (identical output, asserted field-for-field in
``tests/test_properties_core.py``) and asserts the vectorized path is at
least 2x faster.

The reference loops over half a million blocks in Python, so it is timed
on a 256-row slab and scaled linearly — exact for a per-block-independent
loop (same per-block work, 1/16 the blocks).
"""

import time

import numpy as np

from _util import print_table, run_once, save_result

from repro.core.mxplus import MXFP4Plus

SHAPE = (4096, 4096)
SLAB_ROWS = 256  # reference timed on a slab, scaled by the block ratio
MIN_SPEEDUP = 2.0


def _bench():
    fmt = MXFP4Plus()
    rng = np.random.default_rng(0)
    x = rng.normal(size=SHAPE)
    scale = SHAPE[0] // SLAB_ROWS

    t0 = time.perf_counter()
    fmt.encode(x)
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fmt.encode_reference(x[:SLAB_ROWS])
    reference_s = (time.perf_counter() - t0) * scale

    return {
        "shape": list(SHAPE),
        "blocks": SHAPE[0] * SHAPE[1] // fmt.block_size,
        "batched_s": batched_s,
        "reference_s_extrapolated": reference_s,
        "speedup": reference_s / batched_s,
        "bits_per_element": fmt.bits_per_element(),
    }


def test_encode_speed(benchmark):
    result = run_once(benchmark, _bench)
    print_table(
        "MXFP4+ 4096x4096 encode: batched vs per-block loop",
        {k: v for k, v in result.items() if isinstance(v, float)},
    )
    # Assert before save_result so a failing (e.g. load-skewed) run never
    # overwrites the committed artifact.
    assert result["speedup"] >= MIN_SPEEDUP
    save_result("encode_speed", result)
