"""Size-capped flight recorder: the memory bound under every tracer.

A million-request simulation can emit tens of millions of trace events;
holding them all would dwarf the simulation's own working set. The
:class:`FlightRecorder` is the classic fix — a ring buffer that keeps
the **most recent** ``capacity`` entries and counts what it dropped, so
a long run can always trace its tail (where the preemption storm or the
link stall actually happened) at a fixed memory budget.

``capacity=None`` disables the cap entirely — the mode the determinism
tests use, since ring eviction order depends on emission order and two
differently-ordered (but equal) event multisets would keep different
survivors.

>>> rec = FlightRecorder(capacity=2)
>>> for i in range(5):
...     rec.append(i)
>>> list(rec), rec.appended, rec.dropped
([3, 4], 5, 3)
>>> unbounded = FlightRecorder()
>>> unbounded.capacity is None and unbounded.dropped == 0
True
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Append-only ring buffer keeping the newest ``capacity`` items.

    ``capacity=None`` means unbounded (a plain list-like log). The
    recorder never inspects its items — the :class:`repro.obs.Tracer`
    stores event tuples in one, but any payload works.
    """

    __slots__ = ("capacity", "appended", "_items")

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.appended = 0
        self._items: deque = deque(maxlen=capacity)

    def append(self, item) -> None:
        """Record one item, evicting the oldest when at capacity."""
        self._items.append(item)
        self.appended += 1

    def extend(self, items) -> None:
        """Record many items in order (same eviction semantics)."""
        for item in items:
            self._items.append(item)
            self.appended += 1

    @property
    def dropped(self) -> int:
        """How many items the ring has evicted since the last clear."""
        return self.appended - len(self._items)

    def clear(self) -> None:
        """Drop everything and reset the appended/dropped counters."""
        self._items.clear()
        self.appended = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "∞" if self.capacity is None else str(self.capacity)
        return (
            f"FlightRecorder({len(self)}/{cap} held, "
            f"{self.dropped} dropped)"
        )
