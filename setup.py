"""Setuptools shim.

The offline environment lacks the ``wheel`` package, which the PEP 517
editable-install path requires. ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` where wheel is available) installs
the package; configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
