"""Uniform symmetric integer quantization (the Section 2 baseline).

Implements the classic scheme: ``s = max|x| / (2**(b-1) - 1)``,
``x_q = round(x / s)``, at per-tensor, per-channel, or per-group
granularity. Used by the baseline quantization schemes of Table 7
(SmoothQuant, QuaRot, Atom, Tender, AWQ) and as a standalone format.
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import round_half_even

__all__ = ["IntQuantizer", "quantize_int_tensor", "quantize_int_groupwise"]


def _fake_quant(x: np.ndarray, scale: np.ndarray, qmax: int) -> np.ndarray:
    safe = np.where(scale == 0, 1.0, scale)
    q = np.clip(round_half_even(x / safe), -qmax, qmax)
    return np.where(scale == 0, 0.0, q * safe)


def quantize_int_tensor(x: np.ndarray, bits: int) -> np.ndarray:
    """Per-tensor symmetric integer fake-quantization."""
    x = np.asarray(x, dtype=np.float64)
    qmax = (1 << (bits - 1)) - 1
    scale = np.max(np.abs(x)) / qmax
    return _fake_quant(x, scale, qmax)


def quantize_int_groupwise(x: np.ndarray, bits: int, group: int, axis: int = -1) -> np.ndarray:
    """Group-wise symmetric integer fake-quantization along ``axis``.

    ``group`` elements along the axis share one floating-point scale
    (``group = -1`` means the whole axis, i.e. per-channel/per-token).
    """
    x = np.asarray(x, dtype=np.float64)
    qmax = (1 << (bits - 1)) - 1
    if group == -1:
        group = x.shape[axis]
    blocked = to_blocks(x, group, axis)
    data = blocked.data
    scale = np.max(np.abs(data), axis=-1, keepdims=True) / qmax
    return from_blocks(blocked, _fake_quant(data, scale, qmax))


class IntQuantizer(BlockFormat):
    """Group-wise INT-b as a :class:`BlockFormat` (floating-point scales)."""

    def __init__(self, bits: int, group: int = 128, name: str | None = None):
        self.bits = bits
        self.block_size = group
        self.name = name or f"int{bits}-g{group}"

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return quantize_int_groupwise(x, self.bits, self.block_size, axis)

    def bits_per_element(self) -> float:
        # 16-bit scale per group is typical.
        return self.bits + 16.0 / self.block_size
