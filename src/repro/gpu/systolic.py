"""MX+ support in systolic-array matrix pipelines (Section 8.2).

A weight-stationary 32x32 systolic array where each column's PEs jointly
compute the dot product of one MX block pair. FSUs attached to the PEs
forward BM operands to a single per-column BCU below the array, which
adds the BM terms to the column's partial sum — the same decomposition as
the GPU Tensor-Core integration, in a fixed-function pipeline.

The functional model verifies bit-faithful matmuls; the cycle model uses
the standard systolic pipeline fill/drain accounting, with the BCU adding
a fixed pipeline stage (no per-element stalls).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mx import MXFormat
from ..core.mxplus import MXPlusFormat
from .hardware import dpe_block_dot, lane_view

__all__ = ["SystolicArray", "SystolicResult"]


@dataclass
class SystolicResult:
    output: np.ndarray
    cycles: int


class SystolicArray:
    """Weight-stationary array of size (block, cols)."""

    def __init__(self, fmt_x: MXPlusFormat | MXFormat, fmt_w: MXFormat, cols: int = 32):
        if fmt_x.block_size != fmt_w.block_size:
            raise ValueError("operand block sizes must match")
        self.fmt_x = fmt_x
        self.fmt_w = fmt_w
        self.rows = fmt_x.block_size
        self.cols = cols

    def matmul(self, x: np.ndarray, w: np.ndarray) -> SystolicResult:
        """``x (M, K) @ w (K, N)`` tiled over the array.

        Each K-block of 32 maps onto the PE column; N is tiled by ``cols``.
        Cycle model: weights preload once per (K-block, N-tile); each of
        the M activation rows then streams through with II=1, plus the
        fill/drain latency of rows + cols and one BCU stage.
        """
        m, k = x.shape
        n = w.shape[1]
        if k % self.rows:
            raise ValueError("K must be a multiple of the block size")
        enc_x = self.fmt_x.encode(x, axis=-1)
        enc_w = self.fmt_w.encode(w, axis=0)
        nblocks = k // self.rows

        out = np.zeros((m, n))
        cycles = 0
        views_x = [lane_view(enc_x, i) for i in range(m * nblocks)]
        views_w = [lane_view(enc_w, i) for i in range(n * nblocks)]
        for b in range(nblocks):
            for j0 in range(0, n, self.cols):
                j1 = min(j0 + self.cols, n)
                cycles += self.rows  # weight preload
                # stream all M rows: II = 1 after fill; +1 BCU stage
                cycles += m + self.rows + (j1 - j0) + 1
                for i in range(m):
                    for j in range(j0, j1):
                        tree, bcu = dpe_block_dot(
                            views_x[i * nblocks + b], views_w[j * nblocks + b]
                        )
                        out[i, j] += tree + bcu
        return SystolicResult(output=out, cycles=cycles)
