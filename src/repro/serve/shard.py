"""Sharded virtual-time simulation: the fleet event loop across processes.

:class:`~repro.serve.ServingCluster`'s global event loop is exact but
serial — one Python process walks every replica's steps in virtual-time
order. For *snapshot-blind* routers that serialization is unnecessary:
the routing decision for every request can be computed up front (it
depends only on the request sequence, never on live replica state), and
once each request knows its replica, every replica's trajectory is
independent of the others — a :class:`~repro.serve.ServingEngine` is
self-contained, so replaying one replica's shard through ``engine.run``
reproduces exactly the step sequence the global loop would have driven
on that replica.

That turns the fleet simulation into an embarrassingly parallel map:

.. code-block:: text

      requests ──▶ plan_shards (route @ plan time, arrival order)
                       │
         ┌─────────────┼─────────────┐
         ▼             ▼             ▼
      worker 0      worker 1      worker 2      (multiprocessing)
      engine.run    engine.run    engine.run    (own virtual clock)
         │             │             │
         └─────────────┼─────────────┘
                       ▼
              deterministic merge ──▶ FleetResult
              (responses in input order, replicas by index)

**Determinism contract.** For routers in :data:`SHARDABLE_ROUTERS`
(``round-robin``, ``least-kv-load``, ``prefix-affinity``) the merged
:class:`~repro.serve.FleetResult` is **bit-identical** to
``cluster.run(requests)``: these routers never read the
:class:`~repro.serve.ReplicaSnapshot` contents, so plan-time routing
equals event-loop routing, and each engine's virtual-time trajectory
depends only on its own shard. The load-feedback routers
(``queue-depth``, ``free-kv-at-arrival``) *do* read live state that only
exists mid-simulation; sharding them (``allow_approximate=True``) uses
their documented snapshot-free fallback heuristics — deterministic and
reproducible, but not the same assignment the global loop would make.

Autoscaling and disaggregated prefill/decode clusters couple replicas
through global state (fleet size, the shared transfer link) and are
rejected — use ``cluster.run``.
"""

from __future__ import annotations

import multiprocessing
import os

from .cluster import FleetResult, ServingCluster, get_router
from .engine import Request, ServingResult, arrival_order

__all__ = [
    "SHARDABLE_ROUTERS",
    "plan_shards",
    "run_sharded",
]

# Routers whose route() never reads ReplicaSnapshot contents: plan-time
# routing (replicas=None) is identical to event-loop routing, so their
# sharded results are bit-identical to the global loop's.
SHARDABLE_ROUTERS = frozenset({"round-robin", "least-kv-load", "prefix-affinity"})


def plan_shards(
    cluster: ServingCluster, requests: list[Request]
) -> tuple[list[list[Request]], dict[str, int]]:
    """Partition ``requests`` by router decision at plan time.

    Routes every request in arrival order — exactly the order the global
    event loop routes them — against ``replicas=None``, so for
    snapshot-blind routers the assignment map equals the one
    ``cluster.run`` would produce. Returns ``(shards, assignments)``
    where ``shards[j]`` lists replica ``j``'s requests in *input* order
    (the order :meth:`ServingEngine.collect
    <repro.serve.ServingEngine.collect>` reports them in).
    """
    router = get_router(cluster._router_spec, cluster.n_replicas)
    router.reset()
    assignments: dict[str, int] = {}
    for request in arrival_order(requests):
        assignments[request.request_id] = router.route(request, None)
    shards: list[list[Request]] = [[] for _ in range(cluster.n_replicas)]
    for request in requests:
        shards[assignments[request.request_id]].append(request)
    return shards, assignments


def _run_shard(payload: tuple) -> tuple:
    """Worker: replay one replica's shard on a fresh engine.

    Top-level (picklable) so it works under any multiprocessing start
    method. ``engine.run`` performs the same submit-in-arrival-order /
    drain / collect-in-input-order sequence the global loop drives per
    replica, so the returned :class:`~repro.serve.ServingResult` is the
    one ``cluster.run`` would report for this replica.

    When ``trace`` is set the worker records into its own fresh
    :class:`repro.obs.Tracer` tagged with the replica index and ships
    the raw events back with the result; the parent merges all shards'
    events into one canonical stream (see :func:`run_sharded`).
    """
    cluster, shard, index, trace = payload
    engine = cluster._make_engine()
    if trace:
        from ..obs.trace import Tracer

        engine.tracer = Tracer()
        engine.trace_replica = index
    result = engine.run(shard)
    events = engine.tracer.raw_events() if trace else None
    return result, events


def run_sharded(
    cluster: ServingCluster,
    requests: list[Request],
    n_workers: int | None = None,
    allow_approximate: bool = False,
    tracer=None,
) -> FleetResult:
    """Run ``cluster``'s fleet simulation sharded across processes.

    Routes at plan time (:func:`plan_shards`), replays each replica's
    shard in its own worker process, and merges into a
    :class:`~repro.serve.FleetResult` — bit-identical to
    ``cluster.run(requests)`` for routers in :data:`SHARDABLE_ROUTERS`
    (see the module docstring for the contract and why it holds).

    ``n_workers`` defaults to ``min(n_replicas, cpu_count)``;
    ``n_workers <= 1`` runs the shards in-process (same merge path, no
    pickling) which is also the fallback for numeric-mode clusters.
    Load-feedback routers require ``allow_approximate=True`` and use
    their snapshot-free fallbacks. Autoscaling and disaggregated
    clusters are rejected — their replicas are coupled through global
    state that sharding cannot preserve.

    ``tracer`` (a :class:`repro.obs.Tracer`, default
    ``cluster.tracer``) extends the determinism contract to traces:
    each worker records into a private per-replica tracer, the parent
    synthesizes the plan-time ``route`` events the global loop would
    have emitted, and the merged stream is ingested in canonical
    ``(t, replica, kind, req, data)`` order — for shardable routers an
    (uncapped) merged trace is event-for-event equal to the trace
    ``cluster.run`` records in one process.
    """
    if cluster.disaggregated:
        raise ValueError(
            "disaggregated clusters share one transfer link across pools; "
            "shards cannot preserve its serialization — use cluster.run()"
        )
    if cluster.autoscale is not None:
        raise ValueError(
            "autoscaling reacts to fleet-wide state; sharded replicas "
            "cannot observe each other — use cluster.run()"
        )
    router_name = get_router(cluster._router_spec, cluster.n_replicas).name
    if router_name not in SHARDABLE_ROUTERS and not allow_approximate:
        raise ValueError(
            f"router {router_name!r} reads live replica state; sharded "
            "routing uses its snapshot-free fallback and diverges from "
            "cluster.run() — pass allow_approximate=True to accept that"
        )
    if tracer is None:
        tracer = getattr(cluster, "tracer", None)
    requests = list(requests)
    shards, assignments = plan_shards(cluster, requests)
    trace = tracer is not None
    payloads = [(cluster, shard, j, trace) for j, shard in enumerate(shards)]
    if n_workers is None:
        n_workers = min(cluster.n_replicas, os.cpu_count() or 1)
    if n_workers <= 1 or cluster._model is not None:
        # In-process fallback: identical merge path, no pickling. Numeric
        # mode stays here — model weights are not worth shipping to
        # workers for a simulation this size.
        outcomes = [_run_shard(p) for p in payloads]
    else:
        with multiprocessing.Pool(processes=n_workers) as pool:
            outcomes = pool.map(_run_shard, payloads)
    results = [res for res, _ in outcomes]
    if trace:
        # Reconstruct the cluster-lane events the global loop would have
        # emitted (plan-time routing is event-loop routing for shardable
        # routers), then merge every stream canonically.
        from ..obs.trace import TraceEvent, merge_events

        synthesized = [
            TraceEvent(
                request.arrival_s, -1, "route", request.request_id,
                (assignments[request.request_id],),
            )
            for request in arrival_order(requests)
        ]
        tracer.ingest(
            merge_events(
                [synthesized] + [events for _, events in outcomes]
            )
        )
    by_id = {
        resp.request_id: resp for res in results for resp in res.responses
    }
    return FleetResult(
        responses=[by_id[r.request_id] for r in requests],
        replica_results=results,
        assignments=assignments,
        router=router_name,
        scheduler=cluster.engines[0].scheduler.name,
        autoscale_events=[],
    )
