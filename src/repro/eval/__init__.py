"""Evaluation harness: perplexity and task accuracy under quantization."""

from .harness import accuracy_table, score_continuations, task_accuracy
from .perplexity import perplexity, perplexity_table

__all__ = [
    "perplexity",
    "perplexity_table",
    "task_accuracy",
    "accuracy_table",
    "score_continuations",
]
