"""Conversion-before-computation timing model (Section 5 / Table 4).

On GPUs without native MX support (e.g. RTX A6000), MX blocks are
converted to BF16 inside the matmul kernel (the Triton path the paper
extends). MX+ adds per-block BM fix-up work to that conversion — Eq. (2)'s
branch — and MX++ additionally applies the NBM scale delta. No extra MMA
is needed. The overhead is therefore most visible when conversion
dominates, i.e. small-M (low data reuse) GEMMs, and is amortized away at
large M — the Table 4 pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernels import GemmShape, gemm_time
from .spec import GPUSpec, RTXA6000

__all__ = ["ConversionCosts", "converted_matmul_time", "table4_row"]


@dataclass(frozen=True)
class ConversionCosts:
    """Per-element / per-block conversion costs, in GPU cycles.

    Calibrated so the relative Table 4 overheads emerge; absolute values
    are nominal (the paper reports normalized time only).
    """

    elem_cycles: float = 1.0  # shift+scale per element (Eq. 2 NBM branch)
    bm_fixup_cycles_mxplus: float = 50.0  # per block: BM branch of Eq. (2)
    bm_fixup_cycles_mxpp: float = 63.0  # + NBM rescale by the stored delta
    conv_lanes_per_sm: int = 64  # CUDA-core lanes usable by the converter

    def per_block(self, variant: str, block: int = 32) -> float:
        base = self.elem_cycles * block
        if variant == "mxfp4+":
            return base + self.bm_fixup_cycles_mxplus
        if variant == "mxfp4++":
            return base + self.bm_fixup_cycles_mxpp
        return base


def converted_matmul_time(
    shape: GemmShape,
    weight_variant: str = "mxfp4",
    spec: GPUSpec = RTXA6000,
    costs: ConversionCosts = ConversionCosts(),
    block: int = 32,
) -> float:
    """Seconds for BF16-activation x MX-weight GEMM with conversion.

    Weights are dequantized once (converted tiles stay L2-resident across
    M-tiles), then BF16 MMAs run. Small-M GEMMs are dominated by the
    weight load + conversion, so the MX+ BM branch is most visible there;
    large-M GEMMs are MMA-bound and amortize it — the Table 4 pattern.
    """
    nblocks = (shape.k // block) * shape.n
    conv_cycles = nblocks * costs.per_block(weight_variant, block)
    rate = spec.num_sms * costs.conv_lanes_per_sm * spec.clock_ghz * 1e9
    conv_s = conv_cycles / rate
    mma_s = gemm_time(spec, shape, a_fmt="bf16", b_fmt="bf16")
    return conv_s + mma_s


def table4_row(
    m_values: list[int],
    weight_variant: str,
    n: int = 4096,
    k: int = 4096,
    spec: GPUSpec = RTXA6000,
) -> dict[int, float]:
    """Normalized matmul time (variant / mxfp4) across M (one Table 4 row)."""
    out = {}
    for m in m_values:
        shape = GemmShape(m, n, k)
        base = converted_matmul_time(shape, "mxfp4", spec)
        ours = converted_matmul_time(shape, weight_variant, spec)
        out[m] = ours / base
    return out
