"""Scale-out serving walkthrough: paged KV, workloads, and a cluster.

Shows the layers added on top of `ServingEngine`:
 1. `PagedKVCache.from_byte_budget` — the recipe's KV format sets how
    many tokens (and hence requests) fit one replica's page budget;
 2. `workload` generators — seeded bursty traffic and the shared-prefix
    chat scenario, plus JSONL trace replay;
 3. `ServingCluster` — N replicas behind one global event loop and a
    router, with fleet metrics including goodput under a latency SLO;
 4. pluggable schedulers (prefill-first / chunked-prefill /
    decode-priority) and queue-depth autoscaling;
 5. observability — a virtual-time `Tracer` + `MetricsRegistry` on the
    fleet, shard-merge reconciliation, and Perfetto export
    (`--trace PATH` keeps the Chrome trace JSON, `--metrics PATH` the
    gauge series CSV);
 6. with --disaggregate: prefill/decode replica pools with KV migration
    priced over an interconnect (see docs/SERVING_GUIDE.md).

Run:  python examples/cluster_serving.py [--scheduler chunked-prefill]
                                         [--trace trace.json]
                                         [--metrics metrics.csv]
                                         [--disaggregate]
(the CI scheduler matrix runs it once per policy; the obs job keeps the
trace artifact; the disagg smoke job runs it with --disaggregate)
"""

import argparse
import tempfile
from pathlib import Path

from repro.models.zoo import ARCHS
from repro.serve import (
    AutoscalePolicy,
    INTERCONNECTS,
    PagedKVCache,
    Request,
    ServingCluster,
    ServingEngine,
    available_schedulers,
    chat_workload,
    get_recipe,
    kv_token_bytes,
    load_trace,
    long_prompt_workload,
    make_workload,
    save_trace,
)

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument(
    "--scheduler", default="prefill-first", choices=available_schedulers(),
    help="batch-composition policy used by every replica engine",
)
parser.add_argument(
    "--disaggregate", action="store_true",
    help="also run the prefill/decode-disaggregated section",
)
parser.add_argument(
    "--trace", default=None, metavar="PATH",
    help="write the observability section's Perfetto trace JSON here",
)
parser.add_argument(
    "--metrics", default=None, metavar="PATH",
    help="write the observability section's gauge series CSV here",
)
ARGS = parser.parse_args()
SCHED = ARGS.scheduler

arch = ARCHS["llama-2-13b"]
GIB = 1 << 30
BUDGET = 4 * GIB
print(f"scheduler policy: {SCHED}\n")

# ----------------------------------------------------------------------
# 1. Format -> capacity: equal page budget, different KV formats.
# ----------------------------------------------------------------------
print(f"Paged KV capacity at {BUDGET // GIB} GiB/replica ({arch.name}, 16-token pages)\n")
print(f"{'recipe':>10s} {'KB/token':>9s} {'capacity tok':>13s} {'peak running':>13s} "
      f"{'preempt':>8s} {'tok/s':>8s}")
burst = [Request(f"b{i}", prompt_len=512, max_new_tokens=32) for i in range(32)]
for name in ["bf16", "mxfp8", "a-mxfp4+", "mxfp4+", "mxfp4"]:
    recipe = get_recipe(name)
    cache = PagedKVCache.from_byte_budget(BUDGET, arch, recipe, block_tokens=16)
    result = ServingEngine(arch, recipe, kv_cache=cache, scheduler=SCHED).run(burst)
    print(f"{name:>10s} {kv_token_bytes(arch, recipe) / 1024:9.0f} "
          f"{cache.capacity_tokens:13d} {result.peak_running:13d} "
          f"{result.preemptions:8d} {result.throughput_tok_s:8.0f}")

print("""
The MX+ memory win as serving capacity: a 4.5-bit KV cache holds ~3.6x
the BF16 tokens, so the same GPU admits the whole 32-request burst where
BF16 thrashes (preemptions) at a third of the concurrency.""")

# ----------------------------------------------------------------------
# 2. Shared-prefix chat: system prompts stored once, prefill skipped.
# ----------------------------------------------------------------------
chat = chat_workload(32, n_prefixes=2, prefix_len=512, seed=0, rate_rps=40.0)
stripped = [Request(r.request_id, prompt_len=r.prompt_len,
                    max_new_tokens=r.max_new_tokens, arrival_s=r.arrival_s)
            for r in chat]
print("Shared-prefix chat (MXFP4+, 2 system prompts x 512 tokens):")
for label, reqs in (("with prefix cache", chat), ("without", stripped)):
    cache = PagedKVCache.from_byte_budget(BUDGET, arch, "mxfp4+", block_tokens=16)
    r = ServingEngine(arch, "mxfp4+", kv_cache=cache).run(reqs)
    print(f"  {label:>18s}: mean TTFT {r.mean_ttft_s * 1e3:6.1f} ms, "
          f"prefill {r.stages.prefill_s * 1e3:6.1f} ms, "
          f"{r.kv['prefix_hits']} hits / {r.kv['prefix_tokens_reused']} tokens reused")

# ----------------------------------------------------------------------
# 3. Traces round-trip as JSONL.
# ----------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    trace = Path(tmp) / "chat.jsonl"
    save_trace(trace, chat)
    assert load_trace(trace) == chat
    print(f"\nTrace replay: {len(chat)} requests -> {trace.name} "
          f"({trace.stat().st_size} bytes) -> identical requests back")

# ----------------------------------------------------------------------
# 4. Fleet: replicas x routers, goodput under SLO.
# ----------------------------------------------------------------------
reqs = make_workload(48, seed=1, arrival="bursty", rate_rps=400.0, burst_size=12)
print(f"\nFleet scaling (MXFP4+, least-kv-load, {SCHED}, bursty x48):")
for n in (1, 2, 4):
    fleet = ServingCluster(arch, "mxfp4+", n_replicas=n, router="least-kv-load",
                           page_budget_bytes=BUDGET, block_tokens=16,
                           scheduler=SCHED).run(reqs)
    print(f"  {n} replica(s): {fleet.throughput_tok_s:6.0f} tok/s, "
          f"mean TTFT {fleet.mean_ttft_s * 1e3:6.1f} ms, "
          f"goodput@(TTFT<500ms) {fleet.goodput_tok_s(ttft_slo_s=0.5):6.0f} tok/s")

print("\nRouters on the chat workload (4 replicas, 4 system prompts):")
chat4 = chat_workload(48, n_prefixes=4, prefix_len=512, seed=3, rate_rps=60.0)
for router in ("round-robin", "least-kv-load", "free-kv-at-arrival",
               "queue-depth", "prefix-affinity"):
    fleet = ServingCluster(arch, "mxfp4+", n_replicas=4, router=router,
                           page_budget_bytes=BUDGET, block_tokens=16,
                           scheduler=SCHED).run(chat4)
    hits = sum(r.kv["prefix_hits"] for r in fleet.replica_results)
    misses = sum(r.kv["prefix_misses"] for r in fleet.replica_results)
    print(f"  {router:>18s}: {hits:2d} prefix hits / {misses:2d} misses, "
          f"mean TTFT {fleet.mean_ttft_s * 1e3:5.1f} ms")

print("""
prefix-affinity pins each system prompt to one replica, so the fleet
stores it once and every follow-up turn hits the cached pages; the
queue-depth and free-kv-at-arrival routers decide from the replicas'
*live* state at each request's arrival instant.""")

# ----------------------------------------------------------------------
# 5. Schedulers and autoscaling on the bursty long-prompt stress case.
# ----------------------------------------------------------------------
stress = long_prompt_workload(32)
print("Scheduler policies (MXFP4+, 1 GiB pages, bursty long prompts x32):")
for sched in available_schedulers():
    fleet = ServingCluster(arch, "mxfp4+", n_replicas=1,
                           page_budget_bytes=1 * GIB, block_tokens=16,
                           scheduler=sched).run(stress)
    print(f"  {sched:>16s}: p99 TTFT {fleet.p99_ttft_s() * 1e3:7.1f} ms, "
          f"mean TPOT {fleet.mean_tpot_s * 1e3:5.2f} ms, "
          f"{fleet.throughput_tok_s:5.0f} tok/s")

policy = AutoscalePolicy(max_replicas=4, scale_up_queue_depth=3)
fleet = ServingCluster(arch, "mxfp4+", n_replicas=1,
                       page_budget_bytes=1 * GIB, block_tokens=16,
                       scheduler=SCHED, autoscale=policy).run(stress)
ups = sum(1 for e in fleet.autoscale_events if e[1] == "scale-up")
print(f"\nAutoscale (queue depth >= 3, max 4): grew to {fleet.n_replicas} "
      f"replicas ({ups} scale-ups), p99 TTFT {fleet.p99_ttft_s() * 1e3:.1f} ms, "
      f"{fleet.throughput_tok_s:.0f} tok/s")

print("""
chunked prefill co-schedules prompt chunks with decodes, so first tokens
and page turnover keep flowing through each burst — the p99 TTFT win
over prefill-first; decode-priority shows the opposite trade. Autoscaling
turns the same queue pressure into replicas instead.""")

# ----------------------------------------------------------------------
# 6. Observability: virtual-time traces, fleet metrics, Perfetto export.
# ----------------------------------------------------------------------
from repro.gpu.inference import clear_step_time_cache
from repro.obs import (
    MetricsRegistry,
    Tracer,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.serve import run_sharded

obs_reqs = make_workload(200, seed=0, arrival="poisson", rate_rps=100.0)


def _obs_cluster(tracer, metrics=None):
    return ServingCluster(arch, "mxfp4+", n_replicas=2, router="round-robin",
                          page_budget_bytes=BUDGET, block_tokens=16,
                          scheduler=SCHED, tracer=tracer, metrics=metrics)


# Cold step-time-cache counters make the exported hit-rate series (and
# hence the trace file) byte-identical across invocations.
clear_step_time_cache()
traced = _obs_cluster(Tracer(), MetricsRegistry(interval_s=0.5))
traced.run(obs_reqs)
events = traced.tracer.events()

# The shard contract extends to traces: per-worker tracers merge into
# the exact event stream the single-process loop records.
sharded = _obs_cluster(Tracer())
run_sharded(sharded, obs_reqs, n_workers=2)
verdict = "reconciles with" if sharded.tracer.events() == events \
    else "DIVERGES from"
print(f"\nshard-merged trace {verdict} single-process "
      f"({len(events)} events, 2 workers)")

trace_out = Path(ARGS.trace) if ARGS.trace \
    else Path(tempfile.mkdtemp()) / "trace.json"
stats = validate_chrome_trace(
    write_chrome_trace(trace_out, events, traced.metrics))
print(f"Perfetto trace -> {trace_out} ({stats['n_events']} events, "
      f"{stats['complete_pairs']} spans, {stats['counters']} counter "
      f"samples) — load at https://ui.perfetto.dev")
if ARGS.metrics:
    write_metrics_csv(Path(ARGS.metrics), traced.metrics)
    print(f"metrics CSV -> {ARGS.metrics}")
print("\n" + timeline_report(events, max_requests=5))

# ----------------------------------------------------------------------
# 7. Disaggregated prefill/decode pools with KV migration (--disaggregate).
# ----------------------------------------------------------------------
if ARGS.disaggregate:
    print("\nDisaggregated serving (1 prefill + 1 decode replica, 1 GiB "
          "pages each,\nbursty long prompts x32) — KV pages migrate over "
          "the interconnect\nbetween the first token (prefill pool) and "
          "the rest of the decode:\n")
    print(f"{'recipe':>8s} {'link':>9s} {'p99 TTFT':>9s} {'TPOT':>8s} "
          f"{'tok/s':>6s} {'MB/req':>7s} {'stall ms':>9s}")
    for name in ("bf16", "mxfp4+"):
        for link in ("100gbe", "pcie5", "nvlink4", "infinite"):
            fleet = ServingCluster(
                ARCHS["llama-2-13b"], name, n_prefill=1, n_decode=1,
                page_budget_bytes=1 * GIB, block_tokens=16,
                scheduler=SCHED, kv_transfer=link,
            ).run(stress)
            print(f"{name:>8s} {link:>9s} {fleet.p99_ttft_s() * 1e3:7.1f}ms "
                  f"{fleet.mean_tpot_s * 1e3:6.2f}ms "
                  f"{fleet.throughput_tok_s:6.0f} "
                  f"{fleet.transfer_bytes_per_request / 1e6:7.1f} "
                  f"{fleet.transfer_stall_s_total * 1e3:9.1f}")

    print("""
TTFT never moves with the link: the first token is produced in the
prefill pool before any migration. The bytes column is where MX+ pays
off twice — a 4.5-bit KV crosses the interconnect with ~3.6x fewer
bytes per request than BF16 (benchmarks/test_disagg_serving.py asserts
the gap; the interconnect presets live in serve.INTERCONNECTS:""")
    print("  " + ", ".join(
        f"{k} {v.bandwidth_gb_s:g} GB/s" for k, v in sorted(INTERCONNECTS.items())
    ) + ")")
