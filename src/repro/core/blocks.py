"""Block partitioning utilities and the abstract :class:`BlockFormat` API.

Every block-based format in this library follows the same contract:

``quantize_dequantize(x, axis=-1)``
    Fake-quantize an array: values come back on the format's representable
    grid, shape and dtype preserved. This is the workhorse for model
    evaluation.

``encode(x, axis=-1) -> Encoded`` / ``decode(Encoded)``
    Structured encode/decode exposing per-block fields (shared exponents,
    element values, BM indices, ...), used by the bit-level layout code and
    by the hardware model.

Blocking happens along one axis: the axis is moved last, padded with zeros
to a multiple of the block size, and reshaped to ``(..., nblocks, k)``.
Padding never changes a block's max-magnitude statistics because zeros are
never larger than any real magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Blocked", "to_blocks", "from_blocks", "BlockFormat"]


@dataclass
class Blocked:
    """An array reshaped into blocks along its last axis, with restore info."""

    data: np.ndarray  # (..., nblocks, k)
    axis: int
    orig_len: int
    orig_shape: tuple
    orig_dtype: np.dtype


def to_blocks(x: np.ndarray, block_size: int, axis: int = -1) -> Blocked:
    """Reshape ``x`` into zero-padded blocks of ``block_size`` along ``axis``."""
    x = np.asarray(x)
    orig_dtype = x.dtype
    work = np.moveaxis(x, axis, -1).astype(np.float64)
    n = work.shape[-1]
    pad = (-n) % block_size
    if pad:
        pad_width = [(0, 0)] * (work.ndim - 1) + [(0, pad)]
        work = np.pad(work, pad_width)
    new_shape = work.shape[:-1] + (work.shape[-1] // block_size, block_size)
    return Blocked(
        data=work.reshape(new_shape),
        axis=axis,
        orig_len=n,
        orig_shape=x.shape,
        orig_dtype=orig_dtype,
    )


def from_blocks(blocked: Blocked, data: np.ndarray | None = None) -> np.ndarray:
    """Invert :func:`to_blocks`, dropping padding and restoring axis order."""
    d = blocked.data if data is None else data
    flat = d.reshape(d.shape[:-2] + (-1,))[..., : blocked.orig_len]
    out = np.moveaxis(flat, -1, blocked.axis)
    return out.reshape(blocked.orig_shape).astype(blocked.orig_dtype, copy=False)


class BlockFormat:
    """Base class for block-based reduced-precision formats."""

    #: format name for the registry (e.g. ``"mxfp4+"``)
    name: str = "abstract"
    #: number of elements sharing one scale
    block_size: int = 32

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Round ``x`` onto the format grid and return it in the input dtype."""
        raise NotImplementedError

    def bits_per_element(self) -> float:
        """Average storage bits per element including all sidebands."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.quantize_dequantize(x, axis=axis)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(name={self.name!r}, k={self.block_size})"
