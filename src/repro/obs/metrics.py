"""Fleet metrics: counters, gauges, histograms, virtual-time series.

Where :mod:`repro.obs.trace` records *events* (points in a request's
life), this module records *state* — how deep the queue is, how many KV
tokens are free, how often the step-time cache hits — sampled on the
same deterministic virtual clock the simulation runs on. A
:class:`MetricsRegistry` is passed to
:class:`repro.serve.ServingCluster` exactly like a tracer: the off-path
is a single ``if metrics is not None`` and an untraced run's results
are bit-identical.

Three instrument kinds, all deliberately tiny:

* :class:`Counter` — monotone totals (preemptions, transfers started).
* :class:`Gauge` — instantaneous values (queue depth, free KV tokens);
  each ``set()`` may also append a ``(t, value)`` sample to the gauge's
  virtual-time series, throttled by the registry's ``interval_s``.
* :class:`Histogram` — fixed-bucket distributions (queue wait seconds);
  buckets are chosen at construction so identical runs bin identically.

Series sampling is interval-gated *per gauge* so a million-arrival run
at ``interval_s=1.0`` keeps one point per simulated second rather than
one per arrival; ``interval_s=0.0`` keeps every sample.

>>> reg = MetricsRegistry()
>>> reg.counter("preemptions").inc()
>>> reg.gauge("queue_depth").set(0.0, 3)
>>> reg.gauge("queue_depth").set(2.5, 1)
>>> reg.histogram("wait_s", (0.1, 1.0, 10.0)).observe(0.4)
>>> snap = reg.snapshot()
>>> snap["counters"]["preemptions"]
1
>>> snap["series"]["queue_depth"]
[(0.0, 3), (2.5, 1)]
>>> snap["histograms"]["wait_s"]["counts"]
[0, 1, 0, 0]
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bisect_left_bound",
]


class Counter:
    """A monotonically increasing total.

    >>> c = Counter("transfers")
    >>> c.inc(); c.inc(2)
    >>> c.value
    3
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """An instantaneous value with an optional virtual-time series.

    ``set(t, value)`` updates the current value and, when the gauge's
    sampling interval has elapsed since the last kept sample (or the
    value is the first/last of the run), appends ``(t, value)`` to the
    series. Repeated sets at the same virtual instant overwrite the
    last sample instead of duplicating it, so the series is strictly
    increasing in ``t``.

    >>> g = Gauge("free_kv", interval_s=1.0)
    >>> g.set(0.0, 10); g.set(0.4, 9); g.set(1.2, 7)
    >>> g.value, g.series
    (7, [(0.0, 10), (1.2, 7)])
    """

    __slots__ = ("name", "value", "series", "interval_s", "_next_sample_t")

    def __init__(self, name: str, interval_s: float = 0.0) -> None:
        self.name = name
        self.value = 0
        self.series: list[tuple[float, float]] = []
        self.interval_s = interval_s
        self._next_sample_t = float("-inf")

    def set(self, t: float, value) -> None:
        """Record ``value`` at virtual time ``t`` (series is throttled)."""
        self.value = value
        if t >= self._next_sample_t:
            if self.series and self.series[-1][0] == t:
                self.series[-1] = (t, value)
            else:
                self.series.append((t, value))
            self._next_sample_t = t + self.interval_s

    def sample_final(self, t: float) -> None:
        """Force-record the closing value so series end at run end."""
        if self.series and self.series[-1][0] == t:
            self.series[-1] = (t, self.value)
        else:
            self.series.append((t, self.value))
        self._next_sample_t = t + self.interval_s


class Histogram:
    """A fixed-bucket distribution (upper-bound buckets plus overflow).

    ``bounds`` are the inclusive upper edges; an observation lands in
    the first bucket whose bound is >= the value, or the overflow
    bucket past the last bound. Fixed construction-time bounds keep
    binning deterministic across runs.

    >>> h = Histogram("wait_s", (0.1, 1.0))
    >>> for v in (0.05, 0.5, 0.5, 99.0):
    ...     h.observe(v)
    >>> h.counts, h.total, round(h.sum, 2)
    ([1, 2, 1], 4, 100.05)
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Bin one observation."""
        self.counts[bisect_left_bound(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def snapshot(self) -> dict:
        """Buckets, counts, total, and sum as a plain dict."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


def bisect_left_bound(bounds: tuple[float, ...], value: float) -> int:
    """Index of the first bound >= value (len(bounds) when none).

    >>> bisect_left_bound((0.1, 1.0), 0.5)
    1
    >>> bisect_left_bound((0.1, 1.0), 99.0)
    2
    """
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if bounds[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


class MetricsRegistry:
    """Named instruments plus a shared series-sampling interval.

    ``interval_s`` is the default per-gauge series throttle — ``0.0``
    keeps every sample (fine for 10k-request runs), ``1.0`` keeps about
    one point per simulated second (fine for millions). Instruments are
    created on first use and returned on every later lookup, so call
    sites stay one line.

    >>> reg = MetricsRegistry(interval_s=0.5)
    >>> reg.gauge("running") is reg.gauge("running")
    True
    >>> reg.counter("preemptions").inc(3)
    >>> reg.snapshot()["counters"]
    {'preemptions': 3}
    """

    __slots__ = ("interval_s", "counters", "gauges", "histograms", "_next_t")

    def __init__(self, interval_s: float = 0.0) -> None:
        self.interval_s = interval_s
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._next_t = float("-inf")

    def due(self, t: float) -> bool:
        """Whether a sampling pass is due at virtual time ``t``.

        The registry-level throttle: instrumentation that must *compute*
        its sample values (e.g. summing queue depths over a fleet) asks
        this first, so at ``interval_s=1.0`` a million-arrival run does
        the O(replicas) walk about once per simulated second.

        >>> reg = MetricsRegistry(interval_s=1.0)
        >>> [reg.due(t) for t in (0.0, 0.4, 1.2, 1.3)]
        [True, False, True, False]
        """
        if t >= self._next_t:
            self._next_t = t + self.interval_s
            return True
        return False

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge (registry's interval applies)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name, self.interval_s)
        return g

    def histogram(self, name: str, bounds: tuple[float, ...]) -> Histogram:
        """Get or create the named histogram with fixed ``bounds``."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def sample_final(self, t: float) -> None:
        """Close every gauge series at virtual time ``t``."""
        for g in self.gauges.values():
            g.sample_final(t)

    def snapshot(self) -> dict:
        """All instruments as plain, JSON-friendly data (sorted names).

        Keys: ``counters`` (name → int), ``gauges`` (name → last
        value), ``series`` (name → [(t, value), ...]), ``histograms``
        (name → bounds/counts/total/sum).
        """
        return {
            "counters": {k: self.counters[k].value for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "series": {k: list(self.gauges[k].series) for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].snapshot() for k in sorted(self.histograms)
            },
        }

    def clear(self) -> None:
        """Forget every instrument (reuse across runs)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self._next_t = float("-inf")
