"""AWQ (Lin et al., MLSys'24) — activation-aware weight-only quantization.

AWQ protects *salient* weight channels (those fed by large activations) by
scaling them up before quantization and folding the inverse scale into the
activations: ``(x / s)(s * W) = x W``. Only weights are quantized (Table 8
pairs AWQ activations in BF16 with INT4 / MXFP4 / MXFP4+ weights). The
paper's synergy result: scaling makes important weights likely to be the
block max, which MXFP4+ then stores with extra precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocks import BlockFormat
from ..core.intquant import quantize_int_groupwise
from .base import SchemeContext

__all__ = ["AWQContext"]


@dataclass
class AWQContext(SchemeContext):
    alpha: float = 0.5
    bits: int = 4
    group: int = 32
    weight_format: BlockFormat | None = None  # None -> INT4 group-wise
    name: str = "awq"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        amax_x = np.max(np.abs(x.reshape(-1, x.shape[-1])), axis=0)
        s = np.maximum(amax_x, 1e-12) ** self.alpha
        s = s / np.maximum(np.mean(s), 1e-12)  # normalize the overall scale
        s = np.maximum(s, 1e-6)

        w_scaled = w * s[:, None]
        if self.weight_format is not None:
            wq = self.weight_format.quantize_dequantize(w_scaled, axis=0)
        else:
            wq = quantize_int_groupwise(w_scaled, self.bits, group=self.group, axis=0)
        # activations stay high precision (weight-only scheme)
        return x / s, wq
