"""Figure 11: (a) prefill/decode execution-time breakdown and (b) the
normalized execution time across output lengths (Llama-2-13B serving)."""

from _util import print_table, run_once, save_result

from repro.gpu.inference import simulate_inference
from repro.models.zoo import ARCHS
from repro.serve import get_recipe


def test_fig11a(benchmark):
    arch = ARCHS["llama-2-13b"]

    def run():
        out = {}
        for name in ["mxfp4", "a-mxfp4+", "mxfp8"]:
            st = simulate_inference(arch, get_recipe(name), batch=4, prompt_len=1024, output_len=64)
            out[name] = {"prefill_ms": st.prefill_s * 1e3, "decode_ms": st.decode_s * 1e3}
        return out

    table = run_once(benchmark, run)
    save_result("fig11a_breakdown", table)
    print_table("Figure 11a: execution time breakdown (ms)", table)

    base = table["mxfp4"]
    plus = table["a-mxfp4+"]
    # Decode dominates and is memory-bound: the extra MMA is almost free.
    assert base["decode_ms"] > base["prefill_ms"]
    assert plus["decode_ms"] / base["decode_ms"] < 1.10  # paper: 6.71%
    # Prefill pays the Algorithm 1 compute (paper: 1.54x).
    assert 1.3 < plus["prefill_ms"] / base["prefill_ms"] < 1.7
    # MXFP8 is a large slowdown in both stages.
    assert table["mxfp8"]["decode_ms"] > base["decode_ms"] * 1.5


def test_fig11b(benchmark):
    arch = ARCHS["llama-2-13b"]

    def run():
        out = {}
        for out_len in [32, 64, 128, 256]:
            t4 = simulate_inference(arch, get_recipe("mxfp4"), 4, 1024, out_len).total_s
            tp = simulate_inference(arch, get_recipe("a-mxfp4+"), 4, 1024, out_len).total_s
            t8 = simulate_inference(arch, get_recipe("mxfp8"), 4, 1024, out_len).total_s
            out[out_len] = {"a-mxfp4+": tp / t4, "mxfp8": t8 / t4}
        return out

    table = run_once(benchmark, run)
    save_result("fig11b_output_sweep", table)
    print_table("Figure 11b: normalized execution time vs output length", table)

    ratios = [table[n]["a-mxfp4+"] for n in [32, 64, 128, 256]]
    # Paper: up to ~1.13x, shrinking as decode dominates more.
    assert all(r < 1.35 for r in ratios)
    assert ratios[-1] < ratios[0]
    assert all(table[n]["mxfp8"] > table[n]["a-mxfp4+"] for n in table)
