"""Table 3: perplexity via direct-cast inference — six models, two
datasets, two sequence lengths."""

from _util import print_table, run_once, save_result

from repro.eval import perplexity_table

FORMATS = [
    "baseline",
    "mxfp8+", "mxfp8",
    "mxfp6+", "mxfp6",
    "mxfp4++", "mxfp4+", "a-mxfp4+", "mxfp4",
]
MODELS = [
    "opt-66b-sim",
    "llama-3.1-8b-sim",
    "llama-3.1-70b-sim",
    "mistral-7b-sim",
    "phi-4-14b-sim",
    "qwen-2.5-14b-sim",
]


def test_tab03(benchmark, zoo, wiki2, c4):
    def run():
        out = {}
        for m in MODELS:
            out[m] = {}
            for dname, corpus in [("wiki2-sim", wiki2), ("c4-sim", c4)]:
                for seq in (64, 128):
                    key = f"{dname}@{seq}"
                    out[m][key] = perplexity_table(zoo[m], corpus, FORMATS, seq_len=seq)
        return out

    table = run_once(benchmark, run)
    save_result("tab03_perplexity", table)
    for m in MODELS:
        print_table(f"Table 3 ({m})", table[m]["wiki2-sim@128"])

    for m in MODELS:
        for key, row in table[m].items():
            # MX+ (and MX++) at or below the base MX perplexity. The
            # in-distribution wiki2 cells are held to the paper's strict
            # "always lower" claim; the c4 transfer cells (models trained
            # on wiki2) get a small noise allowance because model-level
            # perplexity is not perfectly monotone in tensor error there.
            tol = 1.02 if key.startswith("wiki2") else 1.05
            assert row["mxfp8+"] <= row["mxfp8"] * tol
            assert row["mxfp6+"] <= row["mxfp6"] * tol
            assert row["mxfp4+"] <= row["mxfp4"] * tol
            assert row["mxfp4++"] <= row["mxfp4+"] * tol
            # The MXFP4 ladder: ++ < + < plain, with A-MXFP4+ in between.
            assert row["mxfp4+"] < row["mxfp4"] or row["mxfp4"] < row["baseline"] * 1.1
