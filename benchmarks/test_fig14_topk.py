"""Figure 14: perplexity when the top-k magnitude elements of each block
are held in MXFP6, plus the share of outliers covered, and the channel
reordering curve."""

import numpy as np
from _util import print_table, run_once, save_result

from repro.core import register_format
from repro.core.reorder import channel_outlier_counts, reorder_permutation
from repro.core.topk import TopKPromoteFormat, promoted_fraction
from repro.eval import perplexity
from repro.nn.quantize import QuantContext
from repro.nn.tensor import no_grad


def _attention_input(model, corpus):
    batch = corpus.val_batch(8, 64)
    with no_grad():
        x = model.embed(batch[:, :-1])
        x = x + model._positional(batch.shape[1] - 1)
        return model.blocks[0].attn_norm(x).data


def test_fig14(benchmark, llama8b, mistral7b, wiki2):
    def run():
        out = {}
        for label, model in [("llama-3.1-8b-sim", llama8b), ("mistral-7b-sim", mistral7b)]:
            acts = _attention_input(model, wiki2)
            row = {
                "none(mxfp4)": perplexity(model, wiki2, QuantContext.named("mxfp4")),
            }
            frac = {}
            for k in (1, 2, 3, 4):
                row[f"top{k}"] = perplexity(
                    model, wiki2, QuantContext.named(f"mxfp4-top{k}")
                )
                frac[f"top{k}"] = promoted_fraction(acts, k)
            out[label] = {"perplexity": row, "outlier_coverage": frac}
        return out

    table = run_once(benchmark, run)
    save_result("fig14_topk", table)
    for label, payload in table.items():
        print_table(f"Figure 14 ({label}): perplexity", payload["perplexity"])
        print_table(f"Figure 14 ({label}): outlier coverage", payload["outlier_coverage"])

    for payload in table.values():
        ppl = payload["perplexity"]
        cov = payload["outlier_coverage"]
        # top-1 already improves over plain MXFP4; extra k has
        # diminishing returns (paper: most gains by top-2).
        assert ppl["top1"] <= ppl["none(mxfp4)"]
        assert ppl["top2"] <= ppl["top1"] + 0.05
        assert cov["top1"] <= cov["top2"] <= cov["top4"]
        assert cov["top2"] > 0.55
