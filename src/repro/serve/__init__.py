"""Unified serving API: one recipe surface + a request-level engine.

``QuantRecipe`` is the canonical configuration object for the whole repo
(numeric accuracy path and GPU timing path alike); ``ServingEngine`` is
the request-level front-end with continuous batching and per-request
TTFT/TPOT accounting. Quickstart::

    from repro.models.zoo import ARCHS
    from repro.serve import QuantRecipe, Request, ServingEngine

    engine = ServingEngine(ARCHS["llama-2-13b"], QuantRecipe.from_name("mxfp4+"))
    result = engine.run([Request("r0", prompt_len=1024, max_new_tokens=64)])
    print(result.responses[0].ttft_s, result.responses[0].tpot_s)
"""

from .recipe import QuantRecipe, available_recipes, get_recipe, register_recipe
from .engine import Request, Response, ServingEngine, ServingResult

__all__ = [
    "QuantRecipe",
    "register_recipe",
    "get_recipe",
    "available_recipes",
    "Request",
    "Response",
    "ServingResult",
    "ServingEngine",
]
