"""GPU price table: the $/hr inputs that turn throughput into $/Mtok.

Every serving claim in this repo ultimately cashes out in dollars: a
recipe that fits more concurrent requests per GPU serves a million
generated tokens for less money. This module is the committed price
table that conversion runs through — flat on-demand $/hr figures for the
GPU classes the sweep reports price against, frozen as code so that
every ``$/Mtok`` number in a committed artifact derives from a reviewed
constant rather than a hand-entered cell.

The conversion itself lives on :class:`GPUPrice`:

``$/Mtok = n_gpus * usd_per_hour / 3600 / tokens_per_s * 1e6``

and composes with :meth:`repro.tune.cost.CostModel.dollars_per_mtok`
(steady-state model throughput) or any measured fleet rate from
:class:`repro.serve.ServingCluster`.

>>> price = get_gpu_price("h100")
>>> round(price.dollars_per_mtok(4000.0), 3)  # 4000 tok/s on one H100
0.208
>>> get_gpu_price("rtx5090").usd_per_hour < price.usd_per_hour
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GPUPrice", "GPU_PRICES", "available_gpu_prices", "get_gpu_price"]


@dataclass(frozen=True)
class GPUPrice:
    """One GPU class's rental price and its throughput→dollars conversion.

    ``usd_per_hour`` is a flat on-demand figure (no spot/reserved
    modelling); the class exists so every pricing path shares one
    formula instead of re-deriving the unit conversion.

    >>> GPUPrice("h100", 2.99).dollars_per_mtok(1e6)  # 1 Mtok/s
    0.0008305555555555556
    >>> GPUPrice("h100", 2.99).dollars_per_mtok(0.0)
    inf
    """

    name: str
    usd_per_hour: float

    def __post_init__(self) -> None:
        if self.usd_per_hour < 0 or math.isinf(self.usd_per_hour):
            raise ValueError("usd_per_hour must be finite and >= 0")

    def dollars_per_mtok(self, tokens_per_s: float, n_gpus: int = 1) -> float:
        """USD per million generated tokens at a sustained token rate.

        ``tokens_per_s`` is the *fleet* generation rate and ``n_gpus``
        the GPUs being paid for while sustaining it (prefill-pool GPUs
        in a disaggregated deployment generate no tokens but still bill
        by the hour). A non-positive rate prices at ``inf`` — a fleet
        that generates nothing serves tokens at unbounded cost.
        """
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if tokens_per_s <= 0:
            return math.inf
        return n_gpus * self.usd_per_hour / 3600.0 / tokens_per_s * 1e6


#: Flat on-demand $/hr presets per GPU class (single source of truth for
#: every committed $/Mtok figure; extend here, never inline a price).
GPU_PRICES: dict[str, GPUPrice] = {
    "h100": GPUPrice("h100", 2.99),
    "a100": GPUPrice("a100", 1.79),
    "l40s": GPUPrice("l40s", 0.99),
    "rtx5090": GPUPrice("rtx5090", 0.69),
    "rtxa6000": GPUPrice("rtxa6000", 0.49),
}


def available_gpu_prices() -> list[str]:
    """Sorted names of the committed GPU price presets.

    >>> available_gpu_prices()
    ['a100', 'h100', 'l40s', 'rtx5090', 'rtxa6000']
    """
    return sorted(GPU_PRICES)


def get_gpu_price(name_or_price) -> GPUPrice:
    """Resolve a price preset by name (or pass a :class:`GPUPrice` through).

    >>> get_gpu_price("rtx5090").usd_per_hour
    0.69
    >>> get_gpu_price(GPUPrice("custom", 1.0)).name
    'custom'
    """
    if isinstance(name_or_price, GPUPrice):
        return name_or_price
    key = str(name_or_price).lower()
    if key not in GPU_PRICES:
        raise KeyError(
            f"unknown GPU price {name_or_price!r} "
            f"(available: {', '.join(available_gpu_prices())})"
        )
    return GPU_PRICES[key]
