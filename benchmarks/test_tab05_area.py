"""Table 5: area and power of the MX+ Tensor-Core components (28nm)."""

from _util import print_table, run_once, save_result

from repro.gpu.area import MXPLUS_COMPONENTS, REFERENCE_AREAS_MM2, scale_to_node, tensor_core_overhead


def test_tab05(benchmark):
    def run():
        rows = {
            c.name: {"area_mm2": c.area_mm2, "power_mw": c.power_mw}
            for c in MXPLUS_COMPONENTS
        }
        rows["total"] = tensor_core_overhead()
        rows["total"]["area_4nm_est_mm2"] = scale_to_node(rows["total"]["area_mm2"])
        return rows

    table = run_once(benchmark, run)
    save_result("tab05_area", table)
    print_table("Table 5: MX+ area/power per Tensor Core", table, "{:.4f}")

    total = table["total"]
    assert abs(total["area_mm2"] - 0.020) < 1e-6
    assert abs(total["power_mw"] - 12.11) < 1e-6
    # Much smaller than the competing Tensor-Core integrations.
    assert total["area_mm2"] < REFERENCE_AREAS_MM2["olive"]
    assert total["area_mm2"] < REFERENCE_AREAS_MM2["rm-stc"]
    # BCU dominates the added area, as in the paper.
    assert table["bm-compute-unit"]["area_mm2"] > table["bm-detector"]["area_mm2"]
