"""Quantization-error metrics and the BM/MSE decomposition (Figures 4-5).

``mse_decomposition`` reproduces the paper's Figure 5 analysis: what share
of a tensor's total quantization MSE comes from the block-max elements vs.
from the per-block largest-error elements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import to_blocks

__all__ = [
    "mse",
    "sqnr_db",
    "MSEDecomposition",
    "mse_decomposition",
    "outlier_mask_3sigma",
    "block_outlier_counts",
]


def mse(x: np.ndarray, q: np.ndarray) -> float:
    """Mean squared quantization error."""
    x = np.asarray(x, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.mean((x - q) ** 2))


def sqnr_db(x: np.ndarray, q: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    x = np.asarray(x, dtype=np.float64)
    err = mse(x, q)
    sig = float(np.mean(x**2))
    if err == 0:
        return float("inf")
    return 10.0 * np.log10(sig / err)


@dataclass
class MSEDecomposition:
    """Share of total MSE attributable to specific per-block elements."""

    total_mse: float
    bm_share: float  # fraction from block-max elements
    largest_error_share: float  # fraction from per-block largest-error elements
    bm_is_largest_error_rate: float  # how often the BM *is* the largest-error elem


def mse_decomposition(
    x: np.ndarray, q: np.ndarray, block_size: int = 32, axis: int = -1
) -> MSEDecomposition:
    """Decompose quantization MSE per Figure 5.

    Both ``x`` and its quantized version ``q`` are blocked identically; per
    block we attribute the squared error of (a) the max-magnitude element
    and (b) the largest-error element to the respective totals.
    """
    bx = to_blocks(x, block_size, axis).data
    bq = to_blocks(q, block_size, axis).data
    err2 = (bx - bq) ** 2
    total = float(np.sum(err2))
    if total == 0:
        return MSEDecomposition(0.0, 0.0, 0.0, 1.0)

    bm_idx = np.argmax(np.abs(bx), axis=-1)[..., None]
    le_idx = np.argmax(err2, axis=-1)[..., None]
    bm_err = np.take_along_axis(err2, bm_idx, axis=-1)
    le_err = np.take_along_axis(err2, le_idx, axis=-1)
    return MSEDecomposition(
        total_mse=total / err2.size,
        bm_share=float(np.sum(bm_err) / total),
        largest_error_share=float(np.sum(le_err) / total),
        bm_is_largest_error_rate=float(np.mean(bm_idx == le_idx)),
    )


def outlier_mask_3sigma(x: np.ndarray) -> np.ndarray:
    """Boolean mask of outliers per the 3-sigma rule the paper uses (Sec 8.3)."""
    x = np.asarray(x, dtype=np.float64)
    mu = float(np.mean(x))
    sigma = float(np.std(x))
    if sigma == 0:
        return np.zeros_like(x, dtype=bool)
    return np.abs(x - mu) > 3.0 * sigma


def block_outlier_counts(x: np.ndarray, block_size: int = 32, axis: int = -1) -> np.ndarray:
    """Per-block count of 3-sigma outliers (for the Fig. 14 analysis)."""
    mask = outlier_mask_3sigma(x)
    blocked = to_blocks(mask.astype(np.float64), block_size, axis)
    return np.sum(blocked.data, axis=-1).astype(np.int64)
