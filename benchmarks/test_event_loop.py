"""Event-loop scale benchmark: simulated requests per wall-clock second.

The fleet configuration is fixed (llama-2-13b, mxfp4+, 4 replicas,
round-robin, prefill-first, Poisson 200 req/s at seed 0 — the same spec
the pre-PR baseline was measured under) and the trace size sweeps
10k/100k/1M. For each size the artifact records:

* ``single_rps`` — the global heap event loop, best of ``ROUNDS``
  wall-clock rounds (min-across-rounds, the tab06 discipline: one load
  spike cannot skew the number);
* ``sharded_rps`` — the same trace through :func:`repro.serve.run_sharded`
  with 2 workers;
* ``reconciled`` — whether the sharded run reproduced the single-process
  run *bit-identically* (assignments, every per-request latency, every
  per-replica stage total) for round-robin and for prefix-affinity over
  a shared-prefix chat trace.

The regression gate runs **before** ``save_result`` so a failing run can
never overwrite the committed artifact: at 100k the single-process loop
must sustain at least ``REQUIRED_SPEEDUP``× the committed pre-PR
baseline (measured on the linear-scan loop at the commit recorded in
``BASELINE``), and every reconciliation flag must be True.

Wall-clock numbers are machine-dependent and excluded from artifact
identity checks (the ``BENCH_sweep.json`` convention); the *ratio* to
baseline transfers across machines because both sides are pure-Python
event loops. The 1M size takes minutes, so it only re-measures when
``EVENT_LOOP_1M=1`` is set; otherwise the committed 1M numbers are
carried forward unchanged.
"""

import gc
import json
import os
import time

from _util import RESULTS_DIR, print_table, run_once, save_result

from repro.models.zoo import ARCHS
from repro.serve import (
    ServingCluster,
    chat_workload,
    make_workload,
    run_sharded,
)

# Pre-PR baseline: the per-event linear-scan loop at commit c570a72,
# measured on the same machine/config with the same min-across-rounds
# discipline (3 rounds). The gate is a ratio, not an absolute.
BASELINE = {
    "commit": "c570a72",
    "rps": {"10000": 1178.2, "100000": 1146.2},
}
REQUIRED_SPEEDUP = 5.0
ROUNDS = 3
SIZES = (10_000, 100_000)
SIZE_1M = 1_000_000

ARCH = ARCHS["llama-2-13b"]


def _cluster(router="round-robin"):
    return ServingCluster(
        ARCH,
        "mxfp4+",
        n_replicas=4,
        router=router,
        scheduler="prefill-first",
        kv_token_budget=262_144,
    )


def _trace(n):
    return make_workload(n, seed=0, arrival="poisson", rate_rps=200.0)


def _fingerprint(fleet):
    return (
        fleet.makespan_s,
        fleet.total_tokens,
        tuple(sorted(fleet.assignments.items())),
        tuple(
            (r.request_id, r.ttft_s, r.tpot_s, r.finish_s)
            for r in fleet.responses
        ),
        tuple(
            (res.makespan_s, res.stages.prefill_s, res.stages.decode_s)
            for res in fleet.replica_results
        ),
    )


def _measure(n, rounds=ROUNDS):
    """One trace size: timed single rounds, one sharded run, reconcile."""
    reqs = _trace(n)
    best_s, fleet = float("inf"), None
    for _ in range(rounds):
        cluster = _cluster()
        # Earlier tests in the same pytest session leave live-object /
        # GC state behind; collect outside the timed region so the min
        # round measures the loop, not inherited collector pressure.
        gc.collect()
        t0 = time.perf_counter()
        fleet = cluster.run(reqs)
        best_s = min(best_s, time.perf_counter() - t0)
    gc.collect()
    t0 = time.perf_counter()
    sharded = run_sharded(_cluster(), reqs, n_workers=2)
    sharded_s = time.perf_counter() - t0
    reconciled = {"round-robin": _fingerprint(fleet) == _fingerprint(sharded)}
    # prefix-affinity over an actually-shared-prefix trace (one single +
    # one sharded run; timing is reported for round-robin only).
    chat = chat_workload(n, n_prefixes=32, prefix_len=256, seed=0, rate_rps=200.0)
    pa_single = _cluster("prefix-affinity").run(chat)
    pa_sharded = run_sharded(_cluster("prefix-affinity"), chat, n_workers=2)
    reconciled["prefix-affinity"] = (
        _fingerprint(pa_single) == _fingerprint(pa_sharded)
    )
    return {
        "single_s": round(best_s, 3),
        "single_rps": round(n / best_s, 1),
        "sharded_s": round(sharded_s, 3),
        "sharded_rps": round(n / sharded_s, 1),
        "reconciled": reconciled,
    }


def _committed_1m():
    """Carry the committed 1M row forward when not re-measuring."""
    path = RESULTS_DIR / "BENCH_event_loop.json"
    if path.exists():
        return json.loads(path.read_text())["sizes"].get(str(SIZE_1M))
    return None


def test_event_loop_scale(benchmark):
    def run():
        sizes = {str(n): _measure(n) for n in SIZES}
        if os.environ.get("EVENT_LOOP_1M") == "1":
            sizes[str(SIZE_1M)] = _measure(SIZE_1M, rounds=1)
        else:
            carried = _committed_1m()
            if carried is not None:
                sizes[str(SIZE_1M)] = carried
        return sizes

    sizes = run_once(benchmark, run)
    print_table(
        "event loop req/s (single | sharded)",
        {
            n: {"single": row["single_rps"], "sharded": row["sharded_rps"]}
            for n, row in sizes.items()
        },
        "{:.0f}",
    )

    speedup = sizes["100000"]["single_rps"] / BASELINE["rps"]["100000"]
    # Gates before save_result: a run that regressed the loop or broke
    # shard determinism never overwrites the committed artifact.
    assert speedup >= REQUIRED_SPEEDUP, (
        f"single-process loop at 100k: {sizes['100000']['single_rps']} rps "
        f"is only {speedup:.2f}x the pre-PR baseline "
        f"({BASELINE['rps']['100000']} rps at {BASELINE['commit']}); "
        f"the PR requires >= {REQUIRED_SPEEDUP}x"
    )
    for n, row in sizes.items():
        for router, ok in row["reconciled"].items():
            assert ok, f"sharded != single for {router} at n={n}"

    save_result(
        "BENCH_event_loop",
        {
            "config": {
                "arch": ARCH.name,
                "recipe": "mxfp4+",
                "n_replicas": 4,
                "router": "round-robin",
                "scheduler": "prefill-first",
                "kv_token_budget": 262_144,
                "workload": "poisson seed=0 rate=200rps",
                "rounds": ROUNDS,
                "discipline": "min wall-clock across rounds",
            },
            "baseline": BASELINE,
            "required_speedup": REQUIRED_SPEEDUP,
            "measured_speedup_100k": round(speedup, 2),
            "sizes": sizes,
        },
    )
