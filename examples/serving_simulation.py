"""GPU serving simulation: prefill/decode costs and end-to-end speedups
(the Figure 11/13 experiments) on full-size model architectures.

Run:  python examples/serving_simulation.py
"""

from repro.gpu.inference import CONFIGS, end_to_end_speedup, simulate_inference
from repro.models.zoo import ARCHS

arch = ARCHS["llama-2-13b"]
print(f"Serving {arch.name} (dim={arch.dim}, layers={arch.n_layers}) — "
      "4 requests x 1024 prompt tokens, RTX 5090-class GPU\n")

print(f"{'config':>10s} {'prefill ms':>11s} {'decode ms (64 tok)':>19s} "
      f"{'speedup vs BF16':>16s}")
for name in ["bf16", "mxfp8", "a8w4", "mxfp4", "a-mxfp4+", "mxfp4+", "mxfp4++"]:
    cfg = CONFIGS[name]
    st = simulate_inference(arch, cfg, batch=4, prompt_len=1024, output_len=64)
    speedup = end_to_end_speedup(arch, cfg, 4, 1024, 64)
    print(f"{name:>10s} {st.prefill_s * 1e3:11.2f} {st.decode_s * 1e3:19.2f} "
          f"{speedup:16.2f}x")

print("""
Reading the table:
 * decode dominates at 64 output tokens and is memory-bound, so 4-bit
   weights/KV-cache buy most of the speedup;
 * A-MXFP4+ (software integration, one extra sparse MMA) costs ~1.5x in
   prefill but almost nothing in decode;
 * MXFP4+/MXFP4++ with the Tensor-Core BCU (hardware integration) track
   MXFP4 within a fraction of a percent.""")

print("Hardware-integration check (Figure 12): prefill-only slowdown")
for name in ["llama-2-7b", "llama-2-13b", "llama-3.1-8b"]:
    a = ARCHS[name]
    hw = simulate_inference(a, CONFIGS["mxfp4+"], 1, 2048, 0).prefill_s
    base = simulate_inference(a, CONFIGS["mxfp4"], 1, 2048, 0).prefill_s
    print(f"  {name:>14s}: {hw / base:.4f}x")
