"""Tests for the workload layer: seeded generators, length distributions,
arrival processes, and JSONL trace round-trips."""

import numpy as np
import pytest

from repro.serve import (
    LengthDist,
    Request,
    bursty_arrivals,
    chat_workload,
    iter_workload,
    load_trace,
    make_workload,
    poisson_arrivals,
    save_trace,
    stream_trace,
)


class TestLengthDist:
    def test_fixed(self):
        assert LengthDist.fixed(512).sample(np.random.default_rng(0), 4).tolist() == [512] * 4

    def test_uniform_bounds(self):
        s = LengthDist.uniform(16, 64).sample(np.random.default_rng(0), 500)
        assert s.min() >= 16 and s.max() <= 64

    def test_lognormal_clipped_and_heavy_tailed(self):
        d = LengthDist.lognormal(median=128, sigma=1.0, low=8, high=2048)
        s = d.sample(np.random.default_rng(0), 2000)
        assert s.min() >= 8 and s.max() <= 2048
        assert np.mean(s) > np.median(s)  # right-skewed

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthDist.fixed(0)
        with pytest.raises(ValueError):
            LengthDist.uniform(8, 4)
        with pytest.raises(ValueError):
            LengthDist.lognormal(0.5, 1.0)


class TestArrivals:
    def test_poisson_monotone_and_rate(self):
        rng = np.random.default_rng(0)
        t = poisson_arrivals(5000, rate_rps=25.0, rng=rng)
        assert np.all(np.diff(t) >= 0)
        assert t[-1] == pytest.approx(5000 / 25.0, rel=0.1)

    def test_bursty_clusters(self):
        rng = np.random.default_rng(0)
        t = bursty_arrivals(64, rate_rps=16.0, rng=rng, burst_size=8, jitter_s=1e-3)
        assert np.all(np.diff(t) >= 0)
        gaps = np.diff(t)
        # 7 of every 8 gaps are jitter-scale; burst heads are far apart.
        assert np.median(gaps) < 1e-3
        assert gaps.max() > 0.05

    def test_bursty_preserves_mean_rate(self):
        rng = np.random.default_rng(1)
        t = bursty_arrivals(4000, rate_rps=20.0, rng=rng, burst_size=10)
        assert t[-1] == pytest.approx(4000 / 20.0, rel=0.15)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(4, rate_rps=0.0, rng=rng)
        with pytest.raises(ValueError):
            bursty_arrivals(4, rate_rps=1.0, rng=rng, burst_size=0)


class TestGenerators:
    def test_seed_determinism(self):
        a = make_workload(32, seed=42, arrival="bursty", rate_rps=50.0)
        b = make_workload(32, seed=42, arrival="bursty", rate_rps=50.0)
        assert a == b
        c = make_workload(32, seed=43, arrival="bursty", rate_rps=50.0)
        assert a != c

    def test_ids_unique_and_ordered(self):
        reqs = make_workload(12, seed=0)
        assert len({r.request_id for r in reqs}) == 12
        assert all(x.arrival_s <= y.arrival_s for x, y in zip(reqs, reqs[1:]))

    def test_unknown_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            make_workload(4, arrival="constant")

    def test_chat_workload_shape(self):
        reqs = chat_workload(40, n_prefixes=3, prefix_len=256, seed=7)
        assert {r.prefix_id for r in reqs} <= {"sys-0", "sys-1", "sys-2"}
        assert all(r.prefix_len == 256 for r in reqs)
        assert all(r.prompt_len > 256 for r in reqs)
        assert reqs == chat_workload(40, n_prefixes=3, prefix_len=256, seed=7)


class TestTraceRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        reqs = chat_workload(25, n_prefixes=2, prefix_len=128, seed=1)
        path = tmp_path / "trace.jsonl"
        save_trace(path, reqs)
        assert load_trace(path) == reqs

    def test_round_trip_preserves_floats(self, tmp_path):
        reqs = make_workload(50, seed=9, rate_rps=3.0)
        path = tmp_path / "trace.jsonl"
        save_trace(path, reqs)
        back = load_trace(path)
        assert [r.arrival_s for r in back] == [r.arrival_s for r in reqs]

    def test_numeric_payload_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        reqs = [
            Request("n0", prompt_tokens=rng.integers(0, 128, 9), max_new_tokens=3),
            Request("n1", prompt_len=16, max_new_tokens=2),
        ]
        path = tmp_path / "trace.jsonl"
        save_trace(path, reqs)
        back = load_trace(path)
        np.testing.assert_array_equal(back[0].prompt_tokens, reqs[0].prompt_tokens)
        assert back[0].prompt_len == 9
        assert back[1].prompt_tokens is None

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_trace(path, [])
        assert load_trace(path) == []

    def test_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"request_id": "x", "prompt_len": 4, "surprise": 1}\n')
        with pytest.raises(ValueError, match="unknown trace fields"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        reqs = make_workload(3, seed=0)
        path = tmp_path / "trace.jsonl"
        save_trace(path, reqs)
        path.write_text(path.read_text() + "\n\n")
        assert load_trace(path) == reqs


class TestStreaming:
    """The streaming surface: iter_workload / stream_trace / save_trace
    over generators — million-request traces without materializing."""

    def test_iter_workload_single_chunk_matches_make_workload(self):
        kw = dict(seed=9, arrival="poisson", rate_rps=40.0)
        assert list(iter_workload(64, chunk_size=64, **kw)) == make_workload(64, **kw)

    def test_iter_workload_is_lazy_and_deterministic(self):
        it = iter_workload(1_000_000, seed=1, chunk_size=64)
        head = [next(it) for _ in range(200)]  # never materializes the rest
        again = iter_workload(1_000_000, seed=1, chunk_size=64)
        assert head == [next(again) for _ in range(200)]
        assert all(
            a.arrival_s <= b.arrival_s for a, b in zip(head, head[1:])
        )
        assert head[0].request_id == "w000000"  # id width from n, not chunk

    def test_iter_workload_chunks_stay_sorted_across_boundaries(self):
        reqs = list(iter_workload(100, seed=3, arrival="bursty", chunk_size=16))
        assert all(a.arrival_s <= b.arrival_s for a, b in zip(reqs, reqs[1:]))
        assert len({r.request_id for r in reqs}) == 100

    def test_iter_workload_validation(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_workload(4, chunk_size=0))
        with pytest.raises(ValueError, match="unknown arrival"):
            list(iter_workload(4, arrival="steady"))

    def test_save_trace_accepts_generator_same_bytes(self, tmp_path):
        reqs = make_workload(32, seed=5)
        a, b = tmp_path / "list.jsonl", tmp_path / "gen.jsonl"
        save_trace(a, reqs)
        save_trace(b, iter(reqs))
        assert a.read_bytes() == b.read_bytes()

    def test_stream_trace_round_trips_lazily(self, tmp_path):
        reqs = make_workload(16, seed=2)
        p = tmp_path / "t.jsonl"
        save_trace(p, iter(reqs))
        it = stream_trace(p)
        assert next(it) == reqs[0]  # generator: one line at a time
        assert list(it) == reqs[1:]
        assert load_trace(p) == reqs

    def test_streamed_and_materialized_runs_agree(self, tmp_path):
        from repro.models.zoo import ARCHS
        from repro.serve import ServingCluster

        reqs = make_workload(48, seed=7, rate_rps=60.0)
        p = tmp_path / "t.jsonl"
        save_trace(p, iter(reqs))
        def cluster():
            return ServingCluster(
                ARCHS["llama-2-7b"], "mxfp4+", n_replicas=2,
                kv_token_budget=32_768,
            )
        a = cluster().run(load_trace(p))
        b = cluster().run(stream_trace(p))
        assert a.summary(ttft_slo_s=2.0, tpot_slo_s=0.1) == b.summary(
            ttft_slo_s=2.0, tpot_slo_s=0.1
        )
        assert [r.request_id for r in a.responses] == [
            r.request_id for r in b.responses
        ]

    def test_unsorted_stream_rejected_with_hint(self):
        from repro.models.zoo import ARCHS
        from repro.serve import ServingCluster

        reqs = [
            Request("a", prompt_len=8, max_new_tokens=2, arrival_s=1.0),
            Request("b", prompt_len=8, max_new_tokens=2, arrival_s=0.5),
        ]
        cluster = ServingCluster(
            ARCHS["llama-2-7b"], "mxfp4", n_replicas=1, kv_token_budget=16_384
        )
        with pytest.raises(ValueError, match="materialize"):
            cluster.run(iter(reqs))
        with pytest.raises(ValueError, match="duplicate"):
            cluster.run(iter([reqs[0], reqs[0]]))
