"""Tests for the cluster layer: routers (determinism, tie-breaking),
fleet metrics, single-replica reconciliation, and the step-time cache."""

import pytest

from repro.gpu.inference import (
    clear_step_time_cache,
    step_time_cache_info,
)
from repro.models.zoo import ARCHS
from repro.serve import (
    LeastKVLoadRouter,
    PrefixAffinityRouter,
    Request,
    RoundRobinRouter,
    ServingCluster,
    ServingEngine,
    available_routers,
    chat_workload,
    get_router,
    make_workload,
)

ARCH = ARCHS["llama-2-7b"]


def _requests(n=8, prompt=128, out=8):
    return [
        Request(f"r{i}", prompt_len=prompt, max_new_tokens=out, arrival_s=0.01 * i)
        for i in range(n)
    ]


class TestRouters:
    def test_registry(self):
        assert available_routers() == [
            "free-kv-at-arrival",
            "least-kv-load",
            "prefix-affinity",
            "queue-depth",
            "round-robin",
        ]
        assert isinstance(get_router("round-robin", 2), RoundRobinRouter)
        router = LeastKVLoadRouter(3)
        assert get_router(router, 3) is router
        with pytest.raises(KeyError, match="unknown router"):
            get_router("random", 2)

    def test_round_robin_cycles(self):
        router = RoundRobinRouter(3)
        assert [router.route(r) for r in _requests(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_least_load_ties_break_to_lowest_index(self):
        router = LeastKVLoadRouter(4)
        # All loads equal at every step until each replica has one request.
        assert [router.route(r) for r in _requests(4)] == [0, 1, 2, 3]

    def test_least_load_prefers_lighter_replica(self):
        router = LeastKVLoadRouter(2)
        heavy = Request("h", prompt_len=4096, max_new_tokens=512)
        light = Request("l", prompt_len=32, max_new_tokens=8)
        assert router.route(heavy) == 0
        assert router.route(light) == 1
        # replica 1 is still lighter: 40 < 4608
        assert router.route(Request("m", prompt_len=64, max_new_tokens=8)) == 1

    def test_prefix_affinity_sticks(self):
        router = PrefixAffinityRouter(3)
        reqs = [
            Request(f"c{i}", prompt_len=256, max_new_tokens=8,
                    prefix_id=f"sys-{i % 2}", prefix_len=128)
            for i in range(6)
        ]
        homes = [router.route(r) for r in reqs]
        assert homes[0::2] == [homes[0]] * 3  # sys-0 pinned
        assert homes[1::2] == [homes[1]] * 3  # sys-1 pinned
        assert homes[0] != homes[1]

    def test_prefix_affinity_falls_back_for_plain_requests(self):
        router = PrefixAffinityRouter(2)
        assert router.route(Request("a", prompt_len=64)) == 0
        assert router.route(Request("b", prompt_len=64)) == 1

    def test_router_instance_reset_between_runs(self):
        # A router *instance* must behave like a fresh one on every run.
        reqs = _requests(5)
        router = RoundRobinRouter(2)
        cluster = ServingCluster(ARCH, "mxfp4", n_replicas=2, router=router,
                                 kv_token_budget=16_384)
        first = cluster.run(reqs).assignments
        second = cluster.run(reqs).assignments
        assert first == second

    def test_router_determinism_under_fixed_seed(self):
        reqs = chat_workload(48, n_prefixes=4, prefix_len=256, seed=11, rate_rps=40.0)
        cluster = ServingCluster(
            ARCH, "mxfp4", n_replicas=3, router="prefix-affinity",
            kv_token_budget=32_768,
        )
        first = cluster.run(reqs).assignments
        second = cluster.run(reqs).assignments  # fresh router per run
        assert first == second


class TestClusterReconciliation:
    def test_one_replica_matches_engine_exactly(self):
        reqs = make_workload(12, seed=5, rate_rps=30.0)
        cluster = ServingCluster(ARCH, "mxfp4+", n_replicas=1, kv_token_budget=32_768)
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=32_768)
        fleet = cluster.run(reqs)
        single = engine.run(reqs)
        assert fleet.makespan_s == single.makespan_s
        assert fleet.total_tokens == single.total_tokens
        for a, b in zip(fleet.responses, single.responses):
            assert (a.ttft_s, a.tpot_s, a.finish_s) == (b.ttft_s, b.tpot_s, b.finish_s)

    def test_responses_keep_input_order(self):
        reqs = _requests(9)
        fleet = ServingCluster(ARCH, "mxfp4", n_replicas=3, kv_token_budget=16_384).run(reqs)
        assert [r.request_id for r in fleet.responses] == [r.request_id for r in reqs]

    def test_duplicate_ids_rejected(self):
        cluster = ServingCluster(ARCH, "mxfp4", n_replicas=2)
        with pytest.raises(ValueError, match="duplicate"):
            cluster.run([Request("x", prompt_len=8), Request("x", prompt_len=8)])

    def test_more_replicas_cut_latency(self):
        reqs = make_workload(24, seed=2, rate_rps=1000.0,
                             prompt=None, output=None)
        one = ServingCluster(ARCH, "mxfp4", n_replicas=1, kv_token_budget=65_536).run(reqs)
        four = ServingCluster(ARCH, "mxfp4", n_replicas=4, kv_token_budget=65_536).run(reqs)
        assert four.makespan_s < one.makespan_s
        assert four.mean_ttft_s < one.mean_ttft_s


class TestFleetMetrics:
    def test_summary_keys_and_goodput(self):
        reqs = _requests(8)
        fleet = ServingCluster(ARCH, "mxfp4", n_replicas=2, kv_token_budget=16_384).run(reqs)
        summary = fleet.summary(ttft_slo_s=10.0, tpot_slo_s=10.0)
        assert summary["requests"] == 8
        assert summary["n_replicas"] == 2
        assert len(summary["replicas"]) == 2
        # Generous SLOs: every request is good, goodput == throughput.
        assert summary["slo_attainment"] == 1.0
        assert summary["goodput_tok_s"] == pytest.approx(fleet.throughput_tok_s)
        # Impossible SLO: nothing qualifies.
        assert fleet.slo_attainment(ttft_slo_s=0.0) == 0.0
        assert fleet.goodput_tok_s(ttft_slo_s=0.0) == 0.0

    def test_prefix_affinity_beats_round_robin_on_chat(self):
        # 4 prefixes over 4 replicas: affinity stores each system prompt
        # once fleet-wide (4 misses total); round-robin scatters every
        # prefix across all replicas and re-misses on each.
        reqs = chat_workload(48, n_prefixes=4, prefix_len=768, seed=3, rate_rps=50.0)
        kwargs = dict(n_replicas=4, page_budget_bytes=1 << 30, block_tokens=16)
        affinity = ServingCluster(ARCH, "mxfp4+", router="prefix-affinity", **kwargs).run(reqs)
        scattered = ServingCluster(ARCH, "mxfp4+", router="round-robin", **kwargs).run(reqs)
        hits = lambda f: sum(r.kv["prefix_hits"] for r in f.replica_results)
        misses = lambda f: sum(r.kv["prefix_misses"] for r in f.replica_results)
        assert misses(affinity) == 4
        assert hits(affinity) > hits(scattered)
        assert affinity.mean_ttft_s < scattered.mean_ttft_s


class TestMetricViewCaching:
    def test_percentiles_never_resort_on_repeat_access(self):
        reqs = _requests(16)
        fleet = ServingCluster(ARCH, "mxfp4", n_replicas=2,
                               kv_token_budget=16_384).run(reqs)
        assert fleet.sorts_performed == 0
        first = fleet.p99_ttft_s()
        assert fleet.sorts_performed == 1
        for _ in range(5):
            assert fleet.p99_ttft_s() == first
            assert fleet.p99_ttft_s(q=50.0) <= first  # same cached view
            fleet.summary(ttft_slo_s=1.0, tpot_slo_s=0.1)
        assert fleet.sorts_performed == 1
        # per-replica results cache their own sorted views the same way
        rep = fleet.replica_results[0]
        before = rep.sorts_performed
        rep.p99_ttft_s()
        rep.p99_ttft_s()
        assert rep.sorts_performed == before + 1


class TestStepTimeCache:
    def test_replicas_share_step_times(self):
        clear_step_time_cache()
        reqs = _requests(8, prompt=64, out=4)
        ServingCluster(ARCH, "mxfp4", n_replicas=4, router="round-robin",
                       kv_token_budget=16_384).run(reqs)
        info = step_time_cache_info()
        # 4 identical replicas: at least 3/4 of step evaluations are hits.
        assert info["hits"] >= 3 * info["misses"]

    def test_cache_transparent(self):
        from repro.gpu.inference import step_time
        from repro.gpu.spec import RTX5090
        from repro.serve import get_recipe

        clear_step_time_cache()
        cfg = get_recipe("mxfp4")
        first = step_time(RTX5090, ARCH, cfg, [(8, 64)])
        again = step_time(RTX5090, ARCH, cfg, [(8, 64)])
        assert first == again
        assert step_time_cache_info()["hits"] == 1
        clear_step_time_cache()
        info = step_time_cache_info()
        assert (info["hits"], info["misses"], info["size"]) == (0, 0, 0)
        # the sub-memos (attention pairs, row-count stacks) reset too
        for sub in ("attention", "rows"):
            assert (info[sub]["hits"], info[sub]["misses"], info[sub]["size"]) == (
                0, 0, 0,
            )
