"""Tests for the GPU performance substrate (repro.gpu)."""

import numpy as np
import pytest

from repro.core import MXFP4, MXFP4Plus, MXFP4PlusPlus
from repro.gpu.area import MXPLUS_COMPONENTS, scale_to_node, tensor_core_overhead
from repro.gpu.convert import converted_matmul_time, table4_row
from repro.gpu.hardware import DPECycleModel, dpe_block_dot, lane_view, tensor_core_matmul
from repro.gpu.inference import CONFIGS, end_to_end_speedup, simulate_inference
from repro.gpu.kernels import GemmShape, gemm_time, matmul_breakdown
from repro.gpu.spec import RTX5090, RTXA6000
from repro.gpu.systolic import SystolicArray
from repro.models.zoo import ARCHS


class TestSpec:
    def test_fp4_peak_rate(self):
        # 170 SMs x 4 TCs x 512 MACs/cycle x 2.01 GHz
        assert RTX5090.tc_macs_per_s("mxfp4") == pytest.approx(
            170 * 4 * 512 * 2.01e9
        )

    def test_fp8_half_rate(self):
        assert RTX5090.tc_macs_per_s("mxfp8") == RTX5090.tc_macs_per_s("mxfp4") / 2

    def test_fp6_matches_fp8(self):
        assert RTX5090.tc_macs_per_s("mxfp6") == RTX5090.tc_macs_per_s("mxfp8")


class TestGemmTime:
    def test_compute_bound_large(self):
        shape = GemmShape(4096, 4096, 4096)
        b = matmul_breakdown(RTX5090, shape, "mxfp4", "mxfp4")
        assert b["compute_s"] > b["memory_s"]

    def test_memory_bound_decode(self):
        shape = GemmShape(4, 4096, 4096)
        b = matmul_breakdown(RTX5090, shape, "mxfp4", "mxfp4")
        assert b["memory_s"] > b["compute_s"]

    def test_software_mxplus_prefill_cost(self):
        shape = GemmShape(4096, 4096, 4096)
        base = gemm_time(RTX5090, shape, "mxfp4", "mxfp4")
        plus = gemm_time(RTX5090, shape, "mxfp4+", "mxfp4", mxplus_software=True)
        assert 1.3 < plus / base < 1.6  # the extra sparse MMA

    def test_software_mxplus_decode_negligible(self):
        # Memory-bound shape: the 1.5x compute hides; only the per-kernel
        # fixed cost remains (model-level decode overhead ~7%, Fig. 11).
        shape = GemmShape(4, 4096, 4096)
        base = gemm_time(RTX5090, shape, "mxfp4", "mxfp4")
        plus = gemm_time(RTX5090, shape, "mxfp4+", "mxfp4", mxplus_software=True)
        assert plus / base < 1.15

    def test_hardware_mxplus_negligible(self):
        shape = GemmShape(4096, 4096, 4096)
        base = gemm_time(RTX5090, shape, "mxfp4", "mxfp4")
        hw = gemm_time(RTX5090, shape, "mxfp4+", "mxfp4+", mxplus_hardware=True)
        assert hw / base < 1.01

    def test_min_tile_m_penalty(self):
        shape = GemmShape(4, 4096, 4096)
        free = gemm_time(RTX5090, shape, "mxfp8", "mxfp4")
        padded = gemm_time(RTX5090, shape, "mxfp8", "mxfp4", min_tile_m=128)
        assert padded > free

    def test_lower_bits_faster_in_memory_bound(self):
        shape = GemmShape(4, 8192, 8192)
        t4 = gemm_time(RTX5090, shape, "mxfp4", "mxfp4")
        t16 = gemm_time(RTX5090, shape, "bf16", "bf16")
        assert t16 / t4 > 2.5


class TestInferenceSim:
    def test_decode_dominates_long_output(self):
        arch = ARCHS["llama-2-13b"]
        st = simulate_inference(arch, CONFIGS["mxfp4"], 4, 1024, 64)
        assert st.decode_s > st.prefill_s

    def test_prefill_dominates_short_output(self):
        arch = ARCHS["llama-2-13b"]
        st = simulate_inference(arch, CONFIGS["mxfp4"], 4, 1024, 4)
        assert st.prefill_s > st.decode_s

    def test_speedup_ordering(self):
        arch = ARCHS["llama-2-13b"]
        s = {n: end_to_end_speedup(arch, CONFIGS[n], 4, 1024, 64) for n in CONFIGS}
        assert s["mxfp4"] > s["mxfp8"] > s["bf16"] == 1.0
        assert s["mxfp4+"] > s["mxfp8"]

    def test_bigger_model_slower(self):
        t7 = simulate_inference(ARCHS["llama-2-7b"], CONFIGS["mxfp4"], 4, 512, 16)
        t13 = simulate_inference(ARCHS["llama-2-13b"], CONFIGS["mxfp4"], 4, 512, 16)
        assert t13.total_s > t7.total_s


class TestHardwareModel:
    def test_block_dot_exact_mxplus_mx(self):
        rng = np.random.default_rng(0)
        fx, fw = MXFP4Plus(), MXFP4()
        x = rng.standard_normal((8, 32))
        x[:, 3] *= 30
        w = rng.standard_normal((8, 32))
        ex = fx.encode(x)
        ew = fw.encode(w)
        for i in range(8):
            got = sum(dpe_block_dot(lane_view(ex, i), lane_view(ew, i)))
            ref = float(np.dot(fx(x)[i], fw(w)[i]))
            assert got == pytest.approx(ref, abs=1e-9)

    def test_block_dot_both_mxplus_same_bm(self):
        fx = MXFP4Plus()
        x = np.zeros((1, 32))
        x[0, 5] = 40.0
        x[0, 1] = 1.0
        ex = fx.encode(x)
        got = sum(dpe_block_dot(lane_view(ex, 0), lane_view(ex, 0)))
        ref = float(np.dot(fx(x)[0], fx(x)[0]))
        assert got == pytest.approx(ref, abs=1e-9)

    def test_block_dot_mxpp_deltas(self):
        rng = np.random.default_rng(1)
        fpp = MXFP4PlusPlus()
        x = rng.standard_normal((4, 32))
        x[:, 2] *= 100
        y = rng.standard_normal((4, 32))
        y[:, 9] *= 50
        ex, ey = fpp.encode(x), fpp.encode(y)
        for i in range(4):
            got = sum(dpe_block_dot(lane_view(ex, i), lane_view(ey, i)))
            ref = float(np.dot(fpp(x)[i], fpp(y)[i]))
            assert got == pytest.approx(ref, abs=1e-9)

    def test_zero_block(self):
        fx = MXFP4Plus()
        e = fx.encode(np.zeros((1, 32)))
        tree, bcu = dpe_block_dot(lane_view(e, 0), lane_view(e, 0))
        assert tree == bcu == 0.0

    def test_tensor_core_matmul_matches_dequant(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((3, 64))
        x[:, 7] *= 25
        w = rng.standard_normal((64, 5))
        fx, fw = MXFP4Plus(), MXFP4()
        out, cycles = tensor_core_matmul(x, w, fx, fw)
        ref = fx(x) @ fw(w, axis=0)
        np.testing.assert_allclose(out, ref, atol=1e-9)
        assert cycles == 3 * 5 * 2 * 2  # M*N pairs x 2 blocks x 2 cycles

    def test_cycle_model_rates(self):
        m = DPECycleModel()
        assert m.block_pair_cycles(4) == 2
        assert m.block_pair_cycles(8) == 4
        assert m.mma_cycles(4) == 16


class TestSystolic:
    def test_matmul_exact(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 64))
        x[:, 11] *= 40
        w = rng.standard_normal((64, 8))
        arr = SystolicArray(MXFP4Plus(), MXFP4())
        res = arr.matmul(x, w)
        ref = MXFP4Plus()(x) @ MXFP4()(w, axis=0)
        np.testing.assert_allclose(res.output, ref, atol=1e-9)
        assert res.cycles > 0

    def test_rejects_misaligned_k(self):
        arr = SystolicArray(MXFP4Plus(), MXFP4())
        with pytest.raises(ValueError):
            arr.matmul(np.zeros((2, 40)), np.zeros((40, 4)))


class TestAreaPower:
    def test_table5_totals(self):
        t = tensor_core_overhead()
        assert t["area_mm2"] == pytest.approx(0.020)
        assert t["power_mw"] == pytest.approx(12.11)

    def test_component_counts(self):
        fsu = next(c for c in MXPLUS_COMPONENTS if c.name == "forward-swap-unit")
        assert fsu.instances == 32 * 16

    def test_node_scaling(self):
        assert scale_to_node(0.020, 28, 4) < 0.001


class TestConversion:
    def test_overhead_shrinks_with_m(self):
        row = table4_row([8, 4096], "mxfp4+")
        assert row[8] > row[4096]

    def test_mxpp_costs_more(self):
        t_plus = converted_matmul_time(GemmShape(8, 4096, 4096), "mxfp4+")
        t_pp = converted_matmul_time(GemmShape(8, 4096, 4096), "mxfp4++")
        t_base = converted_matmul_time(GemmShape(8, 4096, 4096), "mxfp4")
        assert t_base < t_plus < t_pp


class TestStepTimeCacheBounds:
    """The step-time memos are size-capped LRUs: eviction must only ever
    cost a recomputation, never change a value, and the counters must
    report faithfully."""

    def setup_method(self):
        from repro.gpu.inference import clear_step_time_cache

        clear_step_time_cache()

    def teardown_method(self):
        from repro.gpu.inference import (
            clear_step_time_cache,
            set_step_time_cache_limit,
        )

        set_step_time_cache_limit(step=1 << 16, attention=1 << 18, rows=1 << 14)
        clear_step_time_cache()

    def _sweep(self, cfg, n=24):
        from repro.gpu.inference import step_time

        arch = ARCHS["llama-2-7b"]
        return [
            step_time(RTX5090, arch, cfg, [(1, 128 + 16 * i), (1, 96 + 8 * i)])
            for i in range(n)
        ]

    def test_eviction_never_changes_values(self):
        from repro.serve import get_recipe
        from repro.gpu.inference import (
            clear_step_time_cache,
            set_step_time_cache_limit,
            step_time_cache_info,
        )

        cfg = get_recipe("mxfp4+")
        unbounded = self._sweep(cfg)
        clear_step_time_cache()
        # Tiny caps: every probe evicts something, values must not move.
        set_step_time_cache_limit(step=2, attention=3, rows=2)
        bounded = self._sweep(cfg)
        assert bounded == unbounded
        info = step_time_cache_info()
        assert info["size"] <= 2
        assert info["attention"]["size"] <= 3
        assert info["rows"]["size"] <= 2

    def test_cache_info_reports_hits_misses_size(self):
        from repro.serve import get_recipe
        from repro.gpu.inference import step_time, step_time_cache_info

        cfg = get_recipe("mxfp4")
        arch = ARCHS["llama-2-7b"]
        step_time(RTX5090, arch, cfg, [(4, 256)])
        step_time(RTX5090, arch, cfg, [(4, 256)])
        info = step_time_cache_info()
        assert (info["hits"], info["misses"], info["size"]) == (1, 1, 1)
        for sub in ("attention", "rows"):
            assert set(info[sub]) >= {"hits", "misses", "size", "maxsize"}
            assert info[sub]["size"] <= info[sub]["maxsize"]
        # hit rate is derivable and sane
        assert 0.0 <= info["hits"] / (info["hits"] + info["misses"]) <= 1.0

    def test_clear_resets_under_new_bound(self):
        from repro.serve import get_recipe
        from repro.gpu.inference import (
            clear_step_time_cache,
            set_step_time_cache_limit,
            step_time_cache_info,
        )

        cfg = get_recipe("mxfp4+")
        set_step_time_cache_limit(step=4, attention=8, rows=4)
        self._sweep(cfg, n=8)
        clear_step_time_cache()
        info = step_time_cache_info()
        assert (info["hits"], info["misses"], info["size"]) == (0, 0, 0)
        for sub in ("attention", "rows"):
            assert (info[sub]["hits"], info[sub]["misses"], info[sub]["size"]) == (
                0, 0, 0,
            )
        # the re-bound caps survive the clear and still enforce
        again = self._sweep(cfg, n=8)
        assert again == self._sweep(cfg, n=8)
        assert step_time_cache_info()["size"] <= 4

    def test_limit_validation(self):
        from repro.gpu.inference import set_step_time_cache_limit

        with pytest.raises(ValueError, match=">= 1"):
            set_step_time_cache_limit(step=0)
