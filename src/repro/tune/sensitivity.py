"""Per-layer / per-role quantization-sensitivity profiling.

The search space of a mixed-precision recipe is too large to measure
exhaustively, but the paper's damage mechanism is local: a layer whose
activation blocks carry outliers collapses under a narrow format while its
neighbours shrug. Profiling measures, for every *role* (each transformer
block, the LM head, and the KV/attention path) and every candidate format,
the held-out perplexity of the model with **only that role** quantized —
the real :class:`repro.nn.transformer.TransformerLM` numeric path through
:func:`repro.eval.perplexity.perplexity`, not a proxy.

The resulting :class:`SensitivityReport` supports an additive first-order
perplexity prediction for any full assignment (the standard mixed-precision
search surrogate, cf. NxFP's per-tensor sweeps), which the searchers in
:mod:`repro.tune.search` rank candidates with before spending a real
measurement.

Profiles are cached as JSON under the model cache directory, keyed by the
model's training fingerprint and the evaluation protocol, and the cache is
*resumable*: an interrupted profile keeps every finished cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..eval.perplexity import perplexity
from ..models.zoo import PROFILES, _profile_key, cache_dir, get_corpus, load_model
from ..serve.recipe import BF16, QuantRecipe

__all__ = [
    "SensitivityReport",
    "probe_recipe",
    "profile_sensitivity",
    "DEFAULT_PROFILE_FORMATS",
    "DEFAULT_KV_PROFILE_FORMATS",
]

#: formats profiled by default: the MX ladder the tuner searches over.
DEFAULT_PROFILE_FORMATS = (
    "mxfp8+",
    "mxfp6+",
    "mxfp4+",
    "mxfp4+-k64",
    "mxfp4",
    "mxfp4-k64",
)

#: KV-role ladder profiled by default. Kept identical to the searchers'
#: ``repro.tune.search.KV_LADDER`` (which aliases this tuple) so that a
#: report from ``profile_sensitivity()`` with default arguments covers
#: every cell ``greedy_bit_descent``/``evolutionary_search`` read with
#: *their* default ``kv_ladder``.
DEFAULT_KV_PROFILE_FORMATS = (
    "mxfp8",
    "mxfp6",
    "mxfp4+",
    "mxfp4",
    "mxfp4-k64",
)


@dataclass
class SensitivityReport:
    """Perplexity of the model with one role quantized at a time.

    ``cells[role][fmt]`` is the measured perplexity; roles are
    ``"layer:<i>"`` for each transformer block, ``"lm_head"``, and
    ``"kv"`` (the attention/KV-cache operands across all layers).
    """

    model: str
    corpus: str
    batch: int
    seq_len: int
    n_layers: int
    formats: tuple
    baseline_ppl: float
    cells: dict
    kv_formats: tuple = ()  # KV-role ladder; empty means "same as formats"

    # ------------------------------------------------------------------
    @property
    def roles(self) -> list[str]:
        """Profiled role names, sorted (e.g. layer groups, lm_head, kv)."""
        return [f"layer:{i}" for i in range(self.n_layers)] + ["lm_head", "kv"]

    def role_formats(self, role: str) -> tuple:
        """The format ladder profiled for ``role`` (KV has its own)."""
        if role == "kv" and self.kv_formats:
            return self.kv_formats
        return self.formats

    def ppl(self, role: str, fmt: str) -> float:
        """Measured perplexity with only ``role`` in format ``fmt``."""
        if fmt == BF16:
            return self.baseline_ppl
        try:
            return self.cells[role][fmt]
        except KeyError:
            raise KeyError(
                f"role {role!r} was not profiled under {fmt!r} "
                f"(profiled: {sorted(self.cells.get(role, {}))}); re-run "
                f"profile_sensitivity with a matching ladder"
            ) from None

    def delta(self, role: str, fmt: str) -> float:
        """Perplexity increase attributable to quantizing ``role`` alone."""
        return self.ppl(role, fmt) - self.baseline_ppl

    def predict(self, assignment: dict) -> float:
        """First-order additive perplexity estimate for a full assignment.

        ``assignment`` maps roles to format names (``"bf16"`` allowed).
        The estimate is ``baseline + sum(delta(role, fmt))`` — exact when
        quantization damage is independent across roles, and a useful
        ranking surrogate when it is not (searchers re-measure the points
        they keep).
        """
        return self.baseline_ppl + sum(
            self.delta(role, fmt) for role, fmt in assignment.items()
        )

    def ranked_roles(self, fmt: str) -> list[tuple[str, float]]:
        """Roles sorted most-sensitive-first by their delta under ``fmt``.

        Roles whose ladder was not profiled under ``fmt`` (the KV role
        has its own ladder) are omitted rather than raising.
        """
        pairs = [
            (role, self.delta(role, fmt))
            for role in self.roles
            if fmt == BF16 or fmt in self.cells.get(role, {})
        ]
        return sorted(pairs, key=lambda rf: (-rf[1], rf[0]))

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON view of the report (the resumable cache format)."""
        return {
            "model": self.model,
            "corpus": self.corpus,
            "batch": self.batch,
            "seq_len": self.seq_len,
            "n_layers": self.n_layers,
            "formats": list(self.formats),
            "kv_formats": list(self.kv_formats),
            "baseline_ppl": self.baseline_ppl,
            "cells": self.cells,
        }

    @staticmethod
    def from_payload(payload: dict) -> "SensitivityReport":
        """Rebuild a report from :meth:`to_payload` JSON."""
        return SensitivityReport(
            model=payload["model"],
            corpus=payload["corpus"],
            batch=int(payload["batch"]),
            seq_len=int(payload["seq_len"]),
            n_layers=int(payload["n_layers"]),
            formats=tuple(payload["formats"]),
            kv_formats=tuple(payload.get("kv_formats", ())),
            baseline_ppl=float(payload["baseline_ppl"]),
            cells={r: dict(c) for r, c in payload["cells"].items()},
        )


def probe_recipe(role: str, fmt: str, n_layers: int) -> QuantRecipe:
    """The recipe that quantizes exactly one role of an ``n_layers`` model.

    >>> probe_recipe("layer:1", "mxfp4", 2).overrides
    {1: 'mxfp4'}
    >>> probe_recipe("kv", "mxfp8", 2).kv
    'mxfp8'
    """
    name = f"probe-{role.replace(':', '')}-{fmt}"
    if role.startswith("layer:"):
        layer = int(role.split(":", 1)[1])
        return QuantRecipe(
            name, layer_overrides={layer: fmt}, n_layer_groups=n_layers
        )
    if role == "lm_head":
        return QuantRecipe(name, lm_head=fmt)
    if role == "kv":
        return QuantRecipe(name, kv=fmt)
    raise KeyError(f"unknown sensitivity role {role!r}")


def _cache_key(
    model: str, formats: tuple, kv_formats: tuple, batch: int, seq_len: int
) -> str:
    profile = PROFILES[model]
    payload = json.dumps(
        [model, _profile_key(profile), sorted(formats), sorted(kv_formats),
         batch, seq_len]
    )
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


def profile_sensitivity(
    model: str = "test-tiny",
    formats: tuple = DEFAULT_PROFILE_FORMATS,
    kv_formats: tuple | None = None,
    batch: int = 16,
    seq_len: int = 128,
    cache: bool = True,
    cache_path=None,
    verbose: bool = False,
) -> SensitivityReport:
    """Measure (or load) the per-role sensitivity grid.

    Layer and LM-head roles are profiled under ``formats``; the KV role
    under ``kv_formats`` — defaulting to
    :data:`DEFAULT_KV_PROFILE_FORMATS` (the searchers' KV ladder) when
    ``formats`` is also the default, and to ``formats`` otherwise, so
    both all-defaults and custom-same-ladder compositions with the
    searchers cover every cell they read. The searchers draw the KV slot
    from its own ladder, so profiling the cross product would spend real
    model evaluations on cells nothing reads. Each cell is one
    perplexity evaluation of the real model on its held-out corpus,
    seeded and deterministic. With ``cache`` the grid persists next to
    the trained model weights and partial results are reused cell by
    cell, so an interrupted profile resumes instead of restarting.
    """
    formats = tuple(dict.fromkeys(formats))  # stable de-dup
    if kv_formats:
        kv_formats = tuple(dict.fromkeys(kv_formats))
    elif formats == DEFAULT_PROFILE_FORMATS:
        # all-defaults composition: match the searchers' default KV_LADDER
        kv_formats = DEFAULT_KV_PROFILE_FORMATS
    else:
        # a custom `formats` without an explicit KV ladder keeps the
        # follow-`formats` behavior, so custom same-ladder searches work
        kv_formats = formats
    profile = PROFILES[model]
    lm = load_model(model)
    corpus = get_corpus(profile.corpus, profile.train_tokens)
    n_layers = lm.config.n_layers

    path = Path(cache_path) if cache_path else (
        cache_dir()
        / f"tune-sensitivity-{model}-{_cache_key(model, formats, kv_formats, batch, seq_len)}.json"
    )
    cells: dict = {}
    baseline_ppl = None
    if cache and path.exists():
        stored = json.loads(path.read_text())
        cells = {r: dict(c) for r, c in stored.get("cells", {}).items()}
        baseline_ppl = stored.get("baseline_ppl")

    if baseline_ppl is None:
        baseline_ppl = perplexity(lm, corpus, "bf16", batch=batch, seq_len=seq_len)

    report = SensitivityReport(
        model=model,
        corpus=profile.corpus,
        batch=batch,
        seq_len=seq_len,
        n_layers=n_layers,
        formats=formats,
        kv_formats=kv_formats,
        baseline_ppl=baseline_ppl,
        cells=cells,
    )

    dirty = False
    for role in report.roles:
        row = cells.setdefault(role, {})
        for fmt in report.role_formats(role):
            if fmt in row:
                continue
            recipe = probe_recipe(role, fmt, n_layers)
            row[fmt] = perplexity(lm, corpus, recipe, batch=batch, seq_len=seq_len)
            dirty = True
            if verbose:  # pragma: no cover - progress chatter
                print(f"[tune] {model} {role:>8s} {fmt:>10s}: ppl {row[fmt]:.3f}")
            if cache:  # persist after every cell: the profile is resumable
                path.write_text(json.dumps(report.to_payload(), indent=2, sort_keys=True))
    if cache and dirty:
        path.write_text(json.dumps(report.to_payload(), indent=2, sort_keys=True))
    return report
