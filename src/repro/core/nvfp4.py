"""NVFP4 and NVFP4+ (Section 8.2, Table 11).

NVFP4 uses E2M1 elements like MXFP4 but with a block size of 16 and an
*E4M3* (non-power-of-two) scale chosen so the block max maps as closely as
possible to the FP4 maximum magnitude (6.0): ``scale = amax / 6`` rounded
to E4M3.

NVFP4+ applies the MX+ idea: when the scaled BM's exponent field is at
``e_max`` (the common case), the BM is stored as ``2**e_max * 1.mmm`` with
3 mantissa bits. When the BM lands below ``2**e_max`` after scaling (tiny
blocks where the E4M3 scale saturated low, the paper's
``X_E4M3 <= 0b00000010`` case), the block falls back to plain NVFP4. An
extra 4 bits per 16-element block store the BM index.
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import E2M1, E4M3, round_half_even

__all__ = ["NVFP4Format", "NVFP4PlusFormat", "NVFP4", "NVFP4Plus"]


class NVFP4Format(BlockFormat):
    def __init__(self, block_size: int = 16, name: str = "nvfp4"):
        self.elem = E2M1
        self.block_size = block_size
        self.name = name

    def _scales(self, data: np.ndarray) -> np.ndarray:
        amax = np.max(np.abs(data), axis=-1)
        raw = amax / self.elem.max_normal
        scale = E4M3.quantize(raw)
        # A zero scale with nonzero data would wipe the block; use the
        # smallest positive E4M3 value instead.
        scale = np.where((scale == 0) & (amax > 0), E4M3.min_subnormal, scale)
        return scale

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        scale = self._scales(data)[..., None]
        safe = np.where(scale == 0, 1.0, scale)
        out = self.elem.quantize(data / safe) * scale
        return from_blocks(blocked, out)

    def bits_per_element(self) -> float:
        return self.elem.bits + 8.0 / self.block_size


class NVFP4PlusFormat(NVFP4Format):
    def __init__(self, block_size: int = 16, name: str = "nvfp4+"):
        super().__init__(block_size, name)

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        absd = np.abs(data)
        scale = self._scales(data)[..., None]
        safe = np.where(scale == 0, 1.0, scale)
        out = self.elem.quantize(data / safe) * scale

        bm_index = np.argmax(absd, axis=-1).astype(np.int64)
        bm_signed = np.take_along_axis(data, bm_index[..., None], axis=-1)[..., 0]
        scaled_bm = np.abs(bm_signed) / safe[..., 0]
        anchor = 2.0**self.elem.emax

        # Extended representation only when the scaled BM reaches e_max.
        eligible = scaled_bm >= anchor
        sign = np.where(bm_signed < 0, -1.0, 1.0)
        mext = self.elem.mbits + self.elem.ebits
        steps = float(1 << mext)
        code = np.clip(round_half_even((scaled_bm / anchor - 1.0) * steps), 0, steps - 1)
        bm_plus = sign * anchor * (1.0 + code / steps) * safe[..., 0]
        bm_plain = np.take_along_axis(out, bm_index[..., None], axis=-1)[..., 0]
        bm_val = np.where(eligible, bm_plus, bm_plain)
        np.put_along_axis(out, bm_index[..., None], bm_val[..., None], axis=-1)
        return from_blocks(blocked, out)

    def bits_per_element(self) -> float:
        # 4-bit BM index per 16-element block on top of NVFP4.
        return super().bits_per_element() + 4.0 / self.block_size


def NVFP4() -> NVFP4Format:
    return NVFP4Format()


def NVFP4Plus() -> NVFP4PlusFormat:
    return NVFP4PlusFormat()
