"""Shared-scale codecs: E8M0 (MX) and E4M3 (NVFP4).

The OCP MX scale is E8M0 — a bare 8-bit biased exponent (bias 127) encoding
a power-of-two scale ``2**(b - 127)``. The pattern ``b = 255`` is NaN per
spec. MX+ additionally *reserves* ``b = 0`` to flag an all-zero block
(Section 4.1 of the paper), so representable shared exponents in MX+ are
``[-126, 127]``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "E8M0_BIAS",
    "E8M0_MIN",
    "E8M0_MIN_MXPLUS",
    "E8M0_MAX",
    "ZERO_BLOCK_SENTINEL",
    "encode_e8m0",
    "decode_e8m0",
]

E8M0_BIAS = 127
E8M0_MAX = 127
E8M0_MIN = -127  # plain MX lower bound (biased pattern 0)
E8M0_MIN_MXPLUS = -126  # MX+ reserves biased 0 for the zero-block flag

# Integer sentinel used in *unpacked* arrays of shared exponents to mark a
# flushed (all-zero) block. It encodes to the reserved biased pattern 0.
ZERO_BLOCK_SENTINEL = np.int32(-(1 << 20))


def encode_e8m0(shared_exp: np.ndarray, mx_plus: bool = False) -> np.ndarray:
    """Encode shared exponents to biased E8M0 bytes.

    ``ZERO_BLOCK_SENTINEL`` entries become the reserved biased pattern 0
    (only meaningful when ``mx_plus`` is True; plain MX has no zero flag and
    callers must not pass the sentinel then).
    """
    shared_exp = np.asarray(shared_exp)
    is_zero = shared_exp == ZERO_BLOCK_SENTINEL
    lo = E8M0_MIN_MXPLUS if mx_plus else E8M0_MIN
    clipped = np.clip(shared_exp, lo, E8M0_MAX)
    biased = (clipped + E8M0_BIAS).astype(np.uint8)
    if mx_plus:
        biased = np.where(is_zero, np.uint8(0), biased)
    elif np.any(is_zero):
        raise ValueError("zero-block sentinel requires the MX+ encoding")
    return biased


def decode_e8m0(biased: np.ndarray, mx_plus: bool = False) -> np.ndarray:
    """Decode biased E8M0 bytes to shared exponents (int32).

    With ``mx_plus`` the biased pattern 0 decodes to the zero-block
    sentinel; without it, pattern 0 means ``-127`` per the base spec.
    """
    biased = np.asarray(biased, dtype=np.int32)
    if np.any(biased == 255):
        raise ValueError("E8M0 NaN scale encountered")
    exp = biased - E8M0_BIAS
    if mx_plus:
        exp = np.where(biased == 0, ZERO_BLOCK_SENTINEL, exp)
    return exp
