"""Tiny vision models for the Table 9 experiments: a DeiT-style ViT and a
ResNet-style CNN, with direct-cast and quantization-aware fine-tuning.

The CNN's convolutions are im2col + matmul, so the same quantized-matmul
hooks used by the transformer apply, and QA fine-tuning works through the
straight-through estimator built into the Linear layers.
"""

from __future__ import annotations

import numpy as np

from ..data.images import IMAGE_SIZE, ImageDataset
from .functional import cross_entropy, gelu, softmax
from .layers import Embedding, Linear, Module, RMSNorm
from .optim import Adam, clip_grad_norm
from .quantize import QuantContext
from .tensor import Tensor, no_grad

__all__ = ["TinyViT", "TinyCNN", "train_classifier", "qa_finetune", "classifier_accuracy"]


def _im2col_indices(size: int, kernel: int, stride: int) -> tuple[np.ndarray, int]:
    """Flat gather indices mapping an image to (positions, kernel*kernel)."""
    out = (size - kernel) // stride + 1
    idx = []
    for oy in range(out):
        for ox in range(out):
            patch = [
                (oy * stride + ky) * size + (ox * stride + kx)
                for ky in range(kernel)
                for kx in range(kernel)
            ]
            idx.append(patch)
    return np.array(idx, dtype=np.int64), out


class Conv2d(Module):
    """Single-channel-group conv as im2col + Linear (quantizable)."""

    def __init__(self, rng, in_ch: int, out_ch: int, kernel: int, size: int, stride: int = 1):
        self.kernel = kernel
        self.in_ch = in_ch
        self.out_ch = out_ch
        self.indices, self.out_size = _im2col_indices(size, kernel, stride)
        self.proj = Linear(rng, in_ch * kernel * kernel, out_ch)

    def __call__(self, x: Tensor, qc: QuantContext | None = None) -> Tensor:
        # x: (batch, in_ch, size*size)
        batch = x.shape[0]
        cols = x[:, :, self.indices.reshape(-1)]
        cols = cols.reshape(batch, self.in_ch, self.indices.shape[0], self.kernel**2)
        cols = cols.transpose(0, 2, 1, 3).reshape(
            batch, self.indices.shape[0], self.in_ch * self.kernel**2
        )
        out = self.proj(cols, qc)  # (batch, positions, out_ch)
        return out.transpose(0, 2, 1)  # (batch, out_ch, positions)


class TinyCNN(Module):
    """ResNet-style stand-in: conv -> residual conv blocks -> pooled head."""

    def __init__(self, n_classes: int = 8, width: int = 16, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(rng, 1, width, kernel=3, size=IMAGE_SIZE)
        s1 = self.conv1.out_size
        self.conv2 = Conv2d(rng, width, width, kernel=3, size=s1)
        self.conv3 = Conv2d(rng, width, width, kernel=3, size=self.conv2.out_size)
        self.head = Linear(rng, width, n_classes)
        self._mid = s1

    def __call__(self, images: np.ndarray | Tensor, qc: QuantContext | None = None) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(np.asarray(images))
        batch = x.shape[0]
        x = x.reshape(batch, 1, IMAGE_SIZE * IMAGE_SIZE)
        h = self.conv1(x, qc).relu()
        h2 = self.conv2(h, qc).relu()
        # residual around conv3 (crop h2 to conv3's output positions)
        h3 = self.conv3(h2, qc)
        crop = _center_crop_indices(self.conv2.out_size, self.conv3.out_size)
        h = (h3 + h2[:, :, crop]).relu()
        pooled = h.mean(axis=-1)
        return self.head(pooled, qc)


def _center_crop_indices(size_in: int, size_out: int) -> np.ndarray:
    off = (size_in - size_out) // 2
    rows = np.arange(size_out) + off
    grid = rows[:, None] * size_in + (np.arange(size_out) + off)[None, :]
    return grid.reshape(-1)


class TinyViT(Module):
    """DeiT-style stand-in: patch embed, one attention block, mean-pool head."""

    def __init__(self, n_classes: int = 8, dim: int = 48, n_heads: int = 4, seed: int = 0,
                 outlier_scale: float = 24.0):
        from .layers import CausalSelfAttention, SwiGLU  # reuse modules

        rng = np.random.default_rng(seed)
        self.patch = 4
        n_patches = (IMAGE_SIZE // self.patch) ** 2
        self.embed = Linear(rng, self.patch * self.patch, dim)
        self.pos = Tensor(rng.normal(0, 0.5, (1, n_patches, dim)), requires_grad=True)
        # ViTs carry scattered activation outliers (Section 8.2); a fixed
        # heavy-tail gain with one dominant channel reproduces that.
        gains = np.minimum(np.exp2(np.abs(rng.normal(0, 0.8, dim))), 6.0)
        gains[7] = outlier_scale
        self.norm1 = RMSNorm(dim, fixed_scale=gains)
        self.attn = CausalSelfAttention(rng, dim, n_heads)
        self.norm2 = RMSNorm(dim, fixed_scale=gains)
        self.mlp = SwiGLU(rng, dim, dim * 2)
        self.head = Linear(rng, dim, n_classes)

    def _patches(self, images: np.ndarray) -> np.ndarray:
        b = images.shape[0]
        p = self.patch
        n = IMAGE_SIZE // p
        x = images.reshape(b, n, p, n, p).transpose(0, 1, 3, 2, 4)
        return x.reshape(b, n * n, p * p)

    def __call__(self, images: np.ndarray | Tensor, qc: QuantContext | None = None) -> Tensor:
        arr = images.data if isinstance(images, Tensor) else np.asarray(images)
        x = self.embed(Tensor(self._patches(arr)), qc) + self.pos
        x = x + self.attn(self.norm1(x), qc)
        x = x + self.mlp(self.norm2(x), qc)
        pooled = x.mean(axis=1)
        return self.head(pooled, qc)


def classifier_accuracy(
    model: Module, data: ImageDataset, qc: QuantContext | None = None, batch: int = 128
) -> float:
    """Top-1 accuracy (%) on the test split."""
    correct = 0
    with no_grad():
        for i in range(0, len(data.test_y), batch):
            logits = model(data.test_x[i : i + batch], qc).data
            correct += int(np.sum(np.argmax(logits, axis=-1) == data.test_y[i : i + batch]))
    return 100.0 * correct / len(data.test_y)


def _train(model, data, steps, lr, qc, batch, seed):
    rng = np.random.default_rng(seed)
    opt = Adam(model.parameters(), lr=lr)
    for _ in range(steps):
        idx = rng.integers(0, len(data.train_y), size=batch)
        opt.zero_grad()
        loss = cross_entropy(model(data.train_x[idx], qc), data.train_y[idx])
        loss.backward()
        clip_grad_norm(model.parameters(), 1.0)
        opt.step()
    return model


def train_classifier(model: Module, data: ImageDataset, steps: int = 150,
                     lr: float = 3e-3, batch: int = 64, seed: int = 0) -> Module:
    """Full-precision training."""
    return _train(model, data, steps, lr, None, batch, seed)


def qa_finetune(model: Module, data: ImageDataset, qc: QuantContext, steps: int = 60,
                lr: float = 1e-3, batch: int = 64, seed: int = 1) -> Module:
    """Quantization-aware fine-tuning: forward through the quantizer with
    straight-through gradients (Table 9's QA fine-tuning column)."""
    return _train(model, data, steps, lr, qc, batch, seed)
