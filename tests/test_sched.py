"""Tests for the discrete-event serving core: pluggable schedulers, the
incremental engine API, mixed-batch step pricing + memo keys, preemption
x shared-prefix interaction, live-state routers, and autoscaling."""

import pytest

from repro.gpu.inference import (
    clear_step_time_cache,
    step_time,
    step_time_cache_info,
)
from repro.gpu.spec import RTX5090
from repro.models.zoo import ARCHS
from repro.serve import (
    AutoscalePolicy,
    ChunkedPrefillScheduler,
    DecodePriorityScheduler,
    PagedKVCache,
    PrefillFirstScheduler,
    Request,
    Scheduler,
    ServingCluster,
    ServingEngine,
    available_schedulers,
    get_recipe,
    get_scheduler,
    long_prompt_workload,
    make_workload,
)

ARCH = ARCHS["llama-2-7b"]


class TestSchedulerRegistry:
    def test_registry(self):
        assert available_schedulers() == [
            "chunked-prefill",
            "decode-priority",
            "prefill-first",
        ]
        assert isinstance(get_scheduler("prefill-first"), PrefillFirstScheduler)
        assert isinstance(get_scheduler("chunked-prefill"), ChunkedPrefillScheduler)
        assert isinstance(get_scheduler("decode-priority"), DecodePriorityScheduler)

    def test_instance_passthrough(self):
        sched = ChunkedPrefillScheduler(chunk_tokens=64)
        assert get_scheduler(sched) is sched

    def test_unknown_raises_with_menu(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            get_scheduler("fifo")

    def test_chunk_tokens_validated(self):
        with pytest.raises(ValueError, match="chunk_tokens"):
            ChunkedPrefillScheduler(chunk_tokens=0)

    def test_base_plan_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Scheduler().plan(None)

    def test_cluster_replicas_keep_instance_configuration(self):
        # A configured scheduler instance must reach every replica with
        # its knobs intact (deep-copied, not re-instantiated bare).
        cluster = ServingCluster(
            ARCH, "mxfp4", n_replicas=2, kv_token_budget=8192,
            scheduler=ChunkedPrefillScheduler(chunk_tokens=16),
        )
        scheds = [e.scheduler for e in cluster.engines]
        assert all(s.chunk_tokens == 16 for s in scheds)
        assert len({id(s) for s in scheds}) == 2  # one instance per replica

    def test_buggy_scheduler_fails_loudly_not_hangs(self):
        from repro.serve import StepPlan

        class Stuck(Scheduler):
            name = "stuck"

            def plan(self, engine):
                engine.admit_arrived()
                return StepPlan()  # never schedules anything

        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=4096,
                               scheduler=Stuck())
        with pytest.raises(RuntimeError, match="empty step plan"):
            engine.run([Request("a", prompt_len=64, max_new_tokens=2)])


def _mixed_requests(n=10):
    return [
        Request(
            f"r{i}",
            prompt_len=128 * (1 + i % 4),
            max_new_tokens=8 + 4 * (i % 3),
            arrival_s=0.005 * i,
        )
        for i in range(n)
    ]


class TestPrefillFirstEquivalence:
    def test_explicit_prefill_first_matches_default(self):
        # The extracted policy is the engine's old hard-coded loop:
        # results must be *identical*, preemptions included.
        reqs = [Request(f"r{i}", prompt_len=160, max_new_tokens=60) for i in range(4)]
        default = ServingEngine(ARCH, "mxfp4", kv_token_budget=500).run(reqs)
        explicit = ServingEngine(
            ARCH, "mxfp4", kv_token_budget=500, scheduler=PrefillFirstScheduler()
        ).run(reqs)
        assert default.preemptions == explicit.preemptions > 0
        assert default.makespan_s == explicit.makespan_s
        for a, b in zip(default.responses, explicit.responses):
            assert (a.ttft_s, a.tpot_s, a.finish_s) == (b.ttft_s, b.tpot_s, b.finish_s)

    def test_repeat_runs_identical(self):
        reqs = _mixed_requests()
        for sched in available_schedulers():
            engine = ServingEngine(
                ARCH, "mxfp4", kv_token_budget=16_384, scheduler=sched
            )
            first = engine.run(reqs)
            second = engine.run(reqs)
            assert first.makespan_s == second.makespan_s
            assert [r.finish_s for r in first.responses] == [
                r.finish_s for r in second.responses
            ]


class TestChunkedPrefill:
    def test_completes_all_and_mixes(self):
        engine = ServingEngine(
            ARCH, "mxfp4", kv_token_budget=16_384,
            scheduler=ChunkedPrefillScheduler(chunk_tokens=128),
        )
        reqs = _mixed_requests()
        result = engine.run(reqs)
        assert [r.request_id for r in result.responses] == [r.request_id for r in reqs]
        assert all(r.output_len == q.max_new_tokens for r, q in zip(result.responses, reqs))
        assert result.n_mixed_steps > 0

    def test_chunk_budget_respected(self):
        chunk = 96
        engine = ServingEngine(
            ARCH, "mxfp4", kv_token_budget=16_384,
            scheduler=ChunkedPrefillScheduler(chunk_tokens=chunk),
        )
        engine.begin_run()
        for r in _mixed_requests(6):
            engine.submit(r)
        total_prefill_rows = 0
        while engine.has_work():
            event = engine.step()
            assert event.n_prefill_rows <= chunk
            total_prefill_rows += event.n_prefill_rows
        # No preemptions here, no prefixes: every prompt row is computed
        # exactly once across all chunks.
        assert total_prefill_rows == sum(r.prompt_len for r in _mixed_requests(6))

    def test_long_prompt_tail_ttft_improves(self):
        # The benchmark claim in miniature: bursty long prompts in the
        # queueing regime (the KV budget fits ~10 requests, the trace
        # queues far more) -> chunked prefill strictly improves tail
        # TTFT, because decodes and page turnover keep flowing during
        # prompt processing.
        reqs = long_prompt_workload(24, seed=11)
        kwargs = dict(kv_token_budget=4660, max_batch=64)
        pf = ServingEngine(ARCH, "mxfp4+", scheduler="prefill-first", **kwargs).run(reqs)
        ck = ServingEngine(ARCH, "mxfp4+", scheduler="chunked-prefill", **kwargs).run(reqs)
        assert ck.p99_ttft_s() < pf.p99_ttft_s()
        assert all(r.output_len > 0 for r in ck.responses)

    def test_decode_not_reopened_by_generation(self):
        # Regression: prefill_done must be pinned at admission — decode
        # growth must not re-enter a request into the chunk queue.
        engine = ServingEngine(
            ARCH, "mxfp4", kv_token_budget=8192,
            scheduler=ChunkedPrefillScheduler(chunk_tokens=64),
        )
        result = engine.run([Request("a", prompt_len=128, max_new_tokens=16)])
        # 128 rows at 64/chunk = 2 pure prefill steps, then pure decodes.
        assert result.n_mixed_steps == 0
        assert result.n_prefill_steps == 2
        assert result.n_decode_steps == 16


class TestDecodePriority:
    def test_never_mixes_and_brackets_ttft(self):
        reqs = [Request("long", prompt_len=2048, max_new_tokens=24)] + [
            Request(f"s{i}", prompt_len=64, max_new_tokens=8, arrival_s=0.01)
            for i in range(4)
        ]
        pf = ServingEngine(ARCH, "mxfp4+", scheduler="prefill-first").run(reqs)
        dp = ServingEngine(ARCH, "mxfp4+", scheduler="decode-priority").run(reqs)
        assert dp.n_mixed_steps == 0
        by_id = lambda res: {r.request_id: r for r in res.responses}
        # The running request's decode is never interrupted by the
        # arrivals, so its TTFT/finish improve...
        assert by_id(dp)["long"].ttft_s <= by_id(pf)["long"].ttft_s
        # ...while the arrivals queue behind the whole batch.
        assert by_id(dp)["s0"].ttft_s > by_id(pf)["s0"].ttft_s


class TestIncrementalAPI:
    def test_manual_drive_matches_run(self):
        reqs = _mixed_requests()
        run_result = ServingEngine(ARCH, "mxfp4", kv_token_budget=16_384).run(reqs)
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=16_384)
        engine.begin_run()
        from repro.serve import arrival_order

        for r in arrival_order(reqs):
            engine.submit(r)
        while engine.has_work():
            engine.step()
        manual = engine.collect(reqs)
        assert manual.makespan_s == run_result.makespan_s
        for a, b in zip(manual.responses, run_result.responses):
            assert (a.ttft_s, a.finish_s) == (b.ttft_s, b.finish_s)

    def test_peek_and_idle_jump(self):
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=4096)
        engine.begin_run()
        assert engine.peek_next_event() is None
        engine.submit(Request("late", prompt_len=32, max_new_tokens=1, arrival_s=5.0))
        assert engine.peek_next_event() == 5.0
        event = engine.step()
        assert event.t_start == 5.0 and engine.clock > 5.0
        assert engine.peek_next_event() == engine.clock  # decode pending
        while engine.has_work():
            engine.step()
        assert engine.peek_next_event() is None
        assert engine.step() is None

    def test_mid_flight_submission(self):
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=4096)
        engine.begin_run()
        engine.submit(Request("a", prompt_len=64, max_new_tokens=8))
        engine.step()  # prefill a
        engine.submit(Request("b", prompt_len=64, max_new_tokens=2,
                              arrival_s=engine.clock))
        while engine.has_work():
            engine.step()
        assert set(engine.finished) == {"a", "b"}
        assert engine.finished["b"].ttft_s > 0

    def test_submit_validation(self):
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=128)
        engine.begin_run()
        engine.submit(Request("x", prompt_len=8))
        with pytest.raises(ValueError, match="duplicate"):
            engine.submit(Request("x", prompt_len=8))
        with pytest.raises(ValueError, match="cannot hold"):
            engine.submit(Request("big", prompt_len=256, max_new_tokens=8))

    def test_begin_run_guards_in_flight(self):
        engine = ServingEngine(ARCH, "mxfp4", kv_token_budget=4096)
        engine.begin_run()
        engine.submit(Request("a", prompt_len=64, max_new_tokens=4))
        with pytest.raises(RuntimeError, match="in flight"):
            engine.begin_run()
        engine.abort()
        engine.begin_run()  # drained: fine


class TestPreemptionPrefixInteraction:
    """A preempted request whose prefix pages are refcount-shared must
    not free pages still referenced by a sibling, and must re-admit as a
    prefix *hit* (the satellite's exact scenario)."""

    def _engine(self):
        # 4-token pages; 16 pages = 64 tokens. Prefix of 16 tokens (4
        # shared pages) + two siblings of 24-token prompts: pages =
        # 4 (shared) + 2 + 2 private = 8; decode growth forces eviction
        # before both finish 24 new tokens (needs 4+6+6 = 16 > 12 free).
        cache = PagedKVCache(num_blocks=16, block_tokens=4)
        return ServingEngine(ARCH, "mxfp4", kv_cache=cache), cache

    def _requests(self):
        return [
            Request("sib-a", prompt_len=24, max_new_tokens=24,
                    prefix_id="sys", prefix_len=16),
            Request("sib-b", prompt_len=24, max_new_tokens=24,
                    prefix_id="sys", prefix_len=16),
        ]

    def test_preempted_sibling_keeps_shared_pages_and_rehits(self):
        engine, cache = self._engine()
        result = engine.run(self._requests())
        stats = result.kv
        # Both complete despite mid-flight eviction of the newest sibling.
        assert all(r.output_len == 24 for r in result.responses)
        assert result.preemptions > 0
        by_id = {r.request_id: r for r in result.responses}
        assert by_id["sib-b"].preemptions > 0  # newest-admitted victim
        assert by_id["sib-a"].preemptions == 0
        # The shared prefix was allocated once, never evicted while the
        # sibling still referenced it...
        assert stats["prefix_misses"] == 1
        assert stats["prefix_evictions"] == 0
        # ...and the victim's re-admission was a prefix *hit* on top of
        # its first-admission hit.
        assert stats["prefix_hits"] == 1 + by_id["sib-b"].preemptions
        # Allocator bookkeeping survived the preemption cycle: only the
        # idle prefix remains resident after the run.
        assert stats["resident_seqs"] == 0
        assert stats["used_blocks"] == 16 // 4  # the 4 cached prefix pages

    def test_preemption_does_not_corrupt_sibling_decode(self):
        # The surviving sibling keeps decoding through the eviction; its
        # final context must equal prompt + all generated tokens.
        engine, cache = self._engine()
        engine.begin_run()
        for r in self._requests():
            engine.submit(r)
        while engine.has_work():
            engine.step()
        assert cache.stats()["resident_seqs"] == 0
        assert engine.finished["sib-a"].output_len == 24


class TestMixedBatchStepTime:
    """Satellite: mixed-batch memo keys cannot collide with pure-decode
    keys, and cached results equal the cold path exactly."""

    CFG = "mxfp4+"

    def test_tagged_kinds_do_not_merge(self):
        cfg = get_recipe(self.CFG)
        clear_step_time_cache()
        pure = step_time(RTX5090, ARCH, cfg, [(6, 100)])
        mixed = step_time(RTX5090, ARCH, cfg, [(5, 100, "prefill"), (1, 100, "decode")])
        # Separate chunk/decode attention kernels cost more than the one
        # merged GEMM — distinct values prove distinct cache entries.
        assert mixed > pure
        info = step_time_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0

    def test_untagged_groups_still_merge(self):
        cfg = get_recipe(self.CFG)
        clear_step_time_cache()
        merged = step_time(RTX5090, ARCH, cfg, [(6, 100)])
        split = step_time(RTX5090, ARCH, cfg, [(5, 100), (1, 100)])
        assert split == merged
        info = step_time_cache_info()
        # whole-step memo: equal merged signatures share one entry
        assert (info["hits"], info["misses"], info["size"]) == (1, 1, 1)

    def test_cache_matches_cold_path(self):
        cfg = get_recipe(self.CFG)
        batches = [
            [(8, 64)],
            [(8, 64, "prefill")],
            [(8, 64, "decode")],
            [(8, 64, "prefill"), (3, 64, "decode"), (2, 96, "decode")],
            [(1, 33), (1, 65), (256, 512, "prefill")],
        ]
        clear_step_time_cache()
        warm = [step_time(RTX5090, ARCH, cfg, b) for b in batches]
        cached = [step_time(RTX5090, ARCH, cfg, b) for b in batches]
        assert cached == warm
        assert step_time_cache_info()["hits"] >= len(batches)
        clear_step_time_cache()
        cold = [step_time(RTX5090, ARCH, cfg, b) for b in batches]
        assert cold == warm

    def test_kind_tag_alone_separates_entries(self):
        cfg = get_recipe(self.CFG)
        clear_step_time_cache()
        step_time(RTX5090, ARCH, cfg, [(4, 128, "prefill")])
        step_time(RTX5090, ARCH, cfg, [(4, 128, "decode")])
        step_time(RTX5090, ARCH, cfg, [(4, 128)])
        # Same shape, three kinds: three distinct memo entries (values
        # happen to be equal — only the *keys* must not collide).
        assert step_time_cache_info()["size"] == 3


class TestClusterSchedulers:
    def test_cluster_forwards_scheduler(self):
        reqs = _mixed_requests(8)
        fleet = ServingCluster(
            ARCH, "mxfp4", n_replicas=2, kv_token_budget=16_384,
            scheduler="chunked-prefill",
        ).run(reqs)
        assert fleet.scheduler == "chunked-prefill"
        assert sum(r.n_mixed_steps for r in fleet.replica_results) > 0

    def test_one_replica_event_loop_matches_engine_all_schedulers(self):
        reqs = make_workload(12, seed=5, rate_rps=30.0)
        for sched in available_schedulers():
            fleet = ServingCluster(
                ARCH, "mxfp4+", n_replicas=1, kv_token_budget=32_768,
                scheduler=sched,
            ).run(reqs)
            single = ServingEngine(
                ARCH, "mxfp4+", kv_token_budget=32_768, scheduler=sched
            ).run(reqs)
            assert fleet.makespan_s == single.makespan_s
            for a, b in zip(fleet.responses, single.responses):
                assert (a.ttft_s, a.finish_s) == (b.ttft_s, b.finish_s)


class TestLiveRouters:
    def test_free_kv_at_arrival_diverges_from_static_least_load(self):
        # Load shifts mid-trace: phase-1 requests pin replica KV very
        # unevenly, then finish entirely before phase 2 arrives. The
        # static router still charges phase-1 loads; the live router sees
        # both caches empty again — assignments must diverge.
        phase1 = [
            Request("big", prompt_len=4096, max_new_tokens=64),
            Request("small-0", prompt_len=64, max_new_tokens=8, arrival_s=0.001),
            Request("small-1", prompt_len=64, max_new_tokens=8, arrival_s=0.002),
        ]
        phase2 = [
            Request(f"late-{i}", prompt_len=256, max_new_tokens=16,
                    arrival_s=1000.0 + 0.001 * i)
            for i in range(2)
        ]
        reqs = phase1 + phase2
        kwargs = dict(n_replicas=2, kv_token_budget=16_384)
        static = ServingCluster(ARCH, "mxfp4+", router="least-kv-load", **kwargs).run(reqs)
        live = ServingCluster(ARCH, "mxfp4+", router="free-kv-at-arrival", **kwargs).run(reqs)
        # Static: replica 0 is forever "loaded" with the big request, so
        # phase 2 lands on replica 1. Live: at t=1000 both caches are
        # free again, ties resolve to replica 0.
        assert static.assignments["late-0"] == 1
        assert live.assignments["late-0"] == 0
        assert static.assignments != live.assignments
        # Time-coherent fleet makespan: the slowest replica's clock, and
        # every response finished before it.
        for fleet in (static, live):
            assert fleet.makespan_s == max(
                r.makespan_s for r in fleet.replica_results
            )
            assert all(r.finish_s <= fleet.makespan_s for r in fleet.responses)

    def test_queue_depth_router_sees_live_queues(self):
        # Replica 0 decodes a long request for ~0.9s; short requests
        # trickle in one at a time, each finishing before the next
        # arrives. The live router sees queues (1, 0) at every arrival
        # and sends all of them to replica 1; its static no-snapshot
        # fallback (least-assigned) would alternate instead.
        reqs = [
            Request("long", prompt_len=2048, max_new_tokens=256),
            Request("warm", prompt_len=64, max_new_tokens=1, arrival_s=0.001),
        ] + [
            Request(f"late-{i}", prompt_len=64, max_new_tokens=4,
                    arrival_s=0.3 + 0.1 * i)
            for i in range(4)
        ]
        fleet = ServingCluster(
            ARCH, "mxfp4+", n_replicas=2, router="queue-depth",
            kv_token_budget=16_384,
        ).run(reqs)
        assert fleet.assignments["long"] == 0
        assert all(fleet.assignments[f"late-{i}"] == 1 for i in range(4))

    def test_routers_work_without_snapshots(self):
        from repro.serve import FreeKVAtArrivalRouter, QueueDepthRouter

        qd = QueueDepthRouter(2)
        assert [qd.route(r) for r in _mixed_requests(4)] == [0, 1, 0, 1]
        fk = FreeKVAtArrivalRouter(2)
        heavy = Request("h", prompt_len=4096, max_new_tokens=512)
        light = Request("l", prompt_len=32, max_new_tokens=8)
        assert fk.route(heavy) == 0
        assert fk.route(light) == 1
        assert fk.route(Request("m", prompt_len=64, max_new_tokens=8)) == 1


class TestAutoscale:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalePolicy(max_replicas=2, min_replicas=4)
        with pytest.raises(ValueError, match="scale_up_queue_depth"):
            AutoscalePolicy(scale_up_queue_depth=0)

    def test_scales_up_under_queue_pressure(self):
        reqs = make_workload(24, seed=2, rate_rps=2000.0,
                             arrival="bursty", burst_size=24)
        policy = AutoscalePolicy(max_replicas=4, scale_up_queue_depth=3,
                                 scale_down=False)
        base = ServingCluster(ARCH, "mxfp4", n_replicas=1,
                              kv_token_budget=8192).run(reqs)
        scaled = ServingCluster(ARCH, "mxfp4", n_replicas=1,
                                kv_token_budget=8192, autoscale=policy).run(reqs)
        ups = [e for e in scaled.autoscale_events if e[1] == "scale-up"]
        assert ups and scaled.n_replicas > 1
        assert scaled.n_replicas <= 4
        assert len(scaled.responses) == len(reqs)
        assert scaled.makespan_s < base.makespan_s  # extra replicas helped

    def test_scale_down_retires_only_drained_replicas(self):
        # A burst deep enough to scale up, then a lone straggler: by its
        # arrival the fleet has idle replicas and retires one.
        reqs = make_workload(16, seed=4, rate_rps=2000.0,
                             arrival="bursty", burst_size=16)
        straggler = Request("straggler", prompt_len=64, max_new_tokens=4,
                            arrival_s=1000.0)
        policy = AutoscalePolicy(max_replicas=3, scale_up_queue_depth=3)
        fleet = ServingCluster(ARCH, "mxfp4", n_replicas=1,
                               kv_token_budget=8192,
                               autoscale=policy).run(reqs + [straggler])
        kinds = [e[1] for e in fleet.autoscale_events]
        assert "scale-up" in kinds and "scale-down" in kinds
        assert len(fleet.responses) == 17
        # Retired replicas still report their results.
        assert sum(len(r.responses) for r in fleet.replica_results) == 17

    def test_router_instance_resized_back_after_run(self):
        from repro.serve import RoundRobinRouter

        router = RoundRobinRouter(1)
        reqs = make_workload(16, seed=4, rate_rps=2000.0,
                             arrival="bursty", burst_size=16)
        policy = AutoscalePolicy(max_replicas=3, scale_up_queue_depth=3)
        cluster = ServingCluster(ARCH, "mxfp4", n_replicas=1, router=router,
                                 kv_token_budget=8192, autoscale=policy)
        first = cluster.run(reqs)
        assert router.n_replicas == 1  # restored for reuse
        second = cluster.run(reqs)
        assert first.assignments == second.assignments
