"""LLM-FP4 (Liu et al., EMNLP'23) — FP4 with per-channel exponent biases.

Weights use E2M1 with a per-output-channel scale chosen by a small
exponent-bias grid search (minimizing MSE); activations use per-token
scales with the same search. This is the accuracy-relevant core of the
scheme; the paper observes it trails MXFP4 in their setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.elem import E2M1
from .base import SchemeContext

__all__ = ["LLMFP4Context", "quantize_fp4_bias_search"]


def quantize_fp4_bias_search(x: np.ndarray, axis: int, n_bias: int = 4) -> np.ndarray:
    """E2M1 quantization with a per-slice exponent-bias (scale) search."""
    x = np.asarray(x, dtype=np.float64)
    moved = np.moveaxis(x, axis, -1)
    amax = np.max(np.abs(moved), axis=-1, keepdims=True)
    safe = np.where(amax == 0, 1.0, amax)

    best = None
    best_err = None
    for k in range(n_bias):
        scale = safe / E2M1.max_normal * (2.0**-k)
        q = E2M1.quantize(moved / scale) * scale
        err = np.sum((moved - q) ** 2, axis=-1, keepdims=True)
        if best is None:
            best, best_err = q, err
        else:
            take = err < best_err
            best = np.where(take, q, best)
            best_err = np.where(take, err, best_err)
    best = np.where(amax == 0, 0.0, best)
    return np.moveaxis(best, -1, axis)


@dataclass
class LLMFP4Context(SchemeContext):
    name: str = "llm-fp4"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        xq = quantize_fp4_bias_search(x, axis=-1)  # per-token
        wq = quantize_fp4_bias_search(w, axis=0)  # per input channel
        return xq, wq
