"""Cell pricing: CostModel × the committed GPU price table → $/Mtok.

Every dollar figure in a sweep report is derived here, and only here:
the cell's scenario is rebuilt as a :class:`repro.tune.cost.CostModel`
(same scheduler, same page budget, same interconnect as the simulated
fleet), priced with :meth:`CostModel.dollars_per_mtok` against the
committed :data:`repro.tune.pricing.GPU_PRICES` table, and scaled to the
fleet — **no $/Mtok number is ever hand-entered**.

Fleet scaling is the one piece the single-GPU cost model cannot see: a
disaggregated deployment bills its prefill GPUs by the hour even though
only the decode pool emits tokens, so the per-GPU price is multiplied by
``total_gpus / n_generating``. For a unified fleet that factor is 1 —
N replicas generate N× the tokens of one and cost N× as much.

>>> from .matrix import get_matrix
>>> runs, _ = get_matrix("smoke").expand()
>>> cell = price_cell(runs[0])
>>> sorted(cell)
['dollars_per_mtok', 'fleet_gpus', 'gpu_price', 'model_tokens_per_s', 'usd_per_hour']
>>> cell["dollars_per_mtok"] > 0
True
"""

from __future__ import annotations

from ..models.zoo import ARCHS
from ..serve import get_interconnect
from ..tune.cost import CostModel
from ..tune.pricing import get_gpu_price
from .matrix import RunSpec, UNIFIED

__all__ = ["cost_model_for", "price_cell"]

GIB = 1 << 30


def cost_model_for(spec: RunSpec) -> CostModel:
    """The steady-state :class:`CostModel` matching one cell's scenario.

    Shares the cell's architecture, per-replica page budget, scheduler,
    and (for disaggregated fleets) its priced interconnect, so the
    analytic $/Mtok prices exactly the deployment the event-loop
    simulator ran.
    """
    arch = ARCHS[spec.arch]
    shape = spec.fleet_shape
    kwargs: dict = {
        "arch": arch,
        "page_budget_bytes": float(spec.page_budget_gib * GIB),
        "scheduler": spec.scheduler,
    }
    if shape.disaggregated:
        if spec.interconnect == UNIFIED:
            raise ValueError(
                f"cell {spec.cell_id} is disaggregated but has no interconnect"
            )
        kwargs["disaggregated"] = True
        kwargs["transfer"] = get_interconnect(spec.interconnect)
    return CostModel(**kwargs)


def price_cell(spec: RunSpec) -> dict:
    """Price one cell: fleet-scaled $/Mtok at the cell's TPOT SLO.

    Returns the pricing block of the cell's result payload — the
    model-side throughput, the price preset used, and the headline
    ``dollars_per_mtok`` (``inf`` when the steady state cannot meet the
    TPOT SLO: an infeasible deployment has no finite serving price).
    """
    model = cost_model_for(spec)
    price = get_gpu_price(spec.gpu_price)
    shape = spec.fleet_shape
    per_gpu = model.dollars_per_mtok(
        spec.recipe, price, tpot_slo_s=spec.tpot_slo_s
    )
    cost = model.evaluate(spec.recipe)
    return {
        "dollars_per_mtok": per_gpu * shape.total_gpus / shape.n_generating,
        "model_tokens_per_s": cost.tokens_per_s,
        "gpu_price": price.name,
        "usd_per_hour": price.usd_per_hour,
        "fleet_gpus": shape.total_gpus,
    }
