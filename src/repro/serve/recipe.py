"""`QuantRecipe`: the single deployment-configuration surface.

The paper treats format choice as a *deployment recipe*: which microscaling
format each tensor role uses (activations, weights, KV cache, LM head,
attention matmuls), how MX+ is integrated (software Algorithm 1 vs. the
Tensor-Core BCU of Section 6), and the scheme scope (full direct-cast flow
vs. the linear-only Table 7 protocol). ``QuantRecipe`` captures one such
recipe as a frozen, validated dataclass and adapts it to every consumer::

    recipe = QuantRecipe.from_name("a-mxfp4+")
    recipe.to_context()         # numeric path: repro.nn / repro.eval / repro.quant
    recipe.to_serving_config()  # timing path: repro.gpu.inference
    ServingEngine(arch, recipe) # request-level serving: repro.serve.engine

Named recipes live in a registry (``register_recipe`` / ``get_recipe``)
that replaces the old hardcoded ``repro.gpu.inference.CONFIGS`` dict;
``CONFIGS`` remains as a thin deprecated view onto this registry.

Role fields hold *format names* (strings), not format objects, so recipes
stay hashable, comparable, and trivially serializable; formats are
instantiated on adaptation via :func:`repro.core.registry.get_format`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.registry import available_formats, get_format, suggest_near_misses

__all__ = [
    "QuantRecipe",
    "register_recipe",
    "get_recipe",
    "available_recipes",
]

#: sentinel role value: inherit the role's natural default (see QuantRecipe).
AUTO = "auto"
#: role value meaning "leave this role in baseline (BF16) precision".
BF16 = "bf16"

_INTEGRATIONS = ("none", "software", "hardware")
_SCOPES = ("full", "linear-only")


def _is_format(name: str) -> bool:
    try:
        get_format(name)
    except KeyError:
        return False
    return True


@dataclass(frozen=True)
class QuantRecipe:
    """One validated serving recipe: per-role formats + integration path.

    Role fields take a format name (see ``repro.core.available_formats()``),
    ``"bf16"`` (baseline precision), or ``"auto"``:

    * ``kv="auto"`` — KV cache / attention operands follow ``act``.
    * ``lm_head="auto"`` — the LM head weight follows ``weight``;
      ``lm_head="bf16"`` leaves the head matmul unquantized.
    * ``attention="auto"`` — quantize the QK^T / PV matmuls;
      ``attention="bf16"`` leaves them in baseline precision.

    ``integration`` selects how MX+ formats reach the Tensor Cores:
    ``"software"`` (Algorithm 1: one extra sparse MMA on the activation
    operand), ``"hardware"`` (Section 6 BCU), or ``"none"``.

    ``scope="linear-only"`` restricts quantization to weight-activation
    matmuls (the Table 7 scheme-comparison protocol).

    ``layer_overrides`` makes the recipe *mixed-precision per layer*: a
    mapping from transformer-block index to a format name (or ``"bf16"``)
    that replaces both the act and weight formats for that block. It is
    normalized to a sorted tuple of ``(layer, fmt)`` pairs so the recipe
    stays frozen/hashable. ``n_layer_groups`` declares the layer space the
    indices live in: 0 means "physical layer indices of the serving
    architecture"; a positive value ``G`` means the indices address ``G``
    equal *groups* of layers — the timing model spreads group ``g`` over
    arch layers ``[g*n/G, (g+1)*n/G)``. The recipe autotuner
    (:mod:`repro.tune`) searches on a scaled-down model with ``G`` blocks
    and serves the result on the full-size architecture through exactly
    this projection.
    """

    name: str
    act: str = BF16
    weight: str = BF16
    kv: str = AUTO
    lm_head: str = AUTO
    attention: str = AUTO
    integration: str = "none"
    scope: str = "full"
    bf16_base: bool = True
    min_tile_m: int = 1  # kernel tile granularity on M (A8W4: 128)
    layer_overrides: tuple = ()  # ((layer, fmt), ...) or a dict at init
    n_layer_groups: int = 0  # layer space of the override indices (0=physical)

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("QuantRecipe.name must be a non-empty string")
        for role in ("act", "weight"):
            value = getattr(self, role)
            if value != BF16 and not _is_format(value):
                raise KeyError(
                    f"recipe {self.name!r}: unknown {role} format {value!r}"
                    f"{suggest_near_misses(value, available_formats())}"
                )
        overrides = self.layer_overrides
        if isinstance(overrides, dict):
            overrides = overrides.items()
        normalized = []
        for layer, fmt in overrides:
            layer = int(layer)
            if layer < 0:
                raise ValueError(
                    f"recipe {self.name!r}: negative layer index {layer}"
                )
            if fmt != BF16 and not _is_format(fmt):
                raise KeyError(
                    f"recipe {self.name!r}: unknown layer {layer} format "
                    f"{fmt!r}{suggest_near_misses(fmt, available_formats())}"
                )
            normalized.append((layer, str(fmt)))
        normalized.sort()
        if len({layer for layer, _ in normalized}) != len(normalized):
            raise ValueError(
                f"recipe {self.name!r}: duplicate layer in layer_overrides"
            )
        object.__setattr__(self, "layer_overrides", tuple(normalized))
        if self.n_layer_groups < 0:
            raise ValueError(
                f"recipe {self.name!r}: n_layer_groups must be >= 0"
            )
        if self.n_layer_groups and normalized:
            top = normalized[-1][0]
            if top >= self.n_layer_groups:
                raise ValueError(
                    f"recipe {self.name!r}: layer override index {top} is "
                    f"outside the declared {self.n_layer_groups} layer groups"
                )
        if self.kv == BF16:
            raise ValueError(
                f"recipe {self.name!r}: kv='bf16' is ambiguous — use "
                "attention='bf16' to keep attention matmuls in baseline "
                "precision, or kv='auto' to follow the activation format"
            )
        if self.kv != AUTO and not _is_format(self.kv):
            raise KeyError(
                f"recipe {self.name!r}: unknown kv format {self.kv!r}"
                f"{suggest_near_misses(self.kv, available_formats())}"
            )
        if self.lm_head not in (AUTO, BF16) and not _is_format(self.lm_head):
            raise KeyError(
                f"recipe {self.name!r}: unknown lm_head format {self.lm_head!r}"
                f"{suggest_near_misses(self.lm_head, available_formats())}"
            )
        if self.attention not in (AUTO, BF16):
            raise ValueError(
                f"recipe {self.name!r}: attention must be 'auto' or 'bf16', "
                f"got {self.attention!r} (use kv=<fmt> to pick the KV format)"
            )
        if self.integration not in _INTEGRATIONS:
            raise ValueError(
                f"recipe {self.name!r}: integration must be one of "
                f"{_INTEGRATIONS}, got {self.integration!r}"
            )
        mxplus_roles = self.act + self.weight + "".join(
            fmt for _, fmt in self.layer_overrides
        )
        if self.lm_head not in (AUTO, BF16):
            mxplus_roles += self.lm_head
        if self.integration != "none" and "+" not in mxplus_roles:
            raise ValueError(
                f"recipe {self.name!r}: integration={self.integration!r} "
                "requires an MX+ family format on the act or weight role"
            )
        if self.scope not in _SCOPES:
            raise ValueError(
                f"recipe {self.name!r}: scope must be one of {_SCOPES}, "
                f"got {self.scope!r}"
            )
        if self.min_tile_m < 1:
            raise ValueError(
                f"recipe {self.name!r}: min_tile_m must be >= 1, "
                f"got {self.min_tile_m}"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def from_name(spec: str) -> "QuantRecipe":
        """Resolve a paper-style name into a recipe (case-insensitive).

        * a registered recipe name (``"a-mxfp4+"``, ``"a8w4"``, ...);
        * ``"baseline"`` / ``"bf16"``: no block quantization;
        * ``"a-<fmt>+"``: MX+ activations over base-format weights under
          software integration (the paper's A-MXFP4+ configuration);
        * ``"a:<fmt>,w:<fmt>[,kv:<fmt>]"``: an explicit per-role mix;
        * any plain format name: that format on both A and W (MX+/MX++
          formats imply hardware integration).

        Raises ``KeyError`` with near-miss suggestions for unknown names.

        >>> QuantRecipe.from_name("a-mxfp4+").weight
        'mxfp4'
        >>> QuantRecipe.from_name("mxfp4+").integration
        'hardware'
        >>> QuantRecipe.from_name("a:mxfp8,w:mxfp4").act
        'mxfp8'
        >>> QuantRecipe.from_name("baseline") == QuantRecipe.from_name("bf16")
        True
        """
        key = str(spec).strip().lower()
        if key == "baseline":
            key = BF16
        if key in _RECIPES:
            return _RECIPES[key]
        if ":" in key:
            return QuantRecipe._from_role_spec(key)
        if key.startswith("a-") and key.endswith("+") and not key.endswith("++"):
            fmt = key[2:]
            base = fmt[:-1]
            if _is_format(fmt) and _is_format(base):
                return QuantRecipe(
                    name=key, act=fmt, weight=base, integration="software"
                )
        if _is_format(key):
            # MX+/MX++ family formats imply Section 6 hardware integration;
            # membership is a "+" anywhere in the name so block-size
            # variants ("mxfp4+-k64") classify like their parents.
            integration = "hardware" if "+" in key else "none"
            return QuantRecipe(name=key, act=key, weight=key, integration=integration)
        candidates = sorted(set(available_recipes()) | set(available_formats()))
        raise KeyError(
            f"unknown recipe or format {spec!r}{suggest_near_misses(key, candidates)} "
            f"(available recipes: {', '.join(available_recipes())}; "
            f"formats: {', '.join(available_formats())})"
        )

    @staticmethod
    def _from_role_spec(key: str) -> "QuantRecipe":
        """Parse an explicit ``"a:<fmt>,w:<fmt>[,kv:<fmt>]"`` mix."""
        roles = {"a": BF16, "w": BF16, "kv": AUTO}
        for part in key.split(","):
            if ":" not in part:
                raise KeyError(f"malformed role spec {part!r} in {key!r}")
            role, fmt = part.split(":", 1)
            if role not in roles:
                raise KeyError(
                    f"unknown role {role!r} in {key!r}; roles: a, w, kv"
                )
            roles[role] = fmt
        return QuantRecipe(name=key, act=roles["a"], weight=roles["w"], kv=roles["kv"])

    def with_(self, **kwargs) -> "QuantRecipe":
        """A modified copy (``dataclasses.replace`` with validation).

        >>> get_recipe("mxfp4").with_(kv="mxfp8").kv
        'mxfp8'
        """
        return replace(self, **kwargs)

    @property
    def overrides(self) -> dict[int, str]:
        """``layer_overrides`` as a plain ``{layer: fmt}`` dict.

        >>> get_recipe("mxfp4").with_(layer_overrides={1: "mxfp4+"}).overrides
        {1: 'mxfp4+'}
        """
        return dict(self.layer_overrides)

    def layer_format(self, layer: int) -> str:
        """The act/weight format layer ``layer`` runs under (override or
        the recipe-wide activation/weight roles — which must agree for a
        single answer; mixed global roles return the act format)."""
        return self.overrides.get(layer, self.act)

    def spread_overrides(self, n_layers: int) -> dict[int, str]:
        """Project group-indexed overrides onto ``n_layers`` physical layers.

        With ``n_layer_groups == G``, group ``g`` covers layers
        ``[g*n/G, (g+1)*n/G)`` — the convention the timing model uses to
        serve a recipe tuned on a ``G``-block stand-in model on a
        full-size architecture. Physical-indexed recipes come back as-is.

        >>> r = get_recipe("mxfp4").with_(layer_overrides={1: "mxfp4+"},
        ...                               n_layer_groups=2)
        >>> r.spread_overrides(4)
        {2: 'mxfp4+', 3: 'mxfp4+'}
        """
        from ..gpu.inference import spread_layer_overrides  # single source

        return spread_layer_overrides(
            self.layer_overrides, self.n_layer_groups, n_layers
        )

    @property
    def kv_format(self) -> str:
        """The resolved KV-cache storage format name.

        ``kv="auto"`` follows the activation format (the paper's serving
        protocol stores K/V in the activation's microscaling format);
        otherwise the explicit override wins. Used by
        :func:`repro.serve.kvcache.kv_token_bytes` to turn a recipe into
        KV bytes/token, and hence page sizing.

        >>> get_recipe("mxfp4+").kv_format
        'mxfp4+'
        >>> get_recipe("bf16").kv_format
        'bf16'
        >>> QuantRecipe.from_name("a:mxfp8,w:mxfp4,kv:mxfp4").kv_format
        'mxfp4'
        """
        return self.kv if self.kv != AUTO else self.act

    # ------------------------------------------------------------------
    # adapters: the one recipe object feeds both repo paths
    # ------------------------------------------------------------------
    def to_context(self):
        """Adapt to the numeric path: a :class:`repro.nn.quantize.QuantContext`.

        Layer overrides become per-layer derived contexts: block ``i`` of a
        :class:`repro.nn.transformer.TransformerLM` picks them up through
        ``QuantContext.layer_context(i)``. With ``kv="auto"`` an overridden
        layer's attention operands follow that layer's format (the KV cache
        is stored per layer); an explicit ``kv=`` pins every layer.
        """
        from ..nn.quantize import QuantContext

        full = self.scope == "full"
        head_override = (
            None if self.lm_head in (AUTO, BF16) else get_format(self.lm_head)
        )
        base = QuantContext(
            act=None if self.act == BF16 else get_format(self.act),
            weight=None if self.weight == BF16 else get_format(self.weight),
            kv=None if self.kv == AUTO else get_format(self.kv),
            lm_head=head_override,
            quantize_lm_head=full and self.lm_head != BF16,
            quantize_attention=full and self.attention != BF16,
            bf16_base=self.bf16_base,
            name=self.name,
            n_layer_groups=self.n_layer_groups,
        )
        for layer, fmt in self.layer_overrides:
            layer_fmt = None if fmt == BF16 else get_format(fmt)
            base.layer_overrides[layer] = base.with_(
                act=layer_fmt,
                weight=layer_fmt,
                name=f"{self.name}@L{layer}",
                layer_overrides={},
                n_layer_groups=0,
            )
        return base

    def to_serving_config(self):
        """Adapt to the timing path: a :class:`repro.gpu.inference.ServingConfig`.

        ``kv="auto"`` is passed through as the empty ``kv_fmt`` sentinel
        (not eagerly resolved to the base activation format) so that
        ``step_time`` can let an overridden layer's attention operands
        follow that layer's own format — mirroring :meth:`to_context`.
        """
        from ..gpu.inference import ServingConfig

        return ServingConfig(
            name=self.name,
            act_fmt=self.act,
            weight_fmt=self.weight,
            mxplus_software=self.integration == "software",
            mxplus_hardware=self.integration == "hardware",
            min_tile_m=self.min_tile_m,
            kv_fmt="" if self.kv == AUTO else self.kv,
            lm_head_fmt=self.weight if self.lm_head == AUTO else self.lm_head,
            layer_overrides=self.layer_overrides,
            n_layer_groups=self.n_layer_groups,
        )

    # ------------------------------------------------------------------
    # serialization (tuned-recipe frontiers persist recipes as JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict; exact inverse of :meth:`from_dict`.

        >>> QuantRecipe.from_dict(get_recipe("a8w4").to_dict()) == get_recipe("a8w4")
        True
        """
        out = {
            "name": self.name,
            "act": self.act,
            "weight": self.weight,
            "kv": self.kv,
            "lm_head": self.lm_head,
            "attention": self.attention,
            "integration": self.integration,
            "scope": self.scope,
            "bf16_base": self.bf16_base,
            "min_tile_m": self.min_tile_m,
        }
        if self.layer_overrides:
            out["layer_overrides"] = {
                str(layer): fmt for layer, fmt in self.layer_overrides
            }
        if self.n_layer_groups:
            out["n_layer_groups"] = self.n_layer_groups
        return out

    @staticmethod
    def from_dict(payload: dict) -> "QuantRecipe":
        """Rebuild a recipe from :meth:`to_dict` output."""
        data = dict(payload)
        overrides = data.pop("layer_overrides", {})
        data["layer_overrides"] = tuple(
            sorted((int(k), v) for k, v in dict(overrides).items())
        )
        return QuantRecipe(**data)


# ----------------------------------------------------------------------
# recipe registry (replaces repro.gpu.inference.CONFIGS)
# ----------------------------------------------------------------------
_RECIPES: dict[str, QuantRecipe] = {}


def register_recipe(recipe: QuantRecipe, overwrite: bool = False) -> QuantRecipe:
    """Register a named recipe; raises on duplicates unless ``overwrite``."""
    key = recipe.name.lower()
    if key in _RECIPES and not overwrite:
        raise ValueError(
            f"recipe {recipe.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _RECIPES[key] = recipe
    return recipe


def available_recipes() -> list[str]:
    """Sorted names of all registered recipes."""
    return sorted(_RECIPES)


def get_recipe(name: str) -> QuantRecipe:
    """Look up a registered recipe; raises ``KeyError`` with suggestions."""
    key = name.lower()
    if key == "baseline":
        key = BF16
    if key not in _RECIPES:
        raise KeyError(
            f"unknown recipe {name!r}{suggest_near_misses(key, available_recipes())} "
            f"(available: {', '.join(available_recipes())})"
        )
    return _RECIPES[key]


# The serving configurations evaluated in Figures 11-13, plus the wider MX
# ladder. Names match the paper's labels (A-MXFP4+ = software integration;
# plain MXFP4+/MXFP4++ = Section 6 hardware integration).
for _recipe in (
    QuantRecipe("bf16"),
    QuantRecipe("mxfp4", act="mxfp4", weight="mxfp4"),
    QuantRecipe("mxfp6", act="mxfp6", weight="mxfp6"),
    QuantRecipe("mxfp8", act="mxfp8", weight="mxfp8"),
    QuantRecipe("a-mxfp4+", act="mxfp4+", weight="mxfp4", integration="software"),
    QuantRecipe("a-mxfp6+", act="mxfp6+", weight="mxfp6", integration="software"),
    QuantRecipe("a-mxfp8+", act="mxfp8+", weight="mxfp8", integration="software"),
    QuantRecipe("mxfp4+", act="mxfp4+", weight="mxfp4+", integration="hardware"),
    QuantRecipe("mxfp6+", act="mxfp6+", weight="mxfp6+", integration="hardware"),
    QuantRecipe("mxfp8+", act="mxfp8+", weight="mxfp8+", integration="hardware"),
    QuantRecipe("mxfp4++", act="mxfp4++", weight="mxfp4++", integration="hardware"),
    # CUTLASS ships a single M=128 tile shape for A8W4 (Section 7.4), so
    # decode (M = batch) pays heavy tile padding.
    QuantRecipe("a8w4", act="mxfp8", weight="mxfp4", min_tile_m=128),
):
    register_recipe(_recipe)
del _recipe
