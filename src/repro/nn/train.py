"""Language-model training loop for the scaled-down model zoo."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .optim import Adam, clip_grad_norm
from .transformer import TransformerLM

__all__ = ["TrainResult", "train_lm"]


@dataclass
class TrainResult:
    losses: list
    final_loss: float
    steps: int


def train_lm(
    model: TransformerLM,
    corpus: np.ndarray,
    steps: int = 300,
    batch_size: int = 16,
    seq_len: int = 64,
    lr: float = 3e-3,
    seed: int = 0,
    log_every: int = 0,
) -> TrainResult:
    """Train ``model`` on a 1-D token ``corpus`` with Adam + grad clipping."""
    rng = np.random.default_rng(seed)
    opt = Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    n = len(corpus) - seq_len - 1
    for step in range(steps):
        starts = rng.integers(0, n, size=batch_size)
        batch = np.stack([corpus[s : s + seq_len + 1] for s in starts])
        opt.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        clip_grad_norm(model.parameters(), 1.0)
        opt.step()
        losses.append(loss.item())
        if log_every and (step + 1) % log_every == 0:  # pragma: no cover
            print(f"step {step + 1}/{steps} loss {loss.item():.4f}")
    return TrainResult(losses=losses, final_loss=losses[-1], steps=steps)
