"""Table 2: direct-cast zero-shot task accuracy across six models and the
full format ladder."""

from _util import print_table, run_once, save_result

from repro.eval import accuracy_table

FORMATS = [
    "baseline",
    "mxfp8+", "mxfp8",
    "mxfp6+", "mxfp6",
    "mxfp4++", "mxfp4+", "a-mxfp4+", "mxfp4",
]
MODELS = [
    "opt-66b-sim",
    "llama-3.1-8b-sim",
    "llama-3.1-70b-sim",
    "mistral-7b-sim",
    "phi-4-14b-sim",
    "qwen-2.5-14b-sim",
]


def test_tab02(benchmark, zoo, harness_tasks):
    def run():
        return {m: accuracy_table(zoo[m], harness_tasks, FORMATS) for m in MODELS}

    table = run_once(benchmark, run)
    save_result("tab02_tasks", table)
    for m in MODELS:
        print_table(f"Table 2 ({m})", table[m], "{:.1f}")

    def avg(m, fmt):
        return sum(table[m][fmt].values()) / len(table[m][fmt])

    for m in MODELS:
        # The headline: MXFP4+ beats MXFP4 on average accuracy, and the
        # high-bit formats track the baseline.
        assert avg(m, "mxfp4+") >= avg(m, "mxfp4") - 0.5
        assert avg(m, "mxfp8") >= avg(m, "baseline") - 6.0
    # On the outlier-heavy models the MXFP4 -> MXFP4+ gap is large.
    assert avg("opt-66b-sim", "mxfp4+") > avg("opt-66b-sim", "mxfp4")
    assert avg("llama-3.1-8b-sim", "mxfp4+") > avg("llama-3.1-8b-sim", "mxfp4")
