"""Documentation checks: doctests over the public `repro.serve` and
`repro.tune` APIs and a markdown link check over README + docs/.

Runs in tier-1 and as the CI docs job, so examples in docstrings stay
runnable and links stay unbroken.
"""

import doctest
import re
from pathlib import Path

import pytest

import repro.serve
import repro.serve.cluster
import repro.serve.engine
import repro.serve.kvcache
import repro.serve.recipe
import repro.serve.sched
import repro.serve.workload
import repro.tune.cost
import repro.tune.frontier
import repro.tune.search
import repro.tune.sensitivity

REPO = Path(__file__).resolve().parents[1]

DOCTEST_MODULES = [
    repro.serve.recipe,
    repro.serve.kvcache,
    repro.serve.engine,
    repro.serve.sched,
    repro.serve.workload,
    repro.serve.cluster,
    repro.tune.frontier,
    repro.tune.cost,
    repro.tune.search,
    repro.tune.sensitivity,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_serve_doctests(module):
    results = doctest.testmod(module, verbose=False, report=True)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def _markdown_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return files


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("md", _markdown_files(), ids=lambda p: p.name)
def test_markdown_links_resolve(md):
    """Every relative markdown link must point at an existing file."""
    broken = []
    for target in _LINK.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue  # intra-page anchor
        if not (md.parent / path).exists():
            broken.append(target)
    assert not broken, f"broken links in {md.relative_to(REPO)}: {broken}"


def test_experiments_md_exists_and_indexes_every_benchmark():
    """docs/EXPERIMENTS.md is generated and must cover all benchmarks."""
    text = (REPO / "docs" / "EXPERIMENTS.md").read_text()
    for bench in sorted((REPO / "benchmarks").glob("test_*.py")):
        assert f"benchmarks/{bench.name}" in text, (
            f"{bench.name} missing from docs/EXPERIMENTS.md — add it to "
            "BENCHMARK_INDEX and rerun benchmarks/make_experiments_md.py"
        )


def test_architecture_md_names_real_modules():
    """The architecture walkthrough must not drift from the source tree."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    for mod in re.findall(r"`(?:core|gpu|nn|eval|serve|models|data)/\w+\.py`", text):
        rel = mod.strip("`")
        assert (REPO / "src" / "repro" / rel).exists(), f"ARCHITECTURE.md names missing module {rel}"
