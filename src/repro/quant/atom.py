"""Atom (Zhao et al., MLSys'24) — mixed INT4/INT8 with channel reordering.

Channels are reordered by activation magnitude; the top ``n_outlier``
channels are kept in INT8 while the rest use group-wise INT4, both with
floating-point scales. Reordering makes the outlier set contiguous so
hardware kernels stay regular.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.intquant import quantize_int_groupwise
from .base import SchemeContext

__all__ = ["AtomContext"]


@dataclass
class AtomContext(SchemeContext):
    n_outlier: int = 16
    group: int = 32
    name: str = "atom"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        amax = np.max(np.abs(x.reshape(-1, x.shape[-1])), axis=0)
        order = np.argsort(-amax, kind="stable")
        inv = np.argsort(order)

        x_r = x[..., order]
        w_r = w[order, :]
        k = self.n_outlier
        xq = np.concatenate(
            [
                quantize_int_groupwise(x_r[..., :k], 8, group=-1, axis=-1),
                quantize_int_groupwise(x_r[..., k:], 4, group=self.group, axis=-1),
            ],
            axis=-1,
        )
        wq = np.concatenate(
            [
                quantize_int_groupwise(w_r[:k, :], 8, group=-1, axis=0),
                quantize_int_groupwise(w_r[k:, :], 4, group=self.group, axis=0),
            ],
            axis=0,
        )
        return xq[..., inv], wq[inv, :]
