"""Functional NN ops composed from the autodiff primitives.

Softmax follows the paper's computation flow: it is the one op kept in FP32
even under the BF16 baseline, so it takes and returns plain tensors with a
numerically stable max-subtraction.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "rmsnorm",
    "layernorm",
    "gelu",
    "silu",
    "causal_mask",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``.

    ``logits``: (..., vocab); ``targets``: (...) integer array.
    """
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape(-1, logits.shape[-1])
    t = np.asarray(targets).reshape(-1)
    picked = flat[np.arange(t.size), t]
    return -picked.mean()


def rmsnorm(x: Tensor, gain: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square layer norm with learnable per-channel gain."""
    ms = (x * x).mean(axis=-1, keepdims=True)
    return x * (ms + eps).pow(-0.5) * gain


def layernorm(x: Tensor, gain: Tensor, bias: Tensor, eps: float = 1e-6) -> Tensor:
    mu = x.mean(axis=-1, keepdims=True)
    var = ((x - mu) * (x - mu)).mean(axis=-1, keepdims=True)
    return (x - mu) * (var + eps).pow(-0.5) * gain + bias


def gelu(x: Tensor) -> Tensor:
    """tanh-approximated GELU (the common DNN kernel form)."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = (x + x * x * x * 0.044715) * c
    return x * (inner.tanh() + 1.0) * 0.5


def silu(x: Tensor) -> Tensor:
    return x * x.sigmoid()


def causal_mask(seq_len: int) -> np.ndarray:
    """Boolean (seq, seq) mask: True where attention is allowed."""
    return np.tril(np.ones((seq_len, seq_len), dtype=bool))
