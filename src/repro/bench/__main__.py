"""``python -m repro.bench`` — sweep CLI: plan / run / report / list / freshness.

Typical session::

    python -m repro.bench plan --matrix canonical --out sweeps
    python -m repro.bench run  --matrix canonical --out sweeps --name nightly
    python -m repro.bench report sweeps/nightly
    python -m repro.bench list --out sweeps
    python -m repro.bench freshness   # committed BENCH_sweep.json vs seed-0 regen

``run`` plans (or resumes) and executes in one step, then writes
``report.md`` next to the manifests; re-invoking it on the same sweep
dir skips completed cells. ``freshness`` is the CI gate: it regenerates
the canonical matrix into a temp dir and fails (exit 1) if the
deterministic sections of ``benchmarks/results/BENCH_sweep.json`` no
longer match what the code produces.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from .matrix import available_matrices, get_matrix
from .planner import list_sweeps, plan_sweep
from .report import aggregate, canonical_payload, dump_payload, render_report
from .runner import run_sweep

REPO_ROOT = Path(__file__).resolve().parents[3]
BENCH_SWEEP_JSON = REPO_ROOT / "benchmarks" / "results" / "BENCH_sweep.json"
REPORT_MD = "report.md"


def _cmd_plan(args) -> int:
    plan = plan_sweep(get_matrix(args.matrix), args.out, name=args.name)
    print(f"planned {len(plan.runs)} run(s) in {plan.root}")
    for spec in plan.runs:
        print(f"  {spec.cell_id}")
    for skip in plan.skipped:
        print(f"  skipped {'/'.join(skip['combo'])}: {skip['reason']}")
    return 0


def _cmd_run(args) -> int:
    if args.sweep_dir:
        root = Path(args.sweep_dir)
    else:
        root = plan_sweep(get_matrix(args.matrix), args.out, name=args.name).root
    summary = run_sweep(
        root, max_runs=args.max_runs, progress=print, trace=args.trace
    )
    payload = aggregate(root)
    (root / REPORT_MD).write_text(render_report(payload))
    print(
        f"{summary['executed']} executed, {summary['skipped']} skipped, "
        f"{summary['failed']} failed of {summary['planned']} planned "
        f"({summary['wall_clock_s']:.2f}s) -> {root / REPORT_MD}"
    )
    return 1 if summary["failed"] else 0


def _cmd_report(args) -> int:
    payload = aggregate(args.sweep_dir)
    if args.json:
        print(dump_payload(payload), end="")
    else:
        print(render_report(payload), end="")
    return 0


def _cmd_list(args) -> int:
    sweeps = list_sweeps(args.out)
    if not sweeps:
        print(f"no sweeps under {args.out}")
        return 0
    for entry in sweeps:
        statuses = ", ".join(
            f"{n} {s}" for s, n in sorted(entry["statuses"].items())
        )
        print(
            f"{entry['sweep']}: matrix={entry['matrix']} "
            f"runs={entry['runs']} ({statuses})"
        )
    return 0


def _cmd_freshness(args) -> int:
    if not BENCH_SWEEP_JSON.exists():
        print(f"missing committed artifact: {BENCH_SWEEP_JSON}")
        return 1
    committed = canonical_payload(json.loads(BENCH_SWEEP_JSON.read_text()))
    with tempfile.TemporaryDirectory() as tmp:
        root = plan_sweep(get_matrix("canonical"), tmp, name="freshness").root
        run_sweep(root)
        regenerated = canonical_payload(aggregate(root))
    a = json.dumps(committed, sort_keys=True)
    b = json.dumps(regenerated, sort_keys=True)
    if a != b:
        print(
            "STALE: benchmarks/results/BENCH_sweep.json no longer matches a "
            "seed-0 regeneration of the canonical matrix.\n"
            "Regenerate it with:\n"
            "  PYTHONPATH=src python -m pytest benchmarks/test_bench_sweep.py -q"
        )
        return 1
    print("fresh: BENCH_sweep.json matches seed-0 regeneration")
    return 0


def main(argv=None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Sweep-matrix orchestration: plan, run (resumable), report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    matrices = sorted(available_matrices())

    p = sub.add_parser("plan", help="expand a matrix into a sweep dir")
    p.add_argument("--matrix", default="canonical", choices=matrices)
    p.add_argument("--out", default="sweeps", help="parent dir for sweep dirs")
    p.add_argument("--name", default=None, help="stable sweep dir name")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("run", help="plan (or resume) and execute a sweep")
    p.add_argument("sweep_dir", nargs="?", default=None,
                   help="existing sweep dir to resume (else plan fresh)")
    p.add_argument("--matrix", default="canonical", choices=matrices)
    p.add_argument("--out", default="sweeps")
    p.add_argument("--name", default=None)
    p.add_argument("--max-runs", type=int, default=None,
                   help="stop after N executions (sweep stays resumable)")
    p.add_argument("--trace", action="store_true",
                   help="write a Perfetto trace per executed cell "
                        "(runs/<cell_id>/trace.json; linked in report.md)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("report", help="render a sweep dir's markdown report")
    p.add_argument("sweep_dir")
    p.add_argument("--json", action="store_true",
                   help="print the aggregated JSON payload instead")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("list", help="list sweep dirs and their statuses")
    p.add_argument("--out", default="sweeps")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser(
        "freshness",
        help="fail if committed BENCH_sweep.json is stale vs seed-0 regen",
    )
    p.set_defaults(func=_cmd_freshness)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
