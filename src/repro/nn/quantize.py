"""Quantized-inference context: which format each matmul operand uses.

The paper's direct-cast flow (Section 7.1): all tensors involved in any dot
product — activations, weights, the language-modeling head, and the KV
cache — are cast to the chosen format right before the matmul; element-wise
ops stay in BF16 and softmax in FP32. ``QuantContext`` encodes one such
configuration, e.g.::

    QuantContext.named("mxfp4")            # A-MXFP4, W-MXFP4
    QuantContext.named("a-mxfp4+")         # MXFP4+ activations, MXFP4 weights
    QuantContext(act=None, weight=fmt)     # weight-only quantization
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.blocks import BlockFormat
from ..core.registry import get_format
from .bf16 import bf16_round

__all__ = ["QuantContext", "BASELINE"]


@dataclass
class QuantContext:
    """Per-tensor-role format assignment for quantized inference.

    ``None`` for a role means "baseline precision" (BF16 rounding when
    ``bf16_base`` is set, else exact float64).
    """

    act: BlockFormat | None = None
    weight: BlockFormat | None = None
    kv: BlockFormat | None = None  # defaults to act when left None and act set
    bf16_base: bool = True
    quantize_lm_head: bool = True
    quantize_attention: bool = True  # QK^T and PV matmuls (incl. KV cache)
    name: str = "baseline"
    # Optional channel permutations for the query/key projections keyed by
    # layer index (Section 8.3 reordering); applied inside attention.
    qk_permutations: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @staticmethod
    def named(spec: str) -> "QuantContext":
        """Build a context from a paper-style name.

        * ``"baseline"`` / ``"bf16"``: no block quantization.
        * ``"mxfp4"``, ``"mxfp6+"``, ...: the format for both A and W.
        * ``"a-mxfp4+"``: MXFP4+ activations, MXFP4 weights (A-MXFP4+).
        * ``"a:<fmt>,w:<fmt>"``: explicit mix, e.g. ``"a:bf16,w:mxfp4"``.
        """
        s = spec.lower()
        if s in ("baseline", "bf16"):
            return QuantContext(name="baseline")
        if s.startswith("a:") or ",w:" in s:
            parts = dict(p.split(":", 1) for p in s.split(","))
            act = None if parts.get("a", "bf16") == "bf16" else get_format(parts["a"])
            wname = parts.get("w", "bf16")
            weight = None if wname == "bf16" else get_format(wname)
            return QuantContext(act=act, weight=weight, name=spec)
        if s.startswith("a-") and s.endswith("+"):
            base = s[2:-1]  # "a-mxfp4+" -> plain "mxfp4" for weights
            return QuantContext(
                act=get_format(s[2:]), weight=get_format(base), name=spec
            )
        fmt_a = get_format(s)
        fmt_w = get_format(s)
        return QuantContext(act=fmt_a, weight=fmt_w, name=spec)

    def with_(self, **kwargs) -> "QuantContext":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def _base(self, x: np.ndarray) -> np.ndarray:
        return bf16_round(x) if self.bf16_base else x

    def quantize_act(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Quantize a matmul activation operand along its reduction axis."""
        if self.act is None:
            return self._base(x)
        return self.act.quantize_dequantize(self._base(x), axis=axis)

    def quantize_weight(self, w: np.ndarray, axis: int = 0) -> np.ndarray:
        """Quantize a weight operand along its reduction axis (input dim)."""
        if self.weight is None:
            return self._base(w)
        return self.weight.quantize_dequantize(self._base(w), axis=axis)

    def quantize_kv(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Quantize a KV-cache / attention operand."""
        if not self.quantize_attention:
            return self._base(x)
        fmt = self.kv if self.kv is not None else self.act
        if fmt is None:
            return self._base(x)
        return fmt.quantize_dequantize(self._base(x), axis=axis)

    def quantize_matmul_pair(
        self, x: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Joint hook for one ``x @ w`` matmul (x: (..., K), w: (K, N)).

        The default treats the operands independently. Schemes that
        co-transform the pair — SmoothQuant's scale migration, QuaRot's
        rotation, AWQ's weight scaling — override this in
        :mod:`repro.quant` so the migration stays mathematically paired.
        """
        return self.quantize_act(x, axis=-1), self.quantize_weight(w, axis=0)


#: The BF16 baseline configuration (B in Figure 2).
BASELINE = QuantContext()
