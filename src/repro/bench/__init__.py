"""repro.bench — declarative sweep matrix → planner → resumable runner → reports.

The reproduction's orchestration layer. A sweep is declared once as a
:class:`~repro.bench.matrix.SweepMatrix` (axes: quantization recipes,
schedulers, interconnects, fleet shapes, workload presets, plus one
seed), expanded into deterministic :class:`~repro.bench.matrix.RunSpec`
cells with stable content-hashed ids, planned into a sweep directory
(one ``manifest.json`` per cell), executed resumably against the
virtual-time serving simulator, priced through
:class:`~repro.tune.cost.CostModel` × the committed GPU price table,
and rendered as a markdown report with per-axis pivots and a
cheapest-at-SLO winner.

Pipeline (also the ``python -m repro.bench`` subcommands)::

    matrix ──expand──▶ planner ──manifests──▶ runner ──aggregate──▶ report
    (plan)                                    (run)                 (report)

Everything downstream of the matrix is a pure function of it at a fixed
seed: interrupting a sweep and re-invoking it skips completed cells and
reproduces the uninterrupted sweep's report byte for byte.
"""

from .matrix import (
    CANONICAL,
    SMOKE,
    FleetShape,
    RunSpec,
    SweepMatrix,
    available_matrices,
    available_workloads,
    build_workload,
    get_matrix,
)
from .planner import (
    SweepPlan,
    list_sweeps,
    load_plan,
    plan_sweep,
    read_manifest,
    write_manifest,
)
from .pricing import cost_model_for, price_cell
from .report import (
    aggregate,
    canonical_payload,
    dump_payload,
    fmt_value,
    markdown_table,
    render_report,
    report_sweep,
)
from .runner import execute_run, run_sweep

__all__ = [
    "SweepMatrix",
    "RunSpec",
    "FleetShape",
    "CANONICAL",
    "SMOKE",
    "available_matrices",
    "available_workloads",
    "build_workload",
    "get_matrix",
    "SweepPlan",
    "plan_sweep",
    "load_plan",
    "list_sweeps",
    "read_manifest",
    "write_manifest",
    "cost_model_for",
    "price_cell",
    "execute_run",
    "run_sweep",
    "aggregate",
    "canonical_payload",
    "render_report",
    "report_sweep",
    "dump_payload",
    "fmt_value",
    "markdown_table",
]
