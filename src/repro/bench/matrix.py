"""Declarative sweep matrices: a validated grid of serving scenarios.

A :class:`SweepMatrix` is the single declarative front door to every
scenario the simulator supports: it crosses **recipes** (named
:class:`~repro.serve.QuantRecipe` configurations — the same move as
NVIDIA's "recipes for pre-training with MXFP8": format choices become
named, sweepable objects), **schedulers**, **interconnects**,
**fleet shapes**, and **workload presets** into a deduplicated list of
frozen :class:`RunSpec` cells with stable ids. Everything downstream
(:mod:`~repro.bench.planner`, :mod:`~repro.bench.runner`,
:mod:`~repro.bench.report`) keys off those ids, so a sweep can be
interrupted, resumed, and re-rendered without ever re-deriving which
cell is which.

Expansion is *normalizing*: a unified (colocated) fleet has no
prefill→decode link, so its interconnect axis value collapses to
``"none"`` and the duplicate cells fold together; combinations the
simulator rejects (chunked prefill on a disaggregated decode pool, a
disaggregated fleet with no link) are dropped deterministically and
reported, never silently.

>>> matrix = get_matrix("smoke")
>>> runs, skipped = matrix.expand()
>>> len(runs), len(skipped)
(4, 0)
>>> runs[0].cell_id == matrix.expand()[0][0].cell_id  # stable ids
True
>>> FleetShape.parse("2p4d").total_gpus
6
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass

from ..models.zoo import ARCHS
from ..serve import (
    INTERCONNECTS,
    QuantRecipe,
    available_schedulers,
    chat_workload,
    long_prompt_workload,
    make_workload,
)
from ..tune.pricing import get_gpu_price

__all__ = [
    "FleetShape",
    "RunSpec",
    "SweepMatrix",
    "WORKLOADS",
    "available_workloads",
    "build_workload",
    "MATRICES",
    "available_matrices",
    "get_matrix",
]

#: Interconnect axis value meaning "colocated — no prefill→decode link".
UNIFIED = "none"


@dataclass(frozen=True)
class FleetShape:
    """A fleet-shape axis value: ``"<N>r"`` unified or ``"<P>p<D>d`` pools.

    >>> FleetShape.parse("2r")
    FleetShape(n_replicas=2, n_prefill=0, n_decode=0)
    >>> FleetShape.parse("1p2d").disaggregated
    True
    >>> FleetShape.parse("3x")
    Traceback (most recent call last):
        ...
    ValueError: unknown fleet shape '3x' (use '<N>r' or '<P>p<D>d')
    """

    n_replicas: int = 1
    n_prefill: int = 0
    n_decode: int = 0

    @classmethod
    def parse(cls, label: str) -> "FleetShape":
        """Parse a fleet label (``"4r"``, ``"2p2d"``) into a shape."""
        m = re.fullmatch(r"(\d+)r", label)
        if m:
            n = int(m.group(1))
            if n < 1:
                raise ValueError("fleet needs at least one replica")
            return cls(n_replicas=n)
        m = re.fullmatch(r"(\d+)p(\d+)d", label)
        if m:
            p, d = int(m.group(1)), int(m.group(2))
            if p < 1 or d < 1:
                raise ValueError("disaggregated fleet needs >=1 of each pool")
            return cls(n_replicas=p + d, n_prefill=p, n_decode=d)
        raise ValueError(
            f"unknown fleet shape {label!r} (use '<N>r' or '<P>p<D>d')"
        )

    @property
    def disaggregated(self) -> bool:
        """Whether this shape splits prefill and decode pools."""
        return self.n_prefill > 0

    @property
    def total_gpus(self) -> int:
        """GPUs billed by the hour while this fleet runs."""
        return self.n_replicas

    @property
    def n_generating(self) -> int:
        """Replicas that emit output tokens (decode pool, or everyone)."""
        return self.n_decode if self.disaggregated else self.n_replicas

    @property
    def label(self) -> str:
        """The canonical axis string this shape round-trips to.

        >>> FleetShape.parse("1p2d").label
        '1p2d'
        """
        if self.disaggregated:
            return f"{self.n_prefill}p{self.n_decode}d"
        return f"{self.n_replicas}r"


#: Workload preset registry: name -> seeded Request-list factory.
WORKLOADS: dict[str, object] = {
    "chat": lambda n, seed: chat_workload(n, seed=seed),
    "steady": lambda n, seed: make_workload(
        n, seed=seed, arrival="poisson", rate_rps=20.0
    ),
    "bursty": lambda n, seed: make_workload(
        n, seed=seed, arrival="bursty", rate_rps=40.0, burst_size=8
    ),
    "long-prompt": lambda n, seed: long_prompt_workload(n, seed=seed),
}


def available_workloads() -> list[str]:
    """Sorted names of the sweepable workload presets.

    >>> available_workloads()
    ['bursty', 'chat', 'long-prompt', 'steady']
    """
    return sorted(WORKLOADS)


def build_workload(preset: str, n: int, seed: int):
    """Materialize a workload preset into its seeded request list.

    The same ``(preset, n, seed)`` always yields the identical list —
    the workload half of a cell's determinism guarantee.

    >>> a = build_workload("chat", 4, 0)
    >>> b = build_workload("chat", 4, 0)
    >>> a == b and len(a) == 4
    True
    """
    if preset not in WORKLOADS:
        raise KeyError(
            f"unknown workload preset {preset!r} "
            f"(available: {', '.join(available_workloads())})"
        )
    return WORKLOADS[preset](n, seed)


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved sweep cell: everything a run needs, frozen.

    A spec is pure data (axis values + scenario scalars); executing it
    is :func:`repro.bench.runner.execute_run`'s job. Its
    :attr:`cell_id` is derived entirely from the spec's content, so the
    same cell declared by two different matrices (or two invocations of
    the same matrix) lands in the same manifest directory — the property
    resume/skip and cross-sweep dedup both rest on.
    """

    recipe: str
    scheduler: str
    interconnect: str  # "none" (colocated) or an INTERCONNECTS preset
    fleet: str  # FleetShape label
    workload: str  # WORKLOADS preset
    n_requests: int
    seed: int
    arch: str
    page_budget_gib: float
    block_tokens: int
    gpu_price: str
    ttft_slo_s: float
    tpot_slo_s: float

    @property
    def fleet_shape(self) -> FleetShape:
        """The parsed :class:`FleetShape` behind the ``fleet`` label."""
        return FleetShape.parse(self.fleet)

    @property
    def disaggregated(self) -> bool:
        """Whether the cell runs split prefill/decode pools."""
        return self.fleet_shape.disaggregated

    def to_dict(self) -> dict:
        """JSON round-trip view (the manifest's ``spec`` block)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (exact inverse)."""
        return cls(**payload)

    @property
    def cell_id(self) -> str:
        """Stable, filesystem-safe id derived from the spec content.

        Readable axes prefix + an 8-hex digest over the canonical JSON
        of *all* fields, so two specs differing only in a scalar (page
        budget, SLO) still get distinct directories.
        """
        slug = (
            f"{self.workload}{self.n_requests}-{self.recipe}-{self.scheduler}"
            f"-{self.fleet}-{self.interconnect}-s{self.seed}"
        )
        digest = hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode()
        ).hexdigest()[:8]
        return f"{slug}-{digest}"

    def axes(self) -> dict:
        """The five matrix axis values of this cell (report group keys)."""
        return {
            "recipe": self.recipe,
            "scheduler": self.scheduler,
            "interconnect": self.interconnect,
            "fleet": self.fleet,
            "workload": self.workload,
        }


@dataclass(frozen=True)
class SweepMatrix:
    """A declarative grid of serving scenarios, validated at construction.

    Axis fields (``recipes`` … ``workloads``) are crossed by
    :meth:`expand`; the scalar fields (request count, seed, arch, page
    budget, price, SLOs) apply to every cell. Validation happens in
    ``__post_init__`` against the live registries — an unknown recipe or
    scheduler fails the *declaration*, not the 37th run of a sweep.

    >>> m = SweepMatrix(name="t", recipes=("mxfp4+",),
    ...                 schedulers=("prefill-first",))
    >>> [r.cell_id for r in m.expand()[0]] == [r.cell_id for r in m.expand()[0]]
    True
    >>> SweepMatrix(name="bad", schedulers=("not-a-scheduler",))
    Traceback (most recent call last):
        ...
    KeyError: "unknown scheduler 'not-a-scheduler' (available: chunked-prefill, decode-priority, prefill-first)"
    """

    name: str
    recipes: tuple = ("bf16", "mxfp4+")
    schedulers: tuple = ("prefill-first",)
    interconnects: tuple = (UNIFIED,)
    fleets: tuple = ("1r",)
    workloads: tuple = ("bursty",)
    n_requests: int = 24
    seed: int = 0
    arch: str = "llama-2-13b"
    page_budget_gib: float = 1.0
    block_tokens: int = 16
    gpu_price: str = "rtx5090"
    ttft_slo_s: float = 2.0
    tpot_slo_s: float = 0.5
    baseline: dict | None = None  # axis values naming the Δ-reference cell

    def __post_init__(self) -> None:
        # Coerce JSON-borne lists so frozen specs hash/compare cleanly.
        for axis in ("recipes", "schedulers", "interconnects", "fleets",
                     "workloads"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
            if not getattr(self, axis):
                raise ValueError(f"matrix axis {axis!r} must be non-empty")
        for recipe in self.recipes:
            QuantRecipe.from_name(recipe)  # raises with suggestions
        for sched in self.schedulers:
            if sched not in available_schedulers():
                raise KeyError(
                    f"unknown scheduler {sched!r} "
                    f"(available: {', '.join(available_schedulers())})"
                )
        for link in self.interconnects:
            if link != UNIFIED and link not in INTERCONNECTS:
                raise KeyError(
                    f"unknown interconnect {link!r} (available: "
                    f"{UNIFIED}, {', '.join(sorted(INTERCONNECTS))})"
                )
        for fleet in self.fleets:
            FleetShape.parse(fleet)
        for preset in self.workloads:
            if preset not in WORKLOADS:
                raise KeyError(
                    f"unknown workload preset {preset!r} "
                    f"(available: {', '.join(available_workloads())})"
                )
        if self.arch not in ARCHS:
            raise KeyError(
                f"unknown arch {self.arch!r} (available: {', '.join(ARCHS)})"
            )
        get_gpu_price(self.gpu_price)  # raises on unknown preset
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.page_budget_gib <= 0:
            raise ValueError("page_budget_gib must be > 0")
        if self.ttft_slo_s <= 0 or self.tpot_slo_s <= 0:
            raise ValueError("SLO targets must be > 0")
        if self.baseline is not None:
            unknown = set(self.baseline) - {
                "recipe", "scheduler", "interconnect", "fleet", "workload"
            }
            if unknown:
                raise ValueError(f"baseline names unknown axes {sorted(unknown)}")

    # ------------------------------------------------------------------
    def _spec(self, workload, recipe, scheduler, fleet, interconnect) -> RunSpec:
        return RunSpec(
            recipe=recipe,
            scheduler=scheduler,
            interconnect=interconnect,
            fleet=fleet,
            workload=workload,
            n_requests=self.n_requests,
            seed=self.seed,
            arch=self.arch,
            page_budget_gib=self.page_budget_gib,
            block_tokens=self.block_tokens,
            gpu_price=self.gpu_price,
            ttft_slo_s=self.ttft_slo_s,
            tpot_slo_s=self.tpot_slo_s,
        )

    def expand(self) -> tuple[list[RunSpec], list[dict]]:
        """Cross the axes into deduplicated, normalized :class:`RunSpec`\\ s.

        Returns ``(runs, skipped)``: ``runs`` in declaration order with
        duplicates (after normalization) folded onto their first
        occurrence, ``skipped`` recording every infeasible combination
        with its reason — silent truncation would make a grid report lie
        about its own coverage.
        """
        runs: list[RunSpec] = []
        seen: set[str] = set()
        skipped: list[dict] = []
        for workload in self.workloads:
            for recipe in self.recipes:
                for scheduler in self.schedulers:
                    for fleet in self.fleets:
                        shape = FleetShape.parse(fleet)
                        for link in self.interconnects:
                            if not shape.disaggregated:
                                # No prefill→decode link exists: the axis
                                # value normalizes away (and the grid
                                # duplicates fold together below).
                                link = UNIFIED
                            elif link == UNIFIED:
                                skipped.append({
                                    "combo": [workload, recipe, scheduler,
                                              fleet, link],
                                    "reason": "disaggregated fleet needs an "
                                              "interconnect",
                                })
                                continue
                            if shape.disaggregated and (
                                scheduler == "chunked-prefill"
                            ):
                                skipped.append({
                                    "combo": [workload, recipe, scheduler,
                                              fleet, link],
                                    "reason": "chunked prefill is a colocated "
                                              "steady state; a disaggregated "
                                              "decode pool runs pure decode",
                                })
                                continue
                            spec = self._spec(
                                workload, recipe, scheduler, fleet, link
                            )
                            if spec.cell_id in seen:
                                continue
                            seen.add(spec.cell_id)
                            runs.append(spec)
        return runs, skipped

    def baseline_cell_id(self, runs: list[RunSpec]) -> str | None:
        """Resolve the declared ``baseline`` axes to a cell id.

        Raises if the baseline matches zero or multiple cells — a Δ
        column against an ambiguous reference would be meaningless.
        """
        if self.baseline is None:
            return None
        matches = [
            r for r in runs
            if all(r.axes().get(k) == v for k, v in self.baseline.items())
        ]
        if len(matches) != 1:
            raise ValueError(
                f"baseline {self.baseline} matches {len(matches)} cells "
                "(need exactly 1)"
            )
        return matches[0].cell_id

    def to_dict(self) -> dict:
        """JSON view (the sweep dir's ``sweep.json`` matrix block)."""
        out = asdict(self)
        for axis in ("recipes", "schedulers", "interconnects", "fleets",
                     "workloads"):
            out[axis] = list(out[axis])
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepMatrix":
        """Rebuild (and re-validate) a matrix from :meth:`to_dict` JSON."""
        return cls(**payload)


#: The committed perf-trajectory sweep behind benchmarks/results/
#: BENCH_sweep.json: 2 recipes x 2 schedulers x 2 interconnects, with
#: both a colocated 2-replica fleet and a 1-prefill+1-decode pool pair.
CANONICAL = SweepMatrix(
    name="canonical",
    recipes=("bf16", "mxfp4+"),
    schedulers=("prefill-first", "chunked-prefill"),
    interconnects=("pcie5", "100gbe"),
    fleets=("2r", "1p1d"),
    workloads=("chat",),
    n_requests=24,
    seed=0,
    baseline={"recipe": "bf16", "scheduler": "prefill-first", "fleet": "2r"},
)

#: The CI smoke sweep: a tiny 2x2 (recipes x schedulers) that exercises
#: the whole plan -> run -> report pipeline in seconds.
SMOKE = SweepMatrix(
    name="smoke",
    recipes=("bf16", "mxfp4+"),
    schedulers=("prefill-first", "chunked-prefill"),
    interconnects=(UNIFIED,),
    fleets=("1r",),
    workloads=("bursty",),
    n_requests=12,
    seed=0,
    baseline={"recipe": "bf16", "scheduler": "prefill-first"},
)

#: Named matrices runnable as ``python -m repro.bench run --matrix <name>``.
MATRICES: dict[str, SweepMatrix] = {m.name: m for m in (CANONICAL, SMOKE)}


def available_matrices() -> list[str]:
    """Sorted names of the predeclared sweep matrices.

    >>> available_matrices()
    ['canonical', 'smoke']
    """
    return sorted(MATRICES)


def get_matrix(name_or_matrix) -> SweepMatrix:
    """Resolve a named matrix (or pass a :class:`SweepMatrix` through).

    >>> get_matrix("canonical").name
    'canonical'
    """
    if isinstance(name_or_matrix, SweepMatrix):
        return name_or_matrix
    key = str(name_or_matrix)
    if key not in MATRICES:
        raise KeyError(
            f"unknown matrix {name_or_matrix!r} "
            f"(available: {', '.join(available_matrices())})"
        )
    return MATRICES[key]
