"""Unit tests for the industry BFP baselines: MSFP and SMX (Section 2)."""

import numpy as np
import pytest

from repro.core.msfp import MSFP12, MSFP14, MSFP16, MSFPFormat
from repro.core.mx import MXFP4, MXFP6, MXFP8
from repro.core.smx import SMX4, SMX6, SMX9, SMXFormat


class TestMSFP:
    def test_bit_widths(self):
        # MSFP names count total width: element bits + 8 shared bits.
        assert MSFP12().bits_per_element() == pytest.approx(4.5)
        assert MSFP14().bits_per_element() == pytest.approx(6.5)
        assert MSFP16().bits_per_element() == pytest.approx(8.5)

    def test_block_size_16(self):
        assert MSFP12().block_size == 16

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 64))
        fmt = MSFP12()
        q = fmt(x)
        np.testing.assert_allclose(fmt(q), q)

    def test_no_implicit_bit_resolution(self):
        # With 3 mantissa bits and no implicit leading one, a block whose
        # max is 1.0 has ulp 2^(0+1-3) = 0.25.
        x = np.zeros(16)
        x[0] = 1.0
        x[1] = 0.26
        q = MSFP12()(x)
        assert q[1] == pytest.approx(0.25)

    def test_bm_within_one_ulp(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 16)) * 10
        fmt = MSFP14()
        q = fmt(x)
        amax = np.max(np.abs(x), axis=-1)
        ulp = np.exp2(np.floor(np.log2(amax)) + 1 - fmt.mantissa_bits)
        bm_idx = np.argmax(np.abs(x), axis=-1)
        rows = np.arange(64)
        assert np.all(np.abs(x[rows, bm_idx] - q[rows, bm_idx]) <= ulp / 2 + 1e-12)

    def test_error_ordering(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 128))
        errs = [np.mean((x - f()(x)) ** 2) for f in (MSFP12, MSFP14, MSFP16)]
        assert errs[0] > errs[1] > errs[2]

    def test_zero_block(self):
        np.testing.assert_array_equal(MSFP12()(np.zeros((2, 16))), 0.0)

    def test_mx_preserves_small_values_better_than_msfp(self):
        # Figure 2's qualitative driver at moderate bits: private element
        # exponents (MXFP6) represent the *small* values of outlier-bearing
        # blocks more finely than MSFP14's shared-exponent-only encoding.
        # (Language-model performance tracks this small-value fidelity;
        # raw MSE is dominated by the outlier itself, where MSFP's longer
        # mantissa can win.)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((32, 128))
        x[:, ::32] *= 64.0
        small = np.abs(x) < 3
        e_mx = np.mean((x[small] - MXFP6()(x)[small]) ** 2)
        e_ms = np.mean((x[small] - MSFP14()(x)[small]) ** 2)
        assert e_mx < e_ms


class TestSMX:
    def test_bit_widths(self):
        assert SMX4().bits_per_element() == pytest.approx(4.0)
        assert SMX6().bits_per_element() == pytest.approx(6.0)
        assert SMX9().bits_per_element() == pytest.approx(9.0)

    def test_idempotent(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, 64))
        fmt = SMX6()
        q = fmt(x)
        np.testing.assert_allclose(fmt(q), q)

    def test_microexponent_helps_small_pairs(self):
        # A pair one binade below the block max gets a 2x finer grid than
        # MSFP at the same mantissa width would give it.
        x = np.zeros(16)
        x[0] = 1.0  # shared exp = 0
        x[2], x[3] = 0.4, 0.3  # pair below 0.5 -> microexp shifts scale
        q_smx = SMXFormat(3, name="smx5")(x)
        q_msfp = MSFPFormat(3, name="msfp12")(x)
        err_smx = (x[2] - q_smx[2]) ** 2 + (x[3] - q_smx[3]) ** 2
        err_msfp = (x[2] - q_msfp[2]) ** 2 + (x[3] - q_msfp[3]) ** 2
        assert err_smx < err_msfp

    def test_pair_with_large_element_gets_no_shift(self):
        # If one element of the pair is the block max, the microexponent
        # must be zero (no headroom) and quantization matches MSFP.
        x = np.zeros(16)
        x[0] = 1.0
        x[1] = 0.9
        q_smx = SMXFormat(3)(x)
        q_msfp = MSFPFormat(3)(x)
        np.testing.assert_allclose(q_smx[:2], q_msfp[:2])

    def test_error_ordering(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, 128))
        errs = [np.mean((x - f()(x)) ** 2) for f in (SMX4, SMX6, SMX9)]
        assert errs[0] > errs[1] > errs[2]

    def test_zero_block(self):
        np.testing.assert_array_equal(SMX4()(np.zeros((2, 16))), 0.0)

    def test_invalid_subgroup(self):
        with pytest.raises(ValueError):
            SMXFormat(2, block_size=16, subgroup=3)


class TestFigure2Ordering:
    """The qualitative Figure 2 story on synthetic outlier-bearing data:
    at matched bit widths MX matches or beats the other variants."""

    @pytest.fixture()
    def activations(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((64, 256))
        x[:, 7] *= 32  # one outlier channel, as in LLM activations
        return x

    def test_moderate_bits(self, activations):
        x = activations
        e_mx = np.mean((x - MXFP6()(x)) ** 2)
        e_smx = np.mean((x - SMX6()(x)) ** 2)
        e_msfp = np.mean((x - MSFP14()(x)) ** 2)
        assert e_mx <= min(e_smx, e_msfp)

    def test_low_bits(self, activations):
        x = activations
        e_mx = np.mean((x - MXFP4()(x)) ** 2)
        e_smx = np.mean((x - SMX4()(x)) ** 2)
        assert e_mx <= e_smx
