"""Figure 2: perplexity of BF16 vs MSFP / SMX / MX at low, moderate, and
high bit widths across four models."""

from _util import print_table, run_once, save_result

from repro.eval import perplexity_table

MODELS = ["opt-66b-sim", "llama-3.1-8b-sim", "llama-3.1-70b-sim", "mistral-7b-sim"]
FORMATS = [
    "baseline",
    "mxfp8", "smx9", "msfp16",  # high
    "mxfp6", "smx6", "msfp14",  # moderate
    "mxfp4", "smx4", "msfp12",  # low
]


def test_fig02(benchmark, zoo, wiki2):
    def run():
        return {
            m: perplexity_table(zoo[m], wiki2, FORMATS) for m in MODELS
        }

    table = run_once(benchmark, run)
    save_result("fig02_bfp_variants", table)
    print_table("Figure 2: perplexity across BFP variants", table)

    for m in MODELS:
        row = table[m]
        base = row["baseline"]
        # High-bit formats stay close to the baseline.
        assert row["mxfp8"] < base * 1.15
        # Moderate: MXFP6 stays close; SMX6/MSFP14 start diverging but the
        # severity is model-dependent (as in the paper).
        assert row["mxfp6"] < base * 1.25
        # Low-bit: everything degrades; MXFP4 beats SMX4.
        assert row["mxfp4"] > row["mxfp6"]
        assert row["mxfp4"] <= row["smx4"] * 1.10
