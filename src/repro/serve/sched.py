"""Pluggable batch-composition policies for the serving engine.

:class:`repro.serve.ServingEngine` is a discrete-event loop: at every
schedulable instant it asks its :class:`Scheduler` to compose the next
*step* — which waiting requests to admit, which admitted requests run
prompt (prefill) rows, and which run a generation (decode) row. The
scheduler owns exactly that decision; admission bookkeeping, KV paging,
preemption, timing, and latency accounting stay in the engine.

Three policies ship in the registry (``SCHEDULERS``):

* ``"prefill-first"`` — the classic vLLM-style iteration loop and the
  default: whenever any waiting request fits the KV cache, a prefill
  step runs for just the newly admitted prompts (decodes stall behind
  it); otherwise one decode step advances every running request. This is
  byte-identical to the pre-scheduler engine — committed artifacts
  reproduce exactly.
* ``"chunked-prefill"`` — Sarathi-style chunked prefill: long prompts
  are split into ``chunk_tokens``-row chunks, and each step co-schedules
  the pending chunks with *all* ready decode rows in one mixed batch.
  Decodes never stall behind a long prompt, so tail TTFT/TPOT improve at
  a small per-step cost (the mixed batch prices the chunk and decode
  attention kernels separately — see ``gpu.inference.step_time``).
* ``"decode-priority"`` — the opposite extreme: running decodes are
  never interrupted; new requests are admitted (and prefilled in full)
  only once no admitted request has a decode ready. Models static-batch
  serving; best-case TPOT, worst-case queueing TTFT. Brackets the policy
  space from the other side.

A scheduler's ``plan`` is called exactly once per engine step and may
use the engine's admission helper (``engine.admit_arrived()``), which
commits KV allocations for the requests it admits. Schedulers must be
deterministic: equal engine states yield equal plans.

>>> available_schedulers()
['chunked-prefill', 'decode-priority', 'prefill-first']
>>> get_scheduler("chunked-prefill").chunk_tokens
256
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "StepPlan",
    "Scheduler",
    "PrefillFirstScheduler",
    "ChunkedPrefillScheduler",
    "DecodePriorityScheduler",
    "SCHEDULERS",
    "available_schedulers",
    "get_scheduler",
]


@dataclass
class StepPlan:
    """One engine step, as composed by a :class:`Scheduler`.

    ``prefill`` lists ``(state, rows)`` pairs: ``rows`` not-yet-computed
    prompt tokens of that admitted request to process this step.
    ``decode`` lists the running requests that generate one token this
    step. ``tag_kinds`` controls whether the engine prices the step with
    kind-tagged row groups (mixed-batch semantics: chunk and decode
    attention kernels stay separate) or with legacy untagged groups (the
    pre-scheduler pricing — required for byte-identical reconciliation
    of the prefill-first policy).

    ``notes`` is a policy-chosen annotation tuple of ``(key, value)``
    pairs — free-form plan context (e.g. the chunk budget a chunked
    prefill ran under) surfaced in trace step spans. Never consulted by
    the engine, so an unannotated plan is behaviour-identical.
    """

    prefill: list = field(default_factory=list)  # [(state, rows), ...]
    decode: list = field(default_factory=list)  # [state, ...]
    tag_kinds: bool = False
    notes: tuple = ()  # ((key, value), ...) — trace annotations only

    @property
    def empty(self) -> bool:
        """A step with no rows (an engine error if ever executed)."""
        return not self.prefill and not self.decode


class Scheduler:
    """Base class: compose the next engine step.

    Subclasses implement :meth:`plan`. ``reset`` is called by the engine
    at the start of every ``run`` so a scheduler instance behaves like a
    freshly built one (the built-in policies are stateless, but custom
    schedulers may carry state across steps of one run).
    """

    name = "base"

    def reset(self) -> None:
        """Return to the initial state; called before every engine run."""

    def plan(self, engine) -> StepPlan:  # pragma: no cover - interface
        """Compose the next step for ``engine`` (called once per step)."""
        raise NotImplementedError


class PrefillFirstScheduler(Scheduler):
    """The classic loop: admit-and-prefill whenever anything fits.

    Exact pre-scheduler engine semantics: if any waiting request is
    admitted this instant, the step prefills just those prompts in full
    (running decodes stall); otherwise every running request decodes one
    token. Pricing uses untagged row groups, so step times — and every
    committed serving artifact — are byte-identical to the monolithic
    loop this policy was extracted from.
    """

    name = "prefill-first"

    def plan(self, engine) -> StepPlan:
        admitted = engine.admit_arrived()
        # Imported (KV-migrated) admissions have no prefill rows — they go
        # straight to the decode branch with everyone else.
        prefill = [(s, s.prefill_remaining) for s in admitted if s.prefill_remaining > 0]
        if prefill:
            return StepPlan(prefill=prefill)
        return StepPlan(decode=list(engine.running))


class ChunkedPrefillScheduler(Scheduler):
    """Sarathi-style chunked prefill with decode co-scheduling.

    Each step carries at most ``chunk_tokens`` prompt rows, split over
    pending prefills in admission order (FCFS), *plus* one decode row
    for every running request whose prefill already completed. A long
    prompt therefore trickles through over several steps while decodes
    keep flowing — no head-of-line blocking — at the price of slightly
    longer individual steps (the mixed batch runs chunk and decode
    attention kernels back to back).

    ``chunk_tokens`` trades TTFT fairness against prefill efficiency:
    smaller chunks interleave more but pay per-step overheads more
    often. Admission is unchanged (paged-KV head-of-line), so the same
    requests fit as under prefill-first; only the compute schedule
    differs.
    """

    name = "chunked-prefill"

    def __init__(self, chunk_tokens: int = 256) -> None:
        if chunk_tokens < 1:
            raise ValueError("chunk_tokens must be >= 1")
        self.chunk_tokens = chunk_tokens

    def plan(self, engine) -> StepPlan:
        engine.admit_arrived()
        decode = [s for s in engine.running if s.prefill_done]
        prefill: list = []
        budget = self.chunk_tokens
        for state in engine.running:  # admission order: FCFS chunking
            if budget <= 0:
                break
            if state.prefill_done:
                continue
            rows = min(budget, state.prefill_remaining)
            prefill.append((state, rows))
            budget -= rows
        notes = ()
        if prefill:
            notes = (
                ("chunk_budget", self.chunk_tokens),
                ("chunk_rows", self.chunk_tokens - budget),
            )
        return StepPlan(prefill=prefill, decode=decode, tag_kinds=True, notes=notes)


class DecodePriorityScheduler(Scheduler):
    """Never interrupt decodes: admit only when no decode is ready.

    Running requests decode every step until they finish; waiting
    requests are admitted (and prefilled in full, prefill-first style)
    only at instants where no admitted request has a decode ready. This
    models static-batch serving — the TPOT-optimal, queueing-TTFT-worst
    extreme that brackets the policy space opposite chunked prefill.
    """

    name = "decode-priority"

    def plan(self, engine) -> StepPlan:
        decode = [s for s in engine.running if s.prefill_done]
        if decode:
            return StepPlan(decode=decode)
        admitted = engine.admit_arrived()
        prefill = [(s, s.prefill_remaining) for s in admitted if s.prefill_remaining > 0]
        if prefill:
            return StepPlan(prefill=prefill)
        # All admissions were imported (KV-migrated, prefill already
        # materialized): decode them immediately instead of returning an
        # empty plan.
        return StepPlan(decode=[s for s in engine.running if s.prefill_done])


SCHEDULERS: dict[str, type[Scheduler]] = {
    cls.name: cls
    for cls in (PrefillFirstScheduler, ChunkedPrefillScheduler, DecodePriorityScheduler)
}


def available_schedulers() -> list[str]:
    """Sorted names of the registered scheduling policies.

    >>> available_schedulers()
    ['chunked-prefill', 'decode-priority', 'prefill-first']
    """
    return sorted(SCHEDULERS)


def get_scheduler(name_or_scheduler) -> Scheduler:
    """Instantiate a scheduler by name (or pass a :class:`Scheduler` through)."""
    if isinstance(name_or_scheduler, Scheduler):
        return name_or_scheduler
    key = str(name_or_scheduler).lower()
    if key not in SCHEDULERS:
        raise KeyError(
            f"unknown scheduler {name_or_scheduler!r} "
            f"(available: {', '.join(available_schedulers())})"
        )
    return SCHEDULERS[key]()
