"""Disaggregated prefill/decode serving: KV handoff edge cases.

Covers the migration machinery end to end — `KVTransfer` pricing, the
prefill-role engine's export path, `import_kv` resumption without
re-prefill, preemption interacting with migration (mid-transfer and
after import), shared-prefix pages surviving migration via refcounts,
and the two interconnect limits: zero bandwidth (transfers never
complete — a loud error, not a hang) and infinite bandwidth (exact
reconciliation with the unified cluster on non-overlapping traffic).
"""

import math

import pytest

from repro.models.zoo import ARCHS
from repro.serve import (
    INTERCONNECTS,
    KVTransfer,
    PagedKVCache,
    Request,
    ServingCluster,
    ServingEngine,
    get_interconnect,
    kv_token_bytes,
)
from repro.tune.cost import CostModel

ARCH = ARCHS["llama-2-13b"]
GIB = 1 << 30


def make_cluster(recipe="mxfp4+", **kw):
    kw.setdefault("n_prefill", 1)
    kw.setdefault("n_decode", 1)
    kw.setdefault("page_budget_bytes", 1 * GIB)
    kw.setdefault("block_tokens", 16)
    return ServingCluster(ARCH, recipe, **kw)


# ----------------------------------------------------------------------
# KVTransfer pricing
# ----------------------------------------------------------------------
class TestKVTransfer:
    def test_transfer_time_composition(self):
        link = KVTransfer(bandwidth_gb_s=10.0, latency_s=1e-3)
        assert link.occupancy_s(10e9) == pytest.approx(1.0)
        assert link.transfer_s(10e9) == pytest.approx(1.0 + 1e-3)
        assert link.transfer_s(0.0) == pytest.approx(1e-3)

    def test_infinite_bandwidth_is_latency_only(self):
        link = KVTransfer(bandwidth_gb_s=math.inf, latency_s=2e-6)
        assert link.occupancy_s(1e15) == 0.0
        assert link.transfer_s(1e15) == 2e-6

    def test_zero_bandwidth_is_infinite_occupancy(self):
        link = KVTransfer(bandwidth_gb_s=0.0)
        assert math.isinf(link.occupancy_s(1.0))
        assert link.occupancy_s(0.0) == 0.0  # nothing to move, nothing stalls

    def test_validation(self):
        with pytest.raises(ValueError):
            KVTransfer(bandwidth_gb_s=-1.0)
        with pytest.raises(ValueError):
            KVTransfer(latency_s=-1e-6)
        with pytest.raises(ValueError):
            KVTransfer().occupancy_s(-5.0)

    def test_migration_bytes_tracks_recipe_kv_format(self):
        link = KVTransfer()
        mx = link.migration_bytes(ARCH, "mxfp4+", 100)
        bf = link.migration_bytes(ARCH, "bf16", 100)
        assert mx == pytest.approx(kv_token_bytes(ARCH, "mxfp4+") * 100)
        assert mx < bf / 3  # 4.5-bit vs 16-bit KV elements

    def test_presets(self):
        assert get_interconnect("nvlink4").bandwidth_gb_s > get_interconnect(
            "pcie5"
        ).bandwidth_gb_s > get_interconnect("100gbe").bandwidth_gb_s
        assert math.isinf(INTERCONNECTS["infinite"].bandwidth_gb_s)
        link = KVTransfer(bandwidth_gb_s=1.0)
        assert get_interconnect(link) is link
        with pytest.raises(KeyError, match="unknown interconnect"):
            get_interconnect("carrier-pigeon")


# ----------------------------------------------------------------------
# Engine-level handoff: export on the prefill role, import on decode
# ----------------------------------------------------------------------
class TestEngineHandoff:
    def _drain_to_handoff(self, engine, request):
        """Step a prefill engine until `request` awaits export."""
        engine.begin_run()
        engine.submit(request)
        while engine.has_work():
            event = engine.step()
            if event.handoff_ready:
                return event
        return None

    def test_prefill_role_parks_after_first_token(self):
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        req = Request("p0", prompt_len=256, max_new_tokens=8)
        event = self._drain_to_handoff(engine, req)
        assert event.handoff_ready == ["p0"]
        assert engine.exportable == ["p0"]
        assert "p0" not in engine.finished  # not finished: 7 tokens remain
        handoff = engine.export_kv("p0")
        assert handoff.tokens == 257  # prompt + the first generated token
        assert handoff.generated == 1
        assert handoff.first_token_s > 0
        assert engine.exportable == []
        # pages released on export
        assert engine.kv_cache.used_blocks == 0

    def test_one_token_request_finishes_on_prefill_replica(self):
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        result = engine.run([Request("p1", prompt_len=128, max_new_tokens=1)])
        assert result.responses[0].output_len == 1
        assert engine.exportable == []  # nothing awaited export

    def test_prefill_role_run_rejects_multi_token_requests(self):
        # run() drains to completion, but a multi-token request on a
        # prefill engine parks for export mid-flight — rejected loudly
        # instead of silently aborting it.
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        with pytest.raises(ValueError, match="park multi-token requests"):
            engine.run([Request("p9", prompt_len=64, max_new_tokens=4)])

    def test_prefill_role_capacity_check_ignores_decode_budget(self):
        # prompt + full output would overflow, prompt + 1 fits: the
        # prefill replica only ever holds the prompt and the first token.
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=300, role="prefill")
        engine.submit(Request("p2", prompt_len=256, max_new_tokens=512))
        unified = ServingEngine(ARCH, "mxfp4+", kv_token_budget=300)
        with pytest.raises(ValueError, match="cannot hold"):
            unified.submit(Request("p2", prompt_len=256, max_new_tokens=512))

    def test_export_requires_handoff_ready(self):
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        with pytest.raises(KeyError, match="not awaiting export"):
            engine.export_kv("ghost")

    def test_import_resumes_without_prefill(self):
        src = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        req = Request("m0", prompt_len=256, max_new_tokens=4)
        self._drain_to_handoff(src, req)
        handoff = src.export_kv("m0")

        dst = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="decode")
        dst.begin_run()
        dst.import_kv(handoff, arrival_s=handoff.export_s)
        prefill_rows = 0
        while dst.has_work():
            event = dst.step()
            prefill_rows += event.n_prefill_rows
        assert prefill_rows == 0  # migrated KV: no prompt recomputation
        resp = dst.finished["m0"]
        assert resp.output_len == 4
        assert resp.first_token_s == handoff.first_token_s  # TTFT fixed at prefill
        assert resp.finish_s > handoff.export_s

    def test_import_waits_for_capacity(self):
        # Destination full: the migrated request queues and is admitted
        # only after the resident request releases its pages.
        dst = ServingEngine(ARCH, "mxfp4+", kv_token_budget=600, role="decode")
        dst.begin_run()
        dst.submit(Request("big", prompt_len=500, max_new_tokens=4))
        dst.step()  # prefill: pins 500 tokens

        src = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        self._drain_to_handoff(src, Request("m1", prompt_len=256, max_new_tokens=2))
        handoff = src.export_kv("m1")
        dst.import_kv(handoff, arrival_s=max(dst.clock, handoff.export_s))
        assert dst.n_waiting == 1
        while dst.has_work():
            dst.step()
        assert dst.finished["m1"].output_len == 2
        # admitted strictly after `big` freed the cache
        assert dst.finished["m1"].finish_s > dst.finished["big"].finish_s

    def test_import_rejects_on_prefill_role_and_duplicates(self):
        src = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        self._drain_to_handoff(src, Request("m2", prompt_len=64, max_new_tokens=2))
        handoff = src.export_kv("m2")
        with pytest.raises(ValueError, match="cannot import"):
            src.import_kv(handoff, arrival_s=src.clock)
        dst = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096)
        dst.begin_run()
        dst.import_kv(handoff, arrival_s=handoff.export_s)
        with pytest.raises(ValueError, match="duplicate"):
            dst.import_kv(handoff, arrival_s=handoff.export_s)
        with pytest.raises(ValueError, match="import before export"):
            ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096).import_kv(
                handoff, arrival_s=handoff.export_s - 1.0
            )

    def test_imported_preemption_recomputes_locally(self):
        # After import, decode growth can still evict the migrated
        # request (preemption targets the newest admission); it must fall
        # back to *local* recomputation — the imported flag clears — and
        # still produce a correct response.
        src = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        self._drain_to_handoff(src, Request("v0", prompt_len=96, max_new_tokens=24))
        handoff = src.export_kv("v0")

        dst = ServingEngine(ARCH, "mxfp4+", kv_token_budget=160, role="decode")
        dst.begin_run()
        # a long-running local request admitted *first*: the imported
        # request becomes the newest admission (the preemption victim)
        dst.submit(Request("rival", prompt_len=48, max_new_tokens=100))
        dst.step()  # prefill: rival admitted
        dst.import_kv(handoff, arrival_s=max(dst.clock, handoff.export_s))
        prefill_rows = 0
        while dst.has_work():
            event = dst.step()
            prefill_rows += event.n_prefill_rows
        resp = dst.finished["v0"]
        assert resp.output_len == 24
        assert resp.preemptions >= 1
        # the victim recomputed its context locally after eviction:
        # more prefill rows than the rival's prompt alone
        assert prefill_rows > 48 + 96

    def test_abort_frees_exported_pages(self):
        engine = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        self._drain_to_handoff(engine, Request("a0", prompt_len=64, max_new_tokens=4))
        assert engine.kv_cache.used_blocks > 0
        engine.abort()  # exportable request not collected: must not leak
        assert engine.kv_cache.used_blocks == 0
        engine.begin_run()  # and the engine is reusable afterwards


# ----------------------------------------------------------------------
# Shared prefixes x migration
# ----------------------------------------------------------------------
class TestPrefixSurvival:
    def test_prefix_pages_survive_export_via_refcounts(self):
        cache = PagedKVCache(num_blocks=256, block_tokens=16)
        engine = ServingEngine(ARCH, "mxfp4+", kv_cache=cache, role="prefill")
        engine.begin_run()
        a = Request("a", prompt_len=96, max_new_tokens=4, prefix_id="sys", prefix_len=64)
        b = Request(
            "b", prompt_len=96, max_new_tokens=4, arrival_s=1e9,
            prefix_id="sys", prefix_len=64,
        )
        engine.submit(a)
        while engine.has_work():
            event = engine.step()
            if event.handoff_ready:
                break
        engine.export_kv("a")  # decref, pages stay cached
        assert cache.stats()["cached_prefixes"] == 1
        assert cache.reclaimable_blocks == 64 // 16
        engine.submit(b)
        while engine.has_work():
            event = engine.step()
            if event.handoff_ready:
                break
        # b re-used a's migrated-away prefix: a hit, not a recompute
        assert cache.stats()["prefix_hits"] == 1
        engine.export_kv("b")
        engine.abort()

    def test_discounted_prefix_evicted_mid_transfer_recomputes_locally(self):
        # The sender skipped the prefix bytes because the destination had
        # them cached at export time; if the destination evicts that
        # prefix before the transfer arrives, the gap must be recomputed
        # as local prefill rows — migrated KV never materializes out of
        # nothing.
        src = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        src.begin_run()
        req = Request("x", prompt_len=96, max_new_tokens=4,
                      prefix_id="sys", prefix_len=64)
        src.submit(req)
        while src.has_work():
            if src.step().handoff_ready:
                break
        handoff = src.export_kv("x")

        dst = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="decode")
        dst.begin_run()
        # destination holds NO cached prefix (models the eviction): only
        # ctx - 64 tokens crossed the link.
        dst.import_kv(handoff, arrival_s=handoff.export_s,
                      transferred_tokens=handoff.tokens - 64)
        prefill_rows = 0
        while dst.has_work():
            prefill_rows += dst.step().n_prefill_rows
        assert prefill_rows == 64  # exactly the discounted-but-missing prefix
        assert dst.finished["x"].output_len == 4

        # sanity: a full transfer admits with zero local prefill rows
        src2 = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="prefill")
        src2.begin_run()
        src2.submit(Request("y", prompt_len=96, max_new_tokens=4))
        while src2.has_work():
            if src2.step().handoff_ready:
                break
        h2 = src2.export_kv("y")
        dst2 = ServingEngine(ARCH, "mxfp4+", kv_token_budget=4096, role="decode")
        dst2.begin_run()
        dst2.import_kv(h2, arrival_s=h2.export_s)
        rows = 0
        while dst2.has_work():
            rows += dst2.step().n_prefill_rows
        assert rows == 0

    def test_destination_prefix_discount_on_transfer_bytes(self):
        # Two requests sharing a system prompt migrate to the same decode
        # replica: the second transfer skips the prefix bytes already
        # resident there.
        prefix = 64
        reqs = [
            Request(
                f"c{i}", prompt_len=160, max_new_tokens=4,
                arrival_s=float(i), prefix_id="sys", prefix_len=prefix,
            )
            for i in range(2)
        ]
        cluster = make_cluster(kv_transfer="nvlink4")
        fleet = cluster.run(reqs)
        t0, t1 = fleet.transfers
        assert t0["tokens"] == 161  # full context crosses first
        assert t1["tokens"] == 161 - prefix  # cached prefix stays home
        assert t1["bytes"] < t0["bytes"]


# ----------------------------------------------------------------------
# Cluster-level limits and accounting
# ----------------------------------------------------------------------
class TestDisaggCluster:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="both n_prefill and n_decode"):
            ServingCluster(ARCH, "mxfp4+", n_prefill=1)
        with pytest.raises(ValueError, match=">= 0"):
            ServingCluster(ARCH, "mxfp4+", n_prefill=-1, n_decode=1)

    def test_pools_and_roles(self):
        cluster = make_cluster(n_prefill=2, n_decode=3)
        assert cluster.n_replicas == 5
        assert cluster.roles == ["prefill"] * 2 + ["decode"] * 3
        assert [e.role for e in cluster.engines] == cluster.roles

    def test_end_to_end_accounting(self):
        reqs = [
            Request(f"r{i}", prompt_len=128, max_new_tokens=4, arrival_s=i * 1e-3)
            for i in range(6)
        ]
        fleet = make_cluster(n_prefill=1, n_decode=2).run(reqs)
        assert len(fleet.responses) == 6
        assert fleet.n_transfers == 6
        per_token = kv_token_bytes(ARCH, "mxfp4+")
        for t in fleet.transfers:
            assert t["bytes"] == t["tokens"] * per_token
            assert t["tokens"] == 129
            assert t["arrive_s"] >= t["start_s"] >= t["export_s"]
            assert fleet.roles[t["src"]] == "prefill"
            assert fleet.roles[t["dest"]] == "decode"
        assert set(fleet.decode_assignments) == {r.request_id for r in reqs}
        summary = fleet.summary()
        assert summary["decode_router"] == "free-kv-at-arrival"
        assert summary["transfer_bytes_per_request"] == pytest.approx(
            129 * per_token
        )

    def test_transfers_serialize_on_the_link(self):
        # A burst exports near-simultaneously; on a slow link the later
        # transfers must queue behind the earlier ones' byte time.
        reqs = [Request(f"s{i}", prompt_len=256, max_new_tokens=4) for i in range(4)]
        fleet = make_cluster(kv_transfer=KVTransfer(bandwidth_gb_s=1.0)).run(reqs)
        starts = sorted(t["start_s"] for t in fleet.transfers)
        occ = KVTransfer(bandwidth_gb_s=1.0).occupancy_s(
            257 * kv_token_bytes(ARCH, "mxfp4+")
        )
        for earlier, later in zip(starts, starts[1:]):
            assert later >= earlier + occ - 1e-12

    def test_zero_bandwidth_raises_loudly(self):
        cluster = make_cluster(kv_transfer=KVTransfer(bandwidth_gb_s=0.0))
        with pytest.raises(RuntimeError, match="zero-bandwidth"):
            cluster.run([Request("z", prompt_len=64, max_new_tokens=4)])

    def test_zero_bandwidth_ok_when_nothing_migrates(self):
        # 1-token requests finish on the prefill pool: the stalled link
        # is never asked for a transfer.
        cluster = make_cluster(kv_transfer=KVTransfer(bandwidth_gb_s=0.0))
        fleet = cluster.run([Request("z1", prompt_len=64, max_new_tokens=1)])
        assert fleet.n_transfers == 0
        assert fleet.responses[0].output_len == 1

    def test_infinite_bandwidth_reconciles_with_unified(self):
        # Non-overlapping traffic + zero-time transfers: the disaggregated
        # pipeline must reproduce the unified single engine *exactly* —
        # same prefill step, same decode step sequence, same virtual
        # instants, split across two replicas instead of one.
        reqs = [
            Request(f"u{i}", prompt_len=512, max_new_tokens=16, arrival_s=i * 5.0)
            for i in range(4)
        ]
        disagg = make_cluster(kv_transfer="infinite").run(reqs)
        unified = ServingCluster(
            ARCH, "mxfp4+", n_replicas=1,
            page_budget_bytes=1 * GIB, block_tokens=16,
        ).run(reqs)
        for a, b in zip(disagg.responses, unified.responses):
            assert a.ttft_s == b.ttft_s
            assert a.finish_s == b.finish_s
        assert disagg.makespan_s == unified.makespan_s

    def test_ttft_independent_of_bandwidth(self):
        # The first token is produced in the prefill pool before any
        # migration, so TTFT must not move with interconnect speed.
        reqs = [
            Request(f"t{i}", prompt_len=256, max_new_tokens=8, arrival_s=i * 1e-3)
            for i in range(8)
        ]
        slow = make_cluster(kv_transfer="100gbe").run(reqs)
        fast = make_cluster(kv_transfer="infinite").run(reqs)
        for a, b in zip(slow.responses, fast.responses):
            assert a.ttft_s == b.ttft_s
            assert a.finish_s >= b.finish_s  # slower link can only delay the rest

    def test_pool_autoscale_is_independent(self):
        from repro.serve import AutoscalePolicy

        burst = [
            Request(f"b{i}", prompt_len=512, max_new_tokens=2) for i in range(16)
        ]
        policy = AutoscalePolicy(max_replicas=3, scale_up_queue_depth=2)
        fleet = make_cluster(autoscale=policy, kv_transfer="nvlink4").run(burst)
        ups = [e for e in fleet.autoscale_events if e[1] == "scale-up"]
        assert ups, "prefill pool should grow under a saturating burst"
        # every scaled-up replica joined a pool and is tracked in roles
        assert len(fleet.roles) == len(fleet.replica_results)
        assert all(fleet.roles[e[2]] in ("prefill", "decode") for e in ups)


# ----------------------------------------------------------------------
# Cost model: the disaggregated steady state
# ----------------------------------------------------------------------
class TestDisaggCostModel:
    def test_no_prefill_amortization_at_infinite_bandwidth(self):
        unified = CostModel(ARCH)
        disagg = CostModel(
            ARCH, disaggregated=True,
            transfer=KVTransfer(bandwidth_gb_s=math.inf, latency_s=0.0),
        )
        for recipe in ("bf16", "mxfp4+"):
            assert disagg.evaluate(recipe).tokens_per_s > unified.evaluate(
                recipe
            ).tokens_per_s

    def test_bandwidth_caps_throughput(self):
        fast = CostModel(ARCH, disaggregated=True, transfer=KVTransfer(450.0))
        slow = CostModel(
            ARCH, disaggregated=True, transfer=KVTransfer(bandwidth_gb_s=0.05)
        )
        assert slow.evaluate("bf16").tokens_per_s < fast.evaluate("bf16").tokens_per_s
        stalled = CostModel(
            ARCH, disaggregated=True, transfer=KVTransfer(bandwidth_gb_s=0.0)
        )
        assert stalled.evaluate("bf16").tokens_per_s == 0.0

    def test_mx_migrates_fewer_bytes_and_survives_slow_links(self):
        model = CostModel(
            ARCH, disaggregated=True, transfer=KVTransfer(bandwidth_gb_s=0.05)
        )
        mx, bf = model.evaluate("mxfp4+"), model.evaluate("bf16")
        assert mx.transfer_bytes_per_request < bf.transfer_bytes_per_request / 3
        assert mx.tokens_per_s > bf.tokens_per_s

    def test_rejects_chunked_prefill_combination(self):
        # Chunked prefill is a colocated steady state; silently pricing
        # pure decode under that name would mislabel the artifact.
        with pytest.raises(ValueError, match="chunked-prefill"):
            CostModel(ARCH, disaggregated=True, scheduler="chunked-prefill")

    def test_to_dict_gates_migration_keys(self):
        plain = CostModel(ARCH)
        assert "disaggregated" not in plain.to_dict()
        assert "disaggregated" not in plain.evaluate("bf16").to_dict()
        disagg = CostModel(ARCH, disaggregated=True)
        assert disagg.to_dict()["disaggregated"] is True
        cost = disagg.evaluate("bf16").to_dict()
        assert cost["disaggregated"] is True
        assert cost["transfer_bytes_per_request"] > 0
