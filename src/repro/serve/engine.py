"""Request-level serving front-end: continuous batching over the simulator.

:class:`ServingEngine` turns the per-forward kernel-time model of
:mod:`repro.gpu.inference` into an LLM *serving* loop: clients submit
:class:`Request` objects (arrival time, prompt length, output budget), a
continuous-batching scheduler admits and evicts them against a KV-cache
token budget, and each request comes back as a :class:`Response` with
per-request latency accounting (TTFT / TPOT / end-to-end).

Scheduling follows the vLLM-style iteration loop: whenever waiting
requests fit the KV cache a *prefill step* runs for just those requests;
otherwise one *decode step* advances every running request by one token.
When decode growth overflows the cache, the most recently admitted
request is preempted and re-enters the queue for recomputation.

KV memory goes through a :class:`repro.serve.kvcache.PagedKVCache`:
block-granular allocation, byte-accurate page sizing per recipe, and
shared-prefix caching (requests that declare ``prefix_id`` skip
recomputing cached prefix tokens in prefill, which lowers their TTFT).
The legacy flat ``kv_token_budget`` argument is now a shim that builds a
1-token-per-page cache with identical admission/preemption semantics.

Timing comes from :func:`repro.gpu.inference.step_time` in virtual time —
a uniform batch reconciles exactly with ``simulate_inference`` totals.
With ``model=`` set (a :class:`repro.nn.transformer.TransformerLM`) the
engine also runs the real forward under the recipe's ``QuantContext`` and
returns generated tokens, so accuracy and timing come from one API call.

>>> from repro.models.zoo import ARCHS
>>> engine = ServingEngine(ARCHS["llama-2-13b"], "mxfp4+", kv_token_budget=4096)
>>> result = engine.run([Request("r0", prompt_len=512, max_new_tokens=4),
...                      Request("r1", prompt_len=512, max_new_tokens=4)])
>>> [r.output_len for r in result.responses]
[4, 4]
>>> result.peak_running
2
>>> 0.0 < result.responses[0].ttft_s < result.responses[0].e2e_latency_s
True
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..gpu.inference import StageTimes, as_serving_config, step_time
from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from .kvcache import PagedKVCache
from .recipe import QuantRecipe

__all__ = ["Request", "Response", "ServingResult", "ServingEngine"]


@dataclass(frozen=True)
class Request:
    """One client request: a prompt and a generation budget.

    ``prompt_tokens`` is optional; when provided (numeric mode) it defines
    ``prompt_len``, and the engine generates real tokens with the model.

    ``prefix_id``/``prefix_len`` declare that the first ``prefix_len``
    prompt tokens are a shared prefix (e.g. a common system prompt):
    requests with the same ``prefix_id`` store those tokens once in a
    paged KV cache, and prefix *hits* skip recomputing them in prefill.

    >>> Request("r0", prompt_len=512, max_new_tokens=64).prompt_len
    512
    >>> Request("r1", prompt_len=640, prefix_id="sys", prefix_len=512).prefix_id
    'sys'
    """

    request_id: str
    prompt_len: int = 0
    max_new_tokens: int = 1
    arrival_s: float = 0.0
    prefix_id: str | None = None
    prefix_len: int = 0
    # excluded from eq/hash: ndarrays have no scalar truth value
    prompt_tokens: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.prompt_tokens is not None:
            tokens = np.asarray(self.prompt_tokens)
            object.__setattr__(self, "prompt_tokens", tokens)
            object.__setattr__(self, "prompt_len", int(tokens.shape[-1]))
        if self.prompt_len <= 0:
            raise ValueError(f"request {self.request_id!r}: empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError(f"request {self.request_id!r}: max_new_tokens < 1")
        if self.arrival_s < 0:
            raise ValueError(f"request {self.request_id!r}: negative arrival")
        if self.prefix_len < 0:
            raise ValueError(f"request {self.request_id!r}: negative prefix_len")
        if self.prefix_len > self.prompt_len:
            raise ValueError(
                f"request {self.request_id!r}: prefix_len {self.prefix_len} "
                f"exceeds prompt_len {self.prompt_len}"
            )
        if self.prefix_len > 0 and self.prefix_id is None:
            raise ValueError(
                f"request {self.request_id!r}: prefix_len without prefix_id"
            )


@dataclass
class Response:
    """Per-request serving outcome with latency accounting."""

    request_id: str
    prompt_len: int
    output_len: int
    arrival_s: float
    first_token_s: float  # virtual time the first output token completed
    finish_s: float
    preemptions: int = 0
    tokens: np.ndarray | None = None  # numeric mode only

    @property
    def ttft_s(self) -> float:
        """Time to first token: queueing + prefill + first decode step."""
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for 1-token outputs)."""
        if self.output_len <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.output_len - 1)

    @property
    def e2e_latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass
class ServingResult:
    """Batch outcome: responses (input order) + aggregate accounting."""

    responses: list[Response]
    stages: StageTimes  # aggregate prefill/decode seconds across all steps
    makespan_s: float  # last finish time (virtual clock)
    n_prefill_steps: int = 0
    n_decode_steps: int = 0
    preemptions: int = 0
    peak_running: int = 0  # max concurrently decoding requests
    kv: dict = field(default_factory=dict)  # PagedKVCache.stats() snapshot

    @property
    def total_tokens(self) -> int:
        return sum(r.output_len for r in self.responses)

    @property
    def throughput_tok_s(self) -> float:
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def mean_ttft_s(self) -> float:
        if not self.responses:
            return 0.0
        return float(np.mean([r.ttft_s for r in self.responses]))

    @property
    def mean_tpot_s(self) -> float:
        if not self.responses:
            return 0.0
        return float(np.mean([r.tpot_s for r in self.responses]))

    def summary(self) -> dict[str, float]:
        return {
            "requests": len(self.responses),
            "total_tokens": self.total_tokens,
            "makespan_s": self.makespan_s,
            "prefill_s": self.stages.prefill_s,
            "decode_s": self.stages.decode_s,
            "throughput_tok_s": self.throughput_tok_s,
            "mean_ttft_s": self.mean_ttft_s,
            "mean_tpot_s": self.mean_tpot_s,
            "preemptions": self.preemptions,
            "peak_running": self.peak_running,
        }


@dataclass
class _Active:
    """Scheduler-internal state for one admitted (or requeued) request."""

    request: Request
    order: int  # admission sequence number (eviction picks the max)
    generated: int = 0
    first_token_s: float = -1.0
    preemptions: int = 0
    cached: int = 0  # prefix tokens reused from the KV cache this admission
    tokens: list = field(default_factory=list)  # numeric mode

    @property
    def ctx(self) -> int:
        """Tokens currently resident in the KV cache."""
        return self.request.prompt_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.max_new_tokens


class ServingEngine:
    """Continuous-batching serving loop over one :class:`QuantRecipe`.

    Parameters
    ----------
    arch:
        Full-size architecture descriptor (``repro.models.zoo.ARCHS``)
        driving the kernel-time model.
    recipe:
        A :class:`QuantRecipe`, recipe name, or legacy ``ServingConfig``
        (the latter timing-only: numeric mode requires a recipe).
    spec:
        GPU spec for the roofline model (default RTX 5090-class).
    kv_token_budget:
        Legacy flat budget: when ``kv_cache`` is not given, the engine
        builds ``PagedKVCache.from_token_budget(kv_token_budget)`` —
        1-token pages, so admission/preemption behave exactly like the
        original flat counter.
    max_batch:
        Maximum concurrently running requests.
    model:
        Optional :class:`~repro.nn.transformer.TransformerLM`. When set,
        requests carrying ``prompt_tokens`` are decoded for real (greedy)
        under ``recipe.to_context()`` and responses include ``tokens``.
    kv_cache:
        A :class:`~repro.serve.kvcache.PagedKVCache` to allocate KV
        memory from (e.g. ``PagedKVCache.from_byte_budget(...)`` so page
        count reflects the recipe's KV bytes/token). The cache's prefix
        store persists across ``run`` calls — a warm system-prompt cache
        carries over.
    """

    def __init__(
        self,
        arch: ArchSpec,
        recipe,
        spec: GPUSpec = RTX5090,
        kv_token_budget: int = 262_144,
        max_batch: int = 256,
        model=None,
        kv_cache: PagedKVCache | None = None,
    ) -> None:
        if isinstance(recipe, str):
            recipe = QuantRecipe.from_name(recipe)
        if kv_cache is None:
            if kv_token_budget < 1:
                raise ValueError("kv_token_budget must be >= 1")
            kv_cache = PagedKVCache.from_token_budget(kv_token_budget)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.arch = arch
        self.recipe = recipe
        self.spec = spec
        self.cfg = as_serving_config(recipe)
        self.kv_cache = kv_cache
        self.kv_token_budget = kv_cache.capacity_tokens
        self.max_batch = max_batch
        self.model = model
        self._qc = None
        if model is not None:
            if not isinstance(recipe, QuantRecipe):
                # A bare ServingConfig carries timing knobs only — running
                # the model without the matching QuantContext would pair
                # quantized timing with unquantized tokens.
                raise ValueError(
                    "numeric mode (model=...) requires a QuantRecipe or "
                    f"recipe name, got {type(recipe).__name__}"
                )
            self._qc = recipe.to_context()

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServingResult:
        """Serve ``requests`` to completion; responses keep input order."""
        if not requests:
            return ServingResult([], StageTimes(0.0, 0.0), 0.0)
        order = {r.request_id: i for i, r in enumerate(requests)}
        if len(order) != len(requests):
            raise ValueError("duplicate request_id in batch")
        largest = max(r.prompt_len + r.max_new_tokens for r in requests)
        if largest > self.kv_cache.capacity_tokens:
            raise ValueError(
                f"kv_token_budget={self.kv_cache.capacity_tokens} cannot hold "
                f"the largest request ({largest} tokens)"
            )

        waiting: deque[_Active] = deque(
            _Active(request=r, order=-1)
            for r in sorted(requests, key=lambda r: (r.arrival_s, order[r.request_id]))
        )
        running: list[_Active] = []
        finished: dict[str, Response] = {}
        clock = 0.0
        prefill_s = decode_s = 0.0
        n_prefill = n_decode = preemptions = 0
        peak_running = 0
        admit_seq = 0

        try:
            while waiting or running:
                # Idle engine: jump to the next arrival.
                if not running and waiting and waiting[0].request.arrival_s > clock:
                    clock = waiting[0].request.arrival_s

                admitted = self._admit(waiting, running, clock)
                if admitted:
                    for state in admitted:
                        state.order = admit_seq
                        admit_seq += 1
                    # Into `running` before timing, so an exception below
                    # cannot strand their KV allocations (freed in the
                    # finally block).
                    running.extend(admitted)
                    peak_running = max(peak_running, len(running))
                    # Prefill step: all admitted prompts processed
                    # together. Requeued requests recompute their full
                    # context; prefix hits skip the cached tokens
                    # (rows < ctx) but still attend over the full context.
                    t = step_time(
                        self.spec, self.arch, self.cfg,
                        [(max(1, s.ctx - s.cached), s.ctx) for s in admitted],
                    )
                    clock += t
                    prefill_s += t
                    n_prefill += 1
                    continue  # re-check admissions before the next decode

                # Decode step: grow every running request by one token.
                preemptions += self._preempt_overflow(waiting, running)
                t = step_time(
                    self.spec, self.arch, self.cfg,
                    [(1, s.ctx) for s in running],
                )
                clock += t
                decode_s += t
                n_decode += 1
                for state in running:
                    if self.model is not None and state.request.prompt_tokens is not None:
                        state.tokens.append(self._next_token(state))
                    self.kv_cache.append_token(state.request.request_id)
                    state.generated += 1
                    if state.first_token_s < 0:
                        state.first_token_s = clock
                for state in [s for s in running if s.done]:
                    running.remove(state)
                    self.kv_cache.free(state.request.request_id)
                    finished[state.request.request_id] = self._response(state, clock)
        finally:
            # The cache persists across runs (warm prefixes); if this run
            # died mid-flight its resident sequences must not leak pages.
            for state in running:
                self.kv_cache.free(state.request.request_id)

        responses = [finished[r.request_id] for r in requests]
        return ServingResult(
            responses=responses,
            stages=StageTimes(prefill_s=prefill_s, decode_s=decode_s),
            makespan_s=clock,
            n_prefill_steps=n_prefill,
            n_decode_steps=n_decode,
            preemptions=preemptions,
            peak_running=peak_running,
            kv=self.kv_cache.stats(),
        )

    # ------------------------------------------------------------------
    def _admit(
        self, waiting: deque[_Active], running: list[_Active], clock: float
    ) -> list[_Active]:
        """Pop every waiting request that has arrived and fits the cache.

        Head-of-line semantics: admission stops at the first request the
        paged allocator rejects, so late arrivals never starve the head.
        """
        admitted: list[_Active] = []
        while waiting and len(running) + len(admitted) < self.max_batch:
            nxt = waiting[0]
            if nxt.request.arrival_s > clock:
                break
            # Pure capacity probe first: _admit polls every scheduler
            # iteration, and a blocked head must not inflate the
            # allocator's failed_allocations counter each decode step.
            if not self.kv_cache.can_allocate(
                nxt.ctx, nxt.request.prefix_id, nxt.request.prefix_len
            ):
                break
            cached = self.kv_cache.try_allocate(
                nxt.request.request_id,
                nxt.ctx,
                prefix_id=nxt.request.prefix_id,
                prefix_len=nxt.request.prefix_len,
            )
            if cached is None:  # pragma: no cover - can_allocate said yes
                break
            nxt.cached = cached
            admitted.append(waiting.popleft())
        return admitted

    def _preempt_overflow(
        self, waiting: deque[_Active], running: list[_Active]
    ) -> int:
        """Evict newest-admitted requests if the next decode would overflow."""
        evicted = 0
        while len(running) > 1:
            needed = self.kv_cache.append_blocks_needed(
                s.request.request_id for s in running
            )
            if self.kv_cache.ensure_free(needed):
                break
            victim = max(running, key=lambda s: s.order)
            running.remove(victim)
            self.kv_cache.free(victim.request.request_id)
            victim.preemptions += 1
            victim.cached = 0
            waiting.appendleft(victim)  # recompute as soon as space frees up
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    def _next_token(self, state: _Active) -> int:
        """Greedy next token from the real model (numeric mode)."""
        seq = np.concatenate(
            [np.asarray(state.request.prompt_tokens), np.array(state.tokens, dtype=int)]
        ) if state.tokens else np.asarray(state.request.prompt_tokens)
        window = seq[-self.model.config.max_seq :]
        from ..nn.tensor import no_grad

        with no_grad():
            logits = self.model(window[None, :], self._qc).data[0, -1]
        return int(np.argmax(logits))

    def _response(self, state: _Active, clock: float) -> Response:
        return Response(
            request_id=state.request.request_id,
            prompt_len=state.request.prompt_len,
            output_len=state.generated,
            arrival_s=state.request.arrival_s,
            first_token_s=state.first_token_s,
            finish_s=clock,
            preemptions=state.preemptions,
            tokens=np.array(state.tokens, dtype=int) if state.tokens else None,
        )
