"""MX+ — the paper's contribution (Section 4).

The block-max (BM) element of an MX block always carries a private exponent
equal to ``e_max`` of the element data type (that is how the shared scale is
chosen, Eq. 1), so its exponent field carries no information. MX+
*repurposes* it as extra mantissa bits:

* NBM (non-block-max) elements: standard MX element encoding.
* BM element: ``(-1)^s * 2**e_max * 1.m`` with ``mbits + ebits`` stored
  mantissa bits (E0M3/E0M5/E0M7 for FP4/FP6/FP8), Eq. (2).
* Per block, one extra byte stores the 5-bit BM index; 3 bits are reserved
  (MX++ uses them for the NBM scale delta). Average width grows by
  ``8 / 32 = 0.25`` bits per element.
* Flush-to-zero: if ``floor(log2(BM)) <= -127 + e_max`` the whole block is
  flushed to zero and the biased shared exponent 0 is reserved to flag it
  (Section 4.1).

The ``decompose_bm`` helper implements Eq. (3): splitting the BM into two
element-type-representable halves ``BM_H + BM_L`` for the software
integration path on MX-native Tensor Cores (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import E2M1, E2M3, E4M3, FloatCodec, floor_log2, round_half_even
from .scale import E8M0_MAX, E8M0_MIN, ZERO_BLOCK_SENTINEL

__all__ = [
    "MXPlusEncoded",
    "MXPlusFormat",
    "MXFP4Plus",
    "MXFP6Plus",
    "MXFP8Plus",
    "MXFP4PlusK64",
    "decompose_bm",
]


@dataclass
class MXPlusEncoded:
    """Structured MX+ encoding.

    ``elem_values`` holds scaled NBM values; the BM slot inside it holds the
    *extended-precision* scaled BM value (``2**e_max * 1.m``). ``bm_index``
    is the per-block position of the BM element; ``reserved`` carries the 3
    reserved bits (zero for MX+, the scale delta for MX++). Flushed blocks
    have ``shared_exp == ZERO_BLOCK_SENTINEL`` and all-zero elements.
    """

    shared_exp: np.ndarray  # (..., nblocks) int32 (sentinel => zero block)
    elem_values: np.ndarray  # (..., nblocks, k) scaled values
    bm_index: np.ndarray  # (..., nblocks) int32
    reserved: np.ndarray  # (..., nblocks) int32 in [0, 7]
    nbm_shared_exp: np.ndarray  # (..., nblocks) int32; == shared_exp for MX+
    blocked: object


class MXPlusFormat(BlockFormat):
    """MX+ extension of an MXFP format (Section 4.1-4.2)."""

    def __init__(self, elem: FloatCodec, block_size: int = 32, name: str | None = None):
        if not isinstance(elem, FloatCodec):
            raise TypeError("MX+ requires a floating-point element type; "
                            "see mxint_plus for the MXINT variant")
        self.elem = elem
        self.block_size = block_size
        self.name = name or f"mx-{elem.name}+"
        # element bits + shared scale byte + BM-index byte per block;
        # precomputed once — the tuner's cost model calls this per candidate.
        self._bits_per_element = elem.bits + 16.0 / block_size

    # number of stored mantissa bits for the BM element (exponent field
    # repurposed): e.g. 3 for MXFP4+ (E0M3), 5 for MXFP6+, 7 for MXFP8+.
    @property
    def bm_mbits(self) -> int:
        return self.elem.mbits + self.elem.ebits

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray, axis: int = -1) -> MXPlusEncoded:
        """Batched MX+ encode: every step is one whole-tensor numpy op.

        :meth:`encode_reference` is the per-block specification this is
        vectorized from; ``tests/test_properties_core.py`` asserts both
        produce identical fields and ``benchmarks/test_encode_speed.py``
        asserts the speedup.
        """
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        absd = np.abs(data)

        bm_index = np.argmax(absd, axis=-1).astype(np.int32)  # first max wins
        amax = np.max(absd, axis=-1)  # == |data|[bm_index], without a gather
        e_bm = floor_log2(amax)

        flush = e_bm <= (-127 + self.elem.emax)  # includes all-zero blocks
        shared_exp = np.clip(e_bm - self.elem.emax, E8M0_MIN, E8M0_MAX).astype(np.int32)
        shared_exp = np.where(flush, ZERO_BLOCK_SENTINEL, shared_exp)

        safe_exp = np.where(flush, 0, shared_exp).astype(np.float64)
        inv_scale = np.exp2(-safe_exp)[..., None]

        # NBM elements: standard MX quantization against the shared scale.
        elem_values = self.elem.quantize(data * inv_scale)

        # BM element: extended mantissa anchored at 2**e_max (Eq. 2).
        idx = bm_index[..., None].astype(np.int64)
        bm_signed = np.take_along_axis(data, idx, axis=-1)[..., 0]
        bm_scaled = self._quantize_bm(bm_signed * inv_scale[..., 0])
        np.put_along_axis(elem_values, idx, bm_scaled[..., None], axis=-1)

        elem_values[flush] = 0.0

        return MXPlusEncoded(
            shared_exp=shared_exp,
            elem_values=elem_values,
            bm_index=bm_index,
            reserved=np.zeros_like(bm_index),
            nbm_shared_exp=shared_exp,
            blocked=blocked,
        )

    def encode_reference(self, x: np.ndarray, axis: int = -1) -> MXPlusEncoded:
        """Per-block Python-loop encoder: the readable MX+ specification.

        One block at a time, exactly the rules of Section 4.1: pick the BM,
        derive the shared scale, flush, quantize NBMs, requantize the BM on
        the extended grid. Kept as the oracle the batched :meth:`encode` is
        tested against, and as the baseline its speedup is measured from.
        """
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        flat = data.reshape(-1, self.block_size)
        n_blocks = flat.shape[0]
        shared_exp = np.empty(n_blocks, dtype=np.int32)
        bm_index = np.empty(n_blocks, dtype=np.int32)
        elem_values = np.zeros_like(flat)
        for i in range(n_blocks):
            block = flat[i]
            absb = np.abs(block)
            j = int(np.argmax(absb))  # first max wins, as in the batched path
            bm_index[i] = j
            e_bm = int(floor_log2(absb[j]))
            if e_bm <= (-127 + self.elem.emax):  # flush-to-zero block
                shared_exp[i] = ZERO_BLOCK_SENTINEL
                continue
            se = int(np.clip(e_bm - self.elem.emax, E8M0_MIN, E8M0_MAX))
            shared_exp[i] = se
            scaled = block / 2.0**se
            vals = self.elem.quantize(scaled)
            vals[j] = self._quantize_bm(np.asarray(scaled[j]))
            elem_values[i] = vals
        lead = data.shape[:-1]
        shared_exp = shared_exp.reshape(lead)
        return MXPlusEncoded(
            shared_exp=shared_exp,
            elem_values=elem_values.reshape(data.shape),
            bm_index=bm_index.reshape(lead),
            reserved=np.zeros(lead, dtype=np.int32),
            nbm_shared_exp=shared_exp,
            blocked=blocked,
        )

    def _quantize_bm(self, scaled_bm: np.ndarray) -> np.ndarray:
        """Quantize the scaled BM to ``(-1)^s * 2**e_max * 1.m`` form.

        The fraction has ``bm_mbits`` bits. Fractions that would round up to
        2.0 saturate at the top code (the paper keeps the shared scale
        untouched, so bumping the exponent is not an option).
        """
        sign = np.where(scaled_bm < 0, -1.0, 1.0)
        anchor = 2.0**self.elem.emax
        f = np.abs(scaled_bm) / anchor  # in [1, 2) unless the scale clamped
        steps = float(1 << self.bm_mbits)
        code = round_half_even((f - 1.0) * steps)
        code = np.clip(code, 0, steps - 1)
        return sign * anchor * (1.0 + code / steps)

    def decode(self, enc: MXPlusEncoded) -> np.ndarray:
        flush = enc.shared_exp == ZERO_BLOCK_SENTINEL
        safe_exp = np.where(flush, 0, enc.shared_exp).astype(np.float64)

        if enc.nbm_shared_exp is enc.shared_exp:
            # MX+: one scale for the whole block — skip the per-element
            # BM/NBM scale select (MX++ decouples them via the delta bits).
            out = enc.elem_values * np.exp2(safe_exp)[..., None]
        else:
            nbm_exp = np.where(flush, 0, enc.nbm_shared_exp).astype(np.float64)
            k = enc.elem_values.shape[-1]
            is_bm = (
                np.arange(k, dtype=np.int32) == enc.bm_index[..., None]
            )
            scale = np.where(is_bm, np.exp2(safe_exp)[..., None], np.exp2(nbm_exp)[..., None])
            out = enc.elem_values * scale
        out[flush] = 0.0
        return from_blocks(enc.blocked, out)

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        return self.decode(self.encode(x, axis))

    def bits_per_element(self) -> float:
        return self._bits_per_element


def decompose_bm(
    bm_value: np.ndarray, shared_exp: np.ndarray, elem: FloatCodec
) -> tuple[np.ndarray, np.ndarray]:
    """Split dequantized BM values into ``BM_H + BM_L`` per Eq. (3).

    Both halves are exactly representable in the element data type after
    dividing by the shared scale, so an MX-native Tensor Core can process
    them with two MMA operations (the second one sparse). Returns
    ``(bm_h, bm_l)`` in the *unscaled* (real-value) domain.

    Only valid for element types whose full mantissa range is encodable
    (E2M1, E2M3): E4M3 reserves its all-ones pattern for NaN, so the high
    half with mantissa 111 would be unrepresentable. The paper's software
    integration targets the FP4/FP6 paths; MXFP8+ relies on the hardware
    path (Section 6) instead.
    """
    if elem.nan_encoding:
        raise ValueError(
            f"Eq. (3) BM decomposition is undefined for {elem.name}: the "
            "NaN-reserved top code makes the high half unrepresentable"
        )
    shared_exp = np.asarray(shared_exp, dtype=np.float64)
    scale = np.exp2(shared_exp)
    scaled = np.asarray(bm_value, dtype=np.float64) / scale
    sign = np.where(scaled < 0, -1.0, 1.0)
    anchor = 2.0**elem.emax
    mext = elem.mbits + elem.ebits
    # um = 1.b1..b_mext with the leading one explicit (x87-style)
    um = np.abs(scaled) / anchor * (1 << mext)  # integer in [2^mext, 2^(mext+1))
    um = round_half_even(um)
    hi_codes = np.floor(um / (1 << elem.ebits))  # top 1+mbits bits
    lo_codes = um - hi_codes * (1 << elem.ebits)  # bottom ebits bits
    bm_h = sign * anchor * hi_codes / (1 << elem.mbits) * scale
    bm_l = sign * 2.0 ** (elem.emax - elem.mbits - 1) * lo_codes / (1 << (elem.ebits - 1)) * scale
    return bm_h, bm_l


def MXFP4Plus() -> MXPlusFormat:
    """MXFP4+: E2M1 NBMs, E0M3 BM (effective E2M3), avg 4.5 bits/elem."""
    return MXPlusFormat(E2M1, name="mxfp4+")


def MXFP6Plus() -> MXPlusFormat:
    """MXFP6+: E2M3 NBMs, E0M5 BM (effective E2M5)."""
    return MXPlusFormat(E2M3, name="mxfp6+")


def MXFP8Plus() -> MXPlusFormat:
    """MXFP8+: E4M3 NBMs, E0M7 BM (effective E4M7)."""
    return MXPlusFormat(E4M3, name="mxfp8+")


def MXFP4PlusK64() -> MXPlusFormat:
    """MXFP4+ over 64-element blocks: the sideband (scale + BM index)
    amortizes to 4.25 avg bits — plain MXFP4's width — trading scale
    granularity for BM precision. A design point for the recipe tuner."""
    return MXPlusFormat(E2M1, block_size=64, name="mxfp4+-k64")
