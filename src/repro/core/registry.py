"""Format registry: string names -> :class:`BlockFormat` factories.

``get_format("mxfp4+")`` is the main entry point used by the evaluation
harness, examples, and benchmarks. Names are case-insensitive.
"""

from __future__ import annotations

import difflib
from typing import Callable

from .blocks import BlockFormat
from .intquant import IntQuantizer
from .msfp import MSFP12, MSFP14, MSFP16
from .mx import MXFP4, MXFP4K64, MXFP6, MXFP6_E3M2, MXFP8, MXFP8_E5M2, MXINT8
from .mxint_plus import MXINT4, MXINT4Plus, MXINT8PlusFormat
from .mxplus import MXFP4Plus, MXFP4PlusK64, MXFP6Plus, MXFP8Plus
from .mxpp import MXFP4PlusPlus, MXFP6PlusPlus, MXFP8PlusPlus
from .nvfp4 import NVFP4, NVFP4Plus
from .smx import SMX4, SMX6, SMX9
from .topk import TopKPromoteFormat

__all__ = [
    "get_format",
    "available_formats",
    "register_format",
    "registry_version",
    "suggest_near_misses",
]

#: bumped on every (re)registration so downstream memo caches (storage
#: bits, KV bits) can key on it instead of going stale.
_REGISTRY_VERSION = 0


def registry_version() -> int:
    """Monotone counter incremented by :func:`register_format`."""
    return _REGISTRY_VERSION


def suggest_near_misses(name: str, candidates: list[str]) -> str:
    """``" — did you mean ...?"`` hint for error messages (or ``""``)."""
    near = difflib.get_close_matches(name.lower(), candidates, n=3, cutoff=0.4)
    return f" — did you mean {', '.join(near)}?" if near else ""

_REGISTRY: dict[str, Callable[[], BlockFormat]] = {
    # OCP MX (Table 1)
    "mxfp4": MXFP4,
    "mxfp4-k64": MXFP4K64,
    "mxfp6": MXFP6,
    "mxfp6-e3m2": MXFP6_E3M2,
    "mxfp8": MXFP8,
    "mxfp8-e5m2": MXFP8_E5M2,
    "mxint8": MXINT8,
    # MX+ / MX++ (Sections 4.1-4.3)
    "mxfp4+": MXFP4Plus,
    "mxfp4+-k64": MXFP4PlusK64,
    "mxfp6+": MXFP6Plus,
    "mxfp8+": MXFP8Plus,
    "mxfp4++": MXFP4PlusPlus,
    "mxfp6++": MXFP6PlusPlus,
    "mxfp8++": MXFP8PlusPlus,
    # MXINT extensions (Table 10)
    "mxint8+": MXINT8PlusFormat,
    "mxint4": MXINT4,
    "mxint4+": MXINT4Plus,
    # NVFP4 (Table 11)
    "nvfp4": NVFP4,
    "nvfp4+": NVFP4Plus,
    # Industry BFP baselines (Figure 2)
    "msfp12": MSFP12,
    "msfp14": MSFP14,
    "msfp16": MSFP16,
    "smx4": SMX4,
    "smx6": SMX6,
    "smx9": SMX9,
    # Plain integer baselines
    "int4-g128": lambda: IntQuantizer(4, 128),
    "int8-g128": lambda: IntQuantizer(8, 128),
    # Figure 14 top-k analysis formats
    "mxfp4-top1": lambda: TopKPromoteFormat(1),
    "mxfp4-top2": lambda: TopKPromoteFormat(2),
    "mxfp4-top3": lambda: TopKPromoteFormat(3),
    "mxfp4-top4": lambda: TopKPromoteFormat(4),
}


def register_format(
    name: str, factory: Callable[[], BlockFormat], overwrite: bool = False
) -> None:
    """Register a custom format under ``name``.

    Raises ``ValueError`` on a duplicate name unless ``overwrite=True``.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(
            f"format {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    global _REGISTRY_VERSION
    _REGISTRY_VERSION += 1
    _REGISTRY[key] = factory


def available_formats() -> list[str]:
    """Sorted names of all registered formats."""
    return sorted(_REGISTRY)


def get_format(name: str) -> BlockFormat:
    """Instantiate a format by name; raises ``KeyError`` with suggestions."""
    key = name.lower()
    if key not in _REGISTRY:
        hint = suggest_near_misses(key, available_formats())
        raise KeyError(
            f"unknown format {name!r}{hint}; "
            f"available: {', '.join(available_formats())}"
        )
    return _REGISTRY[key]()
