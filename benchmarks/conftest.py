"""Session fixtures for the experiment benchmarks: trained zoo models,
corpora, and harness tasks (trained once, cached on disk)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.data.tasks import TASKS, make_task
from repro.models.zoo import PROFILES, get_corpus, load_model

#: the six models of Tables 2/3
TABLE_MODELS = [
    "opt-66b-sim",
    "llama-3.1-8b-sim",
    "llama-3.1-70b-sim",
    "mistral-7b-sim",
    "phi-4-14b-sim",
    "qwen-2.5-14b-sim",
]


@pytest.fixture(scope="session")
def zoo():
    return {name: load_model(name) for name in TABLE_MODELS}


@pytest.fixture(scope="session")
def llama8b():
    return load_model("llama-3.1-8b-sim")


@pytest.fixture(scope="session")
def mistral7b():
    return load_model("mistral-7b-sim")


@pytest.fixture(scope="session")
def llama2_13b():
    return load_model("llama-2-13b-sim")


@pytest.fixture(scope="session")
def wiki2():
    return get_corpus("wiki2-sim", 240_000)


@pytest.fixture(scope="session")
def c4():
    return get_corpus("c4-sim", 240_000)


@pytest.fixture(scope="session")
def harness_tasks(wiki2):
    """Harness tasks at reduced question counts (benchmark budget)."""
    tasks = {}
    for name, spec in TASKS.items():
        spec = dataclasses.replace(spec, n_questions=min(spec.n_questions, 48))
        tasks[name] = make_task(wiki2, spec)
    return tasks
