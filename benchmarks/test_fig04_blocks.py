"""Figure 4: activation-magnitude heatmap structure and the sampled-block
MXFP4/MXFP6 representations (the worked example is exact)."""

import numpy as np
from _util import print_table, run_once, save_result

from repro.core import MXFP4, MXFP6
from repro.nn.tensor import no_grad

FIG4_UPPER = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])
FIG4_LOWER = np.array([-0.27, 0.04, -1.02, 0.18, -0.45, -0.20])


def _attention_input(model, corpus):
    """Post-norm attention input of layer 0 (the Figure 4a tensor)."""
    batch = corpus.val_batch(8, 64)
    with no_grad():
        x = model.embed(batch[:, :-1])
        x = x + model._positional(batch.shape[1] - 1)
        return model.blocks[0].attn_norm(x).data


def test_fig04(benchmark, llama8b, wiki2):
    def run():
        acts = _attention_input(llama8b, wiki2)
        flat = np.abs(acts.reshape(-1, acts.shape[-1]))
        channel_mag = flat.mean(axis=0)
        top = np.argsort(-channel_mag)[:4]
        return {
            "channel_mean_mag_top4": channel_mag[top].tolist(),
            "channel_mean_mag_median": float(np.median(channel_mag)),
            "outlier_channels": top.tolist(),
            "upper_block_mxfp4": MXFP4()(FIG4_UPPER).tolist(),
            "upper_block_mxfp6": MXFP6()(FIG4_UPPER).tolist(),
            "lower_block_mxfp4": MXFP4()(FIG4_LOWER).tolist(),
        }

    out = run_once(benchmark, run)
    save_result("fig04_blocks", out)
    print(out)

    # Channel-concentrated outliers (the heatmap's vertical stripes).
    assert out["channel_mean_mag_top4"][0] > 8 * out["channel_mean_mag_median"]
    # The paper's printed MXFP4 representations, exactly.
    assert out["upper_block_mxfp4"] == [0.0, 0.0, 1.0, 0.0, -8.0, 0.0]
    assert out["upper_block_mxfp6"][4] == -10.0
    assert out["lower_block_mxfp4"] == [-0.25, 0.0, -1.0, 0.125, -0.5, -0.25]
