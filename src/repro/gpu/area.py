"""Area/power model for the MX+ Tensor-Core components (Table 5).

Component-level estimator at a 28nm-class node. Unit costs are the
synthesis results the paper reports, decomposed per instance; the model
composes them per Tensor Core (32 DPEs; 16 FSUs, one BM Detector and one
BCU per DPE-pair datapath as in Figure 9) and supports first-order node
scaling for what-if comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Component", "MXPLUS_COMPONENTS", "tensor_core_overhead", "scale_to_node"]


@dataclass(frozen=True)
class Component:
    name: str
    instances: int  # per Tensor Core
    unit_area_mm2: float
    unit_power_mw: float

    @property
    def area_mm2(self) -> float:
        return self.instances * self.unit_area_mm2

    @property
    def power_mw(self) -> float:
        return self.instances * self.unit_power_mw


#: Per-Tensor-Core component inventory (Table 5: 32 x each group).
MXPLUS_COMPONENTS: list[Component] = [
    # 32 DPEs x 16 FSUs each; unit cost from 0.004 mm^2 / 0.59 mW totals.
    Component("forward-swap-unit", 32 * 16, 0.004 / (32 * 16), 0.59 / (32 * 16)),
    Component("bm-detector", 32, 0.004 / 32, 2.86 / 32),
    Component("bm-compute-unit", 32, 0.012 / 32, 8.66 / 32),
]

#: Reference totals for competing Tensor-Core integrations (the paper
#: cites RM-STC and OliVe as notably larger).
REFERENCE_AREAS_MM2 = {"mx+": 0.020, "rm-stc": 0.137, "olive": 0.081}


def tensor_core_overhead(components: list[Component] | None = None) -> dict[str, float]:
    """Total added area (mm^2) and power (mW) per Tensor Core."""
    comps = MXPLUS_COMPONENTS if components is None else components
    return {
        "area_mm2": round(sum(c.area_mm2 for c in comps), 6),
        "power_mw": round(sum(c.power_mw for c in comps), 4),
    }


def scale_to_node(area_mm2: float, from_nm: float = 28.0, to_nm: float = 4.0) -> float:
    """First-order (quadratic) area scaling between process nodes.

    The paper notes the overhead "would be even smaller" on the 4nm node
    the RTX 5090 uses; this gives the standard back-of-envelope number.
    """
    return area_mm2 * (to_nm / from_nm) ** 2
