"""Property tests pinning the event loop's determinism contract.

Three families of invariants, all hypothesis-driven over seeds, routers,
schedulers, and fleet shapes:

* **sharded ≡ single-process** — for every router in
  ``SHARDABLE_ROUTERS``, ``run_sharded`` must reproduce ``cluster.run``
  *bit-identically*: same assignments, same per-request latencies, same
  per-replica stage accounting. This is the contract that lets the
  fleet simulation scale across processes without changing a single
  float.
* **submission-order invariance** — the loop orders events by virtual
  time (ties: arrival, then transfer, then step; replica ties to the
  lowest index), so permuting the *input list* of a trace with distinct
  arrival times must not change any per-request outcome, in the unified
  and the disaggregated loop alike.
* **heap bookkeeping** — ``_EventState`` must agree with the linear
  scan it replaced: earliest time wins, replica ties break to the
  lowest index, and stale heap entries (from re-published replicas) are
  never surfaced.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models.zoo import ARCHS
from repro.serve import (
    SHARDABLE_ROUTERS,
    AutoscalePolicy,
    ServingCluster,
    available_schedulers,
    make_workload,
    run_sharded,
)
from repro.serve.cluster import _EventState

ARCH = ARCHS["llama-2-7b"]

# Keep each example fast: small traces, modest KV budget. The properties
# are about ordering and determinism, not scale — scale is benchmarked.
PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _cluster(router, scheduler, n_replicas, **kw):
    return ServingCluster(
        ARCH,
        "mxfp4+",
        n_replicas=n_replicas,
        router=router,
        scheduler=scheduler,
        kv_token_budget=32_768,
        **kw,
    )


def _fingerprint(fleet):
    """Everything observable about a run, hashable for equality."""
    return (
        fleet.makespan_s,
        fleet.total_tokens,
        tuple(sorted(fleet.assignments.items())),
        tuple(
            (r.request_id, r.ttft_s, r.tpot_s, r.finish_s)
            for r in fleet.responses
        ),
        tuple(
            (res.makespan_s, res.stages.prefill_s, res.stages.decode_s)
            for res in fleet.replica_results
        ),
    )


def _by_id(fleet):
    return {
        r.request_id: (r.ttft_s, r.tpot_s, r.finish_s) for r in fleet.responses
    }


class TestShardedEquivalence:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 1_000_000),
        router=st.sampled_from(sorted(SHARDABLE_ROUTERS)),
        scheduler=st.sampled_from(available_schedulers()),
        n_replicas=st.integers(1, 3),
    )
    def test_sharded_bitidentical(self, seed, router, scheduler, n_replicas):
        reqs = make_workload(18, seed=seed, rate_rps=120.0)
        cluster = _cluster(router, scheduler, n_replicas)
        single = _fingerprint(cluster.run(reqs))
        sharded = _fingerprint(run_sharded(cluster, reqs, n_workers=2))
        assert single == sharded

    @PROPERTY_SETTINGS
    @given(seed=st.integers(0, 1_000_000))
    def test_sharded_inline_and_pooled_agree(self, seed):
        # n_workers=1 (in-process) and n_workers=2 (multiprocessing) take
        # different code paths to the same merge; both must match run().
        reqs = make_workload(16, seed=seed, rate_rps=80.0)
        cluster = _cluster("round-robin", "prefill-first", 2)
        fingerprints = {
            _fingerprint(cluster.run(reqs)),
            _fingerprint(run_sharded(cluster, reqs, n_workers=1)),
            _fingerprint(run_sharded(cluster, reqs, n_workers=2)),
        }
        assert len(fingerprints) == 1

    def test_load_feedback_routers_need_opt_in(self):
        reqs = make_workload(8, seed=0, rate_rps=50.0)
        cluster = _cluster("queue-depth", "prefill-first", 2)
        with pytest.raises(ValueError, match="allow_approximate"):
            run_sharded(cluster, reqs)
        # Opted in: deterministic (repeat runs identical), just not the
        # same assignment the live loop would make.
        a = run_sharded(cluster, reqs, n_workers=2, allow_approximate=True)
        b = run_sharded(cluster, reqs, n_workers=2, allow_approximate=True)
        assert _fingerprint(a) == _fingerprint(b)

    def test_autoscale_and_disagg_rejected(self):
        reqs = make_workload(4, seed=0)
        scaled = ServingCluster(
            ARCH, "mxfp4+", n_replicas=2, kv_token_budget=32_768,
            autoscale=AutoscalePolicy(min_replicas=1, max_replicas=4),
        )
        with pytest.raises(ValueError, match="autoscal"):
            run_sharded(scaled, reqs)
        disagg = ServingCluster(
            ARCH, "mxfp4+", n_prefill=1, n_decode=1, kv_token_budget=32_768,
        )
        with pytest.raises(ValueError, match="disaggregated"):
            run_sharded(disagg, reqs)


class TestSubmissionOrderInvariance:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 1_000_000),
        shuffle_seed=st.integers(0, 1_000_000),
        router=st.sampled_from(
            ["round-robin", "prefix-affinity", "queue-depth"]
        ),
    )
    def test_unified_loop_permutation_invariant(
        self, seed, shuffle_seed, router
    ):
        # Poisson arrivals are distinct almost surely, so the canonical
        # submission order is unique and the input permutation must not
        # leak into any outcome.
        reqs = make_workload(20, seed=seed, rate_rps=100.0)
        shuffled = list(reqs)
        random.Random(shuffle_seed).shuffle(shuffled)
        cluster = _cluster(router, "prefill-first", 3)
        a = cluster.run(reqs)
        b = cluster.run(shuffled)
        assert a.assignments == b.assignments
        assert _by_id(a) == _by_id(b)
        assert a.makespan_s == b.makespan_s

    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 1_000_000),
        shuffle_seed=st.integers(0, 1_000_000),
    )
    def test_disagg_loop_permutation_invariant(self, seed, shuffle_seed):
        # The three-way tie rule (arrival ≤ transfer ≤ step) must hold
        # regardless of how the input list was ordered.
        reqs = make_workload(12, seed=seed, rate_rps=60.0)
        shuffled = list(reqs)
        random.Random(shuffle_seed).shuffle(shuffled)
        def runner():
            return ServingCluster(
                ARCH, "mxfp4+", n_prefill=1, n_decode=2,
                kv_token_budget=32_768,
            )
        a = runner().run(reqs)
        b = runner().run(shuffled)
        assert a.assignments == b.assignments
        assert a.decode_assignments == b.decode_assignments
        assert _by_id(a) == _by_id(b)
        assert [t["arrive_s"] for t in a.transfers] == [
            t["arrive_s"] for t in b.transfers
        ]


class _StubEngine:
    """Minimal peek_next_event carrier for _EventState unit tests."""

    def __init__(self, t):
        self.t = t

    def peek_next_event(self):
        return self.t


class TestEventHeap:
    def test_earliest_time_wins_ties_to_lowest_index(self):
        state = _EventState(
            [_StubEngine(2.0), _StubEngine(1.0), _StubEngine(1.0)]
        )
        assert state.peek() == (1.0, 1)  # not (1.0, 2): lowest index

    def test_drained_replicas_are_invisible(self):
        state = _EventState([_StubEngine(None), _StubEngine(3.0)])
        assert state.peek() == (3.0, 1)
        state.replicas[1].t = None
        state.touch(1)
        assert state.peek() == (None, None)

    def test_stale_entries_never_surface(self):
        engines = [_StubEngine(1.0), _StubEngine(2.0)]
        state = _EventState(engines)
        engines[0].t = 5.0  # replica 0's schedule moved later...
        state.touch(0)  # ...and the old t=1.0 entry is now stale
        assert state.peek() == (2.0, 1)
        state.pop_head()
        assert state.peek() == (5.0, 0)

    def test_touch_after_every_mutation_keeps_order(self):
        # Simulate submit/step interleaving: times only move forward, and
        # peek always returns the current minimum over live replicas.
        rng = random.Random(7)
        engines = [_StubEngine(float(i + 1)) for i in range(4)]
        state = _EventState(engines)
        for _ in range(200):
            t, idx = state.peek()
            expect = min(
                (e.t, j) for j, e in enumerate(engines) if e.t is not None
            )
            assert (t, idx) == expect
            state.pop_head()
            engines[idx].t = (
                None if rng.random() < 0.1 else t + rng.random()
            )
            state.touch(idx)
            if all(e.t is None for e in engines):
                break
