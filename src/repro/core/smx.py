"""Shared Microexponents (SMX) — two-level scaled BFP (ISCA'23).

A group of ``k1 = 16`` elements shares an 8-bit first-level exponent; pairs
of elements (``k2 = 2``) within the group share a one-bit *microexponent*
that shifts the pair's effective scale down by at most one. Elements are
sign + mantissa with no implicit leading bit, as in MSFP.

Average bits per element = (1 + mbits) + 8/16 + 1/2:

* SMX4: 2 mantissa bits  -> 4.0 bits/elem
* SMX6: 4 mantissa bits  -> 6.0 bits/elem
* SMX9: 7 mantissa bits  -> 9.0 bits/elem
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import floor_log2, round_half_even

__all__ = ["SMXFormat", "SMX4", "SMX6", "SMX9"]


class SMXFormat(BlockFormat):
    def __init__(
        self,
        mantissa_bits: int,
        block_size: int = 16,
        subgroup: int = 2,
        name: str | None = None,
    ):
        if block_size % subgroup:
            raise ValueError("subgroup size must divide block size")
        self.mantissa_bits = mantissa_bits
        self.block_size = block_size
        self.subgroup = subgroup
        self.name = name or f"smx{mantissa_bits + 2}"

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        amax = np.max(np.abs(data), axis=-1)
        shared_exp = np.clip(floor_log2(amax), -127, 127)

        # Per-pair microexponent: shift down by one when the whole pair
        # has headroom (pair max exponent strictly below the shared one).
        pair_shape = data.shape[:-1] + (self.block_size // self.subgroup, self.subgroup)
        pairs = data.reshape(pair_shape)
        pair_amax = np.max(np.abs(pairs), axis=-1)
        pair_exp = floor_log2(pair_amax)
        micro = np.clip(shared_exp[..., None] - pair_exp, 0, 1)
        micro = np.where(pair_amax == 0, 1, micro)  # all-zero pair: harmless

        eff_exp = shared_exp[..., None] - micro
        ulp = np.exp2(eff_exp.astype(np.float64) + 1 - self.mantissa_bits)[..., None]
        max_code = (1 << self.mantissa_bits) - 1
        q = np.clip(round_half_even(pairs / ulp), -max_code, max_code)
        out = (q * ulp).reshape(data.shape)
        out = np.where(amax[..., None] == 0, 0.0, out)
        return from_blocks(blocked, out)

    def bits_per_element(self) -> float:
        return (1 + self.mantissa_bits) + 8.0 / self.block_size + 1.0 / self.subgroup


def SMX4() -> SMXFormat:
    return SMXFormat(2, name="smx4")


def SMX6() -> SMXFormat:
    return SMXFormat(4, name="smx6")


def SMX9() -> SMXFormat:
    return SMXFormat(7, name="smx9")
