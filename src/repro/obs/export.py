"""Trace exporters: Perfetto JSON, JSONL logs, timeline reports, CSV.

The tracer keeps flat events; this module turns them into artifacts:

* :func:`lifecycle_spans` — derive per-request queue / prefill /
  decode / transfer intervals from the ordered event stream (span
  structure is reconstructed here so the hot emit path stays a tuple
  append).
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``. Replica ``r`` maps to pid ``r + 1``; pid 0 is
  the cluster lane (routing, transfers, metric counters); tid 0 on each
  replica is the step track and each request gets its own tid. Spans
  are matched ``B``/``E`` pairs, lifecycle moments are ``i`` instants,
  metric series become ``C`` counters.
* :func:`validate_chrome_trace` — the schema check CI runs: ``ts``
  non-decreasing and every ``B`` matched by an ``E`` on its track.
* :func:`write_event_log` — one JSON object per event (JSONL), the
  grep-friendly form.
* :func:`timeline_report` — a markdown/terminal per-request table.
* :func:`write_metrics_csv` — gauge series as ``name,t,value`` rows.

All writers serialise with sorted keys and fixed separators, so the
same event multiset always produces byte-identical files — the
determinism contract the obs tests pin.

>>> from repro.obs.trace import TraceEvent
>>> events = [
...     TraceEvent(0.0, 0, "arrive", "r0", (8, 2)),
...     TraceEvent(0.1, 0, "admit", "r0", (0, 8)),
...     TraceEvent(0.1, 0, "prefill_chunk", "r0", (8, 0.2)),
...     TraceEvent(0.5, 0, "finish", "r0", (2,)),
... ]
>>> [(s.name, s.t0, s.t1) for s in lifecycle_spans(events)]
[('queue', 0.0, 0.1), ('prefill', 0.1, 0.2), ('decode', 0.2, 0.5)]
>>> payload = chrome_trace(events)
>>> validate_chrome_trace(payload)["complete_pairs"]
3
"""

from __future__ import annotations

import json
from typing import Iterable, NamedTuple

from .metrics import MetricsRegistry
from .trace import KIND_ORDER, TraceEvent, event_key

__all__ = [
    "Span",
    "lifecycle_spans",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_event_log",
    "timeline_report",
    "write_metrics_csv",
]

_JSON_KW = {"sort_keys": True, "separators": (",", ":")}

#: Lifecycle moments rendered as Perfetto instant events.
_INSTANT_KINDS = (
    "arrive",
    "route",
    "autoscale",
    "import",
    "admit",
    "preempt",
    "first_token",
    "finish",
    "export",
)


class Span(NamedTuple):
    """One derived interval in a request's life.

    ``name`` is ``queue`` / ``prefill`` / ``decode`` / ``transfer``;
    ``replica`` is ``-1`` for cluster-lane spans (transfers).

    >>> Span("r0", "decode", 1.0, 2.5, 0).name
    'decode'
    """

    req: str
    name: str
    t0: float
    t1: float
    replica: int


def lifecycle_spans(events: Iterable[TraceEvent]) -> list[Span]:
    """Reconstruct per-request spans from the flat event stream.

    Walks each request's events in canonical order and stitches the
    state machine back together: ``arrive``/``import`` open a queue
    wait, ``admit`` closes it, ``prefill_chunk`` events are prefill
    spans, the gap from the last chunk (or admission) to
    ``preempt``/``export``/``finish`` is decode, and ``transfer``
    events become cluster-lane spans. Tolerant of truncated streams
    (flight-recorder rings drop prefixes): spans whose opening event
    was evicted are simply not emitted.

    Output order is deterministic: requests sorted by id, spans in
    time order within a request.
    """
    by_req: dict[str, list[TraceEvent]] = {}
    for e in sorted(events, key=event_key):
        if e.req:
            by_req.setdefault(e.req, []).append(e)

    spans: list[Span] = []
    for req in sorted(by_req):
        queued_at: float | None = None
        admit_t: float | None = None
        last_chunk_end: float | None = None
        for e in by_req[req]:
            if e.kind in ("arrive", "import"):
                queued_at = e.t
            elif e.kind == "admit":
                if queued_at is not None:
                    spans.append(Span(req, "queue", queued_at, e.t, e.replica))
                    queued_at = None
                admit_t, last_chunk_end = e.t, None
            elif e.kind == "prefill_chunk":
                rows, t_end = e.data[0], e.data[1]
                spans.append(Span(req, "prefill", e.t, t_end, e.replica))
                last_chunk_end = t_end
            elif e.kind in ("preempt", "export", "finish"):
                start = last_chunk_end if last_chunk_end is not None else admit_t
                if start is not None and e.t > start:
                    spans.append(Span(req, "decode", start, e.t, e.replica))
                admit_t = last_chunk_end = None
                if e.kind == "preempt":
                    queued_at = e.t
            elif e.kind == "transfer":
                arrive_s = e.data[5]
                spans.append(Span(req, "transfer", e.t, arrive_s, -1))
    return spans


def _us(t: float) -> float:
    """Virtual seconds → trace microseconds (Perfetto's unit)."""
    return round(t * 1_000_000.0, 3)


def chrome_trace(
    events: Iterable[TraceEvent],
    metrics: MetricsRegistry | dict | None = None,
) -> dict:
    """Build a Chrome trace-event payload from events (+ optional metrics).

    Deterministic: the payload is a pure function of the event multiset
    and the metrics snapshot. Pass the same ``Tracer.events()`` twice
    and the serialised bytes match (see :func:`write_chrome_trace`).
    """
    events = sorted(events, key=event_key)
    spans = lifecycle_spans(events)

    # Deterministic lane assignment: pid = replica + 1 (pid 0 is the
    # cluster lane), tid = 0 for the step track, requests numbered in
    # sorted-id order per pid starting at 1.
    req_tid: dict[tuple[int, str], int] = {}
    per_pid_reqs: dict[int, set[str]] = {}
    for s in spans:
        per_pid_reqs.setdefault(s.replica + 1, set()).add(s.req)
    for e in events:
        if e.req and e.kind in _INSTANT_KINDS:
            per_pid_reqs.setdefault(e.replica + 1, set()).add(e.req)
    for pid in per_pid_reqs:
        for i, req in enumerate(sorted(per_pid_reqs[pid])):
            req_tid[(pid, req)] = i + 1

    # Per-track sequences are built in causal order, then stably merged
    # by ts — equal-ts B/E pairs on one track keep their relative order.
    tracks: dict[tuple[int, int], list[dict]] = {}

    def track(pid: int, tid: int) -> list[dict]:
        return tracks.setdefault((pid, tid), [])

    for s in spans:
        pid = s.replica + 1
        tid = req_tid[(pid, s.req)]
        args = {"req": s.req}
        track(pid, tid).append(
            {"name": s.name, "cat": "request", "ph": "B",
             "ts": _us(s.t0), "pid": pid, "tid": tid, "args": args}
        )
        track(pid, tid).append(
            {"name": s.name, "cat": "request", "ph": "E",
             "ts": _us(s.t1), "pid": pid, "tid": tid}
        )

    for e in events:
        if e.kind == "step":
            t_end, kind, n_prefill, n_decode = e.data[0], e.data[1], e.data[2], e.data[3]
            notes = e.data[4] if len(e.data) > 4 else ()
            pid = e.replica + 1
            args = {"kind": kind, "prefill_rows": n_prefill, "decode_rows": n_decode}
            for key, value in notes:
                args[str(key)] = value
            track(pid, 0).append(
                {"name": f"step:{kind}", "cat": "step", "ph": "B",
                 "ts": _us(e.t), "pid": pid, "tid": 0, "args": args}
            )
            track(pid, 0).append(
                {"name": f"step:{kind}", "cat": "step", "ph": "E",
                 "ts": _us(t_end), "pid": pid, "tid": 0}
            )
        elif e.kind in _INSTANT_KINDS:
            pid = e.replica + 1
            tid = req_tid.get((pid, e.req), 0)
            track(pid, tid).append(
                {"name": e.kind, "cat": "lifecycle", "ph": "i", "s": "t",
                 "ts": _us(e.t), "pid": pid, "tid": tid,
                 "args": {"req": e.req, "data": list(e.data)}}
            )

    if metrics is not None:
        snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        for name in sorted(snapshot.get("series", {})):
            for t, value in snapshot["series"][name]:
                track(0, 0).append(
                    {"name": name, "cat": "metric", "ph": "C",
                     "ts": _us(t), "pid": 0, "tid": 0, "args": {name: value}}
                )

    merged: list[dict] = []
    for key in sorted(tracks):
        merged.extend(tracks[key])
    merged.sort(key=lambda ev: ev["ts"])  # stable: per-track order kept

    meta: list[dict] = []
    for pid in sorted({k[0] for k in tracks}):
        pname = "cluster" if pid == 0 else f"replica-{pid - 1}"
        meta.append({"name": "process_name", "ph": "M", "ts": 0,
                     "pid": pid, "tid": 0, "args": {"name": pname}})
    tid_name = {(pid, tid): req for (pid, req), tid in req_tid.items()}
    for pid, tid in sorted(tracks):
        if tid == 0:
            tname = "metrics" if pid == 0 else "steps"
        else:
            tname = tid_name.get((pid, tid), f"tid-{tid}")
        meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                     "pid": pid, "tid": tid, "args": {"name": tname}})

    return {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "n_events": len(events)},
        "traceEvents": meta + merged,
    }


def write_chrome_trace(
    path,
    events: Iterable[TraceEvent],
    metrics: MetricsRegistry | dict | None = None,
) -> dict:
    """Serialise :func:`chrome_trace` to ``path`` (byte-deterministic).

    Sorted keys + fixed separators: the same events and metrics always
    yield the same bytes. Returns the payload.
    """
    payload = chrome_trace(events, metrics)
    with open(path, "w") as fh:
        json.dump(payload, fh, **_JSON_KW)
        fh.write("\n")
    return payload


def validate_chrome_trace(payload: dict) -> dict:
    """Schema-check a trace payload; raise ``ValueError`` on violation.

    Checks the two properties CI gates on: non-``M`` events appear in
    non-decreasing ``ts`` order, and every ``B`` has a matching same-name
    ``E`` on its ``(pid, tid)`` track (LIFO nesting). Returns summary
    stats: total events, matched pair count, instants, counters.
    """
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ValueError("payload has no traceEvents list")
    last_ts = None
    stacks: dict[tuple, list[str]] = {}
    pairs = instants = counters = 0
    for ev in trace_events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event missing numeric ts: {ev}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(f"ts went backwards: {ts} < {last_ts}")
        last_ts = ts
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"E without B on track {key}: {ev}")
            opened = stack.pop()
            if opened != ev["name"]:
                raise ValueError(
                    f"mismatched pair on track {key}: B={opened!r} E={ev['name']!r}"
                )
            pairs += 1
        elif ph == "i":
            instants += 1
        elif ph == "C":
            counters += 1
        else:
            raise ValueError(f"unknown phase {ph!r}: {ev}")
    unclosed = {k: v for k, v in stacks.items() if v}
    if unclosed:
        raise ValueError(f"unclosed B events: {unclosed}")
    return {
        "n_events": len(trace_events),
        "complete_pairs": pairs,
        "instants": instants,
        "counters": counters,
    }


def write_event_log(path, events: Iterable[TraceEvent]) -> int:
    """Write events as JSONL (one object per line, canonical order).

    The grep-friendly artifact: ``jq 'select(.kind=="preempt")'`` and
    friends work directly. Returns the number of lines written.
    """
    ordered = sorted(events, key=event_key)
    with open(path, "w") as fh:
        for e in ordered:
            fh.write(json.dumps(
                {"t": e.t, "replica": e.replica, "kind": e.kind,
                 "req": e.req, "data": list(e.data)},
                **_JSON_KW,
            ))
            fh.write("\n")
    return len(ordered)


def timeline_report(
    events: Iterable[TraceEvent],
    max_requests: int = 20,
) -> str:
    """Render a markdown per-request timeline table plus event counts.

    One row per request (first ``max_requests`` by arrival): arrival,
    admission, finish, and the summed queue / prefill / decode seconds
    from :func:`lifecycle_spans`. Readable both as markdown and raw in
    a terminal.
    """
    events = sorted(events, key=event_key)
    spans = lifecycle_spans(events)
    per_req: dict[str, dict] = {}
    for e in events:
        if not e.req:
            continue
        row = per_req.setdefault(
            e.req, {"arrive": None, "admit": None, "finish": None, "preempts": 0}
        )
        if e.kind == "arrive" and row["arrive"] is None:
            row["arrive"] = e.t
        elif e.kind == "admit" and row["admit"] is None:
            row["admit"] = e.t
        elif e.kind == "finish":
            row["finish"] = e.t
        elif e.kind == "preempt":
            row["preempts"] += 1
    for s in spans:
        row = per_req.get(s.req)
        if row is not None:
            row[s.name] = row.get(s.name, 0.0) + (s.t1 - s.t0)

    kind_counts: dict[str, int] = {}
    for e in events:
        kind_counts[e.kind] = kind_counts.get(e.kind, 0) + 1

    ordered_reqs = sorted(
        per_req,
        key=lambda r: (per_req[r]["arrive"] if per_req[r]["arrive"] is not None else float("inf"), r),
    )

    def fmt(v) -> str:
        return f"{v:.4f}" if isinstance(v, float) else ("-" if v is None else str(v))

    lines = [
        "# Timeline report",
        "",
        f"{len(per_req)} requests, {len(events)} events "
        f"(showing first {min(max_requests, len(per_req))} by arrival)",
        "",
        "| request | arrive | admit | finish | queue_s | prefill_s | decode_s | preempts |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for req in ordered_reqs[:max_requests]:
        row = per_req[req]
        lines.append(
            "| {} | {} | {} | {} | {} | {} | {} | {} |".format(
                req, fmt(row["arrive"]), fmt(row["admit"]), fmt(row["finish"]),
                fmt(row.get("queue", 0.0)), fmt(row.get("prefill", 0.0)),
                fmt(row.get("decode", 0.0)), row["preempts"],
            )
        )
    lines += ["", "## Event counts", ""]
    for kind in sorted(kind_counts, key=lambda k: KIND_ORDER.get(k, 99)):
        lines.append(f"- {kind}: {kind_counts[kind]}")
    return "\n".join(lines) + "\n"


def write_metrics_csv(path, metrics: MetricsRegistry | dict) -> int:
    """Write gauge series as ``series,t,value`` CSV rows (sorted).

    Accepts a live registry or a ``snapshot()`` dict. Returns the
    number of data rows written.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    rows = 0
    with open(path, "w") as fh:
        fh.write("series,t,value\n")
        for name in sorted(snapshot.get("series", {})):
            for t, value in snapshot["series"][name]:
                fh.write(f"{name},{t!r},{value!r}\n")
                rows += 1
    return rows
