"""repro — reproduction of "MX+: Pushing the Limits of Microscaling Formats
for Efficient Large Language Model Serving" (MICRO 2025).

Quickstart::

    import numpy as np
    from repro import get_format

    x = np.random.randn(4, 128)
    mxfp4 = get_format("mxfp4")
    mxfp4_plus = get_format("mxfp4+")
    print(np.mean((x - mxfp4(x)) ** 2), np.mean((x - mxfp4_plus(x)) ** 2))

Subpackages
-----------
``repro.core``
    The format library (MX, MX+, MX++, NVFP4, MSFP, SMX, MXINT, ...).
``repro.nn`` / ``repro.data`` / ``repro.models``
    Numpy DNN substrate, synthetic datasets, and the scaled-down model zoo.
``repro.eval``
    Perplexity and task-accuracy harness under quantized inference.
``repro.quant``
    Baseline quantization schemes (SmoothQuant, QuaRot, Atom, AWQ, ...).
``repro.gpu``
    GPU performance substrate: Tensor-Core timing, serving simulator,
    hardware-integration model, area/power.
``repro.serve``
    Unified serving API: :class:`~repro.serve.QuantRecipe` (the one
    configuration surface) and :class:`~repro.serve.ServingEngine`
    (request-level continuous batching with TTFT/TPOT accounting).
``repro.tune``
    Mixed-precision recipe autotuner: per-layer sensitivity profiling,
    serving cost model, greedy + evolutionary search, Pareto frontier.
"""

from .core import available_formats, get_format

__version__ = "1.1.0"
__all__ = [
    "get_format",
    "available_formats",
    "QuantRecipe",
    "ServingEngine",
    "__version__",
]


def __getattr__(name):
    # Lazy: repro.serve pulls in the nn/gpu substrates, which top-level
    # ``import repro`` should not pay for.
    if name in ("QuantRecipe", "ServingEngine"):
        from . import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
