"""Generate docs/API.md from the `repro.serve` / `repro.tune` / `repro.bench` docstrings.

The reference is assembled from the packages' own ``__all__`` surfaces —
one section per module, one entry per public symbol, with class entries
listing their public methods and properties. Because the source of truth
is the docstrings, the page can never describe an API that does not
exist; a CI freshness gate (mirroring the EXPERIMENTS.md one) regenerates
it and fails on drift:

    PYTHONPATH=src python benchmarks/make_api_reference.py
    git diff --exit-code docs/API.md

Generation doubles as the **docstring-coverage check**: any public
symbol, public method, or public property in these packages without a
docstring aborts the script (and the docs CI job) with a list of the
offenders — new serving/tuning API cannot land undocumented.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

OUT = Path(__file__).parents[1] / "docs" / "API.md"

#: The documented surface: every module re-exported by the two packages.
MODULES = [
    "repro.serve",
    "repro.serve.recipe",
    "repro.serve.kvcache",
    "repro.serve.engine",
    "repro.serve.sched",
    "repro.serve.workload",
    "repro.serve.cluster",
    "repro.tune",
    "repro.tune.sensitivity",
    "repro.tune.cost",
    "repro.tune.search",
    "repro.tune.frontier",
    "repro.tune.pricing",
    "repro.bench",
    "repro.bench.matrix",
    "repro.bench.planner",
    "repro.bench.runner",
    "repro.bench.pricing",
    "repro.bench.report",
    "repro.obs",
    "repro.obs.trace",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.record",
]


def public_symbols(module) -> list[tuple[str, object]]:
    """The module's documented surface: its ``__all__``, in source order."""
    names = getattr(module, "__all__", None)
    if names is None:
        raise SystemExit(f"{module.__name__} has no __all__; cannot enumerate API")
    return [(name, getattr(module, name)) for name in names]


def _is_local(obj, module) -> bool:
    """Whether ``obj`` is defined in ``module`` (not a re-export)."""
    return getattr(obj, "__module__", None) == module.__name__


def public_members(cls) -> list[tuple[str, object]]:
    """Public methods/properties defined on ``cls`` itself (inherited and
    dataclass-generated members excluded)."""
    members = []
    for name, obj in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(obj, property) or inspect.isfunction(obj):
            members.append((name, obj))
        elif isinstance(obj, (classmethod, staticmethod)):
            members.append((name, obj.__func__))
    return members


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_line(doc: str) -> str:
    return doc.strip().splitlines()[0].strip()


def check_coverage() -> list[str]:
    """Public symbols/members in the documented packages lacking docstrings."""
    missing = []
    for modname in MODULES:
        module = importlib.import_module(modname)
        if not (module.__doc__ or "").strip():
            missing.append(modname)
        for name, obj in public_symbols(module):
            if not _is_local(obj, module) and modname in ("repro.serve", "repro.tune", "repro.bench"):
                continue  # package re-export: documented at its home module
            if not callable(obj) and not inspect.isclass(obj):
                continue  # data constants (registries) documented in module text
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(f"{modname}.{name}")
            if inspect.isclass(obj) and _is_local(obj, module):
                for mname, member in public_members(obj):
                    target = member.fget if isinstance(member, property) else member
                    if not (inspect.getdoc(target) or "").strip():
                        missing.append(f"{modname}.{name}.{mname}")
    return sorted(set(missing))


def _render_symbol(lines: list[str], name: str, obj, module) -> None:
    doc = inspect.getdoc(obj) or ""
    if inspect.isclass(obj):
        lines.append(f"### class `{name}`\n")
        lines.append(doc + "\n")
        members = public_members(obj) if _is_local(obj, module) else []
        if members:
            lines.append("| Member | Summary |")
            lines.append("|---|---|")
            for mname, member in members:
                target = member.fget if isinstance(member, property) else member
                kind = "property " if isinstance(member, property) else ""
                summary = _first_line(inspect.getdoc(target) or "")
                lines.append(f"| {kind}`{mname}` | {summary} |")
            lines.append("")
    elif callable(obj):
        lines.append(f"### `{name}{_signature(obj)}`\n")
        lines.append(doc + "\n")
    else:
        lines.append(f"### data `{name}`\n")
        summary = {
            dict: f"registry with {len(obj)} entries: "
            + ", ".join(f"`{k}`" for k in sorted(obj)),
        }.get(type(obj), repr(obj))
        lines.append(summary + "\n")


def build_api_md() -> str:
    """Assemble the full reference page as one markdown string."""
    lines = [
        "# API reference — `repro.serve`, `repro.tune`, and `repro.bench`",
        "",
        "Generated from the package docstrings by",
        "`benchmarks/make_api_reference.py` — edit the docstrings, not this",
        "file, then regenerate (CI fails on drift):",
        "",
        "```bash",
        "PYTHONPATH=src python benchmarks/make_api_reference.py",
        "```",
        "",
        "Generation fails on any undocumented public symbol, method, or",
        "property in these packages (the docstring-coverage gate). See",
        "[SERVING_GUIDE.md](SERVING_GUIDE.md) for the tutorial,",
        "[GLOSSARY.md](GLOSSARY.md) for terminology, and",
        "[ARCHITECTURE.md](ARCHITECTURE.md) for the package map.",
        "",
        "## Contents",
        "",
    ]
    modules = [(name, importlib.import_module(name)) for name in MODULES]
    for modname, module in modules:
        anchor = modname.replace(".", "")
        lines.append(f"- [`{modname}`](#{anchor}) — "
                     f"{_first_line(module.__doc__ or '')}")
    lines.append("")
    for modname, module in modules:
        lines.append(f"## `{modname}`\n")
        lines.append((inspect.getdoc(module) or "").strip() + "\n")
        symbols = public_symbols(module)
        if modname in ("repro.serve", "repro.tune", "repro.bench"):
            # The package __init__ re-exports its modules' surfaces; list
            # the names and point at their home sections instead of
            # duplicating every entry.
            lines.append("Re-exported surface (documented in the module "
                         "sections below):\n")
            lines.append(", ".join(f"`{name}`" for name, _ in symbols) + "\n")
            continue
        for name, obj in symbols:
            if not _is_local(obj, module) and (
                inspect.isclass(obj) or inspect.isfunction(obj)
            ):
                continue  # documented at its defining module
            _render_symbol(lines, name, obj, module)
    return "\n".join(lines).rstrip() + "\n"


def main() -> None:
    missing = check_coverage()
    if missing:
        print("undocumented public API (add docstrings):", file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        raise SystemExit(1)
    OUT.write_text(build_api_md())
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
