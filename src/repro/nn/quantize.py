"""Quantized-inference context: which format each matmul operand uses.

The paper's direct-cast flow (Section 7.1): all tensors involved in any dot
product — activations, weights, the language-modeling head, and the KV
cache — are cast to the chosen format right before the matmul; element-wise
ops stay in BF16 and softmax in FP32. ``QuantContext`` encodes one such
configuration, e.g.::

    QuantContext.named("mxfp4")            # A-MXFP4, W-MXFP4
    QuantContext.named("a-mxfp4+")         # MXFP4+ activations, MXFP4 weights
    QuantContext(act=None, weight=fmt)     # weight-only quantization

The canonical configuration surface is :class:`repro.serve.QuantRecipe`;
``QuantContext`` is the numeric execution object a recipe adapts to via
``QuantRecipe.to_context()`` (and ``named`` delegates to recipe parsing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.blocks import BlockFormat
from .bf16 import bf16_round

__all__ = ["QuantContext", "BASELINE", "as_context"]


@dataclass
class QuantContext:
    """Per-tensor-role format assignment for quantized inference.

    ``None`` for a role means "baseline precision" (BF16 rounding when
    ``bf16_base`` is set, else exact float64).
    """

    act: BlockFormat | None = None
    weight: BlockFormat | None = None
    kv: BlockFormat | None = None  # defaults to act when left None and act set
    lm_head: BlockFormat | None = None  # defaults to weight when left None
    bf16_base: bool = True
    quantize_lm_head: bool = True
    quantize_attention: bool = True  # QK^T and PV matmuls (incl. KV cache)
    name: str = "baseline"
    # Optional channel permutations for the query/key projections keyed by
    # layer index (Section 8.3 reordering); applied inside attention.
    qk_permutations: dict = field(default_factory=dict)
    # Per-layer contexts for mixed-precision recipes: transformer block i
    # runs under ``layer_overrides[i]`` when present (see ``layer_context``).
    # Built by ``QuantRecipe.to_context()`` from the recipe's
    # ``layer_overrides`` map; plain uniform contexts leave this empty.
    layer_overrides: dict = field(default_factory=dict)
    # Layer space the override keys index: 0 = physical block indices; a
    # positive G means G equal groups spread over the model's blocks, the
    # same convention the timing path uses (QuantRecipe.n_layer_groups).
    n_layer_groups: int = 0

    # ------------------------------------------------------------------
    @staticmethod
    def named(spec: str) -> "QuantContext":
        """Build a context from a paper-style name.

        Delegates to :meth:`repro.serve.QuantRecipe.from_name` — the
        canonical parser — and adapts the recipe to a context. Accepts
        ``"baseline"``/``"bf16"``, plain format names (``"mxfp4"``,
        ``"mxfp6+"``), activation-only MX+ (``"a-mxfp4+"``), registered
        recipe names (``"a8w4"``), and explicit mixes
        (``"a:<fmt>,w:<fmt>[,kv:<fmt>]"``).
        """
        from ..serve.recipe import QuantRecipe  # lazy: avoid import cycle

        return QuantRecipe.from_name(spec).to_context()

    def with_(self, **kwargs) -> "QuantContext":
        return replace(self, **kwargs)

    def layer_context(self, layer_index: int, n_layers: int = 0) -> "QuantContext":
        """The context transformer block ``layer_index`` should run under.

        Mixed-precision recipes assign some layers their own format; this
        returns the per-layer derived context when one exists and ``self``
        otherwise, so uniform recipes pay nothing. With group-indexed
        overrides (``n_layer_groups == G``) and the model's ``n_layers``
        supplied, physical block ``i`` resolves to the group whose band
        ``[g*n/G, (g+1)*n/G)`` contains it — ``g = (i*G + G-1) // n``,
        the exact inverse of the timing path's
        :func:`repro.gpu.inference.spread_layer_overrides` band rule even
        when ``G`` does not divide ``n``, so one recipe means the same
        thing on the stand-in and the full model.
        The LM head is *not* a layer — it follows :meth:`head_context`
        on the base context.
        """
        if (
            self.layer_overrides
            and self.n_layer_groups
            and n_layers
            and self.n_layer_groups != n_layers
        ):
            g = self.n_layer_groups
            layer_index = (layer_index * g + g - 1) // n_layers
        return self.layer_overrides.get(layer_index, self)

    # ------------------------------------------------------------------
    def _base(self, x: np.ndarray) -> np.ndarray:
        return bf16_round(x) if self.bf16_base else x

    def quantize_act(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Quantize a matmul activation operand along its reduction axis."""
        if self.act is None:
            return self._base(x)
        return self.act.quantize_dequantize(self._base(x), axis=axis)

    def quantize_weight(self, w: np.ndarray, axis: int = 0) -> np.ndarray:
        """Quantize a weight operand along its reduction axis (input dim)."""
        if self.weight is None:
            return self._base(w)
        return self.weight.quantize_dequantize(self._base(w), axis=axis)

    def quantize_head_weight(self, w: np.ndarray, axis: int = 0) -> np.ndarray:
        """Quantize the LM-head weight (``lm_head`` role, falls back to
        the weight format)."""
        fmt = self.lm_head if self.lm_head is not None else self.weight
        if fmt is None:
            return self._base(w)
        return fmt.quantize_dequantize(self._base(w), axis=axis)

    def head_context(self) -> "QuantContext | None":
        """The context the LM-head matmul should run under.

        ``None`` when the head is excluded from quantization; otherwise a
        context whose weight format is the ``lm_head`` role override (or
        this context unchanged when no override is set).
        """
        if not self.quantize_lm_head:
            return None
        if self.lm_head is None:
            return self
        return self.with_(weight=self.lm_head)

    def quantize_kv(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Quantize a KV-cache / attention operand."""
        if not self.quantize_attention:
            return self._base(x)
        fmt = self.kv if self.kv is not None else self.act
        if fmt is None:
            return self._base(x)
        return fmt.quantize_dequantize(self._base(x), axis=axis)

    def quantize_matmul_pair(
        self, x: np.ndarray, w: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Joint hook for one ``x @ w`` matmul (x: (..., K), w: (K, N)).

        The default treats the operands independently. Schemes that
        co-transform the pair — SmoothQuant's scale migration, QuaRot's
        rotation, AWQ's weight scaling — override this in
        :mod:`repro.quant` so the migration stays mathematically paired.
        """
        return self.quantize_act(x, axis=-1), self.quantize_weight(w, axis=0)


def as_context(qc) -> QuantContext | None:
    """Normalize ``QuantContext | QuantRecipe | name | None`` to a context.

    The single coercion point that lets the eval harness, the transformer,
    and the schemes all accept a :class:`repro.serve.QuantRecipe` (or its
    name) wherever a context is expected.
    """
    if qc is None or isinstance(qc, QuantContext):
        return qc
    if isinstance(qc, str):
        return QuantContext.named(qc)
    to_context = getattr(qc, "to_context", None)
    if callable(to_context):
        return to_context()
    raise TypeError(f"expected QuantContext, QuantRecipe, or name, got {qc!r}")


#: The BF16 baseline configuration (B in Figure 2).
BASELINE = QuantContext()
