"""Synthetic data substrates: corpora, MCQ tasks, images."""

from .corpus import DATASETS, Corpus, CorpusSpec, make_corpus
from .tasks import TASKS, MCQTask, TaskSpec, make_task

__all__ = [
    "Corpus",
    "CorpusSpec",
    "make_corpus",
    "DATASETS",
    "MCQTask",
    "TaskSpec",
    "make_task",
    "TASKS",
]
