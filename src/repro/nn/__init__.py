"""Neural-network substrate: autodiff, layers, transformer LM, training."""

from .bf16 import bf16_round
from .functional import cross_entropy, gelu, log_softmax, rmsnorm, silu, softmax
from .layers import CausalSelfAttention, Embedding, Linear, Module, RMSNorm, SwiGLU
from .optim import Adam, SGD, clip_grad_norm
from .quantize import BASELINE, QuantContext
from .tensor import Tensor, no_grad
from .train import train_lm
from .transformer import TransformerConfig, TransformerLM

__all__ = [
    "Tensor",
    "no_grad",
    "bf16_round",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "rmsnorm",
    "gelu",
    "silu",
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
    "CausalSelfAttention",
    "SwiGLU",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "QuantContext",
    "BASELINE",
    "TransformerConfig",
    "TransformerLM",
    "train_lm",
]
