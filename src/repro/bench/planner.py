"""Sweep planning: matrix → ordered run list → manifest-per-run sweep dir.

The planner turns an expanded :class:`~repro.bench.matrix.SweepMatrix`
into durable filesystem state::

    <out_root>/<sweep-name>/
        sweep.json                  # matrix + ordered cell ids + skips
        runs/<cell_id>/manifest.json  # per-run status: planned|completed|failed

One ``manifest.json`` per run is the whole coordination protocol: the
runner claims work by reading it, records success or failure by
rewriting it, and a re-invoked sweep resumes by skipping every manifest
already marked ``completed``. Planning is **idempotent and
resume-safe** — re-planning into an existing sweep dir preserves
completed/failed manifests (their results are the thing a resumed sweep
exists to keep) and only (re)writes the ``planned`` ones.

Sweep dirs are timestamped by default (``20260808-093000-canonical``)
so repeated invocations of the same matrix land side by side; pass
``name=`` for a stable directory (tests, CI, resume-by-path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path

from .matrix import RunSpec, SweepMatrix, get_matrix

__all__ = [
    "SweepPlan",
    "plan_sweep",
    "load_plan",
    "read_manifest",
    "write_manifest",
    "list_sweeps",
]

SWEEP_FILE = "sweep.json"
RUNS_DIR = "runs"
MANIFEST = "manifest.json"


@dataclass(frozen=True)
class SweepPlan:
    """A planned sweep: its directory, matrix, and ordered run list."""

    root: Path  # the sweep directory (manifests live under runs/)
    matrix: SweepMatrix
    runs: tuple  # RunSpecs in execution order
    skipped: tuple  # infeasible combos recorded by expansion
    baseline: str | None  # resolved baseline cell id

    @property
    def cell_ids(self) -> list[str]:
        """Ordered cell ids (the manifest directory names)."""
        return [spec.cell_id for spec in self.runs]

    def manifest_path(self, cell_id: str) -> Path:
        """Path of one run's manifest file."""
        return self.root / RUNS_DIR / cell_id / MANIFEST

    def statuses(self) -> dict[str, str]:
        """Current ``cell_id -> status`` map read from the manifests."""
        return {
            cid: read_manifest(self.root, cid)["status"]
            for cid in self.cell_ids
        }


def _write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def plan_sweep(
    matrix, out_root, name: str | None = None, now: datetime | None = None
) -> SweepPlan:
    """Expand ``matrix`` and lay out its sweep directory.

    ``matrix`` is a :class:`SweepMatrix` or a predeclared matrix name;
    ``out_root`` the parent under which the sweep dir is created (named
    ``name`` if given, else timestamped). Completed or failed manifests
    already present (same cell ids — resume) are left untouched.

    Returns the :class:`SweepPlan`; planning never executes anything.
    """
    matrix = get_matrix(matrix)
    runs, skipped = matrix.expand()
    baseline = matrix.baseline_cell_id(runs)
    stamp = (now or datetime.now()).strftime("%Y%m%d-%H%M%S")
    root = Path(out_root) / (name or f"{stamp}-{matrix.name}")
    root.mkdir(parents=True, exist_ok=True)
    _write_json(
        root / SWEEP_FILE,
        {
            "matrix": matrix.to_dict(),
            "runs": [spec.cell_id for spec in runs],
            "skipped_infeasible": list(skipped),
            "baseline": baseline,
            "created": (now or datetime.now()).isoformat(timespec="seconds"),
        },
    )
    for spec in runs:
        path = root / RUNS_DIR / spec.cell_id / MANIFEST
        if path.exists():
            continue  # resume: a prior status (and result) is preserved
        _write_json(
            path,
            {
                "cell_id": spec.cell_id,
                "spec": spec.to_dict(),
                "status": "planned",
                "result": None,
                "error": None,
                "wall_clock_s": None,
                "finished_at": None,
            },
        )
    return SweepPlan(
        root=root,
        matrix=matrix,
        runs=tuple(runs),
        skipped=tuple(skipped),
        baseline=baseline,
    )


def load_plan(sweep_dir) -> SweepPlan:
    """Rebuild a :class:`SweepPlan` from an existing sweep directory.

    The run *order* comes from ``sweep.json`` (what the planner chose),
    the specs from each run's manifest — so a loaded plan executes
    exactly the cells the original planning call laid out.
    """
    root = Path(sweep_dir)
    sweep_path = root / SWEEP_FILE
    if not sweep_path.exists():
        raise FileNotFoundError(f"{root} is not a sweep dir (no {SWEEP_FILE})")
    meta = json.loads(sweep_path.read_text())
    matrix = SweepMatrix.from_dict(meta["matrix"])
    runs = tuple(
        RunSpec.from_dict(read_manifest(root, cid)["spec"])
        for cid in meta["runs"]
    )
    return SweepPlan(
        root=root,
        matrix=matrix,
        runs=runs,
        skipped=tuple(meta.get("skipped_infeasible", [])),
        baseline=meta.get("baseline"),
    )


def read_manifest(sweep_dir, cell_id: str) -> dict:
    """Read one run's manifest (raises if the cell was never planned)."""
    path = Path(sweep_dir) / RUNS_DIR / cell_id / MANIFEST
    if not path.exists():
        raise FileNotFoundError(f"no manifest for cell {cell_id!r} in {sweep_dir}")
    return json.loads(path.read_text())


def write_manifest(sweep_dir, cell_id: str, payload: dict) -> None:
    """Atomically replace one run's manifest.

    Written via a temp file + rename so an interrupted sweep can never
    leave a half-written manifest that a resume would misread as state.
    """
    path = Path(sweep_dir) / RUNS_DIR / cell_id / MANIFEST
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def list_sweeps(out_root) -> list[dict]:
    """Summarize every sweep dir under ``out_root`` (newest-name last).

    Each entry carries the sweep's name, matrix name, and a status
    histogram over its manifests — what ``python -m repro.bench list``
    prints.
    """
    root = Path(out_root)
    out = []
    if not root.exists():
        return out
    for child in sorted(root.iterdir()):
        if not (child / SWEEP_FILE).exists():
            continue
        meta = json.loads((child / SWEEP_FILE).read_text())
        counts: dict[str, int] = {}
        for cid in meta.get("runs", []):
            try:
                status = read_manifest(child, cid)["status"]
            except FileNotFoundError:
                status = "missing"
            counts[status] = counts.get(status, 0) + 1
        out.append(
            {
                "sweep": child.name,
                "path": str(child),
                "matrix": meta.get("matrix", {}).get("name", "?"),
                "runs": len(meta.get("runs", [])),
                "statuses": counts,
                "created": meta.get("created"),
            }
        )
    return out
