"""Canonical sweep benchmark: the full matrix→planner→runner→report pipeline.

Runs the predeclared ``canonical`` :class:`repro.bench.SweepMatrix`
(2 recipes × 2 schedulers × {unified 2r, disaggregated 1p1d} × 2
interconnects, seed 0) end to end through the sweep orchestration layer
and commits the aggregate as ``BENCH_sweep.json``.

The artifact has two parts. The deterministic sections (``cells``,
``winner``, ``pareto``, …) are a pure function of the matrix at seed 0 —
this test regenerates them and asserts byte-identity against a second
independent sweep, and the CI freshness gate
(``python -m repro.bench freshness``) asserts the committed copy still
matches the code. The ``perf`` section records the *wall-clock* side —
how many simulated requests per real second this machine sustained — and
is excluded from identity checks (same convention as the committed
wall-clock numbers in ``tab06_encode_speed``).

Every $/Mtok in the artifact is derived by
:func:`repro.bench.pricing.price_cell` from :class:`repro.tune.cost.CostModel`
composed with the committed :data:`repro.tune.pricing.GPU_PRICES` table —
no dollar figure is hand-entered anywhere.
"""

import json
import math

from _util import print_table, run_once, save_result

from repro.bench import (
    aggregate,
    canonical_payload,
    get_matrix,
    plan_sweep,
    render_report,
    run_sweep,
)


def _sweep_payload(tmp_path, name):
    root = plan_sweep(get_matrix("canonical"), tmp_path, name=name).root
    run_sweep(root)
    return aggregate(root)


def test_bench_sweep(benchmark, tmp_path):
    payload = run_once(benchmark, lambda: _sweep_payload(tmp_path, "main"))
    cells = payload["cells"]

    dollars = {
        cid: cell["result"]["pricing"]["dollars_per_mtok"]
        for cid, cell in cells.items()
    }
    print_table("$/Mtok per cell (canonical sweep, seed 0)", dollars, "{:.4f}")
    print_table(
        "perf (wall clock, machine-dependent)",
        {k: v for k, v in payload["perf"].items() if isinstance(v, float)},
    )

    # Assertions come before save_result so a failing run can never
    # overwrite the committed artifact.
    # The canonical matrix covers >=2 recipes x >=2 schedulers x 2
    # interconnects and every cell completed.
    assert len(cells) == 8
    assert all(cell["status"] == "completed" for cell in cells.values())
    axes = [cell["axes"] for cell in cells.values()]
    assert {a["recipe"] for a in axes} == {"bf16", "mxfp4+"}
    assert {a["scheduler"] for a in axes} == {"prefill-first", "chunked-prefill"}
    assert {a["interconnect"] for a in axes} >= {"pcie5", "100gbe"}

    # Wall-clock requests/sec really is recorded (and positive).
    assert payload["perf"]["requests_per_wall_s"] > 0
    assert payload["perf"]["simulated_requests"] == sum(
        cell["result"]["requests"] for cell in cells.values()
    )

    # Every priced cell is finite and the MX+ recipe is cheaper than BF16
    # on every matched cell — the paper's economics claim at fleet level.
    assert all(math.isfinite(d) for d in dollars.values())

    def by_axes(recipe, scheduler, fleet, link):
        (cid,) = [
            c for c, cell in cells.items()
            if cell["axes"]["recipe"] == recipe
            and cell["axes"]["scheduler"] == scheduler
            and cell["axes"]["fleet"] == fleet
            and cell["axes"]["interconnect"] == link
        ]
        return cells[cid]

    for scheduler, fleet, link in (
        ("prefill-first", "2r", "none"),
        ("chunked-prefill", "2r", "none"),
        ("prefill-first", "1p1d", "pcie5"),
        ("prefill-first", "1p1d", "100gbe"),
    ):
        bf16 = by_axes("bf16", scheduler, fleet, link)
        mxp = by_axes("mxfp4+", scheduler, fleet, link)
        assert (
            mxp["result"]["pricing"]["dollars_per_mtok"]
            < bf16["result"]["pricing"]["dollars_per_mtok"]
        )

    # Disaggregated cells record KV migration; BF16 ships ~3.6x the
    # bytes of MX+ (the KV-size ratio), and the slower link stalls more.
    for recipe in ("bf16", "mxfp4+"):
        pcie = by_axes(recipe, "prefill-first", "1p1d", "pcie5")["result"]
        gbe = by_axes(recipe, "prefill-first", "1p1d", "100gbe")["result"]
        assert pcie["transfer_bytes_per_request"] > 0
        assert pcie["transfer_bytes_per_request"] == gbe["transfer_bytes_per_request"]
        assert gbe["transfer_stall_s_total"] > pcie["transfer_stall_s_total"]
    bf16_bytes = by_axes("bf16", "prefill-first", "1p1d", "pcie5")["result"][
        "transfer_bytes_per_request"
    ]
    mxp_bytes = by_axes("mxfp4+", "prefill-first", "1p1d", "pcie5")["result"][
        "transfer_bytes_per_request"
    ]
    assert bf16_bytes / mxp_bytes > 3.0

    # A winner exists, meets the SLO bar, and the baseline cell resolved.
    assert payload["winner"] in cells
    assert payload["baseline"] in cells
    assert cells[payload["winner"]]["result"]["slo_attainment"] >= 0.9

    # Determinism: an independent second sweep reproduces the canonical
    # sections byte for byte — the property resume and the freshness
    # gate both rest on.
    second = _sweep_payload(tmp_path, "again")
    assert json.dumps(canonical_payload(payload), sort_keys=True) == json.dumps(
        canonical_payload(second), sort_keys=True
    )
    assert render_report(payload) == render_report(second)

    save_result("BENCH_sweep", payload)
