"""Direct-cast quantized LLM inference: the paper's core experiment.

Loads (training on first run, ~1 minute) a scaled-down Llama-3.1-8B
stand-in with realistic activation outliers, then evaluates perplexity and
task accuracy across the MX / MX+ format ladder.

Run:  python examples/llm_quantized_inference.py
"""

from repro.data.tasks import TASKS, make_task
from repro.eval import perplexity_table, task_accuracy
from repro.models.zoo import get_corpus, load_model
from repro.nn.quantize import QuantContext

model = load_model("llama-3.1-8b-sim", verbose=True)
corpus = get_corpus("wiki2-sim", 240_000)

print("\nPerplexity (wiki2-sim), direct-cast:")
table = perplexity_table(
    model,
    corpus,
    ["baseline", "mxfp8", "mxfp6", "mxfp4", "a-mxfp4+", "mxfp4+", "mxfp4++"],
)
for name, ppl in table.items():
    bar = "#" * int((ppl - min(table.values())) * 20)
    print(f"  {name:>9s}: {ppl:7.3f} {bar}")

print("\nTask accuracy (arc_easy-sim):")
task = make_task(corpus, TASKS["arc_challenge-sim"])
for name in ["baseline", "mxfp4", "mxfp4+"]:
    acc = task_accuracy(model, task, QuantContext.named(name))
    print(f"  {name:>9s}: {acc:5.1f}%")

print("\nGreedy generation under MXFP4+ (quantized decode path):")
prefix = corpus.val[:16]
tokens = model.generate(prefix, 12, QuantContext.named("mxfp4+"))
print("  prompt:", prefix.tolist())
print("  output:", tokens.tolist())
