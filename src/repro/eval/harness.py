"""Task-accuracy harness: likelihood-ranked multiple choice (Table 2).

Mirrors lm-evaluation-harness scoring: a question is answered correctly
when the model assigns the true continuation the highest total
log-likelihood among the choices. Candidates are scored in batched
forwards so quantized evaluation stays fast.
"""

from __future__ import annotations

import numpy as np

from ..data.tasks import MCQTask
from ..nn.functional import log_softmax
from ..nn.quantize import QuantContext, as_context
from ..nn.tensor import no_grad
from ..nn.transformer import TransformerLM

__all__ = ["score_continuations", "task_accuracy", "accuracy_table"]


def score_continuations(
    model: TransformerLM,
    prompts: np.ndarray,
    continuations: np.ndarray,
    qc: QuantContext | None = None,
    batch_size: int = 64,
) -> np.ndarray:
    """Total log-prob of each continuation given its prompt.

    ``prompts``: (N, Lp); ``continuations``: (N, Lc). Returns (N,).
    ``qc`` accepts a :class:`QuantContext`, a
    :class:`repro.serve.QuantRecipe`, or a recipe name.
    """
    qc = as_context(qc)
    prompts = np.asarray(prompts)
    continuations = np.asarray(continuations)
    n, lp = prompts.shape
    lc = continuations.shape[1]
    seqs = np.concatenate([prompts, continuations], axis=1)

    scores = np.empty(n, dtype=np.float64)
    with no_grad():
        for start in range(0, n, batch_size):
            chunk = seqs[start : start + batch_size]
            logits = model(chunk[:, :-1], qc)
            logp = log_softmax(logits, axis=-1).data
            # positions lp-1 .. lp+lc-2 predict the continuation tokens
            rows = np.arange(chunk.shape[0])[:, None]
            cols = np.arange(lp - 1, lp + lc - 1)[None, :]
            targets = chunk[:, lp:]
            scores[start : start + chunk.shape[0]] = logp[rows, cols, targets].sum(axis=1)
    return scores


def task_accuracy(
    model: TransformerLM, task: MCQTask, qc: QuantContext | None = None
) -> float:
    """Accuracy (%) on a multiple-choice task under config ``qc``
    (a context, :class:`repro.serve.QuantRecipe`, or recipe name)."""
    qc = as_context(qc)
    n, n_choices, lc = task.choices.shape
    prompts = np.repeat(task.prompts, n_choices, axis=0)
    conts = task.choices.reshape(n * n_choices, lc)
    scores = score_continuations(model, prompts, conts, qc).reshape(n, n_choices)
    picks = np.argmax(scores, axis=1)
    return float(np.mean(picks == task.answers) * 100.0)


def accuracy_table(
    model: TransformerLM, tasks: dict[str, MCQTask], recipes: list
) -> dict[str, dict[str, float]]:
    """Accuracy per (recipe, task): the Table 2 grid for one model.

    ``recipes`` entries may be recipe/format names or
    :class:`repro.serve.QuantRecipe` objects.
    """
    out: dict[str, dict[str, float]] = {}
    for entry in recipes:
        qc = as_context(entry)
        key = entry if isinstance(entry, str) else qc.name
        out[key] = {tname: task_accuracy(model, task, qc) for tname, task in tasks.items()}
    return out
