"""Element data-type codecs for block floating-point formats.

An *element codec* maps already-scaled values (i.e. values divided by the
block's shared scale) onto the representable grid of a small floating-point
or integer encoding, using IEEE-754-style semantics: an implicit leading one
for normals, gradual underflow via subnormals, round-to-nearest-even, and
saturation on overflow (the OCP MX specification converts with saturation).

The codecs here are value-level (they return exactly-representable floats)
and bit-level (they can produce and consume the packed bit patterns used by
:mod:`repro.core.layout`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FloatCodec",
    "IntCodec",
    "E2M1",
    "E2M3",
    "E3M2",
    "E4M3",
    "E5M2",
    "INT8_MX",
    "INT4_MX",
    "round_half_even",
    "floor_log2",
]


def round_half_even(x: np.ndarray) -> np.ndarray:
    """Round to nearest integer with ties to even (IEEE default rounding).

    ``np.round`` already implements banker's rounding; this wrapper exists so
    the rounding rule used across the library is named and testable in one
    place.
    """
    return np.round(x)


def floor_log2(x: np.ndarray) -> np.ndarray:
    """Exact ``floor(log2(|x|))`` for positive finite values.

    Uses :func:`numpy.frexp` rather than ``log2`` so results are exact for
    powers of two (``log2`` can return e.g. ``2.9999999999999996`` for 8.0 on
    some platforms, which would corrupt shared-exponent selection).

    Entries equal to zero map to the most negative int32 so that callers can
    treat them as "no magnitude".
    """
    x = np.asarray(x, dtype=np.float64)
    _, e = np.frexp(np.abs(x))
    out = (e - 1).astype(np.int32)
    out = np.where(x == 0, np.int32(np.iinfo(np.int32).min // 2), out)
    return out


@dataclass(frozen=True)
class FloatCodec:
    """A small floating-point encoding ``1 + ebits + mbits`` bits wide.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"e2m1"``.
    ebits, mbits:
        Exponent and mantissa field widths.
    bias:
        Exponent bias.
    ieee_inf:
        If True the top exponent field is reserved for Inf/NaN (E5M2 style),
        which lowers ``emax`` by one. If False but ``nan_encoding`` is True,
        only the all-ones pattern is NaN (E4M3 style) which removes the top
        mantissa code from ``max_normal`` but keeps ``emax``.
    nan_encoding:
        Whether a NaN encoding exists at all.
    """

    name: str
    ebits: int
    mbits: int
    bias: int
    ieee_inf: bool = False
    nan_encoding: bool = False

    @property
    def bits(self) -> int:
        return 1 + self.ebits + self.mbits

    @property
    def emax(self) -> int:
        """Maximum exponent of a normal number (paper's ``e_max``)."""
        top = (1 << self.ebits) - 1 - self.bias
        return top - 1 if self.ieee_inf else top

    @property
    def emin(self) -> int:
        """Exponent of the smallest normal number."""
        return 1 - self.bias

    @property
    def max_normal(self) -> float:
        """Largest representable finite magnitude."""
        top_mant = (1 << self.mbits) - 1
        if self.nan_encoding and not self.ieee_inf:
            # E4M3 style: S.1111.111 is NaN, so the largest finite value has
            # mantissa 111...0.
            top_mant -= 1
        return float(2.0 ** self.emax * (1.0 + top_mant / (1 << self.mbits)))

    @property
    def min_normal(self) -> float:
        return float(2.0 ** self.emin)

    @property
    def min_subnormal(self) -> float:
        return float(2.0 ** (self.emin - self.mbits))

    # ------------------------------------------------------------------
    # Value-level quantization
    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Map ``x`` to the nearest representable value (saturating).

        Round-to-nearest-even in the format's mantissa space; magnitudes
        above ``max_normal`` saturate; magnitudes that round to zero flush
        to (signed) zero.
        """
        x = np.asarray(x, dtype=np.float64)
        mag = np.abs(x)
        sign = np.sign(x)

        exp = floor_log2(mag)
        exp = np.maximum(exp, self.emin)  # subnormal range shares emin's ulp
        ulp = np.exp2(exp.astype(np.float64) - self.mbits)
        q = round_half_even(mag / ulp) * ulp
        # Rounding up may carry into the next binade (e.g. 1.9999 -> 2.0);
        # the result is still exactly representable so no fixup is needed,
        # except at the very top where we saturate.
        q = np.minimum(q, self.max_normal)
        return (sign * q).astype(x.dtype if x.dtype.kind == "f" else np.float64)

    def representable_values(self) -> np.ndarray:
        """All non-negative representable magnitudes, ascending (for tests)."""
        vals = [0.0]
        # subnormals
        for m in range(1, 1 << self.mbits):
            vals.append(2.0 ** self.emin * m / (1 << self.mbits))
        # normals
        for e in range(self.emin, self.emax + 1):
            for m in range(1 << self.mbits):
                v = 2.0**e * (1.0 + m / (1 << self.mbits))
                if v <= self.max_normal:
                    vals.append(v)
        return np.array(sorted(set(vals)))

    # ------------------------------------------------------------------
    # Bit-level encode/decode
    # ------------------------------------------------------------------
    def encode_bits(self, x: np.ndarray) -> np.ndarray:
        """Encode representable values to their bit patterns (uint32).

        ``x`` must already be on the representable grid (e.g. the output of
        :meth:`quantize`); values off-grid raise ``ValueError``.
        """
        x = np.asarray(x, dtype=np.float64)
        sign = (x < 0) | ((x == 0) & (np.signbit(x)))
        mag = np.abs(x)

        exp = floor_log2(mag)
        is_sub = (mag > 0) & (exp < self.emin)
        is_zero = mag == 0

        norm_exp = np.clip(exp, self.emin, self.emax)
        frac = np.where(is_zero, 0.0, mag / np.exp2(norm_exp.astype(np.float64)))
        # normals: frac in [1, 2) -> mantissa = (frac - 1) * 2^mbits
        # subnormals: use emin's scale -> mantissa = mag / 2^(emin - mbits)
        mant = np.where(
            is_sub | is_zero,
            mag / np.exp2(float(self.emin - self.mbits)),
            (frac - 1.0) * (1 << self.mbits),
        )
        mant_i = round_half_even(mant).astype(np.uint32)
        if not np.allclose(mant, mant_i, atol=1e-9):
            raise ValueError("values are not on the representable grid")
        exp_field = np.where(
            is_sub | is_zero, 0, norm_exp + self.bias
        ).astype(np.uint32)
        return (
            (sign.astype(np.uint32) << (self.ebits + self.mbits))
            | (exp_field << self.mbits)
            | mant_i
        )

    def decode_bits(self, bits: np.ndarray) -> np.ndarray:
        """Decode bit patterns back to float values."""
        bits = np.asarray(bits, dtype=np.uint32)
        sign = (bits >> (self.ebits + self.mbits)) & 1
        exp_field = (bits >> self.mbits) & ((1 << self.ebits) - 1)
        mant = bits & ((1 << self.mbits) - 1)

        is_sub = exp_field == 0
        exp = np.where(is_sub, self.emin, exp_field.astype(np.int64) - self.bias)
        frac = np.where(is_sub, 0.0, 1.0) + mant.astype(np.float64) / (1 << self.mbits)
        val = np.exp2(exp.astype(np.float64)) * frac
        return np.where(sign == 1, -val, val)


@dataclass(frozen=True)
class IntCodec:
    """Fixed-point integer element codec (MXINT style).

    Values are interpreted as ``q * 2**-frac_bits`` with ``q`` a signed
    integer clamped symmetrically to ``±(2**(bits-1) - 1)`` (the
    microxcaling reference library uses the same symmetric clamp).
    """

    name: str
    bits: int
    frac_bits: int
    int_bits: int = field(default=1)

    @property
    def emax(self) -> int:
        """``e_max`` analog for Eq. (1): 0 because magnitudes are < 2."""
        return 0

    @property
    def max_q(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def max_normal(self) -> float:
        return self.max_q / float(1 << self.frac_bits)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        scale = float(1 << self.frac_bits)
        q = np.clip(round_half_even(x * scale), -self.max_q, self.max_q)
        return q / scale

    def encode_bits(self, x: np.ndarray) -> np.ndarray:
        q = round_half_even(np.asarray(x, dtype=np.float64) * (1 << self.frac_bits))
        q = np.clip(q, -self.max_q, self.max_q).astype(np.int64)
        return (q & ((1 << self.bits) - 1)).astype(np.uint32)

    def decode_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint32).astype(np.int64)
        signed = np.where(bits >= (1 << (self.bits - 1)), bits - (1 << self.bits), bits)
        return signed.astype(np.float64) / (1 << self.frac_bits)


# Concrete MX element data types (OCP MX spec v1.0, Table 1 of the paper).
E2M1 = FloatCodec("e2m1", ebits=2, mbits=1, bias=1)
E2M3 = FloatCodec("e2m3", ebits=2, mbits=3, bias=1)
E3M2 = FloatCodec("e3m2", ebits=3, mbits=2, bias=3)
E4M3 = FloatCodec("e4m3", ebits=4, mbits=3, bias=7, nan_encoding=True)
E5M2 = FloatCodec("e5m2", ebits=5, mbits=2, bias=15, ieee_inf=True, nan_encoding=True)

INT8_MX = IntCodec("int8", bits=8, frac_bits=6)
INT4_MX = IntCodec("int4", bits=4, frac_bits=2)
