"""Bit-level layout tests (Figures 6-7): packing round-trips and storage."""

import numpy as np
import pytest

from repro.core.layout import (
    pack_bits,
    pack_mx,
    pack_mxplus,
    unpack_bits,
    unpack_mx,
    unpack_mxplus,
)
from repro.core.mx import MXFP4, MXFP6, MXFP8
from repro.core.mxplus import MXFP4Plus, MXFP6Plus, MXFP8Plus
from repro.core.mxpp import MXFP4PlusPlus

FIG4_UPPER_BF16 = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])


class TestBitPacking:
    @pytest.mark.parametrize("bits", [1, 3, 4, 6, 8, 13])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        codes = rng.integers(0, 1 << bits, size=97).astype(np.uint32)
        buf = pack_bits(codes, bits)
        np.testing.assert_array_equal(unpack_bits(buf, bits, 97), codes)

    def test_density(self):
        codes = np.zeros(32, dtype=np.uint32)
        assert len(pack_bits(codes, 4)) == 16  # 32 * 4 bits = 16 bytes
        assert len(pack_bits(codes, 6)) == 24


class TestMXPacking:
    @pytest.mark.parametrize("factory", [MXFP4, MXFP6, MXFP8], ids=["4", "6", "8"])
    def test_roundtrip(self, factory):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 96)) * 3
        fmt = factory()
        enc = fmt.encode(x)
        packed = pack_mx(fmt, enc)
        enc2 = unpack_mx(fmt, packed)
        np.testing.assert_allclose(fmt.decode(enc2), fmt.decode(enc))

    def test_mxfp4_storage_per_block(self):
        # 32 elements * 4 bits + 8-bit scale = 17 bytes per block.
        fmt = MXFP4()
        x = np.zeros((1, 32))
        x[0, 0] = 1.0
        packed = pack_mx(fmt, fmt.encode(x))
        assert packed.total_bytes() == 17

    def test_average_bits(self):
        fmt = MXFP4()
        x = np.ones((1, 32 * 100))
        packed = pack_mx(fmt, fmt.encode(x))
        assert packed.total_bytes() * 8 / (32 * 100) == pytest.approx(4.25)


class TestMXPlusPacking:
    @pytest.mark.parametrize(
        "factory", [MXFP4Plus, MXFP6Plus, MXFP8Plus, MXFP4PlusPlus],
        ids=["4+", "6+", "8+", "4++"],
    )
    def test_roundtrip(self, factory):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 96)) * np.exp(rng.uniform(-2, 2, (4, 1)))
        x[rng.random((4, 96)) < 0.05] *= 40
        fmt = factory()
        enc = fmt.encode(x)
        packed = pack_mxplus(fmt, enc)
        enc2 = unpack_mxplus(fmt, packed)
        np.testing.assert_allclose(fmt.decode(enc2), fmt.decode(enc))

    def test_sideband_encoding(self):
        fmt = MXFP4Plus()
        enc = fmt.encode(FIG4_UPPER_BF16)
        packed = pack_mxplus(fmt, enc)
        sideband = np.frombuffer(packed.sideband, dtype=np.uint8)
        assert (sideband[0] >> 3) == 4  # BM index of -9.84
        assert (sideband[0] & 0x7) == 0  # reserved bits zero for MX+

    def test_mxpp_delta_in_sideband(self):
        fmt = MXFP4PlusPlus()
        enc = fmt.encode(FIG4_UPPER_BF16)
        packed = pack_mxplus(fmt, enc)
        sideband = np.frombuffer(packed.sideband, dtype=np.uint8)
        assert (sideband[0] & 0x7) == 3  # delta from Section 4.3 example

    def test_storage_overhead(self):
        # MXFP4+: 17 bytes (MX) + 1 sideband byte = 18 per block -> 4.5 b/e.
        fmt = MXFP4Plus()
        x = np.zeros((1, 32))
        x[0, 0] = 1.0
        packed = pack_mxplus(fmt, fmt.encode(x))
        assert packed.total_bytes() == 18
        assert packed.total_bytes() * 8 / 32 == pytest.approx(4.5)

    def test_fig6_bm_binary_encoding(self):
        # Figure 6: MXFP4+ stores the BM (-9.84 -> -10.0, scaled -5.0,
        # fraction 1.25 -> code 010) as S=1, MMM=010 -> 0b1010.
        fmt = MXFP4Plus()
        enc = fmt.encode(FIG4_UPPER_BF16)
        packed = pack_mxplus(fmt, enc)
        codes = unpack_bits(packed.elements, 4, 32)
        assert codes[4] == 0b1010

    def test_flush_block_packs_scale_zero(self):
        fmt = MXFP4Plus()
        x = np.full((1, 32), 2.0**-130)
        packed = pack_mxplus(fmt, fmt.encode(x))
        assert np.frombuffer(packed.scales, dtype=np.uint8)[0] == 0
        enc2 = unpack_mxplus(fmt, packed)
        np.testing.assert_array_equal(fmt.decode(enc2), 0.0)
