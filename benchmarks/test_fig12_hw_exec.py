"""Figure 12: MXFP4+ hardware integration — normalized prefill execution
time vs MXFP4 (paper: 0.38% average slowdown)."""

from _util import print_table, run_once, save_result

from repro.gpu.inference import simulate_inference
from repro.models.zoo import ARCHS
from repro.serve import get_recipe

MODELS = ["llama-2-7b", "llama-2-13b", "llama-3.1-8b"]


def test_fig12(benchmark):
    def run():
        out = {}
        hw = get_recipe("mxfp4+")
        base = get_recipe("mxfp4")
        for name in MODELS:
            arch = ARCHS[name]
            t_hw = simulate_inference(arch, hw, batch=1, prompt_len=2048, output_len=0)
            t_b = simulate_inference(arch, base, batch=1, prompt_len=2048, output_len=0)
            out[name] = t_hw.prefill_s / t_b.prefill_s
        out["geomean"] = (out[MODELS[0]] * out[MODELS[1]] * out[MODELS[2]]) ** (1 / 3)
        return out

    table = run_once(benchmark, run)
    save_result("fig12_hw_exec", table)
    print_table("Figure 12: MXFP4+ HW-integration normalized time", table, "{:.4f}")

    # BCU overlaps the DPE: sub-1% slowdown everywhere (paper avg 0.38%).
    for name, ratio in table.items():
        assert 1.0 <= ratio < 1.01
