"""LLM serving simulator: prefill/decode execution time (Figures 11-13).

Follows the paper's definition: *execution time* is the aggregated matrix
multiplication time during inference for a given number of concurrent
requests. Per layer we time the QKV/O projections, the gated MLP, and the
attention score/value products (whose K/V operands stream from the KV
cache); the LM head runs once per forward.

Prefill processes ``batch * prompt_len`` rows at once (compute-bound);
decode processes ``batch`` rows per generated token while the KV cache
grows (memory-bound). The MX+ software path inflates compute only, so it
costs ~1.5x in prefill but vanishes in decode — reproducing Figure 11.

Configuration
-------------
The canonical configuration object is :class:`repro.serve.QuantRecipe` —
``simulate_inference``/``end_to_end_speedup``/``step_time`` accept a
recipe, a recipe name, or a legacy :class:`ServingConfig`.
``ServingConfig`` and the module-level ``CONFIGS`` dict are retained as
thin deprecated shims: ``CONFIGS`` is now a view over the recipe registry
(``repro.serve.get_recipe(name).to_serving_config()``), and new code
should use recipes directly. The request-level front-end (continuous
batching, TTFT/TPOT) lives in :class:`repro.serve.ServingEngine`, which is
backed by :func:`step_time`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..models.zoo import ArchSpec
from .kernels import GemmShape, gemm_time
from .spec import FORMAT_BITS, GPUSpec, RTX5090

__all__ = [
    "ServingConfig",
    "CONFIGS",
    "StageTimes",
    "as_serving_config",
    "spread_layer_overrides",
    "step_time",
    "simulate_inference",
    "end_to_end_speedup",
    "step_time_cache_info",
    "clear_step_time_cache",
    "set_step_time_cache_limit",
]


@dataclass(frozen=True)
class ServingConfig:
    """Low-level timing knobs for one configuration (deprecated surface).

    Prefer :class:`repro.serve.QuantRecipe`; this object is what
    ``QuantRecipe.to_serving_config()`` produces and what the timing
    functions consume internally.
    """

    name: str
    act_fmt: str = "bf16"
    weight_fmt: str = "bf16"
    mxplus_software: bool = False  # Algorithm 1 extra sparse MMA on A
    mxplus_hardware: bool = False  # Section 6 Tensor-Core integration
    min_tile_m: int = 1  # kernel tile granularity on M (A8W4: 128)
    # -- mixed-precision threading (QuantRecipe.to_serving_config) --------
    kv_fmt: str = ""  # KV-cache stream format; "" follows act_fmt
    lm_head_fmt: str = ""  # LM-head weight format; "" follows weight_fmt
    # ((layer, fmt), ...): per-layer act+weight replacement, see
    # QuantRecipe.layer_overrides; n_layer_groups declares the layer space
    # (0 = physical arch layers, G > 0 = G equal groups spread over them).
    layer_overrides: tuple = ()
    n_layer_groups: int = 0


#: The Figure 11/13 configuration names kept for the legacy ``CONFIGS`` view.
_LEGACY_CONFIG_NAMES = (
    "bf16",
    "mxfp4",
    "a-mxfp4+",
    "mxfp8",
    "mxfp4+",
    "mxfp4++",
    "a8w4",
)


class _ConfigsView(Mapping):
    """Deprecated ``CONFIGS`` shim: a *live* view over the recipe registry.

    Lookups resolve through ``repro.serve.get_recipe`` on every access
    (so ``register_recipe(..., overwrite=True)`` is reflected here);
    iteration stays pinned to the original Figure 11/13 names. New code
    should use :func:`repro.serve.get_recipe` directly.
    """

    def __getitem__(self, name: str) -> ServingConfig:
        if name not in _LEGACY_CONFIG_NAMES:
            raise KeyError(
                f"{name!r} is not a legacy CONFIGS entry; use "
                "repro.serve.get_recipe for the full recipe registry"
            )
        from ..serve.recipe import get_recipe  # lazy: avoid import cycle

        return get_recipe(name).to_serving_config()

    def __iter__(self):
        return iter(_LEGACY_CONFIG_NAMES)

    def __len__(self) -> int:
        return len(_LEGACY_CONFIG_NAMES)

    def __repr__(self) -> str:
        return f"_ConfigsView({dict(self)!r})"


CONFIGS = _ConfigsView()


def as_serving_config(cfg) -> ServingConfig:
    """Normalize a ``QuantRecipe`` / recipe name / ``ServingConfig``."""
    if isinstance(cfg, ServingConfig):
        return cfg
    if isinstance(cfg, str):
        from ..serve.recipe import QuantRecipe

        return QuantRecipe.from_name(cfg).to_serving_config()
    to_serving = getattr(cfg, "to_serving_config", None)
    if callable(to_serving):
        return to_serving()
    raise TypeError(
        f"expected QuantRecipe, recipe name, or ServingConfig, got {cfg!r}"
    )


@dataclass
class StageTimes:
    """Aggregate matmul seconds split by serving stage.

    Returned by :func:`simulate_inference` and carried through
    :class:`repro.serve.ServingResult.stages`; in a disaggregated
    cluster the prefill pool's work is all ``prefill_s`` and the decode
    pool's all ``decode_s``.
    """

    prefill_s: float
    decode_s: float

    @property
    def total_s(self) -> float:
        """Prefill plus decode seconds."""
        return self.prefill_s + self.decode_s


def spread_layer_overrides(
    overrides: tuple, n_layer_groups: int, n_layers: int
) -> dict[int, str]:
    """Project ``((layer, fmt), ...)`` onto ``n_layers`` physical layers.

    Group-indexed overrides (``n_layer_groups == G > 0``) cover equal
    bands ``[g*n/G, (g+1)*n/G)`` — the convention that lets a recipe tuned
    on a G-block stand-in model drive a full-size architecture. The bands
    partition ``[0, n)`` (no overlap), and ``QuantContext.layer_context``
    inverts the rule exactly, so the numeric and timing paths always agree
    on which physical layer runs which format. When ``G > n`` some bands
    are empty and those groups' overrides are deterministically dropped —
    layer ``i`` keeps the assignment of group ``(i*G + G-1) // n``, the
    densest-information downsample consistent with the inverse mapping.
    The single source of the band rule: ``QuantRecipe.spread_overrides``
    delegates here, and ``step_time`` uses it for per-layer pricing.

    >>> spread_layer_overrides(((0, "mxfp8"), (1, "mxfp4+")), 2, 4)
    {0: 'mxfp8', 1: 'mxfp8', 2: 'mxfp4+', 3: 'mxfp4+'}
    >>> spread_layer_overrides(((1, "bf16"),), 0, 4)  # physical indices
    {1: 'bf16'}
    """
    if not n_layer_groups or n_layer_groups == n_layers:
        return {layer: fmt for layer, fmt in overrides if layer < n_layers}
    spread: dict[int, str] = {}
    for group, fmt in overrides:
        lo = group * n_layers // n_layer_groups
        hi = (group + 1) * n_layers // n_layer_groups
        for layer in range(lo, hi):
            spread[layer] = fmt
    return spread


def _merge_groups(
    row_groups: Iterable[tuple],
) -> tuple[list[tuple[int, int, str]], int]:
    """Merge row groups sharing ``(ctx, kind)`` (order-stable).

    Accepts ``(rows, ctx)`` pairs (legacy, kind ``""``) and
    ``(rows, ctx, kind)`` triples. Groups of *different* kinds never
    merge: a mixed scheduler step tags prompt-chunk rows ``"prefill"``
    and token-generation rows ``"decode"``, and their attention products
    are priced as separate kernels (the way real serving stacks run a
    varlen prefill kernel next to a decode kernel), so
    ``[(5, c, "prefill"), (1, c, "decode")]`` is *not* the same step as
    the pure batch ``[(6, c)]`` — and must not share its memo entry.

    Returns ``(groups, total_rows)`` so the caller never re-walks the
    merged list just to count rows.
    """
    merged: dict[tuple[int, str], int] = {}
    m_get = merged.get
    total = 0
    for group in row_groups:
        rows = group[0]
        if rows <= 0:
            continue
        key = (group[1], group[2]) if len(group) > 2 else (group[1], "")
        merged[key] = m_get(key, 0) + rows
        total += rows
    return [(rows, ctx, kind) for (ctx, kind), rows in merged.items()], total


# Step-time memo: a multi-replica cluster replays the same (spec, arch,
# cfg, groups) step shape once per replica per scheduler iteration, so
# decode sweeps are dominated by identical recomputation. The key covers
# every GPUSpec field (specs are frozen but carry an unhashable dict).
#
# At fleet scale (million-request traces) whole-step keys rarely repeat
# for decode steps — every request sits at a different context length —
# so two finer-grained memos back the step memo up:
#
# * ``_ATT_CACHE`` — the attention score/value gemm *pair* per
#   ``(rows, ctx)`` group. Decode rows revisit the same ``(1, ctx)``
#   shapes across steps, replicas, and layers, so hit rates approach
#   100% after warmup.
# * ``_ROWS_CACHE`` — the row-count-only work (the seven linear
#   projections and the LM head), keyed by total step rows ``m``.
#
# Both sub-caches store the *exact* floats the uncached path would
# produce and the step sum accumulates them in the same order, so cached
# and uncached step times are bit-identical (committed artifacts
# regenerate byte-for-byte). All memos are size-capped LRUs: fleet-scale
# sweeps cannot grow them without bound, and eviction only ever costs a
# recomputation, never a different value.


class _LRUCache:
    """Size-capped LRU memo with hit/miss counters.

    ``get`` refreshes recency; when ``put`` overflows ``maxsize`` the
    least-recently-used entry is evicted. Eviction is invisible to
    callers except as a later miss — values are pure functions of their
    keys.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.data: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """The cached value for ``key`` (recency-refreshed), else None.

        Recency refresh only engages once the cache is at capacity —
        before that no eviction decision is pending and insertion order
        stands in for recency, which keeps the hot-path ``get`` a single
        dict probe (``move_to_end`` costs as much as the lookup itself).
        """
        value = self.data.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        if len(self.data) >= self.maxsize:
            self.data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        """Insert ``key``; evicts the LRU entry when over capacity."""
        self.data[key] = value
        if len(self.data) > self.maxsize:
            self.data.popitem(last=False)

    def clear(self) -> None:
        self.data.clear()
        self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self.data)


_STEP_CACHE = _LRUCache(1 << 16)  # whole-step memo: (spec, arch, cfg, groups)
_ATT_CACHE = _LRUCache(1 << 18)  # per-group attention gemm pairs
_ROWS_CACHE = _LRUCache(1 << 14)  # projection-stack / LM-head times per m


def set_step_time_cache_limit(
    step: int | None = None, attention: int | None = None, rows: int | None = None
) -> None:
    """Re-bound the step-time memo caches (entries beyond the new cap are
    evicted LRU-first on the next insert). ``None`` leaves a cap alone."""
    for cache, size in ((_STEP_CACHE, step), (_ATT_CACHE, attention), (_ROWS_CACHE, rows)):
        if size is None:
            continue
        if size < 1:
            raise ValueError("cache limit must be >= 1")
        cache.maxsize = size
        while len(cache.data) > size:
            cache.data.popitem(last=False)


#: id-keyed memo for :func:`_spec_key` — cluster loops pass the same
#: (module-constant) ``GPUSpec`` object millions of times, and rebuilding
#: the sorted-throughput tuple per call shows up in profiles. Holding the
#: spec object itself keeps its ``id`` from being recycled.
_SPEC_KEYS: dict[int, tuple] = {}


def _spec_key(spec: GPUSpec) -> tuple:
    cached = _SPEC_KEYS.get(id(spec))
    if cached is not None and cached[0] is spec:
        return cached[1]
    key = (
        spec.name,
        spec.num_sms,
        spec.tensor_cores_per_sm,
        spec.clock_ghz,
        spec.mem_bw_gbps,
        spec.fp4_macs_per_cycle_per_tc,
        tuple(sorted(spec.format_throughput.items())),
        spec.native_mx,
        spec.sparse_speedup,
    )
    if len(_SPEC_KEYS) > 4096:  # sweeps that build specs in a loop
        _SPEC_KEYS.clear()
    _SPEC_KEYS[id(spec)] = (spec, key)
    return key


# Interned cache-key prefixes: the invariant part of every memo key
# (spec + arch + format flags) is a deep tuple whose hash Python
# recomputes on every probe. Interning it to a small integer once makes
# the per-group attention keys 3-int tuples — the difference between a
# ~3 microsecond and a ~0.1 microsecond cache hit at fleet scale. Ids
# are handed out by a monotonic counter and never reused, so entries in
# the LRU caches can never collide with a later prefix.
_KEY_IDS: dict[tuple, int] = {}


def _intern(prefix: tuple) -> int:
    interned = _KEY_IDS.get(prefix)
    if interned is None:
        interned = len(_KEY_IDS)
        _KEY_IDS[prefix] = interned
    return interned


def step_time_cache_info() -> dict:
    """Hit/miss/size/capacity counters for the step-time memo caches.

    ``hits``/``misses``/``size``/``maxsize`` describe the whole-step
    memo; the ``attention`` and ``rows`` sub-dicts report the per-group
    attention-pair and per-row-count projection memos that serve the
    decode steps whose full group signature never repeats.
    """
    return {
        "hits": _STEP_CACHE.hits,
        "misses": _STEP_CACHE.misses,
        "size": len(_STEP_CACHE),
        "maxsize": _STEP_CACHE.maxsize,
        "attention": {
            "hits": _ATT_CACHE.hits,
            "misses": _ATT_CACHE.misses,
            "size": len(_ATT_CACHE),
            "maxsize": _ATT_CACHE.maxsize,
        },
        "rows": {
            "hits": _ROWS_CACHE.hits,
            "misses": _ROWS_CACHE.misses,
            "size": len(_ROWS_CACHE),
            "maxsize": _ROWS_CACHE.maxsize,
        },
    }


def clear_step_time_cache() -> None:
    """Drop all memoized step times (counters reset too)."""
    _STEP_CACHE.clear()
    _ATT_CACHE.clear()
    _ROWS_CACHE.clear()


def step_time(
    spec: GPUSpec,
    arch: ArchSpec,
    cfg,
    row_groups: Sequence[tuple[int, int]],
) -> float:
    """Matmul seconds for one scheduler step over ``row_groups``.

    ``row_groups`` is a list of ``(rows, ctx)`` pairs — ``rows`` token
    rows attending over a KV context of ``ctx`` tokens — or, for *mixed*
    prefill+decode batches, ``(rows, ctx, kind)`` triples where ``kind``
    is ``"prefill"`` (a prompt chunk) or ``"decode"`` (single-token
    generation rows). The linear projections and the LM head batch across
    all groups (they only see total rows); the attention score/value
    products run per distinct ``(ctx, kind)`` group, so a chunked-prefill
    step co-scheduling a prompt chunk with decodes at the same context
    prices two attention kernels, not one merged GEMM. A uniform batch —
    one group — reproduces the classic per-forward cost, so
    :func:`simulate_inference` totals and
    :class:`repro.serve.ServingEngine` accounting agree exactly.

    Results are memoized on the full (spec, arch, cfg, merged groups)
    key — replicas of a :class:`repro.serve.ServingCluster` that hit the
    same step shape pay the roofline evaluation once. The kind tag is
    part of the key, so a mixed batch can never collide with the
    pure-decode (or legacy untagged) batch of the same merged shape.
    Below the whole-step memo, the per-group attention gemm pair and the
    row-count-only projection/LM-head stacks are memoized separately
    (``_ATT_CACHE``/``_ROWS_CACHE``): a fleet-scale decode step whose
    full group signature never repeats still prices as mostly cache
    hits. All memos are size-capped LRU and bit-transparent — cached and
    uncached paths accumulate the identical floats in identical order.
    """
    cfg = as_serving_config(cfg)
    groups, m = _merge_groups(row_groups)
    if m == 0:
        return 0.0
    spec_key = _spec_key(spec)
    # The whole-step memo only pays off when the full group signature can
    # repeat — uniform batches and small mixed steps. A fleet-scale decode
    # step carries tens of distinct contexts that almost never recur as a
    # set; sorting and hashing that signature per step costs more than the
    # sub-memos below recompute, so wide steps bypass the step memo (its
    # counters only see the calls it could ever serve).
    key = None
    if len(groups) <= 8:
        key = (_intern((spec_key, arch, cfg)), tuple(sorted(groups)))
        cached = _STEP_CACHE.get(key)
        if cached is not None:
            return cached

    kv_fmt = cfg.kv_fmt or cfg.act_fmt
    head_fmt = cfg.lm_head_fmt or cfg.weight_fmt
    kv_dim = arch.n_kv_heads * arch.head_dim
    proj_shapes = (
        GemmShape(m, arch.dim, arch.dim),  # Q proj
        GemmShape(m, kv_dim, arch.dim),  # K proj
        GemmShape(m, kv_dim, arch.dim),  # V proj
        GemmShape(m, arch.dim, arch.dim),  # O proj
        GemmShape(m, arch.hidden, arch.dim),  # gate
        GemmShape(m, arch.hidden, arch.dim),  # up
        GemmShape(m, arch.dim, arch.hidden),  # down
    )

    def _layer_time(
        act_fmt: str, weight_fmt: str, layer_kv_fmt: str, software: bool, hardware: bool
    ) -> float:
        def _time(shape: GemmShape, b_fmt: str) -> float:
            return gemm_time(
                spec,
                shape,
                a_fmt=act_fmt,
                b_fmt=b_fmt,
                mxplus_software=software,
                mxplus_hardware=hardware,
                min_tile_m=cfg.min_tile_m,
            )

        fmt_key = (act_fmt, software, hardware, cfg.min_tile_m)
        proj_key = (_intern((spec_key, arch, "proj", weight_fmt) + fmt_key), m)
        layer = _ROWS_CACHE.get(proj_key)
        if layer is None:
            layer = sum(_time(shape, weight_fmt) for shape in proj_shapes)
            _ROWS_CACHE.put(proj_key, layer)
        # attention: scores (rows x ctx x head_dim) and values; the K/V
        # operands stream from the KV cache in this layer's KV format
        # (kv="auto" follows the layer's own activation format, so an
        # overridden layer's attention is priced at its override — the
        # same semantics QuantRecipe.to_context gives the numeric path).
        # Each group's score/value pair is memoized on (rows, ctx): the
        # pair is independent of the other groups in the step, and decode
        # rows revisit the same shapes across steps/replicas/layers.
        att_base = _intern((spec_key, arch.dim, layer_kv_fmt) + fmt_key)
        # Inlined _LRUCache.get/put: this probe runs once per group per
        # layer (the hottest loop in a decode sweep) and the method-call
        # overhead alone is measurable. Semantics are identical —
        # counters, capacity-gated recency refresh, and eviction all
        # match the methods.
        att_cache = _ATT_CACHE
        att_data = att_cache.data
        att_cap = att_cache.maxsize
        att_hits = 0
        dim = arch.dim
        for rows, ctx, _kind in groups:
            att_key = (att_base, rows, ctx)
            pair = att_data.get(att_key)
            if pair is None:
                att_cache.misses += 1
                pair = (
                    _time(GemmShape(rows, ctx, dim), layer_kv_fmt),
                    _time(GemmShape(rows, dim, ctx), layer_kv_fmt),
                )
                att_cache.put(att_key, pair)
            else:
                att_hits += 1
                if len(att_data) >= att_cap:
                    att_data.move_to_end(att_key)
            layer += pair[0]
            layer += pair[1]
        att_cache.hits += att_hits
        return layer

    if cfg.layer_overrides:
        # Mixed-precision recipe: the MX+ integration overheads apply only
        # where an MX+ format is actually in play, so flags are re-derived
        # from the formats everywhere — base layers, overrides, LM head.
        base_software = cfg.mxplus_software and "+" in cfg.act_fmt
        base_hardware = cfg.mxplus_hardware and "+" in cfg.act_fmt + cfg.weight_fmt
        head_software = cfg.mxplus_software and "+" in cfg.act_fmt
        head_hardware = cfg.mxplus_hardware and "+" in cfg.act_fmt + head_fmt
    else:
        # Uniform recipes keep the caller's flags verbatim (the calibrated
        # Figure 11-13 behavior, byte-identical to the committed artifacts).
        base_software = head_software = cfg.mxplus_software
        base_hardware = head_hardware = cfg.mxplus_hardware

    base_layer = _layer_time(
        cfg.act_fmt, cfg.weight_fmt, kv_fmt, base_software, base_hardware
    )
    total = base_layer * arch.n_layers
    if cfg.layer_overrides:
        spread = spread_layer_overrides(
            cfg.layer_overrides, cfg.n_layer_groups, arch.n_layers
        )
        memo: dict[str, float] = {}
        for fmt in spread.values():
            if fmt not in memo:
                memo[fmt] = _layer_time(
                    fmt,
                    fmt,
                    cfg.kv_fmt or fmt,  # kv="auto" follows the override
                    cfg.mxplus_software and "+" in fmt,
                    cfg.mxplus_hardware and "+" in fmt,
                )
            total += memo[fmt] - base_layer
    head_key = (
        _intern((
            spec_key, arch, "head", head_fmt,
            cfg.act_fmt, head_software, head_hardware, cfg.min_tile_m,
        )),
        m,
    )
    head = _ROWS_CACHE.get(head_key)
    if head is None:
        head = gemm_time(  # LM head, once per forward
            spec,
            GemmShape(m, arch.vocab, arch.dim),
            a_fmt=cfg.act_fmt,
            b_fmt=head_fmt,
            mxplus_software=head_software,
            mxplus_hardware=head_hardware,
            min_tile_m=cfg.min_tile_m,
        )
        _ROWS_CACHE.put(head_key, head)
    total += head
    if key is not None:
        _STEP_CACHE.put(key, total)
    return total


def simulate_inference(
    arch: ArchSpec,
    cfg,
    batch: int = 4,
    prompt_len: int = 1024,
    output_len: int = 64,
    spec: GPUSpec = RTX5090,
) -> StageTimes:
    """Aggregate matmul time for prefill and decode stages (seconds).

    ``cfg`` may be a :class:`repro.serve.QuantRecipe`, a recipe name, or a
    legacy :class:`ServingConfig`.
    """
    cfg = as_serving_config(cfg)
    prefill = step_time(spec, arch, cfg, [(batch * prompt_len, prompt_len)])
    decode = 0.0
    for t in range(output_len):
        decode += step_time(spec, arch, cfg, [(batch, prompt_len + t)])
    return StageTimes(prefill_s=prefill, decode_s=decode)


def end_to_end_speedup(
    arch: ArchSpec,
    cfg,
    batch: int = 4,
    prompt_len: int = 1024,
    output_len: int = 64,
    spec: GPUSpec = RTX5090,
) -> float:
    """Speedup of ``cfg`` over the BF16 baseline (Figure 13)."""
    base = simulate_inference(arch, "bf16", batch, prompt_len, output_len, spec)
    ours = simulate_inference(arch, cfg, batch, prompt_len, output_len, spec)
    return base.total_s / ours.total_s
