"""Table 7: WikiText-2 perplexity vs other quantization schemes
(SmoothQuant, QuaRot, Atom, ANT, OliVe, Tender, their MX-* group-32
variants, LLM-FP4) against MXFP4+ and MXFP4++."""

from _util import print_table, run_once, save_result

from repro.eval import perplexity
from repro.quant import scheme_context

SCHEMES = [
    "baseline",
    "smq-int4", "smq-mxfp4",
    "quarot-int4", "quarot-mxfp4",
    "atom",
    "ant", "mx-ant",
    "olive", "mx-olive",
    "tender", "mx-tender",
    "llm-fp4",
    "mxfp4", "mxfp4+", "mxfp4++",
]
MODELS = ["opt-66b-sim", "llama-3.1-8b-sim", "mistral-7b-sim", "qwen-2.5-14b-sim"]


def test_tab07(benchmark, zoo, wiki2):
    def run():
        out = {}
        for m in MODELS:
            out[m] = {
                s: perplexity(zoo[m], wiki2, scheme_context(s)) for s in SCHEMES
            }
        return out

    table = run_once(benchmark, run)
    save_result("tab07_schemes", table)
    for m in MODELS:
        print_table(f"Table 7 ({m})", table[m])

    for m in MODELS:
        row = table[m]
        # MX-variants improve their per-tensor originals.
        assert row["mx-ant"] <= row["ant"] * 1.05
        assert row["mx-tender"] <= row["tender"] * 1.05
        # MXFP4++ <= MXFP4+ <= MXFP4 under the shared Table 7 scope.
        assert row["mxfp4++"] <= row["mxfp4+"] * 1.02
        assert row["mxfp4+"] <= row["mxfp4"] * 1.02
        # MX+ always improves on the *per-tensor* originals.
        assert row["mxfp4+"] <= min(row["ant"], row["tender"]) * 1.02
    for m in ["opt-66b-sim", "llama-3.1-8b-sim"]:
        row = table[m]
        # Competitive with the best fine-grained competitor. (Deviation
        # from the paper's clear MX+ win: our synthetic outliers are
        # perfectly channel-stationary, the ideal case for adaptive-type
        # and migration schemes — see EXPERIMENTS.md.)
        assert row["mxfp4+"] <= min(row["mx-ant"], row["mx-olive"], row["mx-tender"]) * 1.25
        assert row["mxfp4+"] < row["llm-fp4"]
