"""Recipe search: deterministic greedy bit-descent + seeded evolution.

Both searchers walk the same space: an *assignment* maps every tunable
role — each transformer block, the LM head, and the KV path — to one rung
of a format ladder ordered widest-first. Candidates are ranked by the
sensitivity report's additive perplexity surrogate and the cost model's
throughput score; the points worth keeping are re-measured with a real
perplexity evaluation and pushed onto a shared
:class:`~repro.tune.frontier.ParetoFrontier`.

* :func:`greedy_bit_descent` — classic mixed-precision descent: start
  with every role at the widest rung and repeatedly take the single
  step-down with the best throughput-gain per predicted-perplexity-loss.
  Fully deterministic; its trajectory traces one staircase through the
  quality/cost plane.
* :func:`evolutionary_search` — a seeded (mu + lambda) evolution over
  assignments with non-dominated sorting, which escapes the greedy
  staircase by mixing rungs across roles (e.g. spending the KV path's
  saved bytes on a wider LM head).

Everything is seeded and deterministic: equal inputs produce equal
frontiers, byte for byte — the committed ``tune_frontier.json`` artifact
depends on it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..serve.recipe import BF16, QuantRecipe
from .cost import CostModel, RecipeCost
from .frontier import FrontierPoint, ParetoFrontier
from .sensitivity import DEFAULT_KV_PROFILE_FORMATS, SensitivityReport

__all__ = [
    "DEFAULT_LADDER",
    "KV_LADDER",
    "Candidate",
    "recipe_from_assignment",
    "greedy_bit_descent",
    "evolutionary_search",
]

#: act/weight format ladder, widest first (the greedy descent order).
DEFAULT_LADDER = (
    "bf16",
    "mxfp8+",
    "mxfp6+",
    "mxfp4+",
    "mxfp4+-k64",
    "mxfp4",
    "mxfp4-k64",
)

#: KV-path ladder: storage formats for the attention/KV-cache operands.
#: Aliases the sensitivity profiler's default KV ladder so that a report
#: from ``profile_sensitivity()`` covers every cell the searchers read
#: when both sides run with their own defaults.
KV_LADDER = DEFAULT_KV_PROFILE_FORMATS


@dataclass
class Candidate:
    """One evaluated assignment: recipe + surrogate ppl + serving cost."""

    assignment: dict
    recipe: QuantRecipe
    predicted_ppl: float
    cost: RecipeCost
    origin: str = "search"

    def point(self, measured_ppl: float) -> FrontierPoint:
        """Promote the candidate to a :class:`FrontierPoint` once its
        perplexity has been re-measured on the real numeric path."""
        return FrontierPoint(
            recipe=self.recipe,
            perplexity=measured_ppl,
            tokens_per_s=self.cost.tokens_per_s,
            kv_bytes_per_token=self.cost.kv_bytes_per_token,
            predicted_ppl=self.predicted_ppl,
            origin=self.origin,
        )


def recipe_from_assignment(
    assignment: dict, n_layers: int, name: str | None = None
) -> QuantRecipe:
    """Build the :class:`QuantRecipe` a role assignment describes.

    The most common per-layer format becomes the recipe-wide act/weight
    role (ties break lexicographically, so the choice is deterministic);
    differing layers become ``layer_overrides`` indexed over ``n_layers``
    layer groups, so the same recipe drives both the stand-in model and a
    full-size serving architecture. MX+ formats anywhere turn on hardware
    integration (Section 6 BCU).

    >>> r = recipe_from_assignment(
    ...     {"layer:0": "mxfp4+", "layer:1": "mxfp4", "lm_head": "mxfp4+",
    ...      "kv": "mxfp4-k64"}, n_layers=2)
    >>> r.act, r.overrides, r.kv, r.lm_head, r.integration
    ('mxfp4+', {1: 'mxfp4'}, 'mxfp4-k64', 'mxfp4+', 'hardware')
    """
    layer_fmts = [assignment[f"layer:{i}"] for i in range(n_layers)]
    counts = Counter(layer_fmts)
    base = max(counts, key=lambda fmt: (counts[fmt], fmt))
    overrides = {
        i: fmt for i, fmt in enumerate(layer_fmts) if fmt != base
    }
    lm_head = assignment.get("lm_head", "auto")
    kv = assignment.get("kv", "auto")
    mxplus = "+" in "".join(layer_fmts) or "+" in lm_head
    if name is None:
        name = "tuned-" + "-".join(
            [fmt.replace("+", "p") for fmt in layer_fmts]
            + [f"h.{lm_head.replace('+', 'p')}", f"kv.{kv.replace('+', 'p')}"]
        )
    return QuantRecipe(
        name=name,
        act=base,
        weight=base,
        kv=kv,
        lm_head=lm_head,
        layer_overrides=overrides,
        n_layer_groups=n_layers,
        integration="hardware" if mxplus else "none",
    )


# ----------------------------------------------------------------------
# shared evaluation plumbing
# ----------------------------------------------------------------------
@dataclass
class _Evaluator:
    """Memoized assignment -> Candidate evaluation + frontier recording."""

    report: SensitivityReport
    cost_model: CostModel
    measure_ppl: object  # callable(QuantRecipe) -> float
    frontier: ParetoFrontier
    origin: str = "search"
    _cache: dict = field(default_factory=dict)
    _measured: dict = field(default_factory=dict)
    measurements: int = 0

    def candidate(self, assignment: dict) -> Candidate:
        key = tuple(sorted(assignment.items()))
        if key not in self._cache:
            recipe = recipe_from_assignment(assignment, self.report.n_layers)
            self._cache[key] = Candidate(
                assignment=dict(assignment),
                recipe=recipe,
                predicted_ppl=self.report.predict(assignment),
                cost=self.cost_model.evaluate(recipe),
                origin=self.origin,
            )
        return self._cache[key]

    def measure(self, candidate: Candidate) -> FrontierPoint:
        """Measure true perplexity (memoized) and record on the frontier."""
        key = candidate.recipe
        if key not in self._measured:
            self._measured[key] = float(self.measure_ppl(candidate.recipe))
            self.measurements += 1
        point = candidate.point(self._measured[key])
        self.frontier.add(point)
        return point


def _resolve_ladders(
    report: SensitivityReport, ladder: tuple | None, kv_ladder: tuple | None
) -> tuple[tuple, tuple]:
    """Default unset ladders to what the report actually profiled.

    ``None`` (the searchers' default) resolves to the report's own
    ladders — ``bf16`` plus its layer formats, and its KV ladder — so a
    search with default arguments composes with *any* profiler
    configuration instead of crashing on unprofiled cells. For the
    all-defaults report this reproduces :data:`DEFAULT_LADDER` /
    :data:`KV_LADDER` exactly.
    """
    if ladder is None:
        ladder = (BF16,) + tuple(report.formats)
    if kv_ladder is None:
        kv_ladder = tuple(report.role_formats("kv"))
    return tuple(ladder), tuple(kv_ladder)


def _slots(report: SensitivityReport, ladder: tuple, kv_ladder: tuple) -> list:
    slots = [(f"layer:{i}", tuple(ladder)) for i in range(report.n_layers)]
    slots.append(("lm_head", tuple(ladder)))
    slots.append(("kv", tuple(kv_ladder)))
    return slots


# ----------------------------------------------------------------------
# greedy bit-descent
# ----------------------------------------------------------------------
def greedy_bit_descent(
    report: SensitivityReport,
    cost_model: CostModel,
    measure_ppl,
    frontier: ParetoFrontier | None = None,
    ladder: tuple | None = None,
    kv_ladder: tuple | None = None,
    max_ppl: float | None = None,
    ppl_eps: float = 1e-6,
) -> ParetoFrontier:
    """Deterministic widest-to-narrowest descent over role assignments.

    From the all-widest assignment, each step evaluates every legal
    single-role step-down and commits the one with the largest throughput
    gain per unit of predicted perplexity loss (moves that *improve* the
    surrogate are taken first unconditionally). Every committed state is
    measured for real and offered to the frontier. Stops when every role
    sits on the narrowest rung or the predicted perplexity would exceed
    ``max_ppl``.
    """
    frontier = frontier if frontier is not None else ParetoFrontier()
    ev = _Evaluator(report, cost_model, measure_ppl, frontier, origin="greedy")
    ladder, kv_ladder = _resolve_ladders(report, ladder, kv_ladder)
    slots = _slots(report, ladder, kv_ladder)
    rungs = {role: 0 for role, _ in slots}

    def assignment() -> dict:
        return {role: steps[rungs[role]] for role, steps in slots}

    current = ev.candidate(assignment())
    ev.measure(current)
    while True:
        best = None
        for role, steps in slots:
            if rungs[role] + 1 >= len(steps):
                continue
            rungs[role] += 1
            nxt = ev.candidate(assignment())
            rungs[role] -= 1
            if max_ppl is not None and nxt.predicted_ppl > max_ppl:
                continue
            dppl = nxt.predicted_ppl - current.predicted_ppl
            dscore = nxt.cost.score - current.cost.score
            # Rank: surrogate-improving moves first (by throughput gain),
            # then best throughput-per-perplexity ratio; ties resolve by
            # slot order for determinism.
            if dppl <= 0:
                rank = (0, -dscore)
            else:
                rank = (1, -(dscore / (dppl + ppl_eps)))
            if best is None or rank < best[0]:
                best = (rank, role, nxt)
        if best is None:
            break
        rungs[best[1]] += 1
        current = best[2]
        ev.measure(current)
    return frontier


# ----------------------------------------------------------------------
# evolutionary search
# ----------------------------------------------------------------------
def _nondominated_rank(objs: list[tuple[float, float]]) -> list[int]:
    """Pareto rank per point for (minimize ppl, maximize score) pairs."""
    n = len(objs)
    ranks = [0] * n
    remaining = list(range(n))
    rank = 0
    while remaining:
        front = [
            i
            for i in remaining
            if not any(
                (objs[j][0] <= objs[i][0] and objs[j][1] >= objs[i][1])
                and (objs[j][0] < objs[i][0] or objs[j][1] > objs[i][1])
                for j in remaining
            )
        ]
        if not front:  # pragma: no cover - duplicate-only degenerate case
            front = list(remaining)
        for i in front:
            ranks[i] = rank
            remaining.remove(i)
        rank += 1
    return ranks


def evolutionary_search(
    report: SensitivityReport,
    cost_model: CostModel,
    measure_ppl,
    frontier: ParetoFrontier | None = None,
    ladder: tuple | None = None,
    kv_ladder: tuple | None = None,
    seed: int = 0,
    population: int = 24,
    generations: int = 8,
    measure_top: int = 3,
    max_ppl: float | None = None,
) -> ParetoFrontier:
    """Seeded (mu + lambda) evolution over per-role format assignments.

    Genomes are rung-index vectors over the search slots. Selection is
    non-dominated rank on (predicted perplexity, throughput score) with
    throughput as the tie-break; variation is uniform crossover plus
    per-slot rung mutation. Each generation the ``measure_top`` best
    not-yet-measured genomes get a real perplexity evaluation and are
    offered to the frontier. Identical seeds reproduce identical
    frontiers.
    """
    frontier = frontier if frontier is not None else ParetoFrontier()
    ev = _Evaluator(report, cost_model, measure_ppl, frontier, origin="evolution")
    ladder, kv_ladder = _resolve_ladders(report, ladder, kv_ladder)
    slots = _slots(report, ladder, kv_ladder)
    widths = [len(steps) for _, steps in slots]
    rng = np.random.default_rng(seed)

    def to_assignment(genome: tuple) -> dict:
        return {
            role: steps[rung]
            for (role, steps), rung in zip(slots, genome)
        }

    # Seed population: every uniform ladder level, then random genomes.
    pop: list[tuple] = []
    for level in range(max(widths)):
        pop.append(tuple(min(level, w - 1) for w in widths))
    while len(pop) < population:
        pop.append(tuple(int(rng.integers(0, w)) for w in widths))
    pop = list(dict.fromkeys(pop))[:population]

    measured: set = set()

    def step(pop: list[tuple]) -> list[tuple]:
        cands = [ev.candidate(to_assignment(g)) for g in pop]
        objs = [(c.predicted_ppl, c.cost.score) for c in cands]
        ranks = _nondominated_rank(objs)
        order = sorted(
            range(len(pop)), key=lambda i: (ranks[i], -objs[i][1], pop[i])
        )
        # Real measurements for the best unseen genomes this generation.
        fresh = [i for i in order if pop[i] not in measured]
        for i in fresh[:measure_top]:
            if max_ppl is not None and cands[i].predicted_ppl > max_ppl:
                continue
            measured.add(pop[i])
            ev.measure(cands[i])
        # (mu + lambda): elites survive, offspring fill the rest.
        elites = [pop[i] for i in order[: max(2, population // 4)]]
        children: list[tuple] = []
        while len(elites) + len(children) < population:
            a, b = (
                elites[int(rng.integers(0, len(elites)))],
                pop[order[int(rng.integers(0, len(order)))]],
            )
            mask = rng.integers(0, 2, size=len(widths))
            child = [ai if m else bi for ai, bi, m in zip(a, b, mask)]
            for k in range(len(child)):  # per-slot rung mutation
                if rng.random() < 1.0 / len(child):
                    child[k] = int(rng.integers(0, widths[k]))
            children.append(tuple(child))
        return list(dict.fromkeys(elites + children))

    for _ in range(generations):
        pop = step(pop)
    # Final measurement pass over the closing population's front.
    cands = [ev.candidate(to_assignment(g)) for g in pop]
    objs = [(c.predicted_ppl, c.cost.score) for c in cands]
    ranks = _nondominated_rank(objs)
    order = sorted(range(len(pop)), key=lambda i: (ranks[i], -objs[i][1], pop[i]))
    for i in [i for i in order if pop[i] not in measured][:measure_top]:
        measured.add(pop[i])
        ev.measure(cands[i])
    return frontier
