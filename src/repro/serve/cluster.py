"""Cluster layer: N serving replicas behind a pluggable router.

:class:`ServingCluster` scales the single-replica
:class:`repro.serve.ServingEngine` out to a fleet: requests are routed to
one of ``n_replicas`` identical engines (same arch/recipe/GPU, each with
its own paged KV cache), every replica runs its continuous-batching loop
in virtual time, and the :class:`FleetResult` aggregates per-replica and
fleet-level TTFT / TPOT / throughput / goodput-under-SLO.

Routers are deterministic and pluggable (``ROUTERS`` registry):

* ``"round-robin"`` — i-th request (in arrival order) to replica ``i % N``;
* ``"least-kv-load"`` — to the replica with the fewest committed KV
  tokens (prompt + output budget), ties broken by lowest replica index;
* ``"prefix-affinity"`` — requests sharing a ``prefix_id`` stick to the
  replica that first saw that prefix (so its KV pages are reused);
  prefix-less requests fall back to least-KV-load.

With one replica and no shared prefixes the cluster reproduces the
single-engine result *exactly* — the reconciliation anchor that lets
fleet numbers be trusted (asserted in ``benchmarks/test_serving_cluster``).

>>> from repro.models.zoo import ARCHS
>>> from .engine import Request
>>> cluster = ServingCluster(ARCHS["llama-2-13b"], "mxfp4+", n_replicas=2,
...                          kv_token_budget=8192)
>>> reqs = [Request(f"r{i}", prompt_len=256, max_new_tokens=4) for i in range(4)]
>>> fleet = cluster.run(reqs)
>>> [fleet.assignments[f"r{i}"] for i in range(4)]
[0, 1, 0, 1]
>>> len(fleet.responses) == 4 and fleet.makespan_s > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from .engine import Request, Response, ServingEngine, ServingResult
from .kvcache import PagedKVCache
from .recipe import QuantRecipe

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastKVLoadRouter",
    "PrefixAffinityRouter",
    "ROUTERS",
    "available_routers",
    "get_router",
    "FleetResult",
    "ServingCluster",
]


class Router:
    """Base class: assign each request (in arrival order) to a replica.

    Routers see requests one at a time, sorted by arrival, and must be
    deterministic — equal inputs yield equal assignments, and all
    tie-breaks resolve to the lowest replica index.
    """

    name = "base"

    def __init__(self, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_replicas = n_replicas
        self.reset()

    def reset(self) -> None:
        """Return to the initial state; called before every cluster run
        so router instances behave like freshly-built ones."""

    def route(self, request: Request) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order."""

    name = "round-robin"

    def reset(self) -> None:
        self._next = 0

    def route(self, request: Request) -> int:
        replica = self._next
        self._next = (self._next + 1) % self.n_replicas
        return replica


class LeastKVLoadRouter(Router):
    """Send to the replica with the fewest committed KV tokens.

    Load is the sum of ``prompt_len + max_new_tokens`` over assigned
    requests — the KV tokens a request will eventually pin. Ties break
    to the lowest replica index, so assignment is deterministic.
    """

    name = "least-kv-load"

    def reset(self) -> None:
        self.loads = [0] * self.n_replicas

    def _least_loaded(self) -> int:
        return min(range(self.n_replicas), key=lambda i: (self.loads[i], i))

    def route(self, request: Request) -> int:
        replica = self._least_loaded()
        self.loads[replica] += request.prompt_len + request.max_new_tokens
        return replica


class PrefixAffinityRouter(LeastKVLoadRouter):
    """Pin each shared prefix to one replica so its KV pages get reused.

    The first request carrying a given ``prefix_id`` is placed on the
    least-loaded replica; every later request with that prefix follows
    it (a prefix scattered across replicas would be stored N times and
    hit only 1/N of the time). Prefix-less requests use least-KV-load.
    """

    name = "prefix-affinity"

    def reset(self) -> None:
        super().reset()
        self._homes: dict[str, int] = {}

    def route(self, request: Request) -> int:
        if request.prefix_id is None:
            return super().route(request)
        replica = self._homes.get(request.prefix_id)
        if replica is None:
            replica = self._homes[request.prefix_id] = self._least_loaded()
        self.loads[replica] += request.prompt_len + request.max_new_tokens
        return replica


ROUTERS: dict[str, type[Router]] = {
    cls.name: cls
    for cls in (RoundRobinRouter, LeastKVLoadRouter, PrefixAffinityRouter)
}


def available_routers() -> list[str]:
    """Sorted names of the registered routing policies.

    >>> available_routers()
    ['least-kv-load', 'prefix-affinity', 'round-robin']
    """
    return sorted(ROUTERS)


def get_router(name_or_router, n_replicas: int) -> Router:
    """Instantiate a router by name (or pass a :class:`Router` through)."""
    if isinstance(name_or_router, Router):
        return name_or_router
    key = str(name_or_router).lower()
    if key not in ROUTERS:
        raise KeyError(
            f"unknown router {name_or_router!r} "
            f"(available: {', '.join(available_routers())})"
        )
    return ROUTERS[key](n_replicas)


@dataclass
class FleetResult:
    """Fleet outcome: per-replica results + cluster-level accounting."""

    responses: list[Response]  # input order, across all replicas
    replica_results: list[ServingResult]
    assignments: dict[str, int]  # request_id -> replica index
    router: str = ""

    @property
    def n_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def makespan_s(self) -> float:
        """Fleet makespan: the slowest replica's virtual finish time."""
        return max((r.makespan_s for r in self.replica_results), default=0.0)

    @property
    def total_tokens(self) -> int:
        return sum(r.output_len for r in self.responses)

    @property
    def throughput_tok_s(self) -> float:
        """Fleet-level output tokens per second of virtual wall-clock."""
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def mean_ttft_s(self) -> float:
        if not self.responses:
            return 0.0
        return float(np.mean([r.ttft_s for r in self.responses]))

    @property
    def mean_tpot_s(self) -> float:
        if not self.responses:
            return 0.0
        return float(np.mean([r.tpot_s for r in self.responses]))

    @property
    def preemptions(self) -> int:
        return sum(r.preemptions for r in self.replica_results)

    @property
    def peak_running(self) -> int:
        """Max concurrently decoding requests summed across replicas."""
        return sum(r.peak_running for r in self.replica_results)

    def p99_ttft_s(self, q: float = 99.0) -> float:
        if not self.responses:
            return 0.0
        return float(np.percentile([r.ttft_s for r in self.responses], q))

    @staticmethod
    def _meets_slo(
        r: Response, ttft_slo_s: float | None, tpot_slo_s: float | None
    ) -> bool:
        return (ttft_slo_s is None or r.ttft_s <= ttft_slo_s) and (
            tpot_slo_s is None or r.tpot_s <= tpot_slo_s
        )

    def slo_attainment(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> float:
        """Fraction of requests meeting every given SLO (1.0 if none set)."""
        if not self.responses:
            return 1.0
        ok = sum(self._meets_slo(r, ttft_slo_s, tpot_slo_s) for r in self.responses)
        return ok / len(self.responses)

    def goodput_tok_s(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> float:
        """Throughput counting only tokens from SLO-meeting requests.

        The serving metric the paper's efficiency story cashes out in: a
        fleet that admits more requests but blows its latency targets
        earns no goodput for them.
        """
        if not self.makespan_s:
            return 0.0
        good = sum(
            r.output_len
            for r in self.responses
            if self._meets_slo(r, ttft_slo_s, tpot_slo_s)
        )
        return good / self.makespan_s

    def summary(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> dict:
        """Fleet metrics plus per-replica summaries (JSON-friendly)."""
        return {
            "router": self.router,
            "n_replicas": self.n_replicas,
            "requests": len(self.responses),
            "total_tokens": self.total_tokens,
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tok_s,
            "mean_ttft_s": self.mean_ttft_s,
            "p99_ttft_s": self.p99_ttft_s(),
            "mean_tpot_s": self.mean_tpot_s,
            "preemptions": self.preemptions,
            "peak_running": self.peak_running,
            "slo_attainment": self.slo_attainment(ttft_slo_s, tpot_slo_s),
            "goodput_tok_s": self.goodput_tok_s(ttft_slo_s, tpot_slo_s),
            "replicas": [r.summary() for r in self.replica_results],
        }


class ServingCluster:
    """N identical serving replicas behind one routing policy.

    Parameters
    ----------
    arch, recipe, spec:
        As for :class:`ServingEngine`; all replicas share them.
    n_replicas:
        Fleet size.
    router:
        Router name (see :func:`available_routers`) or instance.
    kv_token_budget:
        Per-replica flat KV budget (1-token pages) when no byte budget is
        given — the exact single-engine semantics.
    page_budget_bytes / block_tokens:
        Alternative per-replica sizing: each replica gets
        ``PagedKVCache.from_byte_budget(page_budget_bytes, arch, recipe,
        block_tokens)``, so the recipe's KV format sets how many requests
        fit — the MX+ capacity win.
    max_batch, model:
        Forwarded to every replica engine.
    """

    def __init__(
        self,
        arch: ArchSpec,
        recipe,
        n_replicas: int = 1,
        router="round-robin",
        spec: GPUSpec = RTX5090,
        kv_token_budget: int = 262_144,
        max_batch: int = 256,
        page_budget_bytes: float | None = None,
        block_tokens: int = 16,
        model=None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if isinstance(recipe, str):
            recipe = QuantRecipe.from_name(recipe)
        self.arch = arch
        self.recipe = recipe
        self.spec = spec
        self.n_replicas = n_replicas
        self._router_spec = router
        self.engines = []
        for _ in range(n_replicas):
            if page_budget_bytes is not None:
                cache = PagedKVCache.from_byte_budget(
                    page_budget_bytes, arch, recipe, block_tokens=block_tokens
                )
            else:
                cache = PagedKVCache.from_token_budget(kv_token_budget)
            self.engines.append(
                ServingEngine(
                    arch, recipe, spec=spec, max_batch=max_batch,
                    model=model, kv_cache=cache,
                )
            )

    @property
    def capacity_tokens_per_replica(self) -> int:
        """KV tokens one replica can hold (page count x page size)."""
        return self.engines[0].kv_cache.capacity_tokens

    def run(self, requests: list[Request]) -> FleetResult:
        """Route ``requests``, run every replica, aggregate the fleet.

        Routing happens in arrival order (ties by input position); each
        replica then serves its share with the usual continuous-batching
        loop. Responses come back in input order.
        """
        router = get_router(self._router_spec, self.n_replicas)
        if router.n_replicas != self.n_replicas:
            raise ValueError(
                f"router built for {router.n_replicas} replicas, "
                f"cluster has {self.n_replicas}"
            )
        router.reset()  # instances passed in must behave like fresh ones
        order = {r.request_id: i for i, r in enumerate(requests)}
        if len(order) != len(requests):
            raise ValueError("duplicate request_id in batch")
        assignments: dict[str, int] = {}
        for req in sorted(requests, key=lambda r: (r.arrival_s, order[r.request_id])):
            replica = router.route(req)
            if not 0 <= replica < self.n_replicas:
                raise ValueError(
                    f"router {router.name!r} returned invalid replica {replica}"
                )
            assignments[req.request_id] = replica
        # Each replica sees its requests in original input order, exactly
        # as a standalone engine would (reconciliation at n_replicas=1).
        shards = [
            [r for r in requests if assignments[r.request_id] == i]
            for i in range(self.n_replicas)
        ]
        results = [
            engine.run(shard) for engine, shard in zip(self.engines, shards)
        ]
        by_id = {
            resp.request_id: resp for res in results for resp in res.responses
        }
        return FleetResult(
            responses=[by_id[r.request_id] for r in requests],
            replica_results=results,
            assignments=assignments,
            router=router.name,
        )
