"""Baseline quantization schemes for the Table 7/8/13 comparisons."""

from .ant import ANTContext
from .atom import AtomContext
from .awq import AWQContext
from .base import SCHEME_MATRIX, SchemeCard, SchemeContext
from .llmfp4 import LLMFP4Context
from .olive import OliVeContext
from .quarot import QuaRotContext, random_hadamard
from .smoothquant import SmoothQuantContext
from .tender import TenderContext

from ..core.registry import get_format
from ..nn.quantize import QuantContext


def scheme_context(name: str) -> QuantContext:
    """Build a Table 7/8 scheme context by its paper row name."""
    key = name.lower()
    table = {
        "smq-int4": lambda: SmoothQuantContext(name=key),
        "smq-mxfp4": lambda: SmoothQuantContext(mx_format=get_format("mxfp4"), name=key),
        "quarot-int4": lambda: QuaRotContext(name=key),
        "quarot-mxfp4": lambda: QuaRotContext(mx_format=get_format("mxfp4"), name=key),
        "atom": lambda: AtomContext(name=key),
        "ant": lambda: ANTContext(name=key),
        "mx-ant": lambda: ANTContext(group=32, name=key),
        "olive": lambda: OliVeContext(name=key),
        "mx-olive": lambda: OliVeContext(group=32, name=key),
        "tender": lambda: TenderContext(name=key),
        "mx-tender": lambda: TenderContext(row_group=2, name=key),
        "llm-fp4": lambda: LLMFP4Context(name=key),
        "awq-int4": lambda: AWQContext(name=key),
        "awq-mxfp4": lambda: AWQContext(weight_format=get_format("mxfp4"), name=key),
        "awq-mxfp4+": lambda: AWQContext(weight_format=get_format("mxfp4+"), name=key),
    }
    if key in table:
        return table[key]()
    # Fall back to format names with the Table 7 scope (no LM head, no
    # attention matmuls) so MXFP4+/++ rows are comparable.
    qc = QuantContext.named(name)
    return qc.with_(quantize_lm_head=False, quantize_attention=False, name=key)


__all__ = [
    "SchemeContext",
    "SchemeCard",
    "SCHEME_MATRIX",
    "SmoothQuantContext",
    "QuaRotContext",
    "random_hadamard",
    "AtomContext",
    "AWQContext",
    "ANTContext",
    "OliVeContext",
    "TenderContext",
    "LLMFP4Context",
    "scheme_context",
]
