"""Decoder-only transformer language model with quantized-inference hooks.

This is the scaled-down stand-in for the paper's LLMs: RMSNorm + causal
attention + SwiGLU blocks, a (optionally tied) LM head, and a
:class:`~repro.nn.quantize.QuantContext` threaded through every matmul —
including the LM head, which the paper explicitly quantizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layers import Embedding, Linear, Module, RMSNorm, TransformerBlock
from .quantize import QuantContext, as_context
from .tensor import Tensor, no_grad

__all__ = ["TransformerConfig", "TransformerLM"]


@dataclass
class TransformerConfig:
    vocab_size: int = 256
    dim: int = 96
    n_layers: int = 2
    n_heads: int = 4
    hidden: int = 256
    max_seq: int = 256
    tie_lm_head: bool = False
    seed: int = 0
    name: str = "tiny"
    # --- activation-outlier profile -----------------------------------
    # Positional phases concentrated on a few high-magnitude channels:
    # entries are (channel, period, "sin"|"cos"). Attention must read these
    # channels *precisely* to locate recent tokens, which reproduces the
    # real-LLM phenomenon that block-max quantization error — not just
    # NBM crushing — drives model degradation. pe_scale = 0 falls back to
    # standard spread-out sinusoidal positions (no outliers).
    pe_channels: tuple = field(default_factory=tuple)
    pe_scale: float = 0.0
    # Heavy-tailed fixed per-channel gains after every norm (lognormal,
    # capped), giving activations the wide within-block dynamic range of
    # real LLM tensors. sigma = 0 disables.
    channel_gain_sigma: float = 0.0
    channel_gain_cap: float = 6.0
    gain_seed: int = 42

    def fixed_channel_gains(self) -> np.ndarray:
        """The fixed post-norm per-channel amplifier vector."""
        if self.channel_gain_sigma <= 0:
            return np.ones(self.dim)
        rng = np.random.default_rng(self.gain_seed)
        tails = np.exp2(np.abs(rng.normal(0.0, self.channel_gain_sigma, self.dim)))
        return np.minimum(tails, self.channel_gain_cap)


class TransformerLM(Module):
    def __init__(self, config: TransformerConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        gains = config.fixed_channel_gains()
        self.embed = Embedding(rng, config.vocab_size, config.dim)
        self.blocks = [
            TransformerBlock(
                rng, config.dim, config.n_heads, config.hidden, fixed_scale=gains
            )
            for _ in range(config.n_layers)
        ]
        self.final_norm = RMSNorm(config.dim, fixed_scale=gains)
        if config.tie_lm_head:
            self.lm_head = None
        else:
            self.lm_head = Linear(rng, config.dim, config.vocab_size)

    # ------------------------------------------------------------------
    def __call__(self, tokens: np.ndarray, qc: QuantContext | None = None) -> Tensor:
        """Forward pass: (batch, seq) int tokens -> (batch, seq, vocab) logits.

        ``qc`` may be a :class:`QuantContext`, a
        :class:`repro.serve.QuantRecipe`, or a recipe name.
        """
        qc = as_context(qc)
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        x = self.embed(tokens)
        x = x + self._positional(tokens.shape[1])
        for i, block in enumerate(self.blocks):
            # Mixed-precision recipes override individual layers' formats.
            block_qc = (
                qc if qc is None else qc.layer_context(i, len(self.blocks))
            )
            x = block(x, block_qc, layer_index=i)
        x = self.final_norm(x)
        if self.lm_head is not None:
            head_qc = qc if qc is None else qc.head_context()
            return self.lm_head(x, head_qc)
        # Tied head: reuse embedding weights; quantize both operands of the
        # dot product as the paper does for the LM head.
        w = self.embed.weight.swapaxes(0, 1)
        if qc is not None:
            x = x.apply_ste(lambda a: qc.quantize_act(a, axis=-1))
            if qc.quantize_lm_head:
                w = w.apply_ste(lambda a: qc.quantize_head_weight(a, axis=0))
        return x @ w

    def _positional(self, seq: int) -> Tensor:
        """Fixed positional encoding (kept out of the parameter set).

        With ``pe_scale > 0`` the positions live on a few dedicated
        high-magnitude channels (the outlier mechanism — see
        TransformerConfig); otherwise standard spread sinusoids.
        """
        cfg = self.config
        dim = cfg.dim
        pos = np.arange(seq)[:, None]
        if cfg.pe_scale > 0 and cfg.pe_channels:
            enc = np.zeros((seq, dim))
            t = np.arange(seq)
            for channel, period, kind in cfg.pe_channels:
                phase = 2.0 * np.pi * t / period
                wave = np.sin(phase) if kind == "sin" else np.cos(phase)
                enc[:, channel] = cfg.pe_scale * wave
            return Tensor(enc[None, :, :])
        i = np.arange(dim)[None, :]
        angle = pos / np.power(10000.0, (2 * (i // 2)) / dim)
        enc = np.where(i % 2 == 0, np.sin(angle), np.cos(angle))
        return Tensor(enc[None, :, :])

    # ------------------------------------------------------------------
    def loss(self, tokens: np.ndarray, qc: QuantContext | None = None) -> Tensor:
        """Next-token cross-entropy over a (batch, seq) batch."""
        from .functional import cross_entropy

        tokens = np.asarray(tokens)
        logits = self(tokens[:, :-1], qc)
        return cross_entropy(logits, tokens[:, 1:])

    def perplexity(self, tokens: np.ndarray, qc: QuantContext | None = None) -> float:
        """exp(mean NLL) over the token stream, without building a graph."""
        with no_grad():
            return float(np.exp(self.loss(tokens, qc).item()))

    def sequence_logprob(
        self,
        prefix: np.ndarray,
        continuation: np.ndarray,
        qc: QuantContext | None = None,
    ) -> float:
        """Log-probability of ``continuation`` given ``prefix`` (1-D arrays)."""
        from .functional import log_softmax

        seq = np.concatenate([np.asarray(prefix), np.asarray(continuation)])
        with no_grad():
            logits = self(seq[None, :-1], qc)
            logp = log_softmax(logits, axis=-1).data[0]
        start = len(prefix) - 1
        targets = seq[start + 1 :]
        rows = np.arange(start, start + len(targets))
        return float(logp[rows, targets].sum())

    def generate(
        self, prefix: np.ndarray, n_tokens: int, qc: QuantContext | None = None,
        temperature: float = 0.0, seed: int = 0,
    ) -> np.ndarray:
        """Greedy (or sampled) generation — exercises the decode path."""
        rng = np.random.default_rng(seed)
        seq = list(np.asarray(prefix))
        with no_grad():
            for _ in range(n_tokens):
                window = np.array(seq[-self.config.max_seq :])
                logits = self(window[None, :], qc).data[0, -1]
                if temperature <= 0:
                    seq.append(int(np.argmax(logits)))
                else:
                    p = np.exp((logits - logits.max()) / temperature)
                    p /= p.sum()
                    seq.append(int(rng.choice(len(p), p=p)))
        return np.array(seq[len(prefix) :])
