"""QuaRot (Ashkboos et al., NeurIPS'24) — rotate activations before quantizing.

A fixed random orthogonal (randomized Hadamard) matrix ``Q`` is applied to
the activation channels and its transpose to the weight rows:
``(x Q)(Q^T W) = x W`` exactly. Rotation spreads outlier energy across
channels, shrinking the max magnitude — but, as the paper observes, it
does not remove outliers completely, and at 4-bit QuaRot trails MX+.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import hadamard

from ..core.blocks import BlockFormat
from ..core.intquant import quantize_int_groupwise
from .base import SchemeContext

__all__ = ["random_hadamard", "QuaRotContext"]


def random_hadamard(dim: int, seed: int = 0) -> np.ndarray:
    """Randomized Hadamard: H diag(signs) / sqrt(dim); orthogonal.

    Falls back to a random orthogonal matrix (QR of Gaussian) when ``dim``
    is not a power of two.
    """
    rng = np.random.default_rng(seed)
    if dim & (dim - 1) == 0:
        h = hadamard(dim).astype(np.float64)
        signs = rng.choice([-1.0, 1.0], size=dim)
        return h * signs[None, :] / np.sqrt(dim)
    q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    return q


@dataclass
class QuaRotContext(SchemeContext):
    bits: int = 4
    group: int = -1  # per-token / per-channel by default
    mx_format: BlockFormat | None = None  # QuaRot (MXFP4) variant when set
    seed: int = 0
    name: str = "quarot"
    _rotations: dict = field(default_factory=dict)

    def _rotation(self, dim: int) -> np.ndarray:
        if dim not in self._rotations:
            self._rotations[dim] = random_hadamard(dim, self.seed)
        return self._rotations[dim]

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        q = self._rotation(w.shape[0])
        x_r = x @ q
        w_r = q.T @ w
        if self.mx_format is not None:
            return (
                self.mx_format.quantize_dequantize(x_r, axis=-1),
                self.mx_format.quantize_dequantize(w_r, axis=0),
            )
        xq = quantize_int_groupwise(x_r, self.bits, group=self.group, axis=-1)
        wq = quantize_int_groupwise(w_r, self.bits, group=self.group, axis=0)
        return xq, wq
