"""Roofline GEMM timing model with MX+ software-integration costs.

``gemm_time`` returns seconds for ``D[M,N] += A[M,K] @ B[K,N]`` on a GPU
spec: the max of Tensor-Core compute time and DRAM traffic time, plus a
fixed kernel-launch overhead. The MX+ *software* path (Section 5.2,
Algorithm 1) adds one sparse MMA per two dense MMAs on the A operand —
1.5x compute, unchanged traffic — which is why the paper sees a 1.54x
prefill slowdown but only ~7% in the memory-bound decode stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import GPUSpec, format_storage_bits

__all__ = ["GemmShape", "gemm_time", "matmul_breakdown"]

#: fixed per-kernel launch/epilogue overhead (seconds)
KERNEL_OVERHEAD_S = 4e-6
#: Algorithm 1: one sparse MMA (2x rate, so one dense-equivalent) joins
#: every two dense MMAs -> 1.5x compute on the MX+ software path.
SOFTWARE_MXPLUS_COMPUTE_FACTOR = 1.5
#: Algorithm 1's per-kernel extra work (loading BM indices, ReplaceBM,
#: MakeFragment) inflates each kernel's fixed cost; this is what remains
#: visible in the memory-bound decode stage (the paper measures 6.71%).
SOFTWARE_MXPLUS_KERNEL_FACTOR = 1.25
#: Hardware integration (Section 6): the BCU overlaps the adder tree, so
#: only the extra BM-index register-file read lengthens the pipeline.
HARDWARE_MXPLUS_FACTOR = 1.0038  # measured 0.38% average in Figure 12


@dataclass(frozen=True)
class GemmShape:
    m: int
    n: int
    k: int

    @property
    def macs(self) -> float:
        return float(self.m) * self.n * self.k


def _storage_bits(fmt: str) -> float:
    """Traffic bits/element for the GEMM bandwidth model; unknown names
    price as bf16 (see :func:`repro.gpu.spec.format_storage_bits`)."""
    return format_storage_bits(fmt, default=16.0)


def gemm_time(
    spec: GPUSpec,
    shape: GemmShape,
    a_fmt: str = "bf16",
    b_fmt: str = "bf16",
    mxplus_software: bool = False,
    mxplus_hardware: bool = False,
    min_tile_m: int = 1,
) -> float:
    """Seconds for one GEMM under the roofline model.

    ``min_tile_m``: thread-block tile granularity on M — kernels that only
    ship one tile shape (CUTLASS A8W4's M=128, Section 7.4) burn compute
    on padding when the real M is smaller.
    """
    # mixed-precision MMA runs at the slower operand's rate
    rate = min(
        spec.tc_macs_per_s(a_fmt),
        spec.tc_macs_per_s(b_fmt),
    )
    effective_m = max(shape.m, min_tile_m)
    compute_s = float(effective_m) * shape.n * shape.k / rate
    if mxplus_software:
        compute_s *= SOFTWARE_MXPLUS_COMPUTE_FACTOR
    if mxplus_hardware:
        compute_s *= HARDWARE_MXPLUS_FACTOR

    bytes_a = shape.m * shape.k * _storage_bits(a_fmt) / 8.0
    bytes_b = shape.k * shape.n * _storage_bits(b_fmt) / 8.0
    bytes_d = shape.m * shape.n * 2.0  # BF16 output
    memory_s = (bytes_a + bytes_b + bytes_d) / spec.mem_bytes_per_s()

    overhead = KERNEL_OVERHEAD_S
    if mxplus_software:
        overhead *= SOFTWARE_MXPLUS_KERNEL_FACTOR
    return max(compute_s, memory_s) + overhead


def matmul_breakdown(
    spec: GPUSpec, shape: GemmShape, a_fmt: str, b_fmt: str
) -> dict[str, float]:
    """Compute vs memory seconds (diagnostics for roofline position)."""
    rate = min(spec.tc_macs_per_s(a_fmt), spec.tc_macs_per_s(b_fmt))
    bytes_total = (
        shape.m * shape.k * _storage_bits(a_fmt)
        + shape.k * shape.n * _storage_bits(b_fmt)
    ) / 8.0 + shape.m * shape.n * 2.0
    return {
        "compute_s": shape.macs / rate,
        "memory_s": bytes_total / spec.mem_bytes_per_s(),
    }
