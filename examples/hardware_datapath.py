"""Hardware-integration walkthrough: the extended Tensor-Core datapath
(Section 6) and the systolic-array variant (Section 8.2), verified against
the format's own dequantized arithmetic.

Run:  python examples/hardware_datapath.py
"""

import numpy as np

from repro.core import MXFP4, MXFP4Plus
from repro.gpu.area import scale_to_node, tensor_core_overhead
from repro.gpu.hardware import dpe_block_dot, lane_view, tensor_core_matmul
from repro.gpu.systolic import SystolicArray

rng = np.random.default_rng(0)
x = rng.standard_normal((4, 64))
x[:, 5] *= 40.0  # activation outliers -> MX+ BMs
w = rng.standard_normal((64, 8))

fx, fw = MXFP4Plus(), MXFP4()

# One block pair through the extended DPE: the FSU routes BM lanes to the
# BCU, the adder tree never sees extended-mantissa values.
enc_x = fx.encode(x, axis=-1)
enc_w = fw.encode(w, axis=0)
va, vb = lane_view(enc_x, 0), lane_view(enc_w, 0)
tree, bcu = dpe_block_dot(va, vb)
print("one block pair through the DPE:")
print(f"  adder-tree partial: {tree:+.4f}")
print(f"  BCU contribution:   {bcu:+.4f}  (BM lane {va.bm_lane})")
print(f"  total:              {tree + bcu:+.4f}")
print(f"  reference (decoded dot): {float(np.dot(fx(x)[0, :32], fw(w, axis=0)[:32, 0])):+.4f}")

# Full matmul through the Tensor-Core functional model.
out, cycles = tensor_core_matmul(x, w, fx, fw)
ref = fx(x) @ fw(w, axis=0)
print(f"\nTensor-Core matmul: max |err| vs dequantized reference = "
      f"{np.abs(out - ref).max():.2e}, DPE cycles = {cycles}")

# The same computation on a weight-stationary systolic array with
# per-column BCUs (Section 8.2).
arr = SystolicArray(fx, fw)
res = arr.matmul(x, w)
print(f"systolic array:     max |err| = {np.abs(res.output - ref).max():.2e}, "
      f"cycles = {res.cycles}")

# Table 5: what the extension costs in silicon.
cost = tensor_core_overhead()
print(f"\nadded area per Tensor Core (28nm): {cost['area_mm2']:.3f} mm^2, "
      f"{cost['power_mw']:.2f} mW")
print(f"scaled to a 4nm-class node: ~{scale_to_node(cost['area_mm2']):.5f} mm^2")
