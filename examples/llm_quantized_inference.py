"""Direct-cast quantized LLM inference: the paper's core experiment.

Loads (training on first run, ~1 minute) a scaled-down Llama-3.1-8B
stand-in with realistic activation outliers, then evaluates perplexity and
task accuracy across the MX / MX+ format ladder — every configuration
expressed as a :class:`repro.serve.QuantRecipe`, the repo's single config
surface. The finale serves real prompts through the
:class:`repro.serve.ServingEngine` numeric mode, so generated tokens and
TTFT/TPOT latency come from one API call.

Run:  python examples/llm_quantized_inference.py
"""

from repro.data.tasks import TASKS, make_task
from repro.eval import perplexity_table, task_accuracy
from repro.models.zoo import ARCHS, get_corpus, load_model
from repro.serve import QuantRecipe, Request, ServingEngine

model = load_model("llama-3.1-8b-sim", verbose=True)
corpus = get_corpus("wiki2-sim", 240_000)

print("\nPerplexity (wiki2-sim), direct-cast:")
table = perplexity_table(
    model,
    corpus,
    ["baseline", "mxfp8", "mxfp6", "mxfp4", "a-mxfp4+", "mxfp4+", "mxfp4++"],
)
for name, ppl in table.items():
    bar = "#" * int((ppl - min(table.values())) * 20)
    print(f"  {name:>9s}: {ppl:7.3f} {bar}")

print("\nTask accuracy (arc_easy-sim):")
task = make_task(corpus, TASKS["arc_challenge-sim"])
for name in ["baseline", "mxfp4", "mxfp4+"]:
    acc = task_accuracy(model, task, QuantRecipe.from_name(name))
    print(f"  {name:>9s}: {acc:5.1f}%")

print("\nServing real prompts under MXFP4+ (numeric mode: tokens + latency):")
engine = ServingEngine(
    ARCHS["llama-3.1-8b"], QuantRecipe.from_name("mxfp4+"), model=model
)
requests = [
    Request(f"req-{i}", prompt_tokens=corpus.val[16 * i : 16 * (i + 1)],
            max_new_tokens=12)
    for i in range(3)
]
result = engine.run(requests)
for req, resp in zip(requests, result.responses):
    print(f"  {resp.request_id}: TTFT {resp.ttft_s * 1e3:6.1f} ms, "
          f"TPOT {resp.tpot_s * 1e3:5.2f} ms")
    print(f"    prompt: {req.prompt_tokens.tolist()}")
    print(f"    output: {resp.tokens.tolist()}")
