"""Tracing overhead benchmark: the off-path must stay free.

Observability is only admissible if the untraced event loop keeps its
speed: every emit site in ``serve/`` is guarded by one ``tracer is not
None`` check, and this benchmark pins the cost of those checks. The
fleet configuration and workload are **identical** to
``benchmarks/test_event_loop.py`` (llama-2-13b, mxfp4+, 4 replicas,
round-robin, prefill-first, Poisson 200 req/s at seed 0, 100k
requests), so the committed ``BENCH_event_loop.json`` 100k
``single_rps`` is the apples-to-apples baseline.

Three measurements, min-across-rounds wall-clock (the tab06
discipline):

* **tracing off** — ``ServingCluster`` with no tracer attached. Gate:
  within ``MAX_OFF_OVERHEAD_PCT`` (5%) of the committed baseline rate.
* **tracing on** — a capacity-capped :class:`repro.obs.Tracer` (flight
  recorder keeps the newest ``TRACE_CAPACITY`` events) plus a throttled
  :class:`repro.obs.MetricsRegistry` on the same run. Recorded, not
  gated — tracing 100k requests is allowed to cost; the contract is
  that it *perturbs nothing*.
* **fingerprint identity** — the traced run's :class:`FleetResult`
  must be bit-identical to the untraced run's (same per-request
  latencies, same per-replica stage totals). Determinism, not just
  speed, is the off-switch guarantee.

The traced run's event stream is also pushed through
:func:`repro.obs.chrome_trace` + :func:`repro.obs.validate_chrome_trace`
so the artifact records the export shape (event counts, matched B/E
pairs) alongside the rates. All gates run **before** ``save_result`` so
a regressed run can never overwrite the committed
``BENCH_obs_overhead.json``.

Wall-clock rates are machine-dependent; regenerate this artifact and
``BENCH_event_loop.json`` in the same session so both reflect one
machine state (CI freshness-gates structure and the fingerprint flag,
not the absolute rates).
"""

import gc
import time

from _util import RESULTS_DIR, print_table, run_once, save_result

from repro.models.zoo import ARCHS
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.serve import ServingCluster, make_workload

N = 100_000
ROUNDS = 3
MAX_OFF_OVERHEAD_PCT = 5.0
#: Flight-recorder cap for the traced rounds: the newest 200k events
#: (the 1M-request mode of the paper's harness traces the tail, not the
#: whole run). Capped appends keep traced memory flat.
TRACE_CAPACITY = 200_000
#: Virtual-time seconds between fleet gauge samples (the registry-level
#: throttle); 100k requests at 200 req/s span ~500 virtual seconds.
METRICS_INTERVAL_S = 1.0

ARCH = ARCHS["llama-2-13b"]


def _cluster():
    # Must match benchmarks/test_event_loop.py::_cluster so the
    # committed BENCH_event_loop.json rate is a valid baseline.
    return ServingCluster(
        ARCH,
        "mxfp4+",
        n_replicas=4,
        router="round-robin",
        scheduler="prefill-first",
        kv_token_budget=262_144,
    )


def _trace_workload(n):
    return make_workload(n, seed=0, arrival="poisson", rate_rps=200.0)


def _fingerprint(fleet):
    return (
        fleet.makespan_s,
        fleet.total_tokens,
        tuple(sorted(fleet.assignments.items())),
        tuple(
            (r.request_id, r.ttft_s, r.tpot_s, r.finish_s)
            for r in fleet.responses
        ),
        tuple(
            (res.makespan_s, res.stages.prefill_s, res.stages.decode_s)
            for res in fleet.replica_results
        ),
    )


def _measure(reqs, traced):
    """Min wall-clock across ROUNDS; returns (best_s, fleet, tracer)."""
    best_s, fleet, tracer = float("inf"), None, None
    for _ in range(ROUNDS):
        cluster = _cluster()
        if traced:
            tracer = cluster.tracer = Tracer(capacity=TRACE_CAPACITY)
            cluster.metrics = MetricsRegistry(interval_s=METRICS_INTERVAL_S)
            for i, engine in enumerate(cluster.engines):
                engine.tracer = tracer
                engine.trace_replica = i
        gc.collect()
        t0 = time.perf_counter()
        fleet = cluster.run(reqs)
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, fleet, tracer


def _baseline_rps():
    """The committed 100k single-process rate this machine measured."""
    import json

    path = RESULTS_DIR / "BENCH_event_loop.json"
    payload = json.loads(path.read_text())
    return float(payload["sizes"]["100000"]["single_rps"])


def test_obs_overhead(benchmark):
    def run():
        reqs = _trace_workload(N)
        base_rps = _baseline_rps()
        off_s, off_fleet, _ = _measure(reqs, traced=False)
        on_s, on_fleet, tracer = _measure(reqs, traced=True)
        export = validate_chrome_trace(chrome_trace(tracer.events()))
        return {
            "baseline_rps": base_rps,
            "off": {"best_s": off_s, "rps": N / off_s},
            "on": {"best_s": on_s, "rps": N / on_s},
            "identical": _fingerprint(off_fleet) == _fingerprint(on_fleet),
            "tracer": tracer,
            "export": export,
        }

    m = run_once(benchmark, run)
    off_rps, on_rps, base_rps = m["off"]["rps"], m["on"]["rps"], m["baseline_rps"]
    off_overhead_pct = (base_rps - off_rps) / base_rps * 100.0
    print_table(
        "tracing overhead at 100k requests (req/s)",
        {
            "baseline (committed)": base_rps,
            "tracing off": off_rps,
            "tracing on": on_rps,
        },
        "{:.0f}",
    )

    # Gates before save_result: a regressed or perturbed run never
    # overwrites the committed artifact.
    assert off_overhead_pct <= MAX_OFF_OVERHEAD_PCT, (
        f"tracing-off loop at 100k: {off_rps:.0f} rps is "
        f"{off_overhead_pct:.1f}% below the committed BENCH_event_loop "
        f"baseline ({base_rps:.0f} rps); the nullable-tracer off-path "
        f"must stay within {MAX_OFF_OVERHEAD_PCT}%"
    )
    assert m["identical"], (
        "traced FleetResult fingerprint differs from untraced — tracing "
        "must never perturb the simulation"
    )
    tracer = m["tracer"]
    assert tracer.dropped == tracer.appended - len(tracer), "ring accounting"

    save_result(
        "BENCH_obs_overhead",
        {
            "config": {
                "arch": ARCH.name,
                "recipe": "mxfp4+",
                "n_replicas": 4,
                "router": "round-robin",
                "scheduler": "prefill-first",
                "kv_token_budget": 262_144,
                "workload": f"poisson seed=0 rate=200rps n={N}",
                "rounds": ROUNDS,
                "discipline": "min wall-clock across rounds",
                "trace_capacity": TRACE_CAPACITY,
                "metrics_interval_s": METRICS_INTERVAL_S,
            },
            "baseline_artifact": "BENCH_event_loop.json",
            "baseline_single_rps_100k": base_rps,
            "max_off_overhead_pct": MAX_OFF_OVERHEAD_PCT,
            "tracing_off": {
                "best_s": round(m["off"]["best_s"], 3),
                "rps": round(off_rps, 1),
                "overhead_pct_vs_baseline": round(off_overhead_pct, 2),
            },
            "tracing_on": {
                "best_s": round(m["on"]["best_s"], 3),
                "rps": round(on_rps, 1),
                "slowdown_x_vs_off": round(off_rps / on_rps, 2),
                "events_appended": tracer.appended,
                "events_kept": len(tracer),
                "events_dropped": tracer.dropped,
            },
            "fingerprint_identical": m["identical"],
            "export": m["export"],
        },
    )
