"""Bfloat16 rounding emulation.

The paper's baseline performs matrix multiplications and element-wise ops in
BF16 (softmax in FP32). Numpy has no native bfloat16, so we emulate the
rounding: view float32 bits, round-to-nearest-even on the low 16 mantissa
bits, truncate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bf16_round", "BF16_EPS"]

# Relative spacing of bfloat16 (8-bit mantissa incl. implicit bit).
BF16_EPS = 2.0**-8


def bf16_round(x: np.ndarray) -> np.ndarray:
    """Round an array to the nearest bfloat16 value (returned as float64).

    Round-to-nearest-even on the truncated 16 bits, matching hardware
    BF16 conversion. NaN/Inf pass through unchanged.
    """
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # round to nearest even: add 0x7FFF + lsb of the kept part
    lsb = (bits >> 16) & 1
    rounded = bits + 0x7FFF + lsb
    out = (rounded & 0xFFFF0000).view(np.float32)
    out = np.where(np.isfinite(x32), out, x32)
    return out.astype(np.float64)
