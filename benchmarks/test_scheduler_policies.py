"""Scheduler policy benchmark: chunked prefill vs prefill-first (and the
decode-priority bracket) on a bursty long-prompt workload at equal page
budget, BF16 vs MX+.

The policy story the discrete-event core exists to tell: under bursts of
long prompts, a prefill-first scheduler head-of-line-blocks every decode
behind each burst's prompt processing — finished-prefill requests wait
for their first token, running requests stall mid-generation, pages stay
pinned longer, and the tail TTFT stretches. Chunked prefill co-schedules
prompt chunks with decodes, so first tokens and page turnover keep
flowing: p99 TTFT strictly improves for *both* formats. The win is
bigger for MX+ because its 4.5-bit KV pages fit ~3.6x the concurrent
requests of BF16 at the same byte budget — BF16 degenerates toward
serial service (almost nothing to co-schedule), while MX+ has a whole
decode batch to protect. Decode-priority (never interrupt decodes)
brackets the space from the other side: best TPOT, worst queueing TTFT.
"""

from _util import print_table, run_once, save_result

from repro.models.zoo import ARCHS
from repro.serve import ServingCluster, long_prompt_workload

ARCH = ARCHS["llama-2-13b"]
GIB = 1 << 30
PAGE_BUDGET = 1 * GIB  # tight on purpose: concurrency is the contended resource
BLOCK_TOKENS = 16
N_REQUESTS = 40
RECIPES = ("bf16", "mxfp4+")
SCHEDULERS = ("prefill-first", "chunked-prefill", "decode-priority")


def _serve(recipe: str, scheduler: str):
    cluster = ServingCluster(
        ARCH,
        recipe,
        n_replicas=1,
        page_budget_bytes=PAGE_BUDGET,
        block_tokens=BLOCK_TOKENS,
        scheduler=scheduler,
    )
    fleet = cluster.run(long_prompt_workload(N_REQUESTS))
    replica = fleet.replica_results[0]
    return {
        "p99_ttft_ms": fleet.p99_ttft_s() * 1e3,
        "mean_ttft_ms": fleet.mean_ttft_s * 1e3,
        "mean_tpot_ms": fleet.mean_tpot_s * 1e3,
        "throughput_tok_s": fleet.throughput_tok_s,
        "makespan_ms": fleet.makespan_s * 1e3,
        "preemptions": fleet.preemptions,
        "peak_running": fleet.peak_running,
        "n_mixed_steps": replica.n_mixed_steps,
    }


def test_scheduler_policies(benchmark):
    def run():
        out = {
            "page_budget_gib": PAGE_BUDGET // GIB,
            "block_tokens": BLOCK_TOKENS,
            "n_requests": N_REQUESTS,
            "policies": {
                recipe: {sched: _serve(recipe, sched) for sched in SCHEDULERS}
                for recipe in RECIPES
            },
        }
        out["chunking_win_p99"] = {
            recipe: out["policies"][recipe]["prefill-first"]["p99_ttft_ms"]
            / out["policies"][recipe]["chunked-prefill"]["p99_ttft_ms"]
            for recipe in RECIPES
        }
        return out

    table = run_once(benchmark, run)
    for recipe in RECIPES:
        print_table(
            f"Scheduler policies ({recipe}, {table['page_budget_gib']} GiB pages)",
            table["policies"][recipe],
        )
    print_table("Chunking win (p99 TTFT ratio)", table["chunking_win_p99"])

    # Assertions come before save_result so a failing run can never
    # overwrite the committed artifact.
    for recipe in RECIPES:
        rows = table["policies"][recipe]
        # Chunked prefill strictly improves p99 TTFT at equal page budget.
        assert rows["chunked-prefill"]["p99_ttft_ms"] < rows["prefill-first"]["p99_ttft_ms"]
        # ... and decodes riding along raise throughput too.
        assert rows["chunked-prefill"]["throughput_tok_s"] > rows["prefill-first"]["throughput_tok_s"]
        # Chunked steps really are mixed (co-scheduled) batches.
        assert rows["chunked-prefill"]["n_mixed_steps"] > 0
        assert rows["prefill-first"]["n_mixed_steps"] == 0
        # Decode-priority brackets the other side: never stalling decodes
        # gives the best TPOT and the worst queueing tail.
        assert rows["decode-priority"]["mean_tpot_ms"] <= rows["prefill-first"]["mean_tpot_ms"]
        assert rows["decode-priority"]["p99_ttft_ms"] > rows["prefill-first"]["p99_ttft_ms"]

    # MX+ fits ~3.6x BF16's requests per page budget, so chunking has a
    # whole decode batch to protect — the larger chunking win (the
    # format-capacity argument showing up at the scheduler level).
    assert table["chunking_win_p99"]["mxfp4+"] > table["chunking_win_p99"]["bf16"]

    save_result("scheduler_policies", table)
