"""SmoothQuant (Xiao et al., ICML'23) — activation-to-weight scale migration.

Per output of the migration strength ``alpha``:

    s_j = max|X_j|^alpha / max|W_j|^(1 - alpha)

activations are divided by ``s`` and weights multiplied by it (an exact
transform), then both sides are quantized — per-token INT for activations,
per-channel INT for weights, or an MX format for the SMQ (MXFP4) variant
of Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocks import BlockFormat
from ..core.intquant import quantize_int_groupwise, quantize_int_tensor
from .base import SchemeContext

__all__ = ["SmoothQuantContext"]


@dataclass
class SmoothQuantContext(SchemeContext):
    alpha: float = 0.5
    bits: int = 4
    mx_format: BlockFormat | None = None  # SMQ (MXFP4) variant when set
    name: str = "smoothquant"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        amax_x = np.max(np.abs(x.reshape(-1, x.shape[-1])), axis=0)
        amax_w = np.max(np.abs(w), axis=1)
        s = np.maximum(amax_x, 1e-12) ** self.alpha / np.maximum(
            amax_w, 1e-12
        ) ** (1 - self.alpha)
        s = np.maximum(s, 1e-6)
        x_m = x / s
        w_m = w * s[:, None]
        if self.mx_format is not None:
            return (
                self.mx_format.quantize_dequantize(x_m, axis=-1),
                self.mx_format.quantize_dequantize(w_m, axis=0),
            )
        # Static per-tensor activation scale (the deployed SMQ kernel) and
        # per-output-channel weight scales — this is why SMQ collapses at
        # 4 bits in Table 7.
        xq = quantize_int_tensor(x_m, self.bits)
        wq = quantize_int_groupwise(w_m, self.bits, group=-1, axis=0)
        return xq, wq
