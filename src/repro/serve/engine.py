"""Request-level serving front-end: a discrete-event continuous-batching
engine over the simulator.

:class:`ServingEngine` turns the per-forward kernel-time model of
:mod:`repro.gpu.inference` into an LLM *serving* loop: clients submit
:class:`Request` objects (arrival time, prompt length, output budget), a
continuous-batching scheduler admits and evicts them against a KV-cache
token budget, and each request comes back as a :class:`Response` with
per-request latency accounting (TTFT / TPOT / end-to-end).

The engine is an incremental event loop, not a batch function:
``submit()`` enqueues a request (requests can arrive while others are in
flight), ``peek_next_event()`` reports the next virtual instant the
engine can act, and ``step()`` advances one scheduler iteration —
returning a :class:`StepEvent` record. ``run()`` wraps the three into
the classic serve-a-batch-to-completion call. A
:class:`repro.serve.ServingCluster` drives many engines through the same
API in global virtual-time order.

*What runs in a step* is delegated to a pluggable
:class:`repro.serve.sched.Scheduler` (``scheduler=`` accepts a policy
name or instance). The default ``"prefill-first"`` policy reproduces the
vLLM-style loop this engine originally hard-coded — byte-identical
artifacts — while ``"chunked-prefill"`` splits long prompts into
token-budget chunks co-scheduled with decodes (no head-of-line
blocking), and ``"decode-priority"`` never interrupts decodes. When
decode growth overflows the cache, the most recently admitted request is
preempted and re-enters the queue for recomputation.

KV memory goes through a :class:`repro.serve.kvcache.PagedKVCache`:
block-granular allocation, byte-accurate page sizing per recipe, and
shared-prefix caching (requests that declare ``prefix_id`` skip
recomputing cached prefix tokens in prefill, which lowers their TTFT).
The legacy flat ``kv_token_budget`` argument is now a shim that builds a
1-token-per-page cache with identical admission/preemption semantics.

Timing comes from :func:`repro.gpu.inference.step_time` in virtual time —
a uniform batch reconciles exactly with ``simulate_inference`` totals.
With ``model=`` set (a :class:`repro.nn.transformer.TransformerLM`) the
engine also runs the real forward under the recipe's ``QuantContext`` and
returns generated tokens, so accuracy and timing come from one API call.

>>> from repro.models.zoo import ARCHS
>>> engine = ServingEngine(ARCHS["llama-2-13b"], "mxfp4+", kv_token_budget=4096)
>>> result = engine.run([Request("r0", prompt_len=512, max_new_tokens=4),
...                      Request("r1", prompt_len=512, max_new_tokens=4)])
>>> [r.output_len for r in result.responses]
[4, 4]
>>> result.peak_running
2
>>> 0.0 < result.responses[0].ttft_s < result.responses[0].e2e_latency_s
True

Incremental use — submit mid-flight, observe events:

>>> engine = ServingEngine(ARCHS["llama-2-13b"], "mxfp4+", kv_token_budget=4096)
>>> engine.begin_run()
>>> engine.submit(Request("a", prompt_len=128, max_new_tokens=2))
>>> event = engine.step()  # prefill step for "a"
>>> (event.n_prefill_rows, event.n_decode_rows)
(128, 0)
>>> engine.submit(Request("b", prompt_len=64, max_new_tokens=1,
...                       arrival_s=engine.clock))
>>> while engine.has_work():
...     _ = engine.step()
>>> sorted(engine.finished)
['a', 'b']
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

import numpy as np

from ..gpu.inference import StageTimes, as_serving_config, step_time
from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from .kvcache import PagedKVCache
from .recipe import QuantRecipe
from .sched import Scheduler, StepPlan, get_scheduler

__all__ = [
    "Request",
    "Response",
    "ServingResult",
    "StepEvent",
    "KVHandoff",
    "ServingEngine",
    "validate_batch",
    "arrival_order",
]

#: Engine roles in a (possibly disaggregated) fleet. ``"unified"`` runs
#: the classic colocated loop; ``"prefill"`` serves every request up to
#: its *first* output token, then parks it for `export_kv` (KV
#: migration); ``"decode"`` additionally accepts migrated requests via
#: `import_kv` and generates their remaining tokens without re-prefill.
ENGINE_ROLES = ("unified", "prefill", "decode")


@dataclass(frozen=True)
class Request:
    """One client request: a prompt and a generation budget.

    ``prompt_tokens`` is optional; when provided (numeric mode) it defines
    ``prompt_len``, and the engine generates real tokens with the model.

    ``prefix_id``/``prefix_len`` declare that the first ``prefix_len``
    prompt tokens are a shared prefix (e.g. a common system prompt):
    requests with the same ``prefix_id`` store those tokens once in a
    paged KV cache, and prefix *hits* skip recomputing them in prefill.

    >>> Request("r0", prompt_len=512, max_new_tokens=64).prompt_len
    512
    >>> Request("r1", prompt_len=640, prefix_id="sys", prefix_len=512).prefix_id
    'sys'
    """

    request_id: str
    prompt_len: int = 0
    max_new_tokens: int = 1
    arrival_s: float = 0.0
    prefix_id: str | None = None
    prefix_len: int = 0
    # excluded from eq/hash: ndarrays have no scalar truth value
    prompt_tokens: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.prompt_tokens is not None:
            tokens = np.asarray(self.prompt_tokens)
            object.__setattr__(self, "prompt_tokens", tokens)
            object.__setattr__(self, "prompt_len", int(tokens.shape[-1]))
        if self.prompt_len <= 0:
            raise ValueError(f"request {self.request_id!r}: empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError(f"request {self.request_id!r}: max_new_tokens < 1")
        if self.arrival_s < 0:
            raise ValueError(f"request {self.request_id!r}: negative arrival")
        if self.prefix_len < 0:
            raise ValueError(f"request {self.request_id!r}: negative prefix_len")
        if self.prefix_len > self.prompt_len:
            raise ValueError(
                f"request {self.request_id!r}: prefix_len {self.prefix_len} "
                f"exceeds prompt_len {self.prompt_len}"
            )
        if self.prefix_len > 0 and self.prefix_id is None:
            raise ValueError(
                f"request {self.request_id!r}: prefix_len without prefix_id"
            )


def validate_batch(requests: list[Request]) -> dict[str, int]:
    """Input-position map for a batch, rejecting duplicate request ids.

    The one shared admission-validation helper: both
    :meth:`ServingEngine.run` and :meth:`repro.serve.ServingCluster.run`
    build their ordering from it.

    >>> validate_batch([Request("a", prompt_len=1), Request("b", prompt_len=1)])
    {'a': 0, 'b': 1}
    """
    order = {r.request_id: i for i, r in enumerate(requests)}
    if len(order) != len(requests):
        raise ValueError("duplicate request_id in batch")
    return order


def arrival_order(requests: list[Request]) -> list[Request]:
    """Requests sorted by arrival time, ties broken by input position.

    Validates via :func:`validate_batch` (duplicate ids raise) — the
    canonical submission order for engines and for cluster routing.
    """
    order = validate_batch(requests)
    return sorted(requests, key=lambda r: (r.arrival_s, order[r.request_id]))


@dataclass
class Response:
    """Per-request serving outcome with latency accounting."""

    request_id: str
    prompt_len: int
    output_len: int
    arrival_s: float
    first_token_s: float  # virtual time the first output token completed
    finish_s: float
    preemptions: int = 0
    tokens: np.ndarray | None = None  # numeric mode only

    @property
    def ttft_s(self) -> float:
        """Time to first token: queueing + prefill + first decode step."""
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for 1-token outputs)."""
        if self.output_len <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.output_len - 1)

    @property
    def e2e_latency_s(self) -> float:
        """End-to-end latency: arrival to last generated token."""
        return self.finish_s - self.arrival_s


@dataclass
class ServingResult:
    """Batch outcome: responses (input order) + aggregate accounting."""

    responses: list[Response]
    stages: StageTimes  # aggregate prefill/decode seconds across all steps
    makespan_s: float  # last finish time (virtual clock)
    n_prefill_steps: int = 0
    n_decode_steps: int = 0
    n_mixed_steps: int = 0  # steps carrying both chunk and decode rows
    preemptions: int = 0
    peak_running: int = 0  # max concurrently decoding requests
    kv: dict = field(default_factory=dict)  # PagedKVCache.stats() snapshot

    # -- cached metric views -------------------------------------------
    # At 1M responses the summary helpers must not rebuild a Python list
    # (or re-sort it) on every property access. Value arrays and their
    # sorted views are built once per metric and memoized on the
    # instance; `responses` is treated as frozen once any metric has
    # been read. Means use the unsorted array (accumulation order — and
    # therefore the float result — is unchanged); percentiles use the
    # sorted view, which is value-identical because order statistics
    # don't depend on input permutation. `sorts_performed` counts actual
    # np.sort calls so tests can pin the no-re-sort contract.

    def _values(self, metric: str) -> np.ndarray:
        cache = self.__dict__.setdefault("_metric_values", {})
        arr = cache.get(metric)
        if arr is None:
            arr = np.asarray(
                [getattr(r, metric) for r in self.responses], dtype=float
            )
            cache[metric] = arr
        return arr

    def _sorted_values(self, metric: str) -> np.ndarray:
        cache = self.__dict__.setdefault("_metric_sorted", {})
        arr = cache.get(metric)
        if arr is None:
            arr = np.sort(self._values(metric))
            cache[metric] = arr
            self.__dict__["_sorts"] = self.__dict__.get("_sorts", 0) + 1
        return arr

    @property
    def sorts_performed(self) -> int:
        """How many metric sorts this result has ever run (cache probe)."""
        return self.__dict__.get("_sorts", 0)

    @property
    def total_tokens(self) -> int:
        """Output tokens generated across all responses."""
        total = self.__dict__.get("_total_tokens")
        if total is None:
            total = sum(r.output_len for r in self.responses)
            self.__dict__["_total_tokens"] = total
        return total

    @property
    def throughput_tok_s(self) -> float:
        """Output tokens per second of virtual wall-clock."""
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def mean_ttft_s(self) -> float:
        """Mean time-to-first-token over the batch (seconds)."""
        if not self.responses:
            return 0.0
        return float(np.mean(self._values("ttft_s")))

    @property
    def mean_tpot_s(self) -> float:
        """Mean time-per-output-token over the batch (seconds)."""
        if not self.responses:
            return 0.0
        return float(np.mean(self._values("tpot_s")))

    def p99_ttft_s(self, q: float = 99.0) -> float:
        """The ``q``-th percentile TTFT — the tail latency SLOs watch."""
        if not self.responses:
            return 0.0
        return float(np.percentile(self._sorted_values("ttft_s"), q))

    def summary(self) -> dict[str, float]:
        """Headline serving metrics as one JSON-friendly dict."""
        return {
            "requests": len(self.responses),
            "total_tokens": self.total_tokens,
            "makespan_s": self.makespan_s,
            "prefill_s": self.stages.prefill_s,
            "decode_s": self.stages.decode_s,
            "throughput_tok_s": self.throughput_tok_s,
            "mean_ttft_s": self.mean_ttft_s,
            "mean_tpot_s": self.mean_tpot_s,
            "preemptions": self.preemptions,
            "peak_running": self.peak_running,
        }


@dataclass(eq=False, slots=True)
class _Active:
    """Scheduler-internal state for one admitted (or requeued) request.

    Identity equality (``eq=False``): two live states are never
    field-equal anyway (``seq`` is unique per submission), and membership
    tests / ``list.remove`` on the running set are hot at fleet scale —
    field-wise dataclass comparison there is pure overhead. ``slots``
    buys the same thing on attribute access: this object is touched
    several times per scheduler step per running request.
    """

    request: Request
    order: int  # admission sequence number (eviction picks the max)
    seq: int = 0  # submission sequence number (arrival tie-break)
    generated: int = 0
    first_token_s: float = -1.0
    preemptions: int = 0
    cached: int = 0  # prefix tokens reused from the KV cache this admission
    prefilled: int = 0  # prompt rows computed this admission (cached excluded)
    admit_ctx: int = 0  # context tokens at admission (fixed until requeued)
    imported: bool = False  # KV migrated in: admission skips transferred tokens
    transfer_tokens: int = 0  # context tokens that actually crossed the link
    ready_s: float = 0.0  # earliest schedulable instant (arrival or import)
    tokens: list = field(default_factory=list)  # numeric mode
    # Queue position: (1, arrival, seq) for fresh requests; preemption
    # victims get (0, -evict_tick, 0) so they sit at the queue head,
    # most recent eviction first — the historical appendleft semantics.
    queue_key: tuple = (1, 0.0, 0)

    @property
    def ctx(self) -> int:
        """Tokens currently resident in the KV cache."""
        return self.request.prompt_len + self.generated

    @property
    def done(self) -> bool:
        return self.generated >= self.request.max_new_tokens

    @property
    def prefill_tokens_needed(self) -> int:
        """Context rows this admission must compute (>= 1 even on a full
        prefix hit: the last token is recomputed to produce logits).
        Fixed at admission — decode growth afterwards must not reopen the
        prefill. Requeued preemption victims recompute their *full*
        context — prompt plus the tokens already generated — but do not
        regenerate the output tokens themselves."""
        return max(1, self.admit_ctx - self.cached)

    @property
    def prefill_remaining(self) -> int:
        return self.prefill_tokens_needed - self.prefilled

    @property
    def prefill_done(self) -> bool:
        return self.prefill_remaining <= 0

    def __lt__(self, other: "_Active") -> bool:  # insort support
        return self.queue_key < other.queue_key


@dataclass
class StepEvent:
    """What one :meth:`ServingEngine.step` did (a discrete event record)."""

    t_start: float  # virtual time the step began
    t_end: float  # virtual time the step completed (engine clock after)
    kind: str  # "prefill" | "decode" | "mixed"
    n_prefill_rows: int = 0
    n_decode_rows: int = 0
    admitted: list[str] = field(default_factory=list)
    finished: list[str] = field(default_factory=list)
    preempted: int = 0
    # prefill-role engines only: requests whose first token completed this
    # step and now await export_kv() (KV migration to a decode replica).
    handoff_ready: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class KVHandoff:
    """A prefill-complete request packaged for KV migration.

    Produced by :meth:`ServingEngine.export_kv` on a ``role="prefill"``
    engine — at which point the source's KV pages are already released
    (refcount-correct: shared prefix pages stay cached for siblings) —
    and consumed by :meth:`ServingEngine.import_kv` on the destination.
    ``tokens`` is the resident context at export (prompt + the first
    generated token): the KV that must cross the interconnect, priced by
    :class:`repro.serve.kvcache.KVTransfer`.
    """

    request: Request
    tokens: int  # KV tokens resident at export (prompt_len + generated)
    generated: int  # output tokens already produced (>= 1: the first token)
    first_token_s: float  # TTFT is fixed on the prefill replica
    export_s: float  # virtual time the source released its pages
    preemptions: int = 0
    token_ids: tuple = ()  # numeric mode: generated token ids so far


class ServingEngine:
    """Discrete-event continuous-batching loop over one :class:`QuantRecipe`.

    Parameters
    ----------
    arch:
        Full-size architecture descriptor (``repro.models.zoo.ARCHS``)
        driving the kernel-time model.
    recipe:
        A :class:`QuantRecipe`, recipe name, or legacy ``ServingConfig``
        (the latter timing-only: numeric mode requires a recipe).
    spec:
        GPU spec for the roofline model (default RTX 5090-class).
    kv_token_budget:
        Legacy flat budget: when ``kv_cache`` is not given, the engine
        builds ``PagedKVCache.from_token_budget(kv_token_budget)`` —
        1-token pages, so admission/preemption behave exactly like the
        original flat counter.
    max_batch:
        Maximum concurrently running requests.
    model:
        Optional :class:`~repro.nn.transformer.TransformerLM`. When set,
        requests carrying ``prompt_tokens`` are decoded for real (greedy)
        under ``recipe.to_context()`` and responses include ``tokens``.
    kv_cache:
        A :class:`~repro.serve.kvcache.PagedKVCache` to allocate KV
        memory from (e.g. ``PagedKVCache.from_byte_budget(...)`` so page
        count reflects the recipe's KV bytes/token). The cache's prefix
        store persists across ``run`` calls — a warm system-prompt cache
        carries over.
    scheduler:
        Batch-composition policy: a name from
        :func:`repro.serve.sched.available_schedulers` or a
        :class:`~repro.serve.sched.Scheduler` instance. The default
        ``"prefill-first"`` reproduces the historical loop exactly.
    role:
        ``"unified"`` (default) is the classic colocated loop. In a
        disaggregated fleet, ``"prefill"`` engines serve each request
        through prefill and its *first* output token, then park it for
        :meth:`export_kv` (KV migration); ``"decode"`` engines accept
        migrated requests via :meth:`import_kv` and generate the
        remaining tokens without recomputing prefill.
    tracer:
        Optional :class:`repro.obs.Tracer`. When set, the engine emits
        virtual-time lifecycle and step events (arrive / admit /
        prefill_chunk / first_token / preempt / finish / export /
        import / step) tagged with ``trace_replica`` (the lane index a
        cluster assigns; 0 standalone). Every instrumentation site is a
        single ``if tracer is not None`` — an untraced run's results
        are bit-identical.
    """

    def __init__(
        self,
        arch: ArchSpec,
        recipe,
        spec: GPUSpec = RTX5090,
        kv_token_budget: int = 262_144,
        max_batch: int = 256,
        model=None,
        kv_cache: PagedKVCache | None = None,
        scheduler="prefill-first",
        role: str = "unified",
        tracer=None,
    ) -> None:
        if isinstance(recipe, str):
            recipe = QuantRecipe.from_name(recipe)
        if role not in ENGINE_ROLES:
            raise ValueError(
                f"unknown engine role {role!r} (one of {', '.join(ENGINE_ROLES)})"
            )
        if kv_cache is None:
            if kv_token_budget < 1:
                raise ValueError("kv_token_budget must be >= 1")
            kv_cache = PagedKVCache.from_token_budget(kv_token_budget)
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.arch = arch
        self.recipe = recipe
        self.spec = spec
        self.cfg = as_serving_config(recipe)
        self.kv_cache = kv_cache
        self.kv_token_budget = kv_cache.capacity_tokens
        self.max_batch = max_batch
        self.model = model
        self.role = role
        self.tracer = tracer
        self.trace_replica = 0  # lane index in trace events (cluster sets it)
        self.scheduler: Scheduler = get_scheduler(scheduler)
        self._qc = None
        if model is not None:
            if not isinstance(recipe, QuantRecipe):
                # A bare ServingConfig carries timing knobs only — running
                # the model without the matching QuantContext would pair
                # quantized timing with unquantized tokens.
                raise ValueError(
                    "numeric mode (model=...) requires a QuantRecipe or "
                    f"recipe name, got {type(recipe).__name__}"
                )
            self._qc = recipe.to_context()
        self.begin_run()

    # -- event-loop state ----------------------------------------------
    def begin_run(self) -> None:
        """Reset per-run state (clock, queues, counters, responses).

        The KV cache is *not* reset — warm shared prefixes carry over
        between runs, exactly as before. Raises if requests are still in
        flight (``run`` the engine dry, or ``abort`` first).
        """
        if (
            getattr(self, "_running", None)
            or getattr(self, "_waiting", None)
            or getattr(self, "_exportable", None)
        ):
            raise RuntimeError("begin_run() with requests still in flight")
        self._waiting: list[_Active] = []  # sorted by _Active.queue_key
        self._running: list[_Active] = []
        self._exportable: dict[str, _Active] = {}  # prefill role: awaiting export
        self.finished: dict[str, Response] = {}
        self._known_ids: set[str] = set()
        self.clock = 0.0
        self._prefill_s = 0.0
        self._decode_s = 0.0
        self._n_prefill = 0
        self._n_decode = 0
        self._n_mixed = 0
        self._preemptions = 0
        self._peak_running = 0
        self._submit_seq = 0
        self._admit_seq = 0
        self._evict_tick = 0
        self.scheduler.reset()

    def abort(self) -> None:
        """Free the KV pages of every in-flight request (crash cleanup).

        The cache persists across runs (warm prefixes); a run that dies
        mid-flight must not leak its resident sequences' pages.
        """
        for state in self._running:
            self.kv_cache.free(state.request.request_id)
        for request_id in self._exportable:
            self.kv_cache.free(request_id)
        self._running.clear()
        self._waiting.clear()
        self._exportable.clear()

    # -- queue introspection (schedulers, routers, autoscalers) --------
    @property
    def running(self) -> list[_Active]:
        """Admitted, unfinished requests in admission order (live view)."""
        return self._running

    @property
    def waiting(self) -> list[_Active]:
        """Queued requests in admission-priority order (live view)."""
        return self._waiting

    @property
    def n_running(self) -> int:
        """Admitted, unfinished requests (the current batch size)."""
        return len(self._running)

    @property
    def n_waiting(self) -> int:
        """Queued requests not yet admitted to the KV cache."""
        return len(self._waiting)

    @property
    def queue_depth(self) -> int:
        """Unfinished requests on this engine (waiting + running)."""
        return len(self._waiting) + len(self._running)

    @property
    def free_kv_tokens(self) -> int:
        """KV tokens the paged cache could still hold right now."""
        return self.kv_cache.free_tokens

    def has_work(self) -> bool:
        """Whether any request is still waiting or running here."""
        return bool(self._waiting or self._running)

    @property
    def exportable(self) -> list[str]:
        """Request ids parked for KV migration (prefill role), in the
        order their first token completed."""
        return list(self._exportable)

    # -- disaggregated handoff (prefill -> decode KV migration) --------
    def export_kv(self, request_id: str) -> KVHandoff:
        """Package a prefill-complete request for migration; free its pages.

        Only requests a prefill-role step reported in
        ``StepEvent.handoff_ready`` can be exported. The source's KV
        pages are released *refcount-correctly*: a shared prefix the
        request was holding stays cached for sibling requests (its
        refcount drops by one), exactly as a normal completion would
        leave it. The returned :class:`KVHandoff` carries everything the
        destination needs — request metadata, resident token count (the
        bytes to migrate), TTFT already fixed on this replica, and any
        numeric-mode token ids.
        """
        state = self._exportable.pop(request_id, None)
        if state is None:
            raise KeyError(
                f"request {request_id!r} is not awaiting export "
                f"(exportable: {sorted(self._exportable)})"
            )
        handoff = KVHandoff(
            request=state.request,
            tokens=state.ctx,
            generated=state.generated,
            first_token_s=state.first_token_s,
            export_s=self.clock,
            preemptions=state.preemptions,
            token_ids=tuple(state.tokens),
        )
        self.kv_cache.free(request_id)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock, self.trace_replica, "export", request_id,
                (handoff.tokens,),
            )
        return handoff

    def import_kv(
        self,
        handoff: KVHandoff,
        arrival_s: float,
        transferred_tokens: int | None = None,
    ) -> None:
        """Accept a migrated request; it decodes without recomputing prefill.

        ``arrival_s`` is the virtual instant the KV transfer completed —
        the request becomes schedulable then, not at its original client
        arrival. Admission goes through the normal paged-allocator path
        (committing pages for the full migrated context, sharing a
        cached prefix if this replica already holds it); if the cache is
        full the request waits in the queue like any other. Raises on a
        prefill-role engine — migrations flow prefill → decode.

        ``transferred_tokens`` is how many of the handoff's context
        tokens actually crossed the link (default: all of them). The
        sender may have skipped a shared prefix it saw cached here at
        export time; if that prefix is gone by the time admission
        happens, the gap is *recomputed locally* as prefill rows —
        migrated KV never materializes out of nothing.
        """
        if self.role == "prefill":
            raise ValueError("prefill-role engines cannot import KV")
        request = handoff.request
        self._validate_admission(
            request, request.prompt_len + request.max_new_tokens
        )
        if arrival_s < handoff.export_s:
            raise ValueError("import before export: transfer time must be >= 0")
        if transferred_tokens is None:
            transferred_tokens = handoff.tokens
        if not 0 <= transferred_tokens <= handoff.tokens:
            raise ValueError(
                f"transferred_tokens {transferred_tokens} outside "
                f"[0, {handoff.tokens}]"
            )
        self._known_ids.add(request.request_id)
        state = _Active(
            request=request,
            order=-1,
            seq=self._submit_seq,
            generated=handoff.generated,
            first_token_s=handoff.first_token_s,
            preemptions=handoff.preemptions,
            imported=True,
            transfer_tokens=transferred_tokens,
            tokens=list(handoff.token_ids),
        )
        state.queue_key = (1, arrival_s, state.seq)
        state.ready_s = arrival_s
        self._submit_seq += 1
        insort(self._waiting, state)
        if self.tracer is not None:
            self.tracer.emit(
                arrival_s, self.trace_replica, "import",
                request.request_id, (transferred_tokens,),
            )

    # -- incremental event API -----------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue one request (callable while others are in flight).

        Requests are ordered by ``(arrival_s, submission order)``;
        preemption victims keep their place at the queue head. A request
        that could never fit the KV cache is rejected immediately.
        """
        # A prefill-role engine only ever holds the prompt plus the first
        # output token; the rest of the generation budget lives on the
        # decode replica the KV migrates to.
        self._validate_admission(
            request,
            request.prompt_len
            + (1 if self.role == "prefill" else request.max_new_tokens),
        )
        self._known_ids.add(request.request_id)
        state = _Active(request=request, order=-1, seq=self._submit_seq)
        state.queue_key = (1, request.arrival_s, state.seq)
        state.ready_s = request.arrival_s
        self._submit_seq += 1
        insort(self._waiting, state)
        if self.tracer is not None:
            self.tracer.emit(
                request.arrival_s, self.trace_replica, "arrive",
                request.request_id, (request.prompt_len, request.max_new_tokens),
            )

    def _validate_admission(self, request: Request, total: int) -> None:
        """Shared enqueue validation (``submit`` and ``import_kv``):
        reject duplicate ids and requests the cache could never hold."""
        if request.request_id in self._known_ids:
            raise ValueError(
                f"duplicate request_id {request.request_id!r} in batch"
            )
        if total > self.kv_cache.capacity_tokens:
            raise ValueError(
                f"kv_token_budget={self.kv_cache.capacity_tokens} cannot hold "
                f"the largest request ({total} tokens)"
            )

    def peek_next_event(self) -> float | None:
        """Virtual time of the next instant the engine can act.

        ``clock`` when anything is running or an arrived request waits;
        the head arrival time when the engine is idle with only future
        requests; ``None`` when fully drained. A cluster event loop uses
        this to advance replicas in global virtual-time order.
        """
        if self._running:
            return self.clock
        if not self._waiting:
            return None
        head = self._waiting[0]
        if head.queue_key[0] == 0 or head.ready_s <= self.clock:
            return self.clock  # preemption victims are always "arrived"
        return head.ready_s

    def step(self) -> StepEvent | None:
        """Advance one scheduler iteration; ``None`` when drained.

        Jumps the clock over idle gaps, asks the scheduler to compose
        the step (admission happens inside the scheduler's plan), prices
        it with :func:`repro.gpu.inference.step_time`, and applies the
        results: prefill progress, decode growth (with overflow
        preemption), completions.
        """
        nxt = self.peek_next_event()
        if nxt is None:
            return None
        if nxt > self.clock:  # idle engine: jump to the next arrival
            self.clock = nxt
        t_start = self.clock
        plan = self.scheduler.plan(self)
        admitted_ids = [
            s.request.request_id for s, _ in plan.prefill if s.prefilled == 0
        ]

        preempted = 0
        if plan.decode:
            preempted = self._preempt_overflow(plan)
        if plan.empty:
            # A zero-duration step cannot make progress; returning would
            # spin run()/the cluster loop forever. Unreachable with the
            # built-in policies (they always cover `running`, and
            # preemption cannot empty both plan lists while requests
            # run) — this turns a buggy custom scheduler into a loud
            # failure instead of a hang.
            raise RuntimeError(
                f"scheduler {self.scheduler.name!r} produced an empty step "
                f"plan with {len(self._running)} running / "
                f"{len(self._waiting)} waiting requests"
            )

        tag = plan.tag_kinds
        groups: list = []
        for state, rows in plan.prefill:
            ctx = min(state.admit_ctx, state.cached + state.prefilled + rows)
            groups.append((rows, ctx, "prefill") if tag else (rows, ctx))
        if tag:
            groups.extend(
                (1, s.request.prompt_len + s.generated, "decode")
                for s in plan.decode
            )
        else:
            groups.extend(
                (1, s.request.prompt_len + s.generated) for s in plan.decode
            )
        t = step_time(self.spec, self.arch, self.cfg, groups)
        self.clock += t

        n_prefill_rows = sum(rows for _, rows in plan.prefill)
        n_decode_rows = len(plan.decode)
        if plan.prefill and plan.decode:
            kind = "mixed"
            self._n_mixed += 1
            # Attribute mixed-step time to the stages by row share — the
            # only decomposition that keeps prefill_s + decode_s == makespan
            # without re-pricing the sub-batches separately.
            share = n_prefill_rows / (n_prefill_rows + n_decode_rows)
            self._prefill_s += t * share
            self._decode_s += t * (1.0 - share)
        elif plan.prefill:
            kind = "prefill"
            self._n_prefill += 1
            self._prefill_s += t
        else:
            kind = "decode"
            self._n_decode += 1
            self._decode_s += t

        for state, rows in plan.prefill:
            state.prefilled += rows
        finished_ids: list[str] = []
        append_token = self.kv_cache.append_token
        clock = self.clock
        numeric = self.model is not None
        done: list = []
        for state in plan.decode:
            if numeric and state.request.prompt_tokens is not None:
                state.tokens.append(self._next_token(state))
            append_token(state.request.request_id)
            state.generated += 1
            if state.first_token_s < 0:
                state.first_token_s = clock
            if state.generated >= state.request.max_new_tokens:
                done.append(state)
        for state in done:
            self._running.remove(state)
            self.kv_cache.free(state.request.request_id)
            self.finished[state.request.request_id] = self._response(state, clock)
            finished_ids.append(state.request.request_id)
        handoff_ids: list[str] = []
        if self.role == "prefill":
            # First token done, more tokens budgeted: the request's KV is
            # ready to migrate. It leaves the batch but keeps its pages
            # pinned until export_kv() releases them.
            for state in [s for s in plan.decode if not s.done and s.generated >= 1]:
                self._running.remove(state)
                self._exportable[state.request.request_id] = state
                handoff_ids.append(state.request.request_id)
        if self.tracer is not None:
            emit = self.tracer.emit
            rep = self.trace_replica
            emit(t_start, rep, "step", "",
                 (clock, kind, n_prefill_rows, n_decode_rows, plan.notes))
            for state, rows in plan.prefill:
                emit(t_start, rep, "prefill_chunk",
                     state.request.request_id, (rows, clock))
            for state in plan.decode:
                # first_token_s was stamped with this step's end clock iff
                # the first output token completed just now.
                if state.first_token_s == clock:
                    emit(clock, rep, "first_token", state.request.request_id)
            for state in done:
                emit(clock, rep, "finish",
                     state.request.request_id, (state.generated,))
        return StepEvent(
            t_start=t_start,
            t_end=self.clock,
            kind=kind,
            n_prefill_rows=n_prefill_rows,
            n_decode_rows=n_decode_rows,
            admitted=admitted_ids,
            finished=finished_ids,
            preempted=preempted,
            handoff_ready=handoff_ids,
        )

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServingResult:
        """Serve ``requests`` to completion; responses keep input order.

        A prefill-role engine can only ``run`` requests that *finish* in
        the prefill pool (``max_new_tokens == 1``); anything larger
        parks for KV export mid-flight and must be driven through
        ``step()``/``export_kv()`` — normally by a disaggregated
        :class:`~repro.serve.ServingCluster` — so asking ``run`` to
        drain it is rejected up front rather than losing the request.
        """
        if self.role == "prefill":
            stranded = [r.request_id for r in requests if r.max_new_tokens > 1]
            if stranded:
                raise ValueError(
                    f"prefill-role engines park multi-token requests "
                    f"{stranded} for export_kv(); drive them with "
                    "step()/export_kv() (or a disaggregated ServingCluster) "
                    "instead of run()"
                )
        self.begin_run()
        if not requests:
            return ServingResult([], StageTimes(0.0, 0.0), 0.0)
        try:
            for request in arrival_order(requests):
                self.submit(request)
            while self.has_work():
                self.step()
        finally:
            self.abort()
        return self.collect(requests)

    def collect(self, requests: list[Request]) -> ServingResult:
        """Build the :class:`ServingResult` for a completed request set.

        ``requests`` defines the response order (input order); every
        request must have finished. Used by :meth:`run` and by the
        cluster event loop after draining a replica.
        """
        return self.collect_ids([r.request_id for r in requests])

    def collect_ids(self, request_ids: list[str]) -> ServingResult:
        """:meth:`collect` by request id — no ``Request`` objects needed.

        The sharded cluster runner uses this: shard plans carry only the
        id partition, and rebuilding ``Request`` objects just to look up
        their ids again would double a million-request merge's work.
        """
        if not request_ids:
            return ServingResult([], StageTimes(0.0, 0.0), 0.0)
        responses = [self.finished[rid] for rid in request_ids]
        return ServingResult(
            responses=responses,
            stages=StageTimes(prefill_s=self._prefill_s, decode_s=self._decode_s),
            makespan_s=self.clock,
            n_prefill_steps=self._n_prefill,
            n_decode_steps=self._n_decode,
            n_mixed_steps=self._n_mixed,
            preemptions=self._preemptions,
            peak_running=self._peak_running,
            kv=self.kv_cache.stats(),
        )

    # ------------------------------------------------------------------
    def admit_arrived(self) -> list[_Active]:
        """Admit every waiting request that has arrived and fits the cache.

        The scheduler-facing admission helper (commits KV allocations).
        Head-of-line semantics: admission stops at the first request the
        paged allocator rejects, so late arrivals never starve the head.
        Admitted states join ``running`` immediately — an exception later
        in the step cannot strand their KV pages (``abort`` frees them).
        """
        admitted: list[_Active] = []
        while self._waiting and len(self._running) < self.max_batch:
            nxt = self._waiting[0]
            if nxt.queue_key[0] != 0 and nxt.ready_s > self.clock:
                break
            # Pure capacity probe first: admission polls every scheduler
            # iteration, and a blocked head must not inflate the
            # allocator's failed_allocations counter each decode step.
            if not self.kv_cache.can_allocate(
                nxt.ctx, nxt.request.prefix_id, nxt.request.prefix_len
            ):
                break
            cached = self.kv_cache.try_allocate(
                nxt.request.request_id,
                nxt.ctx,
                prefix_id=nxt.request.prefix_id,
                prefix_len=nxt.request.prefix_len,
            )
            if cached is None:  # pragma: no cover - can_allocate said yes
                break
            nxt.cached = cached
            nxt.prefilled = 0
            nxt.admit_ctx = nxt.ctx
            if nxt.imported:
                # Migrated KV: what crossed the link (plus any prefix
                # cached here right now) is already materialized, so those
                # rows are never recomputed. Tokens the sender *discounted*
                # against a prefix that has since been evicted are missing
                # on this replica — they stay as prefill rows and are
                # recomputed locally before decoding resumes.
                missing = max(
                    0, nxt.admit_ctx - nxt.cached - nxt.transfer_tokens
                )
                nxt.prefilled = max(0, nxt.prefill_tokens_needed - missing)
            nxt.order = self._admit_seq
            self._admit_seq += 1
            self._waiting.pop(0)
            self._running.append(nxt)
            admitted.append(nxt)
        if admitted:
            self._peak_running = max(self._peak_running, len(self._running))
            if self.tracer is not None:
                for state in admitted:
                    self.tracer.emit(
                        self.clock, self.trace_replica, "admit",
                        state.request.request_id,
                        (state.cached, state.admit_ctx),
                    )
        return admitted

    def _preempt_overflow(self, plan: StepPlan) -> int:
        """Evict newest-admitted requests if the next decode would overflow.

        Evicted victims leave ``running`` (and the step plan), lose their
        KV pages — shared prefix pages stay cached for siblings via the
        allocator's refcounts — and re-enter the queue head for
        recomputation (re-admission is a prefix *hit* when the prefix
        pages survived).
        """
        # Fast path: one free page per decode row is the worst case
        # `append_blocks_needed` can report, so when that many pages are
        # already free the loop below would break on its first iteration
        # with no side effects — skip it (this is the common case; the
        # slow path only runs when the cache is genuinely near-full).
        if self.kv_cache.free_blocks >= len(plan.decode):
            return 0
        evicted = 0
        while len(self._running) > 1 and plan.decode:
            needed = self.kv_cache.append_blocks_needed(
                s.request.request_id for s in plan.decode
            )
            if self.kv_cache.ensure_free(needed):
                break
            victim = max(self._running, key=lambda s: s.order)
            self._running.remove(victim)
            if victim in plan.decode:
                plan.decode.remove(victim)
            plan.prefill = [(s, rows) for s, rows in plan.prefill if s is not victim]
            self.kv_cache.free(victim.request.request_id)
            victim.preemptions += 1
            victim.cached = 0
            victim.prefilled = 0
            # An imported victim's migrated pages are gone; re-admission
            # recomputes the full context locally (the transfer is not
            # repeated — the prompt travels with the request metadata).
            victim.imported = False
            self._evict_tick += 1
            victim.queue_key = (0, -self._evict_tick, 0)
            insort(self._waiting, victim)  # queue head: recompute first
            evicted += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock, self.trace_replica, "preempt",
                    victim.request.request_id,
                )
        self._preemptions += evicted
        return evicted

    # ------------------------------------------------------------------
    def _next_token(self, state: _Active) -> int:
        """Greedy next token from the real model (numeric mode)."""
        seq = np.concatenate(
            [np.asarray(state.request.prompt_tokens), np.array(state.tokens, dtype=int)]
        ) if state.tokens else np.asarray(state.request.prompt_tokens)
        window = seq[-self.model.config.max_seq :]
        from ..nn.tensor import no_grad

        with no_grad():
            logits = self.model(window[None, :], self._qc).data[0, -1]
        return int(np.argmax(logits))

    def _response(self, state: _Active, clock: float) -> Response:
        return Response(
            request_id=state.request.request_id,
            prompt_len=state.request.prompt_len,
            output_len=state.generated,
            arrival_s=state.request.arrival_s,
            first_token_s=state.first_token_s,
            finish_s=clock,
            preemptions=state.preemptions,
            tokens=np.array(state.tokens, dtype=int) if state.tokens else None,
        )
