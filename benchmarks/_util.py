"""Shared helpers for the table/figure regeneration benchmarks.

Every benchmark computes its table once (``benchmark.pedantic`` with a
single round — these are experiment harnesses, not microbenchmarks),
prints the rows the paper reports, and writes a JSON artifact under
``benchmarks/results/`` that EXPERIMENTS.md is assembled from.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as f:
        json.dump(payload, f, indent=2, default=str)


def print_table(title: str, rows: dict, fmt: str = "{:.3f}") -> None:
    print(f"\n=== {title} ===")
    for key, value in rows.items():
        if isinstance(value, dict):
            cells = "  ".join(f"{k}={fmt.format(v)}" for k, v in value.items())
            print(f"{str(key):>18s}: {cells}")
        else:
            print(f"{str(key):>18s}: {fmt.format(value)}")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
