"""Profile the fleet event loop and dump the hot-path table.

Usage::

    PYTHONPATH=src python benchmarks/profile_event_loop.py [N] [OUT]

Runs the benchmark fleet configuration (llama-2-13b, mxfp4+, 4 replicas,
round-robin, Poisson 200 req/s at seed 0) over an ``N``-request trace
(default 10 000) under :mod:`cProfile` and writes the top functions by
cumulative time to ``OUT`` (default
``benchmarks/results/profile_event_loop.txt``). The CI
``event-loop-scale`` job uploads the file as an artifact, so a perf
regression's culprit is one download away instead of a bisect.

The profile is diagnostic output, not a committed artifact — wall-clock
numbers are machine-dependent.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

from repro.models.zoo import ARCHS
from repro.serve import ServingCluster, make_workload


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 10_000
    out = Path(
        argv[2]
        if len(argv) > 2
        else Path(__file__).parent / "results" / "profile_event_loop.txt"
    )
    cluster = ServingCluster(
        ARCHS["llama-2-13b"],
        "mxfp4+",
        n_replicas=4,
        router="round-robin",
        scheduler="prefill-first",
        kv_token_budget=262_144,
    )
    reqs = make_workload(n, seed=0, arrival="poisson", rate_rps=200.0)

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    fleet = cluster.run(reqs)
    profiler.disable()
    elapsed = time.perf_counter() - t0

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(40)
    probes = fleet.summary(include_probes=True)["probes"]
    cache = probes["step_time_cache"]
    header = (
        f"event loop profile: n={n} requests, {elapsed:.2f}s wall "
        f"(profiled), {len(fleet.responses)} responses, "
        f"{fleet.total_tokens} tokens\n"
        f"probes: sorts_performed={probes['sorts_performed']}, "
        f"step_time_cache hits={cache['hits']} misses={cache['misses']} "
        f"size={cache['size']}/{cache['maxsize']}\n\n"
    )
    out.parent.mkdir(exist_ok=True)
    out.write_text(header + buf.getvalue())
    print(header.strip())
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
