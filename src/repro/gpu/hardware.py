"""Functional + cycle model of the MX+ Tensor-Core integration (Section 6).

Models the three added components of Figure 9:

* **BM Detector** — compares the streaming lane index against the block's
  BM index and raises the BMA/BMB select signals.
* **Forward & Swap Unit (FSU)** — when a BM lane is selected, forwards the
  BM value and its matching operand to the BCU and injects zero into the
  dot-product pipeline, so the DPE adder tree never sees extended-mantissa
  values.
* **BM Compute Unit (BCU)** — computes
  ``(A_BM x B_NBM) + (B_BM x A_NBM)``, applying the MX++ shared-exponent
  deltas as left shifts, with the swap rule collapsing the two terms into
  one when both BM indices coincide (Section 6.2). Its output is added to
  the adder-tree result before normalization.

The functional model is value-faithful: ``dpe_block_dot`` returns exactly
the dot product of the decoded MX+/MX blocks (tests verify this against
numpy on the decoded tensors). The cycle model charges the DPE 2 cycles
per FP4 block pair (16 FP4 input pairs per cycle; FP6/FP8 take 4) and the
BCU overlaps the adder tree completely, so MX+ adds no throughput cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.mx import MXEncoded, MXFormat
from ..core.mxplus import MXPlusEncoded, MXPlusFormat
from ..core.scale import ZERO_BLOCK_SENTINEL

__all__ = ["LaneView", "lane_view", "dpe_block_dot", "DPECycleModel", "tensor_core_matmul"]


@dataclass
class LaneView:
    """Per-lane decoded view of one encoded block at the DPE input."""

    scaled: np.ndarray  # element values in the scaled domain
    lane_scale: np.ndarray  # per-lane effective scale (BM vs NBM in MX++)
    bm_lane: int | None  # None for plain MX blocks
    zero_block: bool

    def values(self) -> np.ndarray:
        return self.scaled * self.lane_scale


def lane_view(enc, flat_index: int) -> LaneView:
    """Flattened per-block lane view of an MX or MX+ encoding."""
    k = enc.elem_values.shape[-1]
    scaled = enc.elem_values.reshape(-1, k)[flat_index]
    shared = int(enc.shared_exp.reshape(-1)[flat_index])
    if shared == ZERO_BLOCK_SENTINEL:
        return LaneView(np.zeros(k), np.ones(k), None, True)

    if isinstance(enc, MXPlusEncoded):
        bm = int(enc.bm_index.reshape(-1)[flat_index])
        nbm_exp = int(enc.nbm_shared_exp.reshape(-1)[flat_index])
        scales = np.full(k, 2.0**nbm_exp)
        scales[bm] = 2.0**shared
        return LaneView(scaled, scales, bm, False)
    return LaneView(scaled, np.full(k, 2.0**shared), None, False)


def dpe_block_dot(view_a: LaneView, view_b: LaneView) -> tuple[float, float]:
    """One DPE pass over a block pair.

    Returns ``(adder_tree, bcu)`` whose sum is the exact block-pair dot
    product: the FSU zeroes BM lanes out of the tree and the BCU handles
    them — including the swap rule when both BM indices coincide.
    """
    if view_a.zero_block or view_b.zero_block:
        return 0.0, 0.0

    va = view_a.values()
    vb = view_b.values()
    bm_lanes = {lane for lane in (view_a.bm_lane, view_b.bm_lane) if lane is not None}

    bcu = 0.0
    tree_a = va.copy()
    tree_b = vb.copy()
    for lane in bm_lanes:
        bcu += va[lane] * vb[lane]
        tree_a[lane] = 0.0  # FSU forwards the pair and injects zero
    return float(np.dot(tree_a, tree_b)), bcu


@dataclass
class DPECycleModel:
    """Cycle accounting for one DPE (Section 6.2 configuration)."""

    fp4_pairs_per_cycle: int = 16

    def block_pair_cycles(self, elem_bits: int, block_size: int = 32) -> int:
        if elem_bits <= 4:
            return block_size // self.fp4_pairs_per_cycle  # 2 cycles
        # FP8 sustains half the FP4 rate; FP6 matches FP8 (Section 6.2).
        return 2 * (block_size // self.fp4_pairs_per_cycle)  # 4 cycles

    def mma_cycles(self, elem_bits: int) -> int:
        """Cycles per m16n8k64 MMA (16 at FP4, per RTX 5090 benchmarking).

        MX+ adds no cycles here: the BCU completes before the adder tree,
        and the extra BM-index register read rides the operand-fetch
        pipeline. Figure 12's ~0.38% comes from instruction-issue effects
        modelled in :mod:`repro.gpu.kernels`.
        """
        return 16 if elem_bits <= 4 else 32


def tensor_core_matmul(
    x: np.ndarray, w: np.ndarray, fmt_x: MXPlusFormat | MXFormat, fmt_w: MXFormat | MXPlusFormat
) -> tuple[np.ndarray, int]:
    """Full matmul through the extended-DPE functional model.

    ``x``: (M, K) activations; ``w``: (K, N) weights. K must be a multiple
    of the block size. Returns ``(result, total_dpe_cycles)``. Slow
    (per-block loop) — intended for verification, not performance.
    """
    block = fmt_x.block_size
    if x.shape[1] % block or w.shape[0] % block:
        raise ValueError("K must be a multiple of the block size")
    enc_x = fmt_x.encode(x, axis=-1)  # (M, nblocks, k)
    enc_w = fmt_w.encode(w, axis=0)  # blocked along K -> (N, nblocks, k)

    m, k = x.shape
    n = w.shape[1]
    nblocks = k // block
    out = np.zeros((m, n))
    cycles = 0
    cycle_model = DPECycleModel()
    per_pair = cycle_model.block_pair_cycles(fmt_x.elem.bits)

    views_x = [lane_view(enc_x, i) for i in range(m * nblocks)]
    views_w = [lane_view(enc_w, i) for i in range(n * nblocks)]
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for b in range(nblocks):
                tree, bcu = dpe_block_dot(
                    views_x[i * nblocks + b], views_w[j * nblocks + b]
                )
                acc += tree + bcu
                cycles += per_pair
            out[i, j] = acc
    return out, cycles
