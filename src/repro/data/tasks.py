"""Synthetic multiple-choice tasks standing in for lm-evaluation-harness.

Each task is a set of questions: a prompt sampled from the corpus chain,
one *true* continuation sampled from the same chain, and distractor
continuations sampled from a corrupted chain. A model answers by ranking
candidate continuations by total log-likelihood — exactly how the harness
scores ARC/Lambada-style tasks — so quantization-induced likelihood
distortion lowers accuracy just as in the paper's Table 2.

Six task profiles mirror the paper's six columns. Difficulty is controlled
by the distractor temperature (how plausible wrong answers look) and the
continuation length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .corpus import Corpus

__all__ = ["TaskSpec", "MCQTask", "make_task", "TASKS"]


@dataclass(frozen=True)
class TaskSpec:
    name: str
    n_questions: int = 96
    prompt_len: int = 24
    cont_len: int = 6
    n_choices: int = 4
    distractor_temp: float = 2.0  # higher = more plausible distractors
    seed: int = 7


@dataclass
class MCQTask:
    spec: TaskSpec
    prompts: np.ndarray  # (N, prompt_len)
    choices: np.ndarray  # (N, n_choices, cont_len)
    answers: np.ndarray  # (N,) index of the true continuation

    @property
    def n_questions(self) -> int:
        return len(self.answers)

    def chance_accuracy(self) -> float:
        return 1.0 / self.spec.n_choices


def _walk(p: np.ndarray, start: int, n: int, rng: np.random.Generator) -> np.ndarray:
    cdf = np.cumsum(p, axis=1)
    out = np.empty(n, dtype=np.int64)
    state = start
    for i in range(n):
        state = int(np.searchsorted(cdf[state], rng.random()))
        out[i] = state
    return out


def _temper(p: np.ndarray, temp: float) -> np.ndarray:
    """Flatten a transition matrix toward uniform (temp > 1 = flatter)."""
    q = p ** (1.0 / temp)
    return q / q.sum(axis=1, keepdims=True)


def make_task(corpus: Corpus, spec: TaskSpec) -> MCQTask:
    rng = np.random.default_rng(spec.seed)
    p = corpus.transitions
    distract_p = _temper(p, spec.distractor_temp)

    prompts = np.empty((spec.n_questions, spec.prompt_len), dtype=np.int64)
    choices = np.empty((spec.n_questions, spec.n_choices, spec.cont_len), dtype=np.int64)
    answers = rng.integers(0, spec.n_choices, size=spec.n_questions)

    max_start = len(corpus.train) - spec.prompt_len - 1
    for i in range(spec.n_questions):
        s = int(rng.integers(0, max_start))
        prompt = corpus.train[s : s + spec.prompt_len]
        prompts[i] = prompt
        last = int(prompt[-1])
        for c in range(spec.n_choices):
            source = p if c == answers[i] else distract_p
            choices[i, c] = _walk(source, last, spec.cont_len, rng)
    return MCQTask(spec=spec, prompts=prompts, choices=choices, answers=answers)


#: The six task profiles mirroring Table 2's columns.
TASKS: dict[str, TaskSpec] = {
    "arc_easy-sim": TaskSpec("arc_easy-sim", distractor_temp=4.0, cont_len=6, seed=11),
    "arc_challenge-sim": TaskSpec(
        "arc_challenge-sim", distractor_temp=1.6, cont_len=6, seed=12
    ),
    "lambada-sim": TaskSpec("lambada-sim", distractor_temp=2.5, cont_len=1, seed=13),
    "college_cs-sim": TaskSpec(
        "college_cs-sim", distractor_temp=1.4, cont_len=8, n_questions=64, seed=14
    ),
    "intl_law-sim": TaskSpec(
        "intl_law-sim", distractor_temp=1.8, cont_len=8, n_questions=64, seed=15
    ),
    "jurisprudence-sim": TaskSpec(
        "jurisprudence-sim", distractor_temp=1.5, cont_len=10, n_questions=64, seed=16
    ),
}
