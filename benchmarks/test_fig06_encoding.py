"""Figure 6: binary encodings of the sampled block under MXFP4 vs MXFP4+."""

import numpy as np
from _util import run_once, save_result

from repro.core import MXFP4, MXFP4Plus
from repro.core.layout import pack_mx, pack_mxplus, unpack_bits

FIG4_UPPER = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])


def test_fig06(benchmark):
    def run():
        fmt4, fmtp = MXFP4(), MXFP4Plus()
        enc4 = fmt4.encode(FIG4_UPPER)
        encp = fmtp.encode(FIG4_UPPER)
        p4 = pack_mx(fmt4, enc4)
        pp = pack_mxplus(fmtp, encp)
        codes4 = unpack_bits(p4.elements, 4, 32)[:6]
        codesp = unpack_bits(pp.elements, 4, 32)[:6]
        return {
            "mxfp4_dequant": fmt4(FIG4_UPPER).tolist(),
            "mxfp4+_dequant": fmtp(FIG4_UPPER).tolist(),
            "mxfp4_codes": [format(c, "04b") for c in codes4],
            "mxfp4+_codes": [format(c, "04b") for c in codesp],
            "shared_exp": int(enc4.shared_exp.ravel()[0]),
            "bm_index": int(encp.bm_index.ravel()[0]),
        }

    out = run_once(benchmark, run)
    save_result("fig06_encoding", out)
    print(out)

    assert out["shared_exp"] == 1  # shared scale 2^1, as in the figure
    assert out["mxfp4_dequant"][4] == -8.0
    assert out["mxfp4+_dequant"][4] == -10.0
    # BM code: S=1, extended mantissa 010 (1.010b * 2^2 * 2 = 10).
    assert out["mxfp4+_codes"][4] == "1010"
    # NBM codes identical between MX and MX+.
    assert out["mxfp4_codes"][:4] == out["mxfp4+_codes"][:4]
