"""Unified serving API: recipes, paged KV, workloads, engine, cluster.

``QuantRecipe`` is the canonical configuration object for the whole repo
(numeric accuracy path and GPU timing path alike). On top of it sit the
serving layers added across PRs 1-2:

* :class:`ServingEngine` — one replica: continuous batching with
  per-request TTFT/TPOT accounting over a paged KV cache;
* :class:`PagedKVCache` — block-granular KV allocation with per-recipe
  byte accounting and shared-prefix caching;
* :mod:`repro.serve.workload` — seeded synthetic workloads (Poisson /
  bursty arrivals, length distributions, shared-prefix chat) and JSONL
  trace replay;
* :class:`ServingCluster` — N replicas behind a pluggable router
  (round-robin / least-KV-load / prefix-affinity) with fleet metrics
  including goodput under SLO.

Quickstart::

    from repro.models.zoo import ARCHS
    from repro.serve import ServingCluster, chat_workload

    cluster = ServingCluster(
        ARCHS["llama-2-13b"], "mxfp4+", n_replicas=4,
        router="prefix-affinity", page_budget_bytes=8 << 30,
    )
    fleet = cluster.run(chat_workload(64, n_prefixes=4, prefix_len=512, seed=0))
    print(fleet.summary(ttft_slo_s=2.0, tpot_slo_s=0.05))
"""

from .recipe import QuantRecipe, available_recipes, get_recipe, register_recipe
from .kvcache import (
    INTERCONNECTS,
    KVTransfer,
    PagedKVCache,
    format_kv_bits,
    get_interconnect,
    kv_token_bytes,
)
from .engine import (
    KVHandoff,
    Request,
    Response,
    ServingEngine,
    ServingResult,
    StepEvent,
    arrival_order,
    validate_batch,
)
from .sched import (
    ChunkedPrefillScheduler,
    DecodePriorityScheduler,
    PrefillFirstScheduler,
    SCHEDULERS,
    Scheduler,
    StepPlan,
    available_schedulers,
    get_scheduler,
)
from .workload import (
    LengthDist,
    bursty_arrivals,
    chat_workload,
    iter_workload,
    load_trace,
    long_prompt_workload,
    make_workload,
    poisson_arrivals,
    save_trace,
    stream_trace,
)
from .cluster import (
    AutoscalePolicy,
    FleetResult,
    FreeKVAtArrivalRouter,
    LeastKVLoadRouter,
    PrefixAffinityRouter,
    QueueDepthRouter,
    ReplicaSnapshot,
    ROUTERS,
    RoundRobinRouter,
    Router,
    ServingCluster,
    available_routers,
    get_router,
)
from .shard import SHARDABLE_ROUTERS, plan_shards, run_sharded

__all__ = [
    "QuantRecipe",
    "register_recipe",
    "get_recipe",
    "available_recipes",
    "PagedKVCache",
    "kv_token_bytes",
    "format_kv_bits",
    "KVTransfer",
    "INTERCONNECTS",
    "get_interconnect",
    "KVHandoff",
    "Request",
    "Response",
    "ServingResult",
    "ServingEngine",
    "StepEvent",
    "validate_batch",
    "arrival_order",
    "Scheduler",
    "StepPlan",
    "PrefillFirstScheduler",
    "ChunkedPrefillScheduler",
    "DecodePriorityScheduler",
    "SCHEDULERS",
    "available_schedulers",
    "get_scheduler",
    "LengthDist",
    "poisson_arrivals",
    "bursty_arrivals",
    "make_workload",
    "iter_workload",
    "chat_workload",
    "long_prompt_workload",
    "save_trace",
    "load_trace",
    "stream_trace",
    "Router",
    "RoundRobinRouter",
    "LeastKVLoadRouter",
    "PrefixAffinityRouter",
    "QueueDepthRouter",
    "FreeKVAtArrivalRouter",
    "ReplicaSnapshot",
    "ROUTERS",
    "available_routers",
    "get_router",
    "AutoscalePolicy",
    "FleetResult",
    "ServingCluster",
    "SHARDABLE_ROUTERS",
    "plan_shards",
    "run_sharded",
]
