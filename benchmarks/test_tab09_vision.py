"""Table 9: vision models (DeiT-sim / ResNet-sim) — top-1 accuracy under
direct-cast MXFP4 vs MXFP4+ and after QA fine-tuning."""

from _util import print_table, run_once, save_result

from repro.data.images import make_images
from repro.nn.quantize import QuantContext
from repro.nn.vision import (
    TinyCNN,
    TinyViT,
    classifier_accuracy,
    qa_finetune,
    train_classifier,
)


def test_tab09(benchmark):
    def run():
        data = make_images(768, 256, noise=0.75)
        out = {}
        for name, factory, steps in [("deit-sim", TinyViT, 80), ("resnet-sim", TinyCNN, 100)]:
            model = train_classifier(factory(seed=0), data, steps=steps)
            row = {
                "fp32": classifier_accuracy(model, data),
                "direct_mxfp4": classifier_accuracy(model, data, QuantContext.named("mxfp4")),
                "direct_mxfp4+": classifier_accuracy(model, data, QuantContext.named("mxfp4+")),
            }
            qa4 = qa_finetune(model, data, QuantContext.named("mxfp4"), steps=40)
            row["qat_mxfp4"] = classifier_accuracy(qa4, data, QuantContext.named("mxfp4"))
            qa4p = qa_finetune(qa4, data, QuantContext.named("mxfp4+"), steps=40)
            row["qat_mxfp4+"] = classifier_accuracy(qa4p, data, QuantContext.named("mxfp4+"))
            out[name] = row
        return out

    table = run_once(benchmark, run)
    save_result("tab09_vision", table)
    print_table("Table 9: vision top-1 accuracy", table, "{:.1f}")

    for name, row in table.items():
        # Direct-cast: MXFP4+ recovers part of the MXFP4 drop.
        assert row["direct_mxfp4+"] >= row["direct_mxfp4"]
        # QA fine-tuning narrows the gap toward full precision.
        assert row["qat_mxfp4"] >= row["direct_mxfp4"]
        assert row["qat_mxfp4+"] >= row["direct_mxfp4"]
