"""Tests for layers, the transformer LM, training, and quantized hooks."""

import numpy as np
import pytest

from repro.nn.bf16 import bf16_round
from repro.nn.layers import CausalSelfAttention, Linear, RMSNorm
from repro.nn.optim import Adam
from repro.nn.quantize import QuantContext
from repro.nn.tensor import Tensor, no_grad
from repro.nn.train import train_lm
from repro.nn.transformer import TransformerConfig, TransformerLM

CFG = TransformerConfig(vocab_size=31, dim=32, n_layers=2, n_heads=4, hidden=48, seed=0)


class TestBF16:
    def test_exact_values_unchanged(self):
        x = np.array([1.0, 0.5, -2.0, 1.5])
        np.testing.assert_array_equal(bf16_round(x), x)

    def test_rounding_to_7_bit_mantissa(self):
        # bf16 stores 7 mantissa bits: ulp at 1.0 is 2^-7. The midpoint
        # 1 + 2^-8 ties to even (1.0); 1 + 2^-7 is representable.
        assert bf16_round(np.array([1 + 2.0**-8]))[0] == 1.0
        assert bf16_round(np.array([1 + 2.0**-7]))[0] == 1 + 2.0**-7

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000)
        q = bf16_round(x)
        assert np.max(np.abs(q - x) / np.abs(x)) <= 2.0**-8 + 1e-12


class TestLayers:
    def test_linear_shapes(self):
        rng = np.random.default_rng(0)
        lin = Linear(rng, 8, 3, bias=True)
        out = lin(Tensor(np.ones((5, 8))))
        assert out.shape == (5, 3)

    def test_linear_permutation_invariance(self):
        rng = np.random.default_rng(1)
        lin = Linear(rng, 8, 3)
        x = Tensor(rng.standard_normal((4, 8)))
        perm = rng.permutation(8)
        np.testing.assert_allclose(lin(x).data, lin(x, perm=perm).data, atol=1e-12)

    def test_rmsnorm_unit_rms(self):
        norm = RMSNorm(16)
        x = Tensor(np.random.default_rng(2).standard_normal((4, 16)) * 10)
        out = norm(x).data
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_rmsnorm_fixed_scale(self):
        gains = np.ones(16)
        gains[3] = 50.0
        norm = RMSNorm(16, fixed_scale=gains)
        x = Tensor(np.random.default_rng(3).standard_normal((8, 16)))
        out = norm(x).data
        assert np.mean(np.abs(out[:, 3])) > 10 * np.mean(np.abs(out[:, 4]))

    def test_attention_causality(self):
        rng = np.random.default_rng(4)
        attn = CausalSelfAttention(rng, 16, 4)
        x1 = rng.standard_normal((1, 6, 16))
        x2 = x1.copy()
        x2[0, 4, :] += 10.0  # perturb a late position
        o1 = attn(Tensor(x1)).data
        o2 = attn(Tensor(x2)).data
        np.testing.assert_allclose(o1[0, :4], o2[0, :4], atol=1e-10)
        assert not np.allclose(o1[0, 4:], o2[0, 4:])


class TestTransformer:
    def test_forward_shape(self):
        model = TransformerLM(CFG)
        logits = model(np.zeros((2, 10), dtype=int))
        assert logits.shape == (2, 10, CFG.vocab_size)

    def test_concentrated_pe_creates_outliers(self):
        cfg = TransformerConfig(
            vocab_size=31, dim=32, n_layers=1, n_heads=4, hidden=48,
            pe_channels=((4, 5.0, "sin"), (5, 5.0, "cos")), pe_scale=10.0,
        )
        model = TransformerLM(cfg)
        with no_grad():
            tokens = np.arange(16, dtype=int)[None, :]
            x = model.embed(tokens) + model._positional(16)
            acts = model.blocks[0].attn_norm(x).data
        pe_mag = np.abs(acts[..., 4:6]).mean()
        other_mag = np.abs(acts[..., 8:]).mean()
        assert pe_mag > 5 * other_mag

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(5)
        corpus = rng.integers(0, CFG.vocab_size, size=4000)
        # learnable structure: token i is followed by (i + 1) % V mostly
        corpus = np.cumsum(np.ones_like(corpus)) % CFG.vocab_size
        model = TransformerLM(CFG)
        result = train_lm(model, corpus.astype(int), steps=60, batch_size=8, seq_len=16)
        assert result.losses[-1] < result.losses[0] * 0.75

    def test_perplexity_baseline_close_to_fp(self):
        model = TransformerLM(CFG)
        tokens = np.random.default_rng(6).integers(0, CFG.vocab_size, (2, 33))
        fp = model.perplexity(tokens, None)
        bf = model.perplexity(tokens, QuantContext())
        assert bf == pytest.approx(fp, rel=0.02)

    def test_quantized_worse_than_baseline(self):
        cfg = TransformerConfig(
            vocab_size=31, dim=32, n_layers=1, n_heads=4, hidden=48,
            pe_channels=((4, 5.0, "sin"), (5, 5.0, "cos")), pe_scale=10.0,
        )
        model = TransformerLM(cfg)
        tokens = np.random.default_rng(7).integers(0, 31, (2, 33))
        base = model.perplexity(tokens, QuantContext())
        q4 = model.perplexity(tokens, QuantContext.named("mxfp4"))
        assert q4 > base

    def test_generate_deterministic(self):
        model = TransformerLM(CFG)
        prefix = np.array([1, 2, 3])
        a = model.generate(prefix, 5)
        b = model.generate(prefix, 5)
        np.testing.assert_array_equal(a, b)

    def test_state_dict_roundtrip(self):
        m1 = TransformerLM(CFG)
        m2 = TransformerLM(CFG)
        train_ref = np.random.default_rng(8).integers(0, 31, 2000)
        train_lm(m1, train_ref, steps=3, batch_size=4, seq_len=16)
        m2.load_state_dict(m1.state_dict())
        tokens = np.random.default_rng(9).integers(0, 31, (1, 17))
        np.testing.assert_allclose(m1(tokens).data, m2(tokens).data)

    def test_lm_head_excluded_when_flagged(self):
        model = TransformerLM(CFG)
        tokens = np.random.default_rng(10).integers(0, 31, (1, 17))
        qc_with = QuantContext.named("mxfp4")
        qc_without = qc_with.with_(quantize_lm_head=False)
        a = model(tokens, qc_with).data
        b = model(tokens, qc_without).data
        assert not np.allclose(a, b)


class TestQuantContext:
    def test_named_baseline(self):
        qc = QuantContext.named("baseline")
        assert qc.act is None and qc.weight is None

    def test_named_format(self):
        qc = QuantContext.named("mxfp4+")
        assert qc.act.name == "mxfp4+"
        assert qc.weight.name == "mxfp4+"

    def test_named_a_variant(self):
        qc = QuantContext.named("a-mxfp4+")
        assert qc.act.name == "mxfp4+"
        assert qc.weight.name == "mxfp4"

    def test_named_explicit_mix(self):
        qc = QuantContext.named("a:bf16,w:mxfp4")
        assert qc.act is None
        assert qc.weight.name == "mxfp4"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            QuantContext.named("not-a-format")

    def test_kv_defaults_to_act(self):
        qc = QuantContext.named("mxfp4")
        x = np.random.default_rng(11).standard_normal((4, 64))
        np.testing.assert_allclose(qc.quantize_kv(x), qc.quantize_act(x))


class TestOptim:
    def test_adam_minimizes_quadratic(self):
        t = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([t], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (t * t).sum().backward()
            opt.step()
        np.testing.assert_allclose(t.data, 0.0, atol=1e-2)
