"""ANT (Guo et al., MICRO'22) — adaptive numerical data types.

ANT picks, per tensor (original) or per group of 32 (the paper's MX-ANT
variant), the 4-bit data type that minimizes quantization MSE among
integer (uniform), float (E2M1-like), power-of-two, and "flint" (a
float-int hybrid with denser codes near the max) — all with a
floating-point scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocks import from_blocks, to_blocks
from ..core.elem import E2M1
from .base import SchemeContext

__all__ = ["ANTContext", "CANDIDATE_GRIDS", "quantize_adaptive"]


def _grid_int4() -> np.ndarray:
    return np.arange(0, 8, dtype=np.float64) / 7.0


def _grid_float4() -> np.ndarray:
    return E2M1.representable_values() / E2M1.max_normal


def _grid_pot4() -> np.ndarray:
    # power-of-two codes: 0 plus 2^-6 .. 2^0
    return np.concatenate([[0.0], np.exp2(np.arange(-6, 1, dtype=np.float64))])


def _grid_flint4() -> np.ndarray:
    # float-int hybrid: exponent codes for small values, integer spacing
    # near the top — ANT's flint intuition in 4 bits.
    return np.sort(
        np.unique(
            np.concatenate(
                [[0.0], np.exp2(np.arange(-4, 0, dtype=np.float64)), [0.625, 0.75, 0.875, 1.0]]
            )
        )
    )


CANDIDATE_GRIDS: dict[str, np.ndarray] = {
    "int4": _grid_int4(),
    "float4": _grid_float4(),
    "pot4": _grid_pot4(),
    "flint4": _grid_flint4(),
}


def _snap(x: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Nearest-value projection of |x| in [0, 1] onto a normalized grid."""
    idx = np.searchsorted(grid, np.abs(x))
    idx = np.clip(idx, 1, len(grid) - 1)
    lo = grid[idx - 1]
    hi = grid[idx]
    best = np.where(np.abs(x) - lo <= hi - np.abs(x), lo, hi)
    return np.sign(x) * best


def quantize_adaptive(x: np.ndarray, group: int, axis: int = -1) -> np.ndarray:
    """Adaptive-type fake quantization: per group, best grid by MSE."""
    blocked = to_blocks(x, group, axis)
    data = blocked.data
    amax = np.max(np.abs(data), axis=-1, keepdims=True)
    safe = np.where(amax == 0, 1.0, amax)
    scaled = data / safe

    best = None
    best_err = None
    for grid in CANDIDATE_GRIDS.values():
        q = _snap(scaled, grid)
        err = np.sum((scaled - q) ** 2, axis=-1, keepdims=True)
        if best is None:
            best, best_err = q, err
        else:
            take = err < best_err
            best = np.where(take, q, best)
            best_err = np.where(take, err, best_err)
    out = np.where(amax == 0, 0.0, best * safe)
    return from_blocks(blocked, out)


@dataclass
class ANTContext(SchemeContext):
    group: int = -1  # per-tensor (original ANT); 32 for MX-ANT
    name: str = "ant"

    def quantize_matmul_pair(self, x: np.ndarray, w: np.ndarray):
        x = self._base(np.asarray(x, dtype=np.float64))
        w = self._base(np.asarray(w, dtype=np.float64))
        gx = x.shape[-1] if self.group == -1 else self.group
        gw = w.shape[0] if self.group == -1 else self.group
        return (
            quantize_adaptive(x, gx, axis=-1),
            quantize_adaptive(w, gw, axis=0),
        )
