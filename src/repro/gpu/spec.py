"""GPU hardware specifications for the performance substrate.

Calibrated to the datapoints the paper reports for the NVIDIA RTX 5090:
one FP4 ``mma.m16n8k64`` retires every 16 cycles per Tensor Core, FP8
sustains half the FP4 throughput and FP6 matches FP8, and sparse MMA runs
at twice the dense rate (Section 5.2/6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

__all__ = ["GPUSpec", "RTX5090", "RTXA6000", "FORMAT_BITS", "format_storage_bits"]

#: storage bits per element for traffic accounting (incl. sidebands)
FORMAT_BITS: dict[str, float] = {
    "bf16": 16.0,
    "fp16": 16.0,
    "mxfp8": 8.25,
    "mxfp8+": 8.5,
    "mxfp6": 6.25,
    "mxfp6+": 6.5,
    "mxfp4": 4.25,
    "mxfp4+": 4.5,
    "mxfp4++": 4.5,
    "mxfp4-k64": 4.125,  # 64-element blocks halve the scale sideband
    "mxfp4+-k64": 4.25,  # scale + BM-index bytes amortized over 64 elems
    "fp32": 32.0,
}


def format_storage_bits(fmt: str, default: float | None = None) -> float:
    """Average storage bits per element for format name ``fmt``.

    Prefers the calibrated :data:`FORMAT_BITS` sideband accounting;
    formats absent from that table (MXINT, NVFP4, re-registered block
    variants, ...) fall back to their encoder's ``bits_per_element()``,
    memoized against the registry version so ``register_format(...,
    overwrite=True)`` is seen. Unknown names raise ``KeyError`` unless
    ``default`` is given. The one lookup both the GEMM traffic model
    (:mod:`repro.gpu.kernels`) and the KV-cache footprint accounting
    (:func:`repro.serve.kvcache.format_kv_bits`) share.
    """
    key = fmt.lower()
    bits = FORMAT_BITS.get(key)
    if bits is not None:
        return bits
    from ..core.registry import registry_version

    try:
        return _registry_storage_bits(key, registry_version())
    except KeyError:
        if default is None:
            raise
        return default


@lru_cache(maxsize=None)
def _registry_storage_bits(key: str, version: int) -> float:
    from ..core.registry import get_format

    return float(get_format(key).bits_per_element())


@dataclass(frozen=True)
class GPUSpec:
    name: str
    num_sms: int
    tensor_cores_per_sm: int
    clock_ghz: float
    mem_bw_gbps: float  # effective DRAM bandwidth, GB/s
    #: MACs per cycle per Tensor Core at FP4 (m16n8k64 / 16 cycles)
    fp4_macs_per_cycle_per_tc: float = 16 * 8 * 64 / 16.0
    #: relative MMA throughput by compute format (FP4 = 1)
    format_throughput: dict = field(
        default_factory=lambda: {
            "mxfp4": 1.0,
            "mxfp4+": 1.0,
            "mxfp4++": 1.0,
            "mxfp4-k64": 1.0,
            "mxfp4+-k64": 1.0,
            "mxfp6": 0.5,
            "mxfp6+": 0.5,
            "mxfp8": 0.5,
            "mxfp8+": 0.5,
            "bf16": 0.25,
            "fp16": 0.25,
        }
    )
    #: whether Tensor Cores consume MX formats natively (Blackwell: yes)
    native_mx: bool = True
    #: relative speed of a sparse MMA vs dense at the same K (2x on NVIDIA)
    sparse_speedup: float = 2.0

    def tc_macs_per_s(self, fmt: str) -> float:
        """Peak Tensor-Core MACs/second for a compute format."""
        rel = self.format_throughput.get(fmt, 0.25)
        return (
            self.num_sms
            * self.tensor_cores_per_sm
            * self.fp4_macs_per_cycle_per_tc
            * rel
            * self.clock_ghz
            * 1e9
        )

    def mem_bytes_per_s(self) -> float:
        return self.mem_bw_gbps * 1e9


#: RTX 5090-like (Blackwell, native MX support) — Section 7.1.
RTX5090 = GPUSpec(
    name="rtx5090",
    num_sms=170,
    tensor_cores_per_sm=4,
    clock_ghz=2.01,
    mem_bw_gbps=1792.0,
    native_mx=True,
)

#: RTX A6000-like (Ampere, no native MX -> conversion before compute).
RTXA6000 = GPUSpec(
    name="rtx-a6000",
    num_sms=84,
    tensor_cores_per_sm=4,
    clock_ghz=1.41,
    mem_bw_gbps=768.0,
    native_mx=False,
    format_throughput={"bf16": 0.25, "fp16": 0.25},
)
