"""Paged KV cache: block-granular allocation with shared-prefix caching.

The flat token budget of the PR-1 engine models KV memory as one counter.
Real serving stacks (vLLM-style paged attention) allocate the KV cache in
fixed-size *blocks* ("pages") of a few tokens each, which (a) bounds
fragmentation, (b) lets common prompt prefixes — system prompts, few-shot
preambles — be stored **once** and shared across requests, and (c) ties
capacity to *bytes*, where the MX+ formats' smaller KV footprint turns
directly into more resident requests.

:class:`PagedKVCache` is that allocator in virtual time: it tracks block
ownership and prefix reference counts, not tensor data. Capacity can be
stated in blocks, tokens, or — via :func:`kv_token_bytes` and
:meth:`PagedKVCache.from_byte_budget` — as a byte budget that is divided
by the recipe's KV bytes/token, so an MXFP4+ cache holds ~3.6x the tokens
of a BF16 cache at an equal budget:

>>> from repro.models.zoo import ARCHS
>>> arch = ARCHS["llama-2-13b"]
>>> bf16 = PagedKVCache.from_byte_budget(1 << 30, arch, "bf16")
>>> mxp = PagedKVCache.from_byte_budget(1 << 30, arch, "mxfp4+")
>>> mxp.capacity_tokens > 3 * bf16.capacity_tokens
True

Allocation and prefix sharing (block_tokens=4, so a 6-token prefix shares
its one *full* block; the tail lives in private blocks):

>>> kv = PagedKVCache(num_blocks=8, block_tokens=4)
>>> kv.try_allocate("a", tokens=8, prefix_id="sys", prefix_len=6)  # miss
0
>>> kv.try_allocate("b", tokens=8, prefix_id="sys", prefix_len=6)  # hit
4
>>> kv.stats()["prefix_hits"], kv.used_blocks  # 1 shared + 1 private each
(1, 3)

A ``block_tokens=1`` cache with no prefixes reproduces the PR-1 flat
budget exactly — that is what :class:`repro.serve.ServingEngine` builds
from its ``kv_token_budget`` argument when no cache is passed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from ..gpu.spec import format_storage_bits
from ..models.zoo import ArchSpec

__all__ = [
    "PagedKVCache",
    "kv_token_bytes",
    "format_kv_bits",
    "KVTransfer",
    "INTERCONNECTS",
    "get_interconnect",
]


def format_kv_bits(fmt: str) -> float:
    """Average storage bits per KV element for format name ``fmt``.

    Delegates to :func:`repro.gpu.spec.format_storage_bits` — the shared
    calibrated-table-then-registry lookup — with unknown names raising
    ``KeyError``.

    >>> format_kv_bits("bf16"), format_kv_bits("mxfp4"), format_kv_bits("mxfp4+")
    (16.0, 4.25, 4.5)
    """
    return format_storage_bits(fmt)


def kv_token_bytes(arch: ArchSpec, recipe_or_fmt) -> float:
    """KV-cache bytes per resident token for one architecture + KV format.

    One token keeps a key and a value vector (``n_kv_heads * head_dim``
    each) per layer; the per-element width comes from the recipe's
    resolved KV format (:attr:`repro.serve.QuantRecipe.kv_format`) or a
    plain format name. For a mixed-precision recipe with ``kv="auto"``
    the cache is stored per layer in that layer's own format (the
    ``QuantRecipe.to_context`` semantics), so the per-token bytes sum
    layer-by-layer over the spread overrides; an explicit ``kv=`` pins
    every layer.

    >>> from repro.models.zoo import ARCHS
    >>> kv_token_bytes(ARCHS["llama-2-13b"], "bf16")
    819200.0
    """
    fmt = getattr(recipe_or_fmt, "kv_format", recipe_or_fmt)
    per_layer_bytes = 2.0 * arch.n_kv_heads * arch.head_dim / 8.0
    overrides = getattr(recipe_or_fmt, "layer_overrides", ())
    if overrides:
        from ..gpu.inference import spread_layer_overrides
        from .recipe import AUTO

        if getattr(recipe_or_fmt, "kv", None) == AUTO:
            spread = spread_layer_overrides(
                tuple(overrides),
                getattr(recipe_or_fmt, "n_layer_groups", 0),
                arch.n_layers,
            )
            return per_layer_bytes * sum(
                format_kv_bits(str(spread.get(i, fmt))) for i in range(arch.n_layers)
            )
    return per_layer_bytes * arch.n_layers * format_kv_bits(str(fmt))


@dataclass(slots=True)
class _Seq:
    """Private allocation state for one resident sequence."""

    tokens: int  # total context tokens (shared prefix included)
    prefix_key: tuple | None  # (prefix_id, shared_tokens) or None
    shared: int = 0  # prefix_key[1] denormalized for the append hot path

    def __post_init__(self) -> None:
        self.shared = self.prefix_key[1] if self.prefix_key else 0

    @property
    def private_tokens(self) -> int:
        return self.tokens - self.shared

    def private_blocks(self, block_tokens: int) -> int:
        return -(-self.private_tokens // block_tokens)


@dataclass(slots=True)
class _Prefix:
    """One cached shared prefix: ``blocks`` pages holding ``tokens`` tokens."""

    tokens: int
    blocks: int
    refs: int = 0
    lru: int = 0  # last-touched tick, for zero-ref eviction order


@dataclass
class KVStats:
    """Cumulative allocator counters (see :meth:`PagedKVCache.stats`)."""

    allocations: int = 0
    failed_allocations: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_tokens_reused: int = 0
    prefix_evictions: int = 0
    peak_used_blocks: int = 0


class PagedKVCache:
    """Block-granular KV allocator with refcounted shared prefixes.

    Parameters
    ----------
    num_blocks:
        Total pages in the cache.
    block_tokens:
        Tokens per page. ``1`` degenerates to a flat token budget (the
        PR-1 engine semantics); real paged-attention kernels use 16-64.
    token_bytes:
        Optional bytes per resident token (see :func:`kv_token_bytes`);
        enables the ``*_bytes`` properties and is recorded by
        :meth:`from_byte_budget`.

    Only *full* blocks of a declared prefix are shared; the remainder of
    the prompt and all generated tokens live in per-sequence private
    blocks. Freeing a sequence decrefs its prefix but keeps the pages
    cached; zero-reference prefixes are evicted LRU-first when an
    allocation would otherwise fail.
    """

    def __init__(
        self,
        num_blocks: int,
        block_tokens: int = 1,
        token_bytes: float | None = None,
    ) -> None:
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.num_blocks = int(num_blocks)
        self.block_tokens = int(block_tokens)
        self.token_bytes = token_bytes
        self._seqs: dict[str, _Seq] = {}
        self._prefixes: dict[tuple, _Prefix] = {}
        self._used_blocks = 0  # maintained incrementally (O(1) accounting)
        self._tick = 0
        self._stats = KVStats()

    # -- constructors --------------------------------------------------
    @classmethod
    def from_token_budget(
        cls, token_budget: int, block_tokens: int = 1, token_bytes: float | None = None
    ) -> "PagedKVCache":
        """A cache holding at most ``token_budget`` tokens.

        Capacity rounds *down* to whole pages (never past the budget);
        a budget smaller than one page is an error.

        >>> PagedKVCache.from_token_budget(1024, block_tokens=16).num_blocks
        64
        >>> PagedKVCache.from_token_budget(1000, block_tokens=16).capacity_tokens
        992
        """
        if token_budget < block_tokens:
            raise ValueError(
                f"token_budget {token_budget} smaller than one "
                f"{block_tokens}-token page"
            )
        return cls(
            num_blocks=token_budget // block_tokens,
            block_tokens=block_tokens,
            token_bytes=token_bytes,
        )

    @classmethod
    def from_byte_budget(
        cls,
        byte_budget: float,
        arch: ArchSpec,
        recipe_or_fmt,
        block_tokens: int = 16,
    ) -> "PagedKVCache":
        """Size the cache by GPU memory: ``byte_budget / page_bytes`` pages.

        This is where a recipe's KV format choice becomes serving
        capacity: fewer bits per element → smaller pages → more pages in
        the same budget → more admissible concurrent requests.
        """
        per_token = kv_token_bytes(arch, recipe_or_fmt)
        page_bytes = per_token * block_tokens
        num_blocks = int(byte_budget // page_bytes)
        if num_blocks < 1:
            raise ValueError(
                f"byte_budget {byte_budget:.0f} smaller than one "
                f"{block_tokens}-token page ({page_bytes:.0f} bytes)"
            )
        return cls(num_blocks, block_tokens, token_bytes=per_token)

    # -- capacity accounting -------------------------------------------
    @property
    def capacity_tokens(self) -> int:
        """Upper bound on resident tokens (pages x tokens/page)."""
        return self.num_blocks * self.block_tokens

    @property
    def used_blocks(self) -> int:
        """Pages held by sequences plus all cached prefixes."""
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        """Pages not held by any sequence or cached prefix."""
        return self.num_blocks - self.used_blocks

    @property
    def free_tokens(self) -> int:
        """Tokens the free pages could hold — the live capacity signal
        the cluster's ``free-kv-at-arrival`` router observes."""
        return self.free_blocks * self.block_tokens

    @property
    def reclaimable_blocks(self) -> int:
        """Pages held by zero-reference cached prefixes (evictable)."""
        return sum(p.blocks for p in self._prefixes.values() if p.refs == 0)

    @property
    def used_tokens(self) -> int:
        """Resident tokens, counting each cached prefix once."""
        private = sum(s.private_tokens for s in self._seqs.values())
        return private + sum(p.tokens for p in self._prefixes.values())

    @property
    def capacity_bytes(self) -> float | None:
        """Byte capacity (``None`` unless built with ``token_bytes``)."""
        if self.token_bytes is None:
            return None
        return self.capacity_tokens * self.token_bytes

    @property
    def used_bytes(self) -> float | None:
        """Bytes of held pages (``None`` unless built with ``token_bytes``)."""
        if self.token_bytes is None:
            return None
        return self.used_blocks * self.block_tokens * self.token_bytes

    def seq_tokens(self, seq_id: str) -> int:
        """Context tokens currently resident for sequence ``seq_id``."""
        return self._seqs[seq_id].tokens

    # -- prefix helpers ------------------------------------------------
    def _prefix_key(self, prefix_id: str | None, prefix_len: int) -> tuple | None:
        """Sharable (id, tokens) key — only full blocks of a prefix shared."""
        if prefix_id is None or prefix_len <= 0:
            return None
        shared = (prefix_len // self.block_tokens) * self.block_tokens
        if shared == 0:
            return None
        return (prefix_id, shared)

    def cached_prefix_tokens(self, prefix_id: str | None, prefix_len: int) -> int:
        """Tokens a new sequence with this prefix would reuse (0 on miss)."""
        key = self._prefix_key(prefix_id, prefix_len)
        if key is not None and key in self._prefixes:
            return key[1]
        return 0

    def _evict_prefixes(self, blocks_needed: int, protect: tuple | None = None) -> None:
        """Drop zero-ref prefixes, LRU first, until ``blocks_needed`` free.

        ``protect`` shields one key (the prefix the current allocation is
        about to hit) from eviction.
        """
        if self.free_blocks >= blocks_needed:
            return
        idle = sorted(
            (k for k, p in self._prefixes.items() if p.refs == 0 and k != protect),
            key=lambda k: self._prefixes[k].lru,
        )
        for key in idle:
            if self.free_blocks >= blocks_needed:
                break
            self._used_blocks -= self._prefixes.pop(key).blocks
            self._stats.prefix_evictions += 1

    # -- allocation ----------------------------------------------------
    def blocks_needed(
        self, tokens: int, prefix_id: str | None = None, prefix_len: int = 0
    ) -> int:
        """Pages a :meth:`try_allocate` with these arguments would claim."""
        key = self._prefix_key(prefix_id, prefix_len)
        shared = key[1] if key else 0
        private = -(-(tokens - shared) // self.block_tokens)
        if key is not None and key not in self._prefixes:
            private += shared // self.block_tokens
        return private

    def _fits(self, tokens: int, prefix_id: str | None, prefix_len: int) -> tuple:
        """Admission plan: ``(key, needed_blocks, fits)`` without side effects.

        ``fits`` accounts for idle prefixes that *could* be evicted —
        excluding the one this allocation would hit.
        """
        key = self._prefix_key(prefix_id, prefix_len)
        needed = self.blocks_needed(tokens, prefix_id, prefix_len)
        reclaimable = sum(
            p.blocks
            for k, p in self._prefixes.items()
            if p.refs == 0 and k != key
        )
        return key, needed, needed <= self.free_blocks + reclaimable

    def can_allocate(
        self, tokens: int, prefix_id: str | None = None, prefix_len: int = 0
    ) -> bool:
        """Whether :meth:`try_allocate` would succeed — pure check, no
        eviction, no counter updates (use for admission polling)."""
        return self._fits(tokens, prefix_id, prefix_len)[2]

    def try_allocate(
        self,
        seq_id: str,
        tokens: int,
        prefix_id: str | None = None,
        prefix_len: int = 0,
    ) -> int | None:
        """Admit a sequence of ``tokens`` context tokens.

        Returns the number of *cached* prefix tokens the sequence reuses
        (``0`` on a prefix miss or when no prefix is declared) — i.e. the
        tokens the prefill step does **not** need to recompute — or
        ``None`` when the cache cannot hold the sequence even after
        evicting idle prefixes.
        """
        if seq_id in self._seqs:
            raise ValueError(f"sequence {seq_id!r} already allocated")
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        if prefix_len > tokens:
            raise ValueError(
                f"prefix_len {prefix_len} exceeds sequence tokens {tokens}"
            )
        key, needed, fits = self._fits(tokens, prefix_id, prefix_len)
        hit = key is not None and key in self._prefixes
        if not fits:
            # Fail fast before evicting: dropping warm prefixes cannot
            # make this allocation fit, so keep them cached.
            self._stats.failed_allocations += 1
            return None
        self._evict_prefixes(needed, protect=key)
        self._tick += 1
        cached = 0
        if key is not None:
            shared = key[1]
            if hit:
                entry = self._prefixes[key]
                cached = shared
                self._stats.prefix_hits += 1
                self._stats.prefix_tokens_reused += shared
            else:
                entry = self._prefixes[key] = _Prefix(
                    tokens=shared, blocks=shared // self.block_tokens
                )
                self._stats.prefix_misses += 1
            entry.refs += 1
            entry.lru = self._tick
        self._seqs[seq_id] = _Seq(tokens=tokens, prefix_key=key)
        self._used_blocks += needed
        self._stats.allocations += 1
        self._stats.peak_used_blocks = max(self._stats.peak_used_blocks, self.used_blocks)
        return cached

    def append_blocks_needed(self, seq_ids) -> int:
        """New pages required to grow each sequence by one token."""
        needed = 0
        for seq_id in seq_ids:
            seq = self._seqs[seq_id]
            if seq.private_tokens % self.block_tokens == 0:
                needed += 1
        return needed

    def ensure_free(self, blocks: int) -> bool:
        """Free ``blocks`` pages by evicting idle prefixes; False if short."""
        self._evict_prefixes(blocks)
        return self.free_blocks >= blocks

    def append_token(self, seq_id: str) -> None:
        """Grow a sequence by one generated token (page-aligned)."""
        seq = self._seqs[seq_id]
        if (seq.tokens - seq.shared) % self.block_tokens == 0:
            # Fast path: a page is already free (the overwhelmingly common
            # case — the engine preempts before stepping a full cache), so
            # skip the eviction scan `ensure_free` would no-op through.
            if self._used_blocks >= self.num_blocks and not self.ensure_free(1):
                raise RuntimeError(
                    f"KV cache overflow growing {seq_id!r}: preempt before "
                    "appending (see ServingEngine._preempt_overflow)"
                )
            used = self._used_blocks = self._used_blocks + 1
            if used > self._stats.peak_used_blocks:
                self._stats.peak_used_blocks = used
        seq.tokens += 1

    def free(self, seq_id: str) -> None:
        """Release a sequence; its prefix stays cached for future hits."""
        seq = self._seqs.pop(seq_id)
        self._used_blocks -= seq.private_blocks(self.block_tokens)
        if seq.prefix_key is not None:
            self._prefixes[seq.prefix_key].refs -= 1

    def drop_idle_prefixes(self) -> int:
        """Evict every zero-reference prefix; returns pages reclaimed."""
        before = self.used_blocks
        for key in [k for k, p in self._prefixes.items() if p.refs == 0]:
            self._used_blocks -= self._prefixes.pop(key).blocks
            self._stats.prefix_evictions += 1
        return before - self.used_blocks

    def reset(self) -> None:
        """Forget all sequences, prefixes, and counters."""
        self._seqs.clear()
        self._prefixes.clear()
        self._used_blocks = 0
        self._tick = 0
        self._stats = KVStats()

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict:
        """Cumulative counters plus a point-in-time occupancy snapshot."""
        s = self._stats
        return {
            "num_blocks": self.num_blocks,
            "block_tokens": self.block_tokens,
            "used_blocks": self.used_blocks,
            "free_blocks": self.free_blocks,
            "resident_seqs": len(self._seqs),
            "cached_prefixes": len(self._prefixes),
            "allocations": s.allocations,
            "failed_allocations": s.failed_allocations,
            "prefix_hits": s.prefix_hits,
            "prefix_misses": s.prefix_misses,
            "prefix_tokens_reused": s.prefix_tokens_reused,
            "prefix_evictions": s.prefix_evictions,
            "peak_used_blocks": s.peak_used_blocks,
        }

    def __repr__(self) -> str:
        return (
            f"PagedKVCache(num_blocks={self.num_blocks}, "
            f"block_tokens={self.block_tokens}, used={self.used_blocks})"
        )


# ----------------------------------------------------------------------
# KV migration pricing (disaggregated prefill/decode serving)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KVTransfer:
    """Prices migration of a request's KV pages over an interconnect.

    Disaggregated serving runs prefill and decode on *separate* replica
    pools, so every request's KV cache — ``ctx`` tokens at the recipe's
    exact :func:`kv_token_bytes` — must cross a prefill→decode link
    before decoding can start. This object is the link model:

    * ``occupancy_s(n_bytes)`` — the time the link is *busy* moving the
      bytes (``bytes / bandwidth``); the cluster serializes concurrent
      migrations on this, so a slow link becomes a queue.
    * ``transfer_s(n_bytes)`` — end-to-end latency of one migration:
      propagation ``latency_s`` plus the occupancy.

    ``bandwidth_gb_s`` is in GB/s (1 GB = 1e9 bytes). ``math.inf``
    models the unified-equivalent limit (zero-time transfers); ``0.0``
    models a stalled link — ``occupancy_s`` returns ``inf`` and a
    cluster asked to schedule such a transfer raises rather than
    spinning forever.

    The MX+ serving argument shows up here directly: migration bytes are
    ``tokens * kv_token_bytes(arch, recipe)``, so a 4.5-bit KV recipe
    moves ~3.6x less than BF16 per request at the same context length.

    >>> link = KVTransfer(bandwidth_gb_s=64.0, latency_s=50e-6)
    >>> link.occupancy_s(64e9)  # 64 GB over 64 GB/s
    1.0
    >>> link.transfer_s(0.0) == link.latency_s
    True
    >>> KVTransfer(bandwidth_gb_s=float("inf"), latency_s=0.0).transfer_s(1e12)
    0.0
    >>> KVTransfer(bandwidth_gb_s=0.0).occupancy_s(1.0)
    inf
    """

    bandwidth_gb_s: float = 64.0  # PCIe 5.0 x16-class default
    latency_s: float = 50e-6
    name: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s < 0:
            raise ValueError("bandwidth_gb_s must be >= 0")
        if self.latency_s < 0 or math.isinf(self.latency_s):
            raise ValueError("latency_s must be finite and >= 0")

    def occupancy_s(self, n_bytes: float) -> float:
        """Seconds the link is busy moving ``n_bytes`` (queueing unit)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        if n_bytes == 0 or math.isinf(self.bandwidth_gb_s):
            return 0.0
        if self.bandwidth_gb_s == 0:
            return math.inf
        return n_bytes / (self.bandwidth_gb_s * 1e9)

    def transfer_s(self, n_bytes: float) -> float:
        """End-to-end seconds for one migration: latency + occupancy."""
        return self.latency_s + self.occupancy_s(n_bytes)

    def migration_bytes(self, arch: ArchSpec, recipe_or_fmt, tokens: int) -> float:
        """Bytes ``tokens`` KV tokens occupy under the recipe's KV format.

        Per-layer aware via :func:`kv_token_bytes`, so a tuned
        mixed-precision recipe with ``kv="auto"`` migrates exactly what
        its paged cache stores.

        >>> from repro.models.zoo import ARCHS
        >>> link = KVTransfer()
        >>> arch = ARCHS["llama-2-13b"]
        >>> link.migration_bytes(arch, "mxfp4+", 100) < link.migration_bytes(
        ...     arch, "bf16", 100)
        True
        """
        return kv_token_bytes(arch, recipe_or_fmt) * tokens


#: Named interconnect presets for the disaggregated serving scenarios.
INTERCONNECTS: dict[str, KVTransfer] = {
    "nvlink4": KVTransfer(bandwidth_gb_s=450.0, latency_s=10e-6, name="nvlink4"),
    "pcie5": KVTransfer(bandwidth_gb_s=64.0, latency_s=50e-6, name="pcie5"),
    "100gbe": KVTransfer(bandwidth_gb_s=12.5, latency_s=200e-6, name="100gbe"),
    "infinite": KVTransfer(
        bandwidth_gb_s=math.inf, latency_s=0.0, name="infinite"
    ),
}


def get_interconnect(name_or_transfer) -> KVTransfer:
    """Resolve an interconnect preset name (or pass a :class:`KVTransfer`).

    >>> get_interconnect("pcie5").bandwidth_gb_s
    64.0
    >>> sorted(INTERCONNECTS)
    ['100gbe', 'infinite', 'nvlink4', 'pcie5']
    """
    if isinstance(name_or_transfer, KVTransfer):
        return name_or_transfer
    key = str(name_or_transfer).lower()
    if key not in INTERCONNECTS:
        raise KeyError(
            f"unknown interconnect {name_or_transfer!r} "
            f"(available: {', '.join(sorted(INTERCONNECTS))})"
        )
    return INTERCONNECTS[key]
