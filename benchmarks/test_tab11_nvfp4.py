"""Table 11: NVFP4 vs NVFP4+ (extra BM precision) on harness tasks."""

from _util import print_table, run_once, save_result

from repro.eval import accuracy_table, perplexity_table

MODELS = ["llama-3.1-8b-sim", "mistral-7b-sim"]


def test_tab11(benchmark, zoo, harness_tasks, wiki2):
    def run():
        out = {}
        for m in MODELS:
            acc = accuracy_table(zoo[m], harness_tasks, ["nvfp4", "nvfp4+"])
            ppl = perplexity_table(zoo[m], wiki2, ["nvfp4", "nvfp4+", "mxfp4+", "mxfp4"])
            out[m] = {"accuracy": acc, "perplexity": ppl}
        return out

    table = run_once(benchmark, run)
    save_result("tab11_nvfp4", table)
    for m in MODELS:
        print_table(f"Table 11 ({m}) accuracy", table[m]["accuracy"], "{:.1f}")
        print_table(f"Table 11 ({m}) perplexity", table[m]["perplexity"])

    for m in MODELS:
        acc = table[m]["accuracy"]
        ppl = table[m]["perplexity"]
        avg4 = sum(acc["nvfp4"].values()) / len(acc["nvfp4"])
        avg4p = sum(acc["nvfp4+"].values()) / len(acc["nvfp4+"])
        # NVFP4+ >= NVFP4 on average accuracy and on perplexity.
        assert avg4p >= avg4 - 0.5
        assert ppl["nvfp4+"] <= ppl["nvfp4"] * 1.02
        # NVFP4 sits between MXFP4 and MXFP4+ (fine blocks, no BM bits).
        assert ppl["nvfp4"] <= ppl["mxfp4"] * 1.05
