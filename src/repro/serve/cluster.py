"""Cluster layer: N serving replicas behind one time-coherent event loop.

:class:`ServingCluster` scales the single-replica
:class:`repro.serve.ServingEngine` out to a fleet — and, unlike a
shard-then-simulate batch harness, it is a *discrete-event simulation*:
one global loop advances replicas in virtual-time order through the
engine's ``submit()/peek_next_event()/step()`` API, and every request is
routed **at its arrival instant** against the live state of the fleet at
that moment (per-replica queue depth, free KV pages, clocks). Fleet
metrics are therefore time-coherent: a replica's events interleave with
arrivals exactly as they would on one shared timeline.

Routers are deterministic and pluggable (``ROUTERS`` registry):

* ``"round-robin"`` — i-th request (in arrival order) to the i-th live
  replica, cycling;
* ``"least-kv-load"`` — to the replica with the fewest *committed* KV
  tokens (prompt + output budget of everything assigned so far), ties
  broken by lowest replica index — a static policy that never observes
  completions;
* ``"prefix-affinity"`` — requests sharing a ``prefix_id`` stick to the
  replica that first saw that prefix (so its KV pages are reused);
  prefix-less requests fall back to least-KV-load;
* ``"queue-depth"`` — to the replica with the fewest unfinished
  requests (waiting + running) *at the arrival instant*;
* ``"free-kv-at-arrival"`` — to the replica whose paged KV cache has
  the most free tokens *at the arrival instant*. Where least-kv-load
  keeps charging long-finished requests, this router sees the live
  allocator state, so the two diverge as soon as load shifts mid-trace.

An optional :class:`AutoscalePolicy` hook scales the fleet between
events: when every live replica's queue is deep, a fresh replica is
added (up to ``max_replicas``); idle replicas beyond ``min_replicas``
are retired once drained. Retired replicas keep their results.

With one replica and no shared prefixes the cluster reproduces the
single-engine result *exactly* — the reconciliation anchor that lets
fleet numbers be trusted (asserted in ``benchmarks/test_serving_cluster``).

>>> from repro.models.zoo import ARCHS
>>> from .engine import Request
>>> cluster = ServingCluster(ARCHS["llama-2-13b"], "mxfp4+", n_replicas=2,
...                          kv_token_budget=8192)
>>> reqs = [Request(f"r{i}", prompt_len=256, max_new_tokens=4) for i in range(4)]
>>> fleet = cluster.run(reqs)
>>> [fleet.assignments[f"r{i}"] for i in range(4)]
[0, 1, 0, 1]
>>> len(fleet.responses) == 4 and fleet.makespan_s > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from .engine import (
    Request,
    Response,
    ServingEngine,
    ServingResult,
    arrival_order,
)
from .kvcache import PagedKVCache
from .recipe import QuantRecipe

__all__ = [
    "ReplicaSnapshot",
    "Router",
    "RoundRobinRouter",
    "LeastKVLoadRouter",
    "PrefixAffinityRouter",
    "QueueDepthRouter",
    "FreeKVAtArrivalRouter",
    "ROUTERS",
    "available_routers",
    "get_router",
    "AutoscalePolicy",
    "FleetResult",
    "ServingCluster",
]


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Live state of one replica, as a router observes it at an arrival.

    Replica state changes only at step boundaries, so the snapshot
    reflects the last step completed at or before the routing instant
    (or, when a step spans the arrival, the state the replica will
    expose at its next scheduling boundary — the earliest moment it
    could act on the new request anyway).
    """

    index: int  # replica index (stable across the run)
    clock: float  # the replica's virtual clock
    n_running: int
    n_waiting: int
    free_kv_tokens: int
    capacity_kv_tokens: int

    @property
    def queue_depth(self) -> int:
        """Unfinished requests on the replica (waiting + running)."""
        return self.n_running + self.n_waiting


class Router:
    """Base class: assign each request (in arrival order) to a replica.

    Routers see requests one at a time, sorted by arrival, and must be
    deterministic — equal inputs yield equal assignments, and all
    tie-breaks resolve to the lowest replica index. ``route`` receives
    the live :class:`ReplicaSnapshot` list for the routable replicas at
    the arrival instant; routers that predate the event loop (or direct
    calls in tests) may be invoked without snapshots and fall back to
    their static behavior over ``range(n_replicas)``.
    """

    name = "base"

    def __init__(self, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_replicas = n_replicas
        self.reset()

    def reset(self) -> None:
        """Return to the initial state; called before every cluster run
        so router instances behave like freshly-built ones."""

    def resize(self, n_replicas: int) -> None:
        """Adapt to a fleet of ``n_replicas`` (autoscaling)."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_replicas = n_replicas

    def _indices(self, replicas: list[ReplicaSnapshot] | None) -> list[int]:
        if replicas is not None:
            return [s.index for s in replicas]
        return list(range(self.n_replicas))

    def route(
        self, request: Request, replicas: list[ReplicaSnapshot] | None = None
    ) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the live replicas in arrival order."""

    name = "round-robin"

    def reset(self) -> None:
        self._pos = 0

    def route(self, request, replicas=None) -> int:
        indices = self._indices(replicas)
        replica = indices[self._pos % len(indices)]
        self._pos += 1
        return replica


class LeastKVLoadRouter(Router):
    """Send to the replica with the fewest *committed* KV tokens.

    Load is the sum of ``prompt_len + max_new_tokens`` over assigned
    requests — the KV tokens a request will eventually pin. The counter
    is never decremented (the router does not observe completions), so
    this is the static baseline that ``free-kv-at-arrival`` improves on.
    Ties break to the lowest replica index, so assignment is
    deterministic.
    """

    name = "least-kv-load"

    def reset(self) -> None:
        self.loads: dict[int, int] = {}

    def _least_loaded(self, indices: list[int]) -> int:
        return min(indices, key=lambda i: (self.loads.get(i, 0), i))

    def route(self, request, replicas=None) -> int:
        replica = self._least_loaded(self._indices(replicas))
        self._charge(replica, request)
        return replica

    def _charge(self, replica: int, request: Request) -> None:
        self.loads[replica] = (
            self.loads.get(replica, 0) + request.prompt_len + request.max_new_tokens
        )


class PrefixAffinityRouter(LeastKVLoadRouter):
    """Pin each shared prefix to one replica so its KV pages get reused.

    The first request carrying a given ``prefix_id`` is placed on the
    least-loaded replica; every later request with that prefix follows
    it (a prefix scattered across replicas would be stored N times and
    hit only 1/N of the time). Prefix-less requests use least-KV-load.
    If the pinned replica was retired by autoscaling, the prefix is
    re-homed to the least-loaded live replica.
    """

    name = "prefix-affinity"

    def reset(self) -> None:
        super().reset()
        self._homes: dict[str, int] = {}

    def route(self, request, replicas=None) -> int:
        if request.prefix_id is None:
            return super().route(request, replicas)
        indices = self._indices(replicas)
        replica = self._homes.get(request.prefix_id)
        if replica is None or replica not in indices:
            replica = self._homes[request.prefix_id] = self._least_loaded(indices)
        self._charge(replica, request)
        return replica


class QueueDepthRouter(Router):
    """Send to the replica with the shallowest queue at the arrival
    instant (waiting + running, live), ties to the lowest index.

    Without snapshots (direct calls outside the event loop) it falls
    back to counting its own assignments — join-shortest-queue degrades
    to least-assigned when completions cannot be observed.
    """

    name = "queue-depth"

    def reset(self) -> None:
        self._assigned: dict[int, int] = {}

    def route(self, request, replicas=None) -> int:
        if replicas is not None:
            replica = min(replicas, key=lambda s: (s.queue_depth, s.index)).index
        else:
            replica = min(
                range(self.n_replicas), key=lambda i: (self._assigned.get(i, 0), i)
            )
        self._assigned[replica] = self._assigned.get(replica, 0) + 1
        return replica


class FreeKVAtArrivalRouter(Router):
    """Send to the replica whose KV cache has the most free tokens at
    the arrival instant, ties to the lowest index.

    The live counterpart of ``least-kv-load``: it sees pages already
    released by finished requests and pages pinned by cached prefixes,
    so it diverges from the static router whenever load shifts over the
    trace. Without snapshots it falls back to the static committed-load
    heuristic.
    """

    name = "free-kv-at-arrival"

    def reset(self) -> None:
        self._loads: dict[int, int] = {}

    def route(self, request, replicas=None) -> int:
        if replicas is not None:
            replica = min(replicas, key=lambda s: (-s.free_kv_tokens, s.index)).index
        else:
            replica = min(
                range(self.n_replicas), key=lambda i: (self._loads.get(i, 0), i)
            )
        self._loads[replica] = (
            self._loads.get(replica, 0) + request.prompt_len + request.max_new_tokens
        )
        return replica


ROUTERS: dict[str, type[Router]] = {
    cls.name: cls
    for cls in (
        RoundRobinRouter,
        LeastKVLoadRouter,
        PrefixAffinityRouter,
        QueueDepthRouter,
        FreeKVAtArrivalRouter,
    )
}


def available_routers() -> list[str]:
    """Sorted names of the registered routing policies.

    >>> available_routers()
    ['free-kv-at-arrival', 'least-kv-load', 'prefix-affinity', 'queue-depth', 'round-robin']
    """
    return sorted(ROUTERS)


def get_router(name_or_router, n_replicas: int) -> Router:
    """Instantiate a router by name (or pass a :class:`Router` through)."""
    if isinstance(name_or_router, Router):
        return name_or_router
    key = str(name_or_router).lower()
    if key not in ROUTERS:
        raise KeyError(
            f"unknown router {name_or_router!r} "
            f"(available: {', '.join(available_routers())})"
        )
    return ROUTERS[key](n_replicas)


@dataclass(frozen=True)
class AutoscalePolicy:
    """Scale the fleet on live queue depth, consulted between events.

    At every arrival instant the cluster asks :meth:`target` for the
    desired live-replica count given the fleet snapshots. The default
    rule: when *every* live replica's queue depth is at least
    ``scale_up_queue_depth``, grow by one (new replicas start with a
    cold KV cache); when more than one replica is completely idle and
    the fleet exceeds ``min_replicas``, retire one drained replica.
    Retired replicas keep their results, and their indices are never
    reused. Subclass and override :meth:`target` for custom rules.
    """

    max_replicas: int = 8
    min_replicas: int = 1
    scale_up_queue_depth: int = 4
    scale_down: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.scale_up_queue_depth < 1:
            raise ValueError("scale_up_queue_depth must be >= 1")

    def target(self, snapshots: list[ReplicaSnapshot]) -> int:
        """Desired live replica count for the given fleet state."""
        n = len(snapshots)
        if n < self.max_replicas and n and min(
            s.queue_depth for s in snapshots
        ) >= self.scale_up_queue_depth:
            return n + 1
        if (
            self.scale_down
            and n > self.min_replicas
            and sum(1 for s in snapshots if s.queue_depth == 0) > 1
        ):
            return n - 1
        return n


@dataclass
class FleetResult:
    """Fleet outcome: per-replica results + cluster-level accounting."""

    responses: list[Response]  # input order, across all replicas
    replica_results: list[ServingResult]
    assignments: dict[str, int]  # request_id -> replica index
    router: str = ""
    scheduler: str = ""
    autoscale_events: list = field(default_factory=list)  # (time, action, index)

    @property
    def n_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def makespan_s(self) -> float:
        """Fleet makespan: the slowest replica's virtual finish time."""
        return max((r.makespan_s for r in self.replica_results), default=0.0)

    @property
    def total_tokens(self) -> int:
        return sum(r.output_len for r in self.responses)

    @property
    def throughput_tok_s(self) -> float:
        """Fleet-level output tokens per second of virtual wall-clock."""
        return self.total_tokens / self.makespan_s if self.makespan_s else 0.0

    @property
    def mean_ttft_s(self) -> float:
        if not self.responses:
            return 0.0
        return float(np.mean([r.ttft_s for r in self.responses]))

    @property
    def mean_tpot_s(self) -> float:
        if not self.responses:
            return 0.0
        return float(np.mean([r.tpot_s for r in self.responses]))

    @property
    def preemptions(self) -> int:
        return sum(r.preemptions for r in self.replica_results)

    @property
    def peak_running(self) -> int:
        """Max concurrently decoding requests summed across replicas."""
        return sum(r.peak_running for r in self.replica_results)

    def p99_ttft_s(self, q: float = 99.0) -> float:
        if not self.responses:
            return 0.0
        return float(np.percentile([r.ttft_s for r in self.responses], q))

    @staticmethod
    def _meets_slo(
        r: Response, ttft_slo_s: float | None, tpot_slo_s: float | None
    ) -> bool:
        return (ttft_slo_s is None or r.ttft_s <= ttft_slo_s) and (
            tpot_slo_s is None or r.tpot_s <= tpot_slo_s
        )

    def slo_attainment(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> float:
        """Fraction of requests meeting every given SLO (1.0 if none set)."""
        if not self.responses:
            return 1.0
        ok = sum(self._meets_slo(r, ttft_slo_s, tpot_slo_s) for r in self.responses)
        return ok / len(self.responses)

    def goodput_tok_s(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> float:
        """Throughput counting only tokens from SLO-meeting requests.

        The serving metric the paper's efficiency story cashes out in: a
        fleet that admits more requests but blows its latency targets
        earns no goodput for them.
        """
        if not self.makespan_s:
            return 0.0
        good = sum(
            r.output_len
            for r in self.responses
            if self._meets_slo(r, ttft_slo_s, tpot_slo_s)
        )
        return good / self.makespan_s

    def summary(
        self, ttft_slo_s: float | None = None, tpot_slo_s: float | None = None
    ) -> dict:
        """Fleet metrics plus per-replica summaries (JSON-friendly)."""
        return {
            "router": self.router,
            "n_replicas": self.n_replicas,
            "requests": len(self.responses),
            "total_tokens": self.total_tokens,
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tok_s,
            "mean_ttft_s": self.mean_ttft_s,
            "p99_ttft_s": self.p99_ttft_s(),
            "mean_tpot_s": self.mean_tpot_s,
            "preemptions": self.preemptions,
            "peak_running": self.peak_running,
            "slo_attainment": self.slo_attainment(ttft_slo_s, tpot_slo_s),
            "goodput_tok_s": self.goodput_tok_s(ttft_slo_s, tpot_slo_s),
            "replicas": [r.summary() for r in self.replica_results],
        }


class ServingCluster:
    """N identical serving replicas behind one global event loop.

    Parameters
    ----------
    arch, recipe, spec:
        As for :class:`ServingEngine`; all replicas share them.
    n_replicas:
        Initial fleet size (autoscaling may grow it per run).
    router:
        Router name (see :func:`available_routers`) or instance.
    kv_token_budget:
        Per-replica flat KV budget (1-token pages) when no byte budget is
        given — the exact single-engine semantics.
    page_budget_bytes / block_tokens:
        Alternative per-replica sizing: each replica gets
        ``PagedKVCache.from_byte_budget(page_budget_bytes, arch, recipe,
        block_tokens)``, so the recipe's KV format sets how many requests
        fit — the MX+ capacity win.
    max_batch, model:
        Forwarded to every replica engine.
    scheduler:
        Batch-composition policy for every replica (name or
        :class:`~repro.serve.sched.Scheduler` instance); see
        :func:`repro.serve.sched.available_schedulers`.
    autoscale:
        Optional :class:`AutoscalePolicy` consulted at every arrival;
        replicas added per run start cold and are discarded afterwards.
    """

    def __init__(
        self,
        arch: ArchSpec,
        recipe,
        n_replicas: int = 1,
        router="round-robin",
        spec: GPUSpec = RTX5090,
        kv_token_budget: int = 262_144,
        max_batch: int = 256,
        page_budget_bytes: float | None = None,
        block_tokens: int = 16,
        model=None,
        scheduler="prefill-first",
        autoscale: AutoscalePolicy | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if isinstance(recipe, str):
            recipe = QuantRecipe.from_name(recipe)
        self.arch = arch
        self.recipe = recipe
        self.spec = spec
        self.n_replicas = n_replicas
        self._router_spec = router
        self._scheduler_spec = scheduler
        self._kv_token_budget = kv_token_budget
        self._page_budget_bytes = page_budget_bytes
        self._block_tokens = block_tokens
        self._max_batch = max_batch
        self._model = model
        self.autoscale = autoscale
        self.engines = [self._make_engine() for _ in range(n_replicas)]

    def _make_engine(self) -> ServingEngine:
        """One replica: fresh paged cache, shared arch/recipe/GPU."""
        if self._page_budget_bytes is not None:
            cache = PagedKVCache.from_byte_budget(
                self._page_budget_bytes,
                self.arch,
                self.recipe,
                block_tokens=self._block_tokens,
            )
        else:
            cache = PagedKVCache.from_token_budget(self._kv_token_budget)
        from copy import deepcopy

        from .sched import get_scheduler

        scheduler = self._scheduler_spec
        if not isinstance(scheduler, str):
            # Engine steps interleave in the global event loop, so replicas
            # must not share one (potentially stateful) scheduler instance —
            # each replica gets a deep copy, configuration included.
            scheduler = deepcopy(get_scheduler(scheduler))
        return ServingEngine(
            self.arch,
            self.recipe,
            spec=self.spec,
            max_batch=self._max_batch,
            model=self._model,
            kv_cache=cache,
            scheduler=scheduler,
        )

    @property
    def capacity_tokens_per_replica(self) -> int:
        """KV tokens one replica can hold (page count x page size)."""
        return self.engines[0].kv_cache.capacity_tokens

    @staticmethod
    def _snapshot(engine: ServingEngine, index: int) -> ReplicaSnapshot:
        return ReplicaSnapshot(
            index=index,
            clock=engine.clock,
            n_running=engine.n_running,
            n_waiting=engine.n_waiting,
            free_kv_tokens=engine.free_kv_tokens,
            capacity_kv_tokens=engine.kv_cache.capacity_tokens,
        )

    def _apply_autoscale(
        self,
        replicas: list[ServingEngine],
        live: list[int],
        router: Router,
        t_arr: float,
        events: list,
    ) -> None:
        """Grow/retire live replicas toward the policy's target count."""
        snaps = [self._snapshot(replicas[j], j) for j in live]
        target = self.autoscale.target(snaps)
        while len(live) < target:
            replicas.append(self._make_engine())
            live.append(len(replicas) - 1)
            router.resize(len(replicas))
            events.append((t_arr, "scale-up", len(replicas) - 1))
        if len(live) > target:
            # Retire drained replicas only (highest index first): requests
            # in flight are never migrated.
            for j in sorted(live, reverse=True):
                if len(live) <= target:
                    break
                if not replicas[j].has_work():
                    live.remove(j)
                    events.append((t_arr, "scale-down", j))

    def run(self, requests: list[Request]) -> FleetResult:
        """Serve ``requests`` through the global virtual-time event loop.

        The loop repeatedly takes the earliest event: the next request
        arrival (routed immediately against live replica snapshots, ties
        to the lowest replica index) or the earliest replica step. A
        replica whose step begins before an arrival executes first — the
        scheduling decision at that instant cannot see the future — so
        the whole fleet shares one coherent timeline. Responses come
        back in input order.
        """
        router = get_router(self._router_spec, self.n_replicas)
        if router.n_replicas != self.n_replicas:
            raise ValueError(
                f"router built for {router.n_replicas} replicas, "
                f"cluster has {self.n_replicas}"
            )
        router.reset()  # instances passed in must behave like fresh ones
        pending = arrival_order(requests)  # validates duplicate ids too
        replicas = list(self.engines)  # autoscaling appends; base fleet stays
        live = list(range(len(replicas)))
        for engine in replicas:
            engine.begin_run()
        assignments: dict[str, int] = {}
        autoscale_events: list = []
        i = 0
        try:
            while i < len(pending) or any(e.has_work() for e in replicas):
                t_arr = pending[i].arrival_s if i < len(pending) else None
                candidates = [
                    (t, idx)
                    for idx, engine in enumerate(replicas)
                    if (t := engine.peek_next_event()) is not None
                ]
                t_eng = min(candidates)[0] if candidates else None
                if t_arr is not None and (t_eng is None or t_arr <= t_eng):
                    # Arrival event: consult the autoscaler, then route
                    # against the live fleet at this instant.
                    request = pending[i]
                    i += 1
                    if self.autoscale is not None:
                        self._apply_autoscale(
                            replicas, live, router, t_arr, autoscale_events
                        )
                    snaps = [self._snapshot(replicas[j], j) for j in live]
                    replica = router.route(request, snaps)
                    if replica not in live:
                        raise ValueError(
                            f"router {router.name!r} returned invalid replica "
                            f"{replica} (live: {live})"
                        )
                    assignments[request.request_id] = replica
                    replicas[replica].submit(request)
                else:
                    # Step event: advance the replica with the earliest
                    # next event (ties to the lowest index).
                    _, idx = min(candidates)
                    replicas[idx].step()
        finally:
            for engine in replicas:
                engine.abort()
            router.resize(self.n_replicas)  # reusable instance: undo growth
        # Each replica reports its shard in original input order, exactly
        # as a standalone engine would (reconciliation at n_replicas=1).
        shards = [
            [r for r in requests if assignments[r.request_id] == j]
            for j in range(len(replicas))
        ]
        results = [
            engine.collect(shard) for engine, shard in zip(replicas, shards)
        ]
        by_id = {
            resp.request_id: resp for res in results for resp in res.responses
        }
        return FleetResult(
            responses=[by_id[r.request_id] for r in requests],
            replica_results=results,
            assignments=assignments,
            router=router.name,
            scheduler=replicas[0].scheduler.name,
            autoscale_events=autoscale_events,
        )
