"""Resumable sweep execution: one ServingCluster run per planned cell.

The runner walks a planned sweep in manifest order and, per cell,
builds the seeded workload, runs the virtual-time
:class:`~repro.serve.ServingCluster` the spec describes, prices the
scenario through :mod:`~repro.bench.pricing`, and rewrites the cell's
manifest. Two properties make sweeps safe to interrupt:

* **Resume/skip** — a manifest already marked ``completed`` is skipped
  wholesale; because every cell's result is a pure function of its
  :class:`~repro.bench.matrix.RunSpec` (seeded workload, deterministic
  event loop, analytic pricing), a resumed sweep's aggregate is
  byte-identical to an uninterrupted one.
* **Failure isolation** — an exception inside one cell marks *that*
  manifest ``failed`` (error recorded) and the sweep continues; the
  failed cell re-runs on the next invocation.

Wall-clock seconds per run are recorded in the manifest (they feed the
sweep's perf-trajectory section) but never enter the deterministic
result payload.
"""

from __future__ import annotations

import time
import traceback
from datetime import datetime

from ..models.zoo import ARCHS
from ..serve import ServingCluster
from .matrix import RunSpec, build_workload
from .planner import SweepPlan, load_plan, read_manifest, write_manifest
from .pricing import GIB, price_cell

__all__ = ["execute_run", "run_sweep"]


def _build_cluster(spec: RunSpec) -> ServingCluster:
    """The fleet one cell describes (unified or disaggregated pools)."""
    shape = spec.fleet_shape
    kwargs: dict = {
        "scheduler": spec.scheduler,
        "page_budget_bytes": float(spec.page_budget_gib * GIB),
        "block_tokens": spec.block_tokens,
    }
    if shape.disaggregated:
        kwargs.update(
            n_prefill=shape.n_prefill,
            n_decode=shape.n_decode,
            kv_transfer=spec.interconnect,
        )
    else:
        kwargs["n_replicas"] = shape.n_replicas
    return ServingCluster(ARCHS[spec.arch], spec.recipe, **kwargs)


def execute_run(spec: RunSpec, trace_path=None) -> dict:
    """Execute one cell and return its deterministic result payload.

    Runs the seeded workload through the cell's fleet, measures the
    virtual-time serving metrics (throughput, requests/s, TTFT/TPOT,
    SLO attainment, goodput, migration bytes for disaggregated cells),
    and attaches the :func:`~repro.bench.pricing.price_cell` block.
    Same spec → same payload, byte for byte — the property resume and
    the committed ``BENCH_sweep.json`` artifact both rest on.

    ``trace_path`` (optional) attaches a :class:`repro.obs.Tracer` and
    :class:`repro.obs.MetricsRegistry` to the run and writes the
    Perfetto-loadable Chrome trace there. The result payload is
    unchanged — tracing never perturbs the simulation (the obs test
    suite pins the fingerprint) — so traced and untraced cells stay
    byte-identical in the aggregate.
    """
    requests = build_workload(spec.workload, spec.n_requests, spec.seed)
    cluster = _build_cluster(spec)
    tracer = metrics = None
    if trace_path is not None:
        from ..obs import MetricsRegistry, Tracer

        tracer = cluster.tracer = Tracer()
        metrics = cluster.metrics = MetricsRegistry()
        for i, engine in enumerate(cluster.engines):
            engine.tracer = tracer
            engine.trace_replica = i
    fleet = cluster.run(requests)
    if trace_path is not None:
        from ..obs import write_chrome_trace

        write_chrome_trace(trace_path, tracer.events(), metrics)
    result = {
        "requests": len(fleet.responses),
        "total_tokens": fleet.total_tokens,
        "makespan_s": fleet.makespan_s,
        "requests_per_s": fleet.requests_per_s,
        "throughput_tok_s": fleet.throughput_tok_s,
        "mean_ttft_ms": fleet.mean_ttft_s * 1e3,
        "p99_ttft_ms": fleet.p99_ttft_s() * 1e3,
        "mean_tpot_ms": fleet.mean_tpot_s * 1e3,
        "preemptions": fleet.preemptions,
        "peak_running": fleet.peak_running,
        "slo_attainment": fleet.slo_attainment(spec.ttft_slo_s, spec.tpot_slo_s),
        "goodput_tok_s": fleet.goodput_tok_s(spec.ttft_slo_s, spec.tpot_slo_s),
        "pricing": price_cell(spec),
    }
    if spec.disaggregated:
        result["n_transfers"] = fleet.n_transfers
        result["transfer_bytes_per_request"] = fleet.transfer_bytes_per_request
        result["transfer_stall_s_total"] = fleet.transfer_stall_s_total
    return result


def run_sweep(
    sweep_dir,
    executor=None,
    max_runs: int | None = None,
    progress=None,
    trace: bool = False,
) -> dict:
    """Execute (or resume) every planned run under ``sweep_dir``.

    ``executor`` overrides the per-cell execution function (tests inject
    failures through it; default :func:`execute_run`); ``max_runs``
    caps how many cells actually execute this invocation — the hook for
    exercising interrupted sweeps deterministically; ``progress`` is an
    optional callable receiving one line per cell.

    ``trace=True`` records a Perfetto trace per executed cell at
    ``runs/<cell_id>/trace.json`` and notes the filename under the
    manifest's ``"trace"`` key (absent on untraced cells, so existing
    committed aggregates are unaffected). A custom ``executor`` must
    then accept the ``trace_path`` keyword.

    Returns a summary dict: counts of ``executed`` / ``skipped``
    (already completed) / ``failed`` cells plus total wall-clock
    seconds. Failures never abort the sweep — each failed cell's
    manifest records the error and the next invocation retries it.
    """
    plan: SweepPlan = load_plan(sweep_dir)
    executor = executor or execute_run
    say = progress or (lambda line: None)
    executed = skipped = failed = 0
    wall_total = 0.0
    for spec in plan.runs:
        manifest = read_manifest(plan.root, spec.cell_id)
        if manifest["status"] == "completed":
            skipped += 1
            say(f"skip {spec.cell_id} (completed)")
            continue
        if max_runs is not None and executed + failed >= max_runs:
            say(f"stop after {max_runs} run(s) (--max-runs)")
            break
        trace_path = None
        if trace:
            trace_path = plan.manifest_path(spec.cell_id).parent / "trace.json"
        t0 = time.perf_counter()
        try:
            if trace_path is not None:
                result = executor(spec, trace_path=trace_path)
            else:
                result = executor(spec)
        except Exception as exc:  # failure isolation: the sweep continues
            wall = time.perf_counter() - t0
            manifest.update(
                status="failed",
                result=None,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
                wall_clock_s=wall,
                finished_at=datetime.now().isoformat(timespec="seconds"),
            )
            write_manifest(plan.root, spec.cell_id, manifest)
            failed += 1
            wall_total += wall
            say(f"FAIL {spec.cell_id}: {manifest['error']}")
            continue
        wall = time.perf_counter() - t0
        manifest.pop("traceback", None)  # a retried failure is no failure
        manifest.update(
            status="completed",
            result=result,
            error=None,
            wall_clock_s=wall,
            finished_at=datetime.now().isoformat(timespec="seconds"),
        )
        if trace_path is not None:
            manifest["trace"] = trace_path.name
        write_manifest(plan.root, spec.cell_id, manifest)
        executed += 1
        wall_total += wall
        say(f"done {spec.cell_id} ({wall:.2f}s)")
    return {
        "executed": executed,
        "skipped": skipped,
        "failed": failed,
        "planned": len(plan.runs),
        "wall_clock_s": wall_total,
    }
