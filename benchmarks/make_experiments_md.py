"""Assemble docs/EXPERIMENTS.md from benchmarks/results/*.json.

The generated page has two parts: an index mapping every benchmark file
to its paper figure/table (with the command that regenerates it), and a
paper-vs-measured section per artifact. Regenerate after
``pytest benchmarks/ --benchmark-only``:

    python benchmarks/make_experiments_md.py

Every ``benchmarks/test_*.py`` must have an entry in ``BENCHMARK_INDEX``
— the script fails otherwise, so new benchmarks cannot silently miss
their documentation.
"""

from __future__ import annotations

import json
from pathlib import Path

HERE = Path(__file__).parent
RESULTS = HERE / "results"
OUT = Path(__file__).parents[1] / "docs" / "EXPERIMENTS.md"

#: benchmark file -> (paper anchor, what it reproduces)
BENCHMARK_INDEX: dict[str, tuple[str, str]] = {
    "test_fig02_bfp_variants.py": ("Figure 2", "perplexity across industry BFP variants"),
    "test_fig03_aw_mix.py": ("Figure 3", "quantizing only activations or only weights"),
    "test_fig04_blocks.py": ("Figure 4", "outlier heatmap + worked block examples"),
    "test_fig05_mse.py": ("Figure 5", "block-max share of quantization MSE"),
    "test_fig06_encoding.py": ("Figure 6", "MX vs MX+ binary encodings (bit-exact)"),
    "test_fig07_layout.py": ("Figure 7", "MX+ data layout and bits/element"),
    "test_fig11_exec_time.py": ("Figure 11", "software-integration execution time"),
    "test_fig12_hw_exec.py": ("Figure 12", "hardware-integration execution time"),
    "test_fig13_speedup_accuracy.py": ("Figure 13", "end-to-end speedup vs accuracy"),
    "test_fig14_topk.py": ("Figure 14", "top-k outlier promotion"),
    "test_tab02_tasks.py": ("Table 2", "zero-shot task accuracy"),
    "test_tab03_perplexity.py": ("Table 3", "perplexity across datasets/lengths"),
    "test_tab04_conversion.py": ("Table 4", "conversion-before-compute matmul time"),
    "test_tab05_area.py": ("Table 5", "area/power per Tensor Core"),
    "test_tab06_quant_time.py": ("Table 6", "quantization time"),
    "test_tab07_schemes.py": ("Table 7", "comparison with other quantization schemes"),
    "test_tab08_weight_only.py": ("Table 8", "weight-only quantization"),
    "test_tab09_vision.py": ("Table 9", "vision models, direct-cast + QAT"),
    "test_tab10_mxint.py": ("Table 10", "MX+ on integer microscaling formats"),
    "test_tab11_nvfp4.py": ("Table 11", "NVFP4 and NVFP4+"),
    "test_tab12_reorder.py": ("Table 12", "channel reordering"),
    "test_tab13_matrix.py": ("Table 13", "qualitative scheme comparison"),
    "test_ablations.py": ("Ablations", "MX++ offset, block size, flush rule, outlier scale"),
    "test_serving_engine.py": (
        "§7 serving", "request-level continuous batching vs the stage simulator"
    ),
    "test_serving_cluster.py": (
        "§7 serving", "paged-KV capacity, prefix caching, multi-replica cluster"
    ),
    "test_scheduler_policies.py": (
        "§7 serving",
        "chunked prefill vs prefill-first p99 TTFT, BF16 vs MX+ page budgets",
    ),
    "test_disagg_serving.py": (
        "§7 serving",
        "disaggregated prefill/decode pools: KV-migration bytes, MX+ vs BF16",
    ),
    "test_tune_frontier.py": (
        "beyond the paper",
        "autotuned per-layer mixed-precision recipe Pareto frontier",
    ),
    "test_bench_sweep.py": (
        "beyond the paper",
        "canonical sweep matrix: recipes x schedulers x fleets priced in $/Mtok",
    ),
    "test_encode_speed.py": (
        "infrastructure",
        "batched MX+ encode vs per-block reference (>=2x)",
    ),
    "test_event_loop.py": (
        "infrastructure",
        "event-loop req/s at 10k/100k/1M: heap loop >=5x pre-PR baseline, "
        "sharded bit-identical to single-process",
    ),
    "test_obs_overhead.py": (
        "infrastructure",
        "tracing overhead: untraced loop within 5% of the event-loop "
        "baseline, traced run bit-identical",
    ),
}


def benchmark_index_lines() -> list[str]:
    """The benchmark -> paper mapping table; fails on unmapped files."""
    files = sorted(p.name for p in HERE.glob("test_*.py"))
    missing = [f for f in files if f not in BENCHMARK_INDEX]
    if missing:
        raise SystemExit(
            f"benchmarks missing from BENCHMARK_INDEX in {__file__}: {missing}"
        )
    stale = [f for f in BENCHMARK_INDEX if f not in files]
    if stale:
        raise SystemExit(f"BENCHMARK_INDEX entries without files: {stale}")
    lines = [
        "## Benchmark index\n",
        "Each benchmark regenerates one paper artifact and asserts its",
        "shape. Regenerate any row with the command in its cell (from the",
        "repo root; results land in `benchmarks/results/*.json`).\n",
        "| Benchmark | Paper artifact | Reproduces | Regenerate |",
        "|---|---|---|---|",
    ]
    for f in files:
        anchor, what = BENCHMARK_INDEX[f]
        cmd = f"`PYTHONPATH=src python -m pytest benchmarks/{f} -q -s`"
        lines.append(f"| `benchmarks/{f}` | {anchor} | {what} | {cmd} |")
    lines.append("")
    return lines


def load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def f(x, nd=3):
    return f"{x:.{nd}f}" if isinstance(x, (int, float)) else str(x)


def section(lines, title, paper, measured_lines, verdict):
    lines.append(f"## {title}\n")
    lines.append(f"**Paper:** {paper}\n")
    lines.append("**Measured:**\n")
    lines.extend(measured_lines)
    lines.append(f"\n**Shape verdict:** {verdict}\n")


def main() -> None:
    L: list[str] = [
        "# EXPERIMENTS — paper vs. measured\n",
        "All experiments regenerate with `pytest benchmarks/ --benchmark-only -s`.",
        "Absolute values come from the scaled-down substrate (see",
        "[ARCHITECTURE.md](ARCHITECTURE.md)); the reproduced quantity is the",
        "*shape* of each result: orderings, rough ratios, and crossovers. Each",
        "benchmark asserts its shape, so a green benchmark suite certifies",
        "every claim below. This page is generated — edit",
        "`benchmarks/make_experiments_md.py`, not this file.\n",
    ]
    L.extend(benchmark_index_lines())

    fig2 = load("fig02_bfp_variants")
    if fig2:
        rows = []
        rows.append("| model | BF16 | MXFP8 | SMX9 | MSFP16 | MXFP6 | SMX6 | MSFP14 | MXFP4 | SMX4 | MSFP12 |")
        rows.append("|---|---|---|---|---|---|---|---|---|---|---|")
        for m, r in fig2.items():
            rows.append(
                f"| {m} | " + " | ".join(
                    f(r[k]) for k in ["baseline", "mxfp8", "smx9", "msfp16", "mxfp6", "smx6", "msfp14", "mxfp4", "smx4", "msfp12"]
                ) + " |"
            )
        section(
            L,
            "Figure 2 — perplexity across industry BFP variants",
            "high-bit variants ~= BF16; at moderate bits MXFP6 stays close while "
            "SMX6/MSFP14 begin to diverge; at low bits everything degrades and "
            "MXFP4 significantly outperforms SMX4 and MSFP12 (OPT/Llama blow up).",
            rows,
            "Reproduced for the high/moderate tiers and the MXFP4-vs-SMX4 ordering. "
            "Deviation: MSFP12 lands *better* than MXFP4 here — its block size of "
            "16 halves outlier blast radius at our 128-channel width, while the "
            "paper's 4096-channel models make MSFP12's 3-bit dynamic range fatal.",
        )

    fig3 = load("fig03_aw_mix")
    if fig3:
        rows = ["| model | BF16 | A-BF16/W-MXFP4 | A-MXFP4/W-BF16 | MXFP4 |", "|---|---|---|---|---|"]
        for m, r in fig3.items():
            rows.append(f"| {m} | {f(r['baseline'])} | {f(r['a:bf16,w:mxfp4'])} | {f(r['a:mxfp4,w:bf16'])} | {f(r['mxfp4'])} |")
        section(
            L,
            "Figure 3 — quantizing only A or only W",
            "W-only MXFP4 is a negligible perplexity hit; A-only degrades severely "
            "and explains nearly all of full-MXFP4's damage.",
            rows,
            "Reproduced exactly (W-only within ~2% of baseline on most models; "
            "A-only carries the collapse).",
        )

    fig4 = load("fig04_blocks")
    if fig4:
        section(
            L,
            "Figure 4 — outlier heatmap + sampled blocks",
            "activation outliers concentrate in a few channels; the printed "
            "upper block quantizes -9.84 -> -8.0 (MXFP4) with NBMs flushed to "
            "zero, -10.0 under MXFP6.",
            [
                f"- top channel mean magnitude {f(fig4['channel_mean_mag_top4'][0], 2)} vs median {f(fig4['channel_mean_mag_median'], 3)} (outlier channels {fig4['outlier_channels']})",
                f"- upper block MXFP4: {fig4['upper_block_mxfp4']}",
                f"- upper block MXFP6: {fig4['upper_block_mxfp6']}",
                f"- lower block MXFP4: {fig4['lower_block_mxfp4']}",
            ],
            "Worked example reproduced bit-exactly; channel-concentrated heatmap "
            "structure reproduced.",
        )

    fig5 = load("fig05_mse")
    if fig5:
        rows = [f"- {m}: BM share {f(r['bm_share'], 2)}, largest-error share {f(r['largest_error_share'], 2)}, BM==largest-error rate {f(r['bm_is_largest_error_rate'], 2)}" for m, r in fig5.items()]
        section(
            L,
            "Figure 5 — MSE decomposition",
            "BM elements contribute most of the quantization MSE (~75-95%), and "
            "the BM is usually the largest-error element.",
            rows,
            "Reproduced (BM share ~0.79 on both models).",
        )

    fig6 = load("fig06_encoding")
    if fig6:
        section(
            L,
            "Figure 6 — MX vs MX+ binary encodings",
            "MXFP4 encodes the BM as S=1,E=11,M=1 (-8.0); MXFP4+ repurposes the "
            "exponent field (SMMM) giving -10.0; shared scale unchanged at 2^1.",
            [
                f"- MXFP4 codes {fig6['mxfp4_codes']}, dequant {fig6['mxfp4_dequant']}",
                f"- MXFP4+ codes {fig6['mxfp4+_codes']}, dequant {fig6['mxfp4+_dequant']}",
                f"- shared exponent {fig6['shared_exp']}, BM index {fig6['bm_index']}",
            ],
            "Reproduced bit-exactly.",
        )

    fig7 = load("fig07_layout")
    if fig7:
        rows = [f"- {k}: {f(v['measured_bits_per_elem'], 2)} bits/elem measured (base {f(v['base_bits_per_elem'], 2)}), BM mantissa {v['bm_effective_mantissa_bits']} bits" for k, v in fig7.items()]
        section(
            L,
            "Figure 7 — MX+ data layout",
            "one extra byte per 32-element block (5-bit BM index + 3 reserved): "
            "+0.25 average bits/element; BMs effectively E2M3/E2M5/E4M7.",
            rows,
            "Reproduced exactly via byte-level packing.",
        )

    f11a = load("fig11a_breakdown")
    f11b = load("fig11b_output_sweep")
    if f11a and f11b:
        rows = [f"- {k}: prefill {f(v['prefill_ms'], 1)} ms, decode {f(v['decode_ms'], 1)} ms" for k, v in f11a.items()]
        rows += [f"- output {k}: A-MXFP4+ {f(v['a-mxfp4+'])}, MXFP8 {f(v['mxfp8'])} (normalized to MXFP4)" for k, v in f11b.items()]
        section(
            L,
            "Figure 11 — software-integration execution time",
            "decode dominates and is memory-bound: A-MXFP4+ adds 6.71% there and "
            "1.54x in prefill; overall <=1.13x vs MXFP4, while MXFP8 is up to 1.85x; "
            "the gap narrows as output length grows.",
            rows,
            "Reproduced: prefill ~1.50x, decode ~7%, total ratio shrinking with "
            "output length, MXFP8 far slower throughout.",
        )

    f12 = load("fig12_hw_exec")
    if f12:
        rows = [f"- {k}: {f(v, 4)}x" for k, v in f12.items()]
        section(
            L,
            "Figure 12 — hardware-integration execution time",
            "MXFP4+ with the Tensor-Core BCU runs 0.38% slower than MXFP4 on "
            "average (BCU overlaps the adder tree).",
            rows,
            "Reproduced (0.38% by construction of the calibrated issue-overhead "
            "model; the functional datapath is verified bit-exact in tests).",
        )

    f13 = load("fig13_speedup_accuracy")
    if f13:
        rows = [
            f"- {k}: {f(v['speedup_out8'], 2)}x (out 8), {f(v['speedup_out64'], 2)}x (out 64), avg accuracy {f(v['avg_accuracy'], 1)}%"
            for k, v in f13.items()
        ]
        section(
            L,
            "Figure 13 — end-to-end speedup vs accuracy",
            "MXFP4+ (HW) reaches ~3.3x/2.7x over BF16 with ~20 points more "
            "accuracy than MXFP4 costs; A-MXFP4+ (SW) lands near MXFP4 speed; "
            "A8W4 stays near MXFP8 speed due to the single CUTLASS tile shape.",
            rows,
            "Reproduced: MXFP4+ ~ MXFP4 speed with higher accuracy; A-MXFP4+ "
            "between MXFP4 and MXFP8; A8W4 degraded by the M=128 tile padding.",
        )

    f14 = load("fig14_topk")
    if f14:
        rows = []
        for m, payload in f14.items():
            ppl = payload["perplexity"]
            cov = payload["outlier_coverage"]
            rows.append(
                f"- {m}: ppl none {f(ppl['none(mxfp4)'])} / top1 {f(ppl['top1'])} / top2 {f(ppl['top2'])} / top4 {f(ppl['top4'])}; coverage top1 {f(cov['top1'], 2)} -> top2 {f(cov['top2'], 2)}"
            )
        section(
            L,
            "Figure 14 — top-k outlier promotion",
            "tracking up to two outliers captures most of them; further k gives "
            "diminishing returns, motivating channel reordering over multi-index "
            "tracking.",
            rows,
            "Reproduced: top-1 takes most of the gain, top-2 covers ~100% of "
            "outliers here (two co-located PE channels per block pair), k>2 flat.",
        )

    t2 = load("tab02_tasks")
    if t2:
        rows = []
        for m, grid in t2.items():
            avg = {fmt: sum(v.values()) / len(v) for fmt, v in grid.items()}
            rows.append(
                f"- {m}: avg accuracy BF16 {f(avg['baseline'], 1)} / MXFP8+ {f(avg['mxfp8+'], 1)} / MXFP6+ {f(avg['mxfp6+'], 1)} / MXFP4++ {f(avg['mxfp4++'], 1)} / MXFP4+ {f(avg['mxfp4+'], 1)} / A-MXFP4+ {f(avg['a-mxfp4+'], 1)} / MXFP4 {f(avg['mxfp4'], 1)}"
            )
        section(
            L,
            "Table 2 — zero-shot task accuracy",
            "MX+ improves its MX counterpart at every width; the MXFP4 -> MXFP4+ "
            "gap is the largest (up to +42 points); A-MXFP4+ still beats MXFP4.",
            rows,
            "Reproduced in ordering (MXFP4+ >= MXFP4, A-MXFP4+ between, high-bit "
            "~ baseline); gap magnitudes are smaller at this model scale.",
        )

    t3 = load("tab03_perplexity")
    if t3:
        rows = []
        for m, grids in t3.items():
            r = grids["wiki2-sim@128"]
            rows.append(
                f"- {m} (wiki2@128): BF16 {f(r['baseline'])} / 8+ {f(r['mxfp8+'])} / 8 {f(r['mxfp8'])} / 6+ {f(r['mxfp6+'])} / 6 {f(r['mxfp6'])} / 4++ {f(r['mxfp4++'])} / 4+ {f(r['mxfp4+'])} / A-4+ {f(r['a-mxfp4+'])} / 4 {f(r['mxfp4'])}"
            )
        section(
            L,
            "Table 3 — perplexity (2 datasets x 2 sequence lengths)",
            "MX+ and MX++ always achieve lower perplexity than the original MX "
            "formats across sequence lengths and datasets.",
            rows,
            "Reproduced: the `always <=` property is asserted per cell across "
            "all 24 (model, dataset, length) combinations.",
        )

    t4 = load("tab04_conversion")
    if t4:
        rows = [f"- {k}: " + ", ".join(f"M={m}: {f(v)}" for m, v in row.items()) for k, row in t4.items()]
        section(
            L,
            "Table 4 — conversion-before-compute matmul time",
            "MXFP4+ 1.07-1.08x at small M, 1.01-1.04x at large M; MXFP4++ "
            "slightly higher.",
            rows,
            "Reproduced (1.07/1.09 small-M, amortizing to ~1.00 at large M).",
        )

    t5 = load("tab05_area")
    if t5:
        rows = [f"- {k}: {f(v.get('area_mm2', 0), 4)} mm^2, {f(v.get('power_mw', 0), 2)} mW" for k, v in t5.items()]
        section(
            L,
            "Table 5 — area/power per Tensor Core",
            "FSU 0.004 mm^2 / 0.59 mW; BM Detector 0.004 / 2.86; BCU 0.012 / "
            "8.66; total 0.020 mm^2, 12.11 mW at 28nm.",
            rows,
            "Reproduced exactly (component model calibrated to the paper's "
            "synthesis results; composition and scaling are modelled).",
        )

    t6 = load("tab06_quant_time")
    if t6:
        rows = [f"- {k} tokens: mxfp4+ {f(v['mxfp4+'], 2)}, mxfp4++ {f(v['mxfp4++'], 2)}" for k, v in t6.items()]
        section(
            L,
            "Table 6 — quantization time",
            "MXFP4+ 1.00-1.05x of MXFP4; MXFP4++ 1.04-1.15x.",
            rows,
            "Shape reproduced on our numpy encoders: MXFP4+ stays within "
            "~1.5x of MXFP4 (near parity at longer inputs; short-input "
            "ratios carry the most wall-clock jitter and can land on either "
            "side of 1.0 on shared CPUs); MXFP4++ pays more (~2x) because "
            "this implementation re-quantizes NBMs in a second full pass "
            "where the paper's fused CUDA kernel does not.",
        )

    t7 = load("tab07_schemes")
    if t7:
        rows = []
        for m, r in t7.items():
            rows.append(
                f"- {m}: SMQ-INT4 {f(r['smq-int4'])} / QuaRot-INT4 {f(r['quarot-int4'])} / Atom {f(r['atom'])} / ANT {f(r['ant'])} / MX-ANT {f(r['mx-ant'])} / OliVe {f(r['olive'])} / MX-OliVe {f(r['mx-olive'])} / Tender {f(r['tender'])} / MX-Tender {f(r['mx-tender'])} / LLM-FP4 {f(r['llm-fp4'])} / MXFP4+ {f(r['mxfp4+'])} / MXFP4++ {f(r['mxfp4++'])}"
            )
        section(
            L,
            "Table 7 — comparison with other quantization schemes",
            "SMQ fails at 4-bit; QuaRot leaves residual outliers; Atom is "
            "competitive; ANT/OliVe/Tender suffer at coarse granularity and "
            "improve as MX-* variants; LLM-FP4 trails MXFP4; MX+ wins overall.",
            rows,
            "Reproduced: per-tensor schemes trail their MX-* group-32 variants; "
            "MXFP4+/++ lead on the outlier-heavy models; LLM-FP4 trails MXFP4+. "
            "Deviation: our SMQ/Atom rows are relatively stronger than the "
            "paper's because the synthetic outliers are perfectly "
            "channel-stationary — the ideal case for per-channel migration.",
        )

    t8 = load("tab08_weight_only")
    if t8:
        rows = [
            f"- {m}: AWQ-INT4 {f(r['awq-int4'])} / AWQ-MXFP4 {f(r['awq-mxfp4'])} / AWQ-MXFP4+ {f(r['awq-mxfp4+'])} / A8-W-MXFP4 {f(r['a8-w-mxfp4'])} / A8-W-MXFP4+ {f(r['a8-w-mxfp4+'])}"
            for m, r in t8.items()
        ]
        section(
            L,
            "Table 8 — weight-only quantization",
            "AWQ+MXFP4 degrades vs AWQ-INT4 but AWQ+MXFP4+ recovers (scaled "
            "salient weights become BMs); MXFP4+ weights beat MXFP4 under "
            "MXFP8 activations.",
            rows,
            "Reproduced: both MXFP4+ columns improve on their MXFP4 versions.",
        )

    t9 = load("tab09_vision")
    if t9:
        rows = [
            f"- {m}: FP32 {f(r['fp32'], 1)} / direct MXFP4 {f(r['direct_mxfp4'], 1)} / direct MXFP4+ {f(r['direct_mxfp4+'], 1)} / QAT MXFP4 {f(r['qat_mxfp4'], 1)} / QAT MXFP4+ {f(r['qat_mxfp4+'], 1)}"
            for m, r in t9.items()
        ]
        section(
            L,
            "Table 9 — vision models (direct-cast + QA fine-tuning)",
            "MXFP4+ beats MXFP4 under direct-cast (up to +13 points on CNNs); "
            "QA fine-tuning narrows the gap.",
            rows,
            "Reproduced: MXFP4+ >= MXFP4 in direct-cast; QAT recovers accuracy "
            "and narrows the format gap.",
        )

    t10 = load("tab10_mxint")
    if t10:
        rows = [
            f"- {m}: MXINT8+ {f(r['mxint8+'])} / MXINT8 {f(r['mxint8'])} / MXINT4+ {f(r['mxint4+'])} / MXINT4 {f(r['mxint4'])}"
            for m, r in t10.items()
        ]
        section(
            L,
            "Table 10 — MX+ on integer microscaling formats",
            "the extra BM fraction bit barely moves MXINT8 but clearly helps "
            "the hypothetical MXINT4.",
            rows,
            "Reproduced (MXINT8 delta <1%; MXINT4+ visibly better than MXINT4).",
        )

    t11 = load("tab11_nvfp4")
    if t11:
        rows = []
        for m, payload in t11.items():
            acc = payload["accuracy"]
            avg4 = sum(acc["nvfp4"].values()) / len(acc["nvfp4"])
            avg4p = sum(acc["nvfp4+"].values()) / len(acc["nvfp4+"])
            ppl = payload["perplexity"]
            rows.append(
                f"- {m}: NVFP4 acc {f(avg4, 1)} -> NVFP4+ {f(avg4p, 1)}; ppl NVFP4 {f(ppl['nvfp4'])} -> NVFP4+ {f(ppl['nvfp4+'])} (MXFP4+ {f(ppl['mxfp4+'])})"
            )
        section(
            L,
            "Table 11 — NVFP4 and NVFP4+",
            "NVFP4+ (extra BM precision, 4-bit index per 16-block) beats NVFP4; "
            "MXFP4+/++ compare favourably with NVFP4.",
            rows,
            "Reproduced: NVFP4+ >= NVFP4; NVFP4 sits between MXFP4 and MXFP4+.",
        )

    t12 = load("tab12_reorder")
    if t12:
        rows = []
        for m, payload in t12.items():
            base = sum(payload["mxfp4+"].values()) / len(payload["mxfp4+"])
            re = sum(payload["reorder"].values()) / len(payload["reorder"])
            rows.append(f"- {m}: MXFP4+ avg {f(base, 1)} -> with reordering {f(re, 1)}")
        section(
            L,
            "Table 12 — channel reordering",
            "reordering the query/key channels raises MXFP4+ accuracy by "
            "scattering co-located outliers so each becomes a BM.",
            rows,
            "Mechanism reproduced (multi-outlier block rate collapses; exact "
            "matmul invariance verified); accuracy deltas are small at this "
            "scale because the stand-ins have few outlier channel pairs.",
        )

    t13 = load("tab13_matrix")
    if t13:
        rows = [f"- {k}: compute-efficient {v['compute_efficiency']}, standard {v['standard_general']}, high-accuracy {v['high_accuracy']}" for k, v in t13.items()]
        section(
            L,
            "Table 13 — qualitative scheme comparison",
            "only MX+ combines compute efficiency, standard formats, and high "
            "accuracy.",
            rows,
            "Reproduced by construction (encodes the paper's claims; the "
            "accuracy column is corroborated by Table 7's measurements).",
        )

    se = load("serving_engine")
    if se:
        rows = [
            f"- {k}: {f(v['throughput_tok_s'], 0)} tok/s, TTFT {f(v['mean_ttft_ms'], 1)} ms, "
            f"TPOT {f(v['mean_tpot_ms'], 2)} ms, {f(v['speedup_vs_bf16'], 2)}x vs BF16"
            for k, v in se.items()
        ]
        section(
            L,
            "§7 serving — request-level engine (continuous batching)",
            "serving-level speedups mirror the Figure 13 stage-level story: "
            "MXFP4-family ~3x over BF16, A-MXFP4+ pays its extra sparse MMA "
            "mostly in TTFT (prefill), hardware MX+ tracks MXFP4.",
            rows,
            "Reproduced: ordering MXFP4 > MXFP8 > BF16 asserted; uniform "
            "batches reconcile exactly with `simulate_inference`.",
        )

    sc = load("serving_cluster")
    if sc:
        cap = sc["capacity"]
        rows = [
            f"- {k}: {f(v['kv_bytes_per_token'] / 1024, 0)} KB/token, capacity "
            f"{v['capacity_tokens']} tok, peak concurrency {v['peak_running']}, "
            f"{f(v['throughput_tok_s'], 0)} tok/s"
            for k, v in cap.items()
        ]
        pc = sc["prefix_caching"]
        rows.append(
            f"- prefix caching (MXFP4+ chat): TTFT "
            f"{f(pc['shared-prefix']['mean_ttft_ms'], 1)} ms with sharing vs "
            f"{f(pc['no-sharing']['mean_ttft_ms'], 1)} ms without "
            f"({pc['shared-prefix']['prefix_hits']} hits, "
            f"{pc['shared-prefix']['prefix_tokens_reused']} tokens reused)"
        )
        rows.append(
            "- routers (4 replicas, 4 system prompts): "
            + "; ".join(
                f"{k} {v['prefix_hits']} hits/{v['prefix_misses']} misses"
                for k, v in sc["routers"].items()
            )
        )
        rows.append(
            "- scaling: "
            + ", ".join(
                f"{k} {f(v['throughput_tok_s'], 0)} tok/s"
                for k, v in sc["scaling"].items()
            )
        )
        section(
            L,
            "§7 serving — paged-KV cluster at equal page budget "
            f"({sc['page_budget_gib']} GiB/replica)",
            "the MX+ KV footprint (4.5 vs 16 bits/elem) becomes serving "
            "capacity: more admissible concurrent requests at the same GPU "
            "memory, fewer preemptions, higher throughput; shared system "
            "prompts stored once cut TTFT; fleet throughput scales with "
            "replicas.",
            rows,
            "Reproduced: MX+ recipes hold >3x BF16's tokens and admit "
            "strictly more concurrent requests at equal page budget; prefix "
            "caching cuts mean TTFT ~2x on the chat workload; the 1-replica "
            "cluster reconciles exactly with the single engine.",
        )

    sp = load("scheduler_policies")
    if sp:
        rows = []
        for recipe, policies in sp["policies"].items():
            for sched, v in policies.items():
                rows.append(
                    f"- {recipe} / {sched}: p99 TTFT {f(v['p99_ttft_ms'], 1)} ms, "
                    f"mean TTFT {f(v['mean_ttft_ms'], 1)} ms, TPOT "
                    f"{f(v['mean_tpot_ms'], 2)} ms, {f(v['throughput_tok_s'], 0)} tok/s"
                )
        rows.append(
            "- chunking win (p99 TTFT, prefill-first / chunked): "
            + ", ".join(
                f"{k} {f(v, 3)}x" for k, v in sp["chunking_win_p99"].items()
            )
        )
        section(
            L,
            "§7 serving — scheduler policies on bursty long prompts "
            f"({sp['page_budget_gib']} GiB pages)",
            "Sarathi-style chunked prefill removes prefill head-of-line "
            "blocking: decodes and KV page turnover keep flowing during "
            "prompt processing, so tail TTFT improves at equal page budget; "
            "decode-priority brackets the other extreme (best TPOT, worst "
            "queueing tail).",
            rows,
            "Reproduced: chunked prefill strictly improves p99 TTFT and "
            "throughput for both formats; the win is larger for MX+ because "
            "its 4.5-bit KV pages keep a whole decode batch resident where "
            "BF16 degenerates toward serial service.",
        )

    dg = load("disagg_serving")
    if dg:
        rows = []
        for recipe, links in dg["disagg"].items():
            for link, v in links.items():
                rows.append(
                    f"- {recipe} / {link}: p99 TTFT {f(v['p99_ttft_ms'], 1)} ms, "
                    f"TPOT {f(v['mean_tpot_ms'], 2)} ms, goodput "
                    f"{f(v['goodput_tok_s'], 0)} tok/s, "
                    f"{f(v['transfer_bytes_per_request'] / 1e6, 1)} MB/request "
                    f"migrated, link stall {f(v['transfer_stall_ms_total'], 1)} ms"
                )
        rows.append(
            "- unified 2-replica baseline p99 TTFT: "
            + ", ".join(
                f"{k} {f(v['p99_ttft_ms'], 1)} ms"
                for k, v in dg["unified_2_replicas"].items()
            )
        )
        rows.append(
            f"- infinite-bandwidth reconciliation vs unified cluster: max abs "
            f"err {f(dg['reconciliation']['max_abs_err_s'], 3)} s"
        )
        section(
            L,
            "§7 serving — disaggregated prefill/decode pools "
            f"({dg['page_budget_gib']} GiB pages, "
            f"{dg['pools']['prefill']} prefill + {dg['pools']['decode']} decode)",
            "DistServe/Splitwise-style disaggregation isolates TTFT from decode "
            "interference at the price of migrating each request's KV across an "
            "interconnect; MX+'s ~4.5-bit KV shrinks exactly those migration "
            "bytes (~3.6x less than BF16 per request).",
            rows,
            "Reproduced: TTFT is bit-identical across all interconnects (first "
            "token is produced in the prefill pool before any migration) and "
            "its tail beats the colocated 2-replica baseline for both formats; "
            "MX+ migrates >3x fewer bytes/request and keeps its goodput lead "
            "at every bandwidth; the infinite-bandwidth run reconciles exactly "
            "with the unified cluster. Nuance kept honest by the artifact: "
            "with a contended decode pool, a slower link throttles admissions "
            "and *reduces* preemption thrash, so TPOT is not monotone in "
            "bandwidth — the serialized link-stall seconds strictly are.",
        )

    tf = load("tune_frontier")
    if tf:
        rows = []
        for p in tf["frontier"]["points"]:
            recipe = p["recipe"]
            rows.append(
                f"- `{recipe['name']}` ({p['origin']}): ppl {f(p['perplexity'])}, "
                f"{f(p['tokens_per_s'], 0)} tok/s"
            )
        winner = tf.get("winner")
        base = tf["uniform"].get(tf.get("baseline", "mxfp4"), {})
        if winner and base:
            rows.append(
                f"- **winner vs uniform {tf['baseline']}**: ppl "
                f"{f(winner['perplexity'])} < {f(base['perplexity'])}, "
                f"{f(winner['tokens_per_s'], 0)} > {f(base['tokens_per_s'], 0)} tok/s"
            )
        section(
            L,
            "Beyond the paper — autotuned recipe Pareto frontier",
            "NxFP (arXiv:2412.19821) and MXFP8 pre-training recipes "
            "(arXiv:2506.08027) show searched per-tensor/per-layer format "
            "assignments beat uniform casts; repro.tune searches the MX+ "
            "design space per layer/role.",
            rows,
            "A searched mixed MX+/MXFP recipe Pareto-dominates uniform MXFP4 "
            "(strictly lower perplexity, strictly higher simulated serving "
            "tokens/s); the artifact reproduces byte-identically from seed 0.",
        )

    bs = load("BENCH_sweep")
    if bs:
        rows = []
        for cell in bs["cells"].values():
            a, r = cell["axes"], cell["result"]
            tag = ""
            if cell is bs["cells"].get(bs.get("winner")):
                tag = " **(winner)**"
            elif cell is bs["cells"].get(bs.get("baseline")):
                tag = " (baseline)"
            rows.append(
                f"- {a['recipe']} / {a['scheduler']} / {a['fleet']} / "
                f"{a['interconnect']}{tag}: "
                f"{f(r['pricing']['dollars_per_mtok'], 4)} $/Mtok, goodput "
                f"{f(r['goodput_tok_s'], 0)} tok/s, p99 TTFT "
                f"{f(r['p99_ttft_ms'], 1)} ms, SLO att. {f(r['slo_attainment'], 2)}"
            )
        perf = bs["perf"]
        rows.append(
            f"- wall clock (machine-dependent, excluded from identity checks): "
            f"{f(perf['simulated_requests'], 0)} simulated requests at "
            f"{f(perf['requests_per_wall_s'], 1)} req/s of real time"
        )
        section(
            L,
            "Beyond the paper — canonical sweep matrix ($/Mtok at SLO)",
            "MLPerf-style declarative sweeps (recipes x schedulers x fleet "
            "shapes x interconnects) turn the per-axis serving stories into "
            "one priced comparison: every cell's $/Mtok derives from "
            "CostModel x the committed GPU price table, never hand-entered.",
            rows,
            "The MX+ recipe is cheaper than BF16 in every matched cell "
            "(~10x at this model scale) and wins the sweep at the SLO bar; "
            "disaggregated cells record their KV-migration bytes (~3.6x "
            "smaller for MX+); the deterministic sections regenerate "
            "byte-identically from seed 0 and are gated by "
            "`python -m repro.bench freshness` in CI.",
        )

    es = load("encode_speed")
    if es:
        section(
            L,
            "Infrastructure — batched MX+ encode speed",
            "the tuner's sensitivity/search loop re-encodes every matmul "
            "operand; the encode path must stay whole-tensor vectorized.",
            [
                f"- 4096x4096 MXFP4+ encode: batched {f(es['batched_s'])} s vs "
                f"per-block reference {f(es['reference_s_extrapolated'])} s "
                f"(extrapolated) -> {f(es['speedup'], 1)}x",
            ],
            "Asserted >=2x; the reference implementation doubles as the "
            "property-test oracle for the batched encoder.",
        )

    ob = load("BENCH_obs_overhead")
    if ob:
        off, on = ob["tracing_off"], ob["tracing_on"]
        section(
            L,
            "Infrastructure — tracing overhead",
            "observability must be free when off and must not perturb when "
            "on: every emit site in the serving stack is a single "
            "nullable-tracer check.",
            [
                f"- tracing off: {f(off['rps'], 0)} req/s at 100k requests, "
                f"{f(off['overhead_pct_vs_baseline'], 2)}% below the "
                f"committed event-loop baseline "
                f"({f(ob['baseline_single_rps_100k'], 0)} req/s; gate <= "
                f"{f(ob['max_off_overhead_pct'], 0)}%)",
                f"- tracing on (capped flight recorder + throttled "
                f"metrics): {f(on['rps'], 0)} req/s "
                f"({f(on['slowdown_x_vs_off'], 2)}x vs off); "
                f"{on['events_appended']} events appended, newest "
                f"{on['events_kept']} kept by the ring",
                f"- traced FleetResult bit-identical to untraced: "
                f"{ob['fingerprint_identical']}",
            ],
            "Both gates assert before the artifact saves: the off-path "
            "stays within 5% of the committed rate and tracing never "
            "perturbs the simulation.",
        )

    for name, title in [
        ("ablation_mxpp_offset", "Ablation — MX++'s +1 offset"),
        ("ablation_block_size", "Ablation — block size sweep"),
        ("ablation_flush", "Ablation — flush-to-zero rule"),
        ("ablation_outlier_scale", "Ablation — outlier scale sweep"),
    ]:
        data = load(name)
        if data:
            L.append(f"## {title}\n")
            L.append("```json")
            L.append(json.dumps(data, indent=2)[:1200])
            L.append("```\n")

    OUT.write_text("\n".join(L))
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
