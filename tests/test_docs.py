"""Documentation checks: doctests over the public `repro.serve` and
`repro.tune` APIs, doctested tutorial pages (SERVING_GUIDE.md), the
generated-API freshness + docstring-coverage gates, and a markdown link
check over README + docs/.

Runs in tier-1 and as the CI docs job, so examples in docstrings stay
runnable, generated pages stay fresh, and links stay unbroken.
"""

import doctest
import importlib.util
import re
from pathlib import Path

import pytest

import repro.bench.matrix
import repro.bench.pricing
import repro.bench.report
import repro.gpu.inference
import repro.obs.export
import repro.obs.metrics
import repro.obs.record
import repro.obs.trace
import repro.serve
import repro.serve.cluster
import repro.serve.engine
import repro.serve.kvcache
import repro.serve.recipe
import repro.serve.sched
import repro.serve.workload
import repro.tune.cost
import repro.tune.frontier
import repro.tune.pricing
import repro.tune.search
import repro.tune.sensitivity

REPO = Path(__file__).resolve().parents[1]

DOCTEST_MODULES = [
    repro.serve.recipe,
    repro.serve.kvcache,
    repro.serve.engine,
    repro.serve.sched,
    repro.serve.workload,
    repro.serve.cluster,
    repro.tune.frontier,
    repro.tune.cost,
    repro.tune.search,
    repro.tune.sensitivity,
    repro.tune.pricing,
    repro.gpu.inference,
    repro.bench.matrix,
    repro.bench.pricing,
    repro.bench.report,
    repro.obs.trace,
    repro.obs.metrics,
    repro.obs.export,
    repro.obs.record,
]

#: Markdown pages whose ``>>>`` snippets must run (tutorial doctests).
DOCTESTED_PAGES = ["docs/SERVING_GUIDE.md"]


def _load_api_generator():
    """Import benchmarks/make_api_reference.py (not an installed package)."""
    spec = importlib.util.spec_from_file_location(
        "make_api_reference", REPO / "benchmarks" / "make_api_reference.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_serve_doctests(module):
    results = doctest.testmod(module, verbose=False, report=True)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


@pytest.mark.parametrize("page", DOCTESTED_PAGES)
def test_markdown_page_doctests(page):
    """Tutorial pages are executable: every `>>>` snippet must pass."""
    results = doctest.testfile(
        str(REPO / page), module_relative=False, verbose=False, report=True
    )
    assert results.attempted > 10, f"{page} lost its doctest snippets"
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {page}"


def test_api_reference_docstring_coverage():
    """Every public symbol/method/property in repro.serve + repro.tune
    must carry a docstring (the generator aborts otherwise)."""
    gen = _load_api_generator()
    missing = gen.check_coverage()
    assert not missing, f"undocumented public API: {missing}"


def test_api_reference_is_fresh():
    """docs/API.md must match a regeneration from the live docstrings
    (the in-process mirror of the CI `git diff --exit-code` gate)."""
    gen = _load_api_generator()
    committed = (REPO / "docs" / "API.md").read_text()
    assert committed == gen.build_api_md(), (
        "docs/API.md is stale — regenerate with "
        "`PYTHONPATH=src python benchmarks/make_api_reference.py`"
    )


def _markdown_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return files


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


@pytest.mark.parametrize("md", _markdown_files(), ids=lambda p: p.name)
def test_markdown_links_resolve(md):
    """Every relative markdown link must point at an existing file."""
    broken = []
    for target in _LINK.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue  # intra-page anchor
        if not (md.parent / path).exists():
            broken.append(target)
    assert not broken, f"broken links in {md.relative_to(REPO)}: {broken}"


def test_experiments_md_exists_and_indexes_every_benchmark():
    """docs/EXPERIMENTS.md is generated and must cover all benchmarks."""
    text = (REPO / "docs" / "EXPERIMENTS.md").read_text()
    for bench in sorted((REPO / "benchmarks").glob("test_*.py")):
        assert f"benchmarks/{bench.name}" in text, (
            f"{bench.name} missing from docs/EXPERIMENTS.md — add it to "
            "BENCHMARK_INDEX and rerun benchmarks/make_experiments_md.py"
        )


def test_architecture_md_names_real_modules():
    """The architecture walkthrough must not drift from the source tree."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    for mod in re.findall(r"`(?:core|gpu|nn|eval|serve|models|data)/\w+\.py`", text):
        rel = mod.strip("`")
        assert (REPO / "src" / "repro" / rel).exists(), f"ARCHITECTURE.md names missing module {rel}"
