"""Unit tests for the repro.tune autotuner and its recipe threading."""

import json

import numpy as np
import pytest

from repro.gpu.inference import step_time
from repro.gpu.spec import RTX5090
from repro.models.zoo import ARCHS
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve.recipe import QuantRecipe, get_recipe
from repro.tune import (
    CostModel,
    FrontierPoint,
    ParetoFrontier,
    SensitivityReport,
    evolutionary_search,
    greedy_bit_descent,
    probe_recipe,
    recipe_from_assignment,
)

ARCH = ARCHS["llama-2-7b"]


def _point(name, ppl, tok_s, origin="search"):
    return FrontierPoint(
        recipe=QuantRecipe.from_name(name),
        perplexity=ppl,
        tokens_per_s=tok_s,
        kv_bytes_per_token=1.0,
        origin=origin,
    )


class TestFrontier:
    def test_dominance(self):
        a = _point("mxfp4", 10.0, 100.0)
        b = _point("mxfp8", 12.0, 90.0)
        c = _point("mxfp6", 10.0, 100.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)  # equal: no strict edge

    def test_add_evicts_dominated(self):
        f = ParetoFrontier()
        assert f.add(_point("mxfp8", 12.0, 90.0))
        assert f.add(_point("mxfp4", 10.0, 100.0))  # dominates mxfp8
        assert [p.recipe.name for p in f] == ["mxfp4"]
        assert not f.add(_point("mxfp6", 11.0, 95.0))  # dominated on arrival

    def test_duplicate_coordinates_keep_first(self):
        f = ParetoFrontier()
        assert f.add(_point("mxfp4", 10.0, 100.0))
        assert not f.add(_point("mxfp6", 10.0, 100.0))
        assert [p.recipe.name for p in f] == ["mxfp4"]

    def test_sorted_and_best_under(self):
        f = ParetoFrontier()
        f.add(_point("bf16", 9.0, 50.0))
        f.add(_point("mxfp4", 12.0, 100.0))
        f.add(_point("mxfp8", 10.0, 80.0))
        assert [p.recipe.name for p in f] == ["bf16", "mxfp8", "mxfp4"]
        assert f.best_under(10.5).recipe.name == "mxfp8"
        assert f.best_under(8.0) is None

    def test_save_load_roundtrip(self, tmp_path):
        f = ParetoFrontier()
        f.add(_point("mxfp4", 10.0, 100.0))
        f.add(_point("mxfp8", 9.0, 80.0, origin="uniform"))
        path = tmp_path / "frontier.json"
        f.save(path)
        g = ParetoFrontier.load(path)
        assert [p.recipe for p in g] == [p.recipe for p in f]
        assert [p.origin for p in g] == ["uniform", "search"]
        # deterministic serialization
        g.save(tmp_path / "again.json")
        assert path.read_text() == (tmp_path / "again.json").read_text()

    def test_register_roundtrip(self):
        from repro.serve.recipe import _RECIPES

        f = ParetoFrontier()
        recipe = QuantRecipe(
            "tuned-test-roundtrip", act="mxfp4", weight="mxfp4",
            kv="mxfp4-k64", layer_overrides={0: "mxfp4+"}, n_layer_groups=2,
            integration="hardware",
        )
        f.add(FrontierPoint(recipe, 10.0, 100.0, 1.0))
        try:
            f.register()
            assert get_recipe("tuned-test-roundtrip") == recipe
        finally:
            _RECIPES.pop("tuned-test-roundtrip", None)


class TestRecipeOverrides:
    def test_dict_normalized_to_sorted_tuple(self):
        r = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={3: "mxfp4+", 1: "mxfp8"})
        assert r.layer_overrides == ((1, "mxfp8"), (3, "mxfp4+"))
        assert r.overrides == {1: "mxfp8", 3: "mxfp4+"}
        assert hash(r)  # stays hashable for registries and memo keys

    def test_validation(self):
        with pytest.raises(KeyError, match="unknown layer 0 format"):
            QuantRecipe("m", layer_overrides={0: "nope"})
        with pytest.raises(ValueError, match="negative layer"):
            QuantRecipe("m", layer_overrides={-1: "mxfp4"})
        with pytest.raises(ValueError, match="duplicate layer"):
            QuantRecipe("m", layer_overrides=((0, "mxfp4"), (0, "mxfp8")))
        with pytest.raises(ValueError, match="outside the declared"):
            QuantRecipe("m", layer_overrides={2: "mxfp4"}, n_layer_groups=2)

    def test_overrides_satisfy_integration_requirement(self):
        r = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={0: "mxfp4+"}, integration="hardware")
        assert r.integration == "hardware"
        with pytest.raises(ValueError, match="requires an MX"):
            QuantRecipe("m", act="mxfp4", weight="mxfp4", integration="hardware")

    def test_spread_overrides(self):
        r = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={1: "mxfp4+"}, n_layer_groups=2)
        assert r.spread_overrides(4) == {2: "mxfp4+", 3: "mxfp4+"}
        assert r.spread_overrides(2) == {1: "mxfp4+"}
        # physical indexing passes through, dropping out-of-range layers
        p = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={0: "mxfp4+", 7: "mxfp8"})
        assert p.spread_overrides(4) == {0: "mxfp4+"}

    def test_dict_roundtrip_with_overrides(self):
        r = QuantRecipe("m", act="mxfp4", weight="mxfp4", kv="mxfp4-k64",
                        lm_head="mxfp4+", layer_overrides={1: "mxfp4+"},
                        n_layer_groups=2, integration="hardware")
        assert QuantRecipe.from_dict(r.to_dict()) == r
        assert json.loads(json.dumps(r.to_dict())) == r.to_dict()

    def test_mxplus_block_variant_name_implies_hardware(self):
        # "+" anywhere in a plain format name classifies as MX+ family, so
        # the uniform ladder and recipe_from_assignment agree on pricing.
        assert QuantRecipe.from_name("mxfp4+-k64").integration == "hardware"
        assert QuantRecipe.from_name("mxfp4-k64").integration == "none"
        uniform = QuantRecipe.from_name("mxfp4+-k64")
        searched = recipe_from_assignment(
            {"layer:0": "mxfp4+-k64", "layer:1": "mxfp4+-k64",
             "lm_head": "mxfp4+-k64", "kv": "mxfp4+-k64"}, n_layers=2,
        )
        groups = [(4, 512)]
        assert step_time(RTX5090, ARCH, uniform, groups) == pytest.approx(
            step_time(RTX5090, ARCH, searched, groups)
        )

    def test_group_spread_layer_context(self):
        # Physical block i of an n-layer model resolves to the group whose
        # band [g*n/G, (g+1)*n/G) contains it — the exact inverse of the
        # timing path's band spreading.
        r = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={1: "mxfp4+"}, n_layer_groups=2)
        qc = r.to_context()
        assert qc.n_layer_groups == 2
        # 4-layer model: upper band (layers 2, 3) carries the override
        assert qc.layer_context(1, n_layers=4) is qc
        assert qc.layer_context(2, n_layers=4).act.name == "mxfp4+"
        assert qc.layer_context(3, n_layers=4).act.name == "mxfp4+"
        # matching layer count: identity mapping
        assert qc.layer_context(1, n_layers=2).act.name == "mxfp4+"

    def test_group_spread_layer_context_non_divisible(self):
        # When G does not divide n, the numeric path must still agree with
        # spread_layer_overrides layer for layer (3 layers, 2 groups:
        # group 1's band is [1, 3), so layers 1 AND 2 carry the override).
        from repro.gpu.inference import spread_layer_overrides

        r = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={1: "mxfp4+"}, n_layer_groups=2)
        qc = r.to_context()
        for n_layers in (3, 5, 7):
            spread = spread_layer_overrides(r.layer_overrides, 2, n_layers)
            for i in range(n_layers):
                ctx = qc.layer_context(i, n_layers=n_layers)
                assert (ctx.act.name == "mxfp4+") == (i in spread), (
                    f"layer {i}/{n_layers}: numeric and timing paths disagree"
                )

    def test_to_context_builds_layer_contexts(self):
        r = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                        layer_overrides={1: "mxfp4+", 2: "bf16"})
        qc = r.to_context()
        assert qc.layer_context(0) is qc
        assert qc.layer_context(1).act.name == "mxfp4+"
        assert qc.layer_context(1).layer_overrides == {}
        assert qc.layer_context(2).act is None  # bf16 override
        assert qc.act.name == "mxfp4"

    def test_layer_override_changes_model_output(self):
        cfg = TransformerConfig(vocab_size=32, dim=32, n_layers=2, n_heads=2,
                                hidden=64, seed=0)
        model = TransformerLM(cfg)
        tokens = (np.arange(20) % 32)[None, :]
        uniform = QuantRecipe("u", act="mxfp4", weight="mxfp4")
        mixed = uniform.with_(name="x", layer_overrides={1: "mxfp8+"})
        bf16ish = uniform.with_(name="y", layer_overrides={0: "bf16", 1: "bf16"})
        p_uniform = model.perplexity(tokens, uniform.to_context())
        p_mixed = model.perplexity(tokens, mixed.to_context())
        p_relaxed = model.perplexity(tokens, bf16ish.to_context())
        assert p_mixed != p_uniform
        # overriding every layer back to bf16 still quantizes the LM head
        assert p_relaxed != p_uniform


class TestStepTimeThreading:
    def test_mixed_recipe_between_uniform_bounds(self):
        groups = [(8, 1024)]
        t4 = step_time(RTX5090, ARCH, "mxfp4", groups)
        t4p = step_time(RTX5090, ARCH, "mxfp4+", groups)
        mix = QuantRecipe("m", act="mxfp4", weight="mxfp4",
                          layer_overrides={1: "mxfp4+"}, n_layer_groups=2,
                          integration="hardware")
        tm = step_time(RTX5090, ARCH, mix, groups)
        assert t4 < tm < t4p

    def test_group_spread_matches_explicit_physical_overrides(self):
        groups = [(4, 512)]
        grouped = QuantRecipe("g", act="mxfp4", weight="mxfp4",
                              layer_overrides={1: "mxfp8"}, n_layer_groups=2)
        half = ARCH.n_layers // 2
        physical = QuantRecipe(
            "p", act="mxfp4", weight="mxfp4",
            layer_overrides={i: "mxfp8" for i in range(half, ARCH.n_layers)},
        )
        assert step_time(RTX5090, ARCH, grouped, groups) == pytest.approx(
            step_time(RTX5090, ARCH, physical, groups)
        )

    def test_hardware_factor_only_on_mxplus_layers(self):
        # A plain-format base under integration="hardware" must not pay the
        # BCU factor on its layers — only the MX+ override layers do.
        # (Compute-bound prefill-sized group: the factor scales compute.)
        groups = [(8192, 1024)]
        mix_hw = QuantRecipe("hw", act="mxfp4", weight="mxfp4",
                             layer_overrides={1: "mxfp4+"}, n_layer_groups=2,
                             integration="hardware")
        mix_none = mix_hw.with_(name="none", integration="none")
        delta_mixed = step_time(RTX5090, ARCH, mix_hw, groups) - step_time(
            RTX5090, ARCH, mix_none, groups
        )
        uniform_plus = QuantRecipe("up", act="mxfp4+", weight="mxfp4+",
                                   integration="hardware")
        uniform_none = uniform_plus.with_(name="un", integration="none")
        delta_uniform = step_time(RTX5090, ARCH, uniform_plus, groups) - step_time(
            RTX5090, ARCH, uniform_none, groups
        )
        assert 0 <= delta_mixed < delta_uniform

    def test_kv_format_changes_attention_cost(self):
        groups = [(4, 4096)]
        base = QuantRecipe("a", act="mxfp4", weight="mxfp4")
        fat_kv = base.with_(name="b", kv="mxfp8")
        assert step_time(RTX5090, ARCH, fat_kv, groups) > step_time(
            RTX5090, ARCH, base, groups
        )

    def test_lm_head_format_changes_cost(self):
        groups = [(4, 512)]
        base = QuantRecipe("a", act="mxfp4", weight="mxfp4")
        fat_head = base.with_(name="b", lm_head="mxfp8")
        assert step_time(RTX5090, ARCH, fat_head, groups) > step_time(
            RTX5090, ARCH, base, groups
        )


class TestCostModel:
    def test_kv_footprint_sets_concurrency(self):
        cost = CostModel(ARCH)
        assert cost.concurrency("mxfp4") > 3 * cost.concurrency("bf16")
        lean = cost.evaluate("mxfp4")
        fat = cost.evaluate("bf16")
        assert lean.tokens_per_s > fat.tokens_per_s
        assert lean.score == lean.tokens_per_s

    def test_leaner_kv_wins_at_equal_layers(self):
        cost = CostModel(ARCH)
        base = QuantRecipe("a", act="mxfp4", weight="mxfp4")
        lean_kv = base.with_(name="b", kv="mxfp4-k64")
        assert cost.evaluate(lean_kv).tokens_per_s > cost.evaluate(base).tokens_per_s


def _synthetic_report(ladder=("bf16", "mxfp8+", "mxfp4"), n_layers=2,
                      kv_ladder=("mxfp8", "mxfp4")):
    fmts = [f for f in dict.fromkeys(ladder + kv_ladder) if f != "bf16"]
    cells = {}
    roles = [f"layer:{i}" for i in range(n_layers)] + ["lm_head", "kv"]
    for r, role in enumerate(roles):
        # layer 0 is the sensitive one; narrower formats hurt more.
        weight = 3.0 if role == "layer:0" else 0.3
        cells[role] = {
            fmt: 10.0 + weight * (i + 1) for i, fmt in enumerate(fmts)
        }
    return SensitivityReport(
        model="synthetic", corpus="synthetic", batch=1, seq_len=1,
        n_layers=n_layers, formats=tuple(fmts), baseline_ppl=10.0, cells=cells,
    )


class TestSensitivityReport:
    def test_predict_is_additive(self):
        report = _synthetic_report()
        assignment = {"layer:0": "mxfp8+", "layer:1": "mxfp4",
                      "lm_head": "bf16", "kv": "mxfp8+"}
        expected = 10.0 + 3.0 + 0.6 + 0.0 + 0.3
        assert report.predict(assignment) == pytest.approx(expected)

    def test_ranked_roles(self):
        report = _synthetic_report()
        assert report.ranked_roles("mxfp4")[0][0] == "layer:0"

    def test_payload_roundtrip(self):
        report = _synthetic_report()
        clone = SensitivityReport.from_payload(
            json.loads(json.dumps(report.to_payload()))
        )
        assert clone == report


class TestProbeRecipe:
    def test_probe_shapes(self):
        r = probe_recipe("layer:1", "mxfp4", 2)
        assert r.overrides == {1: "mxfp4"} and r.act == "bf16"
        assert probe_recipe("lm_head", "mxfp6", 2).lm_head == "mxfp6"
        assert probe_recipe("kv", "mxfp8", 2).kv == "mxfp8"
        with pytest.raises(KeyError):
            probe_recipe("embedding", "mxfp4", 2)


class TestRecipeFromAssignment:
    def test_majority_base_and_overrides(self):
        r = recipe_from_assignment(
            {"layer:0": "mxfp4+", "layer:1": "mxfp4", "layer:2": "mxfp4",
             "lm_head": "mxfp4+", "kv": "mxfp4-k64"},
            n_layers=3,
        )
        assert (r.act, r.weight) == ("mxfp4", "mxfp4")
        assert r.overrides == {0: "mxfp4+"}
        assert r.n_layer_groups == 3
        assert r.integration == "hardware"
        assert r.kv == "mxfp4-k64" and r.lm_head == "mxfp4+"

    def test_no_mxplus_means_no_integration(self):
        r = recipe_from_assignment(
            {"layer:0": "mxfp4", "layer:1": "mxfp4", "lm_head": "bf16",
             "kv": "mxfp4"},
            n_layers=2,
        )
        assert r.integration == "none"

    def test_deterministic_name(self):
        a = {"layer:0": "mxfp4+", "layer:1": "mxfp4", "lm_head": "bf16",
             "kv": "mxfp4"}
        assert (
            recipe_from_assignment(a, 2).name
            == recipe_from_assignment(dict(reversed(a.items())), 2).name
            == "tuned-mxfp4p-mxfp4-h.bf16-kv.mxfp4"
        )


class TestSearchers:
    LADDER = ("bf16", "mxfp8+", "mxfp4")
    KV = ("mxfp8", "mxfp4")

    def _run(self, searcher, **kw):
        report = _synthetic_report(self.LADDER)
        cost = CostModel(ARCH)
        return searcher(
            report, cost, measure_ppl=lambda r: report.predict(
                {**{f"layer:{i}": r.layer_format(i) for i in range(2)},
                 "lm_head": r.lm_head if r.lm_head != "auto" else r.weight,
                 "kv": r.kv if r.kv != "auto" else r.act}
            ),
            ladder=self.LADDER, kv_ladder=self.KV, **kw,
        )

    def test_greedy_deterministic_and_nondominated(self):
        f1 = self._run(greedy_bit_descent)
        f2 = self._run(greedy_bit_descent)
        assert [p.recipe for p in f1] == [p.recipe for p in f2]
        for p in f1:
            assert not f1.dominating(p)
        assert len(f1) >= 2

    def test_greedy_respects_ppl_budget(self):
        frontier = self._run(greedy_bit_descent, max_ppl=12.0)
        assert all(p.predicted_ppl <= 12.0 for p in frontier)

    def test_evolution_seeded_determinism(self):
        f1 = self._run(evolutionary_search, seed=3, population=8, generations=3)
        f2 = self._run(evolutionary_search, seed=3, population=8, generations=3)
        assert [p.recipe for p in f1] == [p.recipe for p in f2]
        assert len(f1) >= 1
