"""Integration tests: the full quantized-inference flow across modules
(formats -> QuantContext -> transformer -> eval), mirroring the paper's
computation flow on the trained test model."""

import numpy as np
import pytest

from repro.eval import perplexity
from repro.models.zoo import get_corpus, load_model
from repro.nn.quantize import QuantContext
from repro.nn.tensor import no_grad


@pytest.fixture(scope="module")
def tiny():
    return load_model("test-tiny")


@pytest.fixture(scope="module")
def corpus():
    return get_corpus("wiki2-sim", 60_000)


class TestFormatLadder:
    """The paper's central orderings, end-to-end on a trained model."""

    @pytest.fixture(scope="class")
    def ppl(self, tiny, corpus):
        names = [
            "baseline", "mxfp8", "mxfp8+", "mxfp6", "mxfp6+",
            "mxfp4", "mxfp4+", "mxfp4++", "a-mxfp4+",
            "a:bf16,w:mxfp4", "a:mxfp4,w:bf16",
        ]
        return {
            n: perplexity(tiny, corpus, QuantContext.named(n), batch=8, seq_len=64)
            for n in names
        }

    def test_high_bit_tracks_baseline(self, ppl):
        assert ppl["mxfp8"] < ppl["baseline"] * 1.15
        assert ppl["mxfp6"] < ppl["baseline"] * 1.25

    def test_mxfp4_collapses(self, ppl):
        assert ppl["mxfp4"] > ppl["baseline"] * 1.5

    def test_mx_plus_never_worse(self, ppl):
        assert ppl["mxfp8+"] <= ppl["mxfp8"] * 1.02
        assert ppl["mxfp6+"] <= ppl["mxfp6"] * 1.02
        assert ppl["mxfp4+"] <= ppl["mxfp4"] * 1.02

    def test_mxpp_best_of_the_4bit_family(self, ppl):
        assert ppl["mxfp4++"] <= ppl["mxfp4+"] * 1.02

    def test_weight_only_nearly_free(self, ppl):
        assert ppl["a:bf16,w:mxfp4"] < ppl["baseline"] * 1.25

    def test_activations_carry_the_damage(self, ppl):
        assert ppl["a:mxfp4,w:bf16"] > ppl["a:bf16,w:mxfp4"]

    def test_a_mxfp4_plus_between(self, ppl):
        assert ppl["a-mxfp4+"] <= ppl["mxfp4"] * 1.05
        assert ppl["a-mxfp4+"] >= ppl["mxfp4++"] * 0.95


class TestFlowDetails:
    def test_attention_quantization_matters(self, tiny, corpus):
        batch = corpus.val_batch(8, 64)
        qc_full = QuantContext.named("mxfp4")
        qc_noattn = qc_full.with_(quantize_attention=False)
        a = tiny.perplexity(batch, qc_full)
        b = tiny.perplexity(batch, qc_noattn)
        assert a != b

    def test_kv_format_override(self, tiny, corpus):
        from repro.core import get_format

        batch = corpus.val_batch(8, 64)
        qc = QuantContext.named("mxfp4").with_(kv=get_format("mxfp8"))
        a = tiny.perplexity(batch, qc)
        b = tiny.perplexity(batch, QuantContext.named("mxfp4"))
        assert a <= b * 1.02  # higher-precision KV never hurts much

    def test_bf16_base_toggle(self, tiny, corpus):
        batch = corpus.val_batch(4, 64)
        exact = tiny.perplexity(batch, QuantContext(bf16_base=False))
        bf16 = tiny.perplexity(batch, QuantContext(bf16_base=True))
        assert bf16 == pytest.approx(exact, rel=5e-3)

    def test_quantization_deterministic(self, tiny, corpus):
        batch = corpus.val_batch(4, 64)
        qc = QuantContext.named("mxfp4+")
        assert tiny.perplexity(batch, qc) == tiny.perplexity(batch, qc)

    def test_logits_differ_under_quantization(self, tiny, corpus):
        tokens = corpus.val[:33][None, :]
        with no_grad():
            base = tiny(tokens, QuantContext()).data
            q = tiny(tokens, QuantContext.named("mxfp4")).data
        assert not np.allclose(base, q)
        # but remain finite and ordered enough to decode
        assert np.all(np.isfinite(q))
