"""Perplexity evaluation under quantized inference (Tables 3, 7, 8, 10)."""

from __future__ import annotations

import numpy as np

from ..data.corpus import Corpus
from ..nn.quantize import QuantContext
from ..nn.transformer import TransformerLM

__all__ = ["perplexity", "perplexity_table"]


def perplexity(
    model: TransformerLM,
    corpus: Corpus,
    qc: QuantContext,
    batch: int = 16,
    seq_len: int = 128,
) -> float:
    """Held-out perplexity of ``model`` on ``corpus`` under config ``qc``."""
    tokens = corpus.val_batch(batch, seq_len)
    return model.perplexity(tokens, qc)


def perplexity_table(
    model: TransformerLM,
    corpus: Corpus,
    format_names: list[str],
    batch: int = 16,
    seq_len: int = 128,
) -> dict[str, float]:
    """Perplexity per named format config (see QuantContext.named)."""
    return {
        name: perplexity(model, corpus, QuantContext.named(name), batch, seq_len)
        for name in format_names
    }
