"""Microsoft Floating Point (MSFP) — Project Brainwave's BFP variant.

An MSFP block has ``k = 16`` elements, one 8-bit shared exponent set to the
exponent of the largest magnitude, and per-element sign + mantissa with *no*
implicit leading bit (mantissas are obtained by right-shifting, Section 2).
MSFP-N is named by total bit width: element bits = N - 8, so

* MSFP12: sign + 3 mantissa bits  (avg 4.5 bits/elem)
* MSFP14: sign + 5 mantissa bits  (avg 6.5 bits/elem)
* MSFP16: sign + 7 mantissa bits  (avg 8.5 bits/elem)
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import floor_log2, round_half_even

__all__ = ["MSFPFormat", "MSFP12", "MSFP14", "MSFP16"]


class MSFPFormat(BlockFormat):
    def __init__(self, mantissa_bits: int, block_size: int = 16, name: str | None = None):
        self.mantissa_bits = mantissa_bits
        self.block_size = block_size
        self.name = name or f"msfp{mantissa_bits + 1 + 8}"

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        amax = np.max(np.abs(data), axis=-1)
        shared_exp = np.clip(floor_log2(amax), -127, 127)
        # Mantissa ulp: the BM (in [2^e, 2^(e+1))) must fit in mantissa_bits
        # with no implicit bit, so the ulp is 2^(e + 1 - mbits).
        ulp = np.exp2(shared_exp.astype(np.float64) + 1 - self.mantissa_bits)[..., None]
        max_code = (1 << self.mantissa_bits) - 1
        q = np.clip(round_half_even(data / ulp), -max_code, max_code)
        out = np.where(amax[..., None] == 0, 0.0, q * ulp)
        return from_blocks(blocked, out)

    def bits_per_element(self) -> float:
        return (1 + self.mantissa_bits) + 8.0 / self.block_size


def MSFP12() -> MSFPFormat:
    return MSFPFormat(3, name="msfp12")


def MSFP14() -> MSFPFormat:
    return MSFPFormat(5, name="msfp14")


def MSFP16() -> MSFPFormat:
    return MSFPFormat(7, name="msfp16")
