"""Table 13: qualitative scheme-capability comparison."""

from _util import run_once, save_result

from repro.quant import SCHEME_MATRIX


def test_tab13(benchmark):
    def run():
        return {
            c.name: {
                "compute_efficiency": c.compute_efficiency,
                "standard_general": c.standard_general,
                "high_accuracy": c.high_accuracy,
            }
            for c in SCHEME_MATRIX
        }

    table = run_once(benchmark, run)
    save_result("tab13_matrix", table)
    print(table)

    # MX+ is the only row with all three properties.
    full = [n for n, r in table.items() if all(r.values())]
    assert full == ["MX+"]
    assert table["AWQ"]["compute_efficiency"] is False
    assert table["SmoothQuant"]["high_accuracy"] is False
