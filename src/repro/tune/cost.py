"""Serving-cost model: one throughput/footprint score per recipe.

A candidate recipe's serving cost has two coupled components, and this
module composes exactly the two primitives the serving stack already
trusts:

* **step time** — :func:`repro.gpu.inference.step_time`, the roofline
  matmul model behind ``ServingEngine``/``ServingCluster`` (mixed-precision
  ``layer_overrides`` included);
* **KV footprint** — :func:`repro.serve.kvcache.kv_token_bytes`, the
  bytes/token the paged KV allocator charges per resident token.

They meet in the continuous-batching steady state: a page budget divided
by the recipe's KV bytes/token bounds how many requests sit in one decode
batch, and the decode step time for that batch sets the token rate. The
resulting ``tokens_per_s`` is the scalar score the searchers in
:mod:`repro.tune.search` maximize — a recipe with a leaner KV format earns
throughput by *fitting more concurrent requests*, which is the paper's
serving argument for microscaling formats in the first place.

>>> from repro.models.zoo import ARCHS
>>> cost = CostModel(ARCHS["llama-2-13b"])
>>> mx4, bf16 = cost.evaluate("mxfp4"), cost.evaluate("bf16")
>>> mx4.concurrency > 3 * bf16.concurrency  # 4.25-bit KV vs 16-bit KV
True
>>> mx4.tokens_per_s > bf16.tokens_per_s
True
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.inference import step_time
from ..gpu.spec import GPUSpec, RTX5090
from ..models.zoo import ArchSpec
from ..serve.kvcache import kv_token_bytes
from ..serve.recipe import QuantRecipe

__all__ = ["RecipeCost", "CostModel"]


@dataclass(frozen=True)
class RecipeCost:
    """Evaluated serving cost of one recipe under a :class:`CostModel`."""

    recipe_name: str
    tokens_per_s: float  # steady-state decode throughput (the score)
    concurrency: int  # requests resident under the page budget
    kv_bytes_per_token: float
    decode_step_s: float  # one decode iteration at full concurrency
    prefill_s: float  # one full-batch prefill (amortized into the score)

    @property
    def score(self) -> float:
        """The single scalar the searchers maximize (higher is better)."""
        return self.tokens_per_s

    def to_dict(self) -> dict:
        return {
            "recipe": self.recipe_name,
            "tokens_per_s": self.tokens_per_s,
            "concurrency": self.concurrency,
            "kv_bytes_per_token": self.kv_bytes_per_token,
            "decode_step_ms": self.decode_step_s * 1e3,
            "prefill_ms": self.prefill_s * 1e3,
        }


@dataclass(frozen=True)
class CostModel:
    """Steady-state serving scenario a recipe is priced against.

    ``page_budget_bytes`` of KV memory serve requests of ``prompt_len``
    prompt tokens generating ``output_len`` tokens each; concurrency is
    whatever the recipe's KV format fits (capped by ``max_batch``), decode
    runs at the mid-generation context length, and each output token
    amortizes its share of the prefill.

    ``scheduler`` names the batch-composition policy of the serving core
    the price models (see :func:`repro.serve.sched.available_schedulers`):

    * ``"prefill-first"`` (default) and ``"decode-priority"`` amortize a
      dedicated full-batch prefill over the output tokens — the classic
      alternating steady state (identical formulas: at steady state both
      policies run the same dedicated-step mix);
    * ``"chunked-prefill"`` prices the Sarathi-style steady state: every
      decode step also carries the batch's incoming prompt rows as a
      tagged chunk, priced by ``step_time``'s mixed-batch path (chunk and
      decode attention kernels separate).
    """

    arch: ArchSpec
    spec: GPUSpec = RTX5090
    page_budget_bytes: float = float(4 << 30)
    prompt_len: int = 512
    output_len: int = 128
    max_batch: int = 256
    scheduler: str = "prefill-first"

    def __post_init__(self) -> None:
        if self.scheduler not in (
            "prefill-first",
            "decode-priority",
            "chunked-prefill",
        ):
            raise KeyError(f"unknown scheduler {self.scheduler!r} for CostModel")

    # ------------------------------------------------------------------
    def concurrency(self, recipe) -> int:
        """Decode-batch size the KV page budget sustains for ``recipe``."""
        per_request = kv_token_bytes(self.arch, self._coerce(recipe)) * (
            self.prompt_len + self.output_len
        )
        return max(1, min(self.max_batch, int(self.page_budget_bytes // per_request)))

    def evaluate(self, recipe) -> RecipeCost:
        """Price one recipe: simulated steady-state serving tokens/s."""
        recipe = self._coerce(recipe)
        concurrency = self.concurrency(recipe)
        mid_ctx = self.prompt_len + self.output_len // 2
        decode = step_time(
            self.spec, self.arch, recipe, [(concurrency, mid_ctx)]
        )
        prefill = step_time(
            self.spec,
            self.arch,
            recipe,
            [(concurrency * self.prompt_len, self.prompt_len)],
        )
        if self.scheduler == "chunked-prefill":
            # Steady state under chunked prefill: each decode step also
            # carries the prompt rows entering the batch per generated
            # token (one admission per completion), co-scheduled as a
            # tagged chunk — the mixed-batch price replaces the dedicated
            # prefill step entirely.
            chunk_rows = -(-concurrency * self.prompt_len // self.output_len)
            per_token = step_time(
                self.spec,
                self.arch,
                recipe,
                [
                    (concurrency, mid_ctx, "decode"),
                    (chunk_rows, self.prompt_len, "prefill"),
                ],
            )
        else:
            per_token = decode + prefill / self.output_len
        return RecipeCost(
            recipe_name=recipe.name,
            tokens_per_s=concurrency / per_token,
            concurrency=concurrency,
            kv_bytes_per_token=kv_token_bytes(self.arch, recipe),
            decode_step_s=decode,
            prefill_s=prefill,
        )

    @staticmethod
    def _coerce(recipe) -> QuantRecipe:
        if isinstance(recipe, str):
            return QuantRecipe.from_name(recipe)
        return recipe

    def to_dict(self) -> dict:
        out = {
            "arch": self.arch.name,
            "gpu": self.spec.name,
            "page_budget_bytes": self.page_budget_bytes,
            "prompt_len": self.prompt_len,
            "output_len": self.output_len,
            "max_batch": self.max_batch,
        }
        if self.scheduler != "prefill-first":
            # The default is omitted so pre-scheduler frontier artifacts
            # (benchmarks/results/tune_frontier.json) stay byte-identical.
            out["scheduler"] = self.scheduler
        return out
