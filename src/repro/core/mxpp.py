"""MX++ — decoupling the NBM shared scale via the reserved bits (Section 4.3).

MX++ keeps the BM exactly as in MX+ but lets the NBM elements use a smaller
shared scale so they land on a finer quantization grid. The NBM shared
exponent is

    e = max2(floor(log2(|x|))) - e_max + 1

where ``max2`` is the second-largest exponent in the block (the ``+1``
offset prevents the largest NBM from saturating after scaling — the paper's
0.99 -> 7.92 example). The final exponent is

    shared_exp_new = CLIP(e, {shared_exp - 7, shared_exp})

so the delta from the BM's shared exponent fits the 3 reserved bits.
"""

from __future__ import annotations

import numpy as np

from .blocks import from_blocks
from .elem import E2M1, FloatCodec, floor_log2
from .mxplus import MXPlusEncoded, MXPlusFormat
from .scale import ZERO_BLOCK_SENTINEL

__all__ = ["MXPPFormat", "MXFP4PlusPlus", "MXFP6PlusPlus", "MXFP8PlusPlus"]


class MXPPFormat(MXPlusFormat):
    """MX++ format (MX+ plus decoupled NBM scale)."""

    def __init__(self, elem: FloatCodec, block_size: int = 32, name: str | None = None):
        super().__init__(elem, block_size, name or f"mx-{elem.name}++")

    def encode(self, x: np.ndarray, axis: int = -1) -> MXPlusEncoded:
        enc = super().encode(x, axis)
        data = enc.blocked.data
        absd = np.abs(data)
        flush = enc.shared_exp == ZERO_BLOCK_SENTINEL

        # Exponent of the largest NBM: mask out the BM position.
        k = data.shape[-1]
        is_bm = np.arange(k, dtype=np.int32) == enc.bm_index[..., None]
        nbm_abs = np.where(is_bm, 0.0, absd)
        nbm_amax = np.max(nbm_abs, axis=-1)
        e2 = floor_log2(nbm_amax)

        e = e2 - self.elem.emax + 1
        shared = np.where(flush, 0, enc.shared_exp)
        new_exp = np.clip(e, shared - 7, shared)
        # Blocks whose NBMs are all zero keep the BM scale (delta 0).
        new_exp = np.where(nbm_amax == 0, shared, new_exp)
        delta = (shared - new_exp).astype(np.int32)

        # Requantize NBMs against the finer scale, keeping the BM slot.
        nbm_scale = np.exp2(new_exp.astype(np.float64))[..., None]
        requant = self.elem.quantize(data / nbm_scale)
        bm_vals = np.take_along_axis(
            enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
        )
        elem_values = np.where(is_bm, 0.0, requant)
        np.put_along_axis(elem_values, enc.bm_index[..., None].astype(np.int64), bm_vals, axis=-1)
        elem_values = np.where(flush[..., None], 0.0, elem_values)

        enc.elem_values = elem_values
        enc.reserved = np.where(flush, 0, delta).astype(np.int32)
        enc.nbm_shared_exp = np.where(
            flush, ZERO_BLOCK_SENTINEL, new_exp.astype(np.int32)
        )
        return enc


def MXFP4PlusPlus() -> MXPPFormat:
    return MXPPFormat(E2M1, name="mxfp4++")


def MXFP6PlusPlus() -> MXPPFormat:
    from .elem import E2M3

    return MXPPFormat(E2M3, name="mxfp6++")


def MXFP8PlusPlus() -> MXPPFormat:
    from .elem import E4M3

    return MXPPFormat(E4M3, name="mxfp8++")
