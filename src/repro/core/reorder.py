"""Channel reordering to scatter co-located outliers (Section 8.3).

Activation outliers concentrate in a few channels (Fig. 4a). When two
outlier channels land in the same 32-element MX block only one can be the
BM, so MX+ helps less. The paper's remedy: sort channels by outlier count,
place the heaviest ones one per block, then fill the remaining slots with
the lower half of the sorted order (descending) followed by the upper half.

The permutation is applied identically to activation columns and to the
matching weight rows, so the matmul result is mathematically unchanged.
"""

from __future__ import annotations

import numpy as np

from .metrics import outlier_mask_3sigma

__all__ = ["channel_outlier_counts", "reorder_permutation", "apply_reorder", "multi_outlier_block_rate"]


def channel_outlier_counts(x: np.ndarray) -> np.ndarray:
    """Count 3-sigma outliers per channel (last axis) of an activation."""
    x = np.asarray(x, dtype=np.float64)
    mask = outlier_mask_3sigma(x)
    flat = mask.reshape(-1, x.shape[-1])
    return np.sum(flat, axis=0).astype(np.int64)


def reorder_permutation(counts: np.ndarray, block_size: int = 32) -> np.ndarray:
    """Build the channel permutation described in Section 8.3.

    Returns ``perm`` such that ``x[..., perm]`` scatters high-outlier
    channels one per block. Channels with the most outliers occupy positions
    ``0, block_size, 2*block_size, ...``; the rest of the sorted order is
    split in half and the lower half (next-most outliers) fills remaining
    slots in descending order, followed by the upper half.
    """
    counts = np.asarray(counts)
    n = counts.shape[0]
    order = np.argsort(-counts, kind="stable")  # descending outlier count
    n_anchors = (n + block_size - 1) // block_size
    anchors = order[:n_anchors]
    rest = order[n_anchors:]
    half = len(rest) // 2
    lower, upper = rest[:half], rest[half:]
    filler = np.concatenate([lower, upper])

    perm = np.empty(n, dtype=np.int64)
    slots = np.ones(n, dtype=bool)
    anchor_pos = np.arange(n_anchors) * block_size
    perm[anchor_pos] = anchors
    slots[anchor_pos] = False
    perm[slots] = filler
    return perm


def apply_reorder(
    x: np.ndarray, weight: np.ndarray, perm: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Permute activation columns and weight input-rows consistently.

    ``x @ weight == x[..., perm] @ weight[perm, :]`` exactly.
    """
    return x[..., perm], weight[perm, :]


def multi_outlier_block_rate(x: np.ndarray, block_size: int = 32) -> float:
    """Share of outlier-containing blocks holding >1 outlier (Sec. 8.3 stat)."""
    from .metrics import block_outlier_counts

    counts = block_outlier_counts(x, block_size)
    has = counts > 0
    if not np.any(has):
        return 0.0
    return float(np.sum(counts > 1) / np.sum(has))
