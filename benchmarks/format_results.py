"""Render ``benchmarks/results/*.json`` into a markdown summary.

Intended for PR comments / CI job summaries::

    python benchmarks/format_results.py            # markdown to stdout
    python benchmarks/format_results.py --out results.md
    python benchmarks/format_results.py serving_engine fig13_speedup_accuracy

A serving headline table (throughput, TTFT/TPOT, speedup) is emitted
first when the corresponding artifacts exist; every other artifact is
rendered generically, one section per JSON file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: artifacts surfaced in the headline serving summary, with the columns
#: (json key -> table header) each contributes.
SERVING_ARTIFACTS = {
    "serving_engine": {
        "throughput_tok_s": "throughput (tok/s)",
        "mean_ttft_ms": "TTFT (ms)",
        "mean_tpot_ms": "TPOT (ms)",
        "speedup_vs_bf16": "serving speedup",
    },
    "fig13_speedup_accuracy": {
        "speedup_out64": "speedup (64 out)",
        "avg_accuracy": "avg accuracy (%)",
    },
}


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def _load(name: str) -> dict | None:
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as f:
        return json.load(f)


def render_generic(name: str, payload) -> str:
    """One markdown section for an arbitrary results payload."""
    title = f"### `{name}`"
    if not isinstance(payload, dict) or not payload:
        return f"{title}\n\n```\n{json.dumps(payload, indent=2)}\n```"
    if all(isinstance(v, dict) for v in payload.values()):
        columns: list[str] = []
        for row in payload.values():
            columns += [c for c in row if c not in columns]
        rows = [
            [str(key)] + [_fmt(row.get(c, "")) for c in columns]
            for key, row in payload.items()
        ]
        return f"{title}\n\n" + _table(["config"] + columns, rows)
    rows = [[str(k), _fmt(v)] for k, v in payload.items()]
    return f"{title}\n\n" + _table(["key", "value"], rows)


def render_serving_summary() -> str | None:
    """Headline table joining the serving artifacts per recipe name."""
    merged: dict[str, dict[str, str]] = {}
    columns: list[str] = []
    for artifact, wanted in SERVING_ARTIFACTS.items():
        payload = _load(artifact)
        if not isinstance(payload, dict):
            continue
        for key, header in wanted.items():
            if header not in columns:
                columns.append(header)
        for config, row in payload.items():
            if not isinstance(row, dict):
                continue
            cells = merged.setdefault(str(config), {})
            for key, header in wanted.items():
                if key in row:
                    cells[header] = _fmt(row[key])
    if not merged:
        return None
    rows = [
        [config] + [cells.get(c, "") for c in columns]
        for config, cells in merged.items()
    ]
    return "## Serving summary\n\n" + _table(["recipe"] + columns, rows)


def render(names: list[str] | None = None) -> str:
    if names:
        available = [n for n in names if (RESULTS_DIR / f"{n}.json").exists()]
        missing = sorted(set(names) - set(available))
        if missing:
            print(f"warning: no results for {', '.join(missing)}", file=sys.stderr)
    else:
        available = sorted(p.stem for p in RESULTS_DIR.glob("*.json"))
    sections = ["# Benchmark results"]
    summary = render_serving_summary()
    if summary and not names:
        sections.append(summary)
    sections += [render_generic(n, _load(n)) for n in available]
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="artifact names (default: all)")
    parser.add_argument("--out", type=Path, help="write markdown to this file")
    args = parser.parse_args(argv)
    markdown = render(args.names or None)
    if args.out:
        args.out.write_text(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
