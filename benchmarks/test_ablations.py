"""Ablation benches for the design choices called out in DESIGN.md:
MX++'s +1 offset, the flush-to-zero rule, block-size sweeps, and the
outlier-scale collapse point of MXFP4."""

import numpy as np
from _util import print_table, run_once, save_result

from repro.core import MXFP4, MXFP4Plus, mse
from repro.core.blocks import from_blocks, to_blocks
from repro.core.elem import E2M1, floor_log2
from repro.core.mx import MXFormat
from repro.core.mxplus import MXPlusFormat
from repro.core.mxpp import MXPPFormat
from repro.core.scale import ZERO_BLOCK_SENTINEL


def _outlier_tensor(scale: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((256, 128))
    x[:, 10] *= scale
    x[:, 75] *= scale
    return x


class MXPPNoOffset(MXPPFormat):
    """MX++ without the +1 offset in the NBM shared-exponent rule."""

    def encode(self, x, axis=-1):
        enc = super().encode(x, axis)
        # Recompute NBM scale without the offset: e = max2 - emax.
        data = enc.blocked.data
        absd = np.abs(data)
        k = data.shape[-1]
        is_bm = np.arange(k, dtype=np.int32) == enc.bm_index[..., None]
        nbm_amax = np.max(np.where(is_bm, 0.0, absd), axis=-1)
        e2 = floor_log2(nbm_amax)
        flush = enc.shared_exp == ZERO_BLOCK_SENTINEL
        shared = np.where(flush, 0, enc.shared_exp)
        new_exp = np.clip(e2 - self.elem.emax, shared - 7, shared)
        new_exp = np.where(nbm_amax == 0, shared, new_exp)
        nbm_scale = np.exp2(new_exp.astype(np.float64))[..., None]
        requant = self.elem.quantize(data / nbm_scale)
        bm_vals = np.take_along_axis(
            enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
        )
        elem_values = np.where(is_bm, 0.0, requant)
        np.put_along_axis(elem_values, enc.bm_index[..., None].astype(np.int64), bm_vals, axis=-1)
        enc.elem_values = np.where(flush[..., None], 0.0, elem_values)
        enc.reserved = np.where(flush, 0, (shared - new_exp)).astype(np.int32)
        enc.nbm_shared_exp = np.where(flush, ZERO_BLOCK_SENTINEL, new_exp).astype(np.int32)
        return enc


def test_ablation_mxpp_offset(benchmark):
    """The paper's 0.99 -> 7.92 saturation example: without the +1 offset,
    NBMs near the top of their binade saturate after rescaling and MX++
    loses accuracy exactly where the offset was designed to protect."""

    def run():
        rng = np.random.default_rng(3)
        # NBMs concentrated near the binade top (fractions 1.4-2.0), one
        # outlier BM per block — the regime of the paper's worked example.
        x = rng.uniform(0.7, 1.0, size=(256, 128)) * rng.choice([-1.0, 1.0], (256, 128))
        x[:, 10] = 50.0
        x[:, 75] = -50.0
        return {
            "mxpp_with_offset": mse(x, MXPPFormat(E2M1)(x)),
            "mxpp_no_offset": mse(x, MXPPNoOffset(E2M1)(x)),
            "mxplus": mse(x, MXFP4Plus()(x)),
        }

    out = run_once(benchmark, run)
    save_result("ablation_mxpp_offset", out)
    print_table("Ablation: MX++ +1 offset", out, "{:.6f}")
    assert out["mxpp_with_offset"] <= out["mxpp_no_offset"]
    assert out["mxpp_with_offset"] <= out["mxplus"]


def test_ablation_block_size(benchmark):
    """Block-size sweep: smaller blocks confine outliers (lower error) at
    higher scale-storage cost — the MX k=32 choice is a balance point."""

    def run():
        x = _outlier_tensor(48.0)
        out = {}
        for k in (8, 16, 32, 64, 128):
            base = MXFormat(E2M1, block_size=k, name=f"mxfp4-k{k}")
            plus = MXPlusFormat(E2M1, block_size=k, name=f"mxfp4+-k{k}")
            out[k] = {
                "mx_mse": mse(x, base(x)),
                "mxplus_mse": mse(x, plus(x)),
                "mx_bits": base.bits_per_element(),
            }
        return out

    table = run_once(benchmark, run)
    save_result("ablation_block_size", table)
    print_table("Ablation: block size", table, "{:.4f}")
    ks = sorted(table)
    assert all(table[a]["mx_mse"] <= table[b]["mx_mse"] * 1.02 for a, b in zip(ks, ks[1:]))
    assert all(table[k]["mxplus_mse"] <= table[k]["mx_mse"] + 1e-12 for k in ks)


def test_ablation_flush_rule(benchmark):
    """Flush-to-zero: blocks at the shared-exponent floor flush cleanly
    and the reserved biased-zero scale round-trips through packing."""

    def run():
        from repro.core.layout import pack_mxplus, unpack_mxplus

        fmt = MXFP4Plus()
        tiny = np.full((4, 32), 2.0**-130)
        enc = fmt.encode(tiny)
        packed = pack_mxplus(fmt, enc)
        restored = fmt.decode(unpack_mxplus(fmt, packed))
        return {
            "flushed_blocks": int(np.sum(enc.shared_exp == ZERO_BLOCK_SENTINEL)),
            "max_restored": float(np.max(np.abs(restored))),
        }

    out = run_once(benchmark, run)
    save_result("ablation_flush", out)
    print(out)
    assert out["flushed_blocks"] == 4
    assert out["max_restored"] == 0.0


def test_ablation_outlier_scale(benchmark):
    """Where MXFP4 collapses: sweep the outlier magnitude and track the
    MSE gap that MX+ recovers."""

    def run():
        out = {}
        for scale in (1, 4, 16, 64, 256):
            x = _outlier_tensor(float(scale))
            e4 = mse(x, MXFP4()(x))
            ep = mse(x, MXFP4Plus()(x))
            out[scale] = {"mxfp4": e4, "mxfp4+": ep, "recovered": 1 - ep / e4}
        return out

    table = run_once(benchmark, run)
    save_result("ablation_outlier_scale", table)
    print_table("Ablation: outlier scale sweep", table, "{:.4f}")
    # The MX+ recovery share grows with outlier magnitude.
    assert table[256]["recovered"] > table[4]["recovered"]
    assert table[256]["recovered"] > 0.5
