"""Exact activation-outlier injection for trained transformers.

Real LLM activations carry channel-concentrated outliers (Figure 4a); tiny
models trained for a few hundred steps do not. We reproduce the phenomenon
*exactly* with an invariance of RMSNorm-gated architectures:

    rmsnorm(x) * g  @ W  ==  rmsnorm(x) * (g * s)  @  (W / s-rows)

Scaling gain channel ``c`` by ``s`` while dividing row ``c`` of every
consumer weight by ``s`` leaves all model outputs bit-identical in exact
arithmetic — but the *activations entering the matmul* now have a channel
of magnitude ``s``x, which is precisely what low-bit MX quantization
struggles with. The analogous transform on the query/key projections
(scale a Q column by ``s``, the matching K column by ``1/s``) plants
outliers inside the attention dot products for the Section 8.3 reordering
experiments.

``verify_equivalence`` checks the injected model against the original to
float tolerance, so every zoo model's outliers are provably artificial in
exact arithmetic and real under quantization.
"""

from __future__ import annotations

import numpy as np

from ..nn.quantize import QuantContext
from ..nn.transformer import TransformerLM

__all__ = ["inject_outliers", "inject_qk_outliers", "verify_equivalence"]


def inject_outliers(
    model: TransformerLM,
    channels: list[int],
    scale: float,
    include_final_norm: bool = True,
) -> None:
    """Plant activation outliers at ``channels`` of every block input.

    Mutates the model in place; the transformation is exact (see module
    docstring), so BF16-baseline behaviour is essentially unchanged while
    quantized behaviour now faces realistic outliers.
    """
    for block in model.blocks:
        for c in channels:
            block.attn_norm.gain.data[c] *= scale
            block.attn.wq.weight.data[c, :] /= scale
            block.attn.wk.weight.data[c, :] /= scale
            block.attn.wv.weight.data[c, :] /= scale

            block.mlp_norm.gain.data[c] *= scale
            block.mlp.w_gate.weight.data[c, :] /= scale
            block.mlp.w_up.weight.data[c, :] /= scale
    if include_final_norm and model.lm_head is not None:
        for c in channels:
            model.final_norm.gain.data[c] *= scale
            model.lm_head.weight.data[c, :] /= scale


def inject_qk_outliers(model: TransformerLM, channels: list[int], scale: float) -> None:
    """Plant outlier channels inside the Q/K attention operands.

    ``QK^T = sum_c Q_c K_c`` is invariant under scaling a Q column by ``s``
    and the matching K column by ``1/s``; the Q operand then carries an
    outlier channel that the KV-cache quantization sees.
    """
    for block in model.blocks:
        for c in channels:
            block.attn.wq.weight.data[:, c] *= scale
            block.attn.wk.weight.data[:, c] /= scale


def verify_equivalence(
    original: TransformerLM,
    transformed: TransformerLM,
    tokens: np.ndarray,
    atol: float = 1e-6,
) -> float:
    """Max |logit difference| between the two models on ``tokens``.

    Raises ``AssertionError`` if the transform broke exactness beyond
    floating-point noise.
    """
    a = original(tokens).data
    b = transformed(tokens).data
    diff = float(np.max(np.abs(a - b)))
    if diff > atol:
        raise AssertionError(f"outlier injection is not equivalence-preserving: {diff}")
    return diff
