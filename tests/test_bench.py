"""Tests for repro.bench: matrix expansion, planning, resumable
execution, pricing, and report rendering.

The load-bearing properties:

* matrix expansion is deterministic (stable cell ids), normalizes
  interconnects away for unified fleets, and skips infeasible combos
  with recorded reasons rather than erroring mid-sweep;
* planning is idempotent and resume-safe (completed manifests survive
  re-planning);
* an interrupted sweep — whether by a crashing cell or a run cap —
  resumes to a report byte-identical to an uninterrupted one, skipping
  completed cells and retrying failed ones;
* every $/Mtok derives from CostModel × the committed GPU price table.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.bench import (
    FleetShape,
    RunSpec,
    SweepMatrix,
    aggregate,
    available_matrices,
    available_workloads,
    build_workload,
    canonical_payload,
    execute_run,
    get_matrix,
    list_sweeps,
    load_plan,
    markdown_table,
    plan_sweep,
    price_cell,
    read_manifest,
    render_report,
    run_sweep,
)
from repro.bench.__main__ import main as bench_main
from repro.tune.cost import CostModel
from repro.tune.pricing import GPU_PRICES, GPUPrice, available_gpu_prices, get_gpu_price

REPO_ROOT = Path(__file__).resolve().parent.parent

SMALL = SweepMatrix(
    name="small",
    recipes=("bf16", "mxfp4+"),
    schedulers=("prefill-first",),
    interconnects=("pcie5",),
    fleets=("1r", "1p1d"),
    workloads=("bursty",),
    n_requests=8,
    seed=0,
    baseline={"recipe": "bf16", "fleet": "1r"},
)


class TestFleetShape:
    def test_unified(self):
        shape = FleetShape.parse("4r")
        assert not shape.disaggregated
        assert shape.n_replicas == 4
        assert shape.total_gpus == shape.n_generating == 4
        assert shape.label == "4r"

    def test_disaggregated(self):
        shape = FleetShape.parse("2p3d")
        assert shape.disaggregated
        assert (shape.n_prefill, shape.n_decode) == (2, 3)
        assert shape.total_gpus == 5
        assert shape.n_generating == 3  # only decode GPUs emit tokens

    @pytest.mark.parametrize("bad", ["", "0r", "1p0d", "r2", "1p1d1x", "2"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FleetShape.parse(bad)


class TestMatrixExpansion:
    def test_canonical_shape(self):
        runs, skipped = get_matrix("canonical").expand()
        assert len(runs) == 8
        # Disaggregated x chunked-prefill is infeasible (the cost model
        # rejects it) and is skipped with a recorded reason, not raised.
        assert any("chunked" in s["reason"] for s in skipped)

    def test_unified_fleet_normalizes_interconnect(self):
        runs, _ = get_matrix("canonical").expand()
        for spec in runs:
            if not spec.disaggregated:
                assert spec.interconnect == "none"

    def test_expansion_is_deterministic(self):
        a, _ = SMALL.expand()
        b, _ = SMALL.expand()
        assert [s.cell_id for s in a] == [s.cell_id for s in b]

    def test_cell_id_tracks_content(self):
        spec = SMALL.expand()[0][0]
        bumped = RunSpec.from_dict({**spec.to_dict(), "seed": spec.seed + 1})
        assert bumped.cell_id != spec.cell_id

    def test_roundtrip(self):
        matrix = SweepMatrix.from_dict(SMALL.to_dict())
        assert matrix == SMALL
        spec = SMALL.expand()[0][0]
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            SweepMatrix(name="bad", schedulers=("fifo",))
        with pytest.raises(KeyError, match="unknown recipe"):
            SweepMatrix(name="bad", recipes=("int3",))
        with pytest.raises(KeyError, match="unknown interconnect"):
            SweepMatrix(name="bad", interconnects=("carrier-pigeon",))
        with pytest.raises(KeyError, match="unknown workload"):
            SweepMatrix(name="bad", workloads=("adversarial",))

    def test_baseline_must_match_exactly_one_cell(self):
        runs, _ = SMALL.expand()
        assert SMALL.baseline_cell_id(runs) in {s.cell_id for s in runs}
        ambiguous = SweepMatrix.from_dict(
            {**SMALL.to_dict(), "baseline": {"recipe": "bf16"}}
        )
        with pytest.raises(ValueError, match="baseline"):
            ambiguous.baseline_cell_id(ambiguous.expand()[0])

    def test_registries(self):
        assert {"canonical", "smoke"} <= set(available_matrices())
        assert "chat" in available_workloads()
        reqs = build_workload("chat", 5, seed=0)
        again = build_workload("chat", 5, seed=0)
        assert [r.prompt_tokens for r in reqs] == [r.prompt_tokens for r in again]


class TestPlanner:
    def test_plan_layout(self, tmp_path):
        plan = plan_sweep(SMALL, tmp_path, name="s")
        assert (plan.root / "sweep.json").exists()
        for cid in plan.cell_ids:
            assert read_manifest(plan.root, cid)["status"] == "planned"
        loaded = load_plan(plan.root)
        assert loaded.cell_ids == plan.cell_ids
        assert loaded.baseline == plan.baseline

    def test_replanning_preserves_completed_manifests(self, tmp_path):
        plan = plan_sweep(SMALL, tmp_path, name="s")
        run_sweep(plan.root, max_runs=1)
        done = [
            cid for cid in plan.cell_ids
            if read_manifest(plan.root, cid)["status"] == "completed"
        ]
        assert len(done) == 1
        plan_sweep(SMALL, tmp_path, name="s")  # re-plan into the same dir
        assert read_manifest(plan.root, done[0])["status"] == "completed"

    def test_list_sweeps(self, tmp_path):
        plan_sweep(SMALL, tmp_path, name="s")
        (entry,) = list_sweeps(tmp_path)
        assert entry["matrix"] == "small"
        assert entry["statuses"] == {"planned": len(SMALL.expand()[0])}
        assert list_sweeps(tmp_path / "nope") == []


class TestRunnerResume:
    def test_interrupt_and_resume_is_byte_identical(self, tmp_path):
        # Uninterrupted reference sweep.
        ref = plan_sweep(SMALL, tmp_path, name="ref")
        run_sweep(ref.root)
        # Interrupted sweep: the second cell crashes on the first pass.
        plan = plan_sweep(SMALL, tmp_path, name="cut")
        victim = plan.cell_ids[1]

        def crashy(spec):
            if spec.cell_id == victim:
                raise RuntimeError("injected failure")
            return execute_run(spec)

        first = run_sweep(plan.root, executor=crashy)
        assert first["failed"] == 1
        # Failure isolation: the sweep continued past the crashed cell.
        assert first["executed"] == len(plan.cell_ids) - 1
        manifest = read_manifest(plan.root, victim)
        assert manifest["status"] == "failed"
        assert "injected failure" in manifest["error"]
        assert "injected failure" in manifest["traceback"]

        # Re-invocation: completed cells skip, the failed cell re-runs.
        second = run_sweep(plan.root)
        assert second["skipped"] == len(plan.cell_ids) - 1
        assert second["executed"] == 1
        assert read_manifest(plan.root, victim)["status"] == "completed"
        assert "traceback" not in read_manifest(plan.root, victim)

        # The resumed sweep's canonical payload and report match the
        # uninterrupted sweep byte for byte.
        a, b = aggregate(ref.root), aggregate(plan.root)
        assert json.dumps(canonical_payload(a), sort_keys=True) == json.dumps(
            canonical_payload(b), sort_keys=True
        )
        assert render_report(a) == render_report(b)

    def test_max_runs_caps_execution(self, tmp_path):
        plan = plan_sweep(SMALL, tmp_path, name="s")
        summary = run_sweep(plan.root, max_runs=2)
        assert summary["executed"] == 2
        statuses = list(plan.statuses().values())
        assert statuses.count("completed") == 2
        assert statuses.count("planned") == len(plan.cell_ids) - 2
        resumed = run_sweep(plan.root)
        assert resumed["skipped"] == 2
        assert resumed["executed"] == len(plan.cell_ids) - 2


class TestPricing:
    def test_price_table_is_validated(self):
        with pytest.raises(ValueError):
            GPUPrice(name="bad", usd_per_hour=-1.0)
        with pytest.raises(ValueError):
            GPUPrice(name="bad", usd_per_hour=math.inf)
        assert set(available_gpu_prices()) == set(GPU_PRICES)
        assert get_gpu_price("h100").usd_per_hour == GPU_PRICES["h100"].usd_per_hour
        with pytest.raises(KeyError, match="unknown GPU price"):
            get_gpu_price("tpu")

    def test_dollars_per_mtok_math(self):
        price = GPUPrice(name="x", usd_per_hour=3.6)
        # 3.6 $/hr = 0.001 $/s; at 1000 tok/s -> 1e-6 $/tok -> 1 $/Mtok.
        assert price.dollars_per_mtok(1000.0) == pytest.approx(1.0)
        assert price.dollars_per_mtok(1000.0, n_gpus=2) == pytest.approx(2.0)
        assert math.isinf(price.dollars_per_mtok(0.0))

    def test_cost_model_slo_gate(self):
        from repro.models.zoo import ARCHS

        model = CostModel(ARCHS["llama-2-13b"], page_budget_bytes=float(1 << 30))
        finite = model.dollars_per_mtok("mxfp4+")
        assert math.isfinite(finite) and finite > 0
        assert math.isinf(model.dollars_per_mtok("mxfp4+", tpot_slo_s=1e-9))

    def test_price_cell_scales_to_fleet(self):
        runs, _ = SMALL.expand()
        unified = next(s for s in runs if not s.disaggregated and s.recipe == "bf16")
        disagg = next(s for s in runs if s.disaggregated and s.recipe == "bf16")
        u, d = price_cell(unified), price_cell(disagg)
        assert u["gpu_price"] == d["gpu_price"] == "rtx5090"
        # 1p1d bills 2 GPUs but only the decode GPU generates: the
        # billing factor alone doubles the per-token price relative to
        # the same model throughput on one unified replica.
        assert d["fleet_gpus"] == 2
        assert d["dollars_per_mtok"] > u["dollars_per_mtok"]


class TestReport:
    def test_markdown_table(self):
        table = markdown_table(["a", "b"], [["1", "2"], ["3", "4"]])
        assert table.splitlines()[1] == "| --- | --- |"
        assert table.splitlines()[-1] == "| 3 | 4 |"

    def test_format_results_delegates_to_shared_renderer(self):
        spec = importlib.util.spec_from_file_location(
            "format_results", REPO_ROOT / "benchmarks" / "format_results.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        from repro.bench.report import fmt_value, markdown_table as shared
        assert module._table is shared
        assert module._fmt is fmt_value

    def test_report_sections(self, tmp_path):
        plan = plan_sweep(SMALL, tmp_path, name="s")
        run_sweep(plan.root)
        payload = aggregate(plan.root)
        report = render_report(payload)
        assert "## Cells" in report
        assert "## Winner & Pareto" in report
        assert "(baseline)" in report
        assert payload["winner"] is None or "**(winner)**" in report
        # Every dollar figure in the payload traces to price_cell.
        for cell in payload["cells"].values():
            pricing = cell["result"]["pricing"]
            assert pricing["usd_per_hour"] == GPU_PRICES[pricing["gpu_price"]].usd_per_hour

    def test_failed_cells_render_without_result(self, tmp_path):
        plan = plan_sweep(SMALL, tmp_path, name="s")

        def always_fail(spec):
            raise ValueError("boom")

        run_sweep(plan.root, executor=always_fail)
        report = render_report(aggregate(plan.root))
        assert "## Failures" in report
        assert "ValueError: boom" in report


class TestCLI:
    def test_plan_run_report_list(self, tmp_path, capsys):
        out = str(tmp_path)
        assert bench_main(["plan", "--matrix", "smoke", "--out", out, "--name", "s"]) == 0
        assert bench_main(["run", str(tmp_path / "s")]) == 0
        assert (tmp_path / "s" / "report.md").exists()
        assert bench_main(["report", str(tmp_path / "s")]) == 0
        assert bench_main(["list", "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "Sweep report" in captured
        assert "matrix=smoke" in captured

    def test_run_resume_via_cli(self, tmp_path, capsys):
        out = str(tmp_path)
        bench_main(["run", "--matrix", "smoke", "--out", out, "--name", "s",
                    "--max-runs", "2"])
        assert bench_main(["run", str(tmp_path / "s")]) == 0
        assert "2 skipped" in capsys.readouterr().out

    def test_report_json_roundtrips(self, tmp_path, capsys):
        bench_main(["run", "--matrix", "smoke", "--out", str(tmp_path),
                    "--name", "s"])
        capsys.readouterr()
        assert bench_main(["report", str(tmp_path / "s"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"cells", "matrix", "winner", "perf"}
