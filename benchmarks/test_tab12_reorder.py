"""Table 12: MXFP4+ with channel reordering on the query/key projections."""

import numpy as np
from _util import print_table, run_once, save_result

from repro.eval import accuracy_table, task_accuracy
from repro.eval.reorder_calib import reorder_context
from repro.nn.quantize import QuantContext

MODELS = ["llama-3.1-8b-sim", "mistral-7b-sim"]


def test_tab12(benchmark, zoo, harness_tasks, wiki2):
    def run():
        from repro.core.reorder import multi_outlier_block_rate
        from repro.eval.reorder_calib import attention_inputs, calibrate_qk_permutations

        out = {}
        calib = wiki2.val_batch(4, 128)[:, :-1]  # ~10% calibration sample
        for m in MODELS:
            model = zoo[m]
            base = QuantContext.named("mxfp4+")
            reorder = reorder_context(model, calib, base)
            acts = attention_inputs(model, calib)[0]
            perm = calibrate_qk_permutations(model, calib)[0]
            flat = acts.reshape(-1, acts.shape[-1])
            out[m] = {
                "mxfp4+": {
                    t: task_accuracy(model, task, base)
                    for t, task in harness_tasks.items()
                },
                "reorder": {
                    t: task_accuracy(model, task, reorder)
                    for t, task in harness_tasks.items()
                },
                "multi_outlier_rate": {
                    "before": multi_outlier_block_rate(flat),
                    "after": multi_outlier_block_rate(flat[:, perm]),
                },
            }
        return out

    table = run_once(benchmark, run)
    save_result("tab12_reorder", table)
    for m in MODELS:
        print_table(f"Table 12 ({m})", table[m], "{:.2f}")

    for m in MODELS:
        rates = table[m]["multi_outlier_rate"]
        # The mechanism the paper reports: reordering collapses the share
        # of outlier blocks holding multiple outliers (22.5% -> 4.6% in
        # their sampled query matrix).
        assert rates["after"] <= rates["before"]
        base_avg = np.mean(list(table[m]["mxfp4+"].values()))
        re_avg = np.mean(list(table[m]["reorder"].values()))
        # Accuracy: the paper sees consistent gains on 7B models; at our
        # scale the deltas sit inside task noise, so we only require
        # reordering not to hurt materially (see EXPERIMENTS.md).
        assert re_avg >= base_avg - 3.5
