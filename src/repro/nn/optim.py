"""Optimizers for the training substrate."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``."""
    total = float(
        np.sqrt(sum(float(np.sum(p.grad**2)) for p in params if p.grad is not None))
    )
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return total


class SGD:
    def __init__(self, params: list[Tensor], lr: float = 0.1, momentum: float = 0.0):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._vel = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._vel):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = params
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            mhat = m / (1 - self.b1**self._t)
            vhat = v / (1 - self.b2**self._t)
            p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
