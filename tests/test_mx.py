"""Unit tests for OCP MX quantization (repro.core.mx) including the paper's
Figure 4(b) worked example."""

import numpy as np
import pytest

from repro.core.blocks import from_blocks, to_blocks
from repro.core.mx import MXFP4, MXFP6, MXFP8, MXINT8, MXFormat
from repro.core.elem import E2M1


# The lower sampled block of Figure 4(b). These displayed values are exact
# in binary-friendly arithmetic terms for MXFP4 (we verified the quantized
# outputs the paper prints).
FIG4_LOWER_BF16 = np.array([-0.27, 0.04, -1.02, 0.18, -0.45, -0.20])
FIG4_LOWER_MXFP4 = np.array([-0.25, 0.0, -1.0, 0.125, -0.5, -0.25])

# The upper sampled block (with the -9.84 outlier).
FIG4_UPPER_BF16 = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])
FIG4_UPPER_MXFP4 = np.array([0.0, 0.0, 1.0, 0.0, -8.0, 0.0])


class TestBlocking:
    def test_roundtrip_exact_multiple(self):
        x = np.arange(64, dtype=np.float64).reshape(2, 32)
        b = to_blocks(x, 32)
        assert b.data.shape == (2, 1, 32)
        np.testing.assert_array_equal(from_blocks(b), x)

    def test_roundtrip_with_padding(self):
        x = np.arange(40, dtype=np.float32).reshape(2, 20)
        b = to_blocks(x, 32)
        assert b.data.shape == (2, 1, 32)
        out = from_blocks(b)
        np.testing.assert_array_equal(out, x)
        assert out.dtype == np.float32

    def test_axis_handling(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 32, 5))
        fmt = MXFP4()
        q_axis1 = fmt.quantize_dequantize(x, axis=1)
        q_manual = np.moveaxis(
            fmt.quantize_dequantize(np.moveaxis(x, 1, -1)), -1, 1
        )
        np.testing.assert_allclose(q_axis1, q_manual)

    def test_padding_does_not_change_scale(self):
        # A 20-element row padded to 32 must quantize like the same row
        # embedded in a 32-element row of zeros.
        rng = np.random.default_rng(1)
        row = rng.standard_normal(20)
        padded = np.zeros(32)
        padded[:20] = row
        fmt = MXFP4()
        np.testing.assert_allclose(fmt(row), fmt(padded)[:20])


class TestMXFP4Paper:
    def test_fig4_upper_block(self):
        q = MXFP4()(FIG4_UPPER_BF16)
        np.testing.assert_allclose(q, FIG4_UPPER_MXFP4)

    def test_fig4_lower_block(self):
        q = MXFP4()(FIG4_LOWER_BF16)
        np.testing.assert_allclose(q, FIG4_LOWER_MXFP4)

    def test_fig4_upper_shared_scale_is_two(self):
        enc = MXFP4().encode(FIG4_UPPER_BF16)
        assert enc.shared_exp.ravel()[0] == 1  # scale 2**1, as printed

    def test_outlier_forces_nbm_to_zero(self):
        # The paper's observation (2): large BM -> large shared scale ->
        # most NBMs flush to zero in MXFP4.
        q = MXFP4()(FIG4_UPPER_BF16)
        nbm = np.delete(q, 4)
        assert np.count_nonzero(nbm) == 1  # only 0.99 survives

    def test_mxfp6_keeps_small_values(self):
        q = MXFP6()(FIG4_UPPER_BF16)
        assert np.count_nonzero(q) == 6  # all values survive at 6-bit


class TestMXInvariants:
    @pytest.mark.parametrize("factory", [MXFP4, MXFP6, MXFP8, MXINT8])
    def test_idempotent(self, factory):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 64)) * 3
        fmt = factory()
        q = fmt(x)
        np.testing.assert_allclose(fmt(q), q)

    @pytest.mark.parametrize("factory", [MXFP4, MXFP6, MXFP8, MXINT8])
    def test_zero_maps_to_zero(self, factory):
        x = np.zeros((2, 64))
        np.testing.assert_array_equal(factory()(x), x)

    @pytest.mark.parametrize("factory", [MXFP4, MXFP6, MXFP8])
    def test_scaling_equivariance_pow2(self, factory):
        # Scaling inputs by a power of two scales outputs identically
        # (power-of-two scales commute with BFP).
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 64))
        fmt = factory()
        np.testing.assert_allclose(fmt(x * 4.0), fmt(x) * 4.0)

    def test_bm_always_has_emax_exponent(self):
        # The MX+ enabling insight: the scaled BM always lands in the top
        # binade [2^emax, 2^(emax+1)) before element rounding.
        rng = np.random.default_rng(4)
        x = rng.standard_normal((16, 32)) * np.exp(rng.uniform(-3, 3, (16, 1)))
        enc = MXFP4().encode(x)
        blocked = to_blocks(x, 32)
        scaled = blocked.data / np.exp2(enc.shared_exp.astype(float))[..., None]
        bm = np.max(np.abs(scaled), axis=-1)
        emax = E2M1.emax
        assert np.all(bm >= 2.0**emax)
        assert np.all(bm < 2.0 ** (emax + 1))

    def test_error_decreases_with_bits(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, 256))
        errs = [np.mean((x - f()(x)) ** 2) for f in (MXFP4, MXFP6, MXFP8)]
        assert errs[0] > errs[1]
        assert errs[0] > errs[2]

    def test_e4m3_nan_reservation_cost(self):
        # Section 3.1: MXFP8 (E4M3) can trail MXFP6 (E2M3) on outlier-free
        # data because the NaN-reserved code caps max_normal at 448 (1.110)
        # instead of 480 (1.111), clipping block maxima. Both codecs have
        # 3 mantissa bits, so this is the only systematic difference for
        # well-conditioned blocks.
        x = np.full((1, 32), 1.0)
        x[0, 0] = 1.9375  # scaled BM lands at 1.1111... in the top binade
        e6 = np.mean((x - MXFP6()(x)) ** 2)
        e8 = np.mean((x - MXFP8()(x)) ** 2)
        assert e8 > e6

    def test_bits_per_element(self):
        assert MXFP4().bits_per_element() == pytest.approx(4.25)
        assert MXFP6().bits_per_element() == pytest.approx(6.25)
        assert MXFP8().bits_per_element() == pytest.approx(8.25)
        assert MXINT8().bits_per_element() == pytest.approx(8.25)

    def test_tiny_values_clamped_scale(self):
        # Values near the bottom of the E8M0 range still round-trip finitely.
        x = np.full((1, 32), 1e-42)
        q = MXFP4()(x)
        assert np.all(np.isfinite(q))

    def test_values_on_grid(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((4, 32))
        enc = MXFP4().encode(x)
        grid = E2M1.representable_values()
        full = np.concatenate([-grid[::-1], grid])
        assert np.all(np.isin(enc.elem_values.ravel(), full))

    def test_custom_block_size(self):
        fmt = MXFormat(E2M1, block_size=8, name="mxfp4-k8")
        rng = np.random.default_rng(7)
        x = rng.standard_normal((4, 64))
        x[:, 3] *= 100
        # Smaller blocks confine the outlier: error must not be worse.
        e8 = np.mean((x - fmt(x)) ** 2)
        e32 = np.mean((x - MXFP4()(x)) ** 2)
        assert e8 <= e32
