"""Unit tests for MX+ (repro.core.mxplus): the paper's core contribution."""

import numpy as np
import pytest

from repro.core.blocks import to_blocks
from repro.core.elem import E2M1, E2M3, E4M3
from repro.core.mx import MXFP4, MXFP6, MXFP8
from repro.core.mxplus import (
    MXFP4Plus,
    MXFP6Plus,
    MXFP8Plus,
    MXPlusFormat,
    decompose_bm,
)
from repro.core.scale import ZERO_BLOCK_SENTINEL

FIG4_UPPER_BF16 = np.array([-0.27, -0.19, 0.99, -0.20, -9.84, -0.39])

PAIRS = [(MXFP4, MXFP4Plus), (MXFP6, MXFP6Plus), (MXFP8, MXFP8Plus)]


class TestFig6Example:
    """Figure 6: MXFP4+ represents -9.84 as -10.00 instead of MXFP4's -8.00."""

    def test_bm_value(self):
        q = MXFP4Plus()(FIG4_UPPER_BF16)
        assert q[4] == pytest.approx(-10.0)

    def test_nbm_values_match_mxfp4(self):
        q4 = MXFP4()(FIG4_UPPER_BF16)
        qp = MXFP4Plus()(FIG4_UPPER_BF16)
        np.testing.assert_allclose(np.delete(qp, 4), np.delete(q4, 4))

    def test_shared_scale_unchanged(self):
        # "MX+ does not alter the shared scale."
        enc4 = MXFP4().encode(FIG4_UPPER_BF16)
        encp = MXFP4Plus().encode(FIG4_UPPER_BF16)
        assert enc4.shared_exp.ravel()[0] == encp.shared_exp.ravel()[0] == 1

    def test_bm_index_identified(self):
        enc = MXFP4Plus().encode(FIG4_UPPER_BF16)
        assert enc.bm_index.ravel()[0] == 4


class TestBMRepresentation:
    def test_bm_mbits(self):
        assert MXFP4Plus().bm_mbits == 3  # E0M3 -> effective E2M3
        assert MXFP6Plus().bm_mbits == 5  # E0M5 -> effective E2M5
        assert MXFP8Plus().bm_mbits == 7  # E0M7 -> effective E4M7

    @pytest.mark.parametrize("base,plus", PAIRS, ids=["fp4", "fp6", "fp8"])
    def test_bm_error_never_worse(self, base, plus):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 32)) * np.exp(rng.uniform(-4, 4, (64, 1)))
        qb, qp = base()(x), plus()(x)
        bm = np.argmax(np.abs(x), axis=-1)
        idx = (np.arange(64), bm)
        assert np.all(np.abs(x[idx] - qp[idx]) <= np.abs(x[idx] - qb[idx]) + 1e-12)

    @pytest.mark.parametrize("base,plus", PAIRS, ids=["fp4", "fp6", "fp8"])
    def test_total_mse_never_worse(self, base, plus):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 32))
        x[rng.random((64, 32)) < 0.02] *= 40  # sprinkle outliers
        eb = np.mean((x - base()(x)) ** 2)
        ep = np.mean((x - plus()(x)) ** 2)
        assert ep <= eb + 1e-15

    def test_bm_relative_error_bound(self):
        # The extended BM has emax_ext fraction bits anchored in [1, 2):
        # relative error <= 2^-(bm_mbits+1).
        rng = np.random.default_rng(2)
        x = rng.standard_normal((256, 32)) * 10
        fmt = MXFP4Plus()
        q = fmt(x)
        bm = np.argmax(np.abs(x), axis=-1)
        idx = (np.arange(256), bm)
        rel = np.abs(x[idx] - q[idx]) / np.abs(x[idx])
        assert np.max(rel) <= 2.0 ** -(fmt.bm_mbits + 1) + 1e-9

    def test_bm_scaled_in_top_binade(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((32, 32))
        fmt = MXFP4Plus()
        enc = fmt.encode(x)
        bm_vals = np.take_along_axis(
            enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
        )[..., 0]
        assert np.all(np.abs(bm_vals) >= 2.0**E2M1.emax)
        assert np.all(np.abs(bm_vals) < 2.0 ** (E2M1.emax + 1))

    def test_idempotent_when_bm_dominant(self):
        # MX+ is a fixed point when the quantized BM stays above what any
        # NBM can round up to (6 * scale). A strictly dominant BM in the
        # top half of its binade guarantees that. (With a *marginal* BM an
        # NBM may saturate above it and take over the BM role on
        # re-quantization — inherent to the format, and irrelevant in
        # practice since encoded tensors are never re-encoded.)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 64))
        x[:, 0] = 7.75  # BM: scaled 7.75, extended code 1.9375 -> 7.75 > 6
        x[:, 32] = -7.75
        fmt = MXFP4Plus()
        q = fmt(x)
        np.testing.assert_allclose(fmt(q), q)

    def test_requantization_error_bounded(self):
        # Even when the BM role shifts, re-quantization stays on coarse
        # format grids and close to the first pass.
        rng = np.random.default_rng(44)
        x = rng.standard_normal((16, 64)) * 5
        fmt = MXFP4Plus()
        q1 = fmt(x)
        q2 = fmt(q1)
        assert np.mean((q1 - q2) ** 2) <= np.mean((x - q1) ** 2)

    def test_ties_first_index_wins(self):
        x = np.zeros(32)
        x[7] = 3.0
        x[20] = -3.0
        enc = MXFP4Plus().encode(x)
        assert enc.bm_index.ravel()[0] == 7


class TestFlushToZero:
    def test_tiny_block_flushes(self):
        # floor(log2(BM)) <= -127 + emax  -> whole block flushed.
        x = np.full((1, 32), 2.0**-126)
        fmt = MXFP4Plus()
        enc = fmt.encode(x)
        assert enc.shared_exp.ravel()[0] == ZERO_BLOCK_SENTINEL
        np.testing.assert_array_equal(fmt(x), 0.0)

    def test_boundary_not_flushed(self):
        # One exponent above the threshold survives.
        x = np.full((1, 32), 2.0 ** (-124 + E2M1.emax))
        fmt = MXFP4Plus()
        enc = fmt.encode(x)
        assert enc.shared_exp.ravel()[0] != ZERO_BLOCK_SENTINEL
        assert np.all(fmt(x) != 0)

    def test_all_zero_block(self):
        fmt = MXFP4Plus()
        x = np.zeros((2, 32))
        np.testing.assert_array_equal(fmt(x), 0.0)

    def test_flush_threshold_exact(self):
        emax = E2M1.emax
        at = np.full((1, 32), 2.0 ** (-127 + emax))  # == threshold: flush
        above = np.full((1, 32), 2.0 ** (-126 + emax))  # one above: keep
        fmt = MXFP4Plus()
        assert np.all(fmt(at) == 0)
        assert np.all(fmt(above) != 0)


class TestDecomposeBM:
    """Eq. (3): BM = BM_H + BM_L with both halves element-representable."""

    @pytest.mark.parametrize("elem", [E2M1, E2M3], ids=lambda e: e.name)
    def test_exact_split(self, elem):
        fmt = MXPlusFormat(elem)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((128, 32)) * 7
        enc = fmt.encode(x)
        bm_scaled = np.take_along_axis(
            enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
        )[..., 0]
        scale = np.exp2(enc.shared_exp.astype(np.float64))
        bm_value = bm_scaled * scale
        bm_h, bm_l = decompose_bm(bm_value, enc.shared_exp, elem)
        np.testing.assert_allclose(bm_h + bm_l, bm_value, rtol=0, atol=1e-12)

    def test_e4m3_split_rejected(self):
        # E4M3's NaN-stolen top code makes the Eq. (3) high half
        # unrepresentable; MXFP8+ uses the hardware path instead.
        with pytest.raises(ValueError):
            decompose_bm(np.array([448.0]), np.array([0]), E4M3)

    @pytest.mark.parametrize("elem", [E2M1, E2M3], ids=lambda e: e.name)
    def test_halves_are_element_representable(self, elem):
        fmt = MXPlusFormat(elem)
        rng = np.random.default_rng(6)
        x = rng.standard_normal((64, 32)) * 3
        enc = fmt.encode(x)
        bm_scaled = np.take_along_axis(
            enc.elem_values, enc.bm_index[..., None].astype(np.int64), axis=-1
        )[..., 0]
        scale = np.exp2(enc.shared_exp.astype(np.float64))
        bm_h, bm_l = decompose_bm(bm_scaled * scale, enc.shared_exp, elem)
        # After removing the shared scale, both halves must sit on the
        # element grid so a stock MX Tensor Core can consume them.
        np.testing.assert_allclose(elem.quantize(bm_h / scale), bm_h / scale)
        np.testing.assert_allclose(elem.quantize(bm_l / scale), bm_l / scale)

    def test_fig6_split(self):
        # -10.0 with shared exp 1: scaled -5.0 = -4 * 1.25 -> um = 1010.
        # BM_H = -4 (um[3:2]=10 -> 1.0 * 2^2), BM_L = -1 (um[1:0]=10 -> 1.0 * 2^0)
        bm_h, bm_l = decompose_bm(np.array([-10.0]), np.array([1]), E2M1)
        assert bm_h[0] == pytest.approx(-8.0)
        assert bm_l[0] == pytest.approx(-2.0)


class TestStorage:
    def test_bits_overhead_quarter_bit(self):
        # "The additional bits increase the average bit width by only 0.25."
        assert MXFP4Plus().bits_per_element() - MXFP4().bits_per_element() == pytest.approx(0.25)
        assert MXFP4Plus().bits_per_element() == pytest.approx(4.5)

    def test_same_element_width_no_unaligned_access(self):
        fmt = MXFP4Plus()
        assert fmt.elem.bits == MXFP4().elem.bits
