"""NN modules on top of the autodiff engine, with quantized-matmul hooks.

Every ``Linear`` consults an optional :class:`~repro.nn.quantize.QuantContext`
at call time: operands are fake-quantized (via a straight-through op, so the
same code path serves quantization-aware fine-tuning) right before the
matmul, mirroring the paper's conversion-before-computation flow.
"""

from __future__ import annotations

import numpy as np

from .functional import causal_mask, rmsnorm, silu, softmax
from .quantize import QuantContext
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "RMSNorm",
    "CausalSelfAttention",
    "SwiGLU",
    "TransformerBlock",
]


class Module:
    """Minimal module: parameter discovery + state dict save/load."""

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        out: list[tuple[str, Tensor]] = []
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                out.append((name, value))
            elif isinstance(value, Module):
                out.extend(value.named_parameters(f"{name}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        out.extend(item.named_parameters(f"{name}.{i}."))
        return out

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {k: v.data.copy() for k, v in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        mine = dict(self.named_parameters())
        missing = set(mine) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        for k, p in mine.items():
            if p.data.shape != state[k].shape:
                raise ValueError(f"shape mismatch for {k}")
            p.data = np.array(state[k], dtype=np.float64)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


def _init(rng: np.random.Generator, shape: tuple, scale: float | None = None) -> Tensor:
    scale = scale if scale is not None else 1.0 / np.sqrt(shape[0])
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True)


class Linear(Module):
    """``y = x @ W (+ b)`` with quantization hooks on both operands."""

    def __init__(self, rng: np.random.Generator, d_in: int, d_out: int, bias: bool = False):
        self.weight = _init(rng, (d_in, d_out))
        self.bias = Tensor(np.zeros(d_out), requires_grad=True) if bias else None

    def __call__(
        self,
        x: Tensor,
        qc: QuantContext | None = None,
        perm: np.ndarray | None = None,
    ) -> Tensor:
        """Apply the layer; ``perm`` reorders input channels *and* weight
        rows identically (exact in full precision), scattering co-located
        outliers across quantization blocks (Section 8.3)."""
        w = self.weight
        if perm is not None:
            x = x[..., perm]
            w = w[perm]
        if qc is not None:
            xq, wq = qc.quantize_matmul_pair(x.data, w.data)
            x = x.apply_ste(lambda a: xq)
            w = w.apply_ste(lambda a: wq)
        out = x @ w
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    def __init__(self, rng: np.random.Generator, vocab: int, dim: int):
        self.weight = Tensor(rng.normal(0, 0.02, size=(vocab, dim)), requires_grad=True)

    def __call__(self, tokens: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(tokens))


class RMSNorm(Module):
    """RMSNorm with a trainable gain and an optional *fixed* channel scale.

    The fixed scale is the architecture's heavy-tail amplifier (see
    TransformerConfig.channel_gain_sigma): a non-trainable per-channel
    multiplier that gives post-norm activations the wide within-block
    dynamic range observed in real LLM tensors.
    """

    def __init__(self, dim: int, fixed_scale: np.ndarray | None = None):
        self.gain = Tensor(np.ones(dim), requires_grad=True)
        self.fixed_scale = (
            Tensor(np.asarray(fixed_scale, dtype=np.float64))
            if fixed_scale is not None
            else None
        )

    def __call__(self, x: Tensor) -> Tensor:
        out = rmsnorm(x, self.gain)
        if self.fixed_scale is not None:
            out = out * self.fixed_scale
        return out


class CausalSelfAttention(Module):
    """Multi-head causal attention with quantized QK^T / PV matmuls.

    Follows the paper's flow: scores and probabilities are computed in FP32
    (softmax), and all four dot-product operand tensors (Q, K as the KV
    cache, P, V) are quantized with the activation/KV format.
    """

    def __init__(self, rng: np.random.Generator, dim: int, n_heads: int):
        if dim % n_heads:
            raise ValueError("dim must be divisible by n_heads")
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.wq = Linear(rng, dim, dim)
        self.wk = Linear(rng, dim, dim)
        self.wv = Linear(rng, dim, dim)
        self.wo = Linear(rng, dim, dim)

    def _split(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def __call__(
        self,
        x: Tensor,
        qc: QuantContext | None = None,
        layer_index: int = 0,
    ) -> Tensor:
        batch, seq, dim = x.shape
        # Section 8.3 channel reordering: the same permutation on the
        # query/key projection inputs and weight rows keeps the matmuls
        # mathematically unchanged while scattering co-located outlier
        # channels across MX blocks (so more of them become BMs).
        perm = None
        if qc is not None:
            perm = qc.qk_permutations.get(layer_index)
        q = self.wq(x, qc, perm=perm)
        k = self.wk(x, qc, perm=perm)
        v = self.wv(x, qc)

        q = self._split(q, batch, seq)
        k = self._split(k, batch, seq)
        v = self._split(v, batch, seq)

        if qc is not None:
            q = q.apply_ste(lambda a: qc.quantize_kv(a, axis=-1))
            k = k.apply_ste(lambda a: qc.quantize_kv(a, axis=-1))

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        mask = causal_mask(seq)
        scores = scores.where(mask, -1e30)
        probs = softmax(scores, axis=-1)  # FP32 in the paper's flow

        if qc is not None:
            probs = probs.apply_ste(lambda a: qc.quantize_kv(a, axis=-1))
            v = v.apply_ste(lambda a: qc.quantize_kv(a, axis=-2))

        ctx = probs @ v
        ctx = ctx.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.wo(ctx, qc)


class SwiGLU(Module):
    """Gated MLP (Llama-style): ``down(silu(gate(x)) * up(x))``."""

    def __init__(self, rng: np.random.Generator, dim: int, hidden: int):
        self.w_gate = Linear(rng, dim, hidden)
        self.w_up = Linear(rng, dim, hidden)
        self.w_down = Linear(rng, hidden, dim)

    def __call__(self, x: Tensor, qc: QuantContext | None = None) -> Tensor:
        return self.w_down(silu(self.w_gate(x, qc)) * self.w_up(x, qc), qc)


class TransformerBlock(Module):
    def __init__(
        self,
        rng: np.random.Generator,
        dim: int,
        n_heads: int,
        hidden: int,
        fixed_scale: np.ndarray | None = None,
    ):
        self.attn_norm = RMSNorm(dim, fixed_scale=fixed_scale)
        self.attn = CausalSelfAttention(rng, dim, n_heads)
        self.mlp_norm = RMSNorm(dim, fixed_scale=fixed_scale)
        self.mlp = SwiGLU(rng, dim, hidden)

    def __call__(
        self, x: Tensor, qc: QuantContext | None = None, layer_index: int = 0
    ) -> Tensor:
        x = x + self.attn(self.attn_norm(x), qc, layer_index)
        x = x + self.mlp(self.mlp_norm(x), qc)
        return x
