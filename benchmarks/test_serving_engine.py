"""Request-level serving benchmark: the unified `repro.serve` engine on a
mixed continuous-batching workload (Llama-2-13B timing model), reporting
per-recipe throughput and mean TTFT/TPOT, plus the reconciliation check
against the stage-level simulator."""

from _util import print_table, run_once, save_result

from repro.gpu.inference import simulate_inference
from repro.models.zoo import ARCHS
from repro.serve import Request, ServingEngine, get_recipe

RECIPES = ["bf16", "mxfp8", "mxfp4", "a-mxfp4+", "mxfp4+", "mxfp4++"]


def _mixed_requests(n: int = 8) -> list[Request]:
    return [
        Request(
            f"req-{i}",
            prompt_len=256 * (1 + i % 4),
            max_new_tokens=16 + 8 * (i % 3),
            arrival_s=0.01 * i,
        )
        for i in range(n)
    ]


def test_serving_engine(benchmark):
    arch = ARCHS["llama-2-13b"]

    def run():
        out = {}
        for name in RECIPES:
            engine = ServingEngine(arch, get_recipe(name), kv_token_budget=16_384)
            result = engine.run(_mixed_requests())
            out[name] = {
                "throughput_tok_s": result.throughput_tok_s,
                "mean_ttft_ms": result.mean_ttft_s * 1e3,
                "mean_tpot_ms": result.mean_tpot_s * 1e3,
                "makespan_ms": result.makespan_s * 1e3,
            }
        base = out["bf16"]["makespan_ms"]
        for name in RECIPES:
            out[name]["speedup_vs_bf16"] = base / out[name]["makespan_ms"]
        return out

    table = run_once(benchmark, run)
    save_result("serving_engine", table)
    print_table("Serving engine: mixed batch, continuous batching", table)

    # The serving-level ordering mirrors the stage-level Figure 13 story.
    assert table["mxfp4"]["speedup_vs_bf16"] > table["mxfp8"]["speedup_vs_bf16"] > 1.0
    assert table["mxfp4+"]["speedup_vs_bf16"] > table["mxfp4"]["speedup_vs_bf16"] * 0.9
    assert table["a-mxfp4+"]["mean_ttft_ms"] > table["mxfp4"]["mean_ttft_ms"]

    # Uniform batch reconciles exactly with the stage-level simulator.
    engine = ServingEngine(arch, get_recipe("mxfp4+"))
    uniform = engine.run(
        [Request(f"u{i}", prompt_len=1024, max_new_tokens=64) for i in range(8)]
    )
    sim = simulate_inference(arch, get_recipe("mxfp4+"), batch=8, prompt_len=1024, output_len=64)
    assert abs(uniform.makespan_s - sim.total_s) / sim.total_s < 0.01
