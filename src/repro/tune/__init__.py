"""``repro.tune`` — automated mixed-precision recipe search.

The repo's first *recipe discovery* subsystem: instead of evaluating
hand-written :class:`repro.serve.QuantRecipe` configurations one at a
time, the tuner searches the per-layer/per-role format design space and
returns a quality/cost Pareto frontier, wired end to end:

1. :mod:`~repro.tune.sensitivity` measures each role's perplexity damage
   per format on the real numeric model path (cached, resumable);
2. :mod:`~repro.tune.cost` prices any candidate with the serving stack's
   own step-time and KV-footprint models;
3. :mod:`~repro.tune.search` runs deterministic greedy bit-descent plus a
   seeded evolutionary search over per-layer assignments;
4. :mod:`~repro.tune.frontier` keeps the non-dominated set, serializes it
   (``benchmarks/results/tune_frontier.json``), and registers winners in
   the serving recipe registry — tuned recipes are immediately servable
   through ``ServingEngine``/``ServingCluster``.

Quickstart::

    from repro.tune import autotune

    result = autotune(model="test-tiny", seed=0, register=True)
    for p in result.frontier:
        print(p.recipe.name, p.perplexity, p.tokens_per_s)
    # the winner is now a named recipe:
    from repro.serve import ServingCluster, get_recipe
    cluster = ServingCluster(result.cost_model.arch,
                             get_recipe(result.winner.recipe.name),
                             page_budget_bytes=4 << 30)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eval.perplexity import perplexity
from ..models.zoo import ARCHS, PROFILES, get_corpus, load_model
from ..serve.recipe import QuantRecipe
from .cost import CostModel, RecipeCost
from .frontier import FrontierPoint, ParetoFrontier
from .pricing import GPU_PRICES, GPUPrice, available_gpu_prices, get_gpu_price
from .search import (
    DEFAULT_LADDER,
    KV_LADDER,
    evolutionary_search,
    greedy_bit_descent,
    recipe_from_assignment,
)
from .sensitivity import (
    DEFAULT_PROFILE_FORMATS,
    SensitivityReport,
    probe_recipe,
    profile_sensitivity,
)

__all__ = [
    "autotune",
    "TuneResult",
    "CostModel",
    "RecipeCost",
    "GPUPrice",
    "GPU_PRICES",
    "available_gpu_prices",
    "get_gpu_price",
    "FrontierPoint",
    "ParetoFrontier",
    "SensitivityReport",
    "profile_sensitivity",
    "probe_recipe",
    "greedy_bit_descent",
    "evolutionary_search",
    "recipe_from_assignment",
    "DEFAULT_LADDER",
    "KV_LADDER",
    "DEFAULT_PROFILE_FORMATS",
]


@dataclass
class TuneResult:
    """Everything one tuning run produced."""

    frontier: ParetoFrontier
    report: SensitivityReport
    cost_model: CostModel
    uniform: dict  # recipe name -> FrontierPoint for the uniform ladder
    winner: FrontierPoint | None  # dominates the uniform baseline, if any
    baseline: str
    measurements: int  # real perplexity evaluations spent

    def summary(self) -> dict:
        """JSON-friendly digest (the committed benchmark artifact shape)."""
        return {
            "model": self.report.model,
            "baseline": self.baseline,
            "cost_model": self.cost_model.to_dict(),
            "measurements": self.measurements,
            "uniform": {
                name: point.to_dict() for name, point in self.uniform.items()
            },
            "winner": self.winner.to_dict() if self.winner else None,
            "frontier": self.frontier.to_payload(),
        }


def autotune(
    model: str = "test-tiny",
    arch=None,
    formats: tuple = DEFAULT_LADDER,
    kv_formats: tuple = KV_LADDER,
    cost_model: CostModel | None = None,
    baseline: str = "mxfp4",
    seed: int = 0,
    batch: int = 16,
    seq_len: int = 128,
    generations: int = 8,
    population: int = 24,
    measure_top: int = 3,
    greedy: bool = True,
    evolution: bool = True,
    max_ppl: float | None = None,
    cache: bool = True,
    register: bool = False,
    verbose: bool = False,
) -> TuneResult:
    """Profile, search, and assemble the recipe Pareto frontier.

    Quality comes from the scaled-down zoo model ``model`` (real forward
    passes); cost from ``cost_model`` (default: llama-2-13b serving on an
    RTX 5090-class budget). The uniform ladder recipes are always
    measured too, so the frontier can be read against the fixed menu, and
    ``winner`` is the searched point that Pareto-dominates the uniform
    ``baseline`` recipe with the highest throughput (``None`` when search
    found no dominating mix). With ``register`` the frontier recipes land
    in the serving registry.
    """
    if cost_model is None:
        cost_model = CostModel(arch if arch is not None else ARCHS["llama-2-13b"])
    report = profile_sensitivity(
        model,
        formats=tuple(fmt for fmt in formats if fmt != "bf16"),
        kv_formats=tuple(fmt for fmt in kv_formats if fmt != "bf16"),
        batch=batch,
        seq_len=seq_len,
        cache=cache,
        verbose=verbose,
    )

    lm = load_model(model)
    corpus = get_corpus(PROFILES[model].corpus, PROFILES[model].train_tokens)
    measured: dict[QuantRecipe, float] = {}

    def measure_ppl(recipe: QuantRecipe) -> float:
        if recipe not in measured:
            measured[recipe] = perplexity(
                lm, corpus, recipe, batch=batch, seq_len=seq_len
            )
        return measured[recipe]

    frontier = ParetoFrontier()

    # Uniform ladder reference points (the registry's fixed menu).
    uniform: dict[str, FrontierPoint] = {}
    for fmt in dict.fromkeys(tuple(formats) + (baseline,)):
        recipe = QuantRecipe.from_name(fmt)
        cost = cost_model.evaluate(recipe)
        point = FrontierPoint(
            recipe=recipe,
            perplexity=measure_ppl(recipe),
            tokens_per_s=cost.tokens_per_s,
            kv_bytes_per_token=cost.kv_bytes_per_token,
            origin="uniform",
        )
        uniform[recipe.name] = point
        frontier.add(point)

    if greedy:
        greedy_bit_descent(
            report, cost_model, measure_ppl, frontier,
            ladder=formats, kv_ladder=kv_formats, max_ppl=max_ppl,
        )
    if evolution:
        evolutionary_search(
            report, cost_model, measure_ppl, frontier,
            ladder=formats, kv_ladder=kv_formats, seed=seed,
            population=population, generations=generations,
            measure_top=measure_top, max_ppl=max_ppl,
        )

    base_point = uniform[QuantRecipe.from_name(baseline).name]
    dominating = [
        p for p in frontier.dominating(base_point) if p.origin != "uniform"
    ]
    winner = max(dominating, key=lambda p: p.tokens_per_s, default=None)

    if register:
        frontier.register(overwrite=True)

    return TuneResult(
        frontier=frontier,
        report=report,
        cost_model=cost_model,
        uniform=uniform,
        winner=winner,
        baseline=baseline,
        measurements=len(measured),
    )
