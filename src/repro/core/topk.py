"""Top-k outlier promotion inside MX blocks (Figure 14 analysis).

The paper studies representing the ``top-k`` magnitude elements of each MX
block in MXFP6 (E2M3) while the rest stay in MXFP4 (E2M1), all under the
same shared scale. ``k = 1`` with the extended-mantissa trick is exactly
MX+; larger ``k`` shows diminishing returns, motivating channel reordering
instead of multi-outlier tracking.
"""

from __future__ import annotations

import numpy as np

from .blocks import BlockFormat, from_blocks, to_blocks
from .elem import E2M1, E2M3, FloatCodec, floor_log2
from .scale import E8M0_MAX, E8M0_MIN

__all__ = ["TopKPromoteFormat", "promoted_fraction"]


class TopKPromoteFormat(BlockFormat):
    """MX with the top-k magnitude elements promoted to a wider codec."""

    def __init__(
        self,
        k: int,
        base: FloatCodec = E2M1,
        promoted: FloatCodec = E2M3,
        block_size: int = 32,
        name: str | None = None,
    ):
        if base.emax != promoted.emax:
            raise ValueError("base and promoted codecs must share e_max so the "
                             "shared scale stays valid")
        self.k = k
        self.base = base
        self.promoted = promoted
        self.block_size = block_size
        self.name = name or f"mx-{base.name}-top{k}-{promoted.name}"

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        blocked = to_blocks(x, self.block_size, axis)
        data = blocked.data
        amax = np.max(np.abs(data), axis=-1)
        shared_exp = floor_log2(amax) - self.base.emax
        shared_exp = np.where(amax == 0, E8M0_MIN, shared_exp)
        shared_exp = np.clip(shared_exp, E8M0_MIN, E8M0_MAX)
        scale = np.exp2(shared_exp.astype(np.float64))[..., None]

        scaled = data / scale
        base_q = self.base.quantize(scaled)
        promo_q = self.promoted.quantize(scaled)

        # Indices of the k largest magnitudes per block.
        order = np.argsort(-np.abs(data), axis=-1, kind="stable")
        topk = order[..., : self.k]
        promote = np.zeros(data.shape, dtype=bool)
        np.put_along_axis(promote, topk, True, axis=-1)

        out = np.where(promote, promo_q, base_q) * scale
        return from_blocks(blocked, out)

    def bits_per_element(self) -> float:
        # k promoted elements cost (promoted - base) extra bits, plus one
        # index byte per tracked outlier (5 used + 3 reserved, as in MX+).
        extra = self.k * (self.promoted.bits - self.base.bits + 8) / self.block_size
        return self.base.bits + 8.0 / self.block_size + extra


def promoted_fraction(x: np.ndarray, k: int, block_size: int = 32, axis: int = -1) -> float:
    """Fraction of 3-sigma outliers that land in the promoted top-k set.

    This is the bar series of Figure 14 ("% of outliers in MXFP6").
    """
    from .metrics import outlier_mask_3sigma

    mask = outlier_mask_3sigma(x)
    if not np.any(mask):
        return 1.0
    blocked_mask = to_blocks(mask.astype(np.float64), block_size, axis).data > 0.5
    blocked_x = to_blocks(x, block_size, axis).data
    order = np.argsort(-np.abs(blocked_x), axis=-1, kind="stable")
    topk = order[..., :k]
    in_topk = np.zeros(blocked_x.shape, dtype=bool)
    np.put_along_axis(in_topk, topk, True, axis=-1)
    return float(np.sum(blocked_mask & in_topk) / np.sum(blocked_mask))
